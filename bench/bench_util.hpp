// Shared infrastructure for the experiment harnesses: default
// configurations, profile collection over pairings, APE aggregation, and
// uniform output (console table + CSV beside the binary).
//
// Every harness accepts:
//   --budget N   conditions profiled per collocation direction
//   --seed S     master seed
//   --fast       shrink everything (CI smoke mode)
//   --json PATH  machine-readable record file (default BENCH_PR2.json)
// and prints the regenerated table/figure series.
#pragma once

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/stac_manager.hpp"
#include "obs/metrics.hpp"

namespace stac::bench {

/// Size the global thread pool for a bench run and return the effective
/// worker count.  Honors an explicit STAC_THREADS; otherwise defaults to
/// max(2, hardware_concurrency) so parallel-vs-serial comparisons exercise
/// real concurrency even on single-core CI runners (BENCH_PR2.json once
/// recorded a 0.94x "parallel speedup" measured on a 1-thread pool).  Must
/// be called before the first ThreadPool::global() use — the pool reads
/// STAC_THREADS exactly once.  Sections that claim a speedup should record
/// this count and skip the claim when it is 1.
inline std::size_t ensure_bench_pool() {
  // An unset — or present-but-unusable (threads_from_env returns 0 for
  // garbage, zero, or huge values) — STAC_THREADS gets the bench default.
  if (ThreadPool::threads_from_env(std::getenv("STAC_THREADS")) == 0) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned workers = std::max(2u, hw);
    ::setenv("STAC_THREADS", std::to_string(workers).c_str(), /*overwrite=*/1);
  }
  return ThreadPool::global().size();
}

/// Default target for the machine-readable bench record: overridable via
/// the STAC_BENCH_JSON environment variable, else BENCH_PR2.json in the
/// working directory (the perf-trajectory file tracked at the repo root).
inline std::string default_json_path() {
  if (const char* env = std::getenv("STAC_BENCH_JSON")) return env;
  return "BENCH_PR2.json";
}

struct BenchArgs {
  std::size_t budget = 24;
  std::uint64_t seed = 2022;  // ICPP '22
  bool fast = false;
  std::string json_path = default_json_path();

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--fast") == 0) {
        args.fast = true;
        args.budget = 10;
      } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
        args.budget = static_cast<std::size_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        args.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        args.json_path = argv[++i];
      } else {
        std::cerr << "usage: " << argv[0]
                  << " [--budget N] [--seed S] [--fast] [--json PATH]\n";
        std::exit(2);
      }
    }
    return args;
  }
};

/// Monotonic stopwatch for stage wall times.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  /// Seconds since construction or the last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Ordered JSON object builder for the machine-readable bench records.
/// Values are numbers, booleans, strings or nested objects; set() on an
/// existing key replaces it in place.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", value);
    return set_raw(key, buf);
  }
  JsonObject& set(const std::string& key, int value) {
    return set_raw(key, std::to_string(value));
  }
  JsonObject& set(const std::string& key, std::size_t value) {
    return set_raw(key, std::to_string(value));
  }
  JsonObject& set(const std::string& key, bool value) {
    return set_raw(key, value ? "true" : "false");
  }
  JsonObject& set(const std::string& key, const std::string& value) {
    return set_raw(key, quoted(value));
  }
  JsonObject& set(const std::string& key, const char* value) {
    return set_raw(key, quoted(value));
  }
  JsonObject& set(const std::string& key, const JsonObject& nested) {
    return set_raw(key, nested.str());
  }

  /// Insert `value` (already-encoded JSON) under `key`.
  JsonObject& set_raw(const std::string& key, std::string value) {
    for (auto& [k, v] : members_) {
      if (k == key) {
        v = std::move(value);
        return *this;
      }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
  }

  [[nodiscard]] std::string str() const {
    std::ostringstream out;
    out << '{';
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (i) out << ", ";
      out << quoted(members_[i].first) << ": " << members_[i].second;
    }
    out << '}';
    return out.str();
  }

  [[nodiscard]] static std::string quoted(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> members_;
};

namespace detail {

/// Split a top-level JSON object (the shape write_bench_section emits) into
/// (key, raw value) pairs.  Returns false on anything unexpected, in which
/// case the caller starts the record afresh.
inline bool split_top_level_json(
    const std::string& text,
    std::vector<std::pair<std::string, std::string>>& out) {
  std::size_t i = text.find('{');
  if (i == std::string::npos) return false;
  ++i;
  const auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
  };
  skip_ws();
  if (i < text.size() && text[i] == '}') return true;  // empty object
  while (i < text.size()) {
    skip_ws();
    if (i >= text.size() || text[i] != '"') return false;
    ++i;
    std::string key;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) {
        key += text[i + 1];  // good enough for the keys we write
        i += 2;
      } else {
        key += text[i++];
      }
    }
    if (i >= text.size()) return false;
    ++i;  // closing quote
    skip_ws();
    if (i >= text.size() || text[i] != ':') return false;
    ++i;
    skip_ws();
    // Scan one value: a string, or anything balanced up to the next
    // top-level ',' or '}'.
    const std::size_t value_start = i;
    int depth = 0;
    bool in_string = false;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (in_string) {
        if (c == '\\')
          ++i;
        else if (c == '"')
          in_string = false;
        continue;
      }
      if (c == '"') in_string = true;
      else if (c == '{' || c == '[') ++depth;
      else if (c == '}' || c == ']') {
        if (depth == 0) break;  // object close
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
    }
    if (i >= text.size()) return false;
    std::string value = text.substr(value_start, i - value_start);
    while (!value.empty() &&
           std::isspace(static_cast<unsigned char>(value.back())))
      value.pop_back();
    out.emplace_back(std::move(key), std::move(value));
    if (text[i] == '}') return true;
    ++i;  // consume ','
  }
  return false;
}

}  // namespace detail

/// Merge `section` into the top-level object of the record at `path`
/// (created if absent, replaced if already present) and rewrite the file.
/// Each bench binary owns one section, so independent runs compose into a
/// single perf-trajectory record.  Any metrics accumulated in the process-
/// wide obs registry during the run ride along under "obs_metrics", so the
/// bench record carries the pipeline's internal counters for free.
inline void write_bench_section(const std::string& path,
                                const std::string& section,
                                const JsonObject& value_in) {
  JsonObject value = value_in;
  if (obs::MetricsRegistry::global().size() > 0)
    value.set_raw("obs_metrics", obs::MetricsRegistry::global().to_json());
  std::vector<std::pair<std::string, std::string>> members;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      std::vector<std::pair<std::string, std::string>> parsed;
      if (detail::split_top_level_json(buf.str(), parsed))
        members = std::move(parsed);
    }
  }
  bool replaced = false;
  for (auto& [k, v] : members) {
    if (k == section) {
      v = value.str();
      replaced = true;
    }
  }
  if (!replaced) members.emplace_back(section, value.str());

  std::ofstream out(path, std::ios::trunc);
  out << "{\n";
  for (std::size_t m = 0; m < members.size(); ++m) {
    out << "  " << JsonObject::quoted(members[m].first) << ": "
        << members[m].second;
    out << (m + 1 < members.size() ? ",\n" : "\n");
  }
  out << "}\n";
  std::cout << "json record: " << path << " [" << section << "]\n";
}

/// Profiler configuration tuned for bench runtime (a few hundred testbed
/// completions per condition is enough for stable means).
inline profiler::ProfilerConfig bench_profiler_config() {
  profiler::ProfilerConfig cfg;
  cfg.target_completions = 900;
  cfg.warmup_completions = 100;
  cfg.max_windows = 2;
  cfg.accesses_per_sample = 1500;
  return cfg;
}

/// Deep-forest configuration matching the paper's §5 structure scaled for
/// wall-clock: 4 MGS windows are listed in the paper; 5/10/15 fit our
/// 58 x 20 profile image (the 35x35 grain cannot fit and is skipped).
inline core::EaModelConfig bench_ea_config(std::uint64_t seed) {
  core::EaModelConfig cfg;
  cfg.backend = core::EaBackend::kDeepForest;
  cfg.deep_forest.mgs.window_sizes = {5, 10, 15};
  cfg.deep_forest.mgs.estimators = 20;
  cfg.deep_forest.mgs.seed = seed;
  cfg.deep_forest.cascade.levels = 3;
  cfg.deep_forest.cascade.forests_per_level = 4;
  cfg.deep_forest.cascade.estimators = 40;
  cfg.deep_forest.cascade.seed = seed + 1;
  return cfg;
}

/// A named pairing used across the evaluation harnesses.
struct Pairing {
  wl::Benchmark a;
  wl::Benchmark b;
};

/// The four collocation groups of Fig. 8 (micro-service, key-value, Spark,
/// Rodinia/HPC).
inline std::vector<Pairing> evaluation_pairings() {
  return {{wl::Benchmark::kSocial, wl::Benchmark::kRedis},
          {wl::Benchmark::kSpkmeans, wl::Benchmark::kSpstream},
          {wl::Benchmark::kJacobi, wl::Benchmark::kBfs},
          {wl::Benchmark::kKmeans, wl::Benchmark::kRedis}};
}

/// Collect stratified profiles for both directions of a pairing.
inline std::vector<profiler::Profile> collect_pairing(
    const profiler::Profiler& profiler, const Pairing& pairing,
    std::size_t budget, std::uint64_t seed) {
  profiler::SamplerConfig sc;
  sc.seed = seed;
  profiler::StratifiedSampler sampler(profiler, sc);
  auto profiles = sampler.collect(pairing.a, pairing.b, budget);
  auto rev = sampler.collect(pairing.b, pairing.a, budget);
  for (auto& p : rev) profiles.push_back(std::move(p));
  return profiles;
}

/// Split profiles by *condition seed* so windows of one run never straddle
/// the train/test boundary (leakage guard).
inline void split_profiles(const std::vector<profiler::Profile>& profiles,
                           double train_fraction, std::uint64_t seed,
                           std::vector<profiler::Profile>& train,
                           std::vector<profiler::Profile>& test) {
  std::vector<std::uint64_t> ids;
  for (const auto& p : profiles) {
    if (std::find(ids.begin(), ids.end(), p.condition.seed) == ids.end())
      ids.push_back(p.condition.seed);
  }
  Rng rng(seed);
  rng.shuffle(ids);
  const std::size_t n_train = std::max<std::size_t>(
      1, static_cast<std::size_t>(train_fraction *
                                  static_cast<double>(ids.size())));
  for (const auto& p : profiles) {
    const auto it = std::find(ids.begin(), ids.end(), p.condition.seed);
    const auto rank = static_cast<std::size_t>(it - ids.begin());
    (rank < n_train ? train : test).push_back(p);
  }
}

/// Median / p95 APE aggregate.
struct ApeSummary {
  double median = 0.0;
  double p95 = 0.0;
  std::size_t count = 0;
};

inline ApeSummary summarize_apes(const std::vector<double>& apes) {
  SampleStats st{std::vector<double>(apes)};
  ApeSummary s;
  if (!apes.empty()) {
    s.median = st.median();
    s.p95 = st.percentile(0.95);
    s.count = apes.size();
  }
  return s;
}

/// CSV path under a results/ directory beside the binary (kept out of the
/// bench directory itself so `for b in build/bench/*` stays executable).
inline std::string csv_path(const char* argv0, const std::string& suffix = "") {
  const std::filesystem::path self(argv0);
  const std::filesystem::path dir = self.parent_path() / "results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best-effort
  return (dir / (self.filename().string() + suffix + ".csv")).string();
}

}  // namespace stac::bench

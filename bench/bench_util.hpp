// Shared infrastructure for the experiment harnesses: default
// configurations, profile collection over pairings, APE aggregation, and
// uniform output (console table + CSV beside the binary).
//
// Every harness accepts:
//   --budget N   conditions profiled per collocation direction
//   --seed S     master seed
//   --fast       shrink everything (CI smoke mode)
// and prints the regenerated table/figure series.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/stac_manager.hpp"

namespace stac::bench {

struct BenchArgs {
  std::size_t budget = 24;
  std::uint64_t seed = 2022;  // ICPP '22
  bool fast = false;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--fast") == 0) {
        args.fast = true;
        args.budget = 10;
      } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
        args.budget = static_cast<std::size_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        args.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      } else {
        std::cerr << "usage: " << argv[0]
                  << " [--budget N] [--seed S] [--fast]\n";
        std::exit(2);
      }
    }
    return args;
  }
};

/// Profiler configuration tuned for bench runtime (a few hundred testbed
/// completions per condition is enough for stable means).
inline profiler::ProfilerConfig bench_profiler_config() {
  profiler::ProfilerConfig cfg;
  cfg.target_completions = 900;
  cfg.warmup_completions = 100;
  cfg.max_windows = 2;
  cfg.accesses_per_sample = 1500;
  return cfg;
}

/// Deep-forest configuration matching the paper's §5 structure scaled for
/// wall-clock: 4 MGS windows are listed in the paper; 5/10/15 fit our
/// 58 x 20 profile image (the 35x35 grain cannot fit and is skipped).
inline core::EaModelConfig bench_ea_config(std::uint64_t seed) {
  core::EaModelConfig cfg;
  cfg.backend = core::EaBackend::kDeepForest;
  cfg.deep_forest.mgs.window_sizes = {5, 10, 15};
  cfg.deep_forest.mgs.estimators = 20;
  cfg.deep_forest.mgs.seed = seed;
  cfg.deep_forest.cascade.levels = 3;
  cfg.deep_forest.cascade.forests_per_level = 4;
  cfg.deep_forest.cascade.estimators = 40;
  cfg.deep_forest.cascade.seed = seed + 1;
  return cfg;
}

/// A named pairing used across the evaluation harnesses.
struct Pairing {
  wl::Benchmark a;
  wl::Benchmark b;
};

/// The four collocation groups of Fig. 8 (micro-service, key-value, Spark,
/// Rodinia/HPC).
inline std::vector<Pairing> evaluation_pairings() {
  return {{wl::Benchmark::kSocial, wl::Benchmark::kRedis},
          {wl::Benchmark::kSpkmeans, wl::Benchmark::kSpstream},
          {wl::Benchmark::kJacobi, wl::Benchmark::kBfs},
          {wl::Benchmark::kKmeans, wl::Benchmark::kRedis}};
}

/// Collect stratified profiles for both directions of a pairing.
inline std::vector<profiler::Profile> collect_pairing(
    const profiler::Profiler& profiler, const Pairing& pairing,
    std::size_t budget, std::uint64_t seed) {
  profiler::SamplerConfig sc;
  sc.seed = seed;
  profiler::StratifiedSampler sampler(profiler, sc);
  auto profiles = sampler.collect(pairing.a, pairing.b, budget);
  auto rev = sampler.collect(pairing.b, pairing.a, budget);
  for (auto& p : rev) profiles.push_back(std::move(p));
  return profiles;
}

/// Split profiles by *condition seed* so windows of one run never straddle
/// the train/test boundary (leakage guard).
inline void split_profiles(const std::vector<profiler::Profile>& profiles,
                           double train_fraction, std::uint64_t seed,
                           std::vector<profiler::Profile>& train,
                           std::vector<profiler::Profile>& test) {
  std::vector<std::uint64_t> ids;
  for (const auto& p : profiles) {
    if (std::find(ids.begin(), ids.end(), p.condition.seed) == ids.end())
      ids.push_back(p.condition.seed);
  }
  Rng rng(seed);
  rng.shuffle(ids);
  const std::size_t n_train = std::max<std::size_t>(
      1, static_cast<std::size_t>(train_fraction *
                                  static_cast<double>(ids.size())));
  for (const auto& p : profiles) {
    const auto it = std::find(ids.begin(), ids.end(), p.condition.seed);
    const auto rank = static_cast<std::size_t>(it - ids.begin());
    (rank < n_train ? train : test).push_back(p);
  }
}

/// Median / p95 APE aggregate.
struct ApeSummary {
  double median = 0.0;
  double p95 = 0.0;
  std::size_t count = 0;
};

inline ApeSummary summarize_apes(const std::vector<double>& apes) {
  SampleStats st{std::vector<double>(apes)};
  ApeSummary s;
  if (!apes.empty()) {
    s.median = st.median();
    s.p95 = st.percentile(0.95);
    s.count = apes.size();
  }
  return s;
}

/// CSV path under a results/ directory beside the binary (kept out of the
/// bench directory itself so `for b in build/bench/*` stays executable).
inline std::string csv_path(const char* argv0, const std::string& suffix = "") {
  const std::filesystem::path self(argv0);
  const std::filesystem::path dir = self.parent_path() / "results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best-effort
  return (dir / (self.filename().string() + suffix + ".csv")).string();
}

}  // namespace stac::bench

// Figure 5: run-to-run variation of deep forests vs CNNs.
//
// Trains each model `runs` times on the same profile dataset with different
// random seeds and reports min/mean/max training accuracy, validation
// accuracy and training time.  Expected shape: the best CNN beats the deep
// forest, but the worst CNN is ~2x worse; the deep forest's spread is
// narrow (it trains layer by layer instead of overwriting weights).
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "ml/neural_net.hpp"

using namespace stac;
using namespace stac::bench;
using profiler::Profile;
using profiler::Profiler;

namespace {

struct RunStats {
  StreamingStats train_acc, val_acc, seconds;
};

/// Accuracy = 1 - mean APE of EA predictions (clamped at 0).
double accuracy(const std::vector<double>& predicted,
                const std::vector<double>& actual) {
  double ape = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i)
    ape += std::abs(predicted[i] - actual[i]) /
           std::max(1e-6, std::abs(actual[i]));
  ape /= static_cast<double>(predicted.size());
  return std::max(0.0, 1.0 - ape);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t runs = args.fast ? 6 : 20;
  print_banner(std::cout, "Figure 5 — random variation over " +
                              std::to_string(runs) + " training runs");

  Profiler profiler(bench_profiler_config());
  const auto profiles = collect_pairing(
      profiler, {wl::Benchmark::kKmeans, wl::Benchmark::kRedis}, args.budget,
      args.seed);
  std::vector<Profile> train, val;
  split_profiles(profiles, 0.7, args.seed + 5, train, val);
  std::cout << "dataset: " << train.size() << " train / " << val.size()
            << " validation profiles\n";

  auto targets = [](const std::vector<Profile>& ps) {
    std::vector<double> t;
    for (const auto& p : ps) t.push_back(p.ea_boost);
    return t;
  };
  auto samples = [](const std::vector<Profile>& ps) {
    std::vector<ml::ProfileSample> s;
    for (const auto& p : ps) s.push_back(Profiler::to_sample(p));
    return s;
  };
  const auto train_x = samples(train);
  const auto train_y = targets(train);
  const auto val_x = samples(val);
  const auto val_y = targets(val);

  RunStats df_stats, cnn_stats, res_stats;
  for (std::size_t run = 0; run < runs; ++run) {
    {  // Deep forest (as EA model, full MGS + cascade).
      core::EaModelConfig cfg = bench_ea_config(args.seed + 100 + run);
      cfg.deep_forest.mgs.estimators = args.fast ? 10 : 15;
      cfg.deep_forest.cascade.estimators = args.fast ? 20 : 30;
      core::EaModel model(cfg);
      const auto t0 = std::chrono::steady_clock::now();
      model.fit(train);
      df_stats.seconds.add(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
      std::vector<double> pt, pv;
      for (const auto& p : train) pt.push_back(model.predict(model.make_sample(p)));
      for (const auto& p : val) pv.push_back(model.predict(model.make_sample(p)));
      df_stats.train_acc.add(accuracy(pt, train_y));
      df_stats.val_acc.add(accuracy(pv, val_y));
    }
    {  // CNN with fresh random initialization each run.
      ml::ConvNetConfig cfg;
      cfg.kernels = 4;
      cfg.hidden = 32;
      cfg.epochs = args.fast ? 25 : 60;
      cfg.seed = args.seed + 500 + run;
      ml::ConvNet net(cfg);
      const auto t0 = std::chrono::steady_clock::now();
      net.fit(train_x, train_y);
      cnn_stats.seconds.add(std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
      std::vector<double> pt, pv;
      for (const auto& s : train_x) pt.push_back(net.predict(s));
      for (const auto& s : val_x) pv.push_back(net.predict(s));
      cnn_stats.train_acc.add(accuracy(pt, train_y));
      cnn_stats.val_acc.add(accuracy(pv, val_y));
    }
    {  // Residual variant — the paper's stated future work.
      ml::ConvNetConfig cfg;
      cfg.kernels = 4;
      cfg.hidden = 32;
      cfg.residual_blocks = 2;
      cfg.epochs = args.fast ? 25 : 60;
      cfg.seed = args.seed + 900 + run;
      ml::ConvNet net(cfg);
      const auto t0 = std::chrono::steady_clock::now();
      net.fit(train_x, train_y);
      res_stats.seconds.add(std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
      std::vector<double> pt, pv;
      for (const auto& s : train_x) pt.push_back(net.predict(s));
      for (const auto& s : val_x) pv.push_back(net.predict(s));
      res_stats.train_acc.add(accuracy(pt, train_y));
      res_stats.val_acc.add(accuracy(pv, val_y));
    }
    std::cout << "run " << run + 1 << "/" << runs << " done\n";
  }

  Table table({"Model", "Metric", "min", "mean", "max"});
  auto emit = [&](const std::string& model, const std::string& metric,
                  const StreamingStats& st, bool pct) {
    auto f = [&](double v) {
      return pct ? Table::pct(v) : Table::num(v, 2) + "s";
    };
    table.add_row({model, metric, f(st.min()), f(st.mean()), f(st.max())});
  };
  emit("Deep forest", "training accuracy", df_stats.train_acc, true);
  emit("Deep forest", "validation accuracy", df_stats.val_acc, true);
  emit("Deep forest", "training time", df_stats.seconds, false);
  emit("CNN", "training accuracy", cnn_stats.train_acc, true);
  emit("CNN", "validation accuracy", cnn_stats.val_acc, true);
  emit("CNN", "training time", cnn_stats.seconds, false);
  emit("ResNet (future work)", "training accuracy", res_stats.train_acc, true);
  emit("ResNet (future work)", "validation accuracy", res_stats.val_acc, true);
  emit("ResNet (future work)", "training time", res_stats.seconds, false);
  table.print(std::cout);
  table.write_csv(csv_path(argv[0]));

  const double df_spread =
      df_stats.val_acc.max() - df_stats.val_acc.min();
  const double cnn_spread =
      cnn_stats.val_acc.max() - cnn_stats.val_acc.min();
  std::cout << "\nvalidation-accuracy spread: deep forest "
            << Table::pct(df_spread) << " vs CNN " << Table::pct(cnn_spread)
            << " (paper: deep forests reliably low error; worst CNN ~2x "
               "worse)\n";
  return 0;
}

// Figure 6: accuracy of response-time predictions.
//
// Compares six approaches on held-out runtime conditions:
//   linear       — direct RT regression (statics + dynamics + counter
//                  summaries), 70/30 split
//   tree         — single CART, same inputs/split
//   cnn          — conv net over the profile image, TUNE-style random
//                  search, 70/30 split
//   queue-model  — Stage-3 simulator with contention-blind analytic EA
//   queue+conc.  — cascade-only EA (no MGS) + Stage-3 simulator, 33/67
//   ours         — deep forest EA (MGS + cascade) + Stage-3 simulator,
//                  33/67 split (the paper trains the full approach on a
//                  third of the data to keep profiling overhead low)
//
// Expected shape (paper): linear >> tree >~ cnn >~ queue-model > ours,
// with ours around 11% median APE and linear's p95 exploding.
#include <iostream>

#include "bench_util.hpp"
#include "core/direct_rt_model.hpp"

using namespace stac;
using namespace stac::bench;
using core::DirectBackend;
using core::DirectRtConfig;
using core::DirectRtModel;
using core::EaBackend;
using core::EaModel;
using core::ProfileLibrary;
using core::RtPredictor;
using core::RtPredictorConfig;
using profiler::Profile;
using profiler::Profiler;

namespace {

/// Stage-3 prediction error over test profiles, given an EA model trained
/// on the train profiles (or analytic EA when model == nullptr).
std::vector<double> stage3_apes(const Profiler& profiler,
                                const std::vector<Profile>& train,
                                const std::vector<Profile>& test,
                                const EaModel* model, std::uint64_t seed) {
  ProfileLibrary library;
  library.add_all(std::vector<Profile>(train));
  RtPredictorConfig cfg;
  cfg.analytic_ea = model == nullptr;
  cfg.seed = seed;
  RtPredictor predictor(profiler, model, model ? &library : nullptr, cfg);
  std::vector<double> apes;
  for (const auto& p : test) {
    // The learned variants read the condition's observed counters (the
    // paper only forbids training on the test profile); the pure queue
    // model is first-principles only: exploration mode, no measured data.
    const double predicted = model
                                 ? predictor.predict_for_profile(p).mean_rt
                                 : predictor.predict(p.condition).mean_rt;
    apes.push_back(absolute_percent_error(predicted, p.mean_rt));
  }
  return apes;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_banner(std::cout, "Figure 6 — response-time prediction accuracy");

  Profiler profiler(bench_profiler_config());
  std::vector<std::vector<Profile>> by_pairing;
  for (std::size_t i = 0; i < evaluation_pairings().size(); ++i) {
    by_pairing.push_back(collect_pairing(
        profiler, evaluation_pairings()[i], args.budget, args.seed + i));
    std::cout << "profiled pairing " << i + 1 << "/4: "
              << by_pairing.back().size() << " profiles\n";
  }

  std::vector<double> ape_ours, ape_concepts, ape_queue;
  std::vector<Profile> pooled_train70, pooled_test30;

  for (std::size_t i = 0; i < by_pairing.size(); ++i) {
    // Ours + queue variants: per-pairing calibration, 33/67 split.
    std::vector<Profile> train33, test67;
    split_profiles(by_pairing[i], 0.33, args.seed + 11 + i, train33, test67);

    EaModel ours(bench_ea_config(args.seed + i));
    ours.fit(train33);
    for (double a :
         stage3_apes(profiler, train33, test67, &ours, args.seed + 21))
      ape_ours.push_back(a);

    core::EaModelConfig cc = bench_ea_config(args.seed + i);
    cc.backend = EaBackend::kCascadeOnly;
    EaModel concepts(cc);
    concepts.fit(train33);
    for (double a :
         stage3_apes(profiler, train33, test67, &concepts, args.seed + 22))
      ape_concepts.push_back(a);

    for (double a :
         stage3_apes(profiler, train33, test67, nullptr, args.seed + 23))
      ape_queue.push_back(a);

    // Competitors pool all pairings at 70/30.
    std::vector<Profile> train70, test30;
    split_profiles(by_pairing[i], 0.70, args.seed + 31 + i, train70, test30);
    for (auto& p : train70) pooled_train70.push_back(std::move(p));
    for (auto& p : test30) pooled_test30.push_back(std::move(p));
  }

  auto direct_apes = [&](DirectBackend backend,
                         std::size_t tune) -> std::vector<double> {
    DirectRtConfig cfg;
    cfg.backend = backend;
    cfg.tune_trials = tune;
    cfg.seed = args.seed + 41;
    cfg.cnn.kernels = 4;
    cfg.cnn.hidden = 32;
    cfg.cnn.epochs = args.fast ? 30 : 80;
    DirectRtModel model(cfg);
    model.fit(pooled_train70);
    std::vector<double> apes;
    for (const auto& p : pooled_test30) {
      const double predicted = model.predict(p) * p.scaled_base_primary;
      apes.push_back(absolute_percent_error(predicted, p.mean_rt));
    }
    return apes;
  };

  const auto ape_linear = direct_apes(DirectBackend::kLinear, 0);
  const auto ape_tree = direct_apes(DirectBackend::kTree, 0);
  const auto ape_cnn = direct_apes(DirectBackend::kCnn, args.fast ? 2 : 5);

  Table table({"Approach", "Median APE", "p95 APE", "test rows"});
  auto emit = [&](const std::string& name, const std::vector<double>& apes) {
    const ApeSummary s = summarize_apes(apes);
    table.add_row({name, Table::pct(s.median), Table::pct(s.p95),
                   std::to_string(s.count)});
  };
  emit("Linear regression (direct)", ape_linear);
  emit("Decision tree (direct)", ape_tree);
  emit("CNN (direct)", ape_cnn);
  emit("Queue model (analytic EA)", ape_queue);
  emit("Queue + concepts (cascade EA)", ape_concepts);
  emit("Ours (deep forest EA + queue)", ape_ours);
  table.print(std::cout);
  table.write_csv(csv_path(argv[0]));

  std::cout << "\nPaper reference: ours 11% median / 12% p95; linear ~50% "
               "median, p95 > 300%;\ntree ~20% median, p95 > 100%; CNN ~26%; "
               "queue-only ~23%.\n";
  return 0;
}

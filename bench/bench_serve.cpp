// Serving-runtime performance harness (PR-9 record, BENCH_PR9.json).
//
// Sections:
//   ingest_throughput — raw MPSC ring rate under producer contention,
//                       gated at >= 1M simulated events/min end to end;
//   control_epoch     — closed-loop epoch planning latency on stationary
//                       traffic with a live background RefitExecutor: mid-run
//                       refits land off-thread (no epoch ever carries a
//                       fit); epochs split three ways — warmup transient
//                       (memo cold, full sweeps), refit-bearing epochs (a
//                       published swap invalidates the memo: one re-sweep),
//                       and the steady state.  Gates: steady plan p99
//                       under 10 ms, steady epoch p99 within 2x of steady
//                       plan p99;
//   refit             — PR-9 tentpole gate: cold full fit vs warm-start
//                       incremental refit on a grown profile library
//                       (warm >= 5x cheaper), accuracy-parity RMSE bound,
//                       and flattened-vs-pointer-walk predict bitwise
//                       identity;
//   hot_swap          — model hot-swaps under live load, gated on zero
//                       lost events;
//   recovery_time     — checkpoint write / load / recover latency, plus the
//                       post-restart epochs until the first replan, gated on
//                       the recovered vector matching the checkpointed one;
//                       the post-restart bundle is published by the
//                       RefitExecutor — recovery never carries a fit inline;
//   overload          — 5x offered load against a small ring with admission
//                       control and a plan deadline budget, gated on plan
//                       p99 within the budget (shed fraction recorded; the
//                       admission gauges land in obs_metrics);
//   fleet_identity    — PR-8 acceptance gate: a 1-shard FleetCoordinator and
//                       a standalone OnlineController replay the same
//                       traffic and must make bit-identical timeout
//                       selections every epoch.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <random>
#include <span>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cachesim/simd_probe.hpp"
#include "fleet/fleet_coordinator.hpp"
#include "ml/random_forest.hpp"
#include "obs/trace.hpp"
#include "serve/checkpoint.hpp"
#include "serve/online_controller.hpp"
#include "serve/refit_executor.hpp"
#include "serve/traffic_replay.hpp"

using namespace stac;
using namespace stac::bench;

namespace {

core::StacOptions serve_options(const BenchArgs& args) {
  core::StacOptions opts;
  opts.profile_budget = args.fast ? 6 : 10;
  opts.profiler.target_completions = args.fast ? 250 : 500;
  opts.profiler.warmup_completions = 40;
  opts.profiler.max_windows = 1;
  opts.profiler.accesses_per_sample = 800;
  opts.model.deep_forest.mgs.window_sizes = {5};
  opts.model.deep_forest.mgs.estimators = 8;
  opts.model.deep_forest.cascade.levels = 1;
  opts.model.deep_forest.cascade.estimators = 12;
  opts.predictor.sim_queries = args.fast ? 1500 : 3000;
  opts.sampler.seed = args.seed;
  return opts;
}

profiler::RuntimeCondition serve_condition() {
  profiler::RuntimeCondition c;
  c.primary = wl::Benchmark::kKmeans;
  c.collocated = wl::Benchmark::kRedis;
  c.util_primary = 0.6;
  c.util_collocated = 0.6;
  c.timeout_primary = 1.0;
  c.timeout_collocated = 1.0;
  c.seed = 99;
  return c;
}

serve::ControllerConfig controller_config(const core::StacOptions& opts) {
  serve::ControllerConfig cfg;
  cfg.base_condition = serve_condition();
  cfg.explorer = opts.explorer;
  cfg.estimator.min_completions = 10;
  // The EWMA estimate's noise straddles a quantization boundary, so the
  // planned condition flips between adjacent cells indefinitely; the memo
  // pool keeps each recurring cell's matrices warm, but every *distinct*
  // cell still pays one cold sweep.  A coarser quantum keeps that recurring
  // set small (here {lo,hi}^2 + the descent cells ≈ 5, within the pool's
  // default capacity), so the whole transient lands in the warmup window.
  cfg.util_quantum = 0.1;
  // Health-check cadence: one staleness probe per 5 epochs (10 s of sim
  // time).  On the 4 reuse epochs the plan path runs no EA inference at
  // all — that, plus the memo-answered sweep, is the sub-10ms epoch.
  cfg.probe_ttl_epochs = 5;
  return cfg;
}

/// Section 1: raw ring throughput, producers vs the single consumer.
JsonObject bench_ingest_throughput(const BenchArgs& args) {
  const std::size_t producers = 3;
  const std::uint64_t per_producer = args.fast ? 200'000 : 1'000'000;
  serve::ArrivalIngest ring(1 << 14);

  Stopwatch clock;
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&ring, per_producer, p] {
      serve::QueryEvent e;
      e.kind = serve::EventKind::kArrival;
      e.producer = static_cast<std::uint32_t>(p);
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        e.time = static_cast<double>(i);
        (void)ring.try_push(e);  // drops are part of the contract
      }
    });
  }
  std::uint64_t consumed = 0;
  std::vector<serve::QueryEvent> batch(4096);
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    for (;;) {
      const bool finished = done.load(std::memory_order_acquire);
      const std::size_t n = ring.drain(batch);
      consumed += n;
      if (finished && n == 0) break;
    }
  });
  for (auto& t : threads) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();
  const double seconds = clock.seconds();

  const double attempted = static_cast<double>(producers * per_producer);
  const double consumed_per_min = static_cast<double>(consumed) / seconds * 60;
  JsonObject out;
  out.set("producers", producers);
  out.set("events_attempted", static_cast<std::size_t>(attempted));
  out.set("events_consumed", static_cast<std::size_t>(consumed));
  out.set("events_dropped", static_cast<std::size_t>(ring.dropped()));
  out.set("seconds", seconds);
  out.set("consumed_per_minute", consumed_per_min);
  out.set("accounting_exact",
          ring.pushed() + ring.dropped() ==
              static_cast<std::uint64_t>(attempted) &&
              ring.popped() == ring.pushed());
  out.set("throughput_gate_1m_per_min", consumed_per_min >= 1'000'000.0);
  std::printf("  ingest: %.2fM events consumed in %.2fs (%.1fM/min, "
              "%llu dropped)\n",
              static_cast<double>(consumed) / 1e6, seconds,
              consumed_per_min / 1e6,
              static_cast<unsigned long long>(ring.dropped()));
  return out;
}

serve::RefitExecutorConfig refit_executor_config(
    const core::StacOptions& opts) {
  serve::RefitExecutorConfig cfg;
  cfg.model = opts.model;
  cfg.predictor = opts.predictor;
  return cfg;
}

/// Section 2: per-epoch planning latency on stationary closed-loop traffic,
/// with the background RefitExecutor live — refits land mid-run and no
/// epoch ever carries a fit.
JsonObject bench_control_epoch(const BenchArgs& args,
                               const core::StacManager& mgr,
                               const core::StacOptions& opts) {
  serve::ArrivalIngest ring(1 << 16);
  serve::ModelSnapshot<serve::ServingModel> models(
      serve::build_serving_model(mgr, opts, 1));
  serve::OnlineController controller(ring, models, controller_config(opts));

  // The refit pipeline: the executor owns the library + master models and
  // publishes refreshed bundles from its own thread.  Two refits are
  // requested mid-run (the first is cold — the executor's masters start
  // untrained — the second warm-starts).  The epoch loop never blocks on
  // either; the swap epochs they induce pay one memo re-sweep each and are
  // classified out of the steady set below.
  serve::RefitExecutor refits(mgr.profiler(), models, mgr.library(),
                              refit_executor_config(opts),
                              /*first_version=*/2);
  refits.start();

  serve::ReplayConfig traffic;
  traffic.workloads = {{.mean_service = 0.05, .servers = 2, .base_util = 0.6},
                       {.mean_service = 0.05, .servers = 2, .base_util = 0.6}};
  traffic.seed = args.seed;
  serve::TrafficReplay replay(ring, &controller, traffic);

  // The first epochs are the transient — estimator warming, memo cold (a
  // full grid sweep each time the quantized condition moves).  Once the
  // condition settles, every sweep answers from the ExplorationMemo and
  // planning is matrix reads + selection: that steady state is what the
  // sub-10ms gate measures.
  // The transient ends when every recurring quantized cell has been swept
  // once: the EWMA descends from cold through several cells, then its noise
  // straddles a quantization boundary and flips between adjacent cells —
  // first visits are full sweeps, revisits answer from the memo pool.  In
  // the 100-epoch run the last first-visit lands around epoch 31
  // (deterministic for the fixed seed), so the warmup window covers it.
  const std::size_t warmup = args.fast ? 12 : 35;
  const std::size_t epochs = args.fast ? 30 : 100;
  // Refit schedule: request k, then a few epochs later (still outside the
  // epoch timing) wait for the publish so the remaining epochs observe the
  // swap even on a machine where the fit outlasts the un-paced loop.
  const std::size_t refit_req_1 = warmup + (args.fast ? 4 : 10);
  const std::size_t refit_req_2 = warmup + (args.fast ? 11 : 35);
  const double interval = 2.0;
  std::vector<double> warmup_seconds;
  std::vector<double> plan_seconds;
  std::vector<double> epoch_seconds;        // every epoch, for the record
  std::vector<double> steady_epoch_seconds; // post-warmup, refit-free
  std::vector<double> refit_epoch_seconds;  // post-warmup swap/re-sweep epochs
  plan_seconds.reserve(epochs);
  epoch_seconds.reserve(epochs);
  std::uint64_t replans = 0;
  std::uint64_t cells_simulated = 0;
  std::uint64_t cells_reused = 0;
  std::uint64_t steady_cells_simulated = 0;
  std::uint64_t swaps_seen = 0;
  std::uint64_t refit_ticket = 0;
  double refit_wait_seconds = 0.0;
  for (std::size_t k = 0; k < epochs; ++k) {
    const double t1 = static_cast<double>(k + 1) * interval;
    (void)replay.generate(static_cast<double>(k) * interval, t1);
    Stopwatch epoch_clock;
    const serve::EpochReport r = controller.run_epoch(t1);
    epoch_seconds.push_back(epoch_clock.seconds());
    if (std::getenv("STAC_BENCH_EPOCH_DEBUG") != nullptr) {
      std::printf("    [epoch %3zu] plan %.3f ms sim %zu reuse %zu "
                  "util (%.3f, %.3f)\n",
                  k, r.plan_seconds * 1e3, r.cells_simulated, r.cells_reused,
                  r.planned_condition.util_primary,
                  r.planned_condition.util_collocated);
    }
    // Classify BEFORE the off-path executor interaction below: an epoch is
    // refit-bearing when it observed a published swap (the planner re-probes
    // and the memo re-sweeps under the new model version that same epoch).
    const std::uint64_t swaps_now = controller.totals().model_swaps_observed;
    const bool swap_epoch = swaps_now != swaps_seen;
    swaps_seen = swaps_now;
    const bool refit_bearing =
        k >= warmup && (swap_epoch || r.cells_simulated > 0);
    if (k < warmup) {
      warmup_seconds.push_back(r.plan_seconds);
    } else if (refit_bearing) {
      refit_epoch_seconds.push_back(epoch_seconds.back());
    } else {
      plan_seconds.push_back(r.plan_seconds);
      steady_epoch_seconds.push_back(epoch_seconds.back());
    }
    if (r.replanned) ++replans;
    cells_simulated += r.cells_simulated;
    cells_reused += r.cells_reused;
    if (k >= warmup && !refit_bearing)
      steady_cells_simulated += r.cells_simulated;
    // Off the epoch clock: enqueue background refits at the scheduled
    // epochs, and a few epochs after each request make sure the publish has
    // landed (the wait is the *executor's* latency, never an epoch's).
    if (k == refit_req_1 || k == refit_req_2)
      refit_ticket = refits.request_refit(core::ProfileLibrary{});
    if ((k == refit_req_1 + 3 || k == refit_req_2 + 3) && refit_ticket != 0) {
      Stopwatch w;
      (void)refits.wait(refit_ticket, /*timeout_seconds=*/60.0);
      refit_wait_seconds += w.seconds();
    }
  }
  refits.stop();
  const serve::RefitStats refit_stats = refits.stats();

  // percentile_or everywhere a latency set could be empty (a section run
  // with every epoch in warmup, or a fleet shard with zero completions in
  // the merge window): the record carries a 0.0, never a throw or a NaN.
  SampleStats warm{std::vector<double>(warmup_seconds)};
  SampleStats plan{std::vector<double>(plan_seconds)};
  SampleStats epoch{std::vector<double>(epoch_seconds)};
  SampleStats steady_epoch{std::vector<double>(steady_epoch_seconds)};
  SampleStats refit_epoch{std::vector<double>(refit_epoch_seconds)};
  const auto guard = models.acquire();
  const auto cache = guard->pred().cache_stats();
  const double plan_p99 = plan.percentile_or(0.99, 0.0);
  const double steady_epoch_p99 = steady_epoch.percentile_or(0.99, 0.0);
  const bool epoch_gate =
      plan_p99 > 0.0 && steady_epoch_p99 <= 2.0 * plan_p99;

  JsonObject out;
  out.set("epochs", epochs);
  out.set("warmup_epochs", warmup);
  out.set("replans", static_cast<std::size_t>(replans));
  out.set("events_drained",
          static_cast<std::size_t>(controller.totals().events_drained));
  out.set("warmup_plan_p50_seconds", warm.percentile_or(0.5, 0.0));
  out.set("plan_p50_seconds", plan.percentile_or(0.5, 0.0));
  out.set("plan_p99_seconds", plan_p99);
  // epoch_p50/p99_seconds are the *steady* epochs — post-warmup, minus the
  // refit-bearing swap/re-sweep epochs, which are reported on their own
  // below (pre-PR-9, the all-epochs p99 quoted the 0.29 s re-sweep outlier
  // as if it were the steady control period).
  out.set("epoch_p50_seconds", steady_epoch.percentile_or(0.5, 0.0));
  out.set("epoch_p99_seconds", steady_epoch_p99);
  out.set("epoch_all_p99_seconds", epoch.percentile_or(0.99, 0.0));
  out.set("refit_epochs", refit_epoch_seconds.size());
  out.set("refit_epoch_max_seconds", refit_epoch.percentile_or(1.0, 0.0));
  out.set("refits_requested", static_cast<std::size_t>(refit_stats.requests));
  out.set("refits_completed", static_cast<std::size_t>(refit_stats.completed));
  out.set("refits_warm", static_cast<std::size_t>(refit_stats.warm));
  out.set("refits_cold", static_cast<std::size_t>(refit_stats.cold));
  out.set("refit_wait_seconds", refit_wait_seconds);
  out.set("swaps_observed", static_cast<std::size_t>(swaps_seen));
  out.set("cells_simulated", static_cast<std::size_t>(cells_simulated));
  out.set("cells_reused", static_cast<std::size_t>(cells_reused));
  out.set("steady_cells_simulated",
          static_cast<std::size_t>(steady_cells_simulated));
  out.set("rt_cache_hit_rate", cache.hit_rate());
  out.set("plan_p99_under_10ms", plan_p99 < 0.010);
  out.set("epoch_p99_under_2x_plan_p99", epoch_gate);
  std::printf("  control epoch: warmup plan p50 %.1f ms; steady plan p50 "
              "%.2f ms, p99 %.2f ms; steady epoch p99 %.2f ms over %zu "
              "epochs (%llu replans, %zu refit-bearing epochs, %llu swaps, "
              "%llu warm / %llu cold refits, rt_cache hit rate %.2f)\n",
              warm.percentile_or(0.5, 0.0) * 1e3,
              plan.percentile_or(0.5, 0.0) * 1e3, plan_p99 * 1e3,
              steady_epoch_p99 * 1e3, epochs,
              static_cast<unsigned long long>(replans),
              refit_epoch_seconds.size(),
              static_cast<unsigned long long>(swaps_seen),
              static_cast<unsigned long long>(refit_stats.warm),
              static_cast<unsigned long long>(refit_stats.cold),
              cache.hit_rate());
  return out;
}

/// Section 2b (PR-9 tentpole gate): the refit pipeline itself.  Cold full
/// fit vs warm-start incremental refit on a grown profile library, the
/// accuracy-parity contract, and flattened-forest predict identity.
JsonObject bench_refit(const BenchArgs& args, const core::StacManager& mgr,
                       const core::StacOptions& opts) {
  // Grown-library scenario: the calibrated library doubled with
  // perturbed-condition copies (merge/dedup is by exact condition, so each
  // synthetic profile nudges timeout_primary by a distinct epsilon — same
  // feature scale, distinct identity).
  const std::vector<profiler::Profile>& base = mgr.library().profiles();
  auto perturbed = [&](std::size_t i) {
    profiler::Profile p = base[i % base.size()];
    p.condition.timeout_primary += 1e-7 * static_cast<double>(i + 1);
    return p;
  };
  core::ProfileLibrary grown;
  std::vector<profiler::Profile> all;  // mirror of the executor's library
  for (const auto& p : base) {
    grown.add(p);
    all.push_back(p);
  }
  const std::size_t extra = base.size();
  for (std::size_t i = 0; i < extra; ++i) {
    grown.add(perturbed(i));
    all.push_back(perturbed(i));
  }

  // Executor-level timing: refit_now with no worker runs the full
  // merge -> fit -> assemble -> publish path inline on this thread, so the
  // Stopwatch sees exactly what the background worker would pay.  The
  // cadence backstop is disabled for the measurement (every rep must stay
  // warm); the cadence trigger itself is covered by the refit tests.
  serve::ModelSnapshot<serve::ServingModel> models;
  serve::RefitExecutorConfig rx = refit_executor_config(opts);
  rx.full_refit_every = 0;
  serve::RefitExecutor ex(mgr.profiler(), models, grown, rx);

  const std::size_t cold_reps = args.fast ? 2 : 3;
  const std::size_t warm_reps = args.fast ? 4 : 8;
  std::vector<double> cold_s;
  std::vector<double> warm_s;
  for (std::size_t i = 0; i < cold_reps; ++i) {
    Stopwatch w;
    (void)ex.refit_now(core::ProfileLibrary{}, /*force_cold=*/true);
    cold_s.push_back(w.seconds());
  }
  std::size_t tick = 0;
  for (std::size_t i = 0; i < warm_reps; ++i) {
    // Steady-state shape: each refit carries a small freshly-merged delta.
    core::ProfileLibrary delta;
    for (std::size_t j = 0; j < 2; ++j) {
      const profiler::Profile p = perturbed(extra + tick++);
      delta.add(p);
      all.push_back(p);
    }
    Stopwatch w;
    (void)ex.refit_now(std::move(delta));
    warm_s.push_back(w.seconds());
  }
  const serve::RefitStats st = ex.stats();
  SampleStats cold{std::vector<double>(cold_s)};
  SampleStats warm{std::vector<double>(warm_s)};
  const double cold_p50 = cold.percentile_or(0.5, 0.0);
  const double warm_p50 = warm.percentile_or(0.5, 0.0);
  const double speedup = warm_p50 > 0.0 ? cold_p50 / warm_p50 : 0.0;

  // Accuracy parity: a master that warm-refitted its way to the final
  // library must score within epsilon of a model cold-fitted on it.  RMSE
  // is against the Stage-2 target (ea_boost) over every profile.
  core::EaModel cold_model(opts.model);
  cold_model.fit(all);
  core::EaModel warm_model(opts.model);
  warm_model.fit(std::vector<profiler::Profile>(all.begin(),
                                                all.begin() + base.size()));
  warm_model.refit_incremental(all);
  auto rmse = [&](const core::EaModel& m) {
    double sq = 0.0;
    for (const auto& p : all) {
      const double d = m.predict(m.make_sample(p)) - p.ea_boost;
      sq += d * d;
    }
    return std::sqrt(sq / static_cast<double>(all.size()));
  };
  const double rmse_cold = rmse(cold_model);
  const double rmse_warm = rmse(warm_model);
  const double parity_epsilon = 0.05;
  const bool parity = rmse_warm <= rmse_cold + parity_epsilon;

  // Flattened-forest identity: the SoA arena walk must be bitwise equal to
  // the pointer walk, across seeds and across a warm refit.
  bool flat_identical = true;
  for (std::uint64_t seed = 1; seed <= 3 && flat_identical; ++seed) {
    ml::Dataset ds;
    std::mt19937_64 rng(seed * 7919);
    std::uniform_real_distribution<double> u(-2.0, 2.0);
    for (std::size_t i = 0; i < 160; ++i) {
      const double row[3] = {u(rng), u(rng), u(rng)};
      ds.add_row(std::span<const double>(row, 3),
                 row[0] * row[1] + (row[2] > 0 ? row[2] : -0.5 * row[2]));
    }
    ml::ForestConfig fc;
    fc.estimators = 12;
    fc.seed = seed;
    ml::ForestConfig fc_ptr = fc;
    fc_ptr.flatten = false;
    ml::RandomForest flat_rf(fc), ptr_rf(fc_ptr);
    flat_rf.fit(ds);
    ptr_rf.fit(ds);
    for (std::size_t i = 0; i < 40; ++i) {
      const double row[3] = {u(rng), u(rng), u(rng)};
      ds.add_row(std::span<const double>(row, 3), u(rng));
    }
    flat_rf.refit_incremental(ds);
    ptr_rf.refit_incremental(ds);
    for (std::size_t i = 0; i < 64 && flat_identical; ++i) {
      const double x[3] = {u(rng), u(rng), u(rng)};
      const double ya = flat_rf.predict(std::span<const double>(x, 3));
      const double yb = ptr_rf.predict(std::span<const double>(x, 3));
      flat_identical = std::memcmp(&ya, &yb, sizeof(double)) == 0;
    }
  }

  JsonObject out;
  out.set("library_profiles", all.size());
  out.set("base_profiles", base.size());
  out.set("cold_reps", cold_reps);
  out.set("warm_reps", warm_reps);
  out.set("cold_refit_p50_seconds", cold_p50);
  out.set("warm_refit_p50_seconds", warm_p50);
  out.set("warm_refit_p99_seconds", warm.percentile_or(0.99, 0.0));
  out.set("warm_speedup", speedup);
  out.set("refits_warm", static_cast<std::size_t>(st.warm));
  out.set("refits_cold", static_cast<std::size_t>(st.cold));
  out.set("profiles_merged", static_cast<std::size_t>(st.profiles_merged));
  out.set("rmse_cold", rmse_cold);
  out.set("rmse_warm", rmse_warm);
  out.set("parity_epsilon", parity_epsilon);
  out.set("warm_speedup_gate_5x", speedup >= 5.0);
  out.set("refit_parity_gate", parity);
  out.set("flat_predict_identical", flat_identical);
  std::printf("  refit: cold p50 %.0f ms, warm p50 %.0f ms (%.1fx, gate "
              ">=5x %s); rmse cold %.4f vs warm %.4f (parity %s); flat "
              "predict identical %s\n",
              cold_p50 * 1e3, warm_p50 * 1e3, speedup,
              speedup >= 5.0 ? "pass" : "FAIL", rmse_cold, rmse_warm,
              parity ? "pass" : "FAIL", flat_identical ? "true" : "FALSE");
  return out;
}

/// Section 3: hot-swapping models under live load loses nothing.
JsonObject bench_hot_swap(const BenchArgs& args, const core::StacManager& mgr,
                          const core::StacOptions& opts) {
  serve::ArrivalIngest ring(1 << 16);
  serve::ModelSnapshot<serve::ServingModel> models(
      serve::build_serving_model(mgr, opts, 1));
  serve::OnlineController controller(ring, models, controller_config(opts));

  serve::ReplayConfig traffic;
  traffic.workloads = {{.mean_service = 0.05, .servers = 2, .base_util = 0.6},
                       {.mean_service = 0.05, .servers = 2, .base_util = 0.6}};
  traffic.shards_per_workload = 2;
  traffic.seed = args.seed + 1;
  serve::TrafficReplay replay(ring, &controller, traffic);

  const std::size_t swaps = args.fast ? 3 : 6;
  std::vector<std::unique_ptr<const serve::ServingModel>> bundles;
  bundles.reserve(swaps);
  for (std::uint64_t v = 0; v < swaps; ++v)
    bundles.push_back(serve::build_serving_model(mgr, opts, v + 2));

  std::thread swapper([&] {
    for (auto& b : bundles) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      models.publish(std::move(b));
    }
  });
  const serve::SoakResult result = replay.run_threaded(
      controller, /*sim_seconds=*/40.0, /*epoch_interval=*/2.0,
      /*wall_pace=*/80.0);
  swapper.join();

  const bool zero_lost = result.traffic.push_failures == 0 &&
                         result.ingest_dropped == 0 &&
                         ring.popped() == ring.pushed() &&
                         result.controller.events_drained == ring.pushed();
  JsonObject out;
  out.set("swaps_published", swaps);
  out.set("swaps_observed",
          static_cast<std::size_t>(result.controller.model_swaps_observed));
  out.set("events", static_cast<std::size_t>(ring.pushed()));
  out.set("events_dropped", static_cast<std::size_t>(result.ingest_dropped));
  out.set("push_failures",
          static_cast<std::size_t>(result.traffic.push_failures));
  out.set("epochs", static_cast<std::size_t>(result.epochs));
  out.set("zero_lost", zero_lost);
  std::printf("  hot swap: %zu published, %llu observed, %llu events, "
              "zero_lost=%s\n",
              swaps,
              static_cast<unsigned long long>(
                  result.controller.model_swaps_observed),
              static_cast<unsigned long long>(ring.pushed()),
              zero_lost ? "true" : "false");
  return out;
}

/// Section 4: how fast a crashed controller is whole again.
JsonObject bench_recovery_time(const BenchArgs& args,
                               const core::StacManager& mgr,
                               const core::StacOptions& opts) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "stac_bench_recovery")
          .string();
  std::filesystem::create_directories(dir);
  const std::string path = serve::checkpoint_path(dir);

  // Warm a controller on stationary traffic so the checkpoint has real
  // EWMAs and a planned vector in it.
  serve::ControllerConfig cfg = controller_config(opts);
  cfg.checkpoint.directory = dir;
  cfg.checkpoint.every_n_epochs = 0;  // explicit checkpoint_now below
  serve::ArrivalIngest ring(1 << 16);
  serve::ModelSnapshot<serve::ServingModel> models(
      serve::build_serving_model(mgr, opts, 1));
  serve::OnlineController warm(ring, models, cfg);
  serve::ReplayConfig traffic;
  traffic.workloads = {{.mean_service = 0.05, .servers = 2, .base_util = 0.6},
                       {.mean_service = 0.05, .servers = 2, .base_util = 0.6}};
  traffic.seed = args.seed + 2;
  serve::TrafficReplay replay(ring, &warm, traffic);
  const std::size_t warm_epochs = args.fast ? 10 : 25;
  const double interval = 2.0;
  for (std::size_t k = 0; k < warm_epochs; ++k) {
    const double t1 = static_cast<double>(k + 1) * interval;
    (void)replay.generate(static_cast<double>(k) * interval, t1);
    (void)warm.run_epoch(t1);
  }
  const double t_crash = static_cast<double>(warm_epochs) * interval;

  // Measure each leg of the crash-recovery path.
  const std::size_t reps = args.fast ? 20 : 100;
  std::vector<double> save_s, load_s;
  save_s.reserve(reps);
  load_s.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    Stopwatch w;
    warm.checkpoint_now(t_crash);
    save_s.push_back(w.seconds());
  }
  serve::CheckpointLoadReport loaded;
  for (std::size_t i = 0; i < reps; ++i) {
    Stopwatch w;
    loaded = serve::load_checkpoint(path);
    load_s.push_back(w.seconds());
  }

  // "Restart": a fresh controller with no model recovers and keeps serving
  // until the refit bundle (published immediately here) lets it replan.
  serve::ModelSnapshot<serve::ServingModel> models2;
  serve::OnlineController restarted(ring, models2, cfg);
  Stopwatch recover_clock;
  const bool recover_restored =
      restarted.recover(*loaded.checkpoint, t_crash).restored;
  const double recover_s = recover_clock.seconds();
  const bool vector_matches =
      recover_restored && restarted.timeout(0) == warm.timeout(0) &&
      restarted.timeout(1) == warm.timeout(1);

  replay.rebind_controller(&restarted);
  // The post-restart bundle comes from the RefitExecutor, not an inline
  // build: recovery returns in microseconds and serves the checkpointed
  // vector (model-unavailable holds) while the fit runs on the executor's
  // worker.  The wait below is the background fit's latency — the recovery
  // path itself never carries it.
  serve::RefitExecutor refits(mgr.profiler(), models2, mgr.library(),
                              refit_executor_config(opts),
                              /*first_version=*/2);
  refits.start();
  Stopwatch refit_clock;
  const std::uint64_t refit_ticket =
      refits.request_refit(core::ProfileLibrary{});
  const bool refit_published = refits.wait(refit_ticket, 120.0);
  const double refit_publish_s = refit_clock.seconds();
  std::uint64_t epochs_to_replan = 0;
  for (std::size_t k = 0; k < 5 && epochs_to_replan == 0; ++k) {
    const double t0 = t_crash + static_cast<double>(k) * interval;
    (void)replay.generate(t0, t0 + interval);
    const serve::EpochReport r = restarted.run_epoch(t0 + interval);
    if (r.replanned) epochs_to_replan = k + 1;
  }

  SampleStats save{std::vector<double>(save_s)};
  SampleStats load{std::vector<double>(load_s)};
  JsonObject out;
  out.set("checkpoint_bytes",
          static_cast<std::size_t>(std::filesystem::file_size(path)));
  out.set("save_p50_seconds", save.percentile_or(0.5, 0.0));
  out.set("save_p99_seconds", save.percentile_or(0.99, 0.0));
  out.set("load_p50_seconds", load.percentile_or(0.5, 0.0));
  out.set("load_p99_seconds", load.percentile_or(0.99, 0.0));
  out.set("recover_seconds", recover_s);
  out.set("refit_published_by_executor", refit_published);
  out.set("refit_publish_seconds", refit_publish_s);
  out.set("epochs_to_first_replan",
          static_cast<std::size_t>(epochs_to_replan));
  out.set("recovered_vector_matches", vector_matches);
  out.set("recovery_gate", vector_matches && refit_published &&
                               epochs_to_replan >= 1 &&
                               epochs_to_replan <= 3);
  std::printf("  recovery: save p50 %.2f ms, load p50 %.2f ms, recover "
              "%.2f ms, replan after %llu epoch(s), vector_matches=%s\n",
              save.percentile_or(0.5, 0.0) * 1e3,
              load.percentile_or(0.5, 0.0) * 1e3, recover_s * 1e3,
              static_cast<unsigned long long>(epochs_to_replan),
              vector_matches ? "true" : "false");
  return out;
}

/// Section 5: 5x offered load against a deliberately small ring; admission
/// control sheds, the plan deadline keeps the control period honest.
JsonObject bench_overload(const BenchArgs& args, const core::StacManager& mgr,
                          const core::StacOptions& opts) {
  const double interval = 2.0;
  serve::ModelSnapshot<serve::ServingModel> models(
      serve::build_serving_model(mgr, opts, 1));

  // Calibrate the planner envelope at nominal load first: the deadline
  // budget is 3x the unloaded plan median, so the gate asserts *overload
  // does not inflate planning latency* rather than that this machine's
  // sweep is fast in absolute terms.
  double calib_median = 0.05;
  {
    serve::ArrivalIngest calib_ring(1 << 13);
    serve::OnlineController calib(calib_ring, models,
                                  controller_config(opts));
    serve::ReplayConfig nominal;
    nominal.workloads = {
        {.mean_service = 0.05, .servers = 2, .base_util = 0.6},
        {.mean_service = 0.05, .servers = 2, .base_util = 0.6}};
    nominal.seed = args.seed + 7;
    serve::TrafficReplay warm(calib_ring, &calib, nominal);
    std::vector<double> samples;
    for (std::size_t k = 0; k < 5; ++k) {
      (void)warm.generate(static_cast<double>(k) * interval,
                          static_cast<double>(k + 1) * interval);
      const serve::EpochReport r =
          calib.run_epoch(static_cast<double>(k + 1) * interval);
      if (r.replanned) samples.push_back(r.plan_seconds);
    }
    if (!samples.empty())
      calib_median = SampleStats{std::move(samples)}.median();
  }
  const double deadline = std::max(0.1, 3.0 * calib_median);

  serve::ArrivalIngest ring(512);  // small on purpose: occupancy must bite
  serve::AdmissionController admission(ring, 2);

  serve::ControllerConfig cfg = controller_config(opts);
  cfg.plan_deadline_seconds = deadline;
  cfg.admission = &admission;
  serve::OnlineController controller(ring, models, cfg);

  serve::ReplayConfig traffic;
  // 5x capacity offered on both services.
  traffic.workloads = {{.mean_service = 0.05, .servers = 2, .base_util = 3.0},
                       {.mean_service = 0.05, .servers = 2, .base_util = 3.0}};
  traffic.shards_per_workload = 2;
  traffic.seed = args.seed + 3;
  traffic.admission = &admission;
  serve::TrafficReplay replay(ring, &controller, traffic);

  // The first epochs are a transient: shedding ramps up while the sweep
  // warms the quantized-utilization cells it will keep landing in.  The
  // deadline gate is about *sustained* overload, so the transient and the
  // steady state are measured separately (both are reported).
  const std::size_t warmup = 5;
  const std::size_t epochs = warmup + (args.fast ? 15 : 30);
  std::vector<double> warmup_seconds;
  std::vector<double> plan_seconds;
  plan_seconds.reserve(epochs);
  serve::ReplayStats offered_stats;
  for (std::size_t k = 0; k < epochs; ++k) {
    const double t1 = static_cast<double>(k + 1) * interval;
    const serve::ReplayStats st =
        replay.generate(static_cast<double>(k) * interval, t1);
    offered_stats.arrivals += st.arrivals;
    offered_stats.shed += st.shed;
    const serve::EpochReport r = controller.run_epoch(t1);
    (k < warmup ? warmup_seconds : plan_seconds).push_back(r.plan_seconds);
  }

  SampleStats plan{std::vector<double>(plan_seconds)};
  const double plan_p99 = plan.percentile_or(0.99, 0.0);
  const double warmup_max =
      *std::max_element(warmup_seconds.begin(), warmup_seconds.end());
  const double shed_fraction = admission.shed_fraction();

  JsonObject out;
  out.set("offered_x_capacity", 5.0);
  out.set("warmup_epochs", warmup);
  out.set("warmup_plan_max_seconds", warmup_max);
  out.set("epochs", epochs);
  out.set("arrivals_admitted",
          static_cast<std::size_t>(offered_stats.arrivals));
  out.set("shed", static_cast<std::size_t>(offered_stats.shed));
  out.set("shed_fraction", shed_fraction);
  out.set("ingest_dropped", static_cast<std::size_t>(ring.dropped()));
  out.set("deadline_seconds", deadline);
  out.set("plan_p99_seconds", plan_p99);
  out.set("deadline_misses",
          static_cast<std::size_t>(controller.totals().deadline_misses));
  out.set("replans", static_cast<std::size_t>(controller.totals().replans));
  out.set("plan_p99_within_deadline", plan_p99 <= deadline);
  out.set("shedding_engaged", shed_fraction > 0.01);
  std::printf("  overload: 5x offered, shed %.1f%%, steady plan p99 %.1f ms "
              "(budget %.0f ms, warmup max %.1f ms), %llu deadline misses, "
              "%llu ring drops\n",
              shed_fraction * 100.0, plan_p99 * 1e3, deadline * 1e3,
              warmup_max * 1e3,
              static_cast<unsigned long long>(
                  controller.totals().deadline_misses),
              static_cast<unsigned long long>(ring.dropped()));
  return out;
}

/// Section 6: the fleet-of-one identity gate.  A 1-shard FleetCoordinator
/// configured like the standalone controller, both replaying the same
/// seeded traffic, must apply bit-identical timeout vectors every epoch —
/// the refactor that shares EpochPlanner between the two is only correct
/// if the fleet layer adds exactly nothing at N=1.
JsonObject bench_fleet_identity(const BenchArgs& args,
                                const core::StacManager& mgr,
                                const core::StacOptions& opts) {
  const serve::ControllerConfig solo_cfg = controller_config(opts);
  serve::ArrivalIngest ring(1 << 16);
  serve::ModelSnapshot<serve::ServingModel> solo_models(
      serve::build_serving_model(mgr, opts, 1));
  serve::OnlineController solo(ring, solo_models, solo_cfg);

  fleet::FleetConfig fleet_cfg;
  fleet_cfg.shards = 1;
  fleet_cfg.shard.servers = solo_cfg.servers;
  fleet_cfg.shard.drain_batch = solo_cfg.drain_batch;
  fleet_cfg.shard.estimator = solo_cfg.estimator;
  fleet_cfg.planner.base_condition = solo_cfg.base_condition;
  fleet_cfg.planner.explorer = solo_cfg.explorer;
  fleet_cfg.planner.util_quantum = solo_cfg.util_quantum;
  fleet_cfg.planner.util_lo = solo_cfg.util_lo;
  fleet_cfg.planner.util_hi = solo_cfg.util_hi;
  fleet_cfg.planner.probe_ttl_epochs = solo_cfg.probe_ttl_epochs;
  fleet_cfg.planner.incremental = solo_cfg.incremental;
  fleet_cfg.planner.memo_conditions = solo_cfg.memo_conditions;
  serve::ModelSnapshot<serve::ServingModel> fleet_models(
      serve::build_serving_model(mgr, opts, 1));
  fleet::FleetCoordinator fleet(fleet_models, fleet_cfg);

  serve::ReplayConfig traffic;
  traffic.workloads = {{.mean_service = 0.05, .servers = 2, .base_util = 0.6},
                       {.mean_service = 0.05, .servers = 2, .base_util = 0.6}};
  traffic.seed = args.seed + 11;
  serve::TrafficReplay solo_replay(ring, &solo, traffic);
  serve::TrafficReplay fleet_replay(fleet.shard(0).ingest(), &fleet.shard(0),
                                    traffic);

  const auto bits_equal = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  };
  const std::size_t epochs = args.fast ? 20 : 60;
  const double interval = 2.0;
  std::size_t identical_epochs = 0;
  std::uint64_t replans = 0;
  for (std::size_t k = 0; k < epochs; ++k) {
    const double t0 = static_cast<double>(k) * interval;
    (void)solo_replay.generate(t0, t0 + interval);
    (void)fleet_replay.generate(t0, t0 + interval);
    const serve::EpochReport a = solo.run_epoch(t0 + interval);
    const fleet::FleetEpochReport b = fleet.run_epoch(t0 + interval);
    const bool same =
        a.replanned == b.replanned && a.warm == b.warm &&
        a.cells_simulated == b.cells_simulated &&
        a.cells_reused == b.cells_reused &&
        bits_equal(solo.timeout(0), fleet.shard(0).timeout(0)) &&
        bits_equal(solo.timeout(1), fleet.shard(0).timeout(1));
    if (same) ++identical_epochs;
    if (a.replanned) ++replans;
  }

  const bool identity = identical_epochs == epochs && replans > 0 &&
                        solo.totals().replans == fleet.totals().replans;
  JsonObject out;
  out.set("epochs", epochs);
  out.set("identical_epochs", identical_epochs);
  out.set("replans", static_cast<std::size_t>(replans));
  out.set("events",
          static_cast<std::size_t>(fleet.totals().events_drained));
  out.set("fleet_identity_gate", identity);
  std::printf("  fleet identity: %zu/%zu epochs bit-identical over %llu "
              "replans, gate=%s\n",
              identical_epochs, epochs,
              static_cast<unsigned long long>(replans),
              identity ? "true" : "false");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  // This binary owns the PR-9 record; an explicit --json or STAC_BENCH_JSON
  // still wins.
  if (args.json_path == "BENCH_PR2.json" &&
      std::getenv("STAC_BENCH_JSON") == nullptr)
    args.json_path = "BENCH_PR9.json";
  print_banner(std::cout, "Online serving runtime (ingest, control epochs, hot swap)");
  const std::size_t workers = ensure_bench_pool();
  obs::set_enabled(true);  // serve gauges/counters ride along in obs_metrics

  JsonObject record;
  JsonObject meta;
  meta.set("hardware_threads",
           static_cast<std::size_t>(std::thread::hardware_concurrency()));
  meta.set("pool_workers", workers);
  meta.set("fast", args.fast);
  meta.set("seed", static_cast<std::size_t>(args.seed));
  meta.set("simd_isa", cachesim::simd::isa_name());
  record.set("meta", meta);

  std::printf("ingest throughput\n");
  record.set("ingest_throughput", bench_ingest_throughput(args));

  const core::StacOptions opts = serve_options(args);
  core::StacManager mgr(opts);
  std::printf("calibrating (kmeans + redis, trimmed budgets)...\n");
  mgr.calibrate(wl::Benchmark::kKmeans, wl::Benchmark::kRedis);

  std::printf("control epochs\n");
  record.set("control_epoch", bench_control_epoch(args, mgr, opts));

  std::printf("refit pipeline (cold vs warm-start)\n");
  record.set("refit", bench_refit(args, mgr, opts));

  std::printf("hot swap under load\n");
  record.set("hot_swap", bench_hot_swap(args, mgr, opts));

  std::printf("recovery time\n");
  record.set("recovery_time", bench_recovery_time(args, mgr, opts));

  std::printf("overload with admission control\n");
  record.set("overload", bench_overload(args, mgr, opts));

  std::printf("fleet-of-one identity\n");
  record.set("fleet_identity", bench_fleet_identity(args, mgr, opts));

  write_bench_section(args.json_path, "bench_serve", record);
  return 0;
}

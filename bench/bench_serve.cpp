// Serving-runtime performance harness (PR-5 record, BENCH_PR5.json).
//
// Three sections:
//   ingest_throughput — raw MPSC ring rate under producer contention,
//                       gated at >= 1M simulated events/min end to end;
//   control_epoch     — closed-loop epoch planning latency (p50/p99) on
//                       stationary traffic, plus the memo-cache reuse the
//                       cheap epochs depend on;
//   hot_swap          — model hot-swaps under live load, gated on zero
//                       lost events.
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "obs/trace.hpp"
#include "serve/online_controller.hpp"
#include "serve/traffic_replay.hpp"

using namespace stac;
using namespace stac::bench;

namespace {

core::StacOptions serve_options(const BenchArgs& args) {
  core::StacOptions opts;
  opts.profile_budget = args.fast ? 6 : 10;
  opts.profiler.target_completions = args.fast ? 250 : 500;
  opts.profiler.warmup_completions = 40;
  opts.profiler.max_windows = 1;
  opts.profiler.accesses_per_sample = 800;
  opts.model.deep_forest.mgs.window_sizes = {5};
  opts.model.deep_forest.mgs.estimators = 8;
  opts.model.deep_forest.cascade.levels = 1;
  opts.model.deep_forest.cascade.estimators = 12;
  opts.predictor.sim_queries = args.fast ? 1500 : 3000;
  opts.sampler.seed = args.seed;
  return opts;
}

profiler::RuntimeCondition serve_condition() {
  profiler::RuntimeCondition c;
  c.primary = wl::Benchmark::kKmeans;
  c.collocated = wl::Benchmark::kRedis;
  c.util_primary = 0.6;
  c.util_collocated = 0.6;
  c.timeout_primary = 1.0;
  c.timeout_collocated = 1.0;
  c.seed = 99;
  return c;
}

serve::ControllerConfig controller_config(const core::StacOptions& opts) {
  serve::ControllerConfig cfg;
  cfg.base_condition = serve_condition();
  cfg.explorer = opts.explorer;
  cfg.estimator.min_completions = 10;
  return cfg;
}

/// Section 1: raw ring throughput, producers vs the single consumer.
JsonObject bench_ingest_throughput(const BenchArgs& args) {
  const std::size_t producers = 3;
  const std::uint64_t per_producer = args.fast ? 200'000 : 1'000'000;
  serve::ArrivalIngest ring(1 << 14);

  Stopwatch clock;
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&ring, per_producer, p] {
      serve::QueryEvent e;
      e.kind = serve::EventKind::kArrival;
      e.producer = static_cast<std::uint32_t>(p);
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        e.time = static_cast<double>(i);
        (void)ring.try_push(e);  // drops are part of the contract
      }
    });
  }
  std::uint64_t consumed = 0;
  std::vector<serve::QueryEvent> batch(4096);
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    for (;;) {
      const bool finished = done.load(std::memory_order_acquire);
      const std::size_t n = ring.drain(batch);
      consumed += n;
      if (finished && n == 0) break;
    }
  });
  for (auto& t : threads) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();
  const double seconds = clock.seconds();

  const double attempted = static_cast<double>(producers * per_producer);
  const double consumed_per_min = static_cast<double>(consumed) / seconds * 60;
  JsonObject out;
  out.set("producers", producers);
  out.set("events_attempted", static_cast<std::size_t>(attempted));
  out.set("events_consumed", static_cast<std::size_t>(consumed));
  out.set("events_dropped", static_cast<std::size_t>(ring.dropped()));
  out.set("seconds", seconds);
  out.set("consumed_per_minute", consumed_per_min);
  out.set("accounting_exact",
          ring.pushed() + ring.dropped() ==
              static_cast<std::uint64_t>(attempted) &&
              ring.popped() == ring.pushed());
  out.set("throughput_gate_1m_per_min", consumed_per_min >= 1'000'000.0);
  std::printf("  ingest: %.2fM events consumed in %.2fs (%.1fM/min, "
              "%llu dropped)\n",
              static_cast<double>(consumed) / 1e6, seconds,
              consumed_per_min / 1e6,
              static_cast<unsigned long long>(ring.dropped()));
  return out;
}

/// Section 2: per-epoch planning latency on stationary closed-loop traffic.
JsonObject bench_control_epoch(const BenchArgs& args,
                               const core::StacManager& mgr,
                               const core::StacOptions& opts) {
  serve::ArrivalIngest ring(1 << 16);
  serve::ModelSnapshot<serve::ServingModel> models(
      serve::build_serving_model(mgr, opts, 1));
  serve::OnlineController controller(ring, models, controller_config(opts));

  serve::ReplayConfig traffic;
  traffic.workloads = {{.mean_service = 0.05, .servers = 2, .base_util = 0.6},
                       {.mean_service = 0.05, .servers = 2, .base_util = 0.6}};
  traffic.seed = args.seed;
  serve::TrafficReplay replay(ring, &controller, traffic);

  const std::size_t epochs = args.fast ? 30 : 100;
  const double interval = 2.0;
  std::vector<double> plan_seconds;
  std::vector<double> epoch_seconds;
  plan_seconds.reserve(epochs);
  epoch_seconds.reserve(epochs);
  std::uint64_t replans = 0;
  for (std::size_t k = 0; k < epochs; ++k) {
    const double t1 = static_cast<double>(k + 1) * interval;
    (void)replay.generate(static_cast<double>(k) * interval, t1);
    Stopwatch epoch_clock;
    const serve::EpochReport r = controller.run_epoch(t1);
    epoch_seconds.push_back(epoch_clock.seconds());
    plan_seconds.push_back(r.plan_seconds);
    if (r.replanned) ++replans;
  }

  SampleStats plan{std::vector<double>(plan_seconds)};
  SampleStats epoch{std::vector<double>(epoch_seconds)};
  const auto guard = models.acquire();
  const auto cache = guard->pred().cache_stats();

  JsonObject out;
  out.set("epochs", epochs);
  out.set("replans", static_cast<std::size_t>(replans));
  out.set("events_drained",
          static_cast<std::size_t>(controller.totals().events_drained));
  out.set("plan_p50_seconds", plan.median());
  out.set("plan_p99_seconds", plan.percentile(0.99));
  out.set("epoch_p50_seconds", epoch.median());
  out.set("epoch_p99_seconds", epoch.percentile(0.99));
  out.set("rt_cache_hit_rate", cache.hit_rate());
  std::printf("  control epoch: plan p50 %.1f ms, p99 %.1f ms over %zu "
              "epochs (%llu replans, rt_cache hit rate %.2f)\n",
              plan.median() * 1e3, plan.percentile(0.99) * 1e3, epochs,
              static_cast<unsigned long long>(replans), cache.hit_rate());
  return out;
}

/// Section 3: hot-swapping models under live load loses nothing.
JsonObject bench_hot_swap(const BenchArgs& args, const core::StacManager& mgr,
                          const core::StacOptions& opts) {
  serve::ArrivalIngest ring(1 << 16);
  serve::ModelSnapshot<serve::ServingModel> models(
      serve::build_serving_model(mgr, opts, 1));
  serve::OnlineController controller(ring, models, controller_config(opts));

  serve::ReplayConfig traffic;
  traffic.workloads = {{.mean_service = 0.05, .servers = 2, .base_util = 0.6},
                       {.mean_service = 0.05, .servers = 2, .base_util = 0.6}};
  traffic.shards_per_workload = 2;
  traffic.seed = args.seed + 1;
  serve::TrafficReplay replay(ring, &controller, traffic);

  const std::size_t swaps = args.fast ? 3 : 6;
  std::vector<std::unique_ptr<const serve::ServingModel>> bundles;
  bundles.reserve(swaps);
  for (std::uint64_t v = 0; v < swaps; ++v)
    bundles.push_back(serve::build_serving_model(mgr, opts, v + 2));

  std::thread swapper([&] {
    for (auto& b : bundles) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      models.publish(std::move(b));
    }
  });
  const serve::SoakResult result = replay.run_threaded(
      controller, /*sim_seconds=*/40.0, /*epoch_interval=*/2.0,
      /*wall_pace=*/80.0);
  swapper.join();

  const bool zero_lost = result.traffic.push_failures == 0 &&
                         result.ingest_dropped == 0 &&
                         ring.popped() == ring.pushed() &&
                         result.controller.events_drained == ring.pushed();
  JsonObject out;
  out.set("swaps_published", swaps);
  out.set("swaps_observed",
          static_cast<std::size_t>(result.controller.model_swaps_observed));
  out.set("events", static_cast<std::size_t>(ring.pushed()));
  out.set("events_dropped", static_cast<std::size_t>(result.ingest_dropped));
  out.set("push_failures",
          static_cast<std::size_t>(result.traffic.push_failures));
  out.set("epochs", static_cast<std::size_t>(result.epochs));
  out.set("zero_lost", zero_lost);
  std::printf("  hot swap: %zu published, %llu observed, %llu events, "
              "zero_lost=%s\n",
              swaps,
              static_cast<unsigned long long>(
                  result.controller.model_swaps_observed),
              static_cast<unsigned long long>(ring.pushed()),
              zero_lost ? "true" : "false");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  // This binary owns the PR-5 record; an explicit --json or STAC_BENCH_JSON
  // still wins.
  if (args.json_path == "BENCH_PR2.json" &&
      std::getenv("STAC_BENCH_JSON") == nullptr)
    args.json_path = "BENCH_PR5.json";
  print_banner(std::cout, "Online serving runtime (ingest, control epochs, hot swap)");
  const std::size_t workers = ensure_bench_pool();
  obs::set_enabled(true);  // serve gauges/counters ride along in obs_metrics

  JsonObject record;
  JsonObject meta;
  meta.set("hardware_threads",
           static_cast<std::size_t>(std::thread::hardware_concurrency()));
  meta.set("pool_workers", workers);
  meta.set("fast", args.fast);
  meta.set("seed", static_cast<std::size_t>(args.seed));
  record.set("meta", meta);

  std::printf("ingest throughput\n");
  record.set("ingest_throughput", bench_ingest_throughput(args));

  const core::StacOptions opts = serve_options(args);
  core::StacManager mgr(opts);
  std::printf("calibrating (kmeans + redis, trimmed budgets)...\n");
  mgr.calibrate(wl::Benchmark::kKmeans, wl::Benchmark::kRedis);

  std::printf("control epochs\n");
  record.set("control_epoch", bench_control_epoch(args, mgr, opts));

  std::printf("hot swap under load\n");
  record.set("hot_swap", bench_hot_swap(args, mgr, opts));

  write_bench_section(args.json_path, "bench_serve", record);
  return 0;
}

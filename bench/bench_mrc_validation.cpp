// Substitution validation (DESIGN.md §2): the testbed's service-time
// response flows through analytic miss-ratio curves, while the profiler's
// counter images come from the cache simulator.  This harness checks the
// two agree: for every benchmark, measured LLC miss ratios (solo runs on a
// scaled hardware replica) against the analytic curve, across allocations.
//
// Exact agreement is not expected — the private L1/L2 filter short-distance
// reuse before the LLC sees it, and LRU is not the fractional-coverage
// idealization — but the curves must move together (rank correlation) and
// the capacity trend must match.
#include <iostream>

#include "bench_util.hpp"
#include "wl/measure.hpp"

using namespace stac;
using namespace stac::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_banner(std::cout, "MRC validation — cachesim vs analytic curves");

  cachesim::HierarchyConfig hw = cachesim::presets::xeon_e5_2683();
  hw.llc.size_bytes /= 16;
  hw.l2.size_bytes /= 16;
  hw.l1d.size_bytes /= 16;
  hw.l1i.size_bytes /= 16;
  const double way_bytes = static_cast<double>(hw.llc_way_bytes());
  const std::vector<std::uint32_t> ways{1, 2, 3, 6, 12, 20};
  const std::size_t accesses = args.fast ? 30'000 : 120'000;

  Table table({"workload", "corr(measured, analytic)", "measured 1->20 way drop",
               "analytic 1->20 way drop", "monotone"});
  for (wl::Benchmark b : wl::all_benchmarks()) {
    wl::WorkloadSpec spec = wl::benchmark_spec(b);
    for (auto& c : spec.profile.components) c.ws_bytes /= 16.0;
    spec.profile.code_bytes /= 16.0;
    spec.zipf_records /= 16;
    const wl::WorkloadModel model(spec, hw.llc.ways, way_bytes, 1);

    const auto points =
        wl::measure_mrc(model, hw, ways, accesses / 2, accesses, args.seed);
    std::vector<double> measured, analytic;
    bool monotone = true;
    for (std::size_t i = 0; i < ways.size(); ++i) {
      measured.push_back(points[i].llc_miss_ratio);
      analytic.push_back(model.miss_ratio(static_cast<double>(ways[i])));
      if (i > 0 && measured[i] > measured[i - 1] + 0.05) monotone = false;
    }
    table.add_row(
        {std::string(wl::benchmark_id(b)),
         Table::num(pearson(measured, analytic), 3),
         Table::pct(measured.front() - measured.back()),
         Table::pct(analytic.front() - analytic.back()),
         monotone ? "yes" : "NO"});
  }
  table.print(std::cout);
  table.write_csv(csv_path(argv[0]));
  std::cout << "\nPositive correlation for every capacity-sensitive workload "
               "validates using\nanalytic curves in the testbed while "
               "counters come from the simulator.\n";
  return 0;
}

// Simulation-core performance: the PR-4 overhaul plus the PR-7 batch /
// SIMD layers and the PR-10 memory-time model, measured end to end and
// recorded in the machine-readable BENCH_PR10.json:
//
//   ggk_event_loop     fast engine (pre-drawn CRN streams, sorted-arrival
//                      replay, 4-ary lazy-deletion completion heap) vs the
//                      legacy single binary heap, over a timeout x load
//                      grid (single thread; target >= 2x)
//   ggk_batch          simulate_ggk_batch (arena recycling + one CRN
//                      stream fetch per (seed, rate, cv) group) vs per-cell
//                      simulate_ggk on the same grid, both cold-cache
//   cache_replay       SoA cache levels (packed tag/valid/owner/age lanes,
//                      branch-light probe) vs the legacy array-of-Way
//                      layout on a hierarchy access-trace replay
//                      (target >= 1.5x)
//   probe_simd         widest-ISA probe/victim kernels vs the scalar
//                      oracles (identity, not speed: the end-to-end effect
//                      is inside cache_replay); records the effective ISA
//   policy_sweep_memo  RtPredictionCache memoization of the paper's 25-cell
//                      policy grid vs always-resimulating (target >50% hit
//                      rate, visible in obs_metrics)
//   policy_sweep_batch ExplorerConfig::batch (whole grid in one
//                      simulate_batch wave) vs the per-cell sweep
//   timed_replay       memtime-timed replay (split hit/miss latencies,
//                      bandwidth-queued DRAM) vs the flat fast path, plus
//                      the timing-off closed-form identity and the queue
//                      monotonicity check the CI gates assert
//   cross_hardware     one trace replayed on every shipped preset: modeled
//                      cycles per access, DRAM queue share, stacked-tier
//                      hit fraction (the Fig. 7a hardware axis)
//
// Every fast/legacy pair is cross-checked bit for bit — a speedup that
// changes a single sample, counter or selection is a bug, and CI asserts
// the identity fields of the emitted JSON (.github/workflows/ci.yml).
#include <iostream>
#include <limits>

#include "bench_util.hpp"
#include "cachesim/cache_hierarchy.hpp"
#include "cachesim/simd_probe.hpp"
#include "common/rng.hpp"
#include "core/policy_explorer.hpp"
#include "core/rt_predictor.hpp"
#include "obs/trace.hpp"
#include "queueing/ggk_simulator.hpp"

using namespace stac;
using namespace stac::bench;

namespace {

/// Pool width below which the batch-engine sections report their
/// measurement but make no speedup claim: the wave's win is fan-out across
/// the worker pool, and at 1-2 workers the number is scheduling noise
/// (0.95x on the PR-7 record's 2-worker box), not a property of the engine.
constexpr std::size_t kMinBatchClaimWorkers = 4;

/// Best-of-`reps` wall time for one call.
template <typename Fn>
double timed_best(std::size_t reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.seconds());
  }
  return best;
}

bool same_result(const queueing::GGkResult& a, const queueing::GGkResult& b) {
  if (a.completed != b.completed || a.boosted_queries != b.boosted_queries ||
      a.cos_switches != b.cos_switches ||
      a.mean_queue_delay != b.mean_queue_delay)
    return false;
  const auto as = a.response_times.samples();
  const auto bs = b.response_times.samples();
  if (as.size() != bs.size()) return false;
  for (std::size_t i = 0; i < as.size(); ++i)
    if (as[i] != bs[i]) return false;  // bitwise, not approximate
  return true;
}

/// The Stage-3 shape the rt_predictor sweeps: one (seed, load) stream
/// replayed across the whole timeout grid.
std::vector<queueing::GGkConfig> ggk_grid(std::size_t queries,
                                          std::uint64_t seed) {
  std::vector<queueing::GGkConfig> grid;
  for (const double util : {0.6, 0.9}) {
    for (const double timeout : {0.0, 0.5, 1.0, 2.0, 4.0}) {
      queueing::GGkConfig c;
      c.utilization = util;
      c.servers = 2;
      c.service_cv = 1.2;
      c.timeout_rel = timeout;
      c.effective_allocation = 0.6;
      c.allocation_ratio = 3.0;
      c.queries = queries;
      c.warmup = queries / 20;
      c.seed = seed;
      grid.push_back(c);
    }
  }
  return grid;
}

struct Trace {
  std::vector<cachesim::MemoryAccess> refs;
  std::vector<cachesim::ClassId> classes;
};

/// Two collocated classes; per class a word-granular loop walk over a
/// 16 KB (L1-resident) working set, a random hot region sized for L2, and
/// a cold region sized past L2 so the LLC probe and CAT-masked fill paths
/// stay busy — the Stage-1 profiling shape.  References are 8-byte words,
/// as a real replay emits them: a 64-byte line serves ~8 consecutive
/// accesses before the walk crosses into the next line.  The 90/8/2 mix
/// puts the L1 hit rate around the 90-99% real workloads show, so the
/// benchmark weights the probe fast path the way production replays do
/// while still exercising every miss path.
Trace cache_trace(std::size_t n, std::uint64_t seed) {
  Trace t;
  t.refs.reserve(n);
  t.classes.reserve(n);
  std::uint64_t state = seed | 1;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  constexpr std::uint64_t kWalkBytes = 16 * 1024;         // fits L1
  constexpr std::uint64_t kHotBytes = 192 * 1024;         // fits L2
  constexpr std::uint64_t kColdBytes = 16 * 1024 * 1024;  // spills to LLC
  std::uint64_t seq[2] = {0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    const auto cls = static_cast<cachesim::ClassId>(next() & 1);
    const std::uint64_t base = (cls + 1) * (1ULL << 32);
    const std::uint64_t pick = next() % 100;
    std::uint64_t addr;
    if (pick < 90) {
      addr = base + (seq[cls] += 8) % kWalkBytes;  // word-granular loop walk
    } else if (pick < 98) {
      addr = base + next() % kHotBytes;  // random hot: L2 traffic
    } else {
      addr = base + kHotBytes + next() % kColdBytes;  // cold: LLC traffic
    }
    cachesim::AccessType type = cachesim::AccessType::kLoad;
    if (pick % 10 == 0) type = cachesim::AccessType::kStore;
    if (pick % 10 == 9) type = cachesim::AccessType::kIfetch;
    t.refs.push_back({addr, type});
    t.classes.push_back(cls);
  }
  return t;
}

cachesim::HierarchyConfig hierarchy_with_layout(bool soa) {
  cachesim::HierarchyConfig cfg;  // generic: 32K L1, 1M L2, 40M/20-way LLC
  cfg.l1d.soa = soa;
  cfg.l1i.soa = soa;
  cfg.l2.soa = soa;
  cfg.llc.soa = soa;
  return cfg;
}

/// Drive the trace through per-reference access() calls — the seed-style
/// driver the legacy side runs.  Returns the latency sum (the value the
/// identity check compares, alongside full per-class counter images).
std::uint64_t drive_per_access(cachesim::CacheHierarchy& h, const Trace& t,
                               cachesim::WayMask mask0,
                               cachesim::WayMask mask1) {
  h.reset();
  h.set_llc_fill_mask(0, mask0);
  h.set_llc_fill_mask(1, mask1);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < t.refs.size(); ++i)
    total += h.access(t.classes[i], t.refs[i]);
  return total;
}

/// Drive the trace through the batched replay() entry point (fast side).
std::uint64_t drive_replay(cachesim::CacheHierarchy& h, const Trace& t,
                           cachesim::WayMask mask0, cachesim::WayMask mask1) {
  h.reset();
  h.set_llc_fill_mask(0, mask0);
  h.set_llc_fill_mask(1, mask1);
  return h.replay(t.refs.data(), t.classes.data(), t.refs.size());
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  // This binary owns a section of the PR-10 record; an explicit --json or
  // STAC_BENCH_JSON still wins.
  if (args.json_path == "BENCH_PR2.json" &&
      std::getenv("STAC_BENCH_JSON") == nullptr)
    args.json_path = "BENCH_PR10.json";
  print_banner(std::cout, "Simulation-core performance (G/G/k, cachesim, memoization)");
  const std::size_t workers = ensure_bench_pool();
  obs::set_enabled(true);  // gauges (hit rates) ride along in obs_metrics

  JsonObject record;
  JsonObject meta;
  meta.set("hardware_threads",
           static_cast<std::size_t>(std::thread::hardware_concurrency()))
      .set("pool_workers", workers)
      .set("seed", static_cast<std::size_t>(args.seed))
      .set("fast", args.fast)
      .set("simd_isa", cachesim::simd::isa_name());
  record.set("meta", meta);
  Table table({"Stage", "legacy", "fast", "speedup", "identical"});
  const std::size_t reps = args.fast ? 1 : 3;

  // ---- Stage 1: G/G/k event loop, fast engine vs legacy heap -----------
  {
    const std::size_t queries = args.fast ? 6000 : 40000;
    const auto grid = ggk_grid(queries, args.seed);
    std::vector<queueing::GGkResult> legacy(grid.size()), fast(grid.size());

    const double legacy_s = timed_best(reps, [&] {
      for (std::size_t i = 0; i < grid.size(); ++i) {
        queueing::GGkConfig c = grid[i];
        c.fast_events = false;
        legacy[i] = queueing::simulate_ggk(c);
      }
    });
    const double fast_s = timed_best(reps, [&] {
      // Cold CRN cache each rep: the stream pre-draw cost is part of the
      // measured fast path, amortized over the grid exactly as a predictor
      // timeout sweep amortizes it.
      queueing::clear_crn_stream_cache();
      for (std::size_t i = 0; i < grid.size(); ++i) {
        queueing::GGkConfig c = grid[i];
        c.fast_events = true;
        fast[i] = queueing::simulate_ggk(c);
      }
    });

    bool identical = true;
    for (std::size_t i = 0; i < grid.size(); ++i)
      identical = identical && same_result(legacy[i], fast[i]);
    const double speedup = legacy_s / fast_s;
    JsonObject s;
    s.set("grid_cells", grid.size())
        .set("queries_per_cell", queries)
        .set("legacy_s", legacy_s)
        .set("fast_s", fast_s)
        .set("speedup", speedup)
        .set("bit_identical", identical);
    record.set("ggk_event_loop", s);
    table.add_row({"G/G/k timeout grid", Table::num(legacy_s, 3) + "s",
                   Table::num(fast_s, 3) + "s", Table::num(speedup, 2),
                   identical ? "yes" : "NO"});
  }

  // ---- Stage 1b: batched G/G/k, simulate_ggk_batch vs per-cell ---------
  {
    const std::size_t queries = args.fast ? 6000 : 40000;
    const auto grid = ggk_grid(queries, args.seed + 1);
    std::vector<queueing::GGkResult> per_cell(grid.size());
    std::vector<queueing::GGkResult> batch;

    // Both sides run the fast engine with a cold CRN cache each rep: the
    // batch side's win is the shared stream fetch + arena recycling, which
    // only shows when the streams are not already memoized process-wide.
    const double cell_s = timed_best(reps, [&] {
      queueing::clear_crn_stream_cache();
      for (std::size_t i = 0; i < grid.size(); ++i)
        per_cell[i] = queueing::simulate_ggk(grid[i]);
    });
    const double batch_s = timed_best(reps, [&] {
      queueing::clear_crn_stream_cache();
      batch = queueing::simulate_ggk_batch(grid);
    });

    bool identical = batch.size() == grid.size();
    for (std::size_t i = 0; identical && i < grid.size(); ++i)
      identical = same_result(per_cell[i], batch[i]);
    const double speedup = cell_s / batch_s;
    // The batch engine's win is pool fan-out over the grid; on a small
    // machine the fan-out barely outruns its own scheduling (the PR-7
    // record printed 0.95x at pool_workers: 2).  Same policy as the PR-2
    // cascade sections: record the measurement, claim the speedup only
    // when the pool is wide enough for it to mean anything.
    const bool claim = workers >= kMinBatchClaimWorkers;
    JsonObject s;
    s.set("grid_cells", grid.size())
        .set("queries_per_cell", queries)
        .set("workers", workers)
        .set("per_cell_s", cell_s)
        .set("batch_s", batch_s)
        .set("speedup_measured", speedup)
        .set("speedup_claimed", claim)
        .set("bit_identical", identical);
    if (claim) s.set("speedup", speedup);
    record.set("ggk_batch", s);
    table.add_row({"G/G/k batch engine", Table::num(cell_s, 3) + "s",
                   Table::num(batch_s, 3) + "s",
                   claim ? Table::num(speedup, 2)
                         : Table::num(speedup, 2) + " (n/a: " +
                               std::to_string(workers) + " workers)",
                   identical ? "yes" : "NO"});
  }

  // ---- Stage 2: cache-hierarchy replay, SoA vs AoS levels --------------
  {
    const std::size_t n = args.fast ? 300000 : 3000000;
    const Trace trace = cache_trace(n, args.seed + 11);
    cachesim::CacheHierarchy aos(hierarchy_with_layout(false), 2);
    cachesim::CacheHierarchy soa(hierarchy_with_layout(true), 2);
    // Asymmetric CAT masks: one boosted class, one clipped — exercises the
    // masked-victim scan and the outside-mask hit path.
    const cachesim::WayMask mask0 = aos.llc().full_mask();
    const cachesim::WayMask mask1 = 0x3F;

    // Interleave the two sides within each rep (rather than timing all
    // legacy reps then all SoA reps) so ambient load perturbs both measures
    // alike; best-of per side still rejects one-off stalls.
    std::uint64_t lat_aos = 0, lat_soa = 0;
    double legacy_s = std::numeric_limits<double>::infinity();
    double soa_s = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < reps; ++r) {
      Stopwatch sw;
      lat_aos = drive_per_access(aos, trace, mask0, mask1);
      legacy_s = std::min(legacy_s, sw.seconds());
      sw.restart();
      lat_soa = drive_replay(soa, trace, mask0, mask1);
      soa_s = std::min(soa_s, sw.seconds());
    }

    bool identical = lat_aos == lat_soa;
    for (cachesim::ClassId cls = 0; cls < 2; ++cls)
      identical = identical &&
                  aos.counters(cls).values == soa.counters(cls).values &&
                  aos.llc_occupancy(cls) == soa.llc_occupancy(cls);
    const double speedup = legacy_s / soa_s;
    JsonObject s;
    s.set("accesses", n)
        .set("legacy_s", legacy_s)
        .set("soa_s", soa_s)
        .set("speedup", speedup)
        .set("bit_identical", identical);
    record.set("cache_replay", s);
    table.add_row({"hierarchy replay (SoA)", Table::num(legacy_s, 3) + "s",
                   Table::num(soa_s, 3) + "s", Table::num(speedup, 2),
                   identical ? "yes" : "NO"});
  }

  // ---- Stage 2b: SIMD probe/victim kernels vs the scalar oracles -------
  {
    // Identity, not wall-clock: the kernels' end-to-end effect is already
    // inside cache_replay; here the widest compiled tier is checked bit for
    // bit against the scalar reference so BENCH_PR7.json records which ISA
    // produced the replay numbers and that it is trustworthy.
    Rng rng(args.seed + 21);
    bool identical = true;
    std::size_t checks = 0;
    for (std::size_t trial = 0; trial < 4000 && identical; ++trial) {
      const std::size_t ways = 2 + rng.uniform_index(19);  // 2..20
      std::vector<std::uint64_t> keys(ways);
      std::vector<std::uint32_t> ages(ways);
      std::uint32_t usable = 0;
      for (std::size_t w = 0; w < ways; ++w) {
        keys[w] = rng.next_u64() | (rng.bernoulli(0.75) ? (1ULL << 63) : 0);
        ages[w] = static_cast<std::uint32_t>(w * 7919u + trial);
        if (rng.bernoulli(0.5)) usable |= 1u << w;
      }
      if (usable == 0) usable = 1u;
      const std::uint64_t probe =
          rng.bernoulli(0.5) ? keys[rng.uniform_index(ways)] | (1ULL << 63)
                             : rng.next_u64() | (1ULL << 63);
      const auto ref = cachesim::simd::probe_sweep_scalar(keys.data(), ways,
                                                          probe);
      const auto wide = cachesim::simd::probe_sweep(keys.data(), ways, probe);
      identical = identical && ref.match == wide.match &&
                  ref.valid == wide.valid &&
                  cachesim::simd::victim_scan_scalar(ages.data(), ways,
                                                     usable) ==
                      cachesim::simd::victim_scan(ages.data(), ways, usable);
      ++checks;
    }
    JsonObject s;
    s.set("isa", cachesim::simd::isa_name())
        .set("trials", checks)
        .set("bit_identical", identical);
    record.set("probe_simd", s);
    table.add_row({"SIMD probe/victim", "scalar",
                   cachesim::simd::isa_name(), "-",
                   identical ? "yes" : "NO"});
  }

  // ---- Stage 2c: timed replay (memtime subsystem) ----------------------
  {
    // Three claims recorded for the CI gates:
    //   timing_off_identity — with flat timing the modeled cycle totals
    //     equal the closed form sum(counters x latency), so the timing
    //     layer is provably free of behavioural drift when off;
    //   queue_monotonic     — higher offered DRAM traffic never lowers the
    //     next access's modeled latency (the windowed queue is monotone in
    //     utilization by construction; this checks the shipped binary);
    //   timed vs untimed throughput — the timed path (split latencies,
    //     bandwidth queue, stacked tier) must stay within a small constant
    //     factor of the flat fast path.
    const std::size_t n = args.fast ? 300000 : 3000000;
    const Trace trace = cache_trace(n, args.seed + 31);

    cachesim::HierarchyConfig flat_cfg = hierarchy_with_layout(true);
    cachesim::HierarchyConfig timed_cfg = flat_cfg;
    timed_cfg.timing.l1d = {1, 4, memtime::LookupMode::kParallel};
    timed_cfg.timing.l1i = {1, 4, memtime::LookupMode::kParallel};
    timed_cfg.timing.l2 = {4, 8, memtime::LookupMode::kSequential};
    timed_cfg.timing.llc = {14, 30, memtime::LookupMode::kSequential};
    timed_cfg.timing.dram.bandwidth_bytes_per_cycle = 16.0;

    cachesim::CacheHierarchy flat_hw(flat_cfg, 2);
    cachesim::CacheHierarchy timed_hw(timed_cfg, 2);
    const cachesim::WayMask mask0 = flat_hw.llc().full_mask();
    const cachesim::WayMask mask1 = 0x3F;

    std::uint64_t flat_lat = 0, timed_lat = 0;
    double flat_s = std::numeric_limits<double>::infinity();
    double timed_s = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < reps; ++r) {
      Stopwatch sw;
      flat_lat = drive_replay(flat_hw, trace, mask0, mask1);
      flat_s = std::min(flat_s, sw.seconds());
      sw.restart();
      timed_lat = drive_replay(timed_hw, trace, mask0, mask1);
      timed_s = std::min(timed_s, sw.seconds());
    }

    // Identity: flat modeled cycles match the closed form exactly.
    std::uint64_t closed_form = 0;
    for (cachesim::ClassId cls = 0; cls < 2; ++cls) {
      const auto ctr = flat_hw.counters(cls);
      using cachesim::Counter;
      closed_form +=
          (ctr.get(Counter::kL1dLoads) + ctr.get(Counter::kL1dStores)) *
              flat_cfg.l1d.latency_cycles +
          ctr.get(Counter::kL1iLoads) * flat_cfg.l1i.latency_cycles +
          ctr.get(Counter::kL2Requests) * flat_cfg.l2.latency_cycles +
          (ctr.get(Counter::kLlcLoads) + ctr.get(Counter::kLlcStores)) *
              flat_cfg.llc.latency_cycles +
          (ctr.get(Counter::kMemReads) + ctr.get(Counter::kMemWrites)) *
              flat_cfg.memory_latency_cycles;
    }
    const bool timing_off_identity =
        flat_lat == closed_form && flat_hw.clock_cycles() == flat_lat;

    // Counter identity: the timing layer must not perturb hit/miss streams.
    bool counters_identical = true;
    for (cachesim::ClassId cls = 0; cls < 2; ++cls) {
      const auto a = flat_hw.counters(cls);
      const auto b = timed_hw.counters(cls);
      for (std::size_t i = 0; i < cachesim::kCounterCount; ++i) {
        const auto c = static_cast<cachesim::Counter>(i);
        if (c == cachesim::Counter::kStallCycles ||
            c == cachesim::Counter::kCycles ||
            c == cachesim::Counter::kIpcX1000)
          continue;
        counters_identical = counters_identical && a.values[i] == b.values[i];
      }
    }

    // Monotonicity of the shipped queue model: 4x the offered bytes can
    // never lower the next access's latency, across a spread of loads.
    bool queue_monotonic = true;
    for (const int load : {1, 4, 16, 64, 256}) {
      memtime::DramPerfSpec qs;
      qs.base_latency_cycles = 200;
      qs.bandwidth_bytes_per_cycle = 16.0;
      qs.window_cycles = 4096;
      memtime::DramPerfModel light(qs, 0), heavy(qs, 0);
      for (int i = 0; i < load; ++i) light.access(10, 64);
      for (int i = 0; i < load * 4; ++i) heavy.access(10, 64);
      queue_monotonic = queue_monotonic &&
                        heavy.access(11, 64).total >= light.access(11, 64).total;
    }

    const double slowdown = timed_s / flat_s;
    const auto timed_total = timed_hw.total_cycles();
    JsonObject s;
    s.set("accesses", n)
        .set("timed_total_cycles", static_cast<std::size_t>(timed_lat))
        .set("untimed_s", flat_s)
        .set("timed_s", timed_s)
        .set("timed_slowdown", slowdown)
        .set("untimed_maccess_per_s", n / flat_s / 1e6)
        .set("timed_maccess_per_s", n / timed_s / 1e6)
        .set("timing_off_identity", timing_off_identity)
        .set("counters_identical", counters_identical)
        .set("queue_monotonic", queue_monotonic)
        .set("timed_cycles_per_access", timed_total.cycles_per_access())
        .set("timed_dram_queue_cycles",
             static_cast<std::size_t>(
                 timed_total.get(cachesim::CycleLevel::kDramQueue)));
    record.set("timed_replay", s);
    table.add_row({"timed replay (memtime)", Table::num(flat_s, 3) + "s",
                   Table::num(timed_s, 3) + "s",
                   Table::num(1.0 / slowdown, 2),
                   (timing_off_identity && counters_identical &&
                    queue_monotonic)
                       ? "yes"
                       : "NO"});
  }

  // ---- Stage 2d: cross-hardware sweep over all presets -----------------
  {
    // The Fig. 7a rerun's hardware axis: one trace replayed on every
    // shipped preset, recording modeled cycles per access (now a real
    // differentiator between parts — flat presets only differ via geometry,
    // timed ones via latency/bandwidth/stacked-tier too).
    const std::size_t n = args.fast ? 200000 : 1000000;
    const Trace trace = cache_trace(n, args.seed + 41);
    JsonObject sweep;
    std::size_t preset_count = 0;
    for (const cachesim::HierarchyConfig& cfg : cachesim::presets::all()) {
      cachesim::CacheHierarchy hw(cfg, 2);
      Stopwatch sw;
      const std::uint64_t cycles =
          hw.replay(trace.refs.data(), trace.classes.data(), trace.refs.size());
      const double secs = sw.seconds();
      const auto total = hw.total_cycles();
      const double dc_accesses =
          static_cast<double>(total.dram_cache_hits + total.dram_cache_misses);
      JsonObject p;
      p.set("llc_mb", cfg.llc.size_bytes / (1024.0 * 1024.0))
          .set("timed", !cfg.timing_flat())
          .set("cycles_per_access", total.cycles_per_access())
          .set("dram_queue_share",
               cycles ? static_cast<double>(
                            total.get(cachesim::CycleLevel::kDramQueue)) /
                            static_cast<double>(cycles)
                      : 0.0)
          .set("dram_cache_hit_frac",
               dc_accesses > 0.0 ? total.dram_cache_hits / dc_accesses : 0.0)
          .set("maccess_per_s", n / secs / 1e6);
      if (cfg.timing.dram_cache.has_value()) {
        // The Stage-1 trace fits inside a 64 MB LLC, so the stacked tier
        // above only sees compulsory misses.  Measure the tier on its own
        // terms: a circular line sweep sized past the LLC but inside the
        // tier — pass 1 populates it, pass 2 must hit it.
        const std::uint64_t sweep_bytes = std::min<std::uint64_t>(
            cfg.timing.dram_cache->geometry.size_bytes,
            cfg.llc.size_bytes + cfg.llc.size_bytes / 2);
        const std::uint64_t lines = sweep_bytes / cfg.l1d.line_bytes;
        std::vector<cachesim::MemoryAccess> pass(lines);
        std::vector<cachesim::ClassId> zeros(lines, 0);
        for (std::uint64_t i = 0; i < lines; ++i)
          pass[i] = {i * cfg.l1d.line_bytes, cachesim::AccessType::kLoad};
        cachesim::CacheHierarchy tier_hw(cfg, 1);
        tier_hw.replay(pass.data(), zeros.data(), pass.size());  // populate
        const auto warm = tier_hw.total_cycles();
        tier_hw.replay(pass.data(), zeros.data(), pass.size());  // re-sweep
        const auto done = tier_hw.total_cycles();
        const double tier_hits =
            static_cast<double>(done.dram_cache_hits - warm.dram_cache_hits);
        const double tier_refs = static_cast<double>(
            (done.dram_cache_hits + done.dram_cache_misses) -
            (warm.dram_cache_hits + warm.dram_cache_misses));
        p.set("tier_sweep_mb", sweep_bytes / (1024.0 * 1024.0))
            .set("tier_sweep_hit_frac",
                 tier_refs > 0.0 ? tier_hits / tier_refs : 0.0);
      }
      sweep.set(cfg.name, p);
      ++preset_count;
    }
    sweep.set("preset_count", preset_count);
    record.set("cross_hardware", sweep);
    table.add_row({"cross-hardware sweep",
                   std::to_string(preset_count) + " presets", "-", "-",
                   preset_count >= 8 ? "yes" : "NO"});
  }

  // ---- Stage 3: policy sweep with RtPredictionCache memoization --------
  {
    profiler::ProfilerConfig pc;
    pc.target_completions = args.fast ? 250 : 400;
    pc.warmup_completions = 40;
    profiler::Profiler profiler(pc);
    core::RtPredictorConfig rc;
    rc.analytic_ea = true;  // the sweep cost is all Stage-3 simulation
    rc.sim_queries = args.fast ? 2000 : 6000;
    rc.seed = args.seed + 4;
    profiler::RuntimeCondition cond;
    cond.primary = wl::Benchmark::kKmeans;
    cond.collocated = wl::Benchmark::kRedis;
    cond.util_primary = 0.9;
    cond.util_collocated = 0.9;
    cond.seed = args.seed + 5;
    core::ExplorerConfig ec;  // the paper's 5x5 = 25-setting grid
    ec.parallel = false;      // isolate memoization from pool effects

    rc.memoize = false;
    core::RtPredictor plain(profiler, nullptr, nullptr, rc);
    Stopwatch sw_plain;
    const core::PolicyExploration base = explore_policies(plain, cond, ec);
    const double plain_s = sw_plain.seconds();

    rc.memoize = true;
    core::RtPredictor memo(profiler, nullptr, nullptr, rc);
    Stopwatch sw_memo;
    const core::PolicyExploration cached = explore_policies(memo, cond, ec);
    const double memo_s = sw_memo.seconds();

    const auto st = memo.cache_stats();
    bool identical =
        base.selection.timeout_primary == cached.selection.timeout_primary &&
        base.selection.timeout_collocated ==
            cached.selection.timeout_collocated;
    for (std::size_t i = 0;
         identical && i < base.predicted_primary.data().size(); ++i)
      identical = base.predicted_primary.data()[i] ==
                      cached.predicted_primary.data()[i] &&
                  base.predicted_collocated.data()[i] ==
                      cached.predicted_collocated.data()[i];
    const double speedup = plain_s / memo_s;
    JsonObject s;
    s.set("grid_cells", ec.grid.size() * ec.grid.size())
        .set("unmemoized_s", plain_s)
        .set("memoized_s", memo_s)
        .set("speedup", speedup)
        .set("rt_cache_hits", static_cast<std::size_t>(st.hits))
        .set("rt_cache_misses", static_cast<std::size_t>(st.misses))
        .set("rt_cache_hit_rate", st.hit_rate())
        .set("same_selection", identical);
    record.set("policy_sweep_memo", s);
    table.add_row({"policy sweep (memoized)", Table::num(plain_s, 3) + "s",
                   Table::num(memo_s, 3) + "s", Table::num(speedup, 2),
                   identical ? "yes" : "NO"});
  }

  // ---- Stage 3b: batched policy sweep vs per-cell ----------------------
  {
    profiler::ProfilerConfig pc;
    pc.target_completions = args.fast ? 250 : 400;
    pc.warmup_completions = 40;
    profiler::Profiler profiler(pc);
    core::RtPredictorConfig rc;
    rc.analytic_ea = true;
    rc.sim_queries = args.fast ? 2000 : 6000;
    rc.seed = args.seed + 4;
    rc.memoize = false;  // isolate the batch wave from the memo cache
    profiler::RuntimeCondition cond;
    cond.primary = wl::Benchmark::kKmeans;
    cond.collocated = wl::Benchmark::kRedis;
    cond.util_primary = 0.9;
    cond.util_collocated = 0.9;
    cond.seed = args.seed + 5;
    core::RtPredictor pred(profiler, nullptr, nullptr, rc);

    core::ExplorerConfig per_cell;  // 5x5 grid
    per_cell.parallel = false;
    per_cell.batch = false;
    core::ExplorerConfig batched = per_cell;
    batched.batch = true;

    core::PolicyExploration base, wave;
    const double cell_s = timed_best(reps, [&] {
      queueing::clear_crn_stream_cache();
      base = explore_policies(pred, cond, per_cell);
    });
    const double batch_s = timed_best(reps, [&] {
      queueing::clear_crn_stream_cache();
      wave = explore_policies(pred, cond, batched);
    });

    bool identical =
        base.selection.timeout_primary == wave.selection.timeout_primary &&
        base.selection.timeout_collocated ==
            wave.selection.timeout_collocated;
    for (std::size_t i = 0;
         identical && i < base.predicted_primary.data().size(); ++i)
      identical = base.predicted_primary.data()[i] ==
                      wave.predicted_primary.data()[i] &&
                  base.predicted_collocated.data()[i] ==
                      wave.predicted_collocated.data()[i];
    const double speedup = cell_s / batch_s;
    // Same honesty rule as ggk_batch: the wave's advantage is pool-wide
    // CRN-stream sharing and fan-out, invisible at 1-2 workers.
    const bool claim = workers >= kMinBatchClaimWorkers;
    JsonObject s;
    s.set("grid_cells", per_cell.grid.size() * per_cell.grid.size())
        .set("workers", workers)
        .set("per_cell_s", cell_s)
        .set("batch_s", batch_s)
        .set("speedup_measured", speedup)
        .set("speedup_claimed", claim)
        .set("bit_identical", identical);
    if (claim) s.set("speedup", speedup);
    record.set("policy_sweep_batch", s);
    table.add_row({"policy sweep (batched)", Table::num(cell_s, 3) + "s",
                   Table::num(batch_s, 3) + "s",
                   claim ? Table::num(speedup, 2)
                         : Table::num(speedup, 2) + " (n/a: " +
                               std::to_string(workers) + " workers)",
                   identical ? "yes" : "NO"});
  }

  table.print(std::cout);
  table.write_csv(csv_path(argv[0]));
  write_bench_section(args.json_path, "bench_sim_core", record);
  return 0;
}

// Figure 8: speedup in 95th-percentile response time for competing cache
// allocation techniques, across four collocation groups (micro-services,
// key-value, Spark, Rodinia) at 90% arrival rate with exponential
// inter-arrivals.  Every policy's timeout pair is selected by its own
// method, then measured on the ground-truth testbed; speedups are
// normalized to the no-cache-sharing baseline (8a-d).  The final section
// compares the full model against the simple-ML-driven policy (8e).
#include <iostream>

#include "bench_util.hpp"

using namespace stac;
using namespace stac::bench;
using core::EaModel;
using core::EaModelConfig;
using core::PolicySelection;
using core::ProfileLibrary;
using core::RtPredictor;
using core::RtPredictorConfig;
using profiler::Profile;
using profiler::Profiler;
using profiler::RuntimeCondition;

namespace {

RuntimeCondition heavy_condition(const Pairing& pairing,
                                 std::uint64_t seed) {
  RuntimeCondition c;
  c.primary = pairing.a;
  c.collocated = pairing.b;
  c.util_primary = 0.9;  // §5.2: arrival rate at 90% of service rate
  c.util_collocated = 0.9;
  c.seed = seed;
  return c;
}

PolicySelection model_driven(const Profiler& profiler,
                             const std::vector<Profile>& profiles,
                             const RuntimeCondition& condition,
                             const EaModelConfig& model_cfg,
                             std::uint64_t seed, const char* name) {
  EaModel model(model_cfg);
  model.fit(profiles);
  ProfileLibrary library;
  library.add_all(std::vector<Profile>(profiles));
  RtPredictorConfig pcfg;
  pcfg.seed = seed;
  RtPredictor predictor(profiler, &model, &library, pcfg);
  core::ExplorerConfig ecfg;  // 5 settings/workload -> 25 pairs (§5.2)
  auto result = core::explore_policies(predictor, condition, ecfg);
  result.selection.name = name;
  return result.selection;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_banner(std::cout,
               "Figure 8 — p95 speedup of competing allocation policies");

  Profiler profiler(bench_profiler_config());
  const std::size_t eval_completions = args.fast ? 1200 : 3000;

  Table table({"Collocation", "Policy", "T (a,b)", "p95 speedup a",
               "p95 speedup b", "median"});
  std::vector<double> ours_speedups, simple_speedups, dcat_speedups,
      dyna_speedups, static_speedups;

  const auto pairings = evaluation_pairings();
  for (std::size_t g = 0; g < pairings.size(); ++g) {
    const Pairing& pairing = pairings[g];
    const RuntimeCondition cond = heavy_condition(pairing, args.seed + g);
    const std::string label = std::string(wl::benchmark_id(pairing.a)) +
                              "+" + std::string(wl::benchmark_id(pairing.b));
    std::cout << "group " << label << ": profiling...\n";
    const auto profiles =
        collect_pairing(profiler, pairing, args.budget, args.seed + 7 * g);

    // Policy selections.
    std::vector<PolicySelection> policies;
    policies.push_back(core::select_no_sharing());
    policies.push_back(core::select_static(profiler, cond,
                                           eval_completions / 2));
    policies.push_back(core::select_dcat(profiler, cond));
    policies.push_back(core::select_dynasprint(
        profiler, cond, {0.0, 0.5, 1.0, 2.0, 4.0}, 0.3,
        eval_completions / 3));
    EaModelConfig simple_cfg = bench_ea_config(args.seed + 50 + g);
    simple_cfg.backend = core::EaBackend::kSimpleForest;
    policies.push_back(model_driven(profiler, profiles, cond, simple_cfg,
                                    args.seed + 51, "simple-ML"));
    policies.push_back(model_driven(profiler, profiles, cond,
                                    bench_ea_config(args.seed + 52 + g),
                                    args.seed + 53, "model-driven (ours)"));

    // Ground-truth evaluation, normalized to no-sharing.
    const auto baseline = core::evaluate_policy(
        profiler, cond, 6.0, 6.0, eval_completions);
    for (const auto& policy : policies) {
      const auto r = core::evaluate_policy(profiler, cond,
                                           policy.timeout_primary,
                                           policy.timeout_collocated,
                                           eval_completions);
      const double sa = baseline.p95_rt(0) / r.p95_rt(0);
      const double sb = baseline.p95_rt(1) / r.p95_rt(1);
      const double med = std::min(sa, sb) +
                         0.5 * (std::max(sa, sb) - std::min(sa, sb));
      table.add_row({label, policy.name,
                     "(" + Table::num(policy.timeout_primary, 1) + "," +
                         Table::num(policy.timeout_collocated, 1) + ")",
                     Table::num(sa, 2) + "x", Table::num(sb, 2) + "x",
                     Table::num(med, 2) + "x"});
      if (policy.name == "model-driven (ours)") {
        ours_speedups.push_back(sa);
        ours_speedups.push_back(sb);
      } else if (policy.name == "simple-ML") {
        simple_speedups.push_back(sa);
        simple_speedups.push_back(sb);
      } else if (policy.name == "dCat") {
        dcat_speedups.push_back(sa);
        dcat_speedups.push_back(sb);
      } else if (policy.name == "dynaSprint") {
        dyna_speedups.push_back(sa);
        dyna_speedups.push_back(sb);
      } else if (policy.name == "static") {
        static_speedups.push_back(sa);
        static_speedups.push_back(sb);
      }
    }
  }
  table.print(std::cout);
  table.write_csv(csv_path(argv[0]));

  auto median_of = [](std::vector<double> v) {
    SampleStats st{std::move(v)};
    return st.median();
  };
  print_banner(std::cout, "Fig. 8 summary (median p95 speedup vs no-sharing)");
  Table summary({"Policy", "median speedup", "vs ours"});
  const double ours = median_of(ours_speedups);
  auto emit = [&](const char* name, double v) {
    summary.add_row({name, Table::num(v, 2) + "x",
                     Table::num(ours / v, 2) + "x"});
  };
  emit("static", median_of(static_speedups));
  emit("dCat", median_of(dcat_speedups));
  emit("dynaSprint", median_of(dyna_speedups));
  emit("simple-ML (8e)", median_of(simple_speedups));
  emit("model-driven (ours)", ours);
  summary.print(std::cout);
  summary.write_csv(csv_path(argv[0], "_summary"));

  std::cout << "\nPaper reference: ours ~2x median vs no-sharing (up to 2.6x "
               "for Spark kmeans),\n~1.2-1.3x over dCat/dynaSprint; simple-ML "
               "between dCat and ours.\n";
  return 0;
}

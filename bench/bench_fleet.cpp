// Fleet control-plane harness (PR-8 record, BENCH_PR8.json).
//
// Three sections:
//   fleet_soak    — 16 node shards under one coordinator, every epoch fed
//                   by 16 concurrent producers; gated on zero-loss
//                   accounting (pushed == popped, zero drops) and on the
//                   aggregate drain rate clearing 10M events/min;
//   join_leave    — the shard hand-off drill under load: leave with events
//                   still in the ring (the final drain must fold them in),
//                   plan on the renormalized capacity, rejoin from the
//                   hand-off checkpoint; gated on zero loss and a clean
//                   (non-quarantined) restore;
//   epoch_latency — coordinator epoch latency at 16 shards, split into the
//                   cold transient and the steady state; the steady plan
//                   p99 is gated under 10 ms (the global sweep is the same
//                   memoized planner PR 7 made sub-10ms — sharding must
//                   not give that back).
#include <algorithm>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cachesim/simd_probe.hpp"
#include "fleet/fleet_coordinator.hpp"
#include "obs/trace.hpp"
#include "serve/online_controller.hpp"

using namespace stac;
using namespace stac::bench;

namespace {

core::StacOptions fleet_options(const BenchArgs& args) {
  core::StacOptions opts;
  opts.profile_budget = args.fast ? 6 : 10;
  opts.profiler.target_completions = args.fast ? 250 : 500;
  opts.profiler.warmup_completions = 40;
  opts.profiler.max_windows = 1;
  opts.profiler.accesses_per_sample = 800;
  opts.model.deep_forest.mgs.window_sizes = {5};
  opts.model.deep_forest.mgs.estimators = 8;
  opts.model.deep_forest.cascade.levels = 1;
  opts.model.deep_forest.cascade.estimators = 12;
  opts.predictor.sim_queries = args.fast ? 1500 : 3000;
  opts.sampler.seed = args.seed;
  return opts;
}

fleet::FleetConfig fleet_config(const core::StacOptions& opts,
                                std::size_t shards) {
  fleet::FleetConfig cfg;
  cfg.shards = shards;
  cfg.shard.servers = 2;
  cfg.shard.estimator.min_completions = 10;
  cfg.planner.base_condition.primary = wl::Benchmark::kKmeans;
  cfg.planner.base_condition.collocated = wl::Benchmark::kRedis;
  cfg.planner.base_condition.util_primary = 0.6;
  cfg.planner.base_condition.util_collocated = 0.6;
  cfg.planner.base_condition.timeout_primary = 1.0;
  cfg.planner.base_condition.timeout_collocated = 1.0;
  cfg.planner.base_condition.seed = 99;
  cfg.planner.explorer = opts.explorer;
  cfg.planner.util_quantum = 0.1;
  cfg.planner.probe_ttl_epochs = 5;
  return cfg;
}

/// One epoch of deterministic traffic into one shard's ring: `pairs`
/// arrival+completion pairs per workload spread over [t0, t1).  The batch
/// is sized under the ring capacity, so a failed push is a real loss (it
/// is returned, counted, and gated on zero).
std::uint64_t feed_shard(fleet::NodeShard& shard, double t0, double t1,
                         std::size_t pairs) {
  std::uint64_t failures = 0;
  const double step = (t1 - t0) / static_cast<double>(pairs);
  for (std::uint16_t w = 0; w < 2; ++w) {
    for (std::size_t i = 0; i < pairs; ++i) {
      const double t = t0 + static_cast<double>(i) * step;
      serve::QueryEvent arrival;
      arrival.kind = serve::EventKind::kArrival;
      arrival.workload = w;
      arrival.time = t;
      if (!shard.ingest().try_push(arrival)) ++failures;
      serve::QueryEvent done;
      done.kind = serve::EventKind::kCompletion;
      done.workload = w;
      done.time = t;
      done.service = 0.05;
      done.queue_delay = 0.005;
      if (!shard.ingest().try_push(done)) ++failures;
    }
  }
  return failures;
}

/// Run `epochs` coordinator epochs with one producer thread per active
/// shard.  Returns total push failures; per-epoch reports land in `out`.
std::uint64_t drive(fleet::FleetCoordinator& fleet, std::size_t epoch0,
                    std::size_t epochs, std::size_t pairs, double interval,
                    std::vector<fleet::FleetEpochReport>* out = nullptr) {
  std::uint64_t push_failures = 0;
  const std::size_t n = fleet.shard_count();
  for (std::size_t k = epoch0; k < epoch0 + epochs; ++k) {
    const double t0 = static_cast<double>(k) * interval;
    const double t1 = t0 + interval;
    std::vector<std::thread> producers;
    std::vector<std::uint64_t> failed(n, 0);
    for (std::size_t s = 0; s < n; ++s) {
      if (!fleet.shard(s).active()) continue;
      producers.emplace_back([&fleet, &failed, s, t0, t1, pairs] {
        failed[s] = feed_shard(fleet.shard(s), t0, t1, pairs);
      });
    }
    for (auto& p : producers) p.join();
    for (const std::uint64_t f : failed) push_failures += f;
    const fleet::FleetEpochReport r = fleet.run_epoch(t1);
    if (out != nullptr) out->push_back(r);
  }
  return push_failures;
}

struct RingTotals {
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  std::uint64_t dropped = 0;
};

RingTotals ring_totals(const fleet::FleetCoordinator& fleet) {
  RingTotals t;
  for (std::size_t s = 0; s < fleet.shard_count(); ++s) {
    t.pushed += fleet.shard(s).ingest().pushed();
    t.popped += fleet.shard(s).ingest().popped();
    t.dropped += fleet.shard(s).ingest().dropped();
  }
  return t;
}

/// Section 1: aggregate drain rate at 16 shards, zero-loss accounting.
JsonObject bench_fleet_soak(const BenchArgs& args, const core::StacManager& mgr,
                            const core::StacOptions& opts) {
  const std::size_t shards = 16;
  const std::size_t pairs = 8192;  // x2 workloads x2 events, under ring cap
  const std::size_t epochs = args.fast ? 12 : 40;
  const double interval = 2.0;

  serve::ModelSnapshot<serve::ServingModel> models(
      serve::build_serving_model(mgr, opts, 1));
  fleet::FleetCoordinator fleet(models, fleet_config(opts, shards));

  Stopwatch clock;
  const std::uint64_t push_failures =
      drive(fleet, 0, epochs, pairs, interval);
  const double seconds = clock.seconds();

  const auto& totals = fleet.totals();
  const RingTotals rings = ring_totals(fleet);
  const double events_per_min =
      static_cast<double>(totals.events_drained) / seconds * 60.0;
  const bool zero_loss = push_failures == 0 && rings.dropped == 0 &&
                         rings.popped == rings.pushed &&
                         totals.events_drained == rings.pushed;
  JsonObject out;
  out.set("shards", shards);
  out.set("epochs", epochs);
  out.set("events_drained", static_cast<std::size_t>(totals.events_drained));
  out.set("push_failures", static_cast<std::size_t>(push_failures));
  out.set("ring_drops", static_cast<std::size_t>(rings.dropped));
  out.set("seconds", seconds);
  out.set("events_per_minute", events_per_min);
  out.set("replans", static_cast<std::size_t>(totals.replans));
  out.set("plan_pushes", static_cast<std::size_t>(totals.plan_pushes));
  out.set("zero_loss", zero_loss);
  out.set("throughput_gate_10m_per_min", events_per_min >= 10'000'000.0);
  std::printf("  soak: %zu shards, %.1fM events in %.2fs (%.0fM/min), "
              "%llu replans / %llu pushes, zero_loss=%s\n",
              shards, static_cast<double>(totals.events_drained) / 1e6,
              seconds, events_per_min / 1e6,
              static_cast<unsigned long long>(totals.replans),
              static_cast<unsigned long long>(totals.plan_pushes),
              zero_loss ? "true" : "false");
  return out;
}

/// Section 2: the hand-off drill — leave under load, plan on renormalized
/// capacity, rejoin from the checkpoint.
JsonObject bench_join_leave(const BenchArgs& args, const core::StacManager& mgr,
                            const core::StacOptions& opts) {
  const std::size_t shards = 16;
  const std::size_t pairs = args.fast ? 2048 : 8192;
  const double interval = 2.0;
  const std::size_t warm_epochs = args.fast ? 4 : 8;

  serve::ModelSnapshot<serve::ServingModel> models(
      serve::build_serving_model(mgr, opts, 1));
  fleet::FleetCoordinator fleet(models, fleet_config(opts, shards));
  std::uint64_t push_failures =
      drive(fleet, 0, warm_epochs, pairs, interval);

  // Push one more epoch of traffic into the leaver WITHOUT an epoch in
  // between: leave_shard's final drain must fold it in.
  const std::size_t leaver = shards - 1;
  const double t_leave =
      static_cast<double>(warm_epochs) * interval + interval;
  push_failures +=
      feed_shard(fleet.shard(leaver), t_leave - interval, t_leave, pairs);
  const std::uint64_t leaver_pushed = fleet.shard(leaver).ingest().pushed();
  Stopwatch leave_clock;
  const serve::ControllerCheckpoint handoff = fleet.leave_shard(leaver, t_leave);
  const double leave_seconds = leave_clock.seconds();
  const bool drained_on_leave =
      fleet.shard(leaver).ingest().popped() == leaver_pushed &&
      fleet.shard(leaver).ingest().dropped() == 0;

  // Two epochs on the remaining 15 shards (renormalized capacity).
  std::vector<fleet::FleetEpochReport> away;
  push_failures += drive(fleet, warm_epochs, 2, pairs, interval, &away);
  const std::size_t active_away = away.empty() ? 0 : away.back().active_shards;

  Stopwatch join_clock;
  const serve::RecoveryReport rec =
      fleet.rejoin_shard(leaver, handoff, t_leave + 2 * interval);
  const double join_seconds = join_clock.seconds();
  push_failures += drive(fleet, warm_epochs + 2, 2, pairs, interval);

  const RingTotals rings = ring_totals(fleet);
  const auto& totals = fleet.totals();
  const bool zero_loss = push_failures == 0 && rings.dropped == 0 &&
                         rings.popped == rings.pushed && drained_on_leave;
  const bool gate = zero_loss && rec.restored && !rec.quarantined &&
                    totals.join_quarantines == 0 && active_away == shards - 1 &&
                    fleet.active_shards() == shards;
  JsonObject out;
  out.set("shards", shards);
  out.set("leave_seconds", leave_seconds);
  out.set("join_seconds", join_seconds);
  out.set("drained_on_leave", drained_on_leave);
  out.set("active_while_away", active_away);
  out.set("restore_clean", rec.restored && !rec.quarantined);
  out.set("join_quarantines",
          static_cast<std::size_t>(totals.join_quarantines));
  out.set("push_failures", static_cast<std::size_t>(push_failures));
  out.set("ring_drops", static_cast<std::size_t>(rings.dropped));
  out.set("zero_loss", zero_loss);
  out.set("join_leave_gate", gate);
  std::printf("  join/leave: leave %.2f ms (drained=%s), %zu shards while "
              "away, rejoin %.2f ms (clean=%s), gate=%s\n",
              leave_seconds * 1e3, drained_on_leave ? "true" : "false",
              active_away, join_seconds * 1e3,
              (rec.restored && !rec.quarantined) ? "true" : "false",
              gate ? "true" : "false");
  return out;
}

/// Section 3: coordinator epoch latency at 16 shards.
JsonObject bench_epoch_latency(const BenchArgs& args,
                               const core::StacManager& mgr,
                               const core::StacOptions& opts) {
  const std::size_t shards = 16;
  const std::size_t pairs = args.fast ? 1024 : 4096;
  const double interval = 2.0;
  const std::size_t warmup = args.fast ? 8 : 15;
  const std::size_t epochs = warmup + (args.fast ? 20 : 60);

  serve::ModelSnapshot<serve::ServingModel> models(
      serve::build_serving_model(mgr, opts, 1));
  fleet::FleetCoordinator fleet(models, fleet_config(opts, shards));

  std::vector<fleet::FleetEpochReport> reports;
  reports.reserve(epochs);
  std::vector<double> epoch_seconds;
  epoch_seconds.reserve(epochs);
  for (std::size_t k = 0; k < epochs; ++k) {
    const double t0 = static_cast<double>(k) * interval;
    std::vector<std::thread> producers;
    for (std::size_t s = 0; s < shards; ++s)
      producers.emplace_back([&fleet, s, t0, interval, pairs] {
        (void)feed_shard(fleet.shard(s), t0, t0 + interval, pairs);
      });
    for (auto& p : producers) p.join();
    Stopwatch w;
    reports.push_back(fleet.run_epoch(t0 + interval));
    epoch_seconds.push_back(w.seconds());
  }

  std::vector<double> warm_plan, steady_plan, steady_epoch;
  for (std::size_t k = 0; k < epochs; ++k) {
    (k < warmup ? warm_plan : steady_plan).push_back(reports[k].plan_seconds);
    if (k >= warmup) steady_epoch.push_back(epoch_seconds[k]);
  }
  SampleStats warm{std::move(warm_plan)};
  SampleStats plan{std::move(steady_plan)};
  SampleStats epoch{std::move(steady_epoch)};
  const double plan_p99 = plan.percentile_or(0.99, 0.0);

  JsonObject out;
  out.set("shards", shards);
  out.set("epochs", epochs);
  out.set("warmup_epochs", warmup);
  out.set("warmup_plan_p50_seconds", warm.percentile_or(0.5, 0.0));
  out.set("plan_p50_seconds", plan.percentile_or(0.5, 0.0));
  out.set("plan_p99_seconds", plan_p99);
  out.set("epoch_p50_seconds", epoch.percentile_or(0.5, 0.0));
  out.set("epoch_p99_seconds", epoch.percentile_or(0.99, 0.0));
  out.set("replans", static_cast<std::size_t>(fleet.totals().replans));
  out.set("plan_p99_under_10ms", plan_p99 < 0.010);
  std::printf("  epoch latency: steady plan p50 %.2f ms, p99 %.2f ms; "
              "epoch p99 %.2f ms (%zu shards, %llu replans)\n",
              plan.percentile_or(0.5, 0.0) * 1e3, plan_p99 * 1e3,
              epoch.percentile_or(0.99, 0.0) * 1e3, shards,
              static_cast<unsigned long long>(fleet.totals().replans));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  // This binary owns the PR-8 record; an explicit --json or STAC_BENCH_JSON
  // still wins.
  if (args.json_path == "BENCH_PR2.json" &&
      std::getenv("STAC_BENCH_JSON") == nullptr)
    args.json_path = "BENCH_PR8.json";
  print_banner(std::cout, "Fleet-scale sharded serving (soak, hand-off, latency)");
  const std::size_t workers = ensure_bench_pool();
  obs::set_enabled(true);

  JsonObject record;
  JsonObject meta;
  meta.set("hardware_threads",
           static_cast<std::size_t>(std::thread::hardware_concurrency()));
  meta.set("pool_workers", workers);
  meta.set("fast", args.fast);
  meta.set("seed", static_cast<std::size_t>(args.seed));
  meta.set("simd_isa", cachesim::simd::isa_name());
  record.set("meta", meta);

  const core::StacOptions opts = fleet_options(args);
  core::StacManager mgr(opts);
  std::printf("calibrating (kmeans + redis, trimmed budgets)...\n");
  mgr.calibrate(wl::Benchmark::kKmeans, wl::Benchmark::kRedis);

  std::printf("16-shard soak\n");
  record.set("fleet_soak", bench_fleet_soak(args, mgr, opts));

  std::printf("join/leave drill\n");
  record.set("join_leave", bench_join_leave(args, mgr, opts));

  std::printf("coordinator epoch latency\n");
  record.set("epoch_latency", bench_epoch_latency(args, mgr, opts));

  write_bench_section(args.json_path, "bench_fleet", record);
  return 0;
}

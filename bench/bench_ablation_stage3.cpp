// Ablation of the Stage-3 simulator's structure (DESIGN.md §5b): with the
// same learned EA model and the same test conditions, how much prediction
// accuracy does each mechanism buy?
//
//   full          — class-level boosting + residual-occupancy feedback
//   per-query     — each query boosts only itself (no §4 class switch)
//   no residual   — boosted phase only; default phase at base rate
//   neither       — both ablated
#include <iostream>

#include "bench_util.hpp"

using namespace stac;
using namespace stac::bench;
using core::EaModel;
using core::ProfileLibrary;
using core::RtPredictor;
using core::RtPredictorConfig;
using profiler::Profile;
using profiler::Profiler;

namespace {

std::vector<double> apes_for(const Profiler& profiler, const EaModel& model,
                             const std::vector<Profile>& test,
                             bool class_level, double residual_weight,
                             std::uint64_t seed) {
  std::vector<double> apes;
  for (const auto& p : test) {
    const double ea = model.predict(model.make_sample(p));
    const auto scales =
        profiler.pair_scales(p.condition.primary, p.condition.collocated);
    queueing::GGkConfig g;
    g.utilization = p.condition.util_primary;
    g.servers = profiler.config().servers;
    g.mean_service = scales.scaled_base_primary;
    const auto& wm = profiler.model(p.condition.primary);
    g.service_cv =
        wm.spec().use_microservice_graph ? 0.55 : wm.spec().service_cv;
    g.timeout_rel = p.condition.timeout_primary;
    g.effective_allocation = ea;
    g.allocation_ratio = p.allocation_ratio;
    g.boost_prevalence = p.dynamics.size() > 1 ? p.dynamics[1] : 0.0;
    g.class_level_boost = class_level;
    g.residual_weight = residual_weight;
    g.queries = 6000;
    g.warmup = 300;
    g.seed = seed;
    const auto r = queueing::simulate_ggk(g);
    apes.push_back(
        absolute_percent_error(r.response_times.mean(), p.mean_rt));
  }
  return apes;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_banner(std::cout, "Ablation — Stage-3 simulator mechanisms");

  Profiler profiler(bench_profiler_config());
  const auto profiles = collect_pairing(
      profiler, {wl::Benchmark::kKmeans, wl::Benchmark::kRedis}, args.budget,
      args.seed);
  std::vector<Profile> train, test;
  split_profiles(profiles, 0.33, args.seed + 3, train, test);
  std::cout << "train " << train.size() << " / test " << test.size()
            << " profiles\n";

  EaModel model(bench_ea_config(args.seed));
  model.fit(train);

  // The mechanisms matter where queueing matters: also report the
  // heavy-load subset (util >= 0.8), where class-level switches and the
  // residual term carry the prediction.
  std::vector<Profile> stress;
  for (const auto& p : test)
    if (p.condition.util_primary >= 0.8) stress.push_back(p);
  std::cout << "heavy-load subset: " << stress.size() << " profiles\n";

  Table table({"Stage-3 variant", "Median APE", "p95 APE",
               "heavy-load median", "heavy-load p95"});
  const struct {
    const char* name;
    bool class_level;
    double residual;
  } variants[] = {
      {"full (class-level + residual)", true, 0.9},
      {"per-query boosting", false, 0.9},
      {"no residual feedback", true, 0.0},
      {"neither", false, 0.0},
  };
  for (const auto& v : variants) {
    const ApeSummary s = summarize_apes(apes_for(
        profiler, model, test, v.class_level, v.residual, args.seed + 9));
    const ApeSummary h = summarize_apes(apes_for(
        profiler, model, stress, v.class_level, v.residual, args.seed + 9));
    table.add_row({v.name, Table::pct(s.median), Table::pct(s.p95),
                   Table::pct(h.median), Table::pct(h.p95)});
  }
  table.print(std::cout);
  table.write_csv(csv_path(argv[0]));
  std::cout << "\nThe mechanisms pay off in the tail and under heavy load: "
               "per-query boosting\nmisses the §4 class switch during "
               "congestion; dropping the residual term\nignores CAT's "
               "hits-anywhere persistence.\n";
  return 0;
}

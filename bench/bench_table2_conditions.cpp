// Table 2: the runtime conditions studied, plus a coverage sweep showing
// how effective cache allocation responds across the condition space (the
// quantity Stage 2 learns).
#include <iostream>

#include "bench_util.hpp"
#include "profiler/stratified_sampler.hpp"

using namespace stac;
using namespace stac::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);

  print_banner(std::cout, "Table 2 — Static runtime conditions studied");
  Table ranges({"Description", "Supported Settings"});
  ranges.add_row({"Collocated services sharing cache lines",
                  "jacobi, knn, kmeans, spkmeans, spstream, bfs, social, "
                  "redis (pairwise)"});
  ranges.add_row({"Query inter-arrival rate (rel. to service time)",
                  "25% - 95%"});
  ranges.add_row({"Timeout policy (rel. to service time)",
                  "0% (always use shared cache) - 600% (never boost)"});
  ranges.add_row({"Cache usage sampling",
                  "1 Hz - every 5 seconds (relative: sampling_rel 2.0 - 0.4)"});
  ranges.print(std::cout);

  // Coverage sweep: EA across the timeout x utilization grid for one
  // pairing — the surface the deep forest has to learn.
  print_banner(std::cout, "EA coverage across the condition grid");
  profiler::Profiler profiler(bench_profiler_config());
  Table grid({"util \\ timeout", "T=0.0", "T=0.5", "T=1.5", "T=3.0", "T=6.0"});
  for (double util : {0.3, 0.6, 0.9}) {
    std::vector<std::string> row{Table::num(util, 1)};
    for (double timeout : {0.0, 0.5, 1.5, 3.0, 6.0}) {
      profiler::RuntimeCondition c;
      c.primary = wl::Benchmark::kKmeans;
      c.collocated = wl::Benchmark::kRedis;
      c.util_primary = util;
      c.util_collocated = util;
      c.timeout_primary = timeout;
      c.timeout_collocated = timeout;
      c.seed = args.seed;
      const auto profiles = profiler.profile_condition(c);
      row.push_back(profiles.empty() ? "-" : Table::num(profiles[0].ea, 3));
    }
    grid.add_row(std::move(row));
  }
  grid.print(std::cout);
  grid.write_csv(csv_path(argv[0]));
  std::cout << "\nEA falls as both services boost more aggressively "
               "(contention) and\nrises with data reuse — the non-linear "
               "surface that motivates Stage 2.\n";
  return 0;
}

// Figure 7b: accuracy across processor LLC sizes (20/30/40/59/72 MB) with
// full core utilization.  Each processor hosts cores/2 collocated services
// (the striped secondary axis); per-service reservations follow the paper
// (2 MB on the smaller parts, 3-4 MB on the Platinum 8275).  The pipeline
// is calibrated and evaluated per processor.
#include <iostream>

#include "bench_util.hpp"

using namespace stac;
using namespace stac::bench;
using core::EaModel;
using core::ProfileLibrary;
using core::RtPredictor;
using core::RtPredictorConfig;
using profiler::Profile;
using profiler::Profiler;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_banner(std::cout, "Figure 7b — accuracy across processor caches");

  Table table({"Processor", "LLC", "ways", "collocated wl", "Median APE",
               "p95 APE"});
  std::size_t preset_idx = 0;
  for (const auto& hw : cachesim::presets::all()) {
    profiler::ProfilerConfig cfg = bench_profiler_config();
    cfg.hw = hw;
    // Reservations: 2 MB per service on <=40 MB parts (1 way), 3-4 MB on
    // the Platinum sockets (1 way of 4 MB).  Shared region: 2 ways.
    cfg.private_ways = 1;
    cfg.shared_ways = 2;
    Profiler profiler(cfg);

    const Pairing pairing{wl::Benchmark::kKmeans, wl::Benchmark::kRedis};
    auto profiles = collect_pairing(profiler, pairing, args.budget,
                                    args.seed + preset_idx);
    std::vector<Profile> train, test;
    split_profiles(profiles, 0.33, args.seed + 70 + preset_idx, train, test);

    EaModel model(bench_ea_config(args.seed + 80 + preset_idx));
    model.fit(train);
    ProfileLibrary library;
    library.add_all(std::move(train));
    RtPredictorConfig pcfg;
    pcfg.seed = args.seed + 81;
    RtPredictor predictor(profiler, &model, &library, pcfg);

    std::vector<double> apes;
    for (const auto& p : test) {
      const double predicted = predictor.predict_for_profile(p).mean_rt;
      apes.push_back(absolute_percent_error(predicted, p.mean_rt));
    }
    const ApeSummary s = summarize_apes(apes);
    table.add_row({hw.name,
                   std::to_string(hw.llc.size_bytes / (1024 * 1024)) + " MB",
                   std::to_string(hw.llc.ways),
                   std::to_string(hw.cores / 2), Table::pct(s.median),
                   Table::pct(s.p95)});
    std::cout << "done: " << hw.name << "\n";
    ++preset_idx;
  }
  table.print(std::cout);
  table.write_csv(csv_path(argv[0]));
  std::cout << "\nPaper reference: median error stays below 15% on every "
               "processor.\n";
  return 0;
}

// Figure 7a: per-collocation prediction error with the *target pairing
// excluded from training* — the generalization claim.  The model trained on
// the other pairings must predict jac(bfs), bfs(jac), kmeans(redis), ...
// below ~15% median APE.
#include <iostream>

#include "bench_util.hpp"

using namespace stac;
using namespace stac::bench;
using core::EaModel;
using core::ProfileLibrary;
using core::RtPredictor;
using core::RtPredictorConfig;
using profiler::Profile;
using profiler::Profiler;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_banner(std::cout,
               "Figure 7a — generalization to unseen collocations");

  Profiler profiler(bench_profiler_config());
  const auto pairings = evaluation_pairings();
  std::vector<std::vector<Profile>> by_pairing;
  for (std::size_t i = 0; i < pairings.size(); ++i) {
    by_pairing.push_back(collect_pairing(profiler, pairings[i], args.budget,
                                         args.seed + i));
    std::cout << "profiled pairing " << i + 1 << "/" << pairings.size()
              << "\n";
  }

  Table table({"Target collocation", "Median APE", "p95 APE", "conditions"});
  for (std::size_t target = 0; target < pairings.size(); ++target) {
    // Train on every *other* pairing's profiles.
    std::vector<Profile> train;
    for (std::size_t i = 0; i < pairings.size(); ++i) {
      if (i == target) continue;
      for (const auto& p : by_pairing[i]) train.push_back(p);
    }
    EaModel model(bench_ea_config(args.seed + 60 + target));
    model.fit(train);
    ProfileLibrary library;
    library.add_all(std::vector<Profile>(train));
    RtPredictorConfig pcfg;
    pcfg.seed = args.seed + 61;
    RtPredictor predictor(profiler, &model, &library, pcfg);

    // Evaluate both directions of the held-out pairing separately — the
    // paper's jac(bfs) vs bfs(jac) distinction.
    for (wl::Benchmark primary : {pairings[target].a, pairings[target].b}) {
      std::vector<double> apes;
      for (const auto& p : by_pairing[target]) {
        if (p.condition.primary != primary) continue;
        const double predicted = predictor.predict_for_profile(p).mean_rt;
        apes.push_back(absolute_percent_error(predicted, p.mean_rt));
      }
      const ApeSummary s = summarize_apes(apes);
      const wl::Benchmark other = primary == pairings[target].a
                                      ? pairings[target].b
                                      : pairings[target].a;
      table.add_row({std::string(wl::benchmark_id(primary)) + "(" +
                         std::string(wl::benchmark_id(other)) + ")",
                     Table::pct(s.median), Table::pct(s.p95),
                     std::to_string(s.count)});
    }
  }
  table.print(std::cout);
  table.write_csv(csv_path(argv[0]));
  std::cout << "\nPaper reference: median error below 15% for every "
               "collocation.\n";
  return 0;
}

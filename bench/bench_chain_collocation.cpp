// Extension experiment: three-workload chain collocations.
//
// §2 proves a short-term allocation can share cache with at most two other
// settings, so the maximal legal structure for n services is a chain
// (w0 |s| w1 |s| w2 ...).  The paper evaluates pairs; this harness runs the
// testbed on the chain the conjecture permits and sweeps the *middle*
// workload's timeout — the middle position is special: two shared regions
// to gain from, two neighbours to thrash with.
#include <iostream>

#include "bench_util.hpp"

using namespace stac;
using namespace stac::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_banner(std::cout,
               "Extension — 3-workload chain (kmeans | bfs | knn)");

  constexpr double kWayBytes = 2.0 * 1024 * 1024;
  const auto m0 = wl::make_model(wl::Benchmark::kKmeans, 20, kWayBytes, 2);
  const auto m1 = wl::make_model(wl::Benchmark::kBfs, 20, kWayBytes, 2);
  const auto m2 = wl::make_model(wl::Benchmark::kKnn, 20, kWayBytes, 2);
  const cat::AllocationPlan plan = cat::make_chain_plan(20, 3, 2, 2);
  std::cout << "plan: " << plan.to_string() << "\n"
            << "conjecture 2 bound respected: "
            << (plan.sharing_degree_at_most_two() ? "yes" : "NO") << "\n";

  auto run = [&](double t0, double t1, double t2, std::uint64_t seed) {
    queueing::TestbedConfig cfg;
    queueing::TestbedWorkload w0, w1, w2;
    w0.model = &m0;
    w0.utilization = 0.9;
    w0.time_scale = 1.0 / 5.0;
    w1.model = &m1;
    w1.utilization = 0.9;
    w1.time_scale = 1.0 / 3.0;
    w2.model = &m2;
    w2.utilization = 0.9;
    w2.time_scale = 1.0 / 2.0;
    cfg.workloads = {w0, w1, w2};
    cfg.staps = cat::make_stap_vector(plan, {t0, t1, t2});
    cfg.target_completions = args.fast ? 1000 : 2500;
    cfg.warmup_completions = 100;
    cfg.seed = seed;
    queueing::Testbed bed(cfg);
    return bed.run();
  };

  const auto baseline = run(6.0, 6.0, 6.0, args.seed);

  Table table({"T middle (ends fixed 1.0)", "kmeans p95 speedup",
               "bfs (middle) p95 speedup", "knn p95 speedup",
               "middle eff. ways", "middle boost time"});
  for (double t_mid : {0.0, 0.5, 1.0, 2.0, 4.0, 6.0}) {
    const auto r = run(1.0, t_mid, 1.0, args.seed);
    table.add_row(
        {Table::num(t_mid, 1),
         Table::num(baseline.p95_rt(0) / r.p95_rt(0), 2) + "x",
         Table::num(baseline.p95_rt(1) / r.p95_rt(1), 2) + "x",
         Table::num(baseline.p95_rt(2) / r.p95_rt(2), 2) + "x",
         Table::num(r.per_workload[1].mean_effective_ways, 2),
         Table::pct(r.per_workload[1].boost_time_fraction)});
  }
  table.print(std::cout);
  table.write_csv(csv_path(argv[0]));

  std::cout << "\nThe middle workload's timeout trades its own two-region "
               "gain against\nthrash on BOTH neighbours — the pairwise "
               "tradeoff of Fig. 8, squared.\n";
  return 0;
}

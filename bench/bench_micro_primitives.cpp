// Microbenchmarks of the operational primitives the 30-minute profiling
// budget rests on: cache-simulator access throughput (masked and unmasked),
// CAT class-of-service switching, forest / deep-forest inference latency,
// discrete-event testbed throughput, and the Stage-3 G/G/k simulator.
#include <benchmark/benchmark.h>

#include "cat/cat_controller.hpp"
#include "common/rng.hpp"
#include "ml/random_forest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "queueing/ggk_simulator.hpp"
#include "queueing/testbed.hpp"
#include "wl/benchmark_suite.hpp"

namespace {

using namespace stac;

cachesim::HierarchyConfig bench_hw() {
  cachesim::HierarchyConfig c;
  c.l1d = {32 * 1024, 8, 64, 4};
  c.l1i = {32 * 1024, 8, 64, 4};
  c.l2 = {256 * 1024, 16, 64, 12};
  c.llc = {5 * 1024 * 1024, 20, 64, 42};  // 4096 sets x 20 ways
  return c;
}

void BM_CacheAccessUnmasked(benchmark::State& state) {
  cachesim::CacheHierarchy hw(bench_hw(), 1);
  Rng rng(1);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    addr = (addr + 64 * (1 + rng.uniform_index(64))) & ((1u << 23) - 1);
    benchmark::DoNotOptimize(
        hw.access(0, {addr, cachesim::AccessType::kLoad}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessUnmasked);

void BM_CacheAccessMasked(benchmark::State& state) {
  cachesim::CacheHierarchy hw(bench_hw(), 1);
  hw.set_llc_fill_mask(0, cat::Allocation{0, 2}.mask());
  Rng rng(2);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    addr = (addr + 64 * (1 + rng.uniform_index(64))) & ((1u << 23) - 1);
    benchmark::DoNotOptimize(
        hw.access(0, {addr, cachesim::AccessType::kLoad}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessMasked);

void BM_CatClassOfServiceSwitch(benchmark::State& state) {
  cachesim::CacheHierarchy hw(bench_hw(), 2);
  cat::CatController controller(hw, cat::make_pair_plan(20, 1, 2));
  for (auto _ : state) {
    controller.boost(0);
    controller.unboost(0);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_CatClassOfServiceSwitch);

void BM_ForestInference(benchmark::State& state) {
  Rng rng(3);
  Matrix x(0, 20);
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    std::vector<double> row(20);
    for (auto& v : row) v = rng.uniform();
    x.append_row(row);
    y.push_back(row[0] * row[1]);
  }
  ml::RandomForest forest(ml::ForestConfig{.estimators = 100, .seed = 4});
  forest.fit(ml::Dataset(std::move(x), std::move(y)));
  std::vector<double> probe(20, 0.5);
  for (auto _ : state) benchmark::DoNotOptimize(forest.predict(probe));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestInference);

void BM_GGkSimulation(benchmark::State& state) {
  queueing::GGkConfig cfg;
  cfg.utilization = 0.9;
  cfg.timeout_rel = 1.0;
  cfg.effective_allocation = 0.5;
  cfg.allocation_ratio = 3.0;
  cfg.queries = 2000;
  cfg.warmup = 100;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    cfg.seed = ++seed;
    benchmark::DoNotOptimize(queueing::simulate_ggk(cfg));
  }
  state.SetItemsProcessed(state.iterations() * cfg.queries);
}
BENCHMARK(BM_GGkSimulation);

void BM_TestbedRun(benchmark::State& state) {
  const double way_bytes = 2.0 * 1024 * 1024;
  const auto m0 = wl::make_model(wl::Benchmark::kKmeans, 20, way_bytes, 1);
  const auto m1 = wl::make_model(wl::Benchmark::kBfs, 20, way_bytes, 1);
  const auto plan = cat::make_pair_plan(20, 1, 2);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    queueing::TestbedConfig cfg;
    queueing::TestbedWorkload w0, w1;
    w0.model = &m0;
    w0.utilization = 0.9;
    w0.time_scale = 1.0 / 5.0;
    w1.model = &m1;
    w1.utilization = 0.9;
    w1.time_scale = 1.0 / 3.0;
    cfg.workloads = {w0, w1};
    cfg.staps = cat::make_stap_vector(plan, {1.0, 1.0});
    cfg.target_completions = 500;
    cfg.warmup_completions = 50;
    cfg.seed = ++seed;
    queueing::Testbed bed(cfg);
    benchmark::DoNotOptimize(bed.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TestbedRun);

void BM_ConjectureSearch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cat::search_conjecture_counterexamples(6, 2));
  }
}
BENCHMARK(BM_ConjectureSearch);

// --- Observability overhead ------------------------------------------------
// The tracing/metrics layer is compiled in by default and gated by a runtime
// flag, so its disabled path sits on every hot loop in the pipeline.  These
// benchmarks pin that path's cost: a disabled span/instant/count must be a
// latched-boolean check and nothing else.  Compare BM_GGkSimulation against
// BM_GGkSimulationTraceDisabled for the end-to-end claim (<5% delta).

void BM_TraceSpanDisabled(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    STAC_TRACE_SPAN(span, "bench.noop", "bench");
    span.arg("x", 1.0);
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceInstantDisabled(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) obs::instant("bench.noop", "bench");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceInstantDisabled);

void BM_MetricsCountDisabled(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) obs::count("bench.noop");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCountDisabled);

void BM_TraceSpanEnabled(benchmark::State& state) {
  // Upper bound for the recording path (mutexed buffer append); the buffer
  // is cleared per iteration batch to keep memory flat.
  obs::set_enabled(true);
  for (auto _ : state) {
    STAC_TRACE_SPAN(span, "bench.span", "bench");
    span.arg("x", 1.0);
  }
  obs::set_enabled(false);
  obs::TraceBuffer::global().clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanEnabled);

void BM_GGkSimulationTraceDisabled(benchmark::State& state) {
  // Same body as BM_GGkSimulation with tracing explicitly forced off: the
  // delta between the two is the disabled-path overhead inside the
  // simulator's instrumented loop.
  obs::set_enabled(false);
  queueing::GGkConfig cfg;
  cfg.utilization = 0.9;
  cfg.timeout_rel = 1.0;
  cfg.effective_allocation = 0.5;
  cfg.allocation_ratio = 3.0;
  cfg.queries = 2000;
  cfg.warmup = 100;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    cfg.seed = ++seed;
    benchmark::DoNotOptimize(queueing::simulate_ggk(cfg));
  }
  state.SetItemsProcessed(state.iterations() * cfg.queries);
}
BENCHMARK(BM_GGkSimulationTraceDisabled);

}  // namespace

BENCHMARK_MAIN();

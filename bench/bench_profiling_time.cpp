// §5.1 "Profiling Time": model accuracy as a function of profiling budget.
// The paper's 30-minute budget yields ~100 profiles and 11% median error;
// 15 minutes gives 14%, 2.5 hours gives 8.6%.  We sweep the condition
// budget (each condition ≈ one 3-minute profiling run in the paper's terms)
// and report median APE, re-using one large test set.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"

using namespace stac;
using namespace stac::bench;
using core::EaModel;
using core::ProfileLibrary;
using core::RtPredictor;
using core::RtPredictorConfig;
using profiler::Profile;
using profiler::Profiler;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_banner(std::cout, "Profiling time vs model accuracy (§5.1)");

  Profiler profiler(bench_profiler_config());
  const Pairing pairing{wl::Benchmark::kKmeans, wl::Benchmark::kRedis};

  // Shared held-out test set.
  profiler::SamplerConfig sc;
  sc.seed = args.seed + 1000;
  profiler::StratifiedSampler test_sampler(profiler, sc);
  const auto test =
      test_sampler.collect_uniform(pairing.a, pairing.b, args.budget);
  std::cout << "test set: " << test.size() << " profiles\n";

  const std::vector<std::size_t> budgets =
      args.fast ? std::vector<std::size_t>{6, 12}
                : std::vector<std::size_t>{8, 16, 32, 64};

  Table table({"Budget (conditions)", "profiles", "profiling wall-clock",
               "Median APE", "p95 APE"});
  JsonObject record;
  Stopwatch total;
  for (std::size_t budget : budgets) {
    profiler::SamplerConfig train_sc;
    train_sc.seed = args.seed + 2;
    profiler::StratifiedSampler sampler(profiler, train_sc);
    const auto t0 = std::chrono::steady_clock::now();
    const auto train = sampler.collect(pairing.a, pairing.b, budget);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    EaModel model(bench_ea_config(args.seed + budget));
    Stopwatch fit_sw;
    model.fit(train);
    const double fit_s = fit_sw.seconds();
    ProfileLibrary library;
    library.add_all(std::vector<Profile>(train));
    RtPredictorConfig pcfg;
    pcfg.seed = args.seed + 3;
    RtPredictor predictor(profiler, &model, &library, pcfg);

    std::vector<double> apes;
    for (const auto& p : test) {
      const double predicted = predictor.predict_for_profile(p).mean_rt;
      apes.push_back(absolute_percent_error(predicted, p.mean_rt));
    }
    const ApeSummary s = summarize_apes(apes);
    table.add_row({std::to_string(budget), std::to_string(train.size()),
                   Table::num(wall, 1) + "s", Table::pct(s.median),
                   Table::pct(s.p95)});
    JsonObject bj;
    bj.set("profiles", train.size())
        .set("profiling_s", wall)
        .set("model_fit_s", fit_s)
        .set("median_ape", s.median)
        .set("p95_ape", s.p95);
    record.set("budget_" + std::to_string(budget), bj);
    std::cout << "budget " << budget << " done\n";
  }
  record.set("total_s", total.seconds());
  table.print(std::cout);
  table.write_csv(csv_path(argv[0]));
  write_bench_section(args.json_path, "bench_profiling_time", record);
  std::cout << "\nPaper reference: 15 min -> 14%, 30 min -> 11%, "
               "2.5 h -> 8.6% median error.\n";
  return 0;
}

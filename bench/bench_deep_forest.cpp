// Training-stack performance: the PR-2 hot-path overhaul measured end to
// end.  Four stages, each timed against its serial/legacy counterpart and
// recorded in the machine-readable BENCH_PR2.json:
//
//   tree_fit      presorted split search vs the per-node-sort baseline
//                 (single thread; target >= 1.5x on exhaustive splits)
//   cascade_fit   level-parallel deep-forest training vs a serial fit
//                 (target >= 3x with >= 4 cores; recorded with the core
//                 count so small machines are interpretable)
//   policy_sweep  grid-parallel G/G/k policy exploration vs serial
//   mgs_scan      multi-grain scanning fit + transform wall time
//
// Every parallel/serial and presort/legacy pair is also cross-checked for
// bit-identical predictions — speed that changes the model is a bug.
#include <cmath>
#include <iostream>
#include <limits>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "core/policy_explorer.hpp"
#include "ml/cascade.hpp"
#include "ml/decision_tree.hpp"
#include "ml/mgs.hpp"

using namespace stac;
using namespace stac::bench;

namespace {

ml::Dataset synthetic_dataset(std::size_t n, std::size_t features,
                              std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, features);
  std::vector<double> y(n);
  for (std::size_t r = 0; r < n; ++r) {
    auto row = x.row(r);
    for (auto& v : row) v = rng.uniform();
    y[r] = row[0] * row[1] + 0.5 * std::abs(row[2] - row[3]) +
           rng.normal(0.0, 0.05);
  }
  return ml::Dataset(std::move(x), std::move(y));
}

/// Best-of-`reps` wall time for one call.
template <typename Fn>
double timed_best(std::size_t reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.seconds());
  }
  return best;
}

bool same_predictions(const std::vector<double>& a,
                      const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;  // bitwise, not approximate
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_banner(std::cout, "Deep-forest training & policy-sweep performance");
  const std::size_t workers = ensure_bench_pool();
  std::cout << "thread pool: " << workers << " workers\n";

  JsonObject record;
  JsonObject meta;
  meta.set("hardware_threads",
           static_cast<std::size_t>(std::thread::hardware_concurrency()))
      .set("pool_workers", workers)
      .set("seed", static_cast<std::size_t>(args.seed))
      .set("fast", args.fast);
  record.set("meta", meta);
  Table table({"Stage", "baseline", "optimized", "speedup", "identical"});

  // ---- Stage 1: single-tree fit, presorted vs per-node sort ------------
  {
    const std::size_t n = args.fast ? 1200 : 4000;
    const ml::Dataset data = synthetic_dataset(n, 24, args.seed);
    const ml::Dataset probe = synthetic_dataset(256, 24, args.seed + 1);
    ml::TreeConfig tc;
    tc.split_mode = ml::SplitMode::kAllFeatures;
    tc.seed = args.seed;

    tc.presort = false;
    ml::DecisionTree legacy(tc);
    const double legacy_s =
        timed_best(args.fast ? 1 : 3, [&] { legacy.fit(data); });
    tc.presort = true;
    ml::DecisionTree presorted(tc);
    const double presorted_s =
        timed_best(args.fast ? 1 : 3, [&] { presorted.fit(data); });

    const bool identical = same_predictions(legacy.predict(probe.features()),
                                            presorted.predict(probe.features()));
    const double speedup = legacy_s / presorted_s;
    JsonObject s;
    s.set("rows", n)
        .set("features", std::size_t{24})
        .set("legacy_s", legacy_s)
        .set("presorted_s", presorted_s)
        .set("speedup", speedup)
        .set("identical_predictions", identical);
    record.set("tree_fit", s);
    table.add_row({"tree fit (presort)", Table::num(legacy_s, 3) + "s",
                   Table::num(presorted_s, 3) + "s", Table::num(speedup, 2),
                   identical ? "yes" : "NO"});
  }

  // ---- Stage 2: cascade fit, level-parallel vs serial ------------------
  {
    const std::size_t n = args.fast ? 250 : 600;
    const ml::Dataset data = synthetic_dataset(n, 6, args.seed + 2);
    ml::CascadeConfig cc;
    cc.levels = 2;
    cc.forests_per_level = 4;
    cc.estimators = args.fast ? 15 : 30;
    cc.final_forests = 2;
    cc.min_samples_leaf = 2;
    cc.seed = args.seed + 3;

    cc.parallel = false;
    ml::CascadeForest serial(cc);
    Stopwatch sw_serial;
    serial.fit(data);
    const double serial_s = sw_serial.seconds();

    cc.parallel = true;
    ml::CascadeForest parallel(cc);
    Stopwatch sw_parallel;
    parallel.fit(data);
    const double parallel_s = sw_parallel.seconds();

    std::vector<double> ps, ss;
    for (std::size_t r = 0; r < data.size(); ++r) {
      ss.push_back(serial.predict(data.row(r)));
      ps.push_back(parallel.predict(data.row(r)));
    }
    const bool identical = same_predictions(ss, ps);
    JsonObject s;
    s.set("rows", n)
        .set("workers", workers)
        .set("serial_s", serial_s)
        .set("parallel_s", parallel_s)
        .set("bit_identical", identical);
    // A 1-worker pool measures scheduling overhead, not parallelism — no
    // speedup claim in that case (the PR-2 record's 0.94x was exactly this).
    if (workers > 1) s.set("speedup", serial_s / parallel_s);
    record.set("cascade_fit", s);
    table.add_row({"cascade fit (parallel)", Table::num(serial_s, 3) + "s",
                   Table::num(parallel_s, 3) + "s",
                   workers > 1 ? Table::num(serial_s / parallel_s, 2)
                               : "n/a (1 worker)",
                   identical ? "yes" : "NO"});
  }

  // ---- Stage 3: policy sweep, grid-parallel vs serial ------------------
  {
    profiler::ProfilerConfig pc;
    pc.target_completions = args.fast ? 250 : 400;
    pc.warmup_completions = 40;
    profiler::Profiler profiler(pc);
    core::RtPredictorConfig rc;
    rc.analytic_ea = true;  // no trained model needed: isolates sweep cost
    rc.memoize = false;     // else the 2nd sweep replays the 1st from cache
    rc.sim_queries = args.fast ? 2000 : 4000;
    rc.seed = args.seed + 4;
    core::RtPredictor predictor(profiler, nullptr, nullptr, rc);
    profiler::RuntimeCondition cond;
    cond.primary = wl::Benchmark::kKmeans;
    cond.collocated = wl::Benchmark::kRedis;
    cond.util_primary = 0.9;
    cond.util_collocated = 0.9;
    cond.seed = args.seed + 5;

    core::ExplorerConfig ec;  // the paper's 5x5 = 25-setting grid
    ec.parallel = false;
    Stopwatch sw_serial;
    const core::PolicyExploration serial =
        core::explore_policies(predictor, cond, ec);
    const double serial_s = sw_serial.seconds();

    ec.parallel = true;
    Stopwatch sw_parallel;
    const core::PolicyExploration parallel =
        core::explore_policies(predictor, cond, ec);
    const double parallel_s = sw_parallel.seconds();

    const bool identical =
        serial.selection.timeout_primary == parallel.selection.timeout_primary &&
        serial.selection.timeout_collocated ==
            parallel.selection.timeout_collocated &&
        same_predictions(
            {serial.predicted_primary.data().begin(),
             serial.predicted_primary.data().end()},
            {parallel.predicted_primary.data().begin(),
             parallel.predicted_primary.data().end()});
    JsonObject s;
    s.set("grid_cells", ec.grid.size() * ec.grid.size())
        .set("workers", workers)
        .set("serial_s", serial_s)
        .set("parallel_s", parallel_s)
        .set("same_selection", identical);
    if (workers > 1) s.set("speedup", serial_s / parallel_s);
    record.set("policy_sweep", s);
    table.add_row({"policy sweep (25 cells)", Table::num(serial_s, 3) + "s",
                   Table::num(parallel_s, 3) + "s",
                   workers > 1 ? Table::num(serial_s / parallel_s, 2)
                               : "n/a (1 worker)",
                   identical ? "yes" : "NO"});
  }

  // ---- Stage 4: multi-grain scan wall time -----------------------------
  {
    const std::size_t images_n = args.fast ? 10 : 24;
    Rng rng(args.seed + 6);
    std::vector<Matrix> images(images_n, Matrix(30, 20));
    std::vector<double> targets(images_n);
    for (std::size_t i = 0; i < images_n; ++i) {
      for (auto& v : images[i].data()) v = rng.uniform();
      targets[i] = rng.uniform();
    }
    ml::MgsConfig mc;
    mc.window_sizes = {5, 10};
    mc.estimators = 10;
    mc.seed = args.seed + 7;
    ml::MultiGrainScanner scanner(mc);
    Stopwatch sw_fit;
    scanner.fit(images, targets);
    const double fit_s = sw_fit.seconds();
    Stopwatch sw_transform;
    for (const auto& im : images) (void)scanner.transform(im);
    const double transform_s = sw_transform.seconds();
    JsonObject s;
    s.set("images", images_n)
        .set("fit_s", fit_s)
        .set("transform_s", transform_s);
    record.set("mgs_scan", s);
    table.add_row({"MGS fit+transform", Table::num(fit_s, 3) + "s",
                   Table::num(transform_s, 3) + "s", "-", "-"});
  }

  table.print(std::cout);
  table.write_csv(csv_path(argv[0]));
  write_bench_section(args.json_path, "bench_deep_forest", record);
  return 0;
}

// §4: stratified vs uniform random sampling of experiment settings.  The
// paper reports stratified sampling cut profiling time by ~67% for the
// same coverage; here both strategies get the same budgets and the model
// trained on each is scored on one held-out test set.
#include <iostream>

#include "bench_util.hpp"

using namespace stac;
using namespace stac::bench;
using core::EaModel;
using core::ProfileLibrary;
using core::RtPredictor;
using core::RtPredictorConfig;
using profiler::Profile;
using profiler::Profiler;

namespace {

double median_ape(const Profiler& profiler, std::vector<Profile> train,
                  const std::vector<Profile>& test, std::uint64_t seed) {
  EaModel model(bench_ea_config(seed));
  model.fit(train);
  ProfileLibrary library;
  library.add_all(std::move(train));
  RtPredictorConfig pcfg;
  pcfg.seed = seed + 1;
  RtPredictor predictor(profiler, &model, &library, pcfg);
  std::vector<double> apes;
  for (const auto& p : test) {
    const double predicted = predictor.predict_for_profile(p).mean_rt;
    apes.push_back(absolute_percent_error(predicted, p.mean_rt));
  }
  return summarize_apes(apes).median;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_banner(std::cout, "Stratified vs uniform profiling (§4)");

  Profiler profiler(bench_profiler_config());
  const Pairing pairing{wl::Benchmark::kKmeans, wl::Benchmark::kRedis};

  profiler::SamplerConfig test_sc;
  test_sc.seed = args.seed + 5000;
  profiler::StratifiedSampler test_sampler(profiler, test_sc);
  const auto test =
      test_sampler.collect_uniform(pairing.a, pairing.b, args.budget);
  std::cout << "test set: " << test.size() << " profiles\n";

  const std::vector<std::size_t> budgets =
      args.fast ? std::vector<std::size_t>{8} : std::vector<std::size_t>{8, 16, 32};

  Table table({"Budget", "Uniform median APE", "Stratified median APE"});
  for (std::size_t budget : budgets) {
    profiler::SamplerConfig sc;
    sc.seed = args.seed + 7;
    profiler::StratifiedSampler sampler(profiler, sc);
    const auto uniform =
        sampler.collect_uniform(pairing.a, pairing.b, budget);
    const auto stratified = sampler.collect(pairing.a, pairing.b, budget);
    const double u =
        median_ape(profiler, uniform, test, args.seed + 11 + budget);
    const double s =
        median_ape(profiler, stratified, test, args.seed + 12 + budget);
    table.add_row({std::to_string(budget), Table::pct(u), Table::pct(s)});
    std::cout << "budget " << budget << " done\n";
  }
  table.print(std::cout);
  table.write_csv(csv_path(argv[0]));
  std::cout << "\nShape check: stratified sampling should match or beat "
               "uniform at equal budget\n(the paper frames the same result "
               "as a 67% profiling-time saving).\n";
  return 0;
}

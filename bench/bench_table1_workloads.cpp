// Table 1: the benchmark suite and its cache access patterns.
//
// Regenerates the paper's workload characterization by running each
// benchmark's synthetic address stream solo through the cache simulator at
// the baseline allocation (2 MB = 1 way on the default Xeon geometry,
// scaled 1/16 for wall-clock) and at the full LLC, reporting measured miss
// behaviour next to the qualitative Table-1 labels.
#include <iostream>

#include "bench_util.hpp"
#include "wl/measure.hpp"

using namespace stac;
using namespace stac::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_banner(std::cout, "Table 1 — Query execution workloads");

  // Scaled replica of the Xeon E5-2683 (way count preserved) so the full
  // sweep finishes in seconds; capacity *ratios* are what Table 1 reports.
  cachesim::HierarchyConfig hw = cachesim::presets::xeon_e5_2683();
  hw.llc.size_bytes /= 16;
  hw.l2.size_bytes /= 16;
  hw.l1d.size_bytes /= 16;
  hw.l1i.size_bytes /= 16;
  const double way_bytes = static_cast<double>(hw.llc_way_bytes());
  const std::size_t accesses = args.fast ? 40'000 : 150'000;

  Table table({"Wrk ID", "Description", "Cache Access Pattern",
               "LLC miss @2MB", "MPKI @2MB", "Data reuse", "Base svc time"});
  for (wl::Benchmark b : wl::all_benchmarks()) {
    // Scale the working sets with the hierarchy so capacity ratios hold.
    wl::WorkloadSpec spec = wl::benchmark_spec(b);
    for (auto& c : spec.profile.components) c.ws_bytes /= 16.0;
    spec.profile.code_bytes /= 16.0;
    spec.zipf_records /= 16;
    const wl::WorkloadModel model(spec, hw.llc.ways, way_bytes, 1);
    const wl::Characterization c = wl::characterize(
        model, hw, 1, accesses / 2, accesses, args.seed);
    std::string svc = Table::num(c.baseline_service_time *
                                     (c.baseline_service_time < 0.1 ? 1e3 : 1),
                                 c.baseline_service_time < 0.1 ? 1 : 1);
    svc += c.baseline_service_time < 0.1 ? " ms" : " s";
    table.add_row({std::string(wl::benchmark_id(b)), c.description,
                   c.cache_pattern, Table::pct(c.llc_miss_ratio),
                   Table::num(c.llc_mpki, 1), Table::pct(c.data_reuse), svc});
  }
  table.print(std::cout);
  table.write_csv(csv_path(argv[0]));

  std::cout << "\nShape check (Table 1 labels vs measured):\n"
               "  kmeans/knn lowest LLC miss ratios; redis/spstream highest;\n"
               "  jacobi/bfs in between (moderate).\n";
  return 0;
}

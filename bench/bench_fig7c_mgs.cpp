// Figure 7c: multi-grain scanning ablation — counter ordering (spatial
// locality), window sizes, counter sampling rate, and forest size.  Each
// row re-trains the EA model under one setting combination and reports the
// median response-time APE.
//
// Expected shape (paper): shuffling the counter order ~3x worse (5% -> 15%);
// 4x smaller windows ~2x worse; tiny forests degrade toward the queue-only
// model; 1-sample-per-5s costs ~2 points vs every-2s.
#include <iostream>

#include "bench_util.hpp"

using namespace stac;
using namespace stac::bench;
using core::EaModel;
using core::EaModelConfig;
using core::ProfileLibrary;
using core::RtPredictor;
using core::RtPredictorConfig;
using profiler::Profile;
using profiler::Profiler;

namespace {

struct Variant {
  std::string name;
  bool shuffled_rows = false;
  std::vector<std::size_t> windows{5, 10, 15};
  std::size_t estimators = 40;
  double sampling_rel = 2.0;  ///< samples per service time (≈ every 2 s)
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_banner(std::cout, "Figure 7c — multi-grain scanning ablation");

  const std::vector<Variant> variants{
      {"full (grouped, 5/10/15, 40 est, 0.5Hz-rel)", false, {5, 10, 15}, 40,
       2.0},
      {"shuffled counter order", true, {5, 10, 15}, 40, 2.0},
      {"small windows (5 only)", false, {5}, 40, 2.0},
      {"small forests (5 estimators)", false, {5, 10, 15}, 5, 2.0},
      {"slow sampling (1 per 5s-rel)", false, {5, 10, 15}, 40, 0.4},
  };

  const Pairing pairing{wl::Benchmark::kKmeans, wl::Benchmark::kRedis};
  Profiler profiler(bench_profiler_config());

  Table table({"MGS setting", "Median APE", "p95 APE", "train wall"});
  JsonObject record;
  Stopwatch total;
  for (std::size_t v = 0; v < variants.size(); ++v) {
    const Variant& var = variants[v];
    Stopwatch variant_sw;
    // Re-profile when the sampling rate changes (it alters the trace).
    profiler::SamplerConfig sc;
    sc.seed = args.seed;  // same conditions across variants
    profiler::StratifiedSampler sampler(profiler, sc);
    sc.ranges = profiler::ConditionRanges{};
    Rng rng(args.seed);
    std::vector<profiler::RuntimeCondition> conditions;
    for (std::size_t i = 0; i < 2 * args.budget; ++i) {
      auto c = random_condition(
          i % 2 == 0 ? pairing.a : pairing.b,
          i % 2 == 0 ? pairing.b : pairing.a, sc.ranges, rng);
      c.sampling_rel = var.sampling_rel;
      conditions.push_back(c);
    }
    const auto profiles = profiler.profile_conditions(conditions);

    std::vector<Profile> train, test;
    split_profiles(profiles, 0.5, args.seed + 90, train, test);

    EaModelConfig cfg = bench_ea_config(args.seed + 95 + v);
    cfg.deep_forest.mgs.window_sizes = var.windows;
    cfg.deep_forest.cascade.estimators = var.estimators;
    cfg.deep_forest.mgs.estimators =
        std::max<std::size_t>(3, var.estimators / 2);
    cfg.shuffle_counter_rows = var.shuffled_rows;
    EaModel model(cfg);
    Stopwatch fit_sw;
    model.fit(train);
    const double fit_s = fit_sw.seconds();

    ProfileLibrary library;
    library.add_all(std::move(train));
    RtPredictorConfig pcfg;
    pcfg.seed = args.seed + 96;
    RtPredictor predictor(profiler, &model, &library, pcfg);

    std::vector<double> apes;
    for (const auto& p : test) {
      const double predicted = predictor.predict_for_profile(p).mean_rt;
      apes.push_back(absolute_percent_error(predicted, p.mean_rt));
    }
    const ApeSummary s = summarize_apes(apes);
    table.add_row({var.name, Table::pct(s.median), Table::pct(s.p95),
                   Table::num(fit_s, 2) + "s"});
    JsonObject vj;
    vj.set("median_ape", s.median)
        .set("p95_ape", s.p95)
        .set("model_fit_s", fit_s)
        .set("variant_s", variant_sw.seconds());
    record.set("variant_" + std::to_string(v), vj);
    std::cout << "variant " << v + 1 << "/" << variants.size() << " done\n";
  }
  record.set("total_s", total.seconds());
  table.print(std::cout);
  table.write_csv(csv_path(argv[0]));
  write_bench_section(args.json_path, "bench_fig7c_mgs", record);
  return 0;
}

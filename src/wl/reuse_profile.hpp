// Reuse profiles: the cache-behaviour fingerprint of each benchmark.
//
// A profile is a mixture of working-set components plus streaming traffic;
// it is used in two consistent ways:
//   1. analytically, to derive the workload's miss-ratio curve (mrc.hpp);
//   2. generatively, to drive synthetic address streams through the cache
//      simulator (access_stream.hpp) so that counter traces and Table-1
//      characterization come from actual simulated cache behaviour.
#pragma once

#include <string>
#include <vector>

#include "wl/mrc.hpp"

namespace stac::wl {

struct ReuseProfile {
  /// Working-set components: `fraction` of accesses touch `ws_bytes`
  /// uniformly.  Fractions (plus streaming_fraction) must sum to 1.
  std::vector<MissRatioCurve::Component> components;
  /// Fraction of accesses that stream through memory (no reuse; compulsory
  /// misses regardless of allocation).
  double streaming_fraction = 0.0;
  /// Fraction of data accesses that are stores.
  double store_fraction = 0.3;
  /// Instruction-fetch accesses interleaved per data access (drives L1I).
  double ifetch_per_access = 0.25;
  /// Instruction-side working set (bytes).
  double code_bytes = 64 * 1024;

  /// Validation: fractions sane and components non-empty.
  [[nodiscard]] bool valid() const;

  /// The data-side miss-ratio curve of this profile on an LLC with
  /// `max_ways` ways of `way_bytes` each.  The streaming fraction becomes
  /// the capacity-insensitive floor.
  [[nodiscard]] MissRatioCurve mrc(std::size_t max_ways,
                                   double way_bytes) const;

  /// Total bytes the profile touches (largest component).
  [[nodiscard]] double footprint_bytes() const;
};

}  // namespace stac::wl

#include "wl/benchmark_suite.hpp"

#include "common/check.hpp"

namespace stac::wl {

namespace {
constexpr double kMB = 1024.0 * 1024.0;
}

std::string_view benchmark_id(Benchmark b) {
  switch (b) {
    case Benchmark::kJacobi: return "jacobi";
    case Benchmark::kKnn: return "knn";
    case Benchmark::kKmeans: return "kmeans";
    case Benchmark::kSpkmeans: return "spkmeans";
    case Benchmark::kSpstream: return "spstream";
    case Benchmark::kBfs: return "bfs";
    case Benchmark::kSocial: return "social";
    case Benchmark::kRedis: return "redis";
  }
  return "?";
}

std::optional<Benchmark> benchmark_from_id(std::string_view id) {
  for (Benchmark b : all_benchmarks())
    if (benchmark_id(b) == id) return b;
  return std::nullopt;
}

const std::vector<Benchmark>& all_benchmarks() {
  static const std::vector<Benchmark> all{
      Benchmark::kJacobi, Benchmark::kKnn,      Benchmark::kKmeans,
      Benchmark::kSpkmeans, Benchmark::kSpstream, Benchmark::kBfs,
      Benchmark::kSocial, Benchmark::kRedis};
  return all;
}

WorkloadSpec benchmark_spec(Benchmark b) {
  WorkloadSpec s;
  s.id = std::string(benchmark_id(b));
  switch (b) {
    case Benchmark::kJacobi:
      // Rodinia/OpenMP stencil: memory intensive, moderate cache misses.
      s.description = "Solves the Helmholtz equation (OpenMP stencil)";
      s.cache_pattern = "Memory intensive / moderate cache misses";
      s.profile.components = {{0.45, 5.0 * kMB}, {0.25, 16.0 * kMB}};
      s.profile.streaming_fraction = 0.30;
      s.profile.store_fraction = 0.45;
      s.base_service_time = 12.0;
      s.service_cv = 0.15;
      s.mem_fraction = 0.70;
      s.threads = 16;
      break;
    case Benchmark::kKnn:
      // High data reuse, low cache misses.
      s.description = "K-nearest neighbors (OpenMP)";
      s.cache_pattern = "High data reuse / low cache misses";
      s.profile.components = {{0.55, 1.0 * kMB}, {0.40, 4.5 * kMB}};
      s.profile.streaming_fraction = 0.05;
      s.profile.store_fraction = 0.15;
      s.base_service_time = 2.0;
      s.service_cv = 0.10;
      s.mem_fraction = 0.35;
      s.threads = 16;
      break;
    case Benchmark::kKmeans:
      s.description = "Cluster analysis in data mining (OpenMP)";
      s.cache_pattern = "High data reuse / low cache misses";
      s.profile.components = {{0.45, 1.2 * kMB}, {0.50, 5.0 * kMB}};
      s.profile.streaming_fraction = 0.05;
      s.profile.store_fraction = 0.20;
      s.base_service_time = 5.0;
      s.service_cv = 0.12;
      s.mem_fraction = 0.45;
      s.threads = 16;
      break;
    case Benchmark::kSpkmeans:
      // Spark tasks add serialization/shuffle traffic: higher misses.
      s.description = "Spark cluster analysis (k-means, 16 threads)";
      s.cache_pattern = "Higher cache misses b/c of tasks execution";
      s.profile.components = {{0.40, 4.0 * kMB}, {0.35, 20.0 * kMB}};
      s.profile.streaming_fraction = 0.25;
      s.profile.store_fraction = 0.35;
      s.base_service_time = 81.0;
      s.service_cv = 0.20;
      s.mem_fraction = 0.60;
      s.threads = 16;
      break;
    case Benchmark::kSpstream:
      // Windowed word count over a 10 MB/s network stream.
      s.description = "Spark extract words from stream (windowed count)";
      s.cache_pattern = "I/O intensive / high cache misses";
      s.profile.components = {{0.30, 5.0 * kMB}, {0.20, 24.0 * kMB}};
      s.profile.streaming_fraction = 0.50;
      s.profile.store_fraction = 0.40;
      s.base_service_time = 1.0;
      s.service_cv = 0.30;
      s.mem_fraction = 0.60;
      s.threads = 16;
      break;
    case Benchmark::kBfs:
      s.description = "Breadth-first search (OpenMP)";
      s.cache_pattern = "Limited data reuse / moderate cache misses";
      s.profile.components = {{0.35, 4.0 * kMB}, {0.30, 12.0 * kMB}};
      s.profile.streaming_fraction = 0.35;
      s.profile.store_fraction = 0.30;
      s.base_service_time = 3.0;
      s.service_cv = 0.25;
      s.mem_fraction = 0.60;
      s.threads = 16;
      break;
    case Benchmark::kSocial:
      // DeathStarBench-style social network: 36 microservices in 30
      // containers sharing one allocation policy.
      s.description =
          "Social network implemented with loosely-coupled microservices";
      s.cache_pattern = "Moderate data reuse / moderate cache misses";
      s.profile.components = {{0.45, 4.5 * kMB}, {0.35, 10.0 * kMB}};
      s.profile.streaming_fraction = 0.20;
      s.profile.store_fraction = 0.30;
      s.profile.code_bytes = 512 * 1024;  // 36 distinct service binaries
      s.profile.ifetch_per_access = 0.5;
      s.base_service_time = 7.5e-3;
      s.service_cv = 0.0;  // demand comes from the microservice graph
      s.mem_fraction = 0.55;
      s.threads = 36;
      s.containers = 30;
      s.use_microservice_graph = true;
      break;
    case Benchmark::kRedis:
      // YCSB session store: 200,000 x 1 KB records, Zipf popularity.
      s.description = "YCSB: session store recording recent actions";
      s.cache_pattern = "Low data reuse / high cache misses";
      s.profile.components = {{0.45, 5.0 * kMB}, {0.20, 48.0 * kMB}};
      s.profile.streaming_fraction = 0.35;
      s.profile.store_fraction = 0.50;
      s.base_service_time = 1.0e-3;
      s.service_cv = 0.30;
      s.mem_fraction = 0.75;
      s.threads = 2;
      s.stream_kind = StreamKind::kZipf;
      s.zipf_records = 200'000;
      s.zipf_record_bytes = 1024;
      s.zipf_alpha = 0.99;
      break;
  }
  STAC_ENSURE(s.profile.valid());
  return s;
}

WorkloadModel make_model(Benchmark b, std::size_t max_ways, double way_bytes,
                         std::uint32_t baseline_ways) {
  return WorkloadModel(benchmark_spec(b), max_ways, way_bytes, baseline_ways);
}

}  // namespace stac::wl

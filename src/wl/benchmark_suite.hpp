// The eight benchmarks of Table 1, with reuse profiles and service-time
// parameters chosen to match the paper's reported cache access patterns and
// baseline response times (Social 7.5 ms, Spkmeans 81 s, Spstream 1 s,
// Redis 1 ms; Rodinia times are representative).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "wl/workload.hpp"

namespace stac::wl {

enum class Benchmark : std::uint8_t {
  kJacobi,
  kKnn,
  kKmeans,
  kSpkmeans,
  kSpstream,
  kBfs,
  kSocial,
  kRedis,
};

inline constexpr std::size_t kBenchmarkCount = 8;

[[nodiscard]] std::string_view benchmark_id(Benchmark b);
[[nodiscard]] std::optional<Benchmark> benchmark_from_id(std::string_view id);
[[nodiscard]] const std::vector<Benchmark>& all_benchmarks();

/// The Table-1 spec for a benchmark.
[[nodiscard]] WorkloadSpec benchmark_spec(Benchmark b);

/// A calibrated model for the given LLC geometry.
[[nodiscard]] WorkloadModel make_model(Benchmark b, std::size_t max_ways,
                                       double way_bytes,
                                       std::uint32_t baseline_ways);

}  // namespace stac::wl

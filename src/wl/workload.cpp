#include "wl/workload.hpp"

#include <cmath>

#include "common/check.hpp"

namespace stac::wl {

WorkloadModel::WorkloadModel(WorkloadSpec spec, std::size_t max_ways,
                             double way_bytes, std::uint32_t baseline_ways)
    : spec_(std::move(spec)),
      mrc_(spec_.profile.mrc(max_ways, way_bytes)),
      baseline_ways_(baseline_ways) {
  STAC_REQUIRE(baseline_ways >= 1 && baseline_ways <= max_ways);
  STAC_REQUIRE(spec_.base_service_time > 0.0);
  STAC_REQUIRE(spec_.mem_fraction >= 0.0 && spec_.mem_fraction <= 1.0);

  const double m0 = mrc_.at(static_cast<double>(baseline_ways));
  if (m0 <= 1e-9 || spec_.mem_fraction <= 0.0) {
    // Cache-insensitive at baseline: everything is compute.
    cpu_time_ = spec_.base_service_time;
    mem_scale_ = 0.0;
  } else {
    cpu_time_ = (1.0 - spec_.mem_fraction) * spec_.base_service_time;
    mem_scale_ = spec_.mem_fraction * spec_.base_service_time / m0;
  }
  if (spec_.use_microservice_graph)
    graph_ = MicroserviceGraph::social_network();
}

double WorkloadModel::mean_service_time(double ways) const {
  return cpu_time_ + mem_scale_ * mrc_.at(ways);
}

double WorkloadModel::baseline_service_time() const {
  return mean_service_time(static_cast<double>(baseline_ways_));
}

double WorkloadModel::speedup(double ways) const {
  return baseline_service_time() / mean_service_time(ways);
}

double WorkloadModel::miss_rate(double ways) const {
  // Memory-stall seconds per second of execution, divided by the per-miss
  // penalty: misses / second.
  const double stall_frac =
      mem_scale_ * mrc_.at(ways) / mean_service_time(ways);
  return stall_frac / spec_.miss_penalty;
}

double WorkloadModel::sample_demand(Rng& rng) const {
  if (graph_) return graph_->sample_demand(rng);
  if (spec_.service_cv <= 0.0) return 1.0;
  return rng.lognormal_mean_cv(1.0, spec_.service_cv);
}

std::unique_ptr<cachesim::AccessStream> WorkloadModel::make_stream(
    std::uint16_t class_id, std::uint64_t seed) const {
  const std::uint64_t base =
      kClassAddressStride * (static_cast<std::uint64_t>(class_id) + 1);
  switch (spec_.stream_kind) {
    case StreamKind::kZipf:
      return std::make_unique<ZipfStream>(
          spec_.zipf_records, spec_.zipf_record_bytes, spec_.zipf_alpha,
          spec_.profile.store_fraction, base, seed);
    case StreamKind::kStrided:
      return std::make_unique<StridedStream>(
          static_cast<std::size_t>(spec_.profile.footprint_bytes()), 64,
          spec_.profile.store_fraction, base, seed);
    case StreamKind::kSynthetic:
      break;
  }
  return std::make_unique<SyntheticStream>(spec_.profile, base, seed);
}

}  // namespace stac::wl

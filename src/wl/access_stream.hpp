// Synthetic address streams that realize a ReuseProfile against the cache
// simulator.  Each workload class gets a disjoint address region (container
// address spaces do not alias), and within it: per-component uniform reuse
// regions, a streaming cursor, a code region for instruction fetches, and a
// Zipf variant for key-value stores.
#pragma once

#include <cstdint>

#include "cachesim/cache_hierarchy.hpp"
#include "common/rng.hpp"
#include "wl/reuse_profile.hpp"

namespace stac::wl {

/// Base-address spacing between workload classes (1 TB apart: never alias).
inline constexpr std::uint64_t kClassAddressStride = 1ULL << 40;

/// Uniform/streaming mixture stream realizing a ReuseProfile.
class SyntheticStream final : public cachesim::AccessStream {
 public:
  SyntheticStream(const ReuseProfile& profile, std::uint64_t base_address,
                  std::uint64_t seed);

  cachesim::MemoryAccess next() override;

 private:
  ReuseProfile profile_;
  std::uint64_t base_;
  Rng rng_;
  std::uint64_t stream_cursor_ = 0;
  double ifetch_credit_ = 0.0;
};

/// Zipf-popularity record stream (YCSB-style; the Redis workload).
class ZipfStream final : public cachesim::AccessStream {
 public:
  /// `records` of `record_bytes` each; popularity Zipf(alpha).
  ZipfStream(std::size_t records, std::size_t record_bytes, double alpha,
             double store_fraction, std::uint64_t base_address,
             std::uint64_t seed);

  cachesim::MemoryAccess next() override;

 private:
  ZipfSampler zipf_;
  std::size_t record_bytes_;
  double store_fraction_;
  std::uint64_t base_;
  Rng rng_;
};

/// Strided array sweep (stencil codes; the Jacobi workload): walks arrays
/// front to back repeatedly, giving distance-equal reuse.
class StridedStream final : public cachesim::AccessStream {
 public:
  StridedStream(std::size_t array_bytes, std::size_t stride_bytes,
                double store_fraction, std::uint64_t base_address,
                std::uint64_t seed);

  cachesim::MemoryAccess next() override;

 private:
  std::size_t array_bytes_;
  std::size_t stride_bytes_;
  double store_fraction_;
  std::uint64_t base_;
  std::uint64_t cursor_ = 0;
  Rng rng_;
};

}  // namespace stac::wl

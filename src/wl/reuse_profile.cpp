#include "wl/reuse_profile.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace stac::wl {

bool ReuseProfile::valid() const {
  if (components.empty() && streaming_fraction <= 0.0) return false;
  double total = streaming_fraction;
  for (const auto& c : components) {
    if (c.fraction < 0.0 || c.ws_bytes <= 0.0) return false;
    total += c.fraction;
  }
  if (std::abs(total - 1.0) > 1e-9) return false;
  if (store_fraction < 0.0 || store_fraction > 1.0) return false;
  if (ifetch_per_access < 0.0) return false;
  return true;
}

MissRatioCurve ReuseProfile::mrc(std::size_t max_ways,
                                 double way_bytes) const {
  STAC_REQUIRE_MSG(valid(), "invalid reuse profile");
  // Renormalize the reuse components to 1 and pass the streaming share as
  // the floor: from_working_sets() scales component misses into 1 - floor.
  std::vector<MissRatioCurve::Component> scaled;
  scaled.reserve(components.size());
  const double reuse_total = 1.0 - streaming_fraction;
  if (reuse_total <= 0.0) {
    // Pure streaming: flat curve at 1 except the mandatory [0]=1 anchor —
    // every way count misses at the floor (== 1 here, fully insensitive).
    std::vector<double> by_way(max_ways + 1, 1.0);
    return MissRatioCurve(std::move(by_way));
  }
  for (const auto& c : components)
    scaled.push_back({c.fraction / reuse_total, c.ws_bytes});
  return MissRatioCurve::from_working_sets(scaled, streaming_fraction,
                                           max_ways, way_bytes);
}

double ReuseProfile::footprint_bytes() const {
  double f = code_bytes;
  for (const auto& c : components) f = std::max(f, c.ws_bytes);
  return f;
}

}  // namespace stac::wl

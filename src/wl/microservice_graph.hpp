// The Social macro-benchmark's service topology: 36 microservices spread
// over 30 Docker containers (DeathStarBench-style social network).
//
// The graph matters to the model because end-to-end response time of a
// fan-out topology is a sum of per-layer *maxima* — far heavier-tailed than
// any single service — which is exactly the variability the paper says
// dynaSprint fails to capture (§5.2).  All 36 services share one short-term
// allocation policy (§5: "All microservices in Social shared one short-term
// cache allocation policy"), so the graph contributes the per-query demand
// distribution while cache behaviour is modeled at the workload level.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace stac::wl {

class MicroserviceGraph {
 public:
  struct Service {
    std::string name;
    std::size_t layer = 0;
    std::size_t container = 0;
    double mean_time = 0.0;  ///< exponential mean, as a fraction of total
  };

  /// Build the social-network graph: `layers` sequential stages with the
  /// given fan-out widths; service means are split so the *expected*
  /// critical path is 1.0 (callers scale by the workload's service time).
  static MicroserviceGraph social_network();

  [[nodiscard]] std::size_t service_count() const { return services_.size(); }
  [[nodiscard]] std::size_t container_count() const { return containers_; }
  [[nodiscard]] std::size_t layer_count() const { return layer_widths_.size(); }
  [[nodiscard]] const std::vector<Service>& services() const {
    return services_;
  }

  /// Sample a normalized end-to-end demand (mean ~1.0): per layer, the max
  /// of the branch times; layers sum.  With probability `retry_probability`
  /// a layer is re-executed (timeout/retry between microservices), giving
  /// the heavy tail that distinguishes the macro-benchmark from simple
  /// per-query log-normal demand.
  [[nodiscard]] double sample_demand(Rng& rng) const;

  /// Per-layer retry probability (DeathStarBench-style RPC retries).
  static constexpr double kRetryProbability = 0.06;

  /// Analytic expectation of sample_demand (used to normalize to mean 1).
  [[nodiscard]] double expected_demand() const;

 private:
  MicroserviceGraph(std::vector<Service> services,
                    std::vector<std::size_t> layer_widths,
                    std::size_t containers);

  std::vector<Service> services_;
  std::vector<std::size_t> layer_widths_;
  std::size_t containers_;
  double normalizer_ = 1.0;
};

}  // namespace stac::wl

#include "wl/mrc.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace stac::wl {

MissRatioCurve::MissRatioCurve(std::vector<double> by_way)
    : by_way_(std::move(by_way)) {
  STAC_REQUIRE_MSG(by_way_.size() >= 2, "need at least 0-way and 1-way points");
  STAC_REQUIRE_MSG(std::abs(by_way_[0] - 1.0) < 1e-12,
                   "miss ratio at zero ways must be 1");
  for (std::size_t w = 0; w < by_way_.size(); ++w) {
    STAC_REQUIRE_MSG(by_way_[w] >= 0.0 && by_way_[w] <= 1.0,
                     "miss ratio out of [0,1] at way " << w);
    if (w > 0)
      STAC_REQUIRE_MSG(by_way_[w] <= by_way_[w - 1] + 1e-12,
                       "miss ratio must be non-increasing at way " << w);
  }
}

double MissRatioCurve::at(double ways) const {
  if (ways <= 0.0) return by_way_.front();
  const auto maxw = static_cast<double>(max_ways());
  if (ways >= maxw) return by_way_.back();
  const auto lo = static_cast<std::size_t>(ways);
  const double frac = ways - static_cast<double>(lo);
  return by_way_[lo] * (1.0 - frac) + by_way_[lo + 1] * frac;
}

double MissRatioCurve::marginal_gain(std::size_t w) const {
  if (w + 1 >= by_way_.size()) return 0.0;
  return by_way_[w] - by_way_[w + 1];
}

MissRatioCurve MissRatioCurve::from_working_sets(
    std::span<const Component> components, double floor, std::size_t max_ways,
    double way_bytes) {
  STAC_REQUIRE(max_ways >= 1);
  STAC_REQUIRE(way_bytes > 0.0);
  STAC_REQUIRE(floor >= 0.0 && floor < 1.0);
  double total_frac = 0.0;
  for (const auto& c : components) {
    STAC_REQUIRE(c.fraction >= 0.0 && c.ws_bytes > 0.0);
    total_frac += c.fraction;
  }
  STAC_REQUIRE_MSG(std::abs(total_frac - 1.0) < 1e-9,
                   "component fractions must sum to 1");
  std::vector<double> by_way(max_ways + 1);
  by_way[0] = 1.0;
  for (std::size_t w = 1; w <= max_ways; ++w) {
    const double capacity = way_bytes * static_cast<double>(w);
    double miss = 0.0;
    for (const auto& c : components) {
      const double hit = std::min(1.0, capacity / c.ws_bytes);
      miss += c.fraction * (1.0 - hit);
    }
    // The floor is compulsory traffic: scale capacity-sensitive misses into
    // the remaining headroom so by_way stays within [floor, 1].
    by_way[w] = floor + (1.0 - floor) * miss;
  }
  return MissRatioCurve(std::move(by_way));
}

MissRatioCurve MissRatioCurve::exponential(double floor, double scale,
                                           std::size_t max_ways) {
  STAC_REQUIRE(scale > 0.0);
  std::vector<double> by_way(max_ways + 1);
  for (std::size_t w = 0; w <= max_ways; ++w)
    by_way[w] =
        floor + (1.0 - floor) * std::exp(-static_cast<double>(w) / scale);
  by_way[0] = 1.0;
  return MissRatioCurve(std::move(by_way));
}

}  // namespace stac::wl

#include "wl/measure.hpp"

#include "cat/allocation.hpp"
#include "common/check.hpp"

namespace stac::wl {

using cachesim::CacheHierarchy;
using cachesim::Counter;
using cachesim::CounterSnapshot;

MeasuredPoint measure_at_ways(const WorkloadModel& model,
                              const cachesim::HierarchyConfig& config,
                              std::uint32_t ways, std::size_t warmup,
                              std::size_t accesses, std::uint64_t seed) {
  STAC_REQUIRE(ways >= 1 && ways <= config.llc.ways);
  STAC_REQUIRE(accesses > 0);
  CacheHierarchy hw(config, 1);
  hw.set_llc_fill_mask(0, cat::Allocation{0, ways}.mask());
  auto stream = model.make_stream(0, seed);

  for (std::size_t i = 0; i < warmup; ++i) {
    hw.access(0, stream->next());
    hw.retire_instructions(0, 4);
  }
  const CounterSnapshot before = hw.counters(0);
  for (std::size_t i = 0; i < accesses; ++i) {
    hw.access(0, stream->next());
    hw.retire_instructions(0, 4);
  }
  const CounterSnapshot delta = hw.counters(0).delta_since(before);

  MeasuredPoint p;
  p.ways = ways;
  p.llc_miss_ratio = delta.llc_miss_ratio();
  p.l2_miss_ratio = delta.l2_miss_ratio();
  p.llc_mpki = delta.llc_mpki();
  return p;
}

std::vector<MeasuredPoint> measure_mrc(
    const WorkloadModel& model, const cachesim::HierarchyConfig& config,
    const std::vector<std::uint32_t>& ways_list, std::size_t warmup,
    std::size_t accesses, std::uint64_t seed) {
  std::vector<MeasuredPoint> out;
  out.reserve(ways_list.size());
  for (std::uint32_t w : ways_list)
    out.push_back(measure_at_ways(model, config, w, warmup, accesses, seed));
  return out;
}

Characterization characterize(const WorkloadModel& model,
                              const cachesim::HierarchyConfig& config,
                              std::uint32_t baseline_ways, std::size_t warmup,
                              std::size_t accesses, std::uint64_t seed) {
  Characterization c;
  c.id = model.spec().id;
  c.description = model.spec().description;
  c.cache_pattern = model.spec().cache_pattern;
  c.baseline_service_time = model.baseline_service_time();

  const MeasuredPoint base =
      measure_at_ways(model, config, baseline_ways, warmup, accesses, seed);
  c.llc_miss_ratio = base.llc_miss_ratio;
  c.llc_mpki = base.llc_mpki;

  const MeasuredPoint full = measure_at_ways(
      model, config, static_cast<std::uint32_t>(config.llc.ways), warmup,
      accesses, seed + 1);
  c.data_reuse = 1.0 - full.llc_miss_ratio;
  return c;
}

}  // namespace stac::wl

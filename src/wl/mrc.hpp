// Miss-ratio curves: LLC miss ratio as a function of allocated capacity.
//
// The testbed's service-time response to cache allocation flows entirely
// through these curves, so they are the knob that makes each synthetic
// benchmark reproduce its Table-1 cache behaviour.  Curves are stored at
// integer way granularity (CAT allocates whole ways) with linear
// interpolation for the fractional effective ways produced by the
// shared-region occupancy model.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace stac::wl {

class MissRatioCurve {
 public:
  /// `by_way[w]` = miss ratio with w ways allocated; by_way[0] must be 1.0
  /// (no cache, everything misses) and the curve must be non-increasing.
  explicit MissRatioCurve(std::vector<double> by_way);

  [[nodiscard]] std::size_t max_ways() const { return by_way_.size() - 1; }

  /// Miss ratio at a (possibly fractional) way count; clamps to the range.
  [[nodiscard]] double at(double ways) const;

  /// Marginal utility of one more way at w (dCat-style utility signal).
  [[nodiscard]] double marginal_gain(std::size_t w) const;

  [[nodiscard]] std::span<const double> values() const { return by_way_; }

  /// Build from a mixture of uniform working sets: each component touches
  /// `ws_bytes` uniformly with probability `fraction`; LRU hit ratio per
  /// component approximated as min(1, capacity / ws_bytes).  `floor` is the
  /// compulsory/streaming miss floor that no capacity removes.
  struct Component {
    double fraction;
    double ws_bytes;
  };
  [[nodiscard]] static MissRatioCurve from_working_sets(
      std::span<const Component> components, double floor,
      std::size_t max_ways, double way_bytes);

  /// Analytic exponential decay: floor + (1 - floor) * exp(-ways / scale).
  [[nodiscard]] static MissRatioCurve exponential(double floor, double scale,
                                                  std::size_t max_ways);

 private:
  std::vector<double> by_way_;
};

}  // namespace stac::wl

#include "wl/access_stream.hpp"

#include "common/check.hpp"

namespace stac::wl {

using cachesim::AccessType;
using cachesim::MemoryAccess;

SyntheticStream::SyntheticStream(const ReuseProfile& profile,
                                 std::uint64_t base_address,
                                 std::uint64_t seed)
    : profile_(profile), base_(base_address), rng_(seed) {
  STAC_REQUIRE_MSG(profile.valid(), "invalid reuse profile");
}

MemoryAccess SyntheticStream::next() {
  // Interleave instruction fetches at `ifetch_per_access` fetches per DATA
  // access: credit accrues only when a data access is emitted.
  if (ifetch_credit_ >= 1.0) {
    ifetch_credit_ -= 1.0;
    const auto code_lines =
        static_cast<std::uint64_t>(profile_.code_bytes / 64.0);
    const std::uint64_t line = rng_.uniform_index(std::max<std::uint64_t>(
        code_lines, 1));
    // Code region sits at the top of the workload's address range.
    return {base_ + (kClassAddressStride / 2) + line * 64,
            AccessType::kIfetch};
  }
  ifetch_credit_ += profile_.ifetch_per_access;

  const bool is_store = rng_.bernoulli(profile_.store_fraction);
  const AccessType type = is_store ? AccessType::kStore : AccessType::kLoad;

  double pick = rng_.uniform();
  // Streaming share: advance a cursor that never revisits within any
  // realistic window (wraps at 1/4 of the class stride).
  if (pick < profile_.streaming_fraction) {
    const std::uint64_t addr =
        base_ + (kClassAddressStride / 4) +
        (stream_cursor_ % (kClassAddressStride / 4));
    stream_cursor_ += 64;
    return {addr, type};
  }
  pick -= profile_.streaming_fraction;

  // Reuse components: regions laid out back to back from base_.
  std::uint64_t region_start = base_;
  for (const auto& c : profile_.components) {
    if (pick < c.fraction) {
      const auto lines = std::max<std::uint64_t>(
          static_cast<std::uint64_t>(c.ws_bytes / 64.0), 1);
      const std::uint64_t line = rng_.uniform_index(lines);
      return {region_start + line * 64, type};
    }
    pick -= c.fraction;
    region_start += static_cast<std::uint64_t>(c.ws_bytes) + 4096;
  }
  // Rounding tail: fall back to the last component (or streaming).
  if (!profile_.components.empty()) {
    const auto& c = profile_.components.back();
    const auto lines = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(c.ws_bytes / 64.0), 1);
    return {region_start - static_cast<std::uint64_t>(c.ws_bytes) - 4096 +
                rng_.uniform_index(lines) * 64,
            type};
  }
  const std::uint64_t addr =
      base_ + (kClassAddressStride / 4) + (stream_cursor_ % (kClassAddressStride / 4));
  stream_cursor_ += 64;
  return {addr, type};
}

ZipfStream::ZipfStream(std::size_t records, std::size_t record_bytes,
                       double alpha, double store_fraction,
                       std::uint64_t base_address, std::uint64_t seed)
    : zipf_(records, alpha), record_bytes_(record_bytes),
      store_fraction_(store_fraction), base_(base_address), rng_(seed) {
  STAC_REQUIRE(record_bytes >= 1);
}

MemoryAccess ZipfStream::next() {
  const std::size_t record = zipf_(rng_);
  // Touch a random line within the record (records span multiple lines).
  const std::size_t lines_per_record = (record_bytes_ + 63) / 64;
  const std::uint64_t line_in_record = rng_.uniform_index(lines_per_record);
  const std::uint64_t addr = base_ +
                             static_cast<std::uint64_t>(record) * record_bytes_ +
                             line_in_record * 64;
  const bool is_store = rng_.bernoulli(store_fraction_);
  return {addr, is_store ? AccessType::kStore : AccessType::kLoad};
}

StridedStream::StridedStream(std::size_t array_bytes, std::size_t stride_bytes,
                             double store_fraction,
                             std::uint64_t base_address, std::uint64_t seed)
    : array_bytes_(array_bytes), stride_bytes_(stride_bytes),
      store_fraction_(store_fraction), base_(base_address), rng_(seed) {
  STAC_REQUIRE(array_bytes >= stride_bytes && stride_bytes >= 1);
}

MemoryAccess StridedStream::next() {
  const std::uint64_t addr = base_ + cursor_;
  cursor_ += stride_bytes_;
  if (cursor_ >= array_bytes_) cursor_ = 0;
  const bool is_store = rng_.bernoulli(store_fraction_);
  return {addr, is_store ? AccessType::kStore : AccessType::kLoad};
}

}  // namespace stac::wl

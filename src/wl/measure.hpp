// Measurement helpers that run workload address streams through the cache
// simulator: miss-ratio curves measured against the "hardware" (validating
// the analytic curves the testbed uses), and the Table-1 characterization.
#pragma once

#include <string>
#include <vector>

#include "cachesim/cache_hierarchy.hpp"
#include "wl/benchmark_suite.hpp"

namespace stac::wl {

struct MeasuredPoint {
  std::uint32_t ways = 0;
  double llc_miss_ratio = 0.0;
  double l2_miss_ratio = 0.0;
  double llc_mpki = 0.0;
};

/// Run `accesses` references of the workload solo on the hierarchy with a
/// contiguous allocation of `ways` ways, after a warmup of `warmup`
/// references, and report steady-state miss behaviour.
[[nodiscard]] MeasuredPoint measure_at_ways(
    const WorkloadModel& model, const cachesim::HierarchyConfig& config,
    std::uint32_t ways, std::size_t warmup, std::size_t accesses,
    std::uint64_t seed);

/// Measured MRC across a list of way counts.
[[nodiscard]] std::vector<MeasuredPoint> measure_mrc(
    const WorkloadModel& model, const cachesim::HierarchyConfig& config,
    const std::vector<std::uint32_t>& ways_list, std::size_t warmup,
    std::size_t accesses, std::uint64_t seed);

/// One Table-1 row: measured cache behaviour at the baseline allocation.
struct Characterization {
  std::string id;
  std::string description;
  std::string cache_pattern;
  double llc_miss_ratio = 0.0;   ///< at baseline ways
  double data_reuse = 0.0;       ///< 1 - LLC miss ratio at full cache
  double llc_mpki = 0.0;
  double baseline_service_time = 0.0;
};

[[nodiscard]] Characterization characterize(
    const WorkloadModel& model, const cachesim::HierarchyConfig& config,
    std::uint32_t baseline_ways, std::size_t warmup, std::size_t accesses,
    std::uint64_t seed);

}  // namespace stac::wl

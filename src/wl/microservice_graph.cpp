#include "wl/microservice_graph.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace stac::wl {

namespace {
/// E[max of n iid Exp(1)] = H_n (harmonic number).
double harmonic(std::size_t n) {
  double h = 0.0;
  for (std::size_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}
}  // namespace

MicroserviceGraph::MicroserviceGraph(std::vector<Service> services,
                                     std::vector<std::size_t> layer_widths,
                                     std::size_t containers)
    : services_(std::move(services)), layer_widths_(std::move(layer_widths)),
      containers_(containers) {
  normalizer_ = 1.0;
  const double mean = expected_demand();
  STAC_REQUIRE(mean > 0.0);
  normalizer_ = mean;
}

MicroserviceGraph MicroserviceGraph::social_network() {
  // 6 stages modeled on a compose-post flow: front-end nginx, compose
  // orchestration, a wide fan-out to user/media/text/url/mention services,
  // storage, timeline update, response assembly.  Widths sum to 36.
  const std::vector<std::size_t> widths{1, 4, 12, 10, 6, 3};
  const std::vector<std::string> stage_names{
      "nginx", "compose", "enrich", "storage", "timeline", "assemble"};
  // Per-stage share of the expected critical path.
  const std::vector<double> stage_share{0.08, 0.17, 0.30, 0.20, 0.15, 0.10};

  std::vector<Service> services;
  std::size_t container = 0;
  for (std::size_t layer = 0; layer < widths.size(); ++layer) {
    const std::size_t width = widths[layer];
    // E[max of width Exp(mu)] = mu * H_width; choose mu so the stage's
    // expected critical-path contribution equals its share.
    const double mu = stage_share[layer] / harmonic(width);
    for (std::size_t b = 0; b < width; ++b) {
      std::ostringstream name;
      name << stage_names[layer] << '-' << b;
      services.push_back(Service{name.str(), layer, container, mu});
      // 30 containers for 36 services: the last 6 services double up.
      if (container + 1 < 30) ++container;
    }
  }
  STAC_ENSURE(services.size() == 36);
  return MicroserviceGraph(std::move(services), widths, 30);
}

double MicroserviceGraph::sample_demand(Rng& rng) const {
  double total = 0.0;
  std::size_t idx = 0;
  for (std::size_t layer = 0; layer < layer_widths_.size(); ++layer) {
    double layer_max = 0.0;
    for (std::size_t b = 0; b < layer_widths_[layer]; ++b) {
      const Service& svc = services_[idx++];
      layer_max = std::max(layer_max, rng.exponential(1.0 / svc.mean_time));
    }
    total += layer_max;
    // RPC retry: the slowest branch timed out and the layer re-executes.
    if (rng.bernoulli(kRetryProbability)) total += 2.0 * layer_max;
  }
  return total / normalizer_;
}

double MicroserviceGraph::expected_demand() const {
  double total = 0.0;
  std::size_t idx = 0;
  for (std::size_t layer = 0; layer < layer_widths_.size(); ++layer) {
    const std::size_t width = layer_widths_[layer];
    // All services in a layer share one mean by construction.
    const double mu = services_[idx].mean_time;
    idx += width;
    total += mu * harmonic(width) * (1.0 + 2.0 * kRetryProbability);
  }
  return total / normalizer_;
}

}  // namespace stac::wl

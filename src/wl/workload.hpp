// Workload models: the bridge between cache allocation and service time.
//
// Each Table-1 benchmark is described by a WorkloadSpec (reuse profile,
// baseline service time, memory-boundedness, topology) and realized as a
// WorkloadModel calibrated against a concrete LLC geometry:
//
//   mean_service_time(ways) = cpu_time + mem_scale * miss_ratio(ways)
//
// with cpu_time and mem_scale chosen so that the model reproduces the
// spec's baseline service time at the baseline allocation and splits it
// into compute vs. memory-stall shares per `mem_fraction`.  Per-query
// demand multiplies this mean (log-normal, or the microservice graph's
// fan-out distribution for Social).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "cachesim/cache_hierarchy.hpp"
#include "common/rng.hpp"
#include "wl/access_stream.hpp"
#include "wl/microservice_graph.hpp"
#include "wl/reuse_profile.hpp"

namespace stac::wl {

enum class StreamKind : std::uint8_t { kSynthetic, kZipf, kStrided };

struct WorkloadSpec {
  std::string id;           ///< short name, e.g. "jacobi"
  std::string description;  ///< Table 1 description
  std::string cache_pattern;  ///< Table 1 "Cache Access Pattern" text

  ReuseProfile profile;
  /// Average query service time at the baseline allocation, seconds.
  double base_service_time = 1.0;
  /// Coefficient of variation of per-query demand (ignored for Social,
  /// which samples demand from the microservice graph).
  double service_cv = 0.2;
  /// Fraction of baseline service time spent in memory stalls; governs how
  /// strongly cache allocation moves service time.
  double mem_fraction = 0.5;
  /// Average memory-stall cost per LLC miss, seconds (drives fill rates).
  double miss_penalty = 100e-9;

  std::size_t threads = 16;
  std::size_t containers = 1;
  bool use_microservice_graph = false;

  StreamKind stream_kind = StreamKind::kSynthetic;
  std::size_t zipf_records = 200'000;
  std::size_t zipf_record_bytes = 1024;
  double zipf_alpha = 0.99;
};

class WorkloadModel {
 public:
  /// Calibrates the spec against an LLC of `max_ways` ways of `way_bytes`
  /// bytes, anchored at `baseline_ways` (the workload's private allocation).
  WorkloadModel(WorkloadSpec spec, std::size_t max_ways, double way_bytes,
                std::uint32_t baseline_ways);

  [[nodiscard]] const WorkloadSpec& spec() const { return spec_; }
  [[nodiscard]] const MissRatioCurve& mrc() const { return mrc_; }
  [[nodiscard]] std::uint32_t baseline_ways() const { return baseline_ways_; }

  /// Mean query service time with `ways` effective LLC ways.
  [[nodiscard]] double mean_service_time(double ways) const;
  /// == spec().base_service_time (calibration postcondition).
  [[nodiscard]] double baseline_service_time() const;
  /// T(baseline_ways) / T(ways): > 1 when `ways` beats the baseline.
  [[nodiscard]] double speedup(double ways) const;
  [[nodiscard]] double miss_ratio(double ways) const { return mrc_.at(ways); }

  /// LLC misses per second while executing with `ways` effective ways —
  /// the fill pressure this workload exerts on shared cache ways.
  [[nodiscard]] double miss_rate(double ways) const;

  /// Multiplicative per-query demand, mean 1.0.
  [[nodiscard]] double sample_demand(Rng& rng) const;

  /// Address stream for cachesim profiling, namespaced by class id.
  [[nodiscard]] std::unique_ptr<cachesim::AccessStream> make_stream(
      std::uint16_t class_id, std::uint64_t seed) const;

 private:
  WorkloadSpec spec_;
  MissRatioCurve mrc_;
  std::uint32_t baseline_ways_;
  double cpu_time_ = 0.0;
  double mem_scale_ = 0.0;
  std::optional<MicroserviceGraph> graph_;
};

}  // namespace stac::wl

#include "ml/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace stac::ml {

double squared_distance(std::span<const double> a, std::span<const double> b) {
  STAC_REQUIRE(a.size() == b.size());
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

KMeansResult kmeans(const Matrix& points, KMeansConfig config) {
  STAC_REQUIRE(points.rows() >= 1);
  STAC_REQUIRE(config.k >= 1);
  const std::size_t n = points.rows();
  const std::size_t f = points.cols();
  const std::size_t k = std::min(config.k, n);
  Rng rng(config.seed);

  // k-means++ seeding.
  Matrix centroids(k, f);
  std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());
  {
    const auto first = static_cast<std::size_t>(rng.uniform_index(n));
    std::copy(points.row(first).begin(), points.row(first).end(),
              centroids.row(0).begin());
    for (std::size_t c = 1; c < k; ++c) {
      double total = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        min_d2[i] = std::min(min_d2[i],
                             squared_distance(points.row(i),
                                              centroids.row(c - 1)));
        total += min_d2[i];
      }
      std::size_t chosen = n - 1;
      if (total > 0.0) {
        const double target = rng.uniform() * total;
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          acc += min_d2[i];
          if (acc >= target) {
            chosen = i;
            break;
          }
        }
      } else {
        chosen = static_cast<std::size_t>(rng.uniform_index(n));
      }
      std::copy(points.row(chosen).begin(), points.row(chosen).end(),
                centroids.row(c).begin());
    }
  }

  KMeansResult result;
  result.assignment.assign(n, 0);
  double prev_inertia = std::numeric_limits<double>::infinity();

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    // Assign.
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = squared_distance(points.row(i), centroids.row(c));
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.assignment[i] = best_c;
      inertia += best;
    }
    result.inertia = inertia;
    result.iterations = iter + 1;

    // Update.
    Matrix sums(k, f);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = result.assignment[i];
      auto dst = sums.row(c);
      const auto src = points.row(i);
      for (std::size_t j = 0; j < f; ++j) dst[j] += src[j];
      ++counts[c];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        const auto pick = static_cast<std::size_t>(rng.uniform_index(n));
        std::copy(points.row(pick).begin(), points.row(pick).end(),
                  centroids.row(c).begin());
        continue;
      }
      auto dst = centroids.row(c);
      const auto src = sums.row(c);
      for (std::size_t j = 0; j < f; ++j)
        dst[j] = src[j] / static_cast<double>(counts[c]);
    }

    if (prev_inertia - inertia <= config.tolerance * prev_inertia) break;
    prev_inertia = inertia;
  }
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace stac::ml

#include "ml/flat_forest.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace stac::ml {

void FlatForest::clear() {
  feature_.clear();
  threshold_.clear();
  left_.clear();
  right_.clear();
  value_.clear();
  roots_.clear();
}

void FlatForest::compile(std::span<const DecisionTree> trees) {
  clear();
  std::size_t total = 0;
  for (const auto& t : trees) {
    STAC_REQUIRE_MSG(t.trained(), "FlatForest::compile on an untrained tree");
    total += t.node_count();
  }
  feature_.reserve(total);
  threshold_.reserve(total);
  left_.reserve(total);
  right_.reserve(total);
  value_.reserve(total);
  roots_.reserve(trees.size());
  for (const auto& t : trees) {
    const auto base = static_cast<std::int32_t>(value_.size());
    roots_.push_back(static_cast<std::uint32_t>(base));
    for (const DecisionTree::Node& nd : t.nodes()) {
      feature_.push_back(nd.feature);
      threshold_.push_back(nd.threshold);
      left_.push_back(nd.left < 0 ? -1 : nd.left + base);
      right_.push_back(nd.right < 0 ? -1 : nd.right + base);
      value_.push_back(nd.value);
    }
  }
}

double FlatForest::predict(std::span<const double> x) const {
  STAC_REQUIRE_MSG(compiled(), "predict before compile");
  double sum = 0.0;
  for (const std::uint32_t root : roots_) {
    std::uint32_t node = root;
    for (;;) {
      const std::int32_t l = left_[node];
      if (l < 0) {
        sum += value_[node];
        break;
      }
      node = static_cast<std::uint32_t>(
          x[feature_[node]] <= threshold_[node] ? l : right_[node]);
    }
  }
  return sum / static_cast<double>(roots_.size());
}

void FlatForest::predict_batch(const Matrix& x, std::span<double> out) const {
  STAC_REQUIRE_MSG(compiled(), "predict_batch before compile");
  STAC_REQUIRE(out.size() == x.rows());
  const std::size_t n = x.rows();
  std::fill(out.begin(), out.end(), 0.0);
  std::vector<std::uint32_t> cur(n);
  for (const std::uint32_t root : roots_) {
    std::fill(cur.begin(), cur.end(), root);
    // Level-major: every sweep advances each still-walking row one level.
    for (bool walking = n > 0; walking;) {
      walking = false;
      for (std::size_t r = 0; r < n; ++r) {
        const std::uint32_t c = cur[r];
        const std::int32_t l = left_[c];
        if (l < 0) continue;
        const auto row = x.row(r);
        cur[r] = static_cast<std::uint32_t>(
            row[feature_[c]] <= threshold_[c] ? l : right_[c]);
        walking = true;
      }
    }
    // Accumulate in tree order per row: same FP addition order as the
    // per-row pointer walk, which is what makes the batch bitwise-equal.
    for (std::size_t r = 0; r < n; ++r) out[r] += value_[cur[r]];
  }
  const auto trees = static_cast<double>(roots_.size());
  for (auto& v : out) v /= trees;
}

}  // namespace stac::ml

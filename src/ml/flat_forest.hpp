// Flattened SoA forest inference.
//
// A trained forest's trees are pointer-chased one node at a time through
// per-tree `std::vector<Node>` arrays (24 bytes of payload scattered over a
// 40-byte AoS node).  For the serving hot path we compile the whole bank
// into one contiguous arena of parallel arrays — {feature, threshold, left,
// right, value} — so a walk touches four tightly packed streams, and batch
// prediction advances every sample through a tree in lockstep (level-major:
// one pass over the batch per tree depth level) instead of finishing one
// sample's walk before starting the next.
//
// Identity contract, same as every prior fast path (DESIGN.md §8): the
// flat walk routes with the identical `x[feature] <= threshold` comparison
// on the identical fitted nodes and accumulates tree outputs in the
// identical order, so predictions are bitwise-equal to the pointer walk.
// RandomForest gates it behind ForestConfig::flatten with the AoS walk as
// the always-available fallback.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/decision_tree.hpp"

namespace stac::ml {

class FlatForest {
 public:
  FlatForest() = default;

  /// Compile a bank of trained trees into the SoA arena (replaces any
  /// previous compilation).  Child indices are rebased into the arena; each
  /// tree's root is its first appended node.
  void compile(std::span<const DecisionTree> trees);

  void clear();

  [[nodiscard]] bool compiled() const { return !roots_.empty(); }
  [[nodiscard]] std::size_t tree_count() const { return roots_.size(); }
  [[nodiscard]] std::size_t node_count() const { return value_.size(); }

  /// Forest mean for one sample — bitwise-identical to averaging the
  /// per-tree pointer walks in tree order.
  [[nodiscard]] double predict(std::span<const double> x) const;

  /// Batch, level-major prediction: for each tree, all rows of `x` advance
  /// one level per sweep until every row reaches a leaf.  `out.size()` must
  /// equal `x.rows()`.  Bitwise-identical to calling predict() per row.
  void predict_batch(const Matrix& x, std::span<double> out) const;

 private:
  std::vector<std::uint32_t> feature_;
  std::vector<double> threshold_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<double> value_;
  std::vector<std::uint32_t> roots_;  ///< arena index of each tree's root
};

}  // namespace stac::ml

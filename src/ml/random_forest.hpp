// Bagged regression forests with the two gcForest flavours (random /
// completely-random), parallel tree training, and out-of-bag estimates —
// the OOB predictions let cascade levels pass concepts forward without a
// held-out set, mirroring gcForest's k-fold trick at lower cost.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/decision_tree.hpp"

namespace stac::ml {

struct ForestConfig {
  std::size_t estimators = 100;
  SplitMode split_mode = SplitMode::kSqrtFeatures;
  std::size_t max_depth = 0;  ///< 0 = grow to purity (gcForest default)
  std::size_t min_samples_leaf = 1;
  /// Bootstrap sample fraction; 1.0 = classic bagging with replacement.
  double bootstrap_fraction = 1.0;
  std::uint64_t seed = 1;
  bool parallel = true;
};

class RandomForest {
 public:
  explicit RandomForest(ForestConfig config = {});

  void fit(const Dataset& data);

  [[nodiscard]] double predict(std::span<const double> x) const;
  [[nodiscard]] std::vector<double> predict(const Matrix& x) const;

  /// Out-of-bag prediction for each training row (rows never out of bag
  /// fall back to the full-forest prediction).  Valid after fit().
  [[nodiscard]] const std::vector<double>& oob_predictions() const;

  [[nodiscard]] bool trained() const { return !trees_.empty(); }
  [[nodiscard]] std::size_t tree_count() const { return trees_.size(); }
  [[nodiscard]] std::vector<double> feature_importance() const;

 private:
  ForestConfig config_;
  std::vector<DecisionTree> trees_;
  std::vector<double> oob_;
};

}  // namespace stac::ml

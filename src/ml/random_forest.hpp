// Bagged regression forests with the two gcForest flavours (random /
// completely-random), parallel tree training, and out-of-bag estimates —
// the OOB predictions let cascade levels pass concepts forward without a
// held-out set, mirroring gcForest's k-fold trick at lower cost.
//
// Two serving-path additions (DESIGN.md §15):
//   - warm-start refit: fit() keeps every tree's bootstrap bag, and
//     refit_incremental() retrains only a deterministic round-robin subset
//     of the trees over the grown dataset (old trees keep their bags, so
//     appended rows are out-of-bag for them and the OOB estimates stay
//     honest).  ~1/retrain_fraction cheaper than a full fit; accuracy
//     parity is a tested contract, not an identity.
//   - flattened SoA inference (FlatForest), gated by ForestConfig::flatten
//     and bitwise-identical to the pointer walk.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/decision_tree.hpp"
#include "ml/flat_forest.hpp"

namespace stac::ml {

struct ForestConfig {
  std::size_t estimators = 100;
  SplitMode split_mode = SplitMode::kSqrtFeatures;
  std::size_t max_depth = 0;  ///< 0 = grow to purity (gcForest default)
  std::size_t min_samples_leaf = 1;
  /// Bootstrap sample fraction; 1.0 = classic bagging with replacement.
  double bootstrap_fraction = 1.0;
  std::uint64_t seed = 1;
  bool parallel = true;
  /// Compile fitted trees into a FlatForest and answer predict() from the
  /// SoA arena (bitwise-identical; false = AoS pointer walk baseline).
  bool flatten = true;
};

class RandomForest {
 public:
  explicit RandomForest(ForestConfig config = {});

  void fit(const Dataset& data);

  /// Warm-start refit over a grown dataset whose first trained_rows() rows
  /// are unchanged.  Retrains ceil(retrain_fraction * estimators) trees —
  /// a deterministic round-robin window that advances every call, so
  /// repeated refits cycle through the whole forest — on fresh bootstrap
  /// bags drawn over *all* rows, then recomputes OOB estimates from the
  /// stored bags.  Requires a prior fit().
  void refit_incremental(const Dataset& data, double retrain_fraction = 0.125);

  [[nodiscard]] double predict(std::span<const double> x) const;
  [[nodiscard]] std::vector<double> predict(const Matrix& x) const;

  /// Out-of-bag prediction for each training row (rows never out of bag
  /// fall back to the full-forest prediction).  Valid after fit().
  [[nodiscard]] const std::vector<double>& oob_predictions() const;

  [[nodiscard]] bool trained() const { return !trees_.empty(); }
  [[nodiscard]] std::size_t tree_count() const { return trees_.size(); }
  /// Rows of the dataset the forest was last (re)fitted on.
  [[nodiscard]] std::size_t trained_rows() const { return trained_rows_; }
  /// Completed warm-start refits since the last full fit().
  [[nodiscard]] std::uint64_t refit_rounds() const { return refit_round_; }
  [[nodiscard]] std::vector<double> feature_importance() const;

 private:
  void compile_flat();
  void compute_oob(const Dataset& data);

  ForestConfig config_;
  std::vector<DecisionTree> trees_;
  /// Bootstrap bag per tree, kept across fits for warm-start OOB math.
  std::vector<std::vector<std::size_t>> bags_;
  std::vector<double> oob_;
  std::size_t trained_rows_ = 0;
  std::uint64_t refit_round_ = 0;
  FlatForest flat_;
};

}  // namespace stac::ml

#include "ml/cross_validation.hpp"

#include <cmath>

#include "common/check.hpp"

namespace stac::ml {

CrossValidationResult cross_validate(
    const Dataset& data, std::size_t folds, std::uint64_t seed,
    const std::function<std::function<double(std::span<const double>)>(
        const Dataset&)>& train) {
  STAC_REQUIRE(train != nullptr);
  Rng rng(seed);
  CrossValidationResult result;
  for (const auto& [train_set, test_set] : data.kfold(folds, rng)) {
    const auto predictor = train(train_set);
    double mae = 0.0;
    for (std::size_t i = 0; i < test_set.size(); ++i) {
      const double err =
          std::abs(predictor(test_set.row(i)) - test_set.target(i));
      result.absolute_errors.add(err);
      mae += err;
    }
    result.fold_mae.push_back(mae / static_cast<double>(test_set.size()));
  }
  return result;
}

}  // namespace stac::ml

// K-fold cross-validation (§3.2: deep-learning representations "generalize
// well, out performing under rigorous K-fold cross validation schemes").
// Model-agnostic: the caller supplies a train function returning a
// predictor; this runs the folds and aggregates held-out errors.
#pragma once

#include <functional>

#include "common/stats.hpp"
#include "ml/dataset.hpp"

namespace stac::ml {

struct CrossValidationResult {
  /// Per-fold mean absolute error on the held-out fold.
  std::vector<double> fold_mae;
  /// All held-out absolute errors pooled.
  SampleStats absolute_errors;

  [[nodiscard]] double mean_mae() const {
    double sum = 0.0;
    for (double m : fold_mae) sum += m;
    return fold_mae.empty() ? 0.0 : sum / static_cast<double>(fold_mae.size());
  }
};

/// `train` receives a training fold and returns a predictor over feature
/// rows.  Deterministic given `seed`.
[[nodiscard]] CrossValidationResult cross_validate(
    const Dataset& data, std::size_t folds, std::uint64_t seed,
    const std::function<std::function<double(std::span<const double>)>(
        const Dataset&)>& train);

}  // namespace stac::ml

#include "ml/dataset.hpp"

#include "common/check.hpp"

namespace stac::ml {

Dataset::Dataset(Matrix features, std::vector<double> targets,
                 std::vector<std::string> feature_names)
    : features_(std::move(features)), targets_(std::move(targets)),
      names_(std::move(feature_names)) {
  STAC_REQUIRE(features_.rows() == targets_.size());
  STAC_REQUIRE(names_.empty() || names_.size() == features_.cols());
}

void Dataset::add_row(std::span<const double> x, double y) {
  features_.append_row(x);
  targets_.push_back(y);
  if (!col_cache_.ready.load(std::memory_order_acquire)) return;
  // Delta-append: extend the live cache in place instead of invalidating.
  // Previously returned spans keep their geometry (their snapshot row
  // count) and stay backed by live memory: a column buffer that must grow
  // is retired, not freed.
  std::lock_guard lock(col_cache_.build_mutex);
  const std::size_t cols = feature_count();
  for (std::size_t c = 0; c < cols; ++c) {
    auto& col = col_cache_.cols[c];
    if (col.size() == col.capacity()) {
      std::vector<double> grown;
      grown.reserve(std::max<std::size_t>(2 * col.capacity(), 64));
      grown.assign(col.begin(), col.end());
      col_cache_.retired.push_back(std::move(col));
      col = std::move(grown);
    }
    col.push_back(x[c]);
    col_cache_.ptrs[c].store(col.data(), std::memory_order_release);
  }
  // Row count bumps last: a reader that sees the new count is guaranteed
  // (acquire on rows → release here) to also see pointers covering it.
  col_cache_.rows.store(targets_.size(), std::memory_order_release);
}

void Dataset::build_column_cache_locked() const {
  const std::size_t n = size();
  const std::size_t cols = feature_count();
  col_cache_.cols.assign(cols, {});
  col_cache_.retired.clear();
  col_cache_.ptrs = std::make_unique<std::atomic<const double*>[]>(cols);
  for (std::size_t c = 0; c < cols; ++c)
    col_cache_.cols[c].reserve(n + n / 2 + 16);  // headroom for delta appends
  for (std::size_t r = 0; r < n; ++r) {
    const auto src = features_.row(r);
    for (std::size_t c = 0; c < cols; ++c)
      col_cache_.cols[c].push_back(src[c]);
  }
  for (std::size_t c = 0; c < cols; ++c)
    col_cache_.ptrs[c].store(col_cache_.cols[c].data(),
                             std::memory_order_release);
  col_cache_.rows.store(n, std::memory_order_release);
  col_cache_.ready.store(true, std::memory_order_release);
}

std::span<const double> Dataset::column(std::size_t f) const {
  STAC_REQUIRE(f < feature_count());
  if (!col_cache_.ready.load(std::memory_order_acquire)) {
    std::lock_guard lock(col_cache_.build_mutex);
    if (!col_cache_.ready.load(std::memory_order_relaxed))
      build_column_cache_locked();
  }
  // Span geometry must come from the published row count, not a fresh
  // size() read — re-reading size() here used to race with a concurrent
  // add_row (a row appended between the ready check and the return would
  // claim rows the buffer pointer may not cover).  Load order matters:
  // rows first (acquire), then the pointer — the writer publishes the
  // pointer before the count, so the pointer seen covers at least `n`
  // rows, and newer buffers carry the identical prefix.
  const std::size_t n = col_cache_.rows.load(std::memory_order_acquire);
  const double* p = col_cache_.ptrs[f].load(std::memory_order_acquire);
  return {p, n};
}

Dataset Dataset::subset(const std::vector<std::size_t>& rows) const {
  Matrix x(rows.size(), feature_count());
  std::vector<double> y;
  y.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    STAC_REQUIRE(rows[i] < size());
    const auto src = features_.row(rows[i]);
    std::copy(src.begin(), src.end(), x.row(i).begin());
    y.push_back(targets_[rows[i]]);
  }
  return Dataset(std::move(x), std::move(y), names_);
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction,
                                           Rng& rng) const {
  STAC_REQUIRE(train_fraction > 0.0 && train_fraction < 1.0);
  std::vector<std::size_t> idx(size());
  for (std::size_t i = 0; i < size(); ++i) idx[i] = i;
  rng.shuffle(idx);
  const auto n_train = static_cast<std::size_t>(
      train_fraction * static_cast<double>(size()));
  STAC_REQUIRE_MSG(n_train > 0 && n_train < size(),
                   "split leaves an empty side");
  std::vector<std::size_t> train(idx.begin(), idx.begin() + n_train);
  std::vector<std::size_t> test(idx.begin() + n_train, idx.end());
  return {subset(train), subset(test)};
}

std::vector<std::pair<Dataset, Dataset>> Dataset::kfold(std::size_t k,
                                                        Rng& rng) const {
  STAC_REQUIRE(k >= 2 && k <= size());
  std::vector<std::size_t> idx(size());
  for (std::size_t i = 0; i < size(); ++i) idx[i] = i;
  rng.shuffle(idx);
  std::vector<std::pair<Dataset, Dataset>> folds;
  folds.reserve(k);
  for (std::size_t f = 0; f < k; ++f) {
    std::vector<std::size_t> train, test;
    for (std::size_t i = 0; i < idx.size(); ++i) {
      if (i % k == f)
        test.push_back(idx[i]);
      else
        train.push_back(idx[i]);
    }
    folds.emplace_back(subset(train), subset(test));
  }
  return folds;
}

Dataset Dataset::with_extra_features(const Matrix& extra) const {
  STAC_REQUIRE(extra.rows() == size());
  Matrix x(size(), feature_count() + extra.cols());
  for (std::size_t r = 0; r < size(); ++r) {
    const auto base = features_.row(r);
    const auto add = extra.row(r);
    auto dst = x.row(r);
    std::copy(base.begin(), base.end(), dst.begin());
    std::copy(add.begin(), add.end(), dst.begin() + base.size());
  }
  std::vector<std::string> names = names_;
  if (!names.empty()) {
    for (std::size_t c = 0; c < extra.cols(); ++c)
      names.push_back("aug_" + std::to_string(c));
  }
  return Dataset(std::move(x), targets_, std::move(names));
}

}  // namespace stac::ml

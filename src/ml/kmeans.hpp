// K-means clustering (k-means++ seeding, Lloyd iterations).  Used twice by
// the reproduction: the profiler's stratified sampler clusters seed
// experiments by effective allocation (§4), and the insight analysis
// clusters workloads by learned concepts (§5.2's final finding that concept
// clustering reveals the arrival/service/timeout interaction raw counters
// miss).
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace stac::ml {

struct KMeansConfig {
  std::size_t k = 4;
  std::size_t max_iterations = 100;
  double tolerance = 1e-7;
  std::uint64_t seed = 1;
};

struct KMeansResult {
  Matrix centroids;                     ///< k x features
  std::vector<std::size_t> assignment;  ///< per input row
  double inertia = 0.0;                 ///< sum of squared distances
  std::size_t iterations = 0;
};

[[nodiscard]] KMeansResult kmeans(const Matrix& points, KMeansConfig config);

/// Squared Euclidean distance between two equal-length vectors.
[[nodiscard]] double squared_distance(std::span<const double> a,
                                      std::span<const double> b);

}  // namespace stac::ml

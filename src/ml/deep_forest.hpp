// Deep forest = multi-grain scanning + cascade (§4.1, after gcForest /
// Zhou & Feng).  Operates on profile "images" (counters x time) with an
// optional tabular side-channel of static/dynamic condition features that
// bypass the scanner and enter the cascade directly.
//
// The tabular-only variant (fit without images) is the paper's
// "queueing simulator with concepts" comparator: cascade-learned concepts
// without representational features.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ml/cascade.hpp"
#include "ml/mgs.hpp"

namespace stac::ml {

struct DeepForestConfig {
  MgsConfig mgs;
  CascadeConfig cascade;
};

class DeepForest {
 public:
  explicit DeepForest(DeepForestConfig config = {});

  /// Full pipeline: MGS over images, cascade over tabular + window features.
  void fit(const std::vector<ProfileSample>& samples,
           const std::vector<double>& targets);

  /// Warm-start refit: `samples`/`targets` must extend the training set the
  /// model was fitted on (identical prefix).  The multi-grain scanner is
  /// kept fixed — only the new samples' window features are transformed and
  /// appended to the cached per-grain blocks — and the cascade warm-refits
  /// (CascadeForest::refit_incremental).  Requires a prior fit().
  void refit_incremental(const std::vector<ProfileSample>& samples,
                         const std::vector<double>& targets,
                         double retrain_fraction = 0.125);

  [[nodiscard]] double predict(const ProfileSample& sample) const;

  /// Learned concept vector (cascade outputs) — the representation used for
  /// the §5.2 workload-insight clustering.
  [[nodiscard]] std::vector<double> concepts(const ProfileSample& sample) const;

  [[nodiscard]] bool trained() const { return cascade_.trained(); }
  [[nodiscard]] bool uses_mgs() const { return scanner_.has_value(); }

 private:
  [[nodiscard]] std::vector<std::vector<double>> window_features(
      const ProfileSample& sample) const;

  DeepForestConfig config_;
  std::optional<MultiGrainScanner> scanner_;
  CascadeForest cascade_;
  std::size_t tabular_features_ = 0;
  /// Training-time per-grain window-feature blocks, cached so warm refits
  /// only transform the appended samples (rows track the training set).
  std::vector<Matrix> per_level_extra_;
};

}  // namespace stac::ml

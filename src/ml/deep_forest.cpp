#include "ml/deep_forest.hpp"

#include "common/check.hpp"

namespace stac::ml {

DeepForest::DeepForest(DeepForestConfig config)
    : config_(std::move(config)), cascade_(config_.cascade) {}

void DeepForest::fit(const std::vector<ProfileSample>& samples,
                     const std::vector<double>& targets) {
  STAC_REQUIRE(!samples.empty());
  STAC_REQUIRE(samples.size() == targets.size());
  tabular_features_ = samples.front().tabular.size();
  for (const auto& s : samples)
    STAC_REQUIRE_MSG(s.tabular.size() == tabular_features_,
                     "tabular feature width mismatch");

  const bool with_images = !samples.front().image.empty();

  per_level_extra_.clear();
  if (with_images) {
    std::vector<Matrix> images;
    images.reserve(samples.size());
    for (const auto& s : samples) images.push_back(s.image);
    scanner_.emplace(config_.mgs);
    scanner_->fit(images, targets);

    // One extra feature block per grain, introduced level by level.
    per_level_extra_.resize(scanner_->grain_count());
    for (std::size_t g = 0; g < scanner_->grain_count(); ++g)
      per_level_extra_[g] = Matrix(samples.size(), scanner_->feature_count(g));
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const auto feats = scanner_->transform(samples[i].image);
      for (std::size_t g = 0; g < feats.size(); ++g) {
        auto dst = per_level_extra_[g].row(i);
        std::copy(feats[g].begin(), feats[g].end(), dst.begin());
      }
    }
  } else {
    scanner_.reset();
  }

  Matrix x(samples.size(), tabular_features_);
  std::vector<double> y(targets.begin(), targets.end());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    auto dst = x.row(i);
    std::copy(samples[i].tabular.begin(), samples[i].tabular.end(),
              dst.begin());
  }
  cascade_ = CascadeForest(config_.cascade);
  cascade_.fit(Dataset(std::move(x), std::move(y)), per_level_extra_);
}

void DeepForest::refit_incremental(const std::vector<ProfileSample>& samples,
                                   const std::vector<double>& targets,
                                   double retrain_fraction) {
  STAC_REQUIRE_MSG(trained(), "refit_incremental before fit");
  STAC_REQUIRE(!samples.empty());
  STAC_REQUIRE(samples.size() == targets.size());
  const std::size_t old_n = cascade_.trained_rows();
  STAC_REQUIRE_MSG(samples.size() >= old_n,
                   "warm refit requires a grown (or equal) training set");
  for (const auto& s : samples)
    STAC_REQUIRE_MSG(s.tabular.size() == tabular_features_,
                     "tabular feature width mismatch");

  if (scanner_) {
    // The scanner stays fixed between full refits; only appended samples
    // need transforming, extending the cached per-grain blocks.
    for (std::size_t i = old_n; i < samples.size(); ++i) {
      STAC_REQUIRE_MSG(!samples[i].image.empty(),
                       "model was trained with images; sample has none");
      const auto feats = scanner_->transform(samples[i].image);
      for (std::size_t g = 0; g < feats.size(); ++g)
        per_level_extra_[g].append_row(feats[g]);
    }
  }

  Matrix x(samples.size(), tabular_features_);
  std::vector<double> y(targets.begin(), targets.end());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    auto dst = x.row(i);
    std::copy(samples[i].tabular.begin(), samples[i].tabular.end(),
              dst.begin());
  }
  cascade_.refit_incremental(Dataset(std::move(x), std::move(y)),
                             per_level_extra_, retrain_fraction);
}

std::vector<std::vector<double>> DeepForest::window_features(
    const ProfileSample& sample) const {
  if (!scanner_) return {};
  STAC_REQUIRE_MSG(!sample.image.empty(),
                   "model was trained with images; sample has none");
  return scanner_->transform(sample.image);
}

double DeepForest::predict(const ProfileSample& sample) const {
  STAC_REQUIRE_MSG(trained(), "predict before fit");
  return cascade_.predict(sample.tabular, window_features(sample));
}

std::vector<double> DeepForest::concepts(const ProfileSample& sample) const {
  STAC_REQUIRE_MSG(trained(), "concepts before fit");
  return cascade_.concepts(sample.tabular, window_features(sample));
}

}  // namespace stac::ml

#include "ml/neural_net.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace stac::ml {

namespace {

/// Adam state for one parameter vector.
struct Adam {
  std::vector<double> m, v;
  double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  std::size_t t = 0;

  explicit Adam(std::size_t n) : m(n, 0.0), v(n, 0.0) {}

  void step(std::vector<double>& w, const std::vector<double>& g, double lr) {
    ++t;
    const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(t));
    const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(t));
    for (std::size_t i = 0; i < w.size(); ++i) {
      m[i] = beta1 * m[i] + (1.0 - beta1) * g[i];
      v[i] = beta2 * v[i] + (1.0 - beta2) * g[i] * g[i];
      w[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + eps);
    }
  }
};

}  // namespace

struct ConvNet::Forward {
  std::vector<double> input;  ///< standardized [image..., tabular...]
  std::vector<double> conv;   ///< post-ReLU conv activations
  std::vector<double> flat;   ///< conv + tabular
  std::vector<double> hidden; ///< post-ReLU (and dropout at train time)
  std::vector<char> drop_mask;
  // Residual blocks: per block the input vector and the pre-activation.
  std::vector<std::vector<double>> res_in;
  std::vector<std::vector<double>> res_z;
  std::vector<double> final_h;  ///< output of the last block (== hidden if none)
  double y = 0.0;
};

ConvNet::ConvNet(ConvNetConfig config) : config_(config) {
  STAC_REQUIRE(config.kernel_size >= 1);
  STAC_REQUIRE(config.hidden >= 1);
  STAC_REQUIRE(config.batch_size >= 1);
  STAC_REQUIRE(config.dropout >= 0.0 && config.dropout < 1.0);
}

std::vector<double> ConvNet::standardize(const ProfileSample& sample) const {
  std::vector<double> x;
  x.reserve(img_rows_ * img_cols_ + tab_);
  const auto img = sample.image.data();
  x.insert(x.end(), img.begin(), img.end());
  x.insert(x.end(), sample.tabular.begin(), sample.tabular.end());
  STAC_REQUIRE(x.size() == in_mean_.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = (x[i] - in_mean_[i]) / in_scale_[i];
  return x;
}

double ConvNet::fit(const std::vector<ProfileSample>& samples,
                    const std::vector<double>& targets) {
  STAC_REQUIRE(!samples.empty());
  STAC_REQUIRE(samples.size() == targets.size());
  img_rows_ = samples.front().image.rows();
  img_cols_ = samples.front().image.cols();
  tab_ = samples.front().tabular.size();
  const bool with_conv =
      img_rows_ >= config_.kernel_size && img_cols_ >= config_.kernel_size;
  out_rows_ = with_conv ? img_rows_ - config_.kernel_size + 1 : 0;
  out_cols_ = with_conv ? img_cols_ - config_.kernel_size + 1 : 0;
  const std::size_t conv_out = config_.kernels * out_rows_ * out_cols_;
  flat_ = conv_out + tab_;
  STAC_REQUIRE_MSG(flat_ > 0, "empty network input");

  // Input standardization over the raw [image, tabular] vector.
  const std::size_t raw = img_rows_ * img_cols_ + tab_;
  in_mean_.assign(raw, 0.0);
  in_scale_.assign(raw, 1.0);
  {
    std::vector<double> var(raw, 0.0);
    for (const auto& s : samples) {
      const auto img = s.image.data();
      for (std::size_t i = 0; i < img.size(); ++i) in_mean_[i] += img[i];
      for (std::size_t i = 0; i < tab_; ++i)
        in_mean_[img.size() + i] += s.tabular[i];
    }
    for (auto& m : in_mean_) m /= static_cast<double>(samples.size());
    for (const auto& s : samples) {
      const auto img = s.image.data();
      for (std::size_t i = 0; i < img.size(); ++i) {
        const double d = img[i] - in_mean_[i];
        var[i] += d * d;
      }
      for (std::size_t i = 0; i < tab_; ++i) {
        const double d = s.tabular[i] - in_mean_[img.size() + i];
        var[img.size() + i] += d * d;
      }
    }
    for (std::size_t i = 0; i < raw; ++i) {
      const double sd =
          std::sqrt(var[i] / static_cast<double>(samples.size()));
      in_scale_[i] = sd > 1e-12 ? sd : 1.0;
    }
  }
  // Target standardization.
  y_mean_ = 0.0;
  for (double y : targets) y_mean_ += y;
  y_mean_ /= static_cast<double>(targets.size());
  double yv = 0.0;
  for (double y : targets) yv += (y - y_mean_) * (y - y_mean_);
  y_scale_ = std::sqrt(yv / static_cast<double>(targets.size()));
  if (y_scale_ < 1e-12) y_scale_ = 1.0;

  // He initialization.
  Rng rng(config_.seed);
  const std::size_t ksq = config_.kernel_size * config_.kernel_size;
  conv_w_.assign(config_.kernels * ksq, 0.0);
  conv_b_.assign(config_.kernels, 0.0);
  for (auto& w : conv_w_)
    w = rng.normal(0.0, std::sqrt(2.0 / static_cast<double>(ksq)));
  dense1_w_.assign(config_.hidden * flat_, 0.0);
  dense1_b_.assign(config_.hidden, 0.0);
  for (auto& w : dense1_w_)
    w = rng.normal(0.0, std::sqrt(2.0 / static_cast<double>(flat_)));
  res_w_.assign(config_.residual_blocks,
                std::vector<double>(config_.hidden * config_.hidden, 0.0));
  res_b_.assign(config_.residual_blocks,
                std::vector<double>(config_.hidden, 0.0));
  for (auto& block : res_w_)
    for (auto& w : block)
      // Small init keeps each block near the identity at the start.
      w = rng.normal(0.0, std::sqrt(0.5 / static_cast<double>(config_.hidden)));
  out_w_.assign(config_.hidden, 0.0);
  for (auto& w : out_w_)
    w = rng.normal(0.0, std::sqrt(1.0 / static_cast<double>(config_.hidden)));
  out_b_ = 0.0;

  Adam a_cw(conv_w_.size()), a_cb(conv_b_.size());
  Adam a_d1(dense1_w_.size()), a_b1(dense1_b_.size());
  std::vector<Adam> a_rw, a_rb;
  for (std::size_t b = 0; b < config_.residual_blocks; ++b) {
    a_rw.emplace_back(res_w_[b].size());
    a_rb.emplace_back(res_b_[b].size());
  }
  Adam a_ow(out_w_.size());
  std::vector<double> ob_vec{0.0};
  Adam a_ob(1);

  // Pre-standardize all inputs once.
  std::vector<std::vector<double>> inputs;
  inputs.reserve(samples.size());
  for (const auto& s : samples) inputs.push_back(standardize(s));
  std::vector<double> y_std(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i)
    y_std[i] = (targets[i] - y_mean_) / y_scale_;

  std::vector<std::size_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Gradient buffers.
  std::vector<double> g_cw(conv_w_.size()), g_cb(conv_b_.size());
  std::vector<double> g_d1(dense1_w_.size()), g_b1(dense1_b_.size());
  std::vector<std::vector<double>> g_rw, g_rb;
  for (std::size_t b = 0; b < config_.residual_blocks; ++b) {
    g_rw.emplace_back(res_w_[b].size(), 0.0);
    g_rb.emplace_back(res_b_[b].size(), 0.0);
  }
  std::vector<double> g_ow(out_w_.size());
  double g_ob = 0.0;

  Forward fwd;
  double last_epoch_mse = 0.0;

  auto forward = [&](const std::vector<double>& x, bool train) {
    fwd.input = x;
    // Conv layer.
    fwd.conv.assign(config_.kernels * out_rows_ * out_cols_, 0.0);
    for (std::size_t k = 0; k < config_.kernels; ++k) {
      const double* w = conv_w_.data() + k * ksq;
      for (std::size_t r = 0; r < out_rows_; ++r) {
        for (std::size_t c = 0; c < out_cols_; ++c) {
          double acc = conv_b_[k];
          for (std::size_t i = 0; i < config_.kernel_size; ++i) {
            const double* in_row =
                x.data() + (r + i) * img_cols_ + c;
            const double* w_row = w + i * config_.kernel_size;
            for (std::size_t j = 0; j < config_.kernel_size; ++j)
              acc += w_row[j] * in_row[j];
          }
          fwd.conv[(k * out_rows_ + r) * out_cols_ + c] =
              acc > 0.0 ? acc : 0.0;
        }
      }
    }
    // Flatten + tabular.
    fwd.flat.resize(flat_);
    std::copy(fwd.conv.begin(), fwd.conv.end(), fwd.flat.begin());
    std::copy(x.begin() + static_cast<std::ptrdiff_t>(img_rows_ * img_cols_),
              x.end(), fwd.flat.begin() + static_cast<std::ptrdiff_t>(
                                              fwd.conv.size()));
    // Dense + ReLU + dropout.
    fwd.hidden.resize(config_.hidden);
    fwd.drop_mask.assign(config_.hidden, 1);
    for (std::size_t h = 0; h < config_.hidden; ++h) {
      const double* w = dense1_w_.data() + h * flat_;
      double acc = dense1_b_[h];
      for (std::size_t i = 0; i < flat_; ++i) acc += w[i] * fwd.flat[i];
      acc = acc > 0.0 ? acc : 0.0;
      if (train && config_.dropout > 0.0) {
        if (rng.bernoulli(config_.dropout)) {
          fwd.drop_mask[h] = 0;
          acc = 0.0;
        } else {
          acc /= (1.0 - config_.dropout);
        }
      }
      fwd.hidden[h] = acc;
    }
    // Residual blocks: h <- relu(W h + b) + h.
    fwd.res_in.assign(config_.residual_blocks, {});
    fwd.res_z.assign(config_.residual_blocks, {});
    fwd.final_h = fwd.hidden;
    for (std::size_t b = 0; b < config_.residual_blocks; ++b) {
      fwd.res_in[b] = fwd.final_h;
      auto& z = fwd.res_z[b];
      z.assign(config_.hidden, 0.0);
      for (std::size_t j = 0; j < config_.hidden; ++j) {
        double acc = res_b_[b][j];
        const double* w = res_w_[b].data() + j * config_.hidden;
        for (std::size_t k = 0; k < config_.hidden; ++k)
          acc += w[k] * fwd.res_in[b][k];
        z[j] = acc;
      }
      for (std::size_t j = 0; j < config_.hidden; ++j)
        fwd.final_h[j] = (z[j] > 0.0 ? z[j] : 0.0) + fwd.res_in[b][j];
    }
    // Output.
    double y = out_b_;
    for (std::size_t h = 0; h < config_.hidden; ++h)
      y += out_w_[h] * fwd.final_h[h];
    fwd.y = y;
  };

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    double mse = 0.0;
    for (std::size_t b0 = 0; b0 < order.size(); b0 += config_.batch_size) {
      const std::size_t b1 = std::min(order.size(), b0 + config_.batch_size);
      std::fill(g_cw.begin(), g_cw.end(), 0.0);
      std::fill(g_cb.begin(), g_cb.end(), 0.0);
      std::fill(g_d1.begin(), g_d1.end(), 0.0);
      std::fill(g_b1.begin(), g_b1.end(), 0.0);
      for (std::size_t b = 0; b < config_.residual_blocks; ++b) {
        std::fill(g_rw[b].begin(), g_rw[b].end(), 0.0);
        std::fill(g_rb[b].begin(), g_rb[b].end(), 0.0);
      }
      std::fill(g_ow.begin(), g_ow.end(), 0.0);
      g_ob = 0.0;

      for (std::size_t bi = b0; bi < b1; ++bi) {
        const std::size_t i = order[bi];
        forward(inputs[i], /*train=*/true);
        const double err = fwd.y - y_std[i];
        mse += err * err;
        const double dy = 2.0 * err / static_cast<double>(b1 - b0);

        // Output layer (consumes the last residual block's output).
        for (std::size_t h = 0; h < config_.hidden; ++h)
          g_ow[h] += dy * fwd.final_h[h];
        g_ob += dy;

        // Backprop through the residual blocks: d h_in = d h_out +
        // W^T (d h_out ⊙ relu'(z)).
        std::vector<double> dh(config_.hidden);
        for (std::size_t h = 0; h < config_.hidden; ++h)
          dh[h] = dy * out_w_[h];
        for (std::size_t b = config_.residual_blocks; b-- > 0;) {
          std::vector<double> dh_in = dh;  // identity path
          for (std::size_t j = 0; j < config_.hidden; ++j) {
            if (fwd.res_z[b][j] <= 0.0) continue;  // ReLU gate
            const double dz = dh[j];
            double* gw = g_rw[b].data() + j * config_.hidden;
            const double* w = res_w_[b].data() + j * config_.hidden;
            for (std::size_t k = 0; k < config_.hidden; ++k) {
              gw[k] += dz * fwd.res_in[b][k];
              dh_in[k] += dz * w[k];
            }
            g_rb[b][j] += dz;
          }
          dh = std::move(dh_in);
        }

        // Hidden layer: gate dropout + ReLU, accumulate dense grads, and
        // collect the flat-input gradient for the conv layer.
        std::vector<double> dpre(config_.hidden, 0.0);
        for (std::size_t h = 0; h < config_.hidden; ++h) {
          if (!fwd.drop_mask[h] || fwd.hidden[h] <= 0.0) continue;
          dpre[h] = dh[h] / (1.0 - config_.dropout);
          double* gw = g_d1.data() + h * flat_;
          for (std::size_t f = 0; f < flat_; ++f)
            gw[f] += dpre[h] * fwd.flat[f];
          g_b1[h] += dpre[h];
        }

        // Conv layer (through the flat buffer's conv prefix).
        if (out_rows_ > 0) {
          const std::size_t conv_out = config_.kernels * out_rows_ * out_cols_;
          std::vector<double> dflat(conv_out, 0.0);
          for (std::size_t h = 0; h < config_.hidden; ++h) {
            if (dpre[h] == 0.0) continue;
            const double* w = dense1_w_.data() + h * flat_;
            for (std::size_t o = 0; o < conv_out; ++o)
              dflat[o] += dpre[h] * w[o];
          }
          for (std::size_t k = 0; k < config_.kernels; ++k) {
            double* gw = g_cw.data() + k * ksq;
            for (std::size_t r = 0; r < out_rows_; ++r) {
              for (std::size_t c = 0; c < out_cols_; ++c) {
                const std::size_t o = (k * out_rows_ + r) * out_cols_ + c;
                if (fwd.conv[o] <= 0.0) continue;  // ReLU gate
                const double dconv = dflat[o];
                if (dconv == 0.0) continue;
                for (std::size_t ki = 0; ki < config_.kernel_size; ++ki) {
                  const double* in_row =
                      fwd.input.data() + (r + ki) * img_cols_ + c;
                  double* gw_row = gw + ki * config_.kernel_size;
                  for (std::size_t kj = 0; kj < config_.kernel_size; ++kj)
                    gw_row[kj] += dconv * in_row[kj];
                }
                g_cb[k] += dconv;
              }
            }
          }
        }
      }

      a_cw.step(conv_w_, g_cw, config_.learning_rate);
      a_cb.step(conv_b_, g_cb, config_.learning_rate);
      a_d1.step(dense1_w_, g_d1, config_.learning_rate);
      a_b1.step(dense1_b_, g_b1, config_.learning_rate);
      for (std::size_t b = 0; b < config_.residual_blocks; ++b) {
        a_rw[b].step(res_w_[b], g_rw[b], config_.learning_rate);
        a_rb[b].step(res_b_[b], g_rb[b], config_.learning_rate);
      }
      a_ow.step(out_w_, g_ow, config_.learning_rate);
      std::vector<double> gob{g_ob};
      a_ob.step(ob_vec, gob, config_.learning_rate);
      out_b_ = ob_vec[0];
    }
    last_epoch_mse = mse / static_cast<double>(order.size());
  }
  return last_epoch_mse;
}

double ConvNet::predict(const ProfileSample& sample) const {
  STAC_REQUIRE_MSG(trained(), "predict before fit");
  const std::vector<double> x = standardize(sample);
  const std::size_t ksq = config_.kernel_size * config_.kernel_size;

  std::vector<double> flat(flat_, 0.0);
  for (std::size_t k = 0; k < config_.kernels && out_rows_ > 0; ++k) {
    const double* w = conv_w_.data() + k * ksq;
    for (std::size_t r = 0; r < out_rows_; ++r) {
      for (std::size_t c = 0; c < out_cols_; ++c) {
        double acc = conv_b_[k];
        for (std::size_t i = 0; i < config_.kernel_size; ++i) {
          const double* in_row = x.data() + (r + i) * img_cols_ + c;
          const double* w_row = w + i * config_.kernel_size;
          for (std::size_t j = 0; j < config_.kernel_size; ++j)
            acc += w_row[j] * in_row[j];
        }
        flat[(k * out_rows_ + r) * out_cols_ + c] = acc > 0.0 ? acc : 0.0;
      }
    }
  }
  std::copy(x.begin() + static_cast<std::ptrdiff_t>(img_rows_ * img_cols_),
            x.end(),
            flat.begin() + static_cast<std::ptrdiff_t>(
                               config_.kernels * out_rows_ * out_cols_));

  std::vector<double> h(config_.hidden, 0.0);
  for (std::size_t j = 0; j < config_.hidden; ++j) {
    const double* w = dense1_w_.data() + j * flat_;
    double acc = dense1_b_[j];
    for (std::size_t i = 0; i < flat_; ++i) acc += w[i] * flat[i];
    h[j] = acc > 0.0 ? acc : 0.0;
  }
  for (std::size_t b = 0; b < config_.residual_blocks; ++b) {
    std::vector<double> next = h;
    for (std::size_t j = 0; j < config_.hidden; ++j) {
      double acc = res_b_[b][j];
      const double* w = res_w_[b].data() + j * config_.hidden;
      for (std::size_t k = 0; k < config_.hidden; ++k) acc += w[k] * h[k];
      if (acc > 0.0) next[j] += acc;
    }
    h = std::move(next);
  }
  double y = out_b_;
  for (std::size_t j = 0; j < config_.hidden; ++j) y += out_w_[j] * h[j];
  return y * y_scale_ + y_mean_;
}

TuneResult tune_convnet(const std::vector<ProfileSample>& train_x,
                        const std::vector<double>& train_y,
                        const std::vector<ProfileSample>& val_x,
                        const std::vector<double>& val_y, std::size_t trials,
                        std::uint64_t seed) {
  STAC_REQUIRE(trials >= 1);
  STAC_REQUIRE(!val_x.empty() && val_x.size() == val_y.size());
  Rng rng(seed);
  TuneResult result;
  result.best_validation_mae = 1e300;

  const std::vector<std::size_t> hidden_opts{16, 32, 64};
  const std::vector<std::size_t> epoch_opts{40, 80, 120};
  const std::vector<std::size_t> batch_opts{8, 16, 32};
  const std::vector<double> lr_opts{3e-4, 1e-3, 3e-3};
  const std::vector<double> drop_opts{0.0, 0.1, 0.25};

  for (std::size_t t = 0; t < trials; ++t) {
    ConvNetConfig cfg;
    cfg.hidden = hidden_opts[rng.uniform_index(hidden_opts.size())];
    cfg.epochs = epoch_opts[rng.uniform_index(epoch_opts.size())];
    cfg.batch_size = batch_opts[rng.uniform_index(batch_opts.size())];
    cfg.learning_rate = lr_opts[rng.uniform_index(lr_opts.size())];
    cfg.dropout = drop_opts[rng.uniform_index(drop_opts.size())];
    cfg.kernels = 4;
    cfg.seed = rng.next_u64();

    ConvNet net(cfg);
    net.fit(train_x, train_y);
    double mae = 0.0;
    for (std::size_t i = 0; i < val_x.size(); ++i)
      mae += std::abs(net.predict(val_x[i]) - val_y[i]);
    mae /= static_cast<double>(val_x.size());
    if (mae < result.best_validation_mae) {
      result.best_validation_mae = mae;
      result.best = cfg;
    }
    ++result.trials;
  }
  return result;
}

}  // namespace stac::ml

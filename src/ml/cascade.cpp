#include "ml/cascade.hpp"

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stac::ml {

namespace {

/// Train `count` forests into `out`, one per slot, with pre-drawn seeds.
/// `make_config(f)` builds the forest's config minus the seed.  The fan-out
/// runs on the global pool when `parallel`; seeds are consumed from `rng`
/// serially either way, so threading never changes the fitted forests.
template <typename MakeConfig>
void train_forest_bank(std::vector<RandomForest>& out, std::size_t count,
                       const Dataset& data, Rng& rng, bool parallel,
                       MakeConfig&& make_config) {
  std::vector<std::uint64_t> seeds(count);
  for (auto& s : seeds) s = rng.next_u64();
  const std::size_t first = out.size();
  out.resize(first + count);
  auto train_one = [&](std::size_t f) {
    STAC_TRACE_SPAN(span, "forest.fit", "ml");
    span.arg("slot", static_cast<std::uint64_t>(f));
    span.arg("worker", static_cast<std::uint64_t>(ThreadPool::worker_index()));
    ForestConfig fc = make_config(f);
    fc.seed = seeds[f];
    fc.parallel = !parallel;  // inner tree fan-out only when the bank is serial
    RandomForest forest(fc);
    forest.fit(data);
    out[first + f] = std::move(forest);
  };
  if (parallel && count > 1) {
    ThreadPool::global().parallel_for(0, count, train_one);
  } else {
    for (std::size_t f = 0; f < count; ++f) train_one(f);
  }
}

/// Warm-refit every forest of a bank in place (pool fan-out mirrors
/// train_forest_bank; each forest's refit is internally deterministic).
void refit_forest_bank(std::vector<RandomForest>& bank, const Dataset& data,
                       bool parallel, double retrain_fraction) {
  auto refit_one = [&](std::size_t f) {
    STAC_TRACE_SPAN(span, "forest.refit", "ml");
    span.arg("slot", static_cast<std::uint64_t>(f));
    bank[f].refit_incremental(data, retrain_fraction);
  };
  if (parallel && bank.size() > 1) {
    ThreadPool::global().parallel_for(0, bank.size(), refit_one);
  } else {
    for (std::size_t f = 0; f < bank.size(); ++f) refit_one(f);
  }
}

}  // namespace

CascadeForest::CascadeForest(CascadeConfig config) : config_(config) {
  STAC_REQUIRE(config.levels >= 1);
  STAC_REQUIRE(config.forests_per_level >= 1);
  STAC_REQUIRE(config.final_forests >= 1);
}

Matrix CascadeForest::assemble_training_matrix(
    const Dataset& base, const std::vector<Matrix>& per_level_extra,
    std::size_t extra_blocks, std::size_t concept_width) const {
  const std::size_t n = base.size();
  std::size_t width = base.feature_count();
  for (std::size_t g = 0; g < extra_blocks; ++g)
    width += per_level_extra[g].cols();
  width += concept_width;
  Matrix x(n, width);
  for (std::size_t r = 0; r < n; ++r) {
    auto dst = x.row(r);
    std::size_t at = 0;
    const auto b = base.row(r);
    std::copy(b.begin(), b.end(), dst.begin());
    at += b.size();
    for (std::size_t g = 0; g < extra_blocks; ++g) {
      const auto e = per_level_extra[g].row(r);
      std::copy(e.begin(), e.end(),
                dst.begin() + static_cast<std::ptrdiff_t>(at));
      at += e.size();
    }
    const auto& cr = concept_rows_[r];
    STAC_REQUIRE(cr.size() >= concept_width);
    std::copy(cr.begin(),
              cr.begin() + static_cast<std::ptrdiff_t>(concept_width),
              dst.begin() + static_cast<std::ptrdiff_t>(at));
  }
  return x;
}

void CascadeForest::fit(const Dataset& base,
                        const std::vector<Matrix>& per_level_extra) {
  STAC_REQUIRE(!base.empty());
  for (const auto& m : per_level_extra)
    STAC_REQUIRE_MSG(m.rows() == base.size(),
                     "extra feature block row count mismatch");
  base_features_ = base.feature_count();
  levels_.clear();
  final_forests_.clear();

  const std::size_t n = base.size();
  Rng rng(config_.seed);

  // Training-side concepts accumulate per sample across levels (OOB);
  // cached as a member so a later warm refit can reassemble any level's
  // matrix with old rows' concepts frozen at these fitted values.
  concept_rows_.assign(n, {});

  STAC_TRACE_SPAN(fit_span, "cascade.fit", "ml");
  fit_span.arg("samples", static_cast<std::uint64_t>(n));
  fit_span.arg("levels", static_cast<std::uint64_t>(config_.levels));

  for (std::size_t l = 0; l < config_.levels; ++l) {
    STAC_TRACE_SPAN(level_span, "cascade.level", "ml");
    level_span.arg("level", static_cast<std::uint64_t>(l));
    Level level;
    level.extra_grains = std::min(per_level_extra.size(), l + 1);

    // This level's training matrix: base + visible extras + accumulated
    // concepts (l levels seen so far → l * forests_per_level concepts).
    Matrix x = assemble_training_matrix(base, per_level_extra,
                                        level.extra_grains,
                                        l * config_.forests_per_level);
    Dataset level_data(std::move(x), base.targets());

    // Train the level's forests (alternating random / completely-random),
    // fanned out across the pool — the forests of one level are mutually
    // independent given the level's training matrix.
    train_forest_bank(level.forests, config_.forests_per_level, level_data,
                      rng, config_.parallel, [&](std::size_t f) {
                        ForestConfig fc;
                        fc.estimators = config_.estimators;
                        fc.split_mode = (f % 2 == 0)
                                            ? SplitMode::kSqrtFeatures
                                            : SplitMode::kCompletelyRandom;
                        fc.max_depth = config_.max_tree_depth;
                        fc.min_samples_leaf = config_.min_samples_leaf;
                        return fc;
                      });
    // Append this level's OOB concepts for the next level.
    for (std::size_t r = 0; r < n; ++r) {
      for (const auto& forest : level.forests)
        concept_rows_[r].push_back(forest.oob_predictions()[r]);
    }
    levels_.push_back(std::move(level));
  }

  // Closing bank: random forests over base + all extras + all concepts.
  {
    STAC_TRACE_SPAN(final_span, "cascade.final", "ml");
    Matrix x = assemble_training_matrix(base, per_level_extra,
                                        per_level_extra.size(),
                                        concept_rows_.front().size());
    Dataset final_data(std::move(x), base.targets());
    train_forest_bank(final_forests_, config_.final_forests, final_data, rng,
                      config_.parallel, [&](std::size_t) {
                        ForestConfig fc;
                        fc.estimators = config_.estimators;
                        fc.split_mode = SplitMode::kSqrtFeatures;
                        fc.max_depth = config_.max_tree_depth;
                        fc.min_samples_leaf = config_.min_samples_leaf;
                        return fc;
                      });
  }
  trained_rows_ = n;
  obs::count("ml.cascade_fits");
}

void CascadeForest::refit_incremental(
    const Dataset& base, const std::vector<Matrix>& per_level_extra,
    double retrain_fraction) {
  STAC_REQUIRE_MSG(trained(), "refit_incremental before fit");
  STAC_REQUIRE(!base.empty());
  STAC_REQUIRE_MSG(base.feature_count() == base_features_,
                   "base feature width changed under warm refit");
  const std::size_t n = base.size();
  const std::size_t old_n = trained_rows_;
  STAC_REQUIRE_MSG(n >= old_n, "warm refit requires a grown (or equal) dataset");
  for (const auto& m : per_level_extra)
    STAC_REQUIRE_MSG(m.rows() == n, "extra feature block row count mismatch");

  STAC_TRACE_SPAN(refit_span, "cascade.refit", "ml");
  refit_span.arg("samples", static_cast<std::uint64_t>(n));
  refit_span.arg("new_samples", static_cast<std::uint64_t>(n - old_n));

  // New rows start with empty concept vectors and accumulate level by
  // level; old rows keep their fitted concepts frozen (see header note).
  concept_rows_.resize(n);

  for (std::size_t l = 0; l < levels_.size(); ++l) {
    STAC_TRACE_SPAN(level_span, "cascade.refit_level", "ml");
    level_span.arg("level", static_cast<std::uint64_t>(l));
    Level& level = levels_[l];
    STAC_REQUIRE_MSG(per_level_extra.size() >= level.extra_grains,
                     "missing extra feature blocks at refit");
    Matrix x = assemble_training_matrix(base, per_level_extra,
                                        level.extra_grains,
                                        l * config_.forests_per_level);
    Dataset level_data(std::move(x), base.targets());
    refit_forest_bank(level.forests, level_data, config_.parallel,
                      retrain_fraction);
    for (std::size_t r = old_n; r < n; ++r) {
      for (const auto& forest : level.forests)
        concept_rows_[r].push_back(forest.oob_predictions()[r]);
    }
  }

  {
    STAC_TRACE_SPAN(final_span, "cascade.refit_final", "ml");
    Matrix x = assemble_training_matrix(
        base, per_level_extra, per_level_extra.size(),
        levels_.size() * config_.forests_per_level);
    Dataset final_data(std::move(x), base.targets());
    refit_forest_bank(final_forests_, final_data, config_.parallel,
                      retrain_fraction);
  }
  trained_rows_ = n;
  obs::count("ml.cascade_warm_refits");
}

std::vector<double> CascadeForest::level_input(
    std::size_t l, std::span<const double> x,
    const std::vector<std::vector<double>>& extra,
    const std::vector<double>& concepts_so_far) const {
  const Level& level = levels_[l];
  std::vector<double> input;
  input.reserve(x.size() + 64);
  input.insert(input.end(), x.begin(), x.end());
  STAC_REQUIRE_MSG(extra.size() >= level.extra_grains,
                   "missing extra feature blocks at inference");
  for (std::size_t g = 0; g < level.extra_grains; ++g)
    input.insert(input.end(), extra[g].begin(), extra[g].end());
  input.insert(input.end(), concepts_so_far.begin(), concepts_so_far.end());
  return input;
}

std::vector<double> CascadeForest::concepts(
    std::span<const double> x,
    const std::vector<std::vector<double>>& extra) const {
  STAC_REQUIRE_MSG(trained(), "concepts before fit");
  STAC_REQUIRE(x.size() == base_features_);
  std::vector<double> acc;
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const auto input = level_input(l, x, extra, acc);
    for (const auto& forest : levels_[l].forests)
      acc.push_back(forest.predict(input));
  }
  return acc;
}

double CascadeForest::predict(
    std::span<const double> x,
    const std::vector<std::vector<double>>& extra) const {
  STAC_REQUIRE_MSG(trained(), "predict before fit");
  const std::vector<double> acc = concepts(x, extra);

  // Closing bank sees base + every extra block + all concepts.
  std::vector<double> input;
  input.insert(input.end(), x.begin(), x.end());
  for (const auto& e : extra) input.insert(input.end(), e.begin(), e.end());
  input.insert(input.end(), acc.begin(), acc.end());

  double sum = 0.0;
  for (const auto& forest : final_forests_) sum += forest.predict(input);
  return sum / static_cast<double>(final_forests_.size());
}

}  // namespace stac::ml

// Ridge-regularized linear regression (ordinary least squares when the
// ridge term is ~0) — the paper's weakest comparator (Fig. 6: ~50% median
// error, p95 over 300%), included because its failure on non-linear
// queueing effects motivates the whole deep-learning stage.
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace stac::ml {

struct LinearConfig {
  double ridge = 1e-6;
  /// Standardize features to zero mean / unit variance before solving
  /// (recommended; keeps the normal equations well-conditioned).
  bool standardize = true;
};

class LinearRegression {
 public:
  explicit LinearRegression(LinearConfig config = {});

  void fit(const Dataset& data);

  [[nodiscard]] double predict(std::span<const double> x) const;
  [[nodiscard]] std::vector<double> predict(const Matrix& x) const;

  [[nodiscard]] bool trained() const { return !weights_.empty(); }
  [[nodiscard]] std::span<const double> weights() const { return weights_; }
  [[nodiscard]] double intercept() const { return intercept_; }

 private:
  LinearConfig config_;
  std::vector<double> weights_;
  std::vector<double> mean_, scale_;
  double intercept_ = 0.0;
};

}  // namespace stac::ml

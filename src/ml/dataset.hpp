// Tabular regression datasets: feature matrix + targets + names, with the
// split utilities the evaluation needs (the paper trains its model on 33%
// of profiles and competitors on 70%, and stresses K-fold cross-validation
// for generalization claims).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace stac::ml {

/// One profile training / inference sample: a counters-x-time profile
/// "image" plus tabular (static + dynamic condition) features.  Shared by
/// the deep forest and the CNN comparator.
struct ProfileSample {
  Matrix image;                 ///< counters x time (may be empty)
  std::vector<double> tabular;  ///< static + dynamic condition features
};

class Dataset {
 public:
  Dataset() = default;
  Dataset(Matrix features, std::vector<double> targets,
          std::vector<std::string> feature_names = {});

  [[nodiscard]] std::size_t size() const { return targets_.size(); }
  [[nodiscard]] std::size_t feature_count() const { return features_.cols(); }
  [[nodiscard]] bool empty() const { return targets_.empty(); }

  [[nodiscard]] const Matrix& features() const { return features_; }
  [[nodiscard]] const std::vector<double>& targets() const { return targets_; }
  [[nodiscard]] const std::vector<std::string>& feature_names() const {
    return names_;
  }

  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return features_.row(i);
  }
  [[nodiscard]] double target(std::size_t i) const { return targets_[i]; }

  /// Stride-1 view of feature column `f` (all rows), backed by a lazily
  /// built column-major copy of the features — the tree trainer's split
  /// scans walk columns, and the row-major matrix would stride by
  /// feature_count() per element.  The cache is built once per dataset
  /// (thread-safe: concurrent tree fits share one build) and *extended in
  /// place* by add_row: a span obtained before an append stays valid and
  /// bitwise-equal over the rows it covered — superseded buffers are
  /// retired, never freed, until the Dataset dies.
  [[nodiscard]] std::span<const double> column(std::size_t f) const;

  /// Append one sample.  If the column cache is live it is extended
  /// in place under the build lock (O(feature_count) amortized), not
  /// invalidated — the delta-append protocol the warm-start refit path
  /// relies on for cheap `Dataset` growth.
  void add_row(std::span<const double> x, double y);

  /// Subset by row indices.
  [[nodiscard]] Dataset subset(const std::vector<std::size_t>& rows) const;

  /// Random split: first element gets `train_fraction` of rows.
  [[nodiscard]] std::pair<Dataset, Dataset> split(double train_fraction,
                                                  Rng& rng) const;

  /// K-fold partition: returns (train, test) pairs, one per fold.
  [[nodiscard]] std::vector<std::pair<Dataset, Dataset>> kfold(std::size_t k,
                                                               Rng& rng) const;

  /// Append another dataset's columns (feature augmentation for cascades).
  /// Row counts must match; names are merged.
  [[nodiscard]] Dataset with_extra_features(const Matrix& extra) const;

 private:
  /// Column-major mirror of `features_`, one buffer per column so appends
  /// extend columns independently.  Publication protocol (all under
  /// build_mutex on the writer side):
  ///   1. values are appended to every column's buffer; a buffer that must
  ///      grow is replaced (old generation pushed onto `retired`, keeping
  ///      previously returned spans alive) and its pointer re-published;
  ///   2. `rows` is bumped last (release).
  /// Readers load `rows` first (acquire), then the column pointer: the
  /// pointer they see is at least as new as the row count, and any newer
  /// buffer still carries the identical prefix (columns are append-only).
  /// Copying or moving a Dataset drops the cache (rebuilt on demand) so the
  /// synchronization members never need to transfer.
  struct ColumnCache {
    ColumnCache() = default;
    ColumnCache(const ColumnCache&) {}
    ColumnCache& operator=(const ColumnCache&) {
      ready.store(false, std::memory_order_relaxed);
      cols.clear();
      retired.clear();
      ptrs.reset();
      rows.store(0, std::memory_order_relaxed);
      return *this;
    }

    mutable std::mutex build_mutex;
    /// Current storage, one vector per column.
    mutable std::vector<std::vector<double>> cols;
    /// Superseded column buffers, kept alive so old spans stay valid.
    mutable std::vector<std::vector<double>> retired;
    /// Published data pointer per column (readers never touch `cols`).
    mutable std::unique_ptr<std::atomic<const double*>[]> ptrs;
    /// Row count the published pointers are complete for.
    mutable std::atomic<std::size_t> rows{0};
    mutable std::atomic<bool> ready{false};
  };

  void build_column_cache_locked() const;

  Matrix features_;
  std::vector<double> targets_;
  std::vector<std::string> names_;
  ColumnCache col_cache_;
};

}  // namespace stac::ml

// Tabular regression datasets: feature matrix + targets + names, with the
// split utilities the evaluation needs (the paper trains its model on 33%
// of profiles and competitors on 70%, and stresses K-fold cross-validation
// for generalization claims).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace stac::ml {

/// One profile training / inference sample: a counters-x-time profile
/// "image" plus tabular (static + dynamic condition) features.  Shared by
/// the deep forest and the CNN comparator.
struct ProfileSample {
  Matrix image;                 ///< counters x time (may be empty)
  std::vector<double> tabular;  ///< static + dynamic condition features
};

class Dataset {
 public:
  Dataset() = default;
  Dataset(Matrix features, std::vector<double> targets,
          std::vector<std::string> feature_names = {});

  [[nodiscard]] std::size_t size() const { return targets_.size(); }
  [[nodiscard]] std::size_t feature_count() const { return features_.cols(); }
  [[nodiscard]] bool empty() const { return targets_.empty(); }

  [[nodiscard]] const Matrix& features() const { return features_; }
  [[nodiscard]] const std::vector<double>& targets() const { return targets_; }
  [[nodiscard]] const std::vector<std::string>& feature_names() const {
    return names_;
  }

  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return features_.row(i);
  }
  [[nodiscard]] double target(std::size_t i) const { return targets_[i]; }

  /// Stride-1 view of feature column `f` (all rows), backed by a lazily
  /// built column-major copy of the features — the tree trainer's split
  /// scans walk columns, and the row-major matrix would stride by
  /// feature_count() per element.  The cache is built once per dataset
  /// (thread-safe: concurrent tree fits share one build) and invalidated by
  /// add_row; the returned span is valid until then.
  [[nodiscard]] std::span<const double> column(std::size_t f) const;

  void add_row(std::span<const double> x, double y);

  /// Subset by row indices.
  [[nodiscard]] Dataset subset(const std::vector<std::size_t>& rows) const;

  /// Random split: first element gets `train_fraction` of rows.
  [[nodiscard]] std::pair<Dataset, Dataset> split(double train_fraction,
                                                  Rng& rng) const;

  /// K-fold partition: returns (train, test) pairs, one per fold.
  [[nodiscard]] std::vector<std::pair<Dataset, Dataset>> kfold(std::size_t k,
                                                               Rng& rng) const;

  /// Append another dataset's columns (feature augmentation for cascades).
  /// Row counts must match; names are merged.
  [[nodiscard]] Dataset with_extra_features(const Matrix& extra) const;

 private:
  /// Feature-major [f * rows + i] mirror of `features_`.  Copying or moving
  /// a Dataset drops the cache (rebuilt on demand) so the synchronization
  /// members never need to transfer.
  struct ColumnCache {
    ColumnCache() = default;
    ColumnCache(const ColumnCache&) {}
    ColumnCache& operator=(const ColumnCache&) {
      ready.store(false, std::memory_order_relaxed);
      data.clear();
      rows = 0;
      return *this;
    }

    mutable std::mutex build_mutex;
    mutable std::vector<double> data;
    /// Row count the cache was built for — span geometry must come from
    /// this snapshot, not a fresh size() read (see column()).
    mutable std::size_t rows = 0;
    mutable std::atomic<bool> ready{false};
  };

  Matrix features_;
  std::vector<double> targets_;
  std::vector<std::string> names_;
  ColumnCache col_cache_;
};

}  // namespace stac::ml

#include "ml/linear_regression.hpp"

#include <cmath>

#include "common/check.hpp"

namespace stac::ml {

LinearRegression::LinearRegression(LinearConfig config) : config_(config) {
  STAC_REQUIRE(config.ridge >= 0.0);
}

void LinearRegression::fit(const Dataset& data) {
  STAC_REQUIRE(!data.empty());
  const std::size_t n = data.size();
  const std::size_t f = data.feature_count();

  mean_.assign(f, 0.0);
  scale_.assign(f, 1.0);
  if (config_.standardize) {
    for (std::size_t r = 0; r < n; ++r) {
      const auto row = data.row(r);
      for (std::size_t c = 0; c < f; ++c) mean_[c] += row[c];
    }
    for (auto& m : mean_) m /= static_cast<double>(n);
    std::vector<double> var(f, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
      const auto row = data.row(r);
      for (std::size_t c = 0; c < f; ++c) {
        const double d = row[c] - mean_[c];
        var[c] += d * d;
      }
    }
    for (std::size_t c = 0; c < f; ++c) {
      const double sd = std::sqrt(var[c] / static_cast<double>(n));
      scale_[c] = sd > 1e-12 ? sd : 1.0;
    }
  }

  // Build standardized design matrix with intercept handled by centering y.
  Matrix x(n, f);
  double y_mean = 0.0;
  for (std::size_t r = 0; r < n; ++r) y_mean += data.target(r);
  y_mean /= static_cast<double>(n);

  for (std::size_t r = 0; r < n; ++r) {
    const auto row = data.row(r);
    auto dst = x.row(r);
    for (std::size_t c = 0; c < f; ++c)
      dst[c] = (row[c] - mean_[c]) / scale_[c];
  }

  // Normal equations: (X^T X + ridge I) w = X^T (y - y_mean).
  const Matrix gram = x.gram();
  std::vector<double> xty(f, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const double yc = data.target(r) - y_mean;
    const auto row = x.row(r);
    for (std::size_t c = 0; c < f; ++c) xty[c] += row[c] * yc;
  }
  const double ridge =
      std::max(config_.ridge, 1e-10) * static_cast<double>(n);
  weights_ = gram.cholesky_solve(xty, ridge);
  intercept_ = y_mean;
}

double LinearRegression::predict(std::span<const double> x) const {
  STAC_REQUIRE_MSG(trained(), "predict before fit");
  STAC_REQUIRE(x.size() == weights_.size());
  double y = intercept_;
  for (std::size_t c = 0; c < x.size(); ++c)
    y += weights_[c] * (x[c] - mean_[c]) / scale_[c];
  return y;
}

std::vector<double> LinearRegression::predict(const Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out.push_back(predict(x.row(r)));
  return out;
}

}  // namespace stac::ml

// A small convolutional regression network — the paper's CNN comparator
// (Figs. 5 and 6): one conv layer over the profile image, ReLU, a dense
// hidden layer with dropout, and a linear output, trained with Adam on MSE.
// Deliberately SGD-based and sensitive to initialization so that the
// run-to-run variability the paper reports (Fig. 5) is reproducible, and
// equipped with the random-search hyper-parameter tuner standing in for
// TUNE/PipeTune.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/dataset.hpp"

namespace stac::ml {

struct ConvNetConfig {
  std::size_t kernels = 8;
  std::size_t kernel_size = 3;
  std::size_t hidden = 64;
  /// Residual blocks after the hidden layer: h <- relu(W h + b) + h.
  /// The paper's stated future work ("residual and LSTM networks"); 0
  /// reproduces the plain CNN evaluated in Figs. 5/6.
  std::size_t residual_blocks = 0;
  std::size_t epochs = 120;
  std::size_t batch_size = 16;
  double learning_rate = 1e-3;
  double dropout = 0.1;
  std::uint64_t seed = 1;
};

class ConvNet {
 public:
  explicit ConvNet(ConvNetConfig config = {});

  /// Train on profile samples.  Targets and all inputs are standardized
  /// internally.  Returns the final training MSE (standardized units).
  double fit(const std::vector<ProfileSample>& samples,
             const std::vector<double>& targets);

  [[nodiscard]] double predict(const ProfileSample& sample) const;

  [[nodiscard]] bool trained() const { return !dense1_w_.empty(); }
  [[nodiscard]] const ConvNetConfig& config() const { return config_; }

 private:
  struct Forward;  // activations for one sample (defined in .cpp)

  [[nodiscard]] std::vector<double> standardize(
      const ProfileSample& sample) const;

  ConvNetConfig config_;
  // Geometry.
  std::size_t img_rows_ = 0, img_cols_ = 0, tab_ = 0;
  std::size_t out_rows_ = 0, out_cols_ = 0;
  std::size_t flat_ = 0;  ///< conv output + tabular width
  // Input / target standardization.
  std::vector<double> in_mean_, in_scale_;
  double y_mean_ = 0.0, y_scale_ = 1.0;
  // Parameters.
  std::vector<double> conv_w_, conv_b_;      ///< kernels x (k*k), kernels
  std::vector<double> dense1_w_, dense1_b_;  ///< hidden x flat, hidden
  std::vector<std::vector<double>> res_w_;   ///< per block: hidden x hidden
  std::vector<std::vector<double>> res_b_;   ///< per block: hidden
  std::vector<double> out_w_;                ///< hidden
  double out_b_ = 0.0;
};

/// Random-search hyper-parameter tuning (the paper uses TUNE with epoch,
/// batch size, learning rate, neuron count and drop rate — same axes).
struct TuneResult {
  ConvNetConfig best;
  double best_validation_mae = 0.0;
  std::size_t trials = 0;
};
[[nodiscard]] TuneResult tune_convnet(
    const std::vector<ProfileSample>& train_x,
    const std::vector<double>& train_y,
    const std::vector<ProfileSample>& val_x, const std::vector<double>& val_y,
    std::size_t trials, std::uint64_t seed);

}  // namespace stac::ml

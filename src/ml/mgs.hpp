// Multi-grain scanning (gcForest's representational-learning stage, §4.1).
//
// The profile "image" (counters x time samples) is scanned with square
// sliding windows; each window patch is an instance for a small random
// forest whose per-patch predictions become new, spatially-derived
// features.  Window sizes that do not fit the image are skipped (the paper
// lists 5x5..35x35 for its larger layout).  Counter ordering matters: the
// Fig. 7c ablation shows shuffling rows (destroying spatial locality)
// triples the error — callers control row order.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "ml/random_forest.hpp"

namespace stac::ml {

struct MgsConfig {
  std::vector<std::size_t> window_sizes{5, 10, 15};
  std::size_t stride = 1;
  /// Forest per window size (the paper: 1 forest, 50 estimators each).
  std::size_t estimators = 30;
  std::size_t max_tree_depth = 8;  ///< patches are tiny; cap depth
  std::size_t min_samples_leaf = 8;
  /// Cap on window instances used to train each kernel forest (subsampled
  /// uniformly when the scan produces more; keeps training tractable).
  std::size_t max_training_instances = 15'000;
  std::uint64_t seed = 1;
};

class MultiGrainScanner {
 public:
  explicit MultiGrainScanner(MgsConfig config = {});

  /// Train the kernel forests.  All images must share one geometry.
  void fit(const std::vector<Matrix>& images,
           const std::vector<double>& targets);

  /// Number of window sizes that fit the trained geometry.
  [[nodiscard]] std::size_t grain_count() const { return grains_.size(); }
  /// Transformed feature count for grain g (patch positions).
  [[nodiscard]] std::size_t feature_count(std::size_t g) const;
  /// Window size of grain g.
  [[nodiscard]] std::size_t window_size(std::size_t g) const;

  /// Per-grain transformed features for one image.
  [[nodiscard]] std::vector<std::vector<double>> transform(
      const Matrix& image) const;

  [[nodiscard]] bool trained() const { return !grains_.empty(); }

 private:
  struct Grain {
    std::size_t window = 0;
    std::size_t positions_r = 0;
    std::size_t positions_c = 0;
    RandomForest forest;
  };

  void extract_patch(const Matrix& image, std::size_t r0, std::size_t c0,
                     std::size_t w, std::vector<double>& out) const;

  MgsConfig config_;
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<Grain> grains_;
};

}  // namespace stac::ml

#include "ml/random_forest.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace stac::ml {

RandomForest::RandomForest(ForestConfig config) : config_(config) {
  STAC_REQUIRE(config.estimators >= 1);
  STAC_REQUIRE(config.bootstrap_fraction > 0.0 &&
               config.bootstrap_fraction <= 1.0);
}

void RandomForest::fit(const Dataset& data) {
  STAC_REQUIRE(!data.empty());
  const std::size_t n = data.size();
  const auto sample_n = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.bootstrap_fraction *
                                  static_cast<double>(n)));

  trees_.assign(config_.estimators, DecisionTree{});
  bags_.assign(config_.estimators, {});
  refit_round_ = 0;

  auto train_one = [&](std::size_t t) {
    Rng rng(config_.seed * 0x9E3779B97F4A7C15ULL + t * 1000003ULL + 17);
    std::vector<std::size_t> rows(sample_n);
    for (auto& r : rows)
      r = static_cast<std::size_t>(rng.uniform_index(n));
    TreeConfig tc;
    tc.split_mode = config_.split_mode;
    tc.max_depth = config_.max_depth;
    tc.min_samples_leaf = config_.min_samples_leaf;
    tc.seed = rng.next_u64();
    trees_[t] = DecisionTree(tc);
    trees_[t].fit(data, rows);
    bags_[t] = std::move(rows);
  };

  if (config_.parallel && config_.estimators > 1) {
    ThreadPool::global().parallel_for(0, config_.estimators, train_one);
  } else {
    for (std::size_t t = 0; t < config_.estimators; ++t) train_one(t);
  }

  trained_rows_ = n;
  compile_flat();
  compute_oob(data);
}

void RandomForest::refit_incremental(const Dataset& data,
                                     double retrain_fraction) {
  STAC_REQUIRE_MSG(trained(), "refit_incremental before fit");
  STAC_REQUIRE(!data.empty());
  STAC_REQUIRE_MSG(data.size() >= trained_rows_,
                   "warm refit requires a grown (or equal) dataset");
  STAC_REQUIRE(retrain_fraction > 0.0 && retrain_fraction <= 1.0);
  const std::size_t n = data.size();
  const auto sample_n = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.bootstrap_fraction *
                                  static_cast<double>(n)));
  const std::size_t estimators = trees_.size();
  const auto retrain = std::min<std::size_t>(
      estimators,
      std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::ceil(retrain_fraction * static_cast<double>(estimators)))));

  // Deterministic round-robin window: round r retrains slots
  // [r*retrain, r*retrain + retrain) mod estimators, so successive refits
  // cycle through the whole forest and no tree goes stale forever.
  const std::uint64_t round = refit_round_++;
  const std::size_t start =
      static_cast<std::size_t>((round * retrain) % estimators);

  auto train_one = [&](std::size_t i) {
    const std::size_t t = (start + i) % estimators;
    // A refit-round-salted stream: distinct from the full-fit seeds so a
    // retrained slot draws a fresh bag, yet fully deterministic given
    // (seed, slot, round).
    Rng rng(config_.seed * 0x9E3779B97F4A7C15ULL + t * 1000003ULL +
            (round + 1) * 0xD1B54A32D192ED03ULL + 17);
    std::vector<std::size_t> rows(sample_n);
    for (auto& r : rows)
      r = static_cast<std::size_t>(rng.uniform_index(n));
    TreeConfig tc;
    tc.split_mode = config_.split_mode;
    tc.max_depth = config_.max_depth;
    tc.min_samples_leaf = config_.min_samples_leaf;
    tc.seed = rng.next_u64();
    trees_[t] = DecisionTree(tc);
    trees_[t].fit(data, rows);
    bags_[t] = std::move(rows);
  };

  if (config_.parallel && retrain > 1) {
    ThreadPool::global().parallel_for(0, retrain, train_one);
  } else {
    for (std::size_t i = 0; i < retrain; ++i) train_one(i);
  }

  trained_rows_ = n;
  compile_flat();
  // Full OOB recompute: untouched trees keep their old bags, so every
  // appended row is out-of-bag for them and contributes honestly.
  compute_oob(data);
  obs::count("ml.forest_warm_refits");
}

void RandomForest::compile_flat() {
  if (config_.flatten)
    flat_.compile(trees_);
  else
    flat_.clear();
}

void RandomForest::compute_oob(const Dataset& data) {
  const std::size_t n = data.size();
  std::vector<double> sum(n, 0.0);
  std::vector<std::size_t> cnt(n, 0);
  std::vector<char> in_bag(n);
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    std::fill(in_bag.begin(), in_bag.end(), 0);
    for (std::size_t r : bags_[t]) in_bag[r] = 1;
    for (std::size_t r = 0; r < n; ++r) {
      if (!in_bag[r]) {
        sum[r] += trees_[t].predict(data.row(r));
        ++cnt[r];
      }
    }
  }
  oob_.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    oob_[r] = cnt[r] > 0 ? sum[r] / static_cast<double>(cnt[r])
                         : predict(data.row(r));
  }
}

double RandomForest::predict(std::span<const double> x) const {
  STAC_REQUIRE_MSG(trained(), "predict before fit");
  if (flat_.compiled()) return flat_.predict(x);
  double sum = 0.0;
  for (const auto& t : trees_) sum += t.predict(x);
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::predict(const Matrix& x) const {
  STAC_REQUIRE_MSG(trained(), "predict before fit");
  std::vector<double> out(x.rows(), 0.0);
  if (flat_.compiled()) {
    flat_.predict_batch(x, out);
    return out;
  }
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict(x.row(r));
  return out;
}

const std::vector<double>& RandomForest::oob_predictions() const {
  STAC_REQUIRE_MSG(trained(), "OOB before fit");
  return oob_;
}

std::vector<double> RandomForest::feature_importance() const {
  STAC_REQUIRE(trained());
  std::vector<double> total;
  for (const auto& t : trees_) {
    const auto imp = t.feature_importance();
    if (total.empty()) total.assign(imp.size(), 0.0);
    for (std::size_t f = 0; f < imp.size(); ++f) total[f] += imp[f];
  }
  for (auto& v : total) v /= static_cast<double>(trees_.size());
  return total;
}

}  // namespace stac::ml

#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace stac::ml {

namespace {

struct SplitCandidate {
  bool found = false;
  std::uint32_t feature = 0;
  double threshold = 0.0;
  double gain = 0.0;
  /// Samples on the left side (presorted path: the split feature's sorted
  /// prefix length, which pins the partition point without re-scanning).
  std::size_t left_count = 0;
};

/// Sum and sum-of-squares over a row subset for one pass variance.
struct Moments {
  double sum = 0.0;
  double sum2 = 0.0;
  std::size_t n = 0;
  void add(double v) {
    sum += v;
    sum2 += v * v;
    ++n;
  }
  [[nodiscard]] double sse() const {
    if (n == 0) return 0.0;
    return sum2 - sum * sum / static_cast<double>(n);
  }
  [[nodiscard]] double mean() const {
    return n ? sum / static_cast<double>(n) : 0.0;
  }
};

}  // namespace

/// State of the presorted build: every feature's sample order, established
/// by one sort per fit and maintained through stable partitions so each
/// node's split sweep is a stride-1 pass over already-sorted values.
/// "Slots" index the (possibly duplicated) bootstrap sample, not dataset
/// rows: slot s stands for dataset row work[s].
struct DecisionTree::PresortContext {
  std::size_t n = 0;         ///< sample (slot) count
  std::size_t features = 0;  ///< feature count
  std::vector<double> target;  ///< target[slot]
  /// features x n: order[f*n + i] is the slot with the i-th smallest value
  /// of feature f within the node ranges currently partitioning the array.
  std::vector<std::uint32_t> order;
  /// features x n: values[f*n + i] mirrors order (stride-1 sweep reads).
  std::vector<double> values;
  /// Node slots in bootstrap order (stable partitions preserve it).  Node
  /// moments accumulate over this order so leaf values are bitwise equal
  /// to the legacy per-node-sort path.
  std::vector<std::uint32_t> slots;
  std::vector<char> goes_left;          ///< per-slot partition flag
  std::vector<std::uint32_t> tmp_order;  ///< stable-partition spill
  std::vector<double> tmp_values;
};

DecisionTree::DecisionTree(TreeConfig config) : config_(config) {}

void DecisionTree::fit(const Dataset& data, std::span<const std::size_t> rows) {
  STAC_REQUIRE(!data.empty());
  STAC_TRACE_SPAN(span, "tree.fit", "ml");
  span.arg("rows", static_cast<std::uint64_t>(rows.empty() ? data.size()
                                                           : rows.size()));
  feature_count_ = data.feature_count();
  nodes_.clear();
  std::vector<std::size_t> work(rows.begin(), rows.end());
  if (work.empty()) {
    work.resize(data.size());
    std::iota(work.begin(), work.end(), 0);
  }
  Rng rng(config_.seed);

  if (config_.presort && config_.split_mode != SplitMode::kCompletelyRandom) {
    const std::size_t n = work.size();
    PresortContext ctx;
    ctx.n = n;
    ctx.features = feature_count_;
    ctx.target.resize(n);
    for (std::size_t s = 0; s < n; ++s) ctx.target[s] = data.target(work[s]);
    ctx.order.resize(feature_count_ * n);
    ctx.values.resize(feature_count_ * n);
    ctx.slots.resize(n);
    std::iota(ctx.slots.begin(), ctx.slots.end(), 0);
    ctx.goes_left.resize(n);
    ctx.tmp_order.resize(n);
    ctx.tmp_values.resize(n);
    // One sort per feature per fit; ties ordered by slot so the layout is
    // deterministic.  Column-major reads make the gather stride-1.
    std::vector<std::pair<double, std::uint32_t>> keyed(n);
    for (std::size_t f = 0; f < feature_count_; ++f) {
      const auto col = data.column(f);
      for (std::size_t s = 0; s < n; ++s)
        keyed[s] = {col[work[s]], static_cast<std::uint32_t>(s)};
      std::sort(keyed.begin(), keyed.end());
      for (std::size_t i = 0; i < n; ++i) {
        ctx.order[f * n + i] = keyed[i].second;
        ctx.values[f * n + i] = keyed[i].first;
      }
    }
    build_presorted(ctx, 0, n, 0, rng);
    return;
  }
  build(data, work, 0, work.size(), 0, rng);
}

std::int32_t DecisionTree::build_presorted(PresortContext& ctx,
                                           std::size_t begin, std::size_t end,
                                           std::size_t depth, Rng& rng) {
  const std::size_t n = end - begin;
  STAC_REQUIRE(n > 0);

  // Accumulate in bootstrap order (ctx.slots), matching the legacy path's
  // row order bit for bit.
  Moments all;
  for (std::size_t i = begin; i < end; ++i)
    all.add(ctx.target[ctx.slots[i]]);

  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<std::size_t>(node_id)].value = all.mean();

  const bool depth_ok = config_.max_depth == 0 || depth < config_.max_depth;
  const bool pure = all.sse() <= 1e-12;
  if (!depth_ok || pure || n < config_.min_samples_split) return node_id;

  std::vector<std::size_t> candidates;
  if (config_.split_mode == SplitMode::kAllFeatures) {
    candidates.resize(feature_count_);
    std::iota(candidates.begin(), candidates.end(), 0);
  } else {  // kSqrtFeatures (kCompletelyRandom never reaches this path)
    const auto k = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::sqrt(static_cast<double>(feature_count_))));
    candidates = rng.sample_indices(feature_count_, k);
  }

  SplitCandidate best;
  for (std::size_t f : candidates) {
    const double* vals = ctx.values.data() + f * ctx.n + begin;
    const std::uint32_t* ord = ctx.order.data() + f * ctx.n + begin;
    if (vals[0] == vals[n - 1]) continue;  // constant feature here
    Moments left;
    Moments right = all;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double t = ctx.target[ord[i]];
      left.add(t);
      right.sum -= t;
      right.sum2 -= t * t;
      --right.n;
      if (vals[i] == vals[i + 1]) continue;  // no cut between ties
      if (left.n < config_.min_samples_leaf ||
          right.n < config_.min_samples_leaf)
        continue;
      const double gain = all.sse() - left.sse() - right.sse();
      if (!best.found || gain > best.gain) {
        best.found = true;
        best.feature = static_cast<std::uint32_t>(f);
        best.threshold = 0.5 * (vals[i] + vals[i + 1]);
        best.gain = gain;
        best.left_count = i + 1;
      }
    }
  }

  if (!best.found || best.gain <= 0.0) return node_id;

  // The split feature's segment is sorted, so the left side is its sorted
  // prefix.  Start from the sweep's cut position but fix up by threshold:
  // the midpoint of two adjacent doubles can round up onto the right
  // neighbour, and predict-time routing (as well as the legacy partition)
  // sends value == threshold left.
  std::size_t mid = begin + best.left_count;
  {
    const double* bvals = ctx.values.data() + best.feature * ctx.n;
    while (mid < end && bvals[mid] <= best.threshold) ++mid;
  }
  if (mid == begin || mid == end) return node_id;  // degenerate partition
  {
    const std::uint32_t* bord = ctx.order.data() + best.feature * ctx.n;
    for (std::size_t i = begin; i < mid; ++i) ctx.goes_left[bord[i]] = 1;
    for (std::size_t i = mid; i < end; ++i) ctx.goes_left[bord[i]] = 0;
  }
  {
    // Slot order partitions stably like the feature segments.
    std::uint32_t* sl = ctx.slots.data();
    std::size_t l = begin, spill = 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (ctx.goes_left[sl[i]]) sl[l++] = sl[i];
      else ctx.tmp_order[spill++] = sl[i];
    }
    std::copy_n(ctx.tmp_order.data(), spill, sl + l);
  }
  for (std::size_t f = 0; f < ctx.features; ++f) {
    std::uint32_t* ord = ctx.order.data() + f * ctx.n;
    double* vals = ctx.values.data() + f * ctx.n;
    std::size_t l = begin, spill = 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (ctx.goes_left[ord[i]]) {
        ord[l] = ord[i];
        vals[l] = vals[i];
        ++l;
      } else {
        ctx.tmp_order[spill] = ord[i];
        ctx.tmp_values[spill] = vals[i];
        ++spill;
      }
    }
    std::copy_n(ctx.tmp_order.data(), spill, ord + l);
    std::copy_n(ctx.tmp_values.data(), spill, vals + l);
  }

  nodes_[static_cast<std::size_t>(node_id)].feature = best.feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best.threshold;
  nodes_[static_cast<std::size_t>(node_id)].gain = best.gain;
  const std::int32_t left = build_presorted(ctx, begin, mid, depth + 1, rng);
  const std::int32_t right = build_presorted(ctx, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

std::int32_t DecisionTree::build(const Dataset& data,
                                 std::vector<std::size_t>& rows,
                                 std::size_t begin, std::size_t end,
                                 std::size_t depth, Rng& rng) {
  const std::size_t n = end - begin;
  STAC_REQUIRE(n > 0);

  Moments all;
  for (std::size_t i = begin; i < end; ++i) all.add(data.target(rows[i]));

  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<std::size_t>(node_id)].value = all.mean();

  const bool depth_ok = config_.max_depth == 0 || depth < config_.max_depth;
  const bool pure = all.sse() <= 1e-12;
  if (!depth_ok || pure || n < config_.min_samples_split) return node_id;

  // Candidate features by mode.
  std::vector<std::size_t> candidates;
  switch (config_.split_mode) {
    case SplitMode::kAllFeatures:
      candidates.resize(feature_count_);
      std::iota(candidates.begin(), candidates.end(), 0);
      break;
    case SplitMode::kSqrtFeatures: {
      const auto k = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::sqrt(static_cast<double>(feature_count_))));
      candidates = rng.sample_indices(feature_count_, k);
      break;
    }
    case SplitMode::kCompletelyRandom:
      // Try a handful of random features until one is splittable.
      candidates = rng.sample_indices(
          feature_count_, std::min<std::size_t>(feature_count_, 8));
      break;
  }

  SplitCandidate best;
  if (config_.split_mode == SplitMode::kCompletelyRandom) {
    // Random feature, random threshold between observed min and max.
    for (std::size_t f : candidates) {
      const auto col = data.column(f);  // stride-1 scans
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (std::size_t i = begin; i < end; ++i) {
        const double v = col[rows[i]];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      if (hi <= lo) continue;  // constant feature here
      const double thr = rng.uniform(lo, hi);
      // Both sides' moments in a single pass over the rows (gain is
      // bookkeeping only, not used for selection).
      Moments left, right;
      for (std::size_t i = begin; i < end; ++i) {
        (col[rows[i]] <= thr ? left : right).add(data.target(rows[i]));
      }
      if (left.n == 0 || left.n == n) continue;
      best.found = true;
      best.feature = static_cast<std::uint32_t>(f);
      best.threshold = thr;
      best.gain = all.sse() - left.sse() - right.sse();
      break;
    }
  } else {
    // Exhaustive threshold search per candidate feature (sorted sweep).
    std::vector<std::pair<double, double>> fv(n);  // (feature value, target)
    for (std::size_t f : candidates) {
      for (std::size_t i = begin; i < end; ++i) {
        fv[i - begin] = {data.row(rows[i])[f], data.target(rows[i])};
      }
      std::sort(fv.begin(), fv.end());
      if (fv.front().first == fv.back().first) continue;
      Moments left;
      Moments right = all;
      for (std::size_t i = 0; i + 1 < n; ++i) {
        left.add(fv[i].second);
        right.sum -= fv[i].second;
        right.sum2 -= fv[i].second * fv[i].second;
        --right.n;
        if (fv[i].first == fv[i + 1].first) continue;  // no cut between ties
        if (left.n < config_.min_samples_leaf ||
            right.n < config_.min_samples_leaf)
          continue;
        const double gain = all.sse() - left.sse() - right.sse();
        if (!best.found || gain > best.gain) {
          best.found = true;
          best.feature = static_cast<std::uint32_t>(f);
          best.threshold = 0.5 * (fv[i].first + fv[i + 1].first);
          best.gain = gain;
        }
      }
    }
  }

  if (!best.found || best.gain <= 0.0) return node_id;

  // Partition rows in place around the threshold.  Stable, so child row
  // order (and thus FP accumulation order) matches the presorted path.
  const auto split_col = data.column(best.feature);
  const auto mid = static_cast<std::size_t>(
      std::stable_partition(rows.begin() + static_cast<std::ptrdiff_t>(begin),
                            rows.begin() + static_cast<std::ptrdiff_t>(end),
                            [&](std::size_t r) {
                              return split_col[r] <= best.threshold;
                            }) -
      rows.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate partition

  nodes_[static_cast<std::size_t>(node_id)].feature = best.feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best.threshold;
  nodes_[static_cast<std::size_t>(node_id)].gain = best.gain;
  const std::int32_t left = build(data, rows, begin, mid, depth + 1, rng);
  const std::int32_t right = build(data, rows, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

double DecisionTree::predict(std::span<const double> x) const {
  STAC_REQUIRE_MSG(trained(), "predict before fit");
  STAC_REQUIRE(x.size() == feature_count_);
  std::size_t node = 0;
  for (;;) {
    const Node& nd = nodes_[node];
    if (nd.left < 0) return nd.value;
    node = static_cast<std::size_t>(x[nd.feature] <= nd.threshold ? nd.left
                                                                  : nd.right);
  }
}

std::vector<double> DecisionTree::predict(const Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out.push_back(predict(x.row(r)));
  return out;
}

std::size_t DecisionTree::depth() const {
  // Iterative depth computation over the implicit tree.
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  std::size_t best = 0;
  while (!stack.empty()) {
    const auto [node, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const Node& nd = nodes_[node];
    if (nd.left >= 0) {
      stack.emplace_back(static_cast<std::size_t>(nd.left), d + 1);
      stack.emplace_back(static_cast<std::size_t>(nd.right), d + 1);
    }
  }
  return best;
}

std::vector<double> DecisionTree::feature_importance() const {
  std::vector<double> imp(feature_count_, 0.0);
  for (const Node& nd : nodes_)
    if (nd.left >= 0) imp[nd.feature] += nd.gain;
  return imp;
}

}  // namespace stac::ml

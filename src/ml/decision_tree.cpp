#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.hpp"

namespace stac::ml {

namespace {

struct SplitCandidate {
  bool found = false;
  std::uint32_t feature = 0;
  double threshold = 0.0;
  double gain = 0.0;
};

/// Sum and sum-of-squares over a row subset for one pass variance.
struct Moments {
  double sum = 0.0;
  double sum2 = 0.0;
  std::size_t n = 0;
  void add(double v) {
    sum += v;
    sum2 += v * v;
    ++n;
  }
  [[nodiscard]] double sse() const {
    if (n == 0) return 0.0;
    return sum2 - sum * sum / static_cast<double>(n);
  }
  [[nodiscard]] double mean() const {
    return n ? sum / static_cast<double>(n) : 0.0;
  }
};

}  // namespace

DecisionTree::DecisionTree(TreeConfig config) : config_(config) {}

void DecisionTree::fit(const Dataset& data, std::span<const std::size_t> rows) {
  STAC_REQUIRE(!data.empty());
  feature_count_ = data.feature_count();
  nodes_.clear();
  std::vector<std::size_t> work(rows.begin(), rows.end());
  if (work.empty()) {
    work.resize(data.size());
    std::iota(work.begin(), work.end(), 0);
  }
  Rng rng(config_.seed);
  build(data, work, 0, work.size(), 0, rng);
}

std::int32_t DecisionTree::build(const Dataset& data,
                                 std::vector<std::size_t>& rows,
                                 std::size_t begin, std::size_t end,
                                 std::size_t depth, Rng& rng) {
  const std::size_t n = end - begin;
  STAC_REQUIRE(n > 0);

  Moments all;
  for (std::size_t i = begin; i < end; ++i) all.add(data.target(rows[i]));

  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<std::size_t>(node_id)].value = all.mean();

  const bool depth_ok = config_.max_depth == 0 || depth < config_.max_depth;
  const bool pure = all.sse() <= 1e-12;
  if (!depth_ok || pure || n < config_.min_samples_split) return node_id;

  // Candidate features by mode.
  std::vector<std::size_t> candidates;
  switch (config_.split_mode) {
    case SplitMode::kAllFeatures:
      candidates.resize(feature_count_);
      std::iota(candidates.begin(), candidates.end(), 0);
      break;
    case SplitMode::kSqrtFeatures: {
      const auto k = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::sqrt(static_cast<double>(feature_count_))));
      candidates = rng.sample_indices(feature_count_, k);
      break;
    }
    case SplitMode::kCompletelyRandom:
      // Try a handful of random features until one is splittable.
      candidates = rng.sample_indices(
          feature_count_, std::min<std::size_t>(feature_count_, 8));
      break;
  }

  SplitCandidate best;
  if (config_.split_mode == SplitMode::kCompletelyRandom) {
    // Random feature, random threshold between observed min and max.
    for (std::size_t f : candidates) {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (std::size_t i = begin; i < end; ++i) {
        const double v = data.row(rows[i])[f];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      if (hi <= lo) continue;  // constant feature here
      const double thr = rng.uniform(lo, hi);
      // Compute gain for bookkeeping (not used for selection).
      Moments left;
      for (std::size_t i = begin; i < end; ++i) {
        const double v = data.row(rows[i])[f];
        if (v <= thr) left.add(data.target(rows[i]));
      }
      if (left.n == 0 || left.n == n) continue;
      Moments right;
      for (std::size_t i = begin; i < end; ++i) {
        const double v = data.row(rows[i])[f];
        if (v > thr) right.add(data.target(rows[i]));
      }
      best.found = true;
      best.feature = static_cast<std::uint32_t>(f);
      best.threshold = thr;
      best.gain = all.sse() - left.sse() - right.sse();
      break;
    }
  } else {
    // Exhaustive threshold search per candidate feature (sorted sweep).
    std::vector<std::pair<double, double>> fv(n);  // (feature value, target)
    for (std::size_t f : candidates) {
      for (std::size_t i = begin; i < end; ++i) {
        fv[i - begin] = {data.row(rows[i])[f], data.target(rows[i])};
      }
      std::sort(fv.begin(), fv.end());
      if (fv.front().first == fv.back().first) continue;
      Moments left;
      Moments right = all;
      for (std::size_t i = 0; i + 1 < n; ++i) {
        left.add(fv[i].second);
        right.sum -= fv[i].second;
        right.sum2 -= fv[i].second * fv[i].second;
        --right.n;
        if (fv[i].first == fv[i + 1].first) continue;  // no cut between ties
        if (left.n < config_.min_samples_leaf ||
            right.n < config_.min_samples_leaf)
          continue;
        const double gain = all.sse() - left.sse() - right.sse();
        if (!best.found || gain > best.gain) {
          best.found = true;
          best.feature = static_cast<std::uint32_t>(f);
          best.threshold = 0.5 * (fv[i].first + fv[i + 1].first);
          best.gain = gain;
        }
      }
    }
  }

  if (!best.found || best.gain <= 0.0) return node_id;

  // Partition rows in place around the threshold.
  const auto mid = static_cast<std::size_t>(
      std::partition(rows.begin() + static_cast<std::ptrdiff_t>(begin),
                     rows.begin() + static_cast<std::ptrdiff_t>(end),
                     [&](std::size_t r) {
                       return data.row(r)[best.feature] <= best.threshold;
                     }) -
      rows.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate partition

  nodes_[static_cast<std::size_t>(node_id)].feature = best.feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best.threshold;
  nodes_[static_cast<std::size_t>(node_id)].gain = best.gain;
  const std::int32_t left = build(data, rows, begin, mid, depth + 1, rng);
  const std::int32_t right = build(data, rows, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

double DecisionTree::predict(std::span<const double> x) const {
  STAC_REQUIRE_MSG(trained(), "predict before fit");
  STAC_REQUIRE(x.size() == feature_count_);
  std::size_t node = 0;
  for (;;) {
    const Node& nd = nodes_[node];
    if (nd.left < 0) return nd.value;
    node = static_cast<std::size_t>(x[nd.feature] <= nd.threshold ? nd.left
                                                                  : nd.right);
  }
}

std::vector<double> DecisionTree::predict(const Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out.push_back(predict(x.row(r)));
  return out;
}

std::size_t DecisionTree::depth() const {
  // Iterative depth computation over the implicit tree.
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  std::size_t best = 0;
  while (!stack.empty()) {
    const auto [node, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const Node& nd = nodes_[node];
    if (nd.left >= 0) {
      stack.emplace_back(static_cast<std::size_t>(nd.left), d + 1);
      stack.emplace_back(static_cast<std::size_t>(nd.right), d + 1);
    }
  }
  return best;
}

std::vector<double> DecisionTree::feature_importance() const {
  std::vector<double> imp(feature_count_, 0.0);
  for (const Node& nd : nodes_)
    if (nd.left >= 0) imp[nd.feature] += nd.gain;
  return imp;
}

}  // namespace stac::ml

// CART regression trees, the building block of every forest in the deep
// forest (§4.1): "random" trees choose the best split among sqrt(f)
// candidate features by impurity; "completely random" trees pick both the
// feature and the cut point at random and grow until leaves are pure —
// exactly the two tree types gcForest mixes for ensemble diversity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "ml/dataset.hpp"

namespace stac::ml {

enum class SplitMode : std::uint8_t {
  kAllFeatures,       ///< classic CART (single decision tree baseline)
  kSqrtFeatures,      ///< random-forest trees
  kCompletelyRandom,  ///< completely-random trees (random feature + cut)
};

struct TreeConfig {
  SplitMode split_mode = SplitMode::kSqrtFeatures;
  /// 0 = grow to purity (the gcForest setting); otherwise a depth cap.
  std::size_t max_depth = 0;
  std::size_t min_samples_leaf = 1;
  std::size_t min_samples_split = 2;
  std::uint64_t seed = 1;
  /// Exhaustive split modes: sort each feature once per fit and keep the
  /// per-feature order through in-place stable partitions (O(F·n) sweeps
  /// per level) instead of re-sorting every candidate at every node
  /// (O(F·n log n)).  false falls back to the per-node-sort path (kept as
  /// the benchmark baseline).  Ignored by kCompletelyRandom, which never
  /// sorts.
  bool presort = true;
};

class DecisionTree {
 public:
  /// One tree node in the contiguous `nodes()` array (node 0 is the root).
  /// Public so FlatForest can compile trained trees into its SoA arena.
  struct Node {
    std::int32_t left = -1;   ///< -1: leaf
    std::int32_t right = -1;
    std::uint32_t feature = 0;
    double threshold = 0.0;
    double value = 0.0;       ///< leaf prediction / node mean
    double gain = 0.0;        ///< impurity decrease at this split
  };

  explicit DecisionTree(TreeConfig config = {});

  /// Fit on the rows of `data` selected by `rows` (empty = all rows).
  void fit(const Dataset& data, std::span<const std::size_t> rows = {});

  [[nodiscard]] double predict(std::span<const double> x) const;
  [[nodiscard]] std::vector<double> predict(const Matrix& x) const;

  [[nodiscard]] bool trained() const { return !nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t depth() const;

  /// Total impurity decrease attributed to each feature (importance).
  [[nodiscard]] std::vector<double> feature_importance() const;

  /// The fitted node array (empty before fit).  predict() walks it with
  /// `x[nd.feature] <= nd.threshold ? left : right` — the exact semantics
  /// any flattened representation must reproduce bitwise.
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }

 private:
  std::int32_t build(const Dataset& data, std::vector<std::size_t>& rows,
                     std::size_t begin, std::size_t end, std::size_t depth,
                     Rng& rng);

  /// Presorted-feature-index build state (see decision_tree.cpp).
  struct PresortContext;
  std::int32_t build_presorted(PresortContext& ctx, std::size_t begin,
                               std::size_t end, std::size_t depth, Rng& rng);

  TreeConfig config_;
  std::size_t feature_count_ = 0;
  std::vector<Node> nodes_;
};

}  // namespace stac::ml

// gcForest cascade levels (§4.1 "Deep Forest Cascades").
//
// Each level is an ensemble of four forests — two random, two completely
// random, for diversity — whose *out-of-bag* training predictions are
// appended to the feature vector as "concepts" for the next level (OOB
// plays the role of gcForest's k-fold generation: concepts passed forward
// are honest, not memorized).  Levels can additionally inject per-level
// extra features (the multi-grain windows enter the cascade one grain at a
// time, per the paper's walkthrough).  The final level's predictions are
// averaged by a closing bank of forests.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/random_forest.hpp"

namespace stac::ml {

struct CascadeConfig {
  std::size_t levels = 4;
  std::size_t forests_per_level = 4;  ///< half random, half completely-random
  std::size_t estimators = 100;
  std::size_t max_tree_depth = 0;  ///< 0 = grow to purity
  std::size_t min_samples_leaf = 2;
  /// Closing bank averaged into the final prediction.
  std::size_t final_forests = 4;
  std::uint64_t seed = 1;
  /// Train the independent forests of each level (and the closing bank)
  /// concurrently on ThreadPool::global().  Every forest's seed is drawn
  /// serially before the fan-out and each forest trains into its own slot,
  /// so parallel and serial fits are bit-identical.  Forest-internal tree
  /// parallelism collapses to inline execution on pool workers (nested
  /// parallel_for rule), keeping the level fan-out the outer parallelism.
  bool parallel = true;
};

class CascadeForest {
 public:
  explicit CascadeForest(CascadeConfig config = {});

  /// `per_level_extra[l]`, if present, is appended to every sample's
  /// features from level l onward (row count must match `base`).
  void fit(const Dataset& base, const std::vector<Matrix>& per_level_extra = {});

  /// Warm-start refit over a grown dataset whose first trained_rows() rows
  /// (and their extra blocks) are unchanged.  Per level: the training
  /// matrix is reassembled from base + extras + the *cached* training-time
  /// concepts (old rows' concepts stay frozen at their fitted values — the
  /// warm-start contract that keeps untouched trees' training data
  /// consistent), each forest retrains only a round-robin tree subset
  /// (RandomForest::refit_incremental), and new rows append their OOB
  /// concepts to the cache.  Accuracy parity with a full fit is a tested
  /// RMSE contract (DESIGN.md §15), not an identity.
  void refit_incremental(const Dataset& base,
                         const std::vector<Matrix>& per_level_extra = {},
                         double retrain_fraction = 0.125);

  /// Predict one sample; `extra[l]` must mirror the training-time extras.
  [[nodiscard]] double predict(
      std::span<const double> x,
      const std::vector<std::vector<double>>& extra = {}) const;

  /// The concept vector (all levels' forest outputs) for one sample — the
  /// learned representation used for the §5.2 insight clustering.
  [[nodiscard]] std::vector<double> concepts(
      std::span<const double> x,
      const std::vector<std::vector<double>>& extra = {}) const;

  [[nodiscard]] bool trained() const { return !levels_.empty(); }
  [[nodiscard]] std::size_t level_count() const { return levels_.size(); }
  /// Rows of the dataset the cascade was last (re)fitted on.
  [[nodiscard]] std::size_t trained_rows() const { return trained_rows_; }

 private:
  struct Level {
    std::vector<RandomForest> forests;
    std::size_t extra_grains = 0;  ///< how many extra blocks are in view
  };

  /// Assemble the feature vector seen by level `l` for a sample.
  [[nodiscard]] std::vector<double> level_input(
      std::size_t l, std::span<const double> x,
      const std::vector<std::vector<double>>& extra,
      const std::vector<double>& concepts_so_far) const;

  /// Shared by fit (from scratch) and refit_incremental (frozen prefix):
  /// assemble the n-row training matrix a forest bank sees — base + the
  /// first `extra_blocks` extra matrices + the first `concept_width`
  /// entries of each cached concept row.
  [[nodiscard]] Matrix assemble_training_matrix(
      const Dataset& base, const std::vector<Matrix>& per_level_extra,
      std::size_t extra_blocks, std::size_t concept_width) const;

  CascadeConfig config_;
  std::vector<Level> levels_;
  std::vector<RandomForest> final_forests_;
  std::size_t base_features_ = 0;
  /// Training-time concept rows (OOB outputs, all levels), cached so a
  /// warm refit can reassemble level matrices without regenerating old
  /// rows' concepts.  concept_rows_[r] has levels * forests_per_level
  /// entries once fit; also the §5.2 insight-clustering representation.
  std::vector<std::vector<double>> concept_rows_;
  std::size_t trained_rows_ = 0;
};

}  // namespace stac::ml

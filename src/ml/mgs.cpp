#include "ml/mgs.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace stac::ml {

MultiGrainScanner::MultiGrainScanner(MgsConfig config)
    : config_(std::move(config)) {
  STAC_REQUIRE(!config_.window_sizes.empty());
  STAC_REQUIRE(config_.stride >= 1);
}

void MultiGrainScanner::extract_patch(const Matrix& image, std::size_t r0,
                                      std::size_t c0, std::size_t w,
                                      std::vector<double>& out) const {
  // `out` is a caller-held scratch buffer: after the first window of a
  // grain the resize is a no-op and the row copies reuse its storage, so
  // the scan allocates nothing per window.
  out.resize(w * w);
  double* dst = out.data();
  for (std::size_t r = 0; r < w; ++r) {
    const auto row = image.row(r0 + r);
    std::copy_n(row.data() + c0, w, dst);
    dst += w;
  }
}

void MultiGrainScanner::fit(const std::vector<Matrix>& images,
                            const std::vector<double>& targets) {
  STAC_REQUIRE(!images.empty());
  STAC_REQUIRE(images.size() == targets.size());
  rows_ = images.front().rows();
  cols_ = images.front().cols();
  for (const auto& im : images)
    STAC_REQUIRE_MSG(im.rows() == rows_ && im.cols() == cols_,
                     "all profile images must share one geometry");

  grains_.clear();
  Rng rng(config_.seed);
  std::vector<double> patch;
  for (std::size_t w : config_.window_sizes) {
    if (w > rows_ || w > cols_) continue;  // window does not fit: skip
    Grain g;
    g.window = w;
    g.positions_r = (rows_ - w) / config_.stride + 1;
    g.positions_c = (cols_ - w) / config_.stride + 1;
    const std::size_t per_image = g.positions_r * g.positions_c;
    const std::size_t total = per_image * images.size();

    // Subsample patch instances when the scan is too large to train on.
    const double keep =
        total <= config_.max_training_instances
            ? 1.0
            : static_cast<double>(config_.max_training_instances) /
                  static_cast<double>(total);

    // Draw the keep decisions up front (same stream order as the scan, so
    // results match a draw-in-loop implementation bit for bit) to size the
    // training matrix exactly: the scan then allocates once instead of
    // growing through thousands of append_row reallocations.
    std::vector<char> keep_mask;
    std::size_t kept = total;
    if (keep < 1.0) {
      keep_mask.resize(total);
      kept = 0;
      for (std::size_t t = 0; t < total; ++t) {
        keep_mask[t] = rng.bernoulli(keep) ? 1 : 0;
        kept += static_cast<std::size_t>(keep_mask[t]);
      }
    }

    Matrix x(0, w * w);
    x.reserve_rows(kept);
    std::vector<double> y;
    y.reserve(kept);
    std::size_t instance = 0;
    for (std::size_t i = 0; i < images.size(); ++i) {
      for (std::size_t pr = 0; pr < g.positions_r; ++pr) {
        for (std::size_t pc = 0; pc < g.positions_c; ++pc) {
          const bool take = keep_mask.empty() || keep_mask[instance] != 0;
          ++instance;
          if (!take) continue;
          extract_patch(images[i], pr * config_.stride, pc * config_.stride,
                        w, patch);
          x.append_row(patch);
          y.push_back(targets[i]);
        }
      }
    }
    STAC_ENSURE(!y.empty());

    ForestConfig fc;
    fc.estimators = config_.estimators;
    fc.split_mode = SplitMode::kSqrtFeatures;
    fc.max_depth = config_.max_tree_depth;
    fc.min_samples_leaf = config_.min_samples_leaf;
    fc.seed = rng.next_u64();
    g.forest = RandomForest(fc);
    g.forest.fit(Dataset(std::move(x), std::move(y)));
    grains_.push_back(std::move(g));
  }
  STAC_REQUIRE_MSG(!grains_.empty(),
                   "no MGS window size fits a " << rows_ << "x" << cols_
                                                << " profile image");
}

std::size_t MultiGrainScanner::feature_count(std::size_t g) const {
  STAC_REQUIRE(g < grains_.size());
  return grains_[g].positions_r * grains_[g].positions_c;
}

std::size_t MultiGrainScanner::window_size(std::size_t g) const {
  STAC_REQUIRE(g < grains_.size());
  return grains_[g].window;
}

std::vector<std::vector<double>> MultiGrainScanner::transform(
    const Matrix& image) const {
  STAC_REQUIRE_MSG(trained(), "transform before fit");
  STAC_REQUIRE(image.rows() == rows_ && image.cols() == cols_);
  std::vector<std::vector<double>> out;
  out.reserve(grains_.size());
  std::vector<double> patch;
  for (const Grain& g : grains_) {
    std::vector<double> feats;
    feats.reserve(g.positions_r * g.positions_c);
    for (std::size_t pr = 0; pr < g.positions_r; ++pr) {
      for (std::size_t pc = 0; pc < g.positions_c; ++pc) {
        extract_patch(image, pr * config_.stride, pc * config_.stride,
                      g.window, patch);
        feats.push_back(g.forest.predict(patch));
      }
    }
    out.push_back(std::move(feats));
  }
  return out;
}

}  // namespace stac::ml

#include "cat/schemata.hpp"

#include <cctype>
#include <sstream>

#include "common/check.hpp"

namespace stac::cat {

namespace {

WayMask parse_hex_mask(std::string_view token) {
  STAC_REQUIRE_MSG(!token.empty(), "empty capacity bitmask");
  WayMask mask = 0;
  for (char ch : token) {
    const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    WayMask digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<WayMask>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<WayMask>(c - 'a' + 10);
    } else {
      STAC_REQUIRE_MSG(false, "invalid hex digit '" << ch << "' in schemata");
    }
    STAC_REQUIRE_MSG((mask & 0xF0000000u) == 0, "capacity bitmask overflows 32 bits");
    mask = (mask << 4) | digit;
  }
  return mask;
}

}  // namespace

Schemata parse_schemata(std::string_view line) {
  const std::size_t colon = line.find(':');
  STAC_REQUIRE_MSG(colon != std::string_view::npos,
                   "schemata line missing ':' — got \"" << line << "\"");
  Schemata out;
  out.resource = std::string(line.substr(0, colon));
  STAC_REQUIRE_MSG(!out.resource.empty(), "schemata line missing resource");

  std::string_view rest = line.substr(colon + 1);
  STAC_REQUIRE_MSG(!rest.empty(), "schemata line has no domains");
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string_view pair =
        semi == std::string_view::npos ? rest : rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);

    const std::size_t eq = pair.find('=');
    STAC_REQUIRE_MSG(eq != std::string_view::npos,
                     "schemata domain missing '=' in \"" << pair << "\"");
    SchemataEntry entry;
    {
      const std::string dom(pair.substr(0, eq));
      STAC_REQUIRE_MSG(!dom.empty() &&
                           dom.find_first_not_of("0123456789") ==
                               std::string::npos,
                       "bad domain id \"" << dom << "\"");
      entry.domain = static_cast<std::uint32_t>(std::stoul(dom));
    }
    entry.mask = parse_hex_mask(pair.substr(eq + 1));
    STAC_REQUIRE_MSG(mask_contiguous(entry.mask),
                     "non-contiguous capacity bitmask 0x" << std::hex
                                                          << entry.mask);
    out.entries.push_back(entry);
  }
  return out;
}

std::string format_schemata(const Schemata& schemata) {
  STAC_REQUIRE(!schemata.entries.empty());
  std::ostringstream os;
  os << schemata.resource << ':';
  for (std::size_t i = 0; i < schemata.entries.size(); ++i) {
    if (i) os << ';';
    os << schemata.entries[i].domain << '=' << std::hex
       << schemata.entries[i].mask;
  }
  return os.str();
}

std::string allocation_to_schemata(const Allocation& allocation,
                                   std::uint32_t domain,
                                   std::string_view resource) {
  STAC_REQUIRE_MSG(!allocation.empty(),
                   "cannot express an empty allocation as a CBM");
  Schemata s;
  s.resource = std::string(resource);
  s.entries.push_back({domain, allocation.mask()});
  return format_schemata(s);
}

Allocation schemata_to_allocation(const Schemata& schemata,
                                  std::uint32_t domain) {
  for (const auto& entry : schemata.entries) {
    if (entry.domain == domain) return allocation_from_mask(entry.mask);
  }
  STAC_REQUIRE_MSG(false, "domain " << domain << " not present in schemata");
  return {};
}

std::vector<std::string> plan_to_schemata(const AllocationPlan& plan,
                                          bool boosted,
                                          std::uint32_t domain) {
  std::vector<std::string> out;
  out.reserve(plan.workload_count());
  for (std::size_t w = 0; w < plan.workload_count(); ++w) {
    const Allocation& a =
        boosted ? plan.policy(w).boosted : plan.policy(w).dflt;
    out.push_back(allocation_to_schemata(a, domain));
  }
  return out;
}

}  // namespace stac::cat

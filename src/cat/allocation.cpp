#include "cat/allocation.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/check.hpp"

namespace stac::cat {

bool Allocation::overlaps(const Allocation& other) const {
  if (empty() || other.empty()) return false;
  return offset < other.end() && other.offset < end();
}

Allocation Allocation::intersect(const Allocation& other) const {
  const std::uint32_t lo = std::max(offset, other.offset);
  const std::uint32_t hi = std::min(end(), other.end());
  if (hi <= lo) return Allocation{0, 0};
  return Allocation{lo, hi - lo};
}

bool Allocation::subset_of(const Allocation& other) const {
  if (empty()) return true;
  return offset >= other.offset && end() <= other.end();
}

WayMask Allocation::mask() const {
  STAC_REQUIRE(end() <= 32);
  if (length == 0) return 0;
  const WayMask run =
      length >= 32 ? ~WayMask{0} : ((WayMask{1} << length) - 1);
  return run << offset;
}

std::string Allocation::to_string() const {
  std::ostringstream os;
  os << "[" << offset << "," << end() << ")";
  return os.str();
}

bool allocation_valid(const Allocation& a, std::uint32_t total_ways) {
  return a.length >= 1 && a.end() <= total_ways;
}

Allocation allocation_from_mask(WayMask mask) {
  STAC_REQUIRE_MSG(mask_contiguous(mask), "CAT masks must be contiguous");
  const auto offset = static_cast<std::uint32_t>(std::countr_zero(mask));
  const auto length = static_cast<std::uint32_t>(std::popcount(mask));
  return Allocation{offset, length};
}

bool mask_contiguous(WayMask mask) {
  if (mask == 0) return false;
  const WayMask shifted = mask >> std::countr_zero(mask);
  // A contiguous run shifted down is 2^k - 1, i.e. (x & (x+1)) == 0.
  return (shifted & (shifted + 1)) == 0;
}

}  // namespace stac::cat

// pqos-like software interface to the simulated CAT hardware.
//
// Mirrors the shape of Intel's pqos library / Linux resctrl: define classes
// of service (COS) as contiguous capacity masks, associate workloads with a
// COS, and re-associate at runtime.  The paper's proxy services use exactly
// this interface: each workload gets a default COS and a short-term COS and
// the proxy flips between them when the STAP timeout fires (§4).
//
// Resilient control plane: COS writes go through the "cat.apply" fault
// point and are retried with exponential backoff (retry.hpp).  A write that
// stays failed past the retry budget *degrades* the workload — it is
// reverted to its default COS via the last-known-good programming path and
// marked so callers can stop promising boosts — instead of killing the run.
// A grant watchdog (poll_watchdog) force-revokes any boost whose lease
// outlives `max_boost_lease`, so a leaked refcount can never pin shared
// ways forever.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/cache_hierarchy.hpp"
#include "cat/stap.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"

namespace stac::cat {

using cachesim::CacheHierarchy;
using cachesim::ClassId;

/// Knobs for the controller's failure handling.  The defaults keep the
/// happy path identical to the pre-resilience controller: without an armed
/// FaultInjector no retry or degradation logic is ever exercised.
struct CatResilienceConfig {
  RetryPolicy retry{.max_attempts = 3,
                    .initial_backoff = 0.25,
                    .backoff_multiplier = 2.0,
                    .max_backoff = 4.0,
                    .jitter_fraction = 0.1,
                    .deadline = 16.0};
  /// Maximum boost lease duration in the caller's clock units; a boost older
  /// than this is force-revoked by poll_watchdog().  <= 0 disables.
  double max_boost_lease = 0.0;
  /// Jitter stream seed (kept local so controller retries never perturb the
  /// simulators' random streams).
  std::uint64_t seed = 0xCA7;
};

/// Failure/degradation accounting, queryable after a run or a test.
struct CatFaultStats {
  std::uint64_t write_failures = 0;    ///< individual COS writes that failed
  std::uint64_t write_retries = 0;     ///< backoff retries performed
  std::uint64_t degraded_reverts = 0;  ///< persistent failures → default COS
  std::uint64_t spurious_unboosts = 0; ///< unboost() calls at refcount zero
  std::uint64_t watchdog_revocations = 0;  ///< leases force-revoked
};

class CatController {
 public:
  /// Binds to a hierarchy and installs one (default COS, short-term COS)
  /// pair per workload from the plan.  Workload w maps to hardware class w.
  CatController(CacheHierarchy& hierarchy, const AllocationPlan& plan,
                CatResilienceConfig resilience = {});

  [[nodiscard]] std::size_t workload_count() const { return staps_.size(); }

  /// Currently-applied allocation for the workload.
  [[nodiscard]] const Allocation& current_allocation(std::size_t w) const;
  [[nodiscard]] bool is_boosted(std::size_t w) const;

  /// Switch workload w to its short-term (boosted) COS.  Idempotent.
  /// Note the paper's §4 simplification: "if multiple queries were
  /// outstanding for the same online service, all had access to short-term
  /// cache" — boost is per-workload, not per-query, with a refcount so the
  /// class stays boosted until every outstanding boosted query completes.
  /// `now` stamps the lease for the grant watchdog (callers without a clock
  /// may leave it 0).  A degraded workload ignores boosts until
  /// clear_degraded().
  void boost(std::size_t w, double now = 0.0);
  /// Release one boost reference; reverts to the default COS at zero.
  /// Calling at refcount zero is a counted no-op (leaked-unboost tolerant),
  /// not UB — see fault_stats().spurious_unboosts.
  void unboost(std::size_t w);
  /// Force-revert regardless of refcount (experiment teardown).
  void reset_boost(std::size_t w);
  /// Drain every outstanding boost reference on every workload via the
  /// counted unboost path (refcounts reach zero, classes revert to their
  /// default COS).  Returns the number of references released.  The
  /// reconciliation primitive for control-plane restarts and fleet shard
  /// leave: grants whose proxies no longer exist must not outlive them.
  std::size_t release_all_boosts();

  /// Grant watchdog: force-revoke every boost whose lease started more than
  /// max_boost_lease clock units before `now`.  Returns the number revoked.
  /// No-op when max_boost_lease <= 0.
  std::size_t poll_watchdog(double now);

  /// True after a persistent COS-write failure reverted the workload to its
  /// default COS; boosts are ignored until cleared.
  [[nodiscard]] bool degraded(std::size_t w) const;
  /// Re-admit a degraded workload to boosting (operator/recovery action).
  void clear_degraded(std::size_t w);

  /// Total COS switches performed (the runtime overhead the paper keeps low
  /// by batching outstanding queries onto one switch).
  [[nodiscard]] std::uint64_t switch_count() const { return switches_; }

  [[nodiscard]] const CatFaultStats& fault_stats() const { return faults_; }

  /// LLC occupancy of the workload in lines (CMT-style monitoring).
  [[nodiscard]] std::size_t occupancy(std::size_t w) const;

  [[nodiscard]] const AllocationPlan& plan() const { return plan_; }

 private:
  void apply(std::size_t w);
  /// Last-known-good revert path: programs the default COS directly,
  /// bypassing the fault point (resctrl keeps the default schemata
  /// resident; reverting is a deterministic register restore).
  void revert_to_default(std::size_t w);

  CacheHierarchy& hierarchy_;
  AllocationPlan plan_;
  CatResilienceConfig resilience_;
  std::vector<PolicyAllocations> staps_;
  std::vector<std::uint32_t> boost_refs_;
  std::vector<double> lease_start_;
  std::vector<bool> degraded_;
  std::uint64_t switches_ = 0;
  CatFaultStats faults_;
  Rng rng_;
  std::uint64_t apply_ops_ = 0;  ///< fault-key ordinal for cat.apply
};

}  // namespace stac::cat

// pqos-like software interface to the simulated CAT hardware.
//
// Mirrors the shape of Intel's pqos library / Linux resctrl: define classes
// of service (COS) as contiguous capacity masks, associate workloads with a
// COS, and re-associate at runtime.  The paper's proxy services use exactly
// this interface: each workload gets a default COS and a short-term COS and
// the proxy flips between them when the STAP timeout fires (§4).
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/cache_hierarchy.hpp"
#include "cat/stap.hpp"

namespace stac::cat {

using cachesim::CacheHierarchy;
using cachesim::ClassId;

class CatController {
 public:
  /// Binds to a hierarchy and installs one (default COS, short-term COS)
  /// pair per workload from the plan.  Workload w maps to hardware class w.
  CatController(CacheHierarchy& hierarchy, const AllocationPlan& plan);

  [[nodiscard]] std::size_t workload_count() const { return staps_.size(); }

  /// Currently-applied allocation for the workload.
  [[nodiscard]] const Allocation& current_allocation(std::size_t w) const;
  [[nodiscard]] bool is_boosted(std::size_t w) const;

  /// Switch workload w to its short-term (boosted) COS.  Idempotent.
  /// Note the paper's §4 simplification: "if multiple queries were
  /// outstanding for the same online service, all had access to short-term
  /// cache" — boost is per-workload, not per-query, with a refcount so the
  /// class stays boosted until every outstanding boosted query completes.
  void boost(std::size_t w);
  /// Release one boost reference; reverts to the default COS at zero.
  void unboost(std::size_t w);
  /// Force-revert regardless of refcount (experiment teardown).
  void reset_boost(std::size_t w);

  /// Total COS switches performed (the runtime overhead the paper keeps low
  /// by batching outstanding queries onto one switch).
  [[nodiscard]] std::uint64_t switch_count() const { return switches_; }

  /// LLC occupancy of the workload in lines (CMT-style monitoring).
  [[nodiscard]] std::size_t occupancy(std::size_t w) const;

  [[nodiscard]] const AllocationPlan& plan() const { return plan_; }

 private:
  void apply(std::size_t w);

  CacheHierarchy& hierarchy_;
  AllocationPlan plan_;
  std::vector<PolicyAllocations> staps_;
  std::vector<std::uint32_t> boost_refs_;
  std::uint64_t switches_ = 0;
};

}  // namespace stac::cat

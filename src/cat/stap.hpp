// Short-term allocation policy (STAP): the paper's (a, a', t) triple.
//
// The timeout is expressed relative to the workload's expected service time
// (Eq. 4: responsetime / exp.servicetime > T triggers the switch), matching
// Table 2's studied range of 0% (always boosted) to 600% (never boosted).
#pragma once

#include "cat/allocation_plan.hpp"
#include "common/check.hpp"

namespace stac::cat {

/// Relative timeout at or above which the policy never boosts (Table 2's
/// "600% — never use short-term allocation").
inline constexpr double kNeverBoostTimeout = 6.0;

struct Stap {
  PolicyAllocations allocations;  ///< (a, a')
  /// Timeout T as a fraction of expected service time; 0 = always boost.
  double timeout_rel = kNeverBoostTimeout;

  /// Eq. 4: should a query whose current sojourn time (queueing + elapsed
  /// service) is `sojourn` be boosted, given the workload's expected service
  /// time?
  [[nodiscard]] bool should_boost(double sojourn,
                                  double expected_service) const {
    if (timeout_rel >= kNeverBoostTimeout) return false;
    return sojourn > timeout_rel * expected_service;
  }

  /// Never-boost policy over the given allocations.
  [[nodiscard]] static Stap never(PolicyAllocations a) {
    return Stap{a, kNeverBoostTimeout};
  }
  /// Always-boost policy (timeout 0%).
  [[nodiscard]] static Stap always(PolicyAllocations a) {
    return Stap{a, 0.0};
  }

  /// Gross increase in allocation while boosted: l_a' / l_a (the EA
  /// denominator in Eq. 3).
  [[nodiscard]] double allocation_ratio() const {
    return static_cast<double>(allocations.boosted.length) /
           static_cast<double>(allocations.dflt.length);
  }
};

/// A STAP per collocated workload — the vector of timeouts the paper's
/// policy explorer searches over.
using StapVector = std::vector<Stap>;

/// Build a StapVector from a plan plus per-workload timeouts.
[[nodiscard]] inline StapVector make_stap_vector(
    const AllocationPlan& plan, const std::vector<double>& timeouts) {
  STAC_REQUIRE(timeouts.size() == plan.workload_count());
  StapVector out;
  out.reserve(timeouts.size());
  for (std::size_t w = 0; w < timeouts.size(); ++w)
    out.push_back(Stap{plan.policy(w), timeouts[w]});
  return out;
}

}  // namespace stac::cat

// Linux resctrl "schemata" interoperability.
//
// On real hardware, CAT classes of service are programmed by writing lines
// like "L3:0=7ff0;1=000f" into /sys/fs/resctrl/<group>/schemata — one
// domain=capacity-bitmask pair per cache domain.  This module converts
// between that textual format and the library's Allocation / AllocationPlan
// types, so a policy found with the simulator can be applied verbatim to a
// resctrl system (and existing resctrl configurations can be imported for
// analysis).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cat/allocation_plan.hpp"

namespace stac::cat {

/// One cache domain's capacity bitmask within a schemata line.
struct SchemataEntry {
  std::uint32_t domain = 0;
  WayMask mask = 0;

  [[nodiscard]] bool operator==(const SchemataEntry&) const = default;
};

/// A parsed schemata line, e.g. "L3:0=7ff0;1=000f".
struct Schemata {
  std::string resource = "L3";
  std::vector<SchemataEntry> entries;

  [[nodiscard]] bool operator==(const Schemata&) const = default;
};

/// Parse one schemata line.  Enforces the hardware rules: hex masks,
/// non-empty, contiguous bits (CAT rejects non-contiguous CBMs).
[[nodiscard]] Schemata parse_schemata(std::string_view line);

/// Render a schemata line ("L3:0=7ff0;1=000f").
[[nodiscard]] std::string format_schemata(const Schemata& schemata);

/// Schemata line programming `allocation` on a single cache domain.
[[nodiscard]] std::string allocation_to_schemata(const Allocation& allocation,
                                                 std::uint32_t domain = 0,
                                                 std::string_view resource =
                                                     "L3");

/// Extract the allocation programmed for `domain`; throws if the domain is
/// absent or its mask is non-contiguous.
[[nodiscard]] Allocation schemata_to_allocation(const Schemata& schemata,
                                                std::uint32_t domain = 0);

/// Render a whole plan as resctrl group schemata: element w is the line
/// for workload w's group, using the default or the boosted setting.
[[nodiscard]] std::vector<std::string> plan_to_schemata(
    const AllocationPlan& plan, bool boosted, std::uint32_t domain = 0);

}  // namespace stac::cat

#include "cat/allocation_plan.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace stac::cat {

AllocationPlan::AllocationPlan(std::uint32_t total_ways,
                               std::vector<PolicyAllocations> policies)
    : total_ways_(total_ways), policies_(std::move(policies)) {
  STAC_REQUIRE(total_ways_ >= 1 && total_ways_ <= 32);
  STAC_REQUIRE(!policies_.empty());
}

const PolicyAllocations& AllocationPlan::policy(std::size_t w) const {
  STAC_REQUIRE(w < policies_.size());
  return policies_[w];
}

std::vector<std::uint32_t> AllocationPlan::private_ways(std::size_t w) const {
  STAC_REQUIRE(w < policies_.size());
  const PolicyAllocations& p = policies_[w];
  std::vector<std::uint32_t> out;
  for (std::uint32_t v = 0; v < total_ways_; ++v) {
    // Equation 1: v inside both of w's settings...
    if (!p.dflt.contains(v) || !p.boosted.contains(v)) continue;
    // ...and outside every other workload's settings.
    bool exposed = false;
    for (std::size_t o = 0; o < policies_.size() && !exposed; ++o) {
      if (o == w) continue;
      if (policies_[o].dflt.contains(v) || policies_[o].boosted.contains(v))
        exposed = true;
    }
    if (!exposed) out.push_back(v);
  }
  return out;
}

std::vector<std::uint32_t> AllocationPlan::shared_ways(std::size_t w) const {
  STAC_REQUIRE(w < policies_.size());
  const PolicyAllocations& p = policies_[w];
  std::vector<std::uint32_t> out;
  for (std::uint32_t v = p.boosted.offset; v < p.boosted.end(); ++v) {
    for (std::size_t o = 0; o < policies_.size(); ++o) {
      if (o == w) continue;
      if (policies_[o].dflt.contains(v) || policies_[o].boosted.contains(v)) {
        out.push_back(v);
        break;
      }
    }
  }
  return out;
}

std::vector<std::size_t> AllocationPlan::sharers_of(std::size_t w) const {
  STAC_REQUIRE(w < policies_.size());
  const Allocation& b = policies_[w].boosted;
  std::vector<std::size_t> out;
  for (std::size_t o = 0; o < policies_.size(); ++o) {
    if (o == w) continue;
    if (b.overlaps(policies_[o].dflt) || b.overlaps(policies_[o].boosted))
      out.push_back(o);
  }
  return out;
}

bool AllocationPlan::private_regions_disjoint() const {
  // Conjecture 1 (strengthened per the paper's proof): each private region
  // is a contiguous interval, and the regions of distinct workloads neither
  // overlap nor interleave.
  std::vector<std::vector<std::uint32_t>> privates(policies_.size());
  for (std::size_t w = 0; w < policies_.size(); ++w) {
    privates[w] = private_ways(w);
    // Contiguity of each private region.
    for (std::size_t i = 1; i < privates[w].size(); ++i)
      if (privates[w][i] != privates[w][i - 1] + 1) return false;
  }
  for (std::size_t a = 0; a < policies_.size(); ++a) {
    for (std::size_t b = a + 1; b < policies_.size(); ++b) {
      if (privates[a].empty() || privates[b].empty()) continue;
      const std::uint32_t a_lo = privates[a].front(), a_hi = privates[a].back();
      const std::uint32_t b_lo = privates[b].front(), b_hi = privates[b].back();
      const bool a_before_b = a_hi < b_lo;
      const bool b_before_a = b_hi < a_lo;
      if (!a_before_b && !b_before_a) return false;  // overlap or interleave
    }
  }
  return true;
}

bool AllocationPlan::sharing_degree_at_most_two() const {
  for (std::size_t w = 0; w < policies_.size(); ++w)
    if (sharers_of(w).size() > 2) return false;
  return true;
}

bool AllocationPlan::all_have_private() const {
  for (std::size_t w = 0; w < policies_.size(); ++w)
    if (private_ways(w).empty()) return false;
  return true;
}

bool AllocationPlan::valid() const {
  for (const auto& p : policies_) {
    if (!allocation_valid(p.dflt, total_ways_)) return false;
    if (!allocation_valid(p.boosted, total_ways_)) return false;
    if (!p.dflt.subset_of(p.boosted)) return false;
  }
  return true;
}

std::string AllocationPlan::to_string() const {
  std::ostringstream os;
  os << "plan{" << total_ways_ << " ways";
  for (std::size_t w = 0; w < policies_.size(); ++w) {
    os << "; w" << w << ": " << policies_[w].dflt.to_string() << "->"
       << policies_[w].boosted.to_string();
  }
  os << "}";
  return os.str();
}

AllocationPlan make_pair_plan(std::uint32_t total_ways,
                              std::uint32_t private_ways,
                              std::uint32_t shared_ways) {
  STAC_REQUIRE(private_ways >= 1);
  STAC_REQUIRE_MSG(2 * private_ways + shared_ways <= total_ways,
                   "pair plan does not fit in " << total_ways << " ways");
  std::vector<PolicyAllocations> ps(2);
  // w0: private [0, p), boosted reaches across the shared region.
  ps[0].dflt = {0, private_ways};
  ps[0].boosted = {0, private_ways + shared_ways};
  // w1: private [p+s, p+s+p), boosted reaches back across the shared region.
  ps[1].dflt = {private_ways + shared_ways, private_ways};
  ps[1].boosted = {private_ways, shared_ways + private_ways};
  return AllocationPlan(total_ways, std::move(ps));
}

AllocationPlan make_chain_plan(std::uint32_t total_ways, std::size_t workloads,
                               std::uint32_t private_ways,
                               std::uint32_t shared_ways) {
  STAC_REQUIRE(workloads >= 1);
  const std::uint32_t needed =
      static_cast<std::uint32_t>(workloads) * private_ways +
      static_cast<std::uint32_t>(workloads - 1) * shared_ways;
  STAC_REQUIRE_MSG(needed <= total_ways,
                   "chain plan needs " << needed << " of " << total_ways
                                       << " ways");
  std::vector<PolicyAllocations> ps(workloads);
  std::uint32_t cursor = 0;
  for (std::size_t w = 0; w < workloads; ++w) {
    const bool has_left = w > 0;
    const bool has_right = w + 1 < workloads;
    ps[w].dflt = {cursor, private_ways};
    const std::uint32_t b_off = has_left ? cursor - shared_ways : cursor;
    const std::uint32_t b_len = private_ways +
                                (has_left ? shared_ways : 0) +
                                (has_right ? shared_ways : 0);
    ps[w].boosted = {b_off, b_len};
    cursor += private_ways + shared_ways;
  }
  return AllocationPlan(total_ways, std::move(ps));
}

namespace {
/// All (dflt, boosted) contiguous pairs with dflt subset of boosted.
std::vector<PolicyAllocations> enumerate_policies(std::uint32_t ways) {
  std::vector<PolicyAllocations> out;
  for (std::uint32_t bo = 0; bo < ways; ++bo) {
    for (std::uint32_t bl = 1; bo + bl <= ways; ++bl) {
      for (std::uint32_t off = bo; off < bo + bl; ++off) {
        for (std::uint32_t len = 1; off + len <= bo + bl; ++len) {
          out.push_back(PolicyAllocations{{off, len}, {bo, bl}});
        }
      }
    }
  }
  return out;
}
}  // namespace

ConjectureSearchResult search_conjecture_counterexamples(
    std::uint32_t total_ways, std::size_t workloads) {
  STAC_REQUIRE_MSG(total_ways <= 8 && workloads <= 3,
                   "exhaustive search is exponential; keep it small");
  const auto options = enumerate_policies(total_ways);
  ConjectureSearchResult result;

  std::vector<std::size_t> pick(workloads, 0);
  std::vector<PolicyAllocations> current(workloads);
  for (;;) {
    for (std::size_t w = 0; w < workloads; ++w) current[w] = options[pick[w]];
    AllocationPlan plan(total_ways, current);
    ++result.plans_examined;
    // The conjecture premise: every policy retains private cache.
    if (plan.all_have_private()) {
      if (!result.conjecture1_counterexample && !plan.private_regions_disjoint())
        result.conjecture1_counterexample = plan;
      if (!result.conjecture2_counterexample &&
          !plan.sharing_degree_at_most_two())
        result.conjecture2_counterexample = plan;
      if (result.conjecture1_counterexample &&
          result.conjecture2_counterexample)
        return result;
    }
    // Odometer increment.
    std::size_t w = 0;
    while (w < workloads && ++pick[w] == options.size()) {
      pick[w] = 0;
      ++w;
    }
    if (w == workloads) break;
  }
  return result;
}

}  // namespace stac::cat

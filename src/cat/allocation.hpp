// Contiguous cache-way allocations, the unit Intel CAT works in.
//
// CAT capacity bitmasks must be contiguous runs of set bits (Intel SDM
// vol. 3 §17.19.4.2); we therefore represent an allocation setting as an
// (offset, length) pair exactly as §2 of the paper does, and derive the
// bitmask from it.  The §2 conjectures about private/shared structure are
// implemented over this representation in allocation_plan.hpp.
#pragma once

#include <cstdint>
#include <string>

#include "cachesim/cache_level.hpp"

namespace stac::cat {

using cachesim::WayMask;

/// A contiguous allocation setting (o_a, l_a): ways [offset, offset+length).
struct Allocation {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;

  [[nodiscard]] std::uint32_t end() const { return offset + length; }
  [[nodiscard]] bool empty() const { return length == 0; }
  [[nodiscard]] bool contains(std::uint32_t way) const {
    return way >= offset && way < end();
  }
  /// True when the two allocations overlap in at least one way.
  [[nodiscard]] bool overlaps(const Allocation& other) const;
  /// Ways in both this and other, as a (possibly empty) allocation.
  [[nodiscard]] Allocation intersect(const Allocation& other) const;
  /// True when `other` covers every way of this allocation.
  [[nodiscard]] bool subset_of(const Allocation& other) const;
  /// The corresponding CAT capacity bitmask.
  [[nodiscard]] WayMask mask() const;

  [[nodiscard]] bool operator==(const Allocation&) const = default;
  [[nodiscard]] std::string to_string() const;
};

/// Validate against a processor's way count: non-empty, in range.  CAT
/// additionally requires a minimum of 1 way (some parts 2); we enforce >= 1.
[[nodiscard]] bool allocation_valid(const Allocation& a,
                                    std::uint32_t total_ways);

/// Parse back an allocation from a contiguous mask; throws if the mask is
/// not contiguous (hardware would reject the MSR write).
[[nodiscard]] Allocation allocation_from_mask(WayMask mask);

/// True when a mask is a single contiguous run of ones (hardware rule).
[[nodiscard]] bool mask_contiguous(WayMask mask);

}  // namespace stac::cat

#include "cat/cat_controller.hpp"

#include "common/check.hpp"

namespace stac::cat {

CatController::CatController(CacheHierarchy& hierarchy,
                             const AllocationPlan& plan)
    : hierarchy_(hierarchy), plan_(plan) {
  STAC_REQUIRE_MSG(plan.valid(), "invalid allocation plan: " << plan.to_string());
  STAC_REQUIRE_MSG(
      plan.total_ways() == hierarchy.config().llc.ways,
      "plan ways " << plan.total_ways() << " != LLC ways "
                   << hierarchy.config().llc.ways);
  STAC_REQUIRE(plan.workload_count() <= hierarchy.max_classes());
  staps_ = plan.policies();
  boost_refs_.assign(staps_.size(), 0);
  for (std::size_t w = 0; w < staps_.size(); ++w) apply(w);
  switches_ = 0;  // initial programming is configuration, not switching
}

const Allocation& CatController::current_allocation(std::size_t w) const {
  STAC_REQUIRE(w < staps_.size());
  return boost_refs_[w] > 0 ? staps_[w].boosted : staps_[w].dflt;
}

bool CatController::is_boosted(std::size_t w) const {
  STAC_REQUIRE(w < staps_.size());
  return boost_refs_[w] > 0;
}

void CatController::boost(std::size_t w) {
  STAC_REQUIRE(w < staps_.size());
  if (boost_refs_[w]++ == 0) apply(w);
}

void CatController::unboost(std::size_t w) {
  STAC_REQUIRE(w < staps_.size());
  STAC_REQUIRE_MSG(boost_refs_[w] > 0, "unboost without boost on w" << w);
  if (--boost_refs_[w] == 0) apply(w);
}

void CatController::reset_boost(std::size_t w) {
  STAC_REQUIRE(w < staps_.size());
  if (boost_refs_[w] != 0) {
    boost_refs_[w] = 0;
    apply(w);
  }
}

std::size_t CatController::occupancy(std::size_t w) const {
  STAC_REQUIRE(w < staps_.size());
  return hierarchy_.llc_occupancy(static_cast<ClassId>(w));
}

void CatController::apply(std::size_t w) {
  hierarchy_.set_llc_fill_mask(static_cast<ClassId>(w),
                               current_allocation(w).mask());
  ++switches_;
}

}  // namespace stac::cat

#include "cat/cat_controller.hpp"

#include "common/check.hpp"
#include "common/fault_injection.hpp"

namespace stac::cat {

CatController::CatController(CacheHierarchy& hierarchy,
                             const AllocationPlan& plan,
                             CatResilienceConfig resilience)
    : hierarchy_(hierarchy), plan_(plan), resilience_(resilience),
      rng_(resilience.seed) {
  STAC_REQUIRE_MSG(plan.valid(), "invalid allocation plan: " << plan.to_string());
  STAC_REQUIRE_MSG(
      plan.total_ways() == hierarchy.config().llc.ways,
      "plan ways " << plan.total_ways() << " != LLC ways "
                   << hierarchy.config().llc.ways);
  STAC_REQUIRE(plan.workload_count() <= hierarchy.max_classes());
  staps_ = plan.policies();
  boost_refs_.assign(staps_.size(), 0);
  lease_start_.assign(staps_.size(), 0.0);
  degraded_.assign(staps_.size(), false);
  for (std::size_t w = 0; w < staps_.size(); ++w) apply(w);
  switches_ = 0;  // initial programming is configuration, not switching
}

const Allocation& CatController::current_allocation(std::size_t w) const {
  STAC_REQUIRE_MSG(w < staps_.size(), "current_allocation: workload " << w
                                          << " out of range (have "
                                          << staps_.size() << ")");
  return boost_refs_[w] > 0 ? staps_[w].boosted : staps_[w].dflt;
}

bool CatController::is_boosted(std::size_t w) const {
  STAC_REQUIRE_MSG(w < staps_.size(), "is_boosted: workload " << w
                                          << " out of range (have "
                                          << staps_.size() << ")");
  return boost_refs_[w] > 0;
}

bool CatController::degraded(std::size_t w) const {
  STAC_REQUIRE_MSG(w < staps_.size(), "degraded: workload " << w
                                          << " out of range (have "
                                          << staps_.size() << ")");
  return degraded_[w];
}

void CatController::clear_degraded(std::size_t w) {
  STAC_REQUIRE_MSG(w < staps_.size(), "clear_degraded: workload " << w
                                          << " out of range (have "
                                          << staps_.size() << ")");
  degraded_[w] = false;
}

void CatController::boost(std::size_t w, double now) {
  STAC_REQUIRE_MSG(w < staps_.size(), "boost: workload " << w
                                          << " out of range (have "
                                          << staps_.size() << ")");
  if (degraded_[w]) return;  // boosting suspended until recovery
  if (boost_refs_[w]++ == 0) {
    lease_start_[w] = now;
    apply(w);
  }
}

void CatController::unboost(std::size_t w) {
  STAC_REQUIRE_MSG(w < staps_.size(), "unboost: workload " << w
                                          << " out of range (have "
                                          << staps_.size() << ")");
  if (boost_refs_[w] == 0) {
    // Tolerated (a watchdog revocation or degradation may already have
    // cleared the refcount under the caller); counted, never UB.
    ++faults_.spurious_unboosts;
    return;
  }
  if (--boost_refs_[w] == 0) apply(w);
}

void CatController::reset_boost(std::size_t w) {
  STAC_REQUIRE_MSG(w < staps_.size(), "reset_boost: workload " << w
                                          << " out of range (have "
                                          << staps_.size() << ")");
  if (boost_refs_[w] != 0) {
    boost_refs_[w] = 0;
    apply(w);
  }
}

std::size_t CatController::release_all_boosts() {
  std::size_t released = 0;
  for (std::size_t w = 0; w < staps_.size(); ++w) {
    while (is_boosted(w)) {
      unboost(w);
      ++released;
    }
  }
  return released;
}

std::size_t CatController::poll_watchdog(double now) {
  if (resilience_.max_boost_lease <= 0.0) return 0;
  std::size_t revoked = 0;
  for (std::size_t w = 0; w < staps_.size(); ++w) {
    if (boost_refs_[w] == 0) continue;
    if (now - lease_start_[w] <= resilience_.max_boost_lease) continue;
    boost_refs_[w] = 0;
    apply(w);
    ++faults_.watchdog_revocations;
    ++revoked;
  }
  return revoked;
}

std::size_t CatController::occupancy(std::size_t w) const {
  STAC_REQUIRE_MSG(w < staps_.size(), "occupancy: workload " << w
                                          << " out of range (have "
                                          << staps_.size() << ")");
  return hierarchy_.llc_occupancy(static_cast<ClassId>(w));
}

void CatController::revert_to_default(std::size_t w) {
  hierarchy_.set_llc_fill_mask(static_cast<ClassId>(w),
                               staps_[w].dflt.mask());
  ++switches_;
}

void CatController::apply(std::size_t w) {
  RetryStats stats;
  try {
    retry_with_backoff(
        [&] {
          // The fault point models a failed MSR/resctrl write.  Key on the
          // controller seed + op ordinal: deterministic per controller
          // instance, independent of other controllers on other threads.
          FaultInjector::global().check(
              "cat.apply", fault_key(resilience_.seed, ++apply_ops_));
          hierarchy_.set_llc_fill_mask(static_cast<ClassId>(w),
                                       current_allocation(w).mask());
          ++switches_;
        },
        resilience_.retry, rng_, &stats);
  } catch (const InjectedFault&) {
    // Persistent write failure: degrade the workload — drop any boost,
    // restore the default COS through the last-known-good path, and refuse
    // further boosts until recovery clears the flag.
    faults_.write_failures += stats.failures;
    faults_.write_retries += stats.attempts > 0 ? stats.attempts - 1 : 0;
    ++faults_.degraded_reverts;
    boost_refs_[w] = 0;
    degraded_[w] = true;
    revert_to_default(w);
    return;
  }
  faults_.write_failures += stats.failures;
  faults_.write_retries += stats.attempts > 0 ? stats.attempts - 1 : 0;
}

}  // namespace stac::cat

// Allocation plans for collocated workloads, and the paper's §2 structural
// results about them.
//
// A short-term allocation policy for one workload is a pair of contiguous
// settings (a, a') plus a timeout t: the workload fills into `a` by default
// and into `a'` (a superset including shared ways) while boosted.  The §2
// conjectures — private regions of distinct policies are disjoint, and a
// policy shares ways with at most two other policies — are implemented here
// as checkable predicates plus an exhaustive counterexample search used by
// the property tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cat/allocation.hpp"

namespace stac::cat {

/// One workload's pair of allocation settings (a, a').  The timeout lives in
/// Stap (stap.hpp); the static structure is analyzed without it, as in §2.
struct PolicyAllocations {
  Allocation dflt;     ///< a  — default setting
  Allocation boosted;  ///< a' — short-term setting (must cover dflt)

  [[nodiscard]] bool operator==(const PolicyAllocations&) const = default;
};

/// An allocation plan: one PolicyAllocations per collocated workload.
class AllocationPlan {
 public:
  AllocationPlan(std::uint32_t total_ways,
                 std::vector<PolicyAllocations> policies);

  [[nodiscard]] std::uint32_t total_ways() const { return total_ways_; }
  [[nodiscard]] std::size_t workload_count() const { return policies_.size(); }
  [[nodiscard]] const PolicyAllocations& policy(std::size_t w) const;
  [[nodiscard]] const std::vector<PolicyAllocations>& policies() const {
    return policies_;
  }

  /// Equation 1: the private ways V(a,a') of workload w — ways inside both
  /// of w's settings and outside every *other* workload's settings.
  [[nodiscard]] std::vector<std::uint32_t> private_ways(std::size_t w) const;

  /// Ways of w's boosted setting that at least one other workload can also
  /// fill (the short-term shared region).
  [[nodiscard]] std::vector<std::uint32_t> shared_ways(std::size_t w) const;

  /// Indices of workloads whose settings overlap w's boosted setting.
  [[nodiscard]] std::vector<std::size_t> sharers_of(std::size_t w) const;

  /// Conjecture 1 (§2): private regions of distinct workloads are disjoint.
  [[nodiscard]] bool private_regions_disjoint() const;

  /// Conjecture 2 (§2): if every workload has non-empty private ways, each
  /// workload shares cache with at most two other workloads.
  [[nodiscard]] bool sharing_degree_at_most_two() const;

  /// True when every workload has at least one private way (the premise of
  /// conjecture 2 and the paper's baseline-performance requirement).
  [[nodiscard]] bool all_have_private() const;

  /// Structural validity: every setting contiguous-in-range and boosted
  /// covering default.
  [[nodiscard]] bool valid() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::uint32_t total_ways_;
  std::vector<PolicyAllocations> policies_;
};

/// Build the paper's pairwise layout (§5: "Jacobi could reserve private
/// cache lines #1 & #2 and BFS could reserve cache lines #5 & #6; during
/// short-term allocation ... either or both services could use lines 3 & 4").
/// Workload 0 gets [0, p), shared region [p, p+s), workload 1 [p+s, p+s+p).
[[nodiscard]] AllocationPlan make_pair_plan(std::uint32_t total_ways,
                                            std::uint32_t private_ways,
                                            std::uint32_t shared_ways);

/// Chain layout for n workloads: w0 |s01| w1 |s12| w2 ... — every shared
/// region has exactly two sharers, the maximum conjecture 2 permits.
[[nodiscard]] AllocationPlan make_chain_plan(std::uint32_t total_ways,
                                             std::size_t workloads,
                                             std::uint32_t private_ways,
                                             std::uint32_t shared_ways);

/// Exhaustive search over all contiguous (a, a') assignments for `workloads`
/// policies on a small way count, looking for a plan where every workload
/// has private ways but some pair's private regions overlap (a conjecture-1
/// counterexample) or some workload has more than two sharers (conjecture
/// 2).  Returns the offending plan, or nullopt when — as the paper proves —
/// no counterexample exists.  Exponential; intended for ways <= 8,
/// workloads <= 3 in property tests.
struct ConjectureSearchResult {
  std::optional<AllocationPlan> conjecture1_counterexample;
  std::optional<AllocationPlan> conjecture2_counterexample;
  std::size_t plans_examined = 0;
};
[[nodiscard]] ConjectureSearchResult search_conjecture_counterexamples(
    std::uint32_t total_ways, std::size_t workloads);

}  // namespace stac::cat

#include "queueing/shared_region.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace stac::queueing {

std::vector<SharedRegion> find_shared_regions(const cat::AllocationPlan& plan) {
  std::vector<SharedRegion> regions;
  std::vector<std::size_t> prev_sharers;
  for (std::uint32_t way = 0; way < plan.total_ways(); ++way) {
    std::vector<std::size_t> sharers;
    for (std::size_t w = 0; w < plan.workload_count(); ++w) {
      // A workload can fill this way if either of its settings covers it.
      if (plan.policy(w).boosted.contains(way) ||
          plan.policy(w).dflt.contains(way))
        sharers.push_back(w);
    }
    if (sharers.size() >= 2) {
      if (!regions.empty() && prev_sharers == sharers &&
          regions.back().first_way + regions.back().way_count == way) {
        ++regions.back().way_count;
      } else {
        regions.push_back(SharedRegion{way, 1, sharers});
      }
      prev_sharers = std::move(sharers);
    } else {
      prev_sharers.clear();
    }
  }
  return regions;
}

OccupancyModel::OccupancyModel(const cat::AllocationPlan& plan)
    : plan_(plan), regions_(find_shared_regions(plan)) {
  state_.reserve(regions_.size());
  for (const auto& r : regions_) {
    RegionState s;
    s.region = r;
    s.occ.assign(r.sharers.size(), 0.0);
    s.phi.assign(r.sharers.size(), 0.0);
    state_.push_back(std::move(s));
  }
  private_ways_.resize(plan.workload_count());
  for (std::size_t w = 0; w < plan.workload_count(); ++w)
    private_ways_[w] =
        static_cast<std::uint32_t>(plan.private_ways(w).size());
}

double OccupancyModel::occupancy(std::size_t r, std::size_t w) const {
  STAC_REQUIRE(r < state_.size());
  const auto& sharers = state_[r].region.sharers;
  const auto it = std::find(sharers.begin(), sharers.end(), w);
  if (it == sharers.end()) return 0.0;
  return state_[r].occ[static_cast<std::size_t>(it - sharers.begin())];
}

double OccupancyModel::effective_ways(std::size_t w) const {
  STAC_REQUIRE(w < private_ways_.size());
  double ways = static_cast<double>(private_ways_[w]);
  for (const auto& s : state_) {
    const auto& sharers = s.region.sharers;
    const auto it = std::find(sharers.begin(), sharers.end(), w);
    if (it == sharers.end()) continue;
    const auto idx = static_cast<std::size_t>(it - sharers.begin());
    double contribution = static_cast<double>(s.region.way_count) *
                          s.occ[idx];
    if (thrash_ > 0.0) {
      // Reuse survival under concurrent displacement by everyone else.
      double others = churn_;
      for (std::size_t i = 0; i < s.phi.size(); ++i)
        if (i != idx) others += s.phi[i];
      contribution /= 1.0 + thrash_ * others;
    }
    ways += contribution;
  }
  return ways;
}

void OccupancyModel::set_thrash_sensitivity(double sensitivity) {
  STAC_REQUIRE(sensitivity >= 0.0);
  thrash_ = sensitivity;
}

void OccupancyModel::set_fill_rate(std::size_t w, double rate) {
  STAC_REQUIRE(w < private_ways_.size());
  STAC_REQUIRE(rate >= 0.0);
  // Total shared ways accessible to w (to split rate proportionally).
  double total_ways = 0.0;
  for (const auto& s : state_) {
    if (std::find(s.region.sharers.begin(), s.region.sharers.end(), w) !=
        s.region.sharers.end())
      total_ways += static_cast<double>(s.region.way_count);
  }
  for (auto& s : state_) {
    const auto& sharers = s.region.sharers;
    const auto it = std::find(sharers.begin(), sharers.end(), w);
    if (it == sharers.end()) continue;
    const auto idx = static_cast<std::size_t>(it - sharers.begin());
    // `rate` is in region-capacities of w's *total* accessible shared
    // space; each region receives the share matching its size, which in
    // region-local units is the same rate.
    s.phi[idx] = total_ways > 0.0 ? rate : 0.0;
  }
}

void OccupancyModel::set_background_churn(double rate) {
  STAC_REQUIRE(rate >= 0.0);
  churn_ = rate;
}

void OccupancyModel::advance(double dt) {
  STAC_REQUIRE(dt >= 0.0);
  if (dt == 0.0) return;
  for (auto& s : state_) {
    double total_occ = 0.0, total_phi = 0.0;
    for (double o : s.occ) total_occ += o;
    for (double p : s.phi) total_phi += p;

    if (churn_ > 0.0) {
      // Unified ODE with the background churn as an implicit sharer that
      // owns all space the workloads do not:
      //   d occ_i/dt = phi_i - (sum phi + churn) * occ_i
      // Equilibrium occ_i = phi_i / (Phi + churn); stopping the fill decays
      // occupancy at rate (Phi + churn) even when neighbours are idle.
      const double phi_all = total_phi + churn_;
      const double decay = std::exp(-phi_all * dt);
      for (std::size_t i = 0; i < s.occ.size(); ++i) {
        const double eq = s.phi[i] / phi_all;
        s.occ[i] = eq + (s.occ[i] - eq) * decay;
      }
      continue;
    }

    if (total_phi <= 0.0) continue;  // nothing filling: occupancy frozen

    double remaining = dt;
    // Phase 1: free space absorbs fills without evictions.
    if (total_occ < 1.0 - 1e-12) {
      const double t_fill = (1.0 - total_occ) / total_phi;
      const double step = std::min(remaining, t_fill);
      for (std::size_t i = 0; i < s.occ.size(); ++i)
        s.occ[i] += s.phi[i] * step;
      remaining -= step;
      if (remaining <= 0.0) continue;
    }
    // Phase 2: full region — exponential relaxation toward phi_i / Phi.
    const double decay = std::exp(-total_phi * remaining);
    double sum = 0.0;
    for (std::size_t i = 0; i < s.occ.size(); ++i) {
      const double eq = s.phi[i] / total_phi;
      s.occ[i] = eq + (s.occ[i] - eq) * decay;
      sum += s.occ[i];
    }
    // Normalize tiny numeric drift so the region stays exactly full.
    if (sum > 0.0) {
      for (auto& o : s.occ) o /= sum;
    }
  }
}

double OccupancyModel::suggested_step(double tol) const {
  double step = std::numeric_limits<double>::infinity();
  for (const auto& s : state_) {
    double total_phi = churn_;
    for (double p : s.phi) total_phi += p;
    if (total_phi <= 0.0) continue;
    if (churn_ > 0.0) {
      // Off-equilibrium check under the unified ODE.
      bool moving = false;
      for (std::size_t i = 0; i < s.occ.size(); ++i)
        if (std::abs(s.occ[i] - s.phi[i] / total_phi) > tol) moving = true;
      if (moving) step = std::min(step, 0.25 / total_phi);
      continue;
    }
    // Are we off equilibrium by more than tol?
    bool moving = false;
    double total_occ = 0.0;
    for (double o : s.occ) total_occ += o;
    if (total_occ < 1.0 - tol) {
      moving = true;
    } else {
      for (std::size_t i = 0; i < s.occ.size(); ++i)
        if (std::abs(s.occ[i] - s.phi[i] / total_phi) > tol) moving = true;
    }
    if (moving) step = std::min(step, 0.25 / total_phi);
  }
  return step;
}

void OccupancyModel::reset() {
  for (auto& s : state_) {
    std::fill(s.occ.begin(), s.occ.end(), 0.0);
    std::fill(s.phi.begin(), s.phi.end(), 0.0);
  }
}

}  // namespace stac::queueing

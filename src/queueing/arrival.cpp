#include "queueing/arrival.hpp"

#include "common/check.hpp"

namespace stac::queueing {

InterarrivalSampler::InterarrivalSampler(ArrivalKind kind, double rate,
                                         double cv)
    : kind_(kind), rate_(rate), cv_(cv) {
  STAC_REQUIRE(rate > 0.0);
  STAC_REQUIRE(cv >= 0.0);
}

double InterarrivalSampler::sample(Rng& rng) const {
  switch (kind_) {
    case ArrivalKind::kExponential:
      return rng.exponential(rate_);
    case ArrivalKind::kDeterministic:
      return 1.0 / rate_;
    case ArrivalKind::kLogNormal:
      return rng.lognormal_mean_cv(1.0 / rate_, cv_);
  }
  return 1.0 / rate_;
}

}  // namespace stac::queueing

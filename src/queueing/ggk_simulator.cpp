#include "queueing/ggk_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/fault_injection.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stac::queueing {

namespace {

struct Job {
  double arrival = 0.0;
  double demand = 1.0;
  double remaining = 1.0;
  double start = -1.0;
  bool overdue = false;  ///< timeout fired while incomplete
  bool done = false;
  std::uint32_t gen = 0;
};

enum class EvType : std::uint8_t { kArrival, kCompletion, kTimeout };

struct Event {
  double time;
  std::uint64_t seq;
  EvType type;
  std::uint32_t job;
  std::uint32_t gen;
  [[nodiscard]] bool operator>(const Event& o) const {
    return time != o.time ? time > o.time : seq > o.seq;
  }
};

}  // namespace

GGkResult simulate_ggk(const GGkConfig& config) {
  STAC_TRACE_SPAN(span, "ggk.simulate", "queueing");
  STAC_REQUIRE(config.utilization > 0.0 && config.utilization < 1.0);
  STAC_REQUIRE(config.servers >= 1);
  STAC_REQUIRE(config.mean_service > 0.0);
  STAC_REQUIRE(config.queries > config.warmup);

  Rng rng(config.seed);
  const double lambda = config.utilization *
                        static_cast<double>(config.servers) /
                        config.mean_service;
  const double boost_mult =
      std::max(1.0, config.effective_allocation * config.allocation_ratio);
  // Residual-occupancy speedup of the default phase (see GGkConfig).
  const double residual_mult =
      1.0 + std::clamp(config.residual_weight * config.boost_prevalence, 0.0,
                       1.0) *
                (boost_mult - 1.0);
  const double dflt_rate =
      std::min(residual_mult, boost_mult) / config.mean_service;
  const double boost_rate = boost_mult / config.mean_service;
  const double timeout_abs = config.timeout_rel * config.mean_service;
  const bool boosting =
      config.timeout_rel < 6.0 && config.allocation_ratio > 1.0;

  // Class-level short-term allocation (§4): while ANY outstanding query is
  // overdue, every executing query runs at the boosted rate — one class of
  // service per workload, not per query.
  std::vector<Job> jobs;
  jobs.reserve(config.queries + 8);
  std::vector<std::size_t> fifo_q;   // waiting job indices (FIFO)
  std::vector<std::size_t> serving;  // in-service job indices
  std::size_t fifo_head = 0;
  std::uint32_t boost_refs = 0;

  std::vector<Event> heap;
  std::uint64_t seq = 0;
  auto push = [&](double t, EvType type, std::uint32_t job,
                  std::uint32_t gen) {
    heap.push_back(Event{t, seq++, type, job, gen});
    std::push_heap(heap.begin(), heap.end(), std::greater<>{});
  };

  double now = 0.0;
  // Class-level: any overdue query boosts everyone.  Per-query (ablation):
  // each job runs at its own rate.
  auto job_rate = [&](const Job& job) {
    if (config.class_level_boost)
      return boost_refs > 0 ? boost_rate : dflt_rate;
    return job.overdue ? boost_rate : dflt_rate;
  };

  auto advance_to = [&](double t) {
    // Clock monotonicity is the invariant every sojourn (now - arrival)
    // depends on: all pushes are `now + nonneg` and the heap pops in time
    // order, so a popped event behind `now` means heap corruption or a
    // negative interarrival/duration — fail loudly instead of silently
    // producing rt < 0 (which the old code only *counted*, post hoc).
    STAC_ENSURE(t >= now - 1e-9 * std::max(1.0, now));
    const double dt = std::max(0.0, t - now);
    if (dt > 0.0) {
      for (std::size_t j : serving) {
        const double next = jobs[j].remaining - job_rate(jobs[j]) * dt;
        // `next` can only dip below zero by float dust: every rate change
        // (boost switch/revert, per-query timeout) reschedules the affected
        // completions, so work depletes exactly at a scheduled completion
        // modulo rounding in now + remaining/rate.  A materially negative
        // residual would mean an unrescheduled rate change — the
        // event-ordering bug the clamp used to mask.
        STAC_ENSURE(next > -1e-6);
        jobs[j].remaining = std::max(0.0, next);
      }
    }
    now = std::max(now, t);
  };
  auto schedule_completion = [&](std::size_t j) {
    ++jobs[j].gen;
    push(now + jobs[j].remaining / job_rate(jobs[j]), EvType::kCompletion,
         static_cast<std::uint32_t>(j), jobs[j].gen);
  };
  auto reschedule_all = [&]() {
    for (std::size_t j : serving) schedule_completion(j);
  };

  GGkResult result;
  double queue_delay_sum = 0.0;
  std::size_t arrivals = 0;

  push(rng.exponential(lambda), EvType::kArrival, 0, 0);

  while (!heap.empty() && result.completed < config.queries - config.warmup) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    const Event ev = heap.back();
    heap.pop_back();
    advance_to(ev.time);

    switch (ev.type) {
      case EvType::kArrival: {
        if (arrivals < config.queries + config.servers * 4) {
          push(now + rng.exponential(lambda), EvType::kArrival, 0, 0);
        }
        ++arrivals;
        Job job;
        job.arrival = now;
        job.demand = config.service_cv > 0.0
                         ? rng.lognormal_mean_cv(1.0, config.service_cv)
                         : 1.0;
        if (FaultInjector::global().armed()) {
          // Chaos hook: an injected service-latency spike inflates this
          // job's demand.  Keyed on (seed, arrival ordinal) so the schedule
          // is a pure function of the plan seed.
          const auto fault = FaultInjector::global().evaluate(
              "ggk.service",
              fault_key(config.seed, static_cast<std::uint64_t>(arrivals)));
          if (fault.action == FaultAction::kLatency) {
            job.demand *= 1.0 + std::max(0.0, fault.latency);
            ++result.latency_injections;
            obs::instant("fault.ggk.service", "fault");
          }
        }
        job.remaining = job.demand;
        jobs.push_back(job);
        const auto idx = jobs.size() - 1;
        if (boosting)
          push(now + timeout_abs, EvType::kTimeout,
               static_cast<std::uint32_t>(idx), 0);
        if (serving.size() < config.servers) {
          jobs[idx].start = now;
          serving.push_back(idx);
          schedule_completion(idx);
        } else {
          fifo_q.push_back(idx);
        }
        break;
      }
      case EvType::kTimeout: {
        Job& job = jobs[ev.job];
        if (job.done || job.overdue) break;
        job.overdue = true;
        if (config.class_level_boost) {
          if (boost_refs++ == 0) {
            ++result.cos_switches;
            reschedule_all();  // class switched
          }
        } else if (job.start >= 0.0) {
          schedule_completion(ev.job);  // only this job speeds up
        }
        break;
      }
      case EvType::kCompletion: {
        Job& job = jobs[ev.job];
        if (job.done || job.gen != ev.gen) break;  // stale
        // The epsilon must exceed the time-axis ULP at any reachable clock
        // value, or a residual smaller than one ULP reschedules the event
        // at `now` forever (demand units are O(1), so 1e-9 is negligible).
        if (job.remaining > 1e-9) {  // rate changed since scheduling
          schedule_completion(ev.job);
          break;
        }
        job.done = true;
        serving.erase(std::find(serving.begin(), serving.end(),
                                static_cast<std::size_t>(ev.job)));
        if (job.overdue && config.class_level_boost) {
          STAC_ENSURE(boost_refs > 0);
          if (--boost_refs == 0) {
            ++result.cos_switches;
            reschedule_all();  // class reverted
          }
        }
        if (ev.job >= config.warmup) {
          result.response_times.add(now - job.arrival);
          result.queue_delays.add(job.start - job.arrival);
          queue_delay_sum += job.start - job.arrival;
          if (now - job.arrival < 0.0) ++result.negative_sojourns;
          if (job.overdue) ++result.boosted_queries;
          ++result.completed;
        }
        if (fifo_head < fifo_q.size()) {
          const std::size_t next = fifo_q[fifo_head++];
          jobs[next].start = now;
          serving.push_back(next);
          schedule_completion(next);
        }
        break;
      }
    }
  }

  result.mean_queue_delay =
      result.completed > 0
          ? queue_delay_sum / static_cast<double>(result.completed)
          : 0.0;
  result.residual_boost_refs = boost_refs;
  for (const Job& job : jobs)
    if (!job.done && job.overdue) ++result.residual_overdue_jobs;
  span.arg("utilization", config.utilization);
  span.arg("completed", static_cast<std::uint64_t>(result.completed));
  span.arg("cos_switches", result.cos_switches);
  obs::count("ggk.runs");
  obs::count("ggk.completed", result.completed);
  obs::count("ggk.latency_injections", result.latency_injections);
  return result;
}

}  // namespace stac::queueing

#include "queueing/ggk_simulator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/fault_injection.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stac::queueing {

namespace {

/// Completion staleness epsilon: must exceed the time-axis ULP at any
/// reachable clock value, or a residual smaller than one ULP reschedules the
/// event at `now` forever (demand units are O(1), so 1e-9 is negligible).
constexpr double kResidualEps = 1e-9;

struct Job {
  double arrival = 0.0;
  double demand = 1.0;
  /// Remaining work as of `snap_time`.  Between two reschedule points a
  /// job's rate is constant (every rate change reschedules the affected
  /// completions), so the service "area" consumed since the snapshot is the
  /// single product snap_rate * (now - snap_time) — remaining work is
  /// decremented lazily at reschedule points, never on every event.
  double remaining = 1.0;
  double snap_time = 0.0;
  double snap_rate = 0.0;
  double start = -1.0;
  bool overdue = false;  ///< timeout fired while incomplete
  bool done = false;
  std::uint32_t gen = 0;  ///< lazy-deletion key for queued completions
};

/// Config-derived constants shared by both engines (identical arithmetic is
/// what makes the fast path bit-identical to the legacy one).
struct Derived {
  double lambda = 0.0;
  double boost_mult = 1.0;
  double dflt_rate = 0.0;
  double boost_rate = 0.0;
  double timeout_abs = 0.0;
  bool boosting = false;
  std::size_t arrival_limit = 0;  ///< last arrival ordinal that schedules a successor
  std::size_t target = 0;         ///< completions to count before stopping
};

Derived derive(const GGkConfig& config) {
  Derived d;
  d.lambda = config.utilization * static_cast<double>(config.servers) /
             config.mean_service;
  d.boost_mult =
      std::max(1.0, config.effective_allocation * config.allocation_ratio);
  // Residual-occupancy speedup of the default phase (see GGkConfig).
  const double residual_mult =
      1.0 + std::clamp(config.residual_weight * config.boost_prevalence, 0.0,
                       1.0) *
                (d.boost_mult - 1.0);
  d.dflt_rate = std::min(residual_mult, d.boost_mult) / config.mean_service;
  d.boost_rate = d.boost_mult / config.mean_service;
  d.timeout_abs = config.timeout_rel * config.mean_service;
  d.boosting = config.timeout_rel < 6.0 && config.allocation_ratio > 1.0;
  d.arrival_limit = config.queries + config.servers * 4;
  d.target = config.queries - config.warmup;
  return d;
}

/// Chaos hook: an injected service-latency spike inflates this job's
/// demand.  Keyed on (seed, arrival ordinal) so the schedule is a pure
/// function of the plan seed — both engines hit the same faults.
void apply_service_fault(const GGkConfig& config, std::size_t ordinal,
                         Job& job, GGkResult& result) {
  if (!FaultInjector::global().armed()) return;
  const auto fault = FaultInjector::global().evaluate(
      "ggk.service", fault_key(config.seed, static_cast<std::uint64_t>(ordinal)));
  if (fault.action == FaultAction::kLatency) {
    job.demand *= 1.0 + std::max(0.0, fault.latency);
    ++result.latency_injections;
    obs::instant("fault.ggk.service", "fault");
  }
}

/// Job accounting, FIFO queue and class-boost state shared by both event
/// engines.  The engines differ only in how pending events are stored and
/// how the arrival/demand randomness is sourced.
struct Core {
  const GGkConfig& config;
  const Derived& d;
  std::vector<Job> jobs;
  std::vector<std::size_t> fifo_q;   // waiting job indices (FIFO)
  std::vector<std::size_t> serving;  // in-service job indices
  std::size_t fifo_head = 0;
  std::uint32_t boost_refs = 0;
  double now = 0.0;
  GGkResult result;
  double queue_delay_sum = 0.0;

  Core(const GGkConfig& c, const Derived& dd) : config(c), d(dd) {}

  // Class-level: any overdue query boosts everyone.  Per-query (ablation):
  // each job runs at its own rate.
  [[nodiscard]] double rate_for(const Job& job) const {
    if (config.class_level_boost)
      return boost_refs > 0 ? d.boost_rate : d.dflt_rate;
    return job.overdue ? d.boost_rate : d.dflt_rate;
  }

  void advance_to(double t) {
    // Clock monotonicity is the invariant every sojourn (now - arrival)
    // depends on: all pushes are `now + nonneg` and events pop in time
    // order, so a popped event behind `now` means queue corruption or a
    // negative interarrival/duration — fail loudly instead of silently
    // producing rt < 0.
    STAC_ENSURE(t >= now - 1e-9 * std::max(1.0, now));
    now = std::max(now, t);
  }

  /// Bring `remaining` up to `now`.  `next` can only dip below zero by
  /// float dust: every rate change reschedules the affected completions (a
  /// new snapshot), so work depletes exactly at a scheduled completion
  /// modulo rounding in now + remaining/rate.  A materially negative
  /// residual would mean an unrescheduled rate change — an event-ordering
  /// bug this check exists to catch.
  void materialize(Job& job) {
    if (job.snap_time < now) {
      const double next =
          job.remaining - job.snap_rate * (now - job.snap_time);
      STAC_ENSURE(next > -1e-6);
      job.remaining = std::max(0.0, next);
      job.snap_time = now;
    }
  }

  /// Take a fresh snapshot for job `j` at the current rate and bump its
  /// generation (queued completions with the old generation go stale).
  /// Returns the new completion time for the engine to enqueue.
  double schedule(std::size_t j) {
    Job& job = jobs[j];
    materialize(job);
    job.snap_rate = rate_for(job);
    ++job.gen;
    return now + job.remaining / job.snap_rate;
  }

  struct CompleteResult {
    bool class_reverted = false;            ///< boost refcount hit zero
    std::size_t start_next =
        static_cast<std::size_t>(-1);       ///< FIFO job to start, if any
  };

  /// Shared completion bookkeeping once a job's work is verifiably done.
  /// The engine must reschedule the class on `class_reverted` and only then
  /// start `start_next` — the legacy event order, which fixes the sequence
  /// numbers ties break on.
  CompleteResult complete(std::size_t j) {
    Job& job = jobs[j];
    job.done = true;
    serving.erase(std::find(serving.begin(), serving.end(), j));
    CompleteResult r;
    if (job.overdue && config.class_level_boost) {
      STAC_ENSURE(boost_refs > 0);
      if (--boost_refs == 0) {
        ++result.cos_switches;
        r.class_reverted = true;
      }
    }
    if (j >= config.warmup) {
      result.response_times.add(now - job.arrival);
      result.queue_delays.add(job.start - job.arrival);
      queue_delay_sum += job.start - job.arrival;
      if (now - job.arrival < 0.0) ++result.negative_sojourns;
      if (job.overdue) ++result.boosted_queries;
      ++result.completed;
    }
    if (fifo_head < fifo_q.size()) r.start_next = fifo_q[fifo_head++];
    return r;
  }

  void finish() {
    result.mean_queue_delay =
        result.completed > 0
            ? queue_delay_sum / static_cast<double>(result.completed)
            : 0.0;
    result.residual_boost_refs = boost_refs;
    for (const Job& job : jobs)
      if (!job.done && job.overdue) ++result.residual_overdue_jobs;
  }
};

// --------------------------------------------------------------------------
// Legacy engine: one binary heap (std::push_heap/pop_heap) carrying
// arrivals, timeouts and completions, with inline RNG draws.  Kept as the
// reference implementation the fast engine is cross-checked against.
// --------------------------------------------------------------------------

enum class EvType : std::uint8_t { kArrival, kCompletion, kTimeout };

struct Event {
  double time;
  std::uint64_t seq;
  EvType type;
  std::uint32_t job;
  std::uint32_t gen;
  [[nodiscard]] bool operator>(const Event& o) const {
    return time != o.time ? time > o.time : seq > o.seq;
  }
};

GGkResult simulate_legacy(const GGkConfig& config, const Derived& d) {
  Rng rng(config.seed);
  Core core(config, d);
  core.jobs.reserve(config.queries + 8);

  std::vector<Event> heap;
  std::uint64_t seq = 0;
  auto push = [&](double t, EvType type, std::uint32_t job,
                  std::uint32_t gen) {
    heap.push_back(Event{t, seq++, type, job, gen});
    std::push_heap(heap.begin(), heap.end(), std::greater<>{});
  };
  auto schedule_completion = [&](std::size_t j) {
    const double t = core.schedule(j);
    push(t, EvType::kCompletion, static_cast<std::uint32_t>(j),
         core.jobs[j].gen);
  };
  auto reschedule_all = [&]() {
    for (std::size_t j : core.serving) schedule_completion(j);
  };

  std::size_t arrivals = 0;
  push(rng.exponential(d.lambda), EvType::kArrival, 0, 0);

  while (!heap.empty() && core.result.completed < d.target) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    const Event ev = heap.back();
    heap.pop_back();
    core.advance_to(ev.time);

    switch (ev.type) {
      case EvType::kArrival: {
        if (arrivals < d.arrival_limit) {
          push(core.now + rng.exponential(d.lambda), EvType::kArrival, 0, 0);
        }
        ++arrivals;
        Job job;
        job.arrival = core.now;
        job.demand = config.service_cv > 0.0
                         ? rng.lognormal_mean_cv(1.0, config.service_cv)
                         : 1.0;
        apply_service_fault(config, arrivals, job, core.result);
        job.remaining = job.demand;
        job.snap_time = core.now;
        core.jobs.push_back(job);
        const auto idx = core.jobs.size() - 1;
        if (d.boosting)
          push(core.now + d.timeout_abs, EvType::kTimeout,
               static_cast<std::uint32_t>(idx), 0);
        if (core.serving.size() < config.servers) {
          core.jobs[idx].start = core.now;
          core.serving.push_back(idx);
          schedule_completion(idx);
        } else {
          core.fifo_q.push_back(idx);
        }
        break;
      }
      case EvType::kTimeout: {
        Job& job = core.jobs[ev.job];
        if (job.done || job.overdue) break;
        job.overdue = true;
        if (config.class_level_boost) {
          if (core.boost_refs++ == 0) {
            ++core.result.cos_switches;
            reschedule_all();  // class switched
          }
        } else if (job.start >= 0.0) {
          schedule_completion(ev.job);  // only this job speeds up
        }
        break;
      }
      case EvType::kCompletion: {
        Job& job = core.jobs[ev.job];
        if (job.done || job.gen != ev.gen) break;  // stale (lazy deletion)
        core.materialize(job);
        if (job.remaining > kResidualEps) {  // rate changed since scheduling
          schedule_completion(ev.job);
          break;
        }
        const Core::CompleteResult cr = core.complete(ev.job);
        if (cr.class_reverted) reschedule_all();  // class reverted
        if (cr.start_next != static_cast<std::size_t>(-1)) {
          core.jobs[cr.start_next].start = core.now;
          core.serving.push_back(cr.start_next);
          schedule_completion(cr.start_next);
        }
        break;
      }
    }
  }
  core.finish();
  return core.result;
}

// --------------------------------------------------------------------------
// Common-random-number stream cache: the fast engine pre-draws the full
// arrival/demand randomness of a run into reusable buffers keyed on
// (seed, arrival rate, demand cv, count).  Replaying a policy grid — where
// only the timeout and the boost rates change — then reuses one stream per
// (seed, queries), so each cell is a replay, not a regeneration (the CRN
// variance-reduction classic: grid cells differ only by the policy, never
// by sampling noise).  The draw order matches the legacy engine's inline
// draws exactly, so streams are bit-identical to what the legacy engine
// would consume.
// --------------------------------------------------------------------------

struct PredrawnStreams {
  std::vector<double> arrival;  ///< absolute arrival time per ordinal
  std::vector<double> demand;   ///< pre-fault demand per ordinal
};

struct StreamKey {
  std::uint64_t seed = 0;
  std::uint64_t lambda_bits = 0;
  std::uint64_t cv_bits = 0;
  std::uint64_t count = 0;
  bool operator==(const StreamKey&) const = default;
};

struct StreamKeyHash {
  std::size_t operator()(const StreamKey& k) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
    for (const std::uint64_t v : {k.seed, k.lambda_bits, k.cv_bits, k.count}) {
      h ^= v;
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

std::shared_ptr<const PredrawnStreams> generate_streams(std::uint64_t seed,
                                                        double lambda,
                                                        double cv,
                                                        std::size_t count) {
  auto s = std::make_shared<PredrawnStreams>();
  s->arrival.resize(count);
  s->demand.resize(count);
  Rng rng(seed);
  // Exact legacy draw order: the initial interarrival, then per arrival
  // event k the successor's interarrival (while one is still scheduled)
  // followed by job k's demand.  A prefix of this sequence is exactly what
  // a legacy run consumes, so the pre-drawn values are bit-identical.
  s->arrival[0] = rng.exponential(lambda);
  for (std::size_t k = 0; k < count; ++k) {
    if (k + 1 < count)
      s->arrival[k + 1] = s->arrival[k] + rng.exponential(lambda);
    s->demand[k] = cv > 0.0 ? rng.lognormal_mean_cv(1.0, cv) : 1.0;
  }
  return s;
}

/// Streams are ~16 bytes per query; a handful of (seed, load) points are
/// live at once during a sweep, so a small cap bounds memory and the rare
/// overflow just starts the cache afresh.  Overridable via
/// set_crn_stream_cache_capacity for soaks over drifting conditions.
constexpr std::size_t kCrnCacheDefaultCap = 64;

struct CrnCache {
  std::mutex mu;
  std::size_t capacity = kCrnCacheDefaultCap;
  std::unordered_map<StreamKey, std::shared_ptr<const PredrawnStreams>,
                     StreamKeyHash>
      map;
};

CrnCache& crn_cache() {
  static CrnCache cache;
  return cache;
}

std::shared_ptr<const PredrawnStreams> crn_streams(std::uint64_t seed,
                                                   double lambda, double cv,
                                                   std::size_t count) {
  const StreamKey key{seed, std::bit_cast<std::uint64_t>(lambda),
                      std::bit_cast<std::uint64_t>(cv), count};
  auto& cache = crn_cache();
  {
    std::lock_guard lock(cache.mu);
    if (const auto it = cache.map.find(key); it != cache.map.end()) {
      obs::MetricsRegistry::global().counter("ggk.crn_stream_hits").add();
      return it->second;
    }
  }
  obs::MetricsRegistry::global().counter("ggk.crn_stream_misses").add();
  auto s = generate_streams(seed, lambda, cv, count);
  std::size_t entries = 0;
  std::shared_ptr<const PredrawnStreams> out;
  {
    std::lock_guard lock(cache.mu);
    const auto [it, inserted] = cache.map.try_emplace(key, s);
    out = it->second;  // a racing identical insert may have won: same bits
    if (inserted && cache.map.size() > cache.capacity) {
      cache.map.clear();  // epoch flush, like RtPredictionCache
      cache.map.emplace(key, out);
    }
    entries = cache.map.size();
  }
  obs::MetricsRegistry::global().gauge("ggk.crn_stream_cache.size").set(
      static_cast<double>(entries));
  return out;
}

// --------------------------------------------------------------------------
// Fast engine.  Arrivals replay from the sorted pre-drawn buffer and
// timeouts queue in a FIFO (arrival times are nondecreasing and the timeout
// offset is constant, so timeout times are nondecreasing too); only
// completions — the one event class that genuinely reorders — go through an
// indexed 4-ary min-heap with lazy deletion keyed by job generation.  The
// virtual sequence counter mirrors the legacy engine's push order exactly,
// so ties on the time axis break identically and the processed event
// sequence is the same event for event.
// --------------------------------------------------------------------------

struct CompletionEv {
  double time;
  std::uint64_t seq;
  std::uint32_t job;
  std::uint32_t gen;
};

/// Flat 4-ary min-heap over (time, seq).  Shallower than a binary heap for
/// the same size (log4 vs log2 levels) and all four children share one
/// cache line's worth of entries, so sift-down does fewer, cheaper levels.
class FourAryHeap {
 public:
  [[nodiscard]] bool empty() const { return h_.empty(); }
  [[nodiscard]] const CompletionEv& top() const { return h_.front(); }
  void clear() { h_.clear(); }  // keeps capacity: batch replicas recycle it

  void push(const CompletionEv& e) {
    h_.push_back(e);
    std::size_t i = h_.size() - 1;
    while (i > 0) {
      const std::size_t p = (i - 1) / 4;
      if (!before(h_[i], h_[p])) break;
      std::swap(h_[i], h_[p]);
      i = p;
    }
  }

  void pop() {
    h_.front() = h_.back();
    h_.pop_back();
    if (h_.empty()) return;
    std::size_t i = 0;
    for (;;) {
      const std::size_t c0 = 4 * i + 1;
      if (c0 >= h_.size()) break;
      std::size_t best = c0;
      const std::size_t c_end = std::min(h_.size(), c0 + 4);
      for (std::size_t c = c0 + 1; c < c_end; ++c)
        if (before(h_[c], h_[best])) best = c;
      if (!before(h_[best], h_[i])) break;
      std::swap(h_[i], h_[best]);
      i = best;
    }
  }

 private:
  static bool before(const CompletionEv& a, const CompletionEv& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }
  std::vector<CompletionEv> h_;
};

struct TimeoutEv {
  double time;
  std::uint64_t seq;
  std::uint32_t job;
};

/// Per-replica state arena the batch entry point recycles from cell to
/// cell: the job table, FIFO/server pools, timeout queue and the lazy-
/// deletion completion heap keep their capacity across replicas, so a
/// whole sweep allocates these once (cell-major layout — one cell's state
/// is contiguous and cache-resident while it runs, then the next cell
/// reuses the same storage).
struct BatchArena {
  std::vector<Job> jobs;
  std::vector<std::size_t> fifo_q;
  std::vector<std::size_t> serving;
  std::vector<TimeoutEv> timeouts;
  FourAryHeap completions;
};

GGkResult simulate_fast(const GGkConfig& config, const Derived& d,
                        const PredrawnStreams& streams,
                        BatchArena* arena = nullptr) {
  const std::size_t count = d.arrival_limit + 1;  // arrival ordinals 0..limit

  Core core(config, d);
  FourAryHeap completions;
  std::vector<TimeoutEv> timeouts;
  if (arena != nullptr) {
    // Adopt the arena's storage (clear keeps capacity); handed back below.
    core.jobs = std::move(arena->jobs);
    core.fifo_q = std::move(arena->fifo_q);
    core.serving = std::move(arena->serving);
    timeouts = std::move(arena->timeouts);
    completions = std::move(arena->completions);
    core.jobs.clear();
    core.fifo_q.clear();
    core.serving.clear();
    timeouts.clear();
    completions.clear();
  }
  core.jobs.reserve(count);
  if (d.boosting) timeouts.reserve(count);
  std::size_t timeout_head = 0;
  std::size_t next_arrival = 0;
  // Virtual sequence numbers mirroring the legacy push order: the initial
  // arrival is "pushed" with seq 0 before the loop starts.
  std::uint64_t next_arrival_seq = 0;
  std::uint64_t seq = 1;

  auto schedule_completion = [&](std::size_t j) {
    const double t = core.schedule(j);
    completions.push(
        {t, seq++, static_cast<std::uint32_t>(j), core.jobs[j].gen});
  };
  auto reschedule_all = [&]() {
    for (std::size_t j : core.serving) schedule_completion(j);
  };

  while (core.result.completed < d.target) {
    // Pick the earliest of the three event sources by (time, seq) — the
    // same total order the legacy heap pops in.
    int src = -1;
    double t = 0.0;
    std::uint64_t s = 0;
    if (next_arrival < count) {
      t = streams.arrival[next_arrival];
      s = next_arrival_seq;
      src = 0;
    }
    if (timeout_head < timeouts.size()) {
      const TimeoutEv& te = timeouts[timeout_head];
      if (src < 0 || te.time < t || (te.time == t && te.seq < s)) {
        t = te.time;
        s = te.seq;
        src = 1;
      }
    }
    if (!completions.empty()) {
      const CompletionEv& ce = completions.top();
      if (src < 0 || ce.time < t || (ce.time == t && ce.seq < s)) {
        t = ce.time;
        s = ce.seq;
        src = 2;
      }
    }
    if (src < 0) break;  // every source exhausted
    core.advance_to(t);

    if (src == 0) {  // arrival of job ordinal `next_arrival`
      const std::size_t k = next_arrival++;
      if (k < d.arrival_limit) next_arrival_seq = seq++;  // successor arrival
      Job job;
      job.arrival = core.now;
      job.demand = streams.demand[k];
      apply_service_fault(config, k + 1, job, core.result);
      job.remaining = job.demand;
      job.snap_time = core.now;
      core.jobs.push_back(job);
      const std::size_t idx = core.jobs.size() - 1;
      if (d.boosting)
        timeouts.push_back({core.now + d.timeout_abs, seq++,
                            static_cast<std::uint32_t>(idx)});
      if (core.serving.size() < config.servers) {
        core.jobs[idx].start = core.now;
        core.serving.push_back(idx);
        schedule_completion(idx);
      } else {
        core.fifo_q.push_back(idx);
      }
    } else if (src == 1) {  // timeout
      const std::size_t j = timeouts[timeout_head++].job;
      Job& job = core.jobs[j];
      if (job.done || job.overdue) continue;
      job.overdue = true;
      if (config.class_level_boost) {
        if (core.boost_refs++ == 0) {
          ++core.result.cos_switches;
          reschedule_all();  // class switched
        }
      } else if (job.start >= 0.0) {
        schedule_completion(j);  // only this job speeds up
      }
    } else {  // completion (possibly stale)
      const CompletionEv ce = completions.top();
      completions.pop();
      Job& job = core.jobs[ce.job];
      if (job.done || job.gen != ce.gen) continue;  // stale (lazy deletion)
      core.materialize(job);
      if (job.remaining > kResidualEps) {  // rate changed since scheduling
        schedule_completion(ce.job);
        continue;
      }
      const Core::CompleteResult cr = core.complete(ce.job);
      if (cr.class_reverted) reschedule_all();  // class reverted
      if (cr.start_next != static_cast<std::size_t>(-1)) {
        core.jobs[cr.start_next].start = core.now;
        core.serving.push_back(cr.start_next);
        schedule_completion(cr.start_next);
      }
    }
  }
  core.finish();
  if (arena != nullptr) {
    arena->jobs = std::move(core.jobs);
    arena->fifo_q = std::move(core.fifo_q);
    arena->serving = std::move(core.serving);
    arena->timeouts = std::move(timeouts);
    arena->completions = std::move(completions);
  }
  return core.result;
}

/// Shared argument validation for both entry points (bit-identity demands
/// identical rejection behaviour too).
void validate_config(const GGkConfig& config) {
  STAC_REQUIRE(config.utilization > 0.0 && config.utilization < 1.0);
  STAC_REQUIRE(config.servers >= 1);
  STAC_REQUIRE(config.mean_service > 0.0);
  STAC_REQUIRE(config.queries > config.warmup);
}

}  // namespace

void clear_crn_stream_cache() {
  {
    auto& cache = crn_cache();
    std::lock_guard lock(cache.mu);
    cache.map.clear();
  }
  obs::MetricsRegistry::global().gauge("ggk.crn_stream_cache.size").set(0.0);
}

void set_crn_stream_cache_capacity(std::size_t capacity) {
  auto& cache = crn_cache();
  std::lock_guard lock(cache.mu);
  cache.capacity = capacity == 0 ? 1 : capacity;
  if (cache.map.size() > cache.capacity) cache.map.clear();
}

std::size_t crn_stream_cache_capacity() {
  auto& cache = crn_cache();
  std::lock_guard lock(cache.mu);
  return cache.capacity;
}

std::size_t crn_stream_cache_size() {
  auto& cache = crn_cache();
  std::lock_guard lock(cache.mu);
  return cache.map.size();
}

GGkResult simulate_ggk(const GGkConfig& config) {
  STAC_TRACE_SPAN(span, "ggk.simulate", "queueing");
  validate_config(config);

  const Derived d = derive(config);
  GGkResult result;
  if (config.fast_events) {
    const std::size_t count = d.arrival_limit + 1;
    const std::shared_ptr<const PredrawnStreams> streams =
        crn_streams(config.seed, d.lambda, config.service_cv, count);
    result = simulate_fast(config, d, *streams);
  } else {
    result = simulate_legacy(config, d);
  }

  span.arg("utilization", config.utilization);
  span.arg("completed", static_cast<std::uint64_t>(result.completed));
  span.arg("cos_switches", result.cos_switches);
  span.arg("fast_events", static_cast<std::uint64_t>(config.fast_events));
  obs::count("ggk.runs");
  obs::count("ggk.completed", result.completed);
  obs::count("ggk.latency_injections", result.latency_injections);
  return result;
}

std::vector<GGkResult> simulate_ggk_batch(const std::vector<GGkConfig>& configs) {
  STAC_TRACE_SPAN(span, "ggk.simulate_batch", "queueing");
  std::vector<GGkResult> results;
  results.reserve(configs.size());
  if (configs.empty()) return results;

  // One arena and one per-batch stream table for the whole sweep: a grid
  // whose cells differ only in policy resolves to a single (seed, rate,
  // cv, count) stream fetched exactly once, and every replica recycles the
  // same job/heap storage.
  BatchArena arena;
  std::unordered_map<StreamKey, std::shared_ptr<const PredrawnStreams>,
                     StreamKeyHash>
      batch_streams;
  std::size_t completed_total = 0;
  std::size_t injections_total = 0;
  for (const GGkConfig& config : configs) {
    validate_config(config);
    const Derived d = derive(config);
    if (!config.fast_events) {
      results.push_back(simulate_legacy(config, d));
    } else {
      const std::size_t count = d.arrival_limit + 1;
      const StreamKey key{config.seed, std::bit_cast<std::uint64_t>(d.lambda),
                          std::bit_cast<std::uint64_t>(config.service_cv),
                          count};
      auto& slot = batch_streams[key];
      if (!slot)
        slot = crn_streams(config.seed, d.lambda, config.service_cv, count);
      results.push_back(simulate_fast(config, d, *slot, &arena));
    }
    completed_total += results.back().completed;
    injections_total += results.back().latency_injections;
  }

  span.arg("cells", static_cast<std::uint64_t>(configs.size()));
  span.arg("streams", static_cast<std::uint64_t>(batch_streams.size()));
  // Always-live (like the CRN stream counters): batch reuse is the whole
  // point of this entry point, so tests and benches can assert on it
  // without flipping the obs runtime gate.
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("ggk.batch.runs").add();
  registry.counter("ggk.batch.cells").add(configs.size());
  registry.counter("ggk.batch.streams_shared")
      .add(configs.size() >= batch_streams.size()
               ? configs.size() - batch_streams.size()
               : 0);
  obs::count("ggk.runs", configs.size());
  obs::count("ggk.completed", completed_total);
  obs::count("ggk.latency_injections", injections_total);
  return results;
}

}  // namespace stac::queueing

#include "queueing/testbed.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/fault_injection.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stac::queueing {

namespace {
/// Occupancy step tolerance: refresh events cap integration error.
constexpr double kOccTolerance = 0.05;
}  // namespace

Testbed::Testbed(TestbedConfig config)
    : config_(std::move(config)),
      occupancy_([&] {
        STAC_REQUIRE(!config_.workloads.empty());
        STAC_REQUIRE(config_.staps.size() == config_.workloads.size());
        std::vector<cat::PolicyAllocations> ps;
        ps.reserve(config_.staps.size());
        for (const auto& s : config_.staps) ps.push_back(s.allocations);
        // total_ways only bounds the plan; derive from the largest setting.
        std::uint32_t ways = 1;
        for (const auto& p : ps) ways = std::max(ways, p.boosted.end());
        return OccupancyModel(cat::AllocationPlan(ways, ps));
      }()),
      rng_(config_.seed) {
  wl_.resize(config_.workloads.size());
  for (std::size_t w = 0; w < wl_.size(); ++w) {
    WlState& s = wl_[w];
    s.cfg = config_.workloads[w];
    STAC_REQUIRE(s.cfg.model != nullptr);
    STAC_REQUIRE(s.cfg.servers >= 1);
    STAC_REQUIRE(s.cfg.utilization > 0.0 && s.cfg.utilization < 1.0);
    s.stap = config_.staps[w];
    s.scaled_base_service =
        s.cfg.time_scale * s.cfg.model->baseline_service_time();
  }
  // Make the heap deterministic across runs: reserve generously.
  heap_.reserve(4096);

  // Global fill normalizer kappa: with all workloads executing at their
  // baseline allocation, total fill pressure equals `occupancy_response`
  // region-capacities per time unit.  Ratios between workloads follow
  // their physical miss rates.
  double total_baseline_missrate = 0.0;
  for (const auto& s : wl_) {
    const double base_ways =
        static_cast<double>(s.stap.allocations.dflt.length);
    total_baseline_missrate += static_cast<double>(s.cfg.servers) *
                               s.cfg.model->miss_rate(base_ways);
  }
  fill_kappa_ = total_baseline_missrate > 0.0
                    ? config_.occupancy_response / total_baseline_missrate
                    : 0.0;
  occupancy_.set_background_churn(config_.background_churn);
  occupancy_.set_thrash_sensitivity(config_.thrash_sensitivity);
}

double Testbed::effective_allocation(double service_time_policy,
                                     double service_time_default,
                                     double allocation_ratio) {
  STAC_REQUIRE(service_time_policy > 0.0);
  STAC_REQUIRE(service_time_default > 0.0);
  STAC_REQUIRE(allocation_ratio >= 1.0);
  const double speedup = service_time_default / service_time_policy;
  return speedup / allocation_ratio;
}

void Testbed::schedule(double time, EventType type, std::uint32_t wlid,
                       std::uint32_t query, std::uint32_t gen) {
  heap_.push_back(Event{time, seq_++, type, wlid, query, gen});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

void Testbed::record_trace_sample(double at) {
  if (trace_.size() >= config_.max_trace_samples) return;
  // Chaos hook: a counter read can be lost (kDrop) or return garbage
  // (kCorrupt), exactly like a flaky MSR/CMT read on real hardware.  Keyed
  // on (testbed seed, sample ordinal): the schedule is deterministic per
  // run even when many testbeds share the injector across a thread pool.
  double corrupt_factor = 1.0;
  if (FaultInjector::global().armed()) {
    const FaultOutcome fault = FaultInjector::global().evaluate(
        "profiler.sample", fault_key(config_.seed, ++sample_ordinal_));
    if (fault.action == FaultAction::kDrop) {
      ++faults_.dropped_samples;
      obs::instant("fault.profiler.sample.drop", "fault");
      return;
    }
    if (fault.action == FaultAction::kCorrupt) {
      ++faults_.corrupted_samples;
      corrupt_factor = fault.corrupt_factor;
      obs::instant("fault.profiler.sample.corrupt", "fault");
    }
  }
  TraceSample sample;
  sample.time = at;
  sample.per_workload.reserve(wl_.size());
  for (std::size_t w = 0; w < wl_.size(); ++w) {
    const WlState& s = wl_[w];
    TraceSample::PerWorkload pw;
    pw.busy = static_cast<std::uint32_t>(s.in_service.size());
    pw.queued = static_cast<std::uint32_t>(s.fifo.size());
    pw.boosted = s.boost_refs > 0;
    double occ = 0.0;
    for (std::size_t r = 0; r < occupancy_.region_count(); ++r)
      occ += occupancy_.occupancy(r, w);
    pw.occupancy = occ;
    pw.effective_ways = occupancy_.effective_ways(w);
    pw.exec_rate = s.next_rate;
    if (corrupt_factor != 1.0) {  // garbage counter row
      pw.occupancy *= corrupt_factor;
      pw.effective_ways *= corrupt_factor;
      pw.exec_rate *= corrupt_factor;
    }
    sample.per_workload.push_back(pw);
  }
  trace_.push_back(std::move(sample));
}

void Testbed::advance_to(double t) {
  STAC_REQUIRE(t >= now_ - 1e-12);
  // Emit trace samples falling inside (now_, t] before state moves past
  // them; state reported is the held state, matching a hardware counter
  // read mid-interval.
  if (config_.sample_interval > 0.0) {
    while (next_sample_ <= t) {
      record_trace_sample(next_sample_);
      next_sample_ += config_.sample_interval;
    }
  }
  const double dt = std::max(0.0, t - now_);
  if (dt > 0.0) {
    // Update occupancy and integrate work done at the held rates.
    occupancy_.advance(dt);
    for (std::size_t w = 0; w < wl_.size(); ++w) {
      WlState& s = wl_[w];
      for (std::size_t qid : s.in_service) {
        Query& q = s.queries[qid];
        q.remaining = std::max(0.0, q.remaining - s.next_rate * dt);
      }
      const double eff = occupancy_.effective_ways(w);
      s.eff_ways_integral += eff * dt;
      double occ_total = 0.0;
      for (std::size_t r = 0; r < occupancy_.region_count(); ++r)
        occ_total += occupancy_.occupancy(r, w);
      s.occ_integral += occ_total * dt;
      if (s.boost_refs > 0) s.boost_time += dt;
    }
  }
  now_ = t;
}

void Testbed::recompute_rates() {
  for (std::size_t w = 0; w < wl_.size(); ++w) {
    WlState& s = wl_[w];
    const double eff = occupancy_.effective_ways(w);
    const double mean_service =
        s.cfg.time_scale * s.cfg.model->mean_service_time(eff);
    const double old_rate = s.next_rate;
    s.next_rate = 1.0 / mean_service;
    // Execution rate moved: previously scheduled completion times are
    // wrong for this workload — reschedule them (lazy deletion skips the
    // stale events).
    if (old_rate > 0.0 &&
        std::abs(s.next_rate - old_rate) > 1e-9 * old_rate)
      reschedule_completions(static_cast<std::uint32_t>(w));
    // Fill pressure while boosted: physical miss rate of the executing
    // queries, normalized by the global kappa so that fill-rate ratios
    // between workloads stay physical under time compression.
    double fill = 0.0;
    if (s.boost_refs > 0 && !s.in_service.empty()) {
      fill = static_cast<double>(s.in_service.size()) *
             s.cfg.model->miss_rate(eff) * fill_kappa_;
    }
    s.miss_fill_rate = fill;
    occupancy_.set_fill_rate(w, fill);
  }
}

void Testbed::reschedule_completions(std::uint32_t wlid) {
  WlState& s = wl_[wlid];
  for (std::size_t qid : s.in_service) {
    Query& q = s.queries[qid];
    ++q.gen;
    const double eta =
        s.next_rate > 0.0 ? q.remaining / s.next_rate : config_.max_time;
    schedule(now_ + eta, EventType::kCompletion, wlid,
             static_cast<std::uint32_t>(qid), q.gen);
  }
}

void Testbed::maybe_schedule_refresh() {
  const double step = occupancy_.suggested_step(kOccTolerance);
  if (std::isfinite(step)) {
    ++refresh_gen_;
    schedule(now_ + step, EventType::kRefresh, 0, 0, refresh_gen_);
  }
}

void Testbed::start_service(std::uint32_t wlid, std::size_t qid) {
  WlState& s = wl_[wlid];
  Query& q = s.queries[qid];
  q.start = now_;
  s.in_service.push_back(qid);
  // §3.3: when a query begins processing, time waiting in the system is
  // compared against the warning — a query may start already overdue.
  if (!q.boosted &&
      s.stap.should_boost(now_ - q.arrival, q.expected_service)) {
    q.boosted = true;
    set_boost(wlid, true);
  }
}

void Testbed::handle_arrival(std::uint32_t wlid) {
  WlState& s = wl_[wlid];
  // Next arrival.
  const double rate = s.cfg.utilization *
                      static_cast<double>(s.cfg.servers) /
                      s.scaled_base_service;
  InterarrivalSampler inter(s.cfg.arrival_kind, rate);
  schedule(now_ + inter.sample(rng_), EventType::kArrival, wlid);

  // Admit the query.
  Query q;
  q.arrival = now_;
  q.demand = s.cfg.model->sample_demand(rng_);
  // Chaos hook: a latency spike (interference burst, minor page faults)
  // inflates this query's demand by the injected relative amount.
  if (FaultInjector::global().armed()) {
    const FaultOutcome fault = FaultInjector::global().evaluate(
        "testbed.service", fault_key(config_.seed, ++arrival_ordinal_));
    if (fault.action == FaultAction::kLatency) {
      q.demand *= 1.0 + std::max(0.0, fault.latency);
      ++faults_.latency_injections;
      obs::instant("fault.testbed.service", "fault");
    }
  }
  q.remaining = q.demand;
  q.expected_service = s.scaled_base_service;
  s.queries.push_back(q);
  const std::size_t qid = s.queries.size() - 1;

  if (s.stap.timeout_rel < cat::kNeverBoostTimeout) {
    schedule(now_ + s.stap.timeout_rel * q.expected_service,
             EventType::kTimeout, wlid, static_cast<std::uint32_t>(qid));
  }
  if (s.in_service.size() < s.cfg.servers) {
    start_service(wlid, qid);
    recompute_rates();
    reschedule_completions(wlid);
    maybe_schedule_refresh();
  } else {
    s.fifo.push_back(qid);
  }
}

void Testbed::handle_completion(std::uint32_t wlid, std::uint32_t qid,
                                std::uint32_t gen) {
  WlState& s = wl_[wlid];
  Query& q = s.queries[qid];
  if (q.done || q.gen != gen) return;  // stale event
  if (q.remaining > 1e-9) {
    // Rates changed since scheduling; push the completion out.
    ++q.gen;
    schedule(now_ + q.remaining / s.next_rate, EventType::kCompletion, wlid,
             qid, q.gen);
    return;
  }
  q.done = true;
  s.in_service.erase(
      std::find(s.in_service.begin(), s.in_service.end(), qid));
  if (q.boosted) set_boost(wlid, false);

  ++s.total_completed;
  if (s.total_completed > config_.warmup_completions &&
      s.result.completed < config_.target_completions) {
    ++s.result.completed;
    s.result.response_times.add(now_ - q.arrival);
    s.result.queue_delays.add(q.start - q.arrival);
    s.result.service_durations.add(now_ - q.start);
    if (q.boosted) ++s.result.boosted_queries;
  }

  if (!s.fifo.empty()) {
    const std::size_t next = s.fifo.front();
    s.fifo.pop_front();
    start_service(wlid, next);
  }
  recompute_rates();
  reschedule_completions(wlid);
  maybe_schedule_refresh();
}

void Testbed::handle_timeout(std::uint32_t wlid, std::uint32_t qid) {
  WlState& s = wl_[wlid];
  Query& q = s.queries[qid];
  if (q.done || q.boosted) return;
  q.boosted = true;
  set_boost(wlid, true);
}

void Testbed::set_boost(std::uint32_t wlid, bool up) {
  WlState& s = wl_[wlid];
  const bool was = s.boost_refs > 0;
  if (up) {
    ++s.boost_refs;
  } else {
    STAC_REQUIRE(s.boost_refs > 0);
    --s.boost_refs;
  }
  const bool is = s.boost_refs > 0;
  if (was != is) {
    ++s.result.cos_switches;
    if (is && config_.max_boost_lease_rel > 0.0) {
      // Grant watchdog: arm a lease on this boost epoch.  The generation
      // stamp invalidates the event if the class reverts (and possibly
      // re-boosts) before the lease expires.
      ++s.lease_gen;
      schedule(now_ + config_.max_boost_lease_rel * s.scaled_base_service,
               EventType::kLease, wlid, 0, s.lease_gen);
    } else if (!is) {
      ++s.lease_gen;  // epoch over; any armed lease event is now stale
    }
    recompute_rates();
    // Rates themselves move only via occupancy, but fill pressure changed;
    // refresh pacing must follow.
    maybe_schedule_refresh();
  }
}

void Testbed::force_revoke_boost(std::uint32_t wlid) {
  WlState& s = wl_[wlid];
  if (s.boost_refs == 0) return;
  // Every outstanding grant is dropped: in-flight and queued queries lose
  // their boosted flag, so their eventual completions do not decrement a
  // refcount that no longer carries their grant (no underflow, no leak).
  for (std::size_t qid : s.in_service) s.queries[qid].boosted = false;
  for (std::size_t qid : s.fifo) s.queries[qid].boosted = false;
  s.boost_refs = 0;
  ++s.lease_gen;
  ++s.result.cos_switches;
  ++faults_.watchdog_revocations;
  obs::instant("testbed.watchdog_revoke", "fault");
  recompute_rates();
  maybe_schedule_refresh();
}

bool Testbed::all_done() const {
  for (const auto& s : wl_)
    if (s.result.completed < config_.target_completions) return false;
  return true;
}

TestbedResult Testbed::run() {
  STAC_TRACE_SPAN(span, "testbed.run", "queueing");
  span.arg("workloads", static_cast<std::uint64_t>(wl_.size()));
  // Kick off one arrival per workload (staggered by the sampler itself).
  for (std::uint32_t w = 0; w < wl_.size(); ++w) {
    const WlState& s = wl_[w];
    const double rate = s.cfg.utilization *
                        static_cast<double>(s.cfg.servers) /
                        s.scaled_base_service;
    InterarrivalSampler inter(s.cfg.arrival_kind, rate);
    schedule(inter.sample(rng_), EventType::kArrival, w);
  }
  recompute_rates();
  next_sample_ = config_.sample_interval;

  TestbedResult result;
  while (!heap_.empty()) {
    if (all_done()) break;
    if (++events_ > config_.max_events) {
      result.hit_event_cap = true;
      break;
    }
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const Event ev = heap_.back();
    heap_.pop_back();
    if (ev.time > config_.max_time) break;
    advance_to(ev.time);
    switch (ev.type) {
      case EventType::kArrival:
        handle_arrival(ev.wl);
        break;
      case EventType::kCompletion:
        handle_completion(ev.wl, ev.query, ev.gen);
        break;
      case EventType::kTimeout:
        handle_timeout(ev.wl, ev.query);
        break;
      case EventType::kRefresh:
        if (ev.gen != refresh_gen_) break;  // superseded
        recompute_rates();
        for (std::uint32_t w = 0; w < wl_.size(); ++w)
          reschedule_completions(w);
        maybe_schedule_refresh();
        break;
      case EventType::kLease:
        if (ev.gen != wl_[ev.wl].lease_gen) break;  // stale lease
        force_revoke_boost(ev.wl);
        break;
    }
  }

  result.sim_time = now_;
  result.events_processed = events_;
  result.trace = std::move(trace_);
  result.faults = faults_;
  result.per_workload.reserve(wl_.size());
  for (auto& s : wl_) {
    if (now_ > 0.0) {
      s.result.boost_time_fraction = s.boost_time / now_;
      s.result.mean_effective_ways = s.eff_ways_integral / now_;
      s.result.mean_occupancy = s.occ_integral / now_;
    }
    // Teardown accounting: a healthy run ends with the refcount exactly
    // covering the still-in-flight boosted queries — anything else is a
    // leaked or double-released grant.
    s.result.final_boost_refs = s.boost_refs;
    std::uint32_t inflight_boosted = 0;
    for (std::size_t qid : s.in_service)
      if (s.queries[qid].boosted) ++inflight_boosted;
    for (std::size_t qid : s.fifo)
      if (s.queries[qid].boosted) ++inflight_boosted;
    s.result.final_inflight_boosted = inflight_boosted;
    result.per_workload.push_back(std::move(s.result));
  }
  span.arg("events", events_);
  span.arg("sim_time", now_);
  obs::count("testbed.runs");
  obs::count("testbed.events", events_);
  return result;
}

}  // namespace stac::queueing

// Shared-region occupancy model: the continuous-time abstraction of what
// the cache simulator does line by line.
//
// The LLC ways of an allocation plan partition into private ways (exactly
// one possible filler) and shared regions (two fillers, by the paper's §2
// conjecture).  Within a shared region, each workload owns a fraction
// occ_i of the lines.  While a workload is boosted it fills the region at
// rate phi_i (misses per region-capacity per unit time); victims are chosen
// uniformly at random among resident lines, giving the classic occupancy
// ODE:
//
//      free space left:  d occ_i/dt = phi_i                (no evictions)
//      region full:      d occ_i/dt = phi_i - Phi * occ_i  (Phi = sum phi)
//
// whose full-region solution is exponential relaxation toward phi_i / Phi.
// Crucially, a workload that stops filling (boost revoked) keeps its
// occupancy until *other* workloads' fills displace it — the CAT
// hits-anywhere residual benefit the cache simulator exhibits.
#pragma once

#include <cstddef>
#include <vector>

#include "cat/allocation_plan.hpp"

namespace stac::queueing {

/// One maximal run of ways fillable by the same set (>= 2) of workloads.
struct SharedRegion {
  std::uint32_t first_way = 0;
  std::uint32_t way_count = 0;
  std::vector<std::size_t> sharers;  ///< workload indices, ascending
};

/// Derive the shared regions of a plan: consecutive ways whose boosted-
/// filler sets are identical and contain at least two workloads.
[[nodiscard]] std::vector<SharedRegion> find_shared_regions(
    const cat::AllocationPlan& plan);

/// Occupancy state + dynamics for every shared region of a plan.
class OccupancyModel {
 public:
  explicit OccupancyModel(const cat::AllocationPlan& plan);

  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }
  [[nodiscard]] const std::vector<SharedRegion>& regions() const {
    return regions_;
  }

  /// occ of workload w in region r, in [0, 1].
  [[nodiscard]] double occupancy(std::size_t r, std::size_t w) const;

  /// Workload w's current effective LLC ways: private ways plus its
  /// occupancy-weighted share of each region it can fill.
  [[nodiscard]] double effective_ways(std::size_t w) const;

  /// Set workload w's fill rate into its regions, in region-capacities per
  /// unit time (misses/sec divided by region lines); 0 when not boosted.
  /// Fills split across w's regions proportionally to region size.
  void set_fill_rate(std::size_t w, double rate);

  /// Background churn: an implicit extra sharer (OS activity, prefetchers,
  /// other tenants) that steadily displaces resident lines at `rate`
  /// region-capacities per unit time.  With churn > 0 occupancy earned
  /// during a boost decays even when no collocated service fills — the
  /// "short-term" in short-term allocation.  0 (default) disables it.
  void set_background_churn(double rate);
  [[nodiscard]] double background_churn() const { return churn_; }

  /// Thrash sensitivity: occupancy only helps if a line survives until its
  /// next reuse.  Workload w's shared-region contribution is scaled by
  /// 1 / (1 + sensitivity * (others' fill rate + churn)) — two services
  /// hammering one region concurrently each get far less benefit than
  /// their occupancy shares suggest (the paper's recurring-contention
  /// slowdown).  0 (default) disables the penalty.
  void set_thrash_sensitivity(double sensitivity);
  [[nodiscard]] double thrash_sensitivity() const { return thrash_; }

  /// Advance occupancies by dt under the current fill rates.
  void advance(double dt);

  /// Longest step that keeps occupancy movement under `tol` of its range;
  /// +inf when nothing is moving (event-scheduling hint for the testbed).
  [[nodiscard]] double suggested_step(double tol) const;

  /// Reset to a cold region (all occupancies zero).
  void reset();

 private:
  struct RegionState {
    SharedRegion region;
    std::vector<double> occ;    ///< per sharer
    std::vector<double> phi;    ///< per sharer fill rate (region/sec)
  };

  cat::AllocationPlan plan_;
  std::vector<SharedRegion> regions_;
  std::vector<RegionState> state_;
  std::vector<std::uint32_t> private_ways_;
  double churn_ = 0.0;
  double thrash_ = 0.0;
};

}  // namespace stac::queueing

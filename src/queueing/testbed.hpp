// The ground-truth collocated testbed: the discrete-event simulator that
// substitutes for the paper's physical Xeon + CAT machines.
//
// Per workload: Poisson query arrivals (rate expressed as a utilization of
// the baseline service rate), a FIFO queue in front of `servers` cores, and
// a short-term allocation policy (a, a', t).  Query execution progresses at
// an instantaneous rate set by the workload's miss-ratio curve evaluated at
// its current *effective* ways — private ways plus its occupancy share of
// the shared regions (shared_region.hpp).  When a query's sojourn exceeds
// t x expected service time, the workload's class of service switches to
// the boosted mask (all outstanding queries share it, §4) and its misses
// start filling the shared region; completion of the last boosted query
// reverts the mask, but earned occupancy persists until neighbours' fills
// displace it.  Contention, recurring slowdowns, and arrival-rate coupling
// all emerge from this loop rather than being scripted.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "cat/stap.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "queueing/arrival.hpp"
#include "queueing/shared_region.hpp"
#include "wl/workload.hpp"

namespace stac::queueing {

struct TestbedWorkload {
  const wl::WorkloadModel* model = nullptr;
  /// Offered load as a fraction of capacity: arrival rate =
  /// utilization * servers / (scaled baseline service time).  Table 2
  /// studies 25%–95%.
  double utilization = 0.5;
  /// Query slots (the paper provisions 2 cores per service).
  std::size_t servers = 2;
  /// Service-time normalization multiplier: simulations of pairs with very
  /// different native timescales compress the ratio (see DESIGN.md) —
  /// conditions are all expressed relative to service time, so results are
  /// scale-free.
  double time_scale = 1.0;
  ArrivalKind arrival_kind = ArrivalKind::kExponential;
};

struct TestbedConfig {
  std::vector<TestbedWorkload> workloads;
  cat::StapVector staps;  ///< one per workload, aligned with `workloads`
  /// Shared-region turnover speed: with every workload filling at its
  /// baseline miss rate, the region is displaced `occupancy_response` times
  /// per simulated time unit.  Fill-rate *ratios* between workloads always
  /// follow their physical miss rates; this constant only sets how fast
  /// occupancy reacts relative to service times (time-compressed
  /// simulations have no single physical mapping, see DESIGN.md).
  double occupancy_response = 2.0;
  /// Background displacement of shared-way occupancy (OS activity,
  /// prefetchers, other tenants) in region-capacities per time unit; makes
  /// short-term allocation genuinely short-term — earned occupancy decays
  /// within a few service times unless the workload keeps boosting.
  double background_churn = 0.25;
  /// Concurrent-displacement penalty on shared-way benefit (see
  /// OccupancyModel::set_thrash_sensitivity): makes permanent mutual
  /// sharing strictly worse than alternating short-term boosts — the
  /// recurring-contention slowdown the paper's policies must navigate.
  double thrash_sensitivity = 0.6;
  /// Stop once every workload has this many *counted* completions.
  std::size_t target_completions = 2000;
  /// Completions per workload discarded as warmup.
  std::size_t warmup_completions = 100;
  /// Hard safety caps.
  double max_time = 1e9;
  std::uint64_t max_events = 20'000'000;
  std::uint64_t seed = 1;
  /// Trace hook: > 0 records a TraceSample every `sample_interval` time
  /// units (the profiler's 12–60 samples/min counter sampling, §3.1).
  double sample_interval = 0.0;
  std::size_t max_trace_samples = 100'000;
  /// Grant watchdog: force-revoke a workload's boost once its class has
  /// been continuously boosted for more than this many expected service
  /// times (<= 0 disables).  Outstanding boosted queries lose their grant
  /// (their later unboosts become no-ops) so a leaked refcount can never
  /// pin shared ways indefinitely.
  double max_boost_lease_rel = 0.0;
};

/// Chaos accounting: what the armed FaultInjector did to this run.  The
/// testbed consults the "profiler.sample" fault point per trace sample
/// (drop / corrupt) and the "testbed.service" point per arrival (latency);
/// all zero when no plan is armed.
struct TestbedFaultCounters {
  std::uint64_t dropped_samples = 0;
  std::uint64_t corrupted_samples = 0;
  std::uint64_t latency_injections = 0;
  std::uint64_t watchdog_revocations = 0;  ///< boost leases force-revoked
};

/// Point-in-time dynamic state captured by the trace hook (the profiler
/// replays these through the cache simulator to produce counter images).
struct TraceSample {
  double time = 0.0;
  struct PerWorkload {
    std::uint32_t busy = 0;       ///< queries in service
    std::uint32_t queued = 0;     ///< queries waiting
    bool boosted = false;
    double occupancy = 0.0;       ///< total shared occupancy
    double effective_ways = 0.0;
    double exec_rate = 0.0;       ///< per-query demand/sec
  };
  std::vector<PerWorkload> per_workload;
};

struct TestbedWorkloadResult {
  SampleStats response_times;  ///< sojourn (queue + service), counted only
  SampleStats queue_delays;
  SampleStats service_durations;
  std::size_t completed = 0;         ///< counted completions
  std::size_t boosted_queries = 0;   ///< counted completions that boosted
  double boost_time_fraction = 0.0;  ///< fraction of time class was boosted
  double mean_effective_ways = 0.0;  ///< time-averaged
  double mean_occupancy = 0.0;       ///< time-averaged total shared occ
  std::uint64_t cos_switches = 0;
  /// Teardown invariants: the boost refcount at simulation end must equal
  /// the number of still-in-flight boosted queries (zero leaks).
  std::uint32_t final_boost_refs = 0;
  std::uint32_t final_inflight_boosted = 0;
};

struct TestbedResult {
  std::vector<TestbedWorkloadResult> per_workload;
  std::vector<TraceSample> trace;  ///< empty unless sample_interval > 0
  double sim_time = 0.0;
  std::uint64_t events_processed = 0;
  bool hit_event_cap = false;
  TestbedFaultCounters faults;

  /// Mean response time of workload w; quiet NaN for an out-of-range
  /// workload id or when the workload completed zero queries (both happen
  /// under heavy fault injection), never a thrown exception.
  [[nodiscard]] double mean_rt(std::size_t w) const {
    if (w >= per_workload.size() || per_workload[w].completed == 0)
      return std::numeric_limits<double>::quiet_NaN();
    return per_workload[w].response_times.mean();
  }
  [[nodiscard]] double p95_rt(std::size_t w) const {
    if (w >= per_workload.size())
      return std::numeric_limits<double>::quiet_NaN();
    return per_workload[w].response_times.percentile_or(
        0.95, std::numeric_limits<double>::quiet_NaN());
  }
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  /// Run to completion and report.
  [[nodiscard]] TestbedResult run();

  /// Effective cache allocation (Eq. 3) measured from two testbed runs:
  ///   EA = (T_default / T_policy) / (l_a' / l_a)
  /// where T_* are mean *service* durations (queueing excluded) and the
  /// denominator is the gross allocation increase.  The paper's Eq. 3
  /// prints the inverse ratio but describes "speedup / increased
  /// allocation"; we implement the description (EA in (0, 1], ~1 when extra
  /// ways convert fully into speedup).
  [[nodiscard]] static double effective_allocation(
      double service_time_policy, double service_time_default,
      double allocation_ratio);

 private:
  struct Query {
    double arrival = 0.0;
    double demand = 1.0;
    double remaining = 0.0;  ///< demand units left
    double start = -1.0;     ///< service start time (-1: queued)
    double expected_service = 0.0;
    bool boosted = false;
    bool done = false;
    std::uint32_t gen = 0;  ///< completion-event generation
  };

  struct WlState {
    TestbedWorkload cfg;
    cat::Stap stap;
    std::vector<Query> queries;
    std::deque<std::size_t> fifo;
    std::vector<std::size_t> in_service;
    double next_rate = 0.0;      ///< per-query execution rate (demand/sec)
    double miss_fill_rate = 0.0; ///< region-capacities/sec while boosted
    std::uint32_t boost_refs = 0;
    double scaled_base_service = 0.0;
    std::uint32_t lease_gen = 0;  ///< invalidates stale kLease events
    // accumulators
    TestbedWorkloadResult result;
    double eff_ways_integral = 0.0;
    double occ_integral = 0.0;
    double boost_time = 0.0;
    std::size_t total_completed = 0;
  };

  enum class EventType : std::uint8_t {
    kArrival,
    kCompletion,
    kTimeout,
    kRefresh,
    kLease  ///< grant-watchdog lease expiry
  };
  struct Event {
    double time;
    std::uint64_t seq;  ///< FIFO tie-break for determinism
    EventType type;
    std::uint32_t wl;
    std::uint32_t query;
    std::uint32_t gen;
    [[nodiscard]] bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  void schedule(double time, EventType type, std::uint32_t wlid,
                std::uint32_t query = 0, std::uint32_t gen = 0);
  void advance_to(double t);
  void recompute_rates();
  void reschedule_completions(std::uint32_t wlid);
  void maybe_schedule_refresh();
  void start_service(std::uint32_t wlid, std::size_t qid);
  void handle_arrival(std::uint32_t wlid);
  void handle_completion(std::uint32_t wlid, std::uint32_t qid,
                         std::uint32_t gen);
  void handle_timeout(std::uint32_t wlid, std::uint32_t qid);
  void set_boost(std::uint32_t wlid, bool up);
  /// Grant watchdog: drop every boost grant of the workload (refcount to
  /// zero, outstanding queries lose their boosted flag) and revert the COS.
  void force_revoke_boost(std::uint32_t wlid);
  [[nodiscard]] bool all_done() const;

  TestbedConfig config_;
  OccupancyModel occupancy_;
  std::vector<WlState> wl_;
  std::vector<Event> heap_;
  void record_trace_sample(double at);

  Rng rng_;
  std::vector<TraceSample> trace_;
  TestbedFaultCounters faults_;
  double next_sample_ = 0.0;
  double fill_kappa_ = 0.0;  ///< global fill-rate normalizer
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
  std::uint32_t refresh_gen_ = 0;
  std::uint64_t sample_ordinal_ = 0;   ///< fault key: trace samples seen
  std::uint64_t arrival_ordinal_ = 0;  ///< fault key: arrivals admitted
};

}  // namespace stac::queueing

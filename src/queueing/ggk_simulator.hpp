// Stage-3 first-principles model: a G/G/k queueing simulator whose service
// rate switches when the short-term allocation timeout fires (§3.3).
//
// This is deliberately a *different, simpler* model than the testbed: it
// knows nothing about occupancy dynamics or the collocated neighbour —
// everything micro-architectural is summarized in one number, the effective
// cache allocation (EA).  When a query's sojourn exceeds the timeout, its
// remaining execution proceeds at `EA x allocation_ratio` times the base
// rate.  Short-term allocation breaks the Markov assumption (service rate
// depends on queueing delay), which is why this is a discrete-event
// simulation rather than a closed-form queueing formula.
//
// Two event engines share one job-accounting core (DESIGN.md §10):
//   * legacy (`fast_events = false`): one std::push_heap/pop_heap binary
//     heap carrying arrivals, timeouts and completions, with inline RNG
//     draws — the reference implementation.
//   * fast (`fast_events = true`, default): arrival and demand streams are
//     pre-drawn into reusable buffers shared through a process-wide common-
//     random-number cache keyed on (seed, rate, cv, count); arrivals replay
//     from the sorted buffer, timeouts queue in a FIFO (their times are
//     nondecreasing by construction), and only completions go through an
//     indexed 4-ary min-heap with lazy deletion keyed by job generation.
// Both engines process the identical event sequence and produce bit-
// identical results (tests/queueing/ggk_fast_test.cpp sweeps the
// adversarial corners).
//
// simulate_ggk_batch layers a third entry point on the fast engine for the
// §5.2 policy sweep (DESIGN.md §13): many replicas advance through one
// engine cell-major, with per-replica state recycled through a shared
// arena and CRN streams fetched once per (seed, rate, cv, count) group —
// per-cell results stay bit-identical to simulate_ggk.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace stac::queueing {

struct GGkConfig {
  /// Offered load: arrival rate = utilization * servers / mean service.
  double utilization = 0.5;
  std::size_t servers = 2;
  /// Mean service time at the default allocation (any unit; results are in
  /// the same unit).
  double mean_service = 1.0;
  /// Coefficient of variation of per-query demand (log-normal).
  double service_cv = 0.2;
  /// STAP timeout relative to mean service time; >= 6 disables boosting.
  double timeout_rel = 6.0;
  /// Effective cache allocation (Eq. 3) predicted for this condition.
  double effective_allocation = 1.0;
  /// Gross allocation increase l_a' / l_a while boosted.
  double allocation_ratio = 1.0;
  /// Residual-occupancy extension: CAT permits hits in any way, so shared-
  /// way occupancy earned during boosts keeps speeding up *default*phase
  /// execution until displaced.  The default rate is multiplied by
  /// 1 + residual_weight * boost_prevalence * (boost_multiplier - 1), with
  /// `boost_prevalence` fed back from the previous simulation round (the
  /// §3.3 dynamic-condition feedback).
  double residual_weight = 0.9;
  double boost_prevalence = 0.0;
  /// §4 semantics (default): one overdue query switches the whole class of
  /// service, so every executing query runs boosted until the last overdue
  /// query completes.  false = per-query boosting (ablation: misses the
  /// congestion-triggered class-wide speedup and mispredicts heavy-load
  /// long-timeout conditions badly — see DESIGN.md §5b).
  bool class_level_boost = true;
  /// Event-engine selection (see header note).  Results are bit-identical
  /// either way; `true` replays pre-drawn streams through the 4-ary heap
  /// engine and is the production default.
  bool fast_events = true;
  std::size_t queries = 4000;
  std::size_t warmup = 200;
  std::uint64_t seed = 7;
};

struct GGkResult {
  SampleStats response_times;
  SampleStats queue_delays;
  std::size_t boosted_queries = 0;
  std::size_t completed = 0;
  /// Mean instantaneous queueing delay — fed back as a dynamic-condition
  /// feature for the model (§3.3 "outputted as dynamic condition feedback").
  double mean_queue_delay = 0.0;
  /// Teardown invariants (class-level boosting): the refcount left at
  /// simulation end must equal the number of still-outstanding overdue
  /// jobs, and every counted sojourn must be non-negative.
  std::uint32_t residual_boost_refs = 0;
  std::uint32_t residual_overdue_jobs = 0;
  std::uint64_t cos_switches = 0;  ///< class boost transitions (up + down)
  std::uint64_t latency_injections = 0;  ///< "ggk.service" chaos hits
  std::size_t negative_sojourns = 0;     ///< counted completions with rt < 0
};

/// Run the Stage-3 simulator.  Boosted execution rate multiplier is
/// max(1, EA x allocation_ratio) — allocation never slows a query down
/// below its default rate (CAT masks only add fill ways).
[[nodiscard]] GGkResult simulate_ggk(const GGkConfig& config);

/// Run a whole policy-sweep worth of replicas through one engine.  The
/// batch is processed cell-major: every replica's jobs, FIFO, server pool
/// and lazy-deletion completion heap live in one arena that is recycled
/// from cell to cell, so the sweep allocates once per batch instead of once
/// per cell, and the pre-drawn CRN arrival/demand streams are fetched once
/// per distinct (seed, rate, cv, count) group and shared by reference
/// across every cell that differs only in policy (timeout / boost rates).
/// Per-batch reuse is reported through the "ggk.batch.*" obs counters.
///
/// results[i] is bit-identical to simulate_ggk(configs[i]) — same
/// validation, same event sequence, same chaos hooks; cells with
/// `fast_events = false` run the legacy reference engine, exactly as the
/// per-cell entry point would.
[[nodiscard]] std::vector<GGkResult> simulate_ggk_batch(
    const std::vector<GGkConfig>& configs);

/// Drop every pre-drawn common-random-number stream held by the fast
/// engine's process-wide cache (tests).
void clear_crn_stream_cache();

/// Bound the process-wide CRN stream cache (default 64 streams).  At
/// capacity the whole map is flushed (epoch eviction, like the
/// RtPredictionCache) — a controller sweeping drifting (seed, rate, cv)
/// conditions for the process lifetime stays bounded.  Zero means
/// capacity 1.  The live entry count is exported as the
/// "ggk.crn_stream_cache.size" obs gauge.
void set_crn_stream_cache_capacity(std::size_t capacity);
[[nodiscard]] std::size_t crn_stream_cache_capacity();
[[nodiscard]] std::size_t crn_stream_cache_size();

}  // namespace stac::queueing

// Inter-arrival time samplers.  The paper's evaluation uses exponential
// inter-arrival times (§5.2) with rates expressed relative to service time
// (Table 2: 25–95%); deterministic and log-normal variants exist for tests
// and sensitivity studies.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace stac::queueing {

enum class ArrivalKind : std::uint8_t {
  kExponential,  ///< Poisson arrivals (the paper's setting)
  kDeterministic,
  kLogNormal,
};

class InterarrivalSampler {
 public:
  /// `rate` in queries per unit time; `cv` only used by kLogNormal.
  InterarrivalSampler(ArrivalKind kind, double rate, double cv = 1.0);

  [[nodiscard]] double sample(Rng& rng) const;
  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] ArrivalKind kind() const { return kind_; }

 private:
  ArrivalKind kind_;
  double rate_;
  double cv_;
};

}  // namespace stac::queueing

#include "fleet/fleet_coordinator.hpp"

#include <chrono>
#include <cmath>

#include "common/check.hpp"
#include "common/fault_injection.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stac::fleet {

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

FleetCoordinator::FleetCoordinator(
    serve::ModelSnapshot<serve::ServingModel>& models, FleetConfig config)
    : models_(models), config_(std::move(config)),
      planner_(config_.planner),
      applied_timeout_primary_(config_.planner.base_condition.timeout_primary),
      applied_timeout_collocated_(
          config_.planner.base_condition.timeout_collocated) {
  STAC_REQUIRE(config_.shards >= 1);
  STAC_REQUIRE_MSG(config_.cats.empty() ||
                       config_.cats.size() == config_.shards,
                   "cats must be empty or one per shard");
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    cat::CatController* cat =
        config_.cats.empty() ? nullptr : config_.cats[i];
    shards_.push_back(std::make_unique<NodeShard>(
        config_.shard, config_.planner.base_condition.timeout_primary,
        config_.planner.base_condition.timeout_collocated, cat));
  }
  moments_.reserve(config_.shards);
}

std::size_t FleetCoordinator::active_shards() const {
  std::size_t n = 0;
  for (const auto& s : shards_)
    if (s->active()) ++n;
  return n;
}

FleetEpochReport FleetCoordinator::run_epoch(double now) {
  STAC_TRACE_SPAN(span, "fleet.epoch", "fleet");
  auto& registry = obs::MetricsRegistry::global();

  // Chaos hook, mirroring "serve.controller.epoch": a kThrow models the
  // coordinator thread dying mid-tick, before the epoch counter moves.
  FaultInjector::global().check("fleet.coordinator.epoch");

  FleetEpochReport report;
  report.epoch = ++totals_.epochs;
  report.now = now;

  // 1. Node-local drains.
  for (auto& s : shards_) {
    if (!s->active()) continue;
    ++report.active_shards;
    report.events_drained += s->drain();
  }
  totals_.events_drained += report.events_drained;
  registry.counter("fleet.events_drained").add(report.events_drained);

  // 2. Fleet-wide condition aggregation: total offered load against total
  // active capacity.  With zero active shards the merge yields a cold
  // estimate and the epoch holds — a fully-departed fleet plans nothing.
  const std::size_t servers_total =
      config_.shard.servers * std::max<std::size_t>(1, report.active_shards);
  core::MergedWorkloadEstimate merged[2];
  for (std::size_t w = 0; w < 2; ++w) {
    moments_.clear();
    for (auto& s : shards_)
      if (s->active()) moments_.push_back(s->moments(w, now));
    merged[w] =
        core::merge_moments(moments_, servers_total, pooled_min_completions());
  }
  report.merged_primary = merged[0];
  report.merged_collocated = merged[1];
  report.warm = merged[0].warm && merged[1].warm;

  // 3-4. One global plan on the merged condition; publish + push.
  const double t0 = now_seconds();
  if (report.warm && report.active_shards > 0) {
    const serve::PlanOutcome outcome = planner_.plan(
        models_, merged[0].utilization, merged[1].utilization);
    report.planned_condition = outcome.planned_condition;
    report.probe_rung = outcome.probe_rung;
    report.model_version = outcome.model_version;
    report.cells_simulated = outcome.cells_simulated;
    report.cells_reused = outcome.cells_reused;
    report.model_unavailable_hold = outcome.model_unavailable_hold;
    report.stale_hold = outcome.stale_hold;
    report.deadline_miss = outcome.deadline_miss;
    if (outcome.model_unavailable_hold) ++totals_.model_unavailable_holds;
    if (outcome.model_swap_observed) ++totals_.model_swaps_observed;
    if (outcome.stale_hold) ++totals_.stale_holds;
    if (outcome.deadline_miss) ++totals_.deadline_misses;
    if (outcome.replanned) {
      // No NaN ever reaches a published plan: the sweep's selection comes
      // off the explorer grid, but assert the invariant at the publish
      // boundary rather than trusting the whole pipeline.
      STAC_ENSURE(std::isfinite(outcome.timeout_primary) &&
                  outcome.timeout_primary >= 0.0);
      STAC_ENSURE(std::isfinite(outcome.timeout_collocated) &&
                  outcome.timeout_collocated >= 0.0);
      auto plan = std::make_unique<FleetPlan>();
      plan->epoch = report.epoch;
      plan->model_version = outcome.model_version;
      plan->planned_condition = outcome.planned_condition;
      plan->timeout_primary = outcome.timeout_primary;
      plan->timeout_collocated = outcome.timeout_collocated;
      plans_.publish(std::move(plan));
      // Synchronous push to every active node (nodes that were asleep for
      // the publish still converge via refresh_plan — same RCU snapshot).
      for (auto& s : shards_) {
        if (!s->active()) continue;
        if (s->refresh_plan(plans_)) ++totals_.plan_pushes;
      }
      applied_timeout_primary_ = outcome.timeout_primary;
      applied_timeout_collocated_ = outcome.timeout_collocated;
      report.replanned = true;
      ++totals_.replans;
    }
  }
  report.plan_seconds = now_seconds() - t0;
  registry.latency("fleet.epoch_plan_seconds").record(report.plan_seconds);

  // 5. Per-node epilogue: admission feedback + CAT watchdog.
  const double lag = config_.plan_deadline_seconds > 0.0
                         ? report.plan_seconds / config_.plan_deadline_seconds
                         : 0.0;
  for (auto& s : shards_) {
    if (!s->active()) continue;
    s->note_epoch(lag);
    report.watchdog_revocations += s->poll_watchdog(now);
  }
  totals_.watchdog_revocations += report.watchdog_revocations;

  report.timeout_primary = applied_timeout_primary_;
  report.timeout_collocated = applied_timeout_collocated_;
  span.arg("drained", static_cast<std::uint64_t>(report.events_drained));
  span.arg("shards", static_cast<std::uint64_t>(report.active_shards));
  return report;
}

serve::ControllerCheckpoint FleetCoordinator::leave_shard(std::size_t id,
                                                          double now) {
  STAC_REQUIRE(id < shards_.size());
  NodeShard& s = *shards_[id];
  STAC_REQUIRE_MSG(s.active(), "leave_shard on an inactive shard");
  // Final drain: everything the node's proxies published before the drain
  // reaches the estimator — and thus the checkpoint's lifetime counters —
  // so the hand-off loses nothing that made it into the ring.
  (void)s.drain();
  serve::ControllerCheckpoint ckpt = s.make_checkpoint(now);
  ckpt.epoch = totals_.epochs;
  ckpt.model_version = planner_.last_model_version();
  ckpt.condition_seed = config_.planner.base_condition.seed;
  s.deactivate(now);
  ++totals_.leaves;
  obs::count("fleet.leaves");
  obs::instant("fleet.shard_left", "fleet");
  return ckpt;
}

serve::RecoveryReport FleetCoordinator::rejoin_shard(
    std::size_t id, const serve::ControllerCheckpoint& ckpt, double now) {
  STAC_REQUIRE(id < shards_.size());
  NodeShard& s = *shards_[id];
  STAC_REQUIRE_MSG(!s.active(), "rejoin_shard on an active shard");
  const serve::RecoveryReport report = s.restore(ckpt, now);
  if (report.quarantined) {
    ++totals_.join_quarantines;
    obs::count("fleet.join_quarantines");
  }
  // Whatever the checkpoint said, the node serves the fleet's *current*
  // plan: a plan published while the node was away supersedes the
  // checkpointed vector (and a quarantined restore still gets a sane one).
  (void)s.refresh_plan(plans_);
  s.activate();
  ++totals_.joins;
  obs::count("fleet.joins");
  obs::instant("fleet.shard_joined", "fleet");
  return report;
}

core::ProfileLibrary::MergeStats FleetCoordinator::merge_library(
    const core::ProfileLibrary& other) {
  const core::ProfileLibrary::MergeStats stats = library_.merge_from(other);
  totals_.library_profiles_merged += stats.added;
  obs::MetricsRegistry::global()
      .counter("fleet.library_profiles_merged")
      .add(stats.added);
  // Route the delta through the shared refit pipeline: the executor merges
  // it into the authoritative library, warm-refits the masters off this
  // thread, and publishes the refreshed bundle — one node's calibration
  // warms the whole fleet without any coordinator epoch carrying a fit.
  if (config_.refit != nullptr && stats.added > 0) {
    (void)config_.refit->request_refit(other);
    ++totals_.refit_requests;
    obs::count("fleet.refit_requests");
  }
  return stats;
}

}  // namespace stac::fleet

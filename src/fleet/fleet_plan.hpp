// The unit the fleet control plane distributes: one globally-planned STAP
// timeout vector, versioned and published through the same ModelSnapshot
// RCU machinery that hot-swaps serving models.  Nodes pull the newest plan
// asynchronously (NodeShard::refresh_plan) — a node that misses a push
// catches up on its next refresh, and a rejoining node adopts the current
// plan before taking traffic.
#pragma once

#include <cstdint>

#include "profiler/runtime_condition.hpp"

namespace stac::fleet {

struct FleetPlan {
  /// Coordinator epoch that produced this plan (monotone per coordinator).
  std::uint64_t epoch = 0;
  /// Serving-model bundle version the sweep was planned against.
  std::uint64_t model_version = 0;
  /// The fleet-merged, quantized condition the sweep ran on.
  profiler::RuntimeCondition planned_condition;
  /// The selected timeout vector (always finite and non-negative — the
  /// coordinator asserts this before publishing).
  double timeout_primary = 0.0;
  double timeout_collocated = 0.0;
};

}  // namespace stac::fleet

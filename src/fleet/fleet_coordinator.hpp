// The fleet control plane: N node shards, ONE plan.
//
// Per coordinator epoch:
//   1. every active shard drains its own ring into its own estimator
//      (node-local, no cross-shard contention on the hot path);
//   2. each workload's per-shard window moments are merged fleet-wide
//      (core::merge_moments — count-weighted Welford, total arrival rate
//      against total active capacity);
//   3. ONE memoized/incremental §5.2 sweep runs on the merged condition
//      (serve::EpochPlanner — the identical planning core the standalone
//      OnlineController uses, which is what makes a fleet of one
//      bit-identical to a single controller);
//   4. the selection is published as a versioned FleetPlan through the
//      ModelSnapshot RCU machinery (nodes can pull asynchronously via
//      NodeShard::refresh_plan; the coordinator also applies it to every
//      active shard before returning) — after asserting the plan is
//      finite, so a NaN can never reach a published plan;
//   5. per-node epilogue: admission feedback and the CAT grant watchdog.
//
// Join/leave is zero-loss by construction: leave_shard drains the ring a
// final time (every produced event reaches the estimator), checkpoints the
// node, releases its boost grants, and deactivates it — the next epoch's
// merge simply renormalizes the fleet's offered load onto the remaining
// capacity (fewer moments, smaller servers_total).  rejoin_shard restores
// the checkpoint (quarantining malformed state, never crashing on it) and
// adopts the currently published plan before taking traffic.
//
// Cross-node profile-library merge: merge_library folds another node's
// calibration profiles into the coordinator's library (exact-duplicate
// conditions skipped), feeding background refits of the shared
// ServingModel — one node's calibration warms the whole fleet.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cat/cat_controller.hpp"
#include "core/condition_merge.hpp"
#include "core/profile_library.hpp"
#include "fleet/fleet_plan.hpp"
#include "fleet/node_shard.hpp"
#include "serve/epoch_planner.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/refit_executor.hpp"
#include "serve/serving_model.hpp"

namespace stac::fleet {

struct FleetConfig {
  /// Number of node shards built up front (shards join/leave within this
  /// set; capacity is not resized at runtime).
  std::size_t shards = 1;
  /// Per-node template (ring, estimator, admission, servers).
  NodeShardConfig shard;
  /// The shared planning core's knobs.  base_condition also supplies every
  /// shard's initial timeout vector.
  serve::PlannerConfig planner;
  /// Pooled completions per workload below which the fleet does not plan.
  /// 0 = inherit shard.estimator.min_completions (the N=1 identity choice:
  /// the fleet-of-one warms exactly when the standalone controller does).
  std::size_t min_completions = 0;
  /// Per-node CAT domains (not owned): empty = none, else one per shard.
  std::vector<cat::CatController*> cats;
  /// Plan-lag denominator for per-node admission feedback (mirrors
  /// ControllerConfig::plan_deadline_seconds; 0 = no lag signal).
  double plan_deadline_seconds = 0.0;
  /// Background refit pipeline (not owned; must outlive the coordinator).
  /// When set, merge_library routes merged deltas through the executor —
  /// merge→warm-refit→publish happens off the coordinator thread and no
  /// fleet epoch ever carries a fit.  null = merges only update the
  /// coordinator's library (the pre-executor behavior).
  serve::RefitExecutor* refit = nullptr;
};

/// What one coordinator epoch did.
struct FleetEpochReport {
  std::uint64_t epoch = 0;
  double now = 0.0;
  std::size_t active_shards = 0;
  std::size_t events_drained = 0;
  bool warm = false;
  bool replanned = false;
  bool stale_hold = false;
  bool deadline_miss = false;
  bool model_unavailable_hold = false;
  profiler::RuntimeCondition planned_condition;
  core::DegradationRung probe_rung = core::DegradationRung::kPrimaryModel;
  std::uint64_t model_version = 0;
  double plan_seconds = 0.0;
  std::size_t cells_simulated = 0;
  std::size_t cells_reused = 0;
  /// Fleet-merged estimates the plan (if any) was built from.
  core::MergedWorkloadEstimate merged_primary;
  core::MergedWorkloadEstimate merged_collocated;
  /// Applied vector after this epoch (last published plan, or the initial
  /// vector before the first plan).
  double timeout_primary = 0.0;
  double timeout_collocated = 0.0;
  std::size_t watchdog_revocations = 0;
};

class FleetCoordinator {
 public:
  /// `models` is the fleet-shared serving bundle (hot-swapped by
  /// background refits); must outlive the coordinator.
  FleetCoordinator(serve::ModelSnapshot<serve::ServingModel>& models,
                   FleetConfig config);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t active_shards() const;
  [[nodiscard]] NodeShard& shard(std::size_t i) { return *shards_[i]; }
  [[nodiscard]] const NodeShard& shard(std::size_t i) const {
    return *shards_[i];
  }

  /// One coordinator epoch at runtime-clock `now`.  Call from one thread
  /// only (shard producers publish into the rings concurrently; everything
  /// else here is coordinator-owned).
  FleetEpochReport run_epoch(double now);

  /// The published-plan channel (nodes pull with NodeShard::refresh_plan).
  [[nodiscard]] serve::ModelSnapshot<FleetPlan>& plans() { return plans_; }

  /// Zero-loss leave: final drain, checkpoint, boost release, deactivate.
  /// The returned checkpoint is the node's hand-off state (rejoin_shard
  /// accepts it back).  Requires the shard to be active.
  [[nodiscard]] serve::ControllerCheckpoint leave_shard(std::size_t id,
                                                        double now);

  /// Rejoin a departed shard from its hand-off checkpoint.  Malformed
  /// checkpoints are quarantined (counted; the shard rejoins cold).  The
  /// shard adopts the currently published plan before activation either
  /// way, so it never serves a stale or half-restored vector.
  serve::RecoveryReport rejoin_shard(std::size_t id,
                                     const serve::ControllerCheckpoint& ckpt,
                                     double now);

  /// Fold another node's profile library into the fleet library (feeds
  /// background refits; see header note).
  core::ProfileLibrary::MergeStats merge_library(
      const core::ProfileLibrary& other);
  [[nodiscard]] const core::ProfileLibrary& library() const {
    return library_;
  }

  struct Totals {
    std::uint64_t epochs = 0;
    std::uint64_t replans = 0;
    std::uint64_t stale_holds = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t model_unavailable_holds = 0;
    std::uint64_t model_swaps_observed = 0;
    std::uint64_t events_drained = 0;
    std::uint64_t plan_pushes = 0;  ///< shard applications of published plans
    std::uint64_t leaves = 0;
    std::uint64_t joins = 0;
    std::uint64_t join_quarantines = 0;
    std::uint64_t library_profiles_merged = 0;
    std::uint64_t refit_requests = 0;  ///< merges routed to the RefitExecutor
    std::uint64_t watchdog_revocations = 0;
  };
  [[nodiscard]] const Totals& totals() const { return totals_; }

 private:
  [[nodiscard]] std::size_t pooled_min_completions() const {
    return config_.min_completions != 0 ? config_.min_completions
                                        : config_.shard.estimator.min_completions;
  }

  serve::ModelSnapshot<serve::ServingModel>& models_;
  FleetConfig config_;
  /// unique_ptr: shards hold atomics and a ring (non-movable).
  std::vector<std::unique_ptr<NodeShard>> shards_;
  serve::EpochPlanner planner_;
  serve::ModelSnapshot<FleetPlan> plans_;
  core::ProfileLibrary library_;
  /// Scratch for the per-workload merge inputs (reused across epochs).
  std::vector<core::WorkloadMoments> moments_;
  double applied_timeout_primary_;
  double applied_timeout_collocated_;
  Totals totals_;
};

}  // namespace stac::fleet

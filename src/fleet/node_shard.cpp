#include "fleet/node_shard.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace stac::fleet {

NodeShard::NodeShard(NodeShardConfig config, double initial_timeout_primary,
                     double initial_timeout_collocated,
                     cat::CatController* cat)
    : config_(std::move(config)), cat_(cat),
      ingest_(config_.ring_capacity),
      estimator_(2, config_.servers, config_.estimator),
      batch_(std::max<std::size_t>(1, config_.drain_batch)) {
  if (cat_ != nullptr) STAC_REQUIRE(cat_->workload_count() >= 2);
  if (config_.admission_enabled)
    admission_.emplace(ingest_, 2, config_.admission);
  timeouts_[0].store(initial_timeout_primary, std::memory_order_relaxed);
  timeouts_[1].store(initial_timeout_collocated, std::memory_order_relaxed);
}

void NodeShard::mirror_to_cat(const serve::QueryEvent& event) {
  // Same lease discipline as OnlineController: a fired STAP timeout boosts
  // this node's class, a boosted completion releases one grant.
  if (event.kind == serve::EventKind::kTimeout) {
    cat_->boost(event.workload, event.time);
  } else if (event.kind == serve::EventKind::kCompletion && event.boosted) {
    cat_->unboost(event.workload);
  }
}

std::size_t NodeShard::drain() {
  std::size_t drained = 0;
  for (;;) {
    const std::size_t n = ingest_.drain(batch_);
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) {
      estimator_.observe(batch_[i]);
      if (cat_ != nullptr) mirror_to_cat(batch_[i]);
    }
    drained += n;
  }
  totals_.events_drained += drained;
  return drained;
}

void NodeShard::apply_plan(const FleetPlan& plan) {
  // The coordinator asserts finiteness before publishing; re-check here so
  // a plan can never reach the proxies' atomics with a NaN even if a new
  // caller skips the coordinator.
  STAC_REQUIRE(std::isfinite(plan.timeout_primary) &&
               plan.timeout_primary >= 0.0);
  STAC_REQUIRE(std::isfinite(plan.timeout_collocated) &&
               plan.timeout_collocated >= 0.0);
  timeouts_[0].store(plan.timeout_primary, std::memory_order_relaxed);
  timeouts_[1].store(plan.timeout_collocated, std::memory_order_relaxed);
  applied_plan_epoch_ = plan.epoch;
  ++totals_.plans_applied;
}

bool NodeShard::refresh_plan(serve::ModelSnapshot<FleetPlan>& plans) {
  auto guard = plans.acquire();
  if (!guard || guard->epoch <= applied_plan_epoch_) return false;
  apply_plan(*guard);
  return true;
}

void NodeShard::note_epoch(double epoch_lag) {
  if (admission_) admission_->note_epoch(epoch_lag);
}

std::size_t NodeShard::poll_watchdog(double now) {
  if (cat_ == nullptr) return 0;
  const std::size_t revoked = cat_->poll_watchdog(now);
  totals_.watchdog_revocations += revoked;
  return revoked;
}

void NodeShard::deactivate(double now) {
  if (cat_ != nullptr) {
    totals_.boosts_released_on_leave += cat_->release_all_boosts();
    (void)cat_->poll_watchdog(now);
  }
  active_ = false;
}

serve::ControllerCheckpoint NodeShard::make_checkpoint(double now) const {
  serve::ControllerCheckpoint ckpt;
  ckpt.time = now;
  ckpt.workloads.resize(2);
  for (std::size_t w = 0; w < 2; ++w) {
    const auto est = estimator_.snapshot_workload(w);
    serve::WorkloadCheckpoint& out = ckpt.workloads[w];
    out.timeout = timeouts_[w].load(std::memory_order_relaxed);
    out.ewma_queue_delay = est.ewma_queue_delay;
    out.ewma_queue_time = est.ewma_queue_time;
    out.ewma_queue_seeded = est.ewma_queue_seeded;
    out.ewma_service = est.ewma_service;
    out.ewma_service_time = est.ewma_service_time;
    out.ewma_service_seeded = est.ewma_service_seeded;
    out.arrivals = est.arrivals;
    out.completions = est.completions;
    out.timeouts = est.timeouts;
  }
  return ckpt;
}

serve::RecoveryReport NodeShard::restore(
    const serve::ControllerCheckpoint& checkpoint, double now) {
  serve::RecoveryReport report;
  if (checkpoint.workloads.size() != 2) {
    report.quarantined = true;
    report.reason = "checkpoint describes " +
                    std::to_string(checkpoint.workloads.size()) +
                    " workloads; live shard is a primary/collocated pair";
  } else {
    for (std::size_t w = 0; w < 2 && !report.quarantined; ++w) {
      const serve::WorkloadCheckpoint& in = checkpoint.workloads[w];
      if (!std::isfinite(in.timeout) || in.timeout < 0.0) {
        report.quarantined = true;
        report.reason = "workload " + std::to_string(w) +
                        " timeout is not finite and non-negative";
      }
    }
  }
  if (report.quarantined) {
    ++totals_.restore_quarantines;
    obs::count("fleet.shard.restore_quarantines");
    return report;
  }
  for (std::size_t w = 0; w < 2; ++w) {
    const serve::WorkloadCheckpoint& in = checkpoint.workloads[w];
    timeouts_[w].store(in.timeout, std::memory_order_relaxed);
    serve::ConditionEstimator::WorkloadEstimatorState est;
    est.ewma_queue_delay = in.ewma_queue_delay;
    est.ewma_queue_time = in.ewma_queue_time;
    est.ewma_queue_seeded = in.ewma_queue_seeded;
    est.ewma_service = in.ewma_service;
    est.ewma_service_time = in.ewma_service_time;
    est.ewma_service_seeded = in.ewma_service_seeded;
    est.arrivals = in.arrivals;
    est.completions = in.completions;
    est.timeouts = in.timeouts;
    const bool restored = estimator_.restore_workload(w, est);
    STAC_ENSURE(restored);
  }
  if (cat_ != nullptr) {
    cat_->release_all_boosts();
    (void)cat_->poll_watchdog(now);
  }
  report.restored = true;
  return report;
}

}  // namespace stac::fleet

// One node of the sharded serving fleet.
//
// A shard owns the node-local half of the control loop — the lock-free
// ingest ring its admission proxies publish into, the condition estimator
// that folds the drained events, the (optional) admission controller and
// CAT domain — but does NOT plan.  Planning is the coordinator's job: the
// shard exports its windows as mergeable moments (window_moments), the
// coordinator merges them fleet-wide, sweeps once, and the shard applies
// the resulting FleetPlan to the per-workload timeout atomics its proxies
// read (the TimeoutSource surface, same as OnlineController's).
//
// Shards also speak the join/leave protocol: leave = final drain (the ring
// empties into the estimator, so no event is lost) + checkpoint + boost
// release; rejoin = checkpoint restore (quarantining, like controller
// recovery) + adopt the currently published plan.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "cat/cat_controller.hpp"
#include "fleet/fleet_plan.hpp"
#include "serve/admission.hpp"
#include "serve/arrival_ingest.hpp"
#include "serve/checkpoint.hpp"
#include "serve/condition_estimator.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/online_controller.hpp"
#include "serve/timeout_source.hpp"

namespace stac::fleet {

struct NodeShardConfig {
  std::size_t ring_capacity = 1 << 16;
  /// Events drained per batch (one buffer per shard).
  std::size_t drain_batch = 8192;
  /// Query slots per workload on this node; the fleet's total capacity is
  /// servers x active shards.
  std::size_t servers = 2;
  serve::EstimatorConfig estimator;
  /// Per-node overload protection (each shard sheds against its own ring's
  /// occupancy; the fairness scales are node-local too).
  bool admission_enabled = false;
  serve::AdmissionConfig admission;
};

class NodeShard : public serve::TimeoutSource {
 public:
  /// `cat` is this node's CAT domain (optional, not owned; >= 2 workloads
  /// when set).  Initial timeouts serve until the first plan arrives.
  NodeShard(NodeShardConfig config, double initial_timeout_primary,
            double initial_timeout_collocated,
            cat::CatController* cat = nullptr);

  /// The ring this node's proxies publish into.
  [[nodiscard]] serve::ArrivalIngest& ingest() { return ingest_; }
  [[nodiscard]] const serve::ArrivalIngest& ingest() const { return ingest_; }
  /// Node-local admission controller (null when not enabled).
  [[nodiscard]] serve::AdmissionController* admission() {
    return admission_ ? &*admission_ : nullptr;
  }
  [[nodiscard]] const serve::ConditionEstimator& estimator() const {
    return estimator_;
  }

  /// Applied STAP timeout for workload w — the proxies' read surface.
  [[nodiscard]] double timeout(std::size_t w) const override {
    return timeouts_[w].load(std::memory_order_relaxed);
  }

  /// Drain the ring into the estimator (and mirror boost grants into the
  /// CAT domain).  Coordinator thread only.  Returns events drained.
  std::size_t drain();

  /// This shard's window moments for workload `w` (the coordinator's
  /// aggregation input).
  [[nodiscard]] core::WorkloadMoments moments(std::size_t w, double now) {
    return estimator_.window_moments(w, now);
  }

  /// Apply a published plan to the proxies' atomics.
  void apply_plan(const FleetPlan& plan);

  /// Pull the newest published plan if it is newer than the last one this
  /// shard applied — the asynchronous distribution path.  Returns true if
  /// a new plan was adopted.
  bool refresh_plan(serve::ModelSnapshot<FleetPlan>& plans);

  /// Per-node admission feedback (no-op without admission).
  void note_epoch(double epoch_lag);

  /// Poll this node's CAT grant watchdog (no-op without a CAT domain).
  std::size_t poll_watchdog(double now);

  [[nodiscard]] bool active() const { return active_; }
  void activate() { active_ = true; }
  /// Leave-side teardown: release every boost grant this node still holds
  /// (its proxies are being reassigned) and mark the shard inactive.
  void deactivate(double now);

  /// Durable node state (workload timeouts + estimator EWMAs/counters);
  /// the coordinator fills in the fleet-level header fields.
  [[nodiscard]] serve::ControllerCheckpoint make_checkpoint(double now) const;

  /// Rejoin-side restore, with the same quarantine discipline as
  /// OnlineController::recover: a checkpoint whose workload count is not
  /// the live pair, or whose timeouts are non-finite/negative, is counted
  /// and ignored — the shard rejoins cold instead of crashing or
  /// half-restoring.
  [[nodiscard]] serve::RecoveryReport restore(
      const serve::ControllerCheckpoint& checkpoint, double now);

  struct Totals {
    std::uint64_t events_drained = 0;
    std::uint64_t plans_applied = 0;
    std::uint64_t watchdog_revocations = 0;
    std::uint64_t restore_quarantines = 0;
    std::uint64_t boosts_released_on_leave = 0;
  };
  [[nodiscard]] const Totals& totals() const { return totals_; }

 private:
  void mirror_to_cat(const serve::QueryEvent& event);

  NodeShardConfig config_;
  cat::CatController* cat_;
  serve::ArrivalIngest ingest_;
  serve::ConditionEstimator estimator_;
  std::optional<serve::AdmissionController> admission_;
  std::vector<serve::QueryEvent> batch_;
  std::array<std::atomic<double>, 2> timeouts_;
  std::uint64_t applied_plan_epoch_ = 0;
  bool active_ = true;
  Totals totals_;
};

}  // namespace stac::fleet

// Console table / CSV output used by every bench harness so the regenerated
// tables and figure series all share one format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace stac {

/// Accumulates rows of strings and renders either an aligned console table
/// (for terminal reading) or CSV (for plotting).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 3);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  void print(std::ostream& os) const;
  void write_csv(const std::string& path) const;

  /// Format helper: fixed-point with `precision` digits.
  static std::string num(double v, int precision = 3);
  /// Format helper: percentage with one decimal ("12.3%").
  static std::string pct(double fraction);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a `== title ==` banner (bench harness section separator).
void print_banner(std::ostream& os, const std::string& title);

}  // namespace stac

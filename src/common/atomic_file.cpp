#include "common/atomic_file.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define STAC_HAVE_FSYNC 1
#endif

namespace stac {

namespace {

#ifdef STAC_HAVE_FSYNC
/// fsync the directory containing `path` so a completed rename survives a
/// power cut.  Best-effort: some filesystems refuse O_RDONLY on dirs.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    (void)::fsync(fd);
    (void)::close(fd);
  }
}
#endif

}  // namespace

void write_file_atomic(const std::string& path, std::string_view contents) {
  STAC_REQUIRE(!path.empty());
  const std::string tmp = path + ".tmp";
#ifdef STAC_HAVE_FSYNC
  // POSIX path: explicit fd control so the data is durable before the
  // rename publishes it.
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  STAC_REQUIRE_MSG(fd >= 0, "cannot open " << tmp << " for writing");
  std::size_t written = 0;
  bool ok = true;
  while (ok && written < contents.size()) {
    const ::ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      ok = false;
    } else {
      written += static_cast<std::size_t>(n);
    }
  }
  if (ok) ok = ::fsync(fd) == 0;
  (void)::close(fd);
  if (ok) ok = ::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) {
    (void)::unlink(tmp.c_str());
    STAC_REQUIRE_MSG(false, "atomic write to " << path << " failed");
  }
  sync_parent_dir(path);
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    STAC_REQUIRE_MSG(out.good(), "cannot open " << tmp << " for writing");
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out.good()) {
      (void)std::remove(tmp.c_str());
      STAC_REQUIRE_MSG(false, "write to " << tmp << " failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());
    STAC_REQUIRE_MSG(false, "rename " << tmp << " -> " << path << " failed");
  }
#endif
}

bool read_file(const std::string& path, std::string& out) {
  out.clear();
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace stac

#include "common/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace stac {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  STAC_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  STAC_REQUIRE_MSG(cells.size() == headers_.size(),
                   "row width " << cells.size() << " != header width "
                                << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::string& label,
                            const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(num(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << " | ";
    }
    os << '\n';
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  STAC_REQUIRE_MSG(out.good(), "cannot open " << path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      const bool quote = row[c].find(',') != std::string::npos;
      if (quote) out << '"';
      out << row[c];
      if (quote) out << '"';
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double fraction) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << fraction * 100.0 << '%';
  return os.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace stac

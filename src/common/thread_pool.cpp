#include "common/thread_pool.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"

namespace stac {

namespace {
// The pool whose worker_loop the current thread is running (null on
// non-worker threads).  Lets parallel_for detect self-nesting.
thread_local ThreadPool* tls_worker_pool = nullptr;
// 0-based index of this worker within its pool; 0 on non-worker threads.
thread_local std::size_t tls_worker_index = 0;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] {
      tls_worker_index = i;
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  STAC_REQUIRE(task != nullptr);
  {
    std::unique_lock lock(mutex_);
    STAC_REQUIRE_MSG(!stopping_, "submit on stopped pool");
    tasks_.push(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

bool ThreadPool::on_worker_thread() const { return tls_worker_pool == this; }

std::size_t ThreadPool::worker_index() { return tls_worker_index; }

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  if (on_worker_thread()) {
    // Nested invocation from one of our own workers: blocking in wait_idle
    // here would deadlock (this worker can never drain its own queue entry),
    // so run the range inline.  The enclosing parallel_for keeps the pool
    // busy; inline execution loses nothing.
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t n = end - begin;
  // A few chunks per worker balances load without excessive queue traffic.
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  for (std::size_t c0 = begin; c0 < end; c0 += chunk) {
    const std::size_t c1 = std::min(end, c0 + chunk);
    submit([c0, c1, &fn] {
      for (std::size_t i = c0; i < c1; ++i) fn(i);
    });
  }
  wait_idle();
}

std::size_t ThreadPool::threads_from_env(const char* value) {
  if (value == nullptr) return 0;
  const char* p = value;
  while (*p == ' ' || *p == '\t') ++p;
  const bool negative = *p == '-';
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(p, &end, 10);
  const bool parsed_digits = end != p;
  while (end != nullptr && (*end == ' ' || *end == '\t')) ++end;
  const bool trailing_junk = end == nullptr || *end != '\0';
  const bool out_of_range = errno == ERANGE || v > kMaxEnvThreads;
  if (negative || !parsed_digits || trailing_junk || out_of_range || v == 0) {
    std::fprintf(stderr,
                 "stac: ignoring invalid STAC_THREADS=\"%s\" (want an "
                 "integer in [1, %zu]); using hardware concurrency (%u)\n",
                 value, kMaxEnvThreads,
                 std::max(1u, std::thread::hardware_concurrency()));
    return 0;
  }
  return static_cast<std::size_t>(v);
}

ThreadPool& ThreadPool::global() {
  // STAC_THREADS caps/raises the process-wide pool (bench comparisons,
  // CI smoke runs on small runners); unset or invalid falls back to the
  // hardware concurrency via the constructor's 0 convention —
  // threads_from_env guarantees a usable count, never UB or a throw.
  static ThreadPool pool(threads_from_env(std::getenv("STAC_THREADS")));
  return pool;
}

void ThreadPool::worker_loop() {
  tls_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::unique_lock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace stac

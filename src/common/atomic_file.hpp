// Crash-safe file replacement: write-to-temp + fsync + atomic rename.
//
// A checkpoint that is half-written when the process dies is worse than no
// checkpoint at all — recovery would read torn state.  POSIX rename(2) is
// atomic within a filesystem, so the durable-write recipe is: write the new
// contents to a sibling temp file, fsync it so the bytes are on stable
// storage *before* the rename makes them visible, rename over the target,
// then fsync the directory so the rename itself survives a power cut.
// Readers therefore only ever observe the old complete file or the new
// complete file, never a mixture.
#pragma once

#include <string>
#include <string_view>

namespace stac {

/// Atomically replace (or create) `path` with `contents`.  Throws
/// ContractViolation on any I/O failure; on failure the previous file (if
/// any) is left untouched and the temp file is removed best-effort.
void write_file_atomic(const std::string& path, std::string_view contents);

/// Read a whole file into a string.  Returns false (leaving `out` empty)
/// when the file cannot be opened; never throws on missing files.
bool read_file(const std::string& path, std::string& out);

}  // namespace stac

// Generic retry with exponential backoff, deterministic jitter and a
// per-operation deadline budget.
//
// Control-plane writes (COS/MSR programming, profile persistence) fail
// transiently in real deployments; the resilient path retries a bounded
// number of times with exponentially growing, jittered backoff, and gives
// up once either the attempt budget or the deadline budget is exhausted —
// at which point the caller degrades (CatController reverts to the default
// COS, StacManager drops a rung on the degradation ladder).
//
// Everything here is simulation-time: backoff durations are *accounted*
// (returned in RetryStats and charged against the deadline) rather than
// slept, and jitter comes from a caller-supplied stac::Rng so a seed
// reproduces the identical retry schedule.
#pragma once

#include <cstddef>
#include <exception>
#include <limits>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace stac {

struct RetryPolicy {
  /// Total attempts (first try included).  Must be >= 1.
  std::size_t max_attempts = 3;
  /// Backoff before the second attempt, in the caller's time units.
  double initial_backoff = 1.0;
  /// Growth factor per further attempt (exponential backoff).
  double backoff_multiplier = 2.0;
  /// Per-wait cap, pre-jitter.
  double max_backoff = 64.0;
  /// Uniform jitter: each wait is scaled by [1 - j, 1 + j].
  double jitter_fraction = 0.1;
  /// Deadline budget on the *summed* backoff; a wait that would overflow it
  /// stops retrying (the operation fails with the last error).
  double deadline = std::numeric_limits<double>::infinity();
};

struct RetryStats {
  std::size_t attempts = 0;       ///< attempts actually made
  std::size_t failures = 0;       ///< attempts that threw
  double total_backoff = 0.0;     ///< simulated wait accumulated
  bool succeeded = false;
  bool deadline_exhausted = false;
  std::string last_error;
};

/// Jittered backoff before attempt `attempt` (1-based; attempt 1 has no
/// wait).  Deterministic given the rng state.
[[nodiscard]] inline double backoff_before_attempt(const RetryPolicy& policy,
                                                   std::size_t attempt,
                                                   Rng& rng) {
  STAC_REQUIRE(attempt >= 1);
  if (attempt == 1) return 0.0;
  double wait = policy.initial_backoff;
  for (std::size_t i = 2; i < attempt; ++i) wait *= policy.backoff_multiplier;
  wait = std::min(wait, policy.max_backoff);
  if (policy.jitter_fraction > 0.0)
    wait *= rng.uniform(1.0 - policy.jitter_fraction,
                        1.0 + policy.jitter_fraction);
  return wait;
}

/// Run `fn` under the policy.  Returns fn's result on success; rethrows the
/// last exception when the attempt or deadline budget is exhausted.  Only
/// std::exception-derived errors are retried — anything else (and
/// ContractViolation, which signals a programming bug rather than an
/// environment failure) propagates immediately.
template <typename F>
auto retry_with_backoff(F&& fn, const RetryPolicy& policy, Rng& rng,
                        RetryStats* stats = nullptr)
    -> decltype(std::forward<F>(fn)()) {
  STAC_REQUIRE_MSG(policy.max_attempts >= 1, "retry needs >= 1 attempt");
  RetryStats local;
  RetryStats& s = stats ? *stats : local;
  s = RetryStats{};
  std::exception_ptr last;
  for (std::size_t attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    if (attempt > 1) {
      const double wait = backoff_before_attempt(policy, attempt, rng);
      if (s.total_backoff + wait > policy.deadline) {
        s.deadline_exhausted = true;
        break;
      }
      s.total_backoff += wait;
    }
    ++s.attempts;
    try {
      if constexpr (std::is_void_v<decltype(std::forward<F>(fn)())>) {
        std::forward<F>(fn)();
        s.succeeded = true;
        return;
      } else {
        auto result = std::forward<F>(fn)();
        s.succeeded = true;
        return result;
      }
    } catch (const ContractViolation&) {
      throw;  // programming bug: never retried
    } catch (const std::exception& e) {
      ++s.failures;
      s.last_error = e.what();
      last = std::current_exception();
    }
  }
  STAC_ENSURE(last != nullptr);
  std::rethrow_exception(last);
}

}  // namespace stac

#include "common/matrix.hpp"

#include <cmath>

#include "common/check.hpp"

namespace stac {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

double& Matrix::at(std::size_t r, std::size_t c) {
  STAC_REQUIRE(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  STAC_REQUIRE(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  STAC_REQUIRE(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  STAC_REQUIRE(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::vector<double> Matrix::col(std::size_t c) const {
  STAC_REQUIRE(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void Matrix::append_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) cols_ = values.size();
  STAC_REQUIRE_MSG(values.size() == cols_,
                   "append_row width " << values.size() << " != " << cols_);
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

void Matrix::reserve_rows(std::size_t rows) {
  data_.reserve(rows * cols_);
}

Matrix Matrix::multiply(const Matrix& other) const {
  STAC_REQUIRE(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = data_[i * cols_ + k];
      if (aik == 0.0) continue;
      const double* brow = other.data_.data() + k * other.cols_;
      double* orow = out.data_.data() + i * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix Matrix::gram() const {
  Matrix out(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* x = data_.data() + r * cols_;
    for (std::size_t i = 0; i < cols_; ++i) {
      if (x[i] == 0.0) continue;
      double* orow = out.data_.data() + i * cols_;
      for (std::size_t j = i; j < cols_; ++j) orow[j] += x[i] * x[j];
    }
  }
  // Mirror the upper triangle.
  for (std::size_t i = 0; i < cols_; ++i)
    for (std::size_t j = 0; j < i; ++j)
      out.data_[i * cols_ + j] = out.data_[j * cols_ + i];
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      out.data_[c * rows_ + r] = data_[r * cols_ + c];
  return out;
}

std::vector<double> Matrix::cholesky_solve(std::span<const double> b,
                                           double ridge) const {
  STAC_REQUIRE(rows_ == cols_);
  STAC_REQUIRE(b.size() == rows_);
  const std::size_t n = rows_;
  // Lower-triangular factor L with A = L L^T.
  std::vector<double> L(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = data_[i * n + j] + (i == j ? ridge : 0.0);
      for (std::size_t k = 0; k < j; ++k) sum -= L[i * n + k] * L[j * n + k];
      if (i == j) {
        STAC_REQUIRE_MSG(sum > 0.0, "matrix not positive definite at row " << i);
        L[i * n + i] = std::sqrt(sum);
      } else {
        L[i * n + j] = sum / L[j * n + j];
      }
    }
  }
  // Forward solve L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= L[i * n + k] * y[k];
    y[i] = sum / L[i * n + i];
  }
  // Back solve L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= L[k * n + ii] * x[k];
    x[ii] = sum / L[ii * n + ii];
  }
  return x;
}

Matrix Matrix::submatrix(std::size_t r0, std::size_t c0, std::size_t nr,
                         std::size_t nc) const {
  STAC_REQUIRE(r0 + nr <= rows_ && c0 + nc <= cols_);
  Matrix out(nr, nc);
  for (std::size_t r = 0; r < nr; ++r)
    for (std::size_t c = 0; c < nc; ++c)
      out.data_[r * nc + c] = data_[(r0 + r) * cols_ + (c0 + c)];
  return out;
}

}  // namespace stac

#include "common/fault_injection.hpp"

namespace stac {

namespace {

/// SplitMix64 finalizer: full-avalanche mixing of the decision hash.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Decision hash → uniform double in [0, 1).
double decision_uniform(std::uint64_t seed, std::uint64_t point_hash,
                        std::uint64_t key, std::uint64_t rule_index) {
  std::uint64_t h = mix64(seed ^ mix64(point_hash));
  h = mix64(h ^ key);
  h = mix64(h ^ (rule_index * 0xA24BAED4963EE407ULL));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* fault_action_name(FaultAction action) {
  switch (action) {
    case FaultAction::kNone: return "none";
    case FaultAction::kThrow: return "throw";
    case FaultAction::kLatency: return "latency";
    case FaultAction::kDrop: return "drop";
    case FaultAction::kCorrupt: return "corrupt";
  }
  return "?";
}

std::uint64_t fault_key_hash(const void* data, std::size_t len,
                             std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void FaultInjector::arm(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = std::move(plan);
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
}

FaultOutcome FaultInjector::evaluate(std::string_view point,
                                     std::uint64_t key) {
  if (!armed_.load(std::memory_order_relaxed)) return {};
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return {};

  auto it = points_.find(point);
  if (it == points_.end())
    it = points_.emplace(std::string(point), FaultPointStats{}).first;
  const std::uint64_t hit = ++it->second.hits;
  const std::uint64_t draw_key = key != 0 ? key : hit;
  const std::uint64_t point_hash =
      fault_key_hash(point.data(), point.size());

  for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
    const FaultRule& rule = plan_.rules[r];
    if (rule.point != point) continue;
    if (hit < rule.from_hit || hit >= rule.until_hit) continue;
    const bool nth_fires =
        rule.every_nth > 0 && hit % rule.every_nth == 0;
    const bool prob_fires =
        rule.probability > 0.0 &&
        decision_uniform(plan_.seed, point_hash, draw_key, r) <
            rule.probability;
    if (!nth_fires && !prob_fires) continue;

    ++it->second.injected;
    FaultOutcome out;
    out.action = rule.action;
    out.latency = rule.latency;
    out.corrupt_factor = rule.corrupt_factor;
    out.message = rule.message.empty()
                      ? "injected fault at " + std::string(point)
                      : rule.message;
    return out;
  }
  return {};
}

FaultOutcome FaultInjector::check(std::string_view point, std::uint64_t key) {
  FaultOutcome out = evaluate(point, key);
  if (out.action == FaultAction::kThrow) throw InjectedFault(out.message);
  return out;
}

FaultPointStats FaultInjector::stats(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it != points_.end() ? it->second : FaultPointStats{};
}

std::uint64_t FaultInjector::total_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [_, s] : points_) total += s.injected;
  return total;
}

void FaultInjector::reset_counters() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
}

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  return injector;
}

}  // namespace stac

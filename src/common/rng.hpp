// Deterministic, fast pseudo-random number generation for simulation.
//
// The whole reproduction must be seed-stable: every experiment harness takes
// a seed and produces identical output for identical seeds.  We use
// xoshiro256++ (Blackman & Vigna) seeded through SplitMix64, which is both
// faster and statistically stronger than std::mt19937 and — unlike
// std::*_distribution — gives identical streams across standard libraries.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace stac {

/// xoshiro256++ engine with SplitMix64 seeding plus the sampling
/// distributions used across the simulator and the ML stack.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed (SplitMix64 expansion).
  void reseed(std::uint64_t seed);

  /// Raw 64 bits.
  std::uint64_t next_u64();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).  Unbiased (Lemire's method).
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// true with probability p.
  bool bernoulli(double p);

  /// Exponential with rate lambda (mean 1/lambda).
  double exponential(double lambda);
  /// Standard normal via Box–Muller (cached spare).
  double normal();
  /// Normal with mean/stddev.
  double normal(double mean, double stddev);
  /// Log-normal parameterized by the *target* mean and coefficient of
  /// variation of the resulting distribution (convenient for service times).
  double lognormal_mean_cv(double mean, double cv);
  /// Bounded Pareto on [lo, hi] with shape alpha (heavy-tail service times).
  double bounded_pareto(double alpha, double lo, double hi);
  /// Poisson with the given mean (inversion for small, PTRS otherwise).
  std::uint64_t poisson(double mean);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Split off an independent child stream (jump-free: hashes the child id
  /// together with this stream's next output).
  Rng split(std::uint64_t stream_id);

 private:
  std::uint64_t s_[4]{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

/// Zipf(α) sampler over {0, .., n-1} using precomputed CDF; models skewed
/// key popularity (e.g. the YCSB/Redis workload).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);
  std::size_t operator()(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace stac

// Statistics utilities shared by the testbed, the queueing model, the ML
// stack and every experiment harness: streaming moments, exact percentiles
// over retained samples, histograms, and error metrics (absolute percent
// error is the paper's headline accuracy measure).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace stac {

/// Single-pass mean/variance/min/max (Welford).  O(1) memory; use
/// SampleStats when percentiles are needed.
class StreamingStats {
 public:
  void add(double x);
  void merge(const StreamingStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n−1 denominator, numpy's ddof=1 / Bessel
  /// convention); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  /// Biased population variance (n denominator, numpy's default ddof=0).
  [[nodiscard]] double population_variance() const;
  [[nodiscard]] double stddev() const;  ///< sqrt of the sample variance
  /// NaN when empty (never the ±infinity fill sentinels).
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Coefficient of variation (sample stddev / |mean|); 0 when mean == 0.
  [[nodiscard]] double cv() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Retains all samples; exact quantiles via linear interpolation between
/// order statistics (type-7, same convention as numpy.percentile).
class SampleStats {
 public:
  SampleStats() = default;
  explicit SampleStats(std::vector<double> samples);

  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// q in [0, 1]; e.g. percentile(0.95) is the 95th percentile.  Throws
  /// ContractViolation on an empty sample set.
  [[nodiscard]] double percentile(double q) const;
  /// percentile(q), or `fallback` when the sample set is empty — the
  /// non-throwing form for paths where zero completions is survivable
  /// (degraded testbed runs, chaos experiments).
  [[nodiscard]] double percentile_or(double q, double fallback) const;
  [[nodiscard]] double median() const { return percentile(0.5); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] std::span<const double> samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp into the
/// edge bins so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t b) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_low(std::size_t b) const;
  [[nodiscard]] double bin_high(std::size_t b) const;
  /// Fraction of mass at or below the upper edge of bin b.
  [[nodiscard]] double cumulative_fraction(std::size_t b) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// |predicted - actual| / |actual|, the paper's accuracy metric (Fig. 6).
[[nodiscard]] double absolute_percent_error(double predicted, double actual);

/// Elementwise APE over two equal-length spans.
[[nodiscard]] std::vector<double> absolute_percent_errors(
    std::span<const double> predicted, std::span<const double> actual);

/// Mean absolute error.
[[nodiscard]] double mean_absolute_error(std::span<const double> predicted,
                                         std::span<const double> actual);

/// Root mean squared error.
[[nodiscard]] double rmse(std::span<const double> predicted,
                          std::span<const double> actual);

/// Coefficient of determination.
[[nodiscard]] double r_squared(std::span<const double> predicted,
                               std::span<const double> actual);

/// Pearson correlation.
[[nodiscard]] double pearson(std::span<const double> a,
                             std::span<const double> b);

}  // namespace stac

#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace stac {

void StreamingStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double StreamingStats::population_variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::min() const {
  return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double StreamingStats::max() const {
  return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
}

double StreamingStats::cv() const {
  return mean_ != 0.0 ? stddev() / std::abs(mean_) : 0.0;
}

SampleStats::SampleStats(std::vector<double> samples)
    : samples_(std::move(samples)), sorted_(false) {}

void SampleStats::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void SampleStats::ensure_sorted() const {
  if (!sorted_) {
    auto& s = const_cast<std::vector<double>&>(samples_);
    std::sort(s.begin(), s.end());
    const_cast<bool&>(sorted_) = true;
  }
}

double SampleStats::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double SampleStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s2 = 0.0;
  for (double x : samples_) s2 += (x - m) * (x - m);
  return std::sqrt(s2 / static_cast<double>(samples_.size()));
}

double SampleStats::percentile(double q) const {
  STAC_REQUIRE(q >= 0.0 && q <= 1.0);
  STAC_REQUIRE_MSG(!samples_.empty(), "percentile of empty sample set");
  ensure_sorted();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double SampleStats::percentile_or(double q, double fallback) const {
  return samples_.empty() ? fallback : percentile(q);
}

double SampleStats::min() const {
  STAC_REQUIRE(!samples_.empty());
  ensure_sorted();
  return samples_.front();
}

double SampleStats::max() const {
  STAC_REQUIRE(!samples_.empty());
  ensure_sorted();
  return samples_.back();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  STAC_REQUIRE(hi > lo);
  STAC_REQUIRE(bins > 0);
}

void Histogram::add(double x) {
  auto b = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  b = std::clamp<std::ptrdiff_t>(b, 0,
                                 static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(b)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t b) const {
  STAC_REQUIRE(b < counts_.size());
  return counts_[b];
}

double Histogram::bin_low(std::size_t b) const {
  return lo_ + width_ * static_cast<double>(b);
}

double Histogram::bin_high(std::size_t b) const {
  return lo_ + width_ * static_cast<double>(b + 1);
}

double Histogram::cumulative_fraction(std::size_t b) const {
  STAC_REQUIRE(b < counts_.size());
  if (total_ == 0) return 0.0;
  std::size_t acc = 0;
  for (std::size_t i = 0; i <= b; ++i) acc += counts_[i];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

double absolute_percent_error(double predicted, double actual) {
  STAC_REQUIRE_MSG(actual != 0.0, "APE undefined for zero actual");
  return std::abs(predicted - actual) / std::abs(actual);
}

std::vector<double> absolute_percent_errors(std::span<const double> predicted,
                                            std::span<const double> actual) {
  STAC_REQUIRE(predicted.size() == actual.size());
  std::vector<double> out;
  out.reserve(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i)
    out.push_back(absolute_percent_error(predicted[i], actual[i]));
  return out;
}

double mean_absolute_error(std::span<const double> predicted,
                           std::span<const double> actual) {
  STAC_REQUIRE(predicted.size() == actual.size());
  STAC_REQUIRE(!predicted.empty());
  double sum = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i)
    sum += std::abs(predicted[i] - actual[i]);
  return sum / static_cast<double>(predicted.size());
}

double rmse(std::span<const double> predicted, std::span<const double> actual) {
  STAC_REQUIRE(predicted.size() == actual.size());
  STAC_REQUIRE(!predicted.empty());
  double sum = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - actual[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(predicted.size()));
}

double r_squared(std::span<const double> predicted,
                 std::span<const double> actual) {
  STAC_REQUIRE(predicted.size() == actual.size());
  STAC_REQUIRE(!predicted.empty());
  double mean_a = 0.0;
  for (double a : actual) mean_a += a;
  mean_a /= static_cast<double>(actual.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - mean_a) * (actual[i] - mean_a);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  STAC_REQUIRE(a.size() == b.size());
  STAC_REQUIRE(a.size() >= 2);
  const auto n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  const double denom = std::sqrt(da * db);
  return denom == 0.0 ? 0.0 : num / denom;
}

}  // namespace stac

// Dense row-major matrix used by the ML stack (feature tables, conv
// activations) and by the profiler (counter x time profile "images").
// Deliberately minimal: contiguous storage, spans for row access, and the
// few linear-algebra operations the library actually needs (Cholesky solve
// for ridge regression lives here too).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace stac {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;
  double& operator()(std::size_t r, std::size_t c) { return at(r, c); }
  double operator()(std::size_t r, std::size_t c) const { return at(r, c); }

  [[nodiscard]] std::span<double> row(std::size_t r);
  [[nodiscard]] std::span<const double> row(std::size_t r) const;
  [[nodiscard]] std::vector<double> col(std::size_t c) const;

  [[nodiscard]] std::span<const double> data() const { return data_; }
  [[nodiscard]] std::span<double> data() { return data_; }

  /// Append a row (must match cols(), or set cols on first append).
  void append_row(std::span<const double> values);

  /// Reserve storage for `rows` total rows (needs cols() already known).
  /// Lets append_row-heavy builders (the MGS patch scan) allocate once.
  void reserve_rows(std::size_t rows);

  /// Matrix product this * other.
  [[nodiscard]] Matrix multiply(const Matrix& other) const;
  /// this^T * this (Gram matrix), the hot path of ridge regression.
  [[nodiscard]] Matrix gram() const;
  [[nodiscard]] Matrix transpose() const;

  /// Solve (A + lambda I) x = b for symmetric positive definite A == *this
  /// via Cholesky; returns x.  Throws ContractViolation if not SPD.
  [[nodiscard]] std::vector<double> cholesky_solve(std::span<const double> b,
                                                   double ridge = 0.0) const;

  /// Extract a sub-matrix (r0..r0+nr, c0..c0+nc).
  [[nodiscard]] Matrix submatrix(std::size_t r0, std::size_t c0,
                                 std::size_t nr, std::size_t nc) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace stac

// Deterministic, seedable fault injection for the STAC control plane.
//
// Real CAT deployments see failed COS/MSR writes, dropped counter samples,
// corrupt profile files and stale models; the resilience machinery that
// survives them (retry.hpp, the CatController degraded mode, the
// StacManager degradation ladder) needs a way to *provoke* those failures
// on demand and reproducibly.  This module provides named fault points —
// e.g. "cat.apply", "profiler.sample", "io.load_profile", "model.predict" —
// that production code consults; a FaultPlan armed on the (process-global)
// injector decides, per hit, whether to inject an exception, a latency
// spike, a dropped sample or a corrupted value.
//
// Determinism: every decision is a pure hash of (plan seed, point name,
// key).  Call sites on parallel paths pass an explicit key derived from
// their local context (testbed seed + event ordinal, condition features…)
// so thread interleaving cannot change the fault schedule; call sites on
// single-threaded paths may omit the key and a per-point hit counter is
// used instead.  The same plan seed therefore reproduces the identical
// fault schedule and, downstream, identical experiment results.
//
// When no plan is armed the fast path is one relaxed atomic load — fault
// points are safe to leave in hot simulator loops.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace stac {

/// Thrown by a fault point when a kThrow rule fires.  Derives from
/// std::runtime_error (not ContractViolation): an injected fault models an
/// environment failure, not a programming bug, and resilience code catches
/// exactly this distinction.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FaultAction : std::uint8_t {
  kNone = 0,
  kThrow,    ///< raise InjectedFault at the fault point
  kLatency,  ///< caller should add `latency` (relative) slowdown
  kDrop,     ///< caller should discard the sample / operation
  kCorrupt,  ///< caller should scale the value(s) by `corrupt_factor`
};

[[nodiscard]] const char* fault_action_name(FaultAction action);

/// One trigger rule attached to a named fault point.  A rule fires when the
/// hit lies inside [from_hit, until_hit) AND (the every_nth schedule or the
/// probability draw) selects it.
struct FaultRule {
  std::string point;  ///< fault-point name, e.g. "cat.apply"
  FaultAction action = FaultAction::kThrow;
  /// Independent per-hit firing probability (0 disables the random trigger).
  double probability = 0.0;
  /// Fire deterministically on hits N, 2N, 3N, … (0 disables).  Counted per
  /// point, so only meaningful on single-threaded paths.
  std::uint64_t every_nth = 0;
  /// Hit window [from_hit, until_hit) limits the rule to a phase of the run
  /// (hits are 1-based).
  std::uint64_t from_hit = 0;
  std::uint64_t until_hit = std::numeric_limits<std::uint64_t>::max();
  /// Relative slowdown for kLatency (e.g. 0.5 = +50% of the base duration).
  double latency = 0.5;
  /// Multiplier applied by the caller for kCorrupt.
  double corrupt_factor = 8.0;
  /// what() text for kThrow (a default is derived from the point name).
  std::string message;
};

/// A named, seeded set of rules — the unit a chaos experiment arms.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;

  FaultPlan& add(FaultRule rule) {
    rules.push_back(std::move(rule));
    return *this;
  }
};

/// What a fault point should do for this hit (kNone: proceed normally).
struct FaultOutcome {
  FaultAction action = FaultAction::kNone;
  double latency = 0.0;
  double corrupt_factor = 1.0;
  std::string message;

  [[nodiscard]] explicit operator bool() const {
    return action != FaultAction::kNone;
  }
};

/// Per-point hit/injection accounting, queryable after a run.
struct FaultPointStats {
  std::uint64_t hits = 0;
  std::uint64_t injected = 0;
};

class FaultInjector {
 public:
  FaultInjector() = default;

  /// Install a plan (replacing any previous one) and start injecting.
  void arm(FaultPlan plan);
  /// Stop injecting.  Counters are kept until reset_counters().
  void disarm();
  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Evaluate a fault point.  Never throws; returns the first firing
  /// rule's outcome (kNone when disarmed or nothing fires).  `key` salts
  /// the probability draw: pass a value derived from local context on
  /// parallel paths (0 = use the per-point hit counter).
  [[nodiscard]] FaultOutcome evaluate(std::string_view point,
                                      std::uint64_t key = 0);

  /// evaluate(), then throw InjectedFault when a kThrow rule fired.
  FaultOutcome check(std::string_view point, std::uint64_t key = 0);

  [[nodiscard]] FaultPointStats stats(std::string_view point) const;
  [[nodiscard]] std::uint64_t total_injected() const;
  void reset_counters();

  /// The process-wide injector every production fault point consults.
  [[nodiscard]] static FaultInjector& global();

 private:
  mutable std::mutex mu_;
  std::atomic<bool> armed_{false};
  FaultPlan plan_;
  std::map<std::string, FaultPointStats, std::less<>> points_;
};

/// RAII plan for the global injector: arms on construction, disarms (and
/// clears counters) on destruction so tests cannot leak chaos into each
/// other.
class FaultScope {
 public:
  explicit FaultScope(FaultPlan plan) {
    FaultInjector::global().reset_counters();
    FaultInjector::global().arm(std::move(plan));
  }
  ~FaultScope() {
    FaultInjector::global().disarm();
    FaultInjector::global().reset_counters();
  }
  /// End the chaos early (idempotent — the destructor still cleans up).
  void disarm() { FaultInjector::global().disarm(); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

/// FNV-1a over arbitrary bytes — the building block for caller-side fault
/// keys (hash your local ordinals/features into one 64-bit salt).
[[nodiscard]] std::uint64_t fault_key_hash(const void* data, std::size_t len,
                                           std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Convenience: fold a pack of integral/floating values into a fault key.
template <typename... Ts>
[[nodiscard]] std::uint64_t fault_key(Ts... values) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](auto v) {
    h = fault_key_hash(&v, sizeof(v), h);
  };
  (mix(values), ...);
  // Keys of 0 mean "use the hit counter"; keep real keys nonzero.
  return h == 0 ? 1 : h;
}

}  // namespace stac

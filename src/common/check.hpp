// Precondition / invariant checking in the spirit of the GSL's Expects /
// Ensures.  Violations throw (rather than abort) so tests can assert on them
// and long experiment harnesses fail loudly with context instead of dying.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace stac {

/// Thrown when a STAC_REQUIRE / STAC_ENSURE contract is violated.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace stac

/// Precondition check: throws stac::ContractViolation when `cond` is false.
#define STAC_REQUIRE(cond)                                                 \
  do {                                                                     \
    if (!(cond))                                                           \
      ::stac::detail::contract_fail("precondition", #cond, __FILE__,       \
                                    __LINE__, "");                         \
  } while (0)

/// Precondition check with an explanatory message (streamed into a string).
#define STAC_REQUIRE_MSG(cond, msg)                                        \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream stac_os_;                                         \
      stac_os_ << msg;                                                     \
      ::stac::detail::contract_fail("precondition", #cond, __FILE__,       \
                                    __LINE__, stac_os_.str());             \
    }                                                                      \
  } while (0)

/// Postcondition / invariant check.
#define STAC_ENSURE(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::stac::detail::contract_fail("postcondition", #cond, __FILE__,      \
                                    __LINE__, "");                         \
  } while (0)

#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace stac {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_spare_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  STAC_REQUIRE(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  STAC_REQUIRE(n > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (~n + 1) % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  STAC_REQUIRE(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double lambda) {
  STAC_REQUIRE(lambda > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal_mean_cv(double mean, double cv) {
  STAC_REQUIRE(mean > 0.0);
  STAC_REQUIRE(cv >= 0.0);
  if (cv == 0.0) return mean;
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(mu + std::sqrt(sigma2) * normal());
}

double Rng::bounded_pareto(double alpha, double lo, double hi) {
  STAC_REQUIRE(alpha > 0.0);
  STAC_REQUIRE(0.0 < lo && lo < hi);
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::uint64_t Rng::poisson(double mean) {
  STAC_REQUIRE(mean >= 0.0);
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double prod = uniform();
    std::uint64_t k = 0;
    while (prod > limit) {
      prod *= uniform();
      ++k;
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for the large
  // batch sizes where this branch is reached.
  const double x = normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  STAC_REQUIRE(k <= n);
  // Partial Fisher–Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<std::size_t>(uniform_index(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::split(std::uint64_t stream_id) {
  // Derive a child seed by hashing the parent's next output with the stream
  // id; SplitMix64 inside reseed() decorrelates the states.
  const std::uint64_t base = next_u64();
  return Rng(base ^ (stream_id * 0xD2B74407B1CE6E93ULL + 0x165667B19E3779F9ULL));
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha) {
  STAC_REQUIRE(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::size_t ZipfSampler::operator()(Rng& rng) const {
  const double u = rng.uniform();
  // Binary search for the first cdf entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace stac

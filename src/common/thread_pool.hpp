// Shared-memory parallelism for profiling runs and forest training.
//
// Explicit parallelism, explicitly synchronized (the HPC house style): a
// fixed pool of workers, a mutex/condvar task queue, and a blocking
// parallel_for that chunks an index range.  No detached threads, no futures
// leaked past scope; the pool joins in its destructor (RAII).
//
// Nesting rule: parallel_for issued from one of the pool's own workers runs
// the loop inline on that worker instead of enqueueing (a worker blocking in
// wait_idle on its own pool would deadlock once every other worker queues
// behind it).  Outer parallelism therefore wins — e.g. a cascade level
// spreads its forests across the pool and each forest's internal
// parallel_for collapses to a serial loop on its worker.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace stac {

class ThreadPool {
 public:
  /// Spawns `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately.  Exceptions thrown by the task are
  /// captured and re-thrown from wait_idle().
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.  Re-throws the first
  /// captured task exception, if any.
  void wait_idle();

  /// Run fn(i) for i in [begin, end) across the pool, blocking until done.
  /// Chunks the range so each worker gets contiguous indices (cache-friendly
  /// and deterministic apart from interleaving).  Safe to call from one of
  /// this pool's own workers: the nested call runs inline (see header note).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is one of this pool's workers.
  [[nodiscard]] bool on_worker_thread() const;

  /// Small stable index of the calling pool worker (0-based, unique within
  /// its pool), or 0 for threads that are not pool workers.  Used to label
  /// trace spans with the worker that executed them.
  [[nodiscard]] static std::size_t worker_index();

  /// Process-wide pool (lazily constructed).  Sized from the STAC_THREADS
  /// environment variable when set to a positive integer, else to the
  /// machine's hardware concurrency.
  static ThreadPool& global();

  /// Largest worker count accepted from STAC_THREADS; anything above is
  /// treated as invalid (a typo like "80000" must not spawn 80k threads).
  static constexpr std::size_t kMaxEnvThreads = 1024;

  /// Parse a STAC_THREADS-style value into a worker count.  Returns 0 —
  /// the constructor's "use hardware concurrency" convention — for null,
  /// empty, non-numeric, negative, zero, or > kMaxEnvThreads values, and
  /// logs one stderr warning for values that were present but unusable
  /// (never throws, never UB).  Surrounding whitespace is tolerated.
  [[nodiscard]] static std::size_t threads_from_env(const char* value);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace stac

// Shared-memory parallelism for profiling runs and forest training.
//
// Explicit parallelism, explicitly synchronized (the HPC house style): a
// fixed pool of workers, a mutex/condvar task queue, and a blocking
// parallel_for that chunks an index range.  No detached threads, no futures
// leaked past scope; the pool joins in its destructor (RAII).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace stac {

class ThreadPool {
 public:
  /// Spawns `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately.  Exceptions thrown by the task are
  /// captured and re-thrown from wait_idle().
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.  Re-throws the first
  /// captured task exception, if any.
  void wait_idle();

  /// Run fn(i) for i in [begin, end) across the pool, blocking until done.
  /// Chunks the range so each worker gets contiguous indices (cache-friendly
  /// and deterministic apart from interleaving).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide pool (lazily constructed, sized to the machine).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace stac

// Process-wide metrics: named counters, gauges and latency recorders
// registered in a MetricsRegistry and exportable as one flat JSON object
// (embeddable into the BENCH_*.json records via bench_util).
//
// Counters and gauges are single atomics — safe to bump from pool workers.
// Latency recorders aggregate through the shared stats primitives
// (StreamingStats for the moments, SampleStats for exact percentiles over
// a capped reservoir) behind a per-recorder mutex.
//
// Recording respects the same compile-time gate (STAC_OBS_ENABLED) and
// runtime flag (obs::enabled()) as tracing when used through the
// convenience helpers count()/set_gauge()/record_latency(); direct handle
// use (registry().counter("x").add(1)) is always live, for callers that
// want unconditional accounting.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/stats.hpp"
#include "obs/trace.hpp"

namespace stac::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Latency histogram: streaming moments plus a capped sample reservoir for
/// exact percentiles (the first `reservoir_cap` observations; moments keep
/// covering everything).
class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::size_t reservoir_cap = 4096)
      : cap_(reservoir_cap) {}

  void record(double seconds);

  [[nodiscard]] StreamingStats moments() const;
  /// Percentile over the retained reservoir (NaN when empty).
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] std::size_t count() const;

 private:
  mutable std::mutex mu_;
  std::size_t cap_;
  StreamingStats moments_;
  SampleStats reservoir_;
};

/// Name → metric registry.  Handles returned by counter()/gauge()/latency()
/// are stable for the registry's lifetime (node-based map).
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] LatencyRecorder& latency(std::string_view name);

  /// Snapshot accessors (0 / NaN-free defaults when absent).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] double gauge_value(std::string_view name) const;

  [[nodiscard]] std::size_t size() const;
  void reset();  ///< drop every metric (tests)

  /// Flat JSON object: counters/gauges as numbers, latency recorders as
  /// {"count", "mean", "p50", "p95", "max"} objects.  Keys sorted.
  [[nodiscard]] std::string to_json() const;
  bool write_json(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, LatencyRecorder, std::less<>> latencies_;
};

#if STAC_OBS_ENABLED

/// Gated helpers: no-ops unless obs::enabled() (and compiled out entirely
/// with STAC_OBS_ENABLED=0).
inline void count(std::string_view name, std::uint64_t n = 1) {
  if (enabled()) MetricsRegistry::global().counter(name).add(n);
}
inline void set_gauge(std::string_view name, double v) {
  if (enabled()) MetricsRegistry::global().gauge(name).set(v);
}
inline void record_latency(std::string_view name, double seconds) {
  if (enabled()) MetricsRegistry::global().latency(name).record(seconds);
}

#else

inline void count(std::string_view, std::uint64_t = 1) {}
inline void set_gauge(std::string_view, double) {}
inline void record_latency(std::string_view, double) {}

#endif  // STAC_OBS_ENABLED

}  // namespace stac::obs

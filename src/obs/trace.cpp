#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace stac::obs {

namespace {

// Runtime state: -1 = uninitialized (consult STAC_TRACE once), 0 = off,
// 1 = on.  Relaxed loads keep the disabled fast path to a single atomic
// read.
std::atomic<int> g_enabled{-1};

std::mutex g_path_mu;
std::string g_trace_path;  // guarded by g_path_mu

std::atomic<std::uint32_t> g_next_tid{1};
thread_local std::uint32_t tls_tid = 0;

int init_from_env() {
  const char* env = std::getenv("STAC_TRACE");
  int on = 0;
  if (env != nullptr && env[0] != '\0') {
    std::lock_guard lock(g_path_mu);
    if (g_trace_path.empty()) g_trace_path = env;
    on = 1;
  }
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, on, std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed);
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Flushes the trace to STAC_TRACE at static destruction time, so plain
/// binaries (quickstart, the bench harnesses) need no explicit teardown.
struct ExitFlusher {
  ~ExitFlusher() { flush_trace(); }
};

}  // namespace

bool enabled() noexcept {
  const int state = g_enabled.load(std::memory_order_relaxed);
  if (state >= 0) return state != 0;
  return init_from_env() != 0;
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void set_trace_path(std::string path) {
  {
    std::lock_guard lock(g_path_mu);
    g_trace_path = std::move(path);
  }
  set_enabled(true);
}

std::string trace_path() {
  (void)enabled();  // pick up STAC_TRACE before reporting
  std::lock_guard lock(g_path_mu);
  return g_trace_path;
}

std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

std::uint32_t thread_id() noexcept {
  if (tls_tid == 0)
    tls_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tls_tid;
}

void set_thread_name(const std::string& name) {
#if STAC_OBS_ENABLED
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = "thread_name";
  ev.cat = "__metadata";
  ev.phase = TraceEvent::Phase::kMetadata;
  ev.tid = thread_id();
  ev.ts_us = now_us();
  ev.args.emplace_back("name", json_string(name));
  TraceBuffer::global().record(std::move(ev));
#else
  (void)name;
#endif
}

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer buffer;
  static ExitFlusher flusher;  // destroyed before `buffer` (LIFO order)
  return buffer;
}

void TraceBuffer::record(TraceEvent event) {
  std::lock_guard lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

std::size_t TraceBuffer::size() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::lock_guard lock(mu_);
  return events_;
}

void TraceBuffer::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
  dropped_ = 0;
}

void TraceBuffer::set_capacity(std::size_t cap) {
  std::lock_guard lock(mu_);
  capacity_ = cap;
}

std::string TraceBuffer::chrome_trace_json() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& ev = events_[i];
    if (i) out << ',';
    out << "\n{\"name\": " << json_string(ev.name)
        << ", \"cat\": " << json_string(ev.cat) << ", \"ph\": \""
        << static_cast<char>(ev.phase) << "\", \"pid\": 1, \"tid\": "
        << ev.tid << ", \"ts\": " << ev.ts_us;
    if (ev.phase == TraceEvent::Phase::kComplete)
      out << ", \"dur\": " << ev.dur_us;
    if (ev.phase == TraceEvent::Phase::kInstant) out << ", \"s\": \"t\"";
    if (!ev.args.empty()) {
      out << ", \"args\": {";
      for (std::size_t a = 0; a < ev.args.size(); ++a) {
        if (a) out << ", ";
        out << json_string(ev.args[a].first) << ": " << ev.args[a].second;
      }
      out << '}';
    }
    out << '}';
  }
  out << "\n], \"displayTimeUnit\": \"ms\", \"droppedEvents\": " << dropped_
      << "}\n";
  return out.str();
}

bool TraceBuffer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << chrome_trace_json();
  return static_cast<bool>(out);
}

void flush_trace() {
  const std::string path = trace_path();
  if (path.empty()) return;
  TraceBuffer::global().write_chrome_trace(path);
}

#if STAC_OBS_ENABLED

void TraceSpan::arg(const char* key, double value) {
  if (active_) args_.emplace_back(key, json_number(value));
}
void TraceSpan::arg(const char* key, std::uint64_t value) {
  if (active_) args_.emplace_back(key, std::to_string(value));
}
void TraceSpan::arg(const char* key, std::int64_t value) {
  if (active_) args_.emplace_back(key, std::to_string(value));
}
void TraceSpan::arg(const char* key, const std::string& value) {
  if (active_) args_.emplace_back(key, json_string(value));
}

void TraceSpan::finish() {
  if (!active_) return;
  active_ = false;
  TraceEvent ev;
  ev.name = name_;
  ev.cat = cat_;
  ev.phase = TraceEvent::Phase::kComplete;
  ev.tid = thread_id();
  ev.ts_us = start_us_;
  const std::uint64_t end = now_us();
  ev.dur_us = end > start_us_ ? end - start_us_ : 0;
  ev.args = std::move(args_);
  TraceBuffer::global().record(std::move(ev));
}

void instant(const char* name, const char* cat) {
  instant(name, cat, {});
}

void instant(const char* name, const char* cat,
             std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.phase = TraceEvent::Phase::kInstant;
  ev.tid = thread_id();
  ev.ts_us = now_us();
  ev.args = std::move(args);
  TraceBuffer::global().record(std::move(ev));
}

#endif  // STAC_OBS_ENABLED

}  // namespace stac::obs

// Pipeline-wide tracing: RAII spans and instant markers buffered into a
// process-global collector, exportable as Chrome trace_event JSON (loadable
// in about:tracing / Perfetto).
//
// The pipeline's four stages — Stage-1 profiling, Stage-2 deep-forest
// training, Stage-3 G/G/k simulation and §5.2 policy search — each open
// spans under their own category ("profiler", "ml", "queueing", "explore",
// plus "stac" for the manager and "fault" for chaos instants), so one
// quickstart run yields a single coherent timeline.
//
// Cost model (see DESIGN.md §9):
//   * compile-time gate: building with -DSTAC_OBS_ENABLED=0 turns every
//     span/instant/metric call into an empty inline body — nothing is
//     compiled into the binary;
//   * runtime gate: with observability compiled in (the default), tracing
//     stays off until the STAC_TRACE environment variable (an output path)
//     or obs::set_enabled(true) switches it on.  The disabled fast path is
//     one relaxed atomic load per span — verified <5% on the hot primitives
//     in bench_micro_primitives;
//   * instrumentation lives at aggregation points (one span per simulator
//     run / tree fit / grid cell), never inside per-event loops, so even
//     the enabled path stays far off the hot paths.
//
// When STAC_TRACE is set, the buffer is flushed to that path automatically
// at process exit (and on demand via flush_trace()).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#ifndef STAC_OBS_ENABLED
#define STAC_OBS_ENABLED 1
#endif

namespace stac::obs {

/// Runtime master switch for both tracing and metrics recording.  Reads
/// the STAC_TRACE environment variable once on first call.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Output path for the exit-time Chrome-trace flush ("" disables the
/// automatic flush; set_trace_path also enables recording).
void set_trace_path(std::string path);
[[nodiscard]] std::string trace_path();

/// Microseconds since the process trace epoch (steady clock).
[[nodiscard]] std::uint64_t now_us() noexcept;

/// Stable small integer id for the calling thread (assigned on first use;
/// the main thread observed first gets 1).
[[nodiscard]] std::uint32_t thread_id() noexcept;

/// Attach a human-readable name to the calling thread in the trace
/// (rendered by Perfetto as the track name).  ThreadPool workers register
/// themselves as "pool-worker-N".
void set_thread_name(const std::string& name);

/// One Chrome trace_event record.  `args` carries already-encoded JSON
/// values (numbers or quoted strings).
struct TraceEvent {
  enum class Phase : char {
    kComplete = 'X',  ///< span with duration
    kInstant = 'i',   ///< point event (chaos hits, rung changes)
    kMetadata = 'M',  ///< thread naming
  };
  std::string name;
  std::string cat;
  Phase phase = Phase::kComplete;
  std::uint32_t tid = 0;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Process-global bounded event buffer.  Thread-safe; events past the cap
/// are counted as dropped rather than growing without bound.
class TraceBuffer {
 public:
  static TraceBuffer& global();

  void record(TraceEvent event);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  void clear();
  void set_capacity(std::size_t cap);

  /// Serialize the buffer as a Chrome trace_event JSON document.
  [[nodiscard]] std::string chrome_trace_json() const;
  /// Write chrome_trace_json() to `path`; returns false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::size_t capacity_ = 1u << 20;
  std::uint64_t dropped_ = 0;
};

/// Flush the global buffer to the configured trace path (no-op when the
/// path is empty).  Called automatically at process exit.
void flush_trace();

#if STAC_OBS_ENABLED

/// RAII span: records a kComplete event covering its lifetime.  Args may
/// be attached any time before destruction.  Cheap no-op when disabled.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat) noexcept
      : name_(name), cat_(cat), active_(enabled()) {
    if (active_) start_us_ = now_us();
  }
  ~TraceSpan() { finish(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void arg(const char* key, double value);
  void arg(const char* key, std::uint64_t value);
  void arg(const char* key, std::int64_t value);
  void arg(const char* key, const std::string& value);
  void arg_size(const char* key, std::size_t value) {
    arg(key, static_cast<std::uint64_t>(value));
  }

  /// Close the span early (idempotent; the destructor is then a no-op).
  void finish();

 private:
  const char* name_;
  const char* cat_;
  std::uint64_t start_us_ = 0;
  bool active_;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Point marker (chaos hits, degradation-rung changes, watchdog firings).
void instant(const char* name, const char* cat);
void instant(const char* name, const char* cat,
             std::vector<std::pair<std::string, std::string>> args);

#else  // STAC_OBS_ENABLED == 0: everything compiles away.

class TraceSpan {
 public:
  TraceSpan(const char*, const char*) noexcept {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  void arg(const char*, double) {}
  void arg(const char*, std::uint64_t) {}
  void arg(const char*, std::int64_t) {}
  void arg(const char*, const std::string&) {}
  void arg_size(const char*, std::size_t) {}
  void finish() {}
};

inline void instant(const char*, const char*) {}
inline void instant(const char*, const char*,
                    std::vector<std::pair<std::string, std::string>>) {}

#endif  // STAC_OBS_ENABLED

// Convenience scope macro: STAC_TRACE_SPAN(span, "name", "cat") declares a
// local TraceSpan named `span` (usable for .arg(...) calls).
#define STAC_TRACE_SPAN(var, name, cat) ::stac::obs::TraceSpan var{name, cat}

}  // namespace stac::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace stac::obs {

namespace {

std::string fmt_number(double v) {
  if (std::isnan(v)) return "null";  // JSON has no NaN literal
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

void LatencyRecorder::record(double seconds) {
  std::lock_guard lock(mu_);
  moments_.add(seconds);
  if (reservoir_.count() < cap_) reservoir_.add(seconds);
}

StreamingStats LatencyRecorder::moments() const {
  std::lock_guard lock(mu_);
  return moments_;
}

double LatencyRecorder::percentile(double q) const {
  std::lock_guard lock(mu_);
  return reservoir_.percentile_or(q,
                                  std::numeric_limits<double>::quiet_NaN());
}

std::size_t LatencyRecorder::count() const {
  std::lock_guard lock(mu_);
  return moments_.count();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.try_emplace(std::string(name)).first;
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) it = gauges_.try_emplace(std::string(name)).first;
  return it->second;
}

LatencyRecorder& MetricsRegistry::latency(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = latencies_.find(name);
  if (it == latencies_.end())
    it = latencies_.try_emplace(std::string(name)).first;
  return it->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second.value() : 0;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second.value() : 0.0;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mu_);
  return counters_.size() + gauges_.size() + latencies_.size();
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  counters_.clear();
  gauges_.clear();
  latencies_.clear();
}

std::string MetricsRegistry::to_json() const {
  // Collect rendered entries under the lock, emit after.  Maps iterate in
  // key order, so the output is deterministic.
  std::vector<std::pair<std::string, std::string>> entries;
  {
    std::lock_guard lock(mu_);
    for (const auto& [name, c] : counters_)
      entries.emplace_back(name, std::to_string(c.value()));
    for (const auto& [name, g] : gauges_)
      entries.emplace_back(name, fmt_number(g.value()));
    for (const auto& [name, l] : latencies_) {
      // LatencyRecorder has its own mutex; safe to query here.
      const StreamingStats m = l.moments();
      std::ostringstream os;
      os << "{\"count\": " << m.count() << ", \"mean\": "
         << fmt_number(m.mean()) << ", \"p50\": "
         << fmt_number(l.percentile(0.5)) << ", \"p95\": "
         << fmt_number(l.percentile(0.95)) << ", \"max\": "
         << fmt_number(m.count() ? m.max() : 0.0) << "}";
      entries.emplace_back(name, os.str());
    }
  }
  std::sort(entries.begin(), entries.end());
  std::ostringstream out;
  out << '{';
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i) out << ", ";
    out << '"' << entries[i].first << "\": " << entries[i].second;
  }
  out << '}';
  return out.str();
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json() << '\n';
  return static_cast<bool>(out);
}

}  // namespace stac::obs

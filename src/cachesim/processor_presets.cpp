#include "cachesim/cache_config.hpp"

namespace stac::cachesim::presets {

namespace {
HierarchyConfig base() {
  HierarchyConfig c;
  c.l1d = {32 * 1024, 8, 64, 4};
  c.l1i = {32 * 1024, 8, 64, 4};
  c.l2 = {1024 * 1024, 16, 64, 12};
  c.memory_latency_cycles = 220;
  return c;
}
}  // namespace

HierarchyConfig xeon_e5_2683() {
  HierarchyConfig c = base();
  c.name = "Xeon E5-2683 (40MB LLC)";
  // 40 MB, 20 ways -> 2 MB/way, 32768 sets of 64B lines.
  c.llc = {40 * 1024 * 1024, 20, 64, 42};
  c.cores = 16;
  return c;
}

HierarchyConfig xeon_platinum_8275_72mb() {
  HierarchyConfig c = base();
  c.name = "Xeon Platinum 8275 s0 (72MB LLC)";
  // 72 MB modeled as 18 ways x 4 MB/way (65536 sets).
  c.llc = {72 * 1024 * 1024, 18, 64, 46};
  c.cores = 24;
  return c;
}

HierarchyConfig xeon_platinum_8275_59mb() {
  HierarchyConfig c = base();
  c.name = "Xeon Platinum 8275 s1 (59MB LLC)";
  // The paper's second socket exposes ~59 MB; modeled as 59 usable ways'
  // worth rounded to a valid geometry: 16 ways x 3.6875 MB is not a power-
  // of-two set count, so we use 59 MB -> 16 ways over 60416 sets is invalid;
  // instead 64 MB geometry with 59/64 of the ways usable is equivalent from
  // CAT's point of view.  We model 16 ways x 4 MB with 15 usable ways
  // (60 MB usable), the closest valid layout.
  c.llc = {64 * 1024 * 1024, 16, 64, 46};
  c.cores = 24;
  return c;
}

HierarchyConfig xeon_2650() {
  HierarchyConfig c = base();
  c.name = "Xeon 2650 (30MB LLC)";
  // 30 MB, 20 ways -> 1.5 MB/way, 24576 sets — not a power of two; CAT-valid
  // layout: 20 ways x 1.5 MB needs 24576 sets.  Use 15 ways x 2 MB (30 MB,
  // 32768 sets) which preserves total capacity and way granularity of 2 MB.
  c.llc = {30 * 1024 * 1024, 15, 64, 40};
  c.cores = 12;
  return c;
}

HierarchyConfig xeon_2620() {
  HierarchyConfig c = base();
  c.name = "Xeon 2620 (20MB LLC)";
  // 20 MB as 10 ways x 2 MB/way (32768 sets).
  c.llc = {20 * 1024 * 1024, 10, 64, 38};
  c.cores = 8;
  return c;
}

// --- timed presets ------------------------------------------------------
// Unlike the five paper parts above (which keep the flat legacy timing so
// calibrated behaviour is unchanged), these carry explicit CachePerfSpecs
// and a bandwidth-queued DRAM channel — distinct latency/bandwidth/geometry
// points for the cross-hardware generalization rerun (EXPERIMENTS.md).

HierarchyConfig epyc_milan_32mb() {
  HierarchyConfig c;
  c.name = "EPYC Milan CCX (32MB LLC, timed)";
  // Parallel-lookup L1s (tag read hidden under the data access).
  c.l1d = {32 * 1024, 8, 64, 4};
  c.l1i = {32 * 1024, 8, 64, 4};
  c.l2 = {512 * 1024, 8, 64, 13};
  // 32 MB as 16 ways x 2 MB/way (32768 sets).
  c.llc = {32 * 1024 * 1024, 16, 64, 46};
  c.timing.l1d = {1, 4, memtime::LookupMode::kParallel};
  c.timing.l1i = {1, 4, memtime::LookupMode::kParallel};
  c.timing.l2 = {5, 8, memtime::LookupMode::kSequential};
  c.timing.llc = {14, 32, memtime::LookupMode::kSequential};
  // DDR4 channel; base inherited from the deprecated scalar (= 240).
  c.memory_latency_cycles = 240;
  c.timing.dram.bandwidth_bytes_per_cycle = 12.8;
  c.cores = 16;
  return c;
}

HierarchyConfig sapphire_rapids_48mb() {
  HierarchyConfig c;
  c.name = "Sapphire Rapids class (48MB LLC, timed)";
  // 48 KB L1D as 12 ways x 64 sets; 2 MB private L2.
  c.l1d = {48 * 1024, 12, 64, 5};
  c.l1i = {32 * 1024, 8, 64, 4};
  c.l2 = {2 * 1024 * 1024, 16, 64, 15};
  // 48 MB as 12 ways x 4 MB/way (65536 sets).
  c.llc = {48 * 1024 * 1024, 12, 64, 56};
  c.timing.l1d = {1, 5, memtime::LookupMode::kParallel};
  c.timing.l1i = {1, 4, memtime::LookupMode::kParallel};
  c.timing.l2 = {4, 11, memtime::LookupMode::kSequential};
  c.timing.llc = {20, 36, memtime::LookupMode::kSequential};
  // DDR5 channel: lower base latency, ~1.7x Milan's bandwidth.
  c.memory_latency_cycles = 190;
  c.timing.dram.bandwidth_bytes_per_cycle = 21.3;
  c.cores = 28;
  return c;
}

HierarchyConfig emerald_rapids_60mb() {
  HierarchyConfig c;
  c.name = "Emerald Rapids class (60MB LLC, timed)";
  c.l1d = {48 * 1024, 12, 64, 5};
  c.l1i = {32 * 1024, 8, 64, 4};
  c.l2 = {2 * 1024 * 1024, 16, 64, 16};
  // 60 MB as 15 ways x 4 MB/way (65536 sets).
  c.llc = {60 * 1024 * 1024, 15, 64, 60};
  c.timing.l1d = {1, 5, memtime::LookupMode::kParallel};
  c.timing.l1i = {1, 4, memtime::LookupMode::kParallel};
  c.timing.l2 = {4, 12, memtime::LookupMode::kSequential};
  c.timing.llc = {22, 38, memtime::LookupMode::kSequential};
  c.memory_latency_cycles = 185;
  c.timing.dram.bandwidth_bytes_per_cycle = 25.6;
  c.cores = 32;
  return c;
}

HierarchyConfig xeon_max_hbm_64mb() {
  HierarchyConfig c;
  c.name = "Xeon Max class (64MB LLC + 128MB HBM cache, timed)";
  c.l1d = {48 * 1024, 12, 64, 5};
  c.l1i = {32 * 1024, 8, 64, 4};
  c.l2 = {2 * 1024 * 1024, 16, 64, 15};
  // 64 MB as 16 ways x 4 MB/way (65536 sets).
  c.llc = {64 * 1024 * 1024, 16, 64, 52};
  c.timing.l1d = {1, 5, memtime::LookupMode::kParallel};
  c.timing.l1i = {1, 4, memtime::LookupMode::kParallel};
  c.timing.l2 = {4, 11, memtime::LookupMode::kSequential};
  c.timing.llc = {18, 34, memtime::LookupMode::kSequential};
  // Stacked HBM tier between LLC and DRAM: 128 MB as 16 ways x 131072
  // sets; tags checked in the stacked DRAM (sequential, no data share —
  // the row fetch is the stacked channel's access time below).
  memtime::DramCacheSpec hbm;
  hbm.geometry = {128 * 1024 * 1024, 16, 64};
  hbm.perf = {28, 0, memtime::LookupMode::kSequential};
  hbm.dram.base_latency_cycles = 90;
  hbm.dram.bandwidth_bytes_per_cycle = 51.2;
  hbm.dram.window_cycles = 4096;
  hbm.dram.max_queue_factor = 4.0;
  c.timing.dram_cache = hbm;
  // Main DDR channel behind the HBM tier.
  c.memory_latency_cycles = 220;
  c.timing.dram.bandwidth_bytes_per_cycle = 16.0;
  c.cores = 32;
  return c;
}

const std::vector<HierarchyConfig>& all() {
  static const std::vector<HierarchyConfig> configs{
      xeon_2620(),          xeon_2650(),
      xeon_e5_2683(),       xeon_platinum_8275_59mb(),
      xeon_platinum_8275_72mb(),
      epyc_milan_32mb(),    sapphire_rapids_48mb(),
      emerald_rapids_60mb(), xeon_max_hbm_64mb()};
  return configs;
}

}  // namespace stac::cachesim::presets

#include "cachesim/cache_config.hpp"

namespace stac::cachesim::presets {

namespace {
HierarchyConfig base() {
  HierarchyConfig c;
  c.l1d = {32 * 1024, 8, 64, 4};
  c.l1i = {32 * 1024, 8, 64, 4};
  c.l2 = {1024 * 1024, 16, 64, 12};
  c.memory_latency_cycles = 220;
  return c;
}
}  // namespace

HierarchyConfig xeon_e5_2683() {
  HierarchyConfig c = base();
  c.name = "Xeon E5-2683 (40MB LLC)";
  // 40 MB, 20 ways -> 2 MB/way, 32768 sets of 64B lines.
  c.llc = {40 * 1024 * 1024, 20, 64, 42};
  c.cores = 16;
  return c;
}

HierarchyConfig xeon_platinum_8275_72mb() {
  HierarchyConfig c = base();
  c.name = "Xeon Platinum 8275 s0 (72MB LLC)";
  // 72 MB modeled as 18 ways x 4 MB/way (65536 sets).
  c.llc = {72 * 1024 * 1024, 18, 64, 46};
  c.cores = 24;
  return c;
}

HierarchyConfig xeon_platinum_8275_59mb() {
  HierarchyConfig c = base();
  c.name = "Xeon Platinum 8275 s1 (59MB LLC)";
  // The paper's second socket exposes ~59 MB; modeled as 59 usable ways'
  // worth rounded to a valid geometry: 16 ways x 3.6875 MB is not a power-
  // of-two set count, so we use 59 MB -> 16 ways over 60416 sets is invalid;
  // instead 64 MB geometry with 59/64 of the ways usable is equivalent from
  // CAT's point of view.  We model 16 ways x 4 MB with 15 usable ways
  // (60 MB usable), the closest valid layout.
  c.llc = {64 * 1024 * 1024, 16, 64, 46};
  c.cores = 24;
  return c;
}

HierarchyConfig xeon_2650() {
  HierarchyConfig c = base();
  c.name = "Xeon 2650 (30MB LLC)";
  // 30 MB, 20 ways -> 1.5 MB/way, 24576 sets — not a power of two; CAT-valid
  // layout: 20 ways x 1.5 MB needs 24576 sets.  Use 15 ways x 2 MB (30 MB,
  // 32768 sets) which preserves total capacity and way granularity of 2 MB.
  c.llc = {30 * 1024 * 1024, 15, 64, 40};
  c.cores = 12;
  return c;
}

HierarchyConfig xeon_2620() {
  HierarchyConfig c = base();
  c.name = "Xeon 2620 (20MB LLC)";
  // 20 MB as 10 ways x 2 MB/way (32768 sets).
  c.llc = {20 * 1024 * 1024, 10, 64, 38};
  c.cores = 8;
  return c;
}

const std::vector<HierarchyConfig>& all() {
  static const std::vector<HierarchyConfig> configs{
      xeon_2620(), xeon_2650(), xeon_e5_2683(), xeon_platinum_8275_59mb(),
      xeon_platinum_8275_72mb()};
  return configs;
}

}  // namespace stac::cachesim::presets

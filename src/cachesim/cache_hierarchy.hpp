// The simulated processor package: per-workload-class private L1D/L1I/L2,
// one shared LLC under CAT fill-way masking, and per-class performance
// counters matching the 29 the paper samples.
//
// This is the "hardware" substituted for the paper's Xeon testbed: the
// profiler drives synthetic access streams through it to produce counter
// traces, and its hit/miss behaviour is the ground truth that the
// workload-level miss-ratio curves are calibrated against.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cachesim/cache_config.hpp"
#include "cachesim/cache_level.hpp"
#include "cachesim/perf_counters.hpp"
#include "memtime/cache_perf_model.hpp"
#include "memtime/dram_perf_model.hpp"

namespace stac::cachesim {

enum class AccessType : std::uint8_t { kLoad, kStore, kIfetch, kPrefetch };

/// One memory reference produced by a workload model.
struct MemoryAccess {
  std::uint64_t address = 0;  ///< byte address
  AccessType type = AccessType::kLoad;
};

/// Abstract producer of memory references (implemented by workload models).
class AccessStream {
 public:
  virtual ~AccessStream() = default;
  /// Produce the next reference.
  virtual MemoryAccess next() = 0;
};

class CacheHierarchy {
 public:
  /// `max_classes` bounds how many collocated workload classes can attach.
  explicit CacheHierarchy(const HierarchyConfig& config,
                          std::size_t max_classes = 8);

  [[nodiscard]] const HierarchyConfig& config() const { return config_; }
  [[nodiscard]] std::size_t max_classes() const { return l1d_.size(); }

  /// Set the CAT fill mask used for `class_id`'s LLC fills.  Hits remain
  /// unrestricted.  (The cat::CatController calls this.)
  void set_llc_fill_mask(ClassId class_id, WayMask mask);
  [[nodiscard]] WayMask llc_fill_mask(ClassId class_id) const;

  /// Run one memory reference through the hierarchy for `class_id`.
  /// Returns the total latency in cycles, and updates the class's counters.
  std::uint32_t access(ClassId class_id, const MemoryAccess& ref);

  /// Replay a pre-recorded reference stream: equivalent to calling
  /// access() per reference and summing the latencies — counters end up
  /// bit-identical — but the batched loop hoists the per-level constants
  /// and classifies references through type-indexed counter tables
  /// instead of access()'s per-reference branch chains.  Trace-driven
  /// benchmarks and calibration replays should use this entry point.
  std::uint64_t replay(const MemoryAccess* refs, const ClassId* classes,
                       std::size_t n);

  /// Charge `n` retired instructions to the class (IPC bookkeeping).  Call
  /// alongside access(); non-memory instructions cost one cycle each.
  void retire_instructions(ClassId class_id, std::uint64_t n);

  /// Counter snapshot for a class; occupancy/IPC gauges computed on read.
  [[nodiscard]] CounterSnapshot counters(ClassId class_id) const;

  /// Modeled-cycle breakdown for a class (DESIGN.md §16).  Accumulated
  /// bit-identically by access() and replay(); reset() clears it.
  [[nodiscard]] const CycleBreakdown& cycles(ClassId class_id) const;
  /// Breakdown merged across all classes.
  [[nodiscard]] CycleBreakdown total_cycles() const;
  /// Modeled wall clock: total latency of every access plus retired
  /// instructions.  Drives the DRAM model's utilization windows.
  [[nodiscard]] std::uint64_t clock_cycles() const { return clock_cycles_; }
  [[nodiscard]] const memtime::DramPerfModel& dram_model() const {
    return dram_;
  }
  [[nodiscard]] bool has_dram_cache() const {
    return dram_cache_.has_value();
  }
  /// Export the merged cycle breakdown as obs gauges
  /// (`cachesim.cycles.<level>`, `cachesim.cycles.total`, ...).
  void publish_cycle_metrics() const;

  /// LLC lines currently owned by the class (CMT-style occupancy).
  [[nodiscard]] std::size_t llc_occupancy(ClassId class_id) const;

  /// Reset all cache contents, counters, cycle breakdowns and DRAM window
  /// state (between experiments).
  void reset();

  [[nodiscard]] const CacheLevel& llc() const { return llc_; }

 private:
  /// replay() loop body, stamped per (L1D, L1I, L2, LLC) way-width tuple so
  /// the SoA probes inline and unroll into the loop.  Width 0 falls back to
  /// the generic access() dispatcher for that level (any layout/geometry).
  template <std::size_t L1DW, std::size_t L1IW, std::size_t L2W,
            std::size_t LLCW>
  std::uint64_t replay_fixed(const MemoryAccess* refs, const ClassId* classes,
                             std::size_t n);
  /// Probe one level with a compile-time way width (0 = generic dispatch).
  template <std::size_t W>
  static AccessResult probe_level(CacheLevel& level, std::uint64_t line,
                                  WayMask fill_mask, ClassId class_id);
  /// Memory-side time past the LLC (optional DRAM-cache probe, then main
  /// DRAM).  Bumps the mem/stall counters and the breakdown; shared by
  /// access() and every replay_fixed instantiation so the two accounting
  /// paths cannot diverge.
  std::uint32_t memory_side(std::uint64_t line, ClassId class_id,
                            std::uint64_t now, Counter mem_ctr,
                            CounterSnapshot& ctr, CycleBreakdown& cyc);

  HierarchyConfig config_;
  /// Precomputed line-address shift (line_bytes is power-of-two in every
  /// preset; falls back to division otherwise) — access() runs per memory
  /// reference, so the repeated 64-bit divide was measurable.
  std::uint32_t line_shift_ = 0;
  bool line_pow2_ = false;
  std::vector<CacheLevel> l1d_;
  std::vector<CacheLevel> l1i_;
  std::vector<CacheLevel> l2_;
  CacheLevel llc_;
  std::vector<WayMask> llc_masks_;
  std::vector<CounterSnapshot> counters_;
  // --- modeled time (DESIGN.md §16) ---
  memtime::CachePerfModel l1d_perf_;
  memtime::CachePerfModel l1i_perf_;
  memtime::CachePerfModel l2_perf_;
  memtime::CachePerfModel llc_perf_;
  memtime::DramPerfModel dram_;
  /// Stacked DRAM-cache tier (probed on LLC miss; shared across classes
  /// like the LLC, unmasked — CAT does not partition the stacked tier).
  std::optional<CacheLevel> dram_cache_;
  memtime::CachePerfModel dram_cache_perf_;
  memtime::DramPerfModel dram_cache_dram_;  ///< stacked channel
  /// True when the memory side is a single constant (no stacked tier, no
  /// queue model): the replay loop then charges a hoisted scalar instead of
  /// calling memory_side() — the pre-timing fast path.
  bool mem_flat_ = false;
  std::vector<CycleBreakdown> cycles_;
  std::uint64_t clock_cycles_ = 0;
};

}  // namespace stac::cachesim

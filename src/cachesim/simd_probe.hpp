// SIMD kernels for the SoA cache-level hot path (DESIGN.md §10/§13):
//
//   probe_sweep   one pass over a set's packed key lane producing the
//                 match mask (key == tag|valid) and the valid mask (key
//                 sign bit) — the two bitmaps access_soa_impl branches on;
//   victim_scan   strict-min age among the permitted ways, with excluded
//                 ways reading as "infinitely young" (UINT32_MAX, which
//                 renormalization guarantees no real age ever equals).
//
// Three ISA tiers, widest-available picked at compile time by the
// unsuffixed wrappers: AVX2 compares 4 ways per step (_mm256_cmpeq_epi64)
// and scans 8 ages per step, SSE2 compares 2 ways per step (the PR 4
// sweep), scalar is the reference loop.  Every tier the compiler can
// target is ALWAYS compiled — narrower tiers stay callable as identity
// oracles, so an AVX2 build can assert avx2 == sse2 == scalar on the same
// lanes (tests/cachesim/simd_probe_test.cpp, the CI -mavx2 leg).
//
// Contracts shared by all tiers (the SoA layout guarantees them):
//   * a set holds at most one valid way matching the probe key, so the
//     match mask has at most one bit set;
//   * ages within a set are pairwise distinct (each is a fresh clock
//     tick), so the permitted minimum is unique and any scan order finds
//     the same victim;
//   * victim_scan requires a non-empty permitted mask whose ways are all
//     valid (invalid ways are claimed earlier via countr_zero).
#pragma once

#include <bit>
#include <cstdint>
#include <limits>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace stac::cachesim::simd {

struct ProbeMasks {
  std::uint32_t match = 0;  ///< bit w => keys[w] == probe
  std::uint32_t valid = 0;  ///< bit w => keys[w] has the valid (sign) bit
};

/// Reference sweep: one compare per way, no per-way branch.
inline ProbeMasks probe_sweep_scalar(const std::uint64_t* keys,
                                     std::size_t ways, std::uint64_t probe) {
  ProbeMasks m;
  for (std::size_t w = 0; w < ways; ++w) {
    m.match |= static_cast<std::uint32_t>(keys[w] == probe) << w;
    m.valid |= static_cast<std::uint32_t>(keys[w] >> 63) << w;
  }
  return m;
}

/// Reference victim scan: first strictly-smaller age wins (the minimum is
/// unique, so this equals "index of min"); excluded ways read as MAX.
inline std::size_t victim_scan_scalar(const std::uint32_t* ages,
                                      std::size_t ways, std::uint32_t usable) {
  std::uint32_t oldest = std::numeric_limits<std::uint32_t>::max();
  std::size_t victim = ways;
  for (std::size_t w = 0; w < ways; ++w) {
    const std::uint32_t a = ((usable >> w) & 1u) != 0
                                ? ages[w]
                                : std::numeric_limits<std::uint32_t>::max();
    const bool better = a < oldest;
    oldest = better ? a : oldest;
    victim = better ? w : victim;
  }
  return victim;
}

#if defined(__SSE2__)
/// Two ways per step: 64-bit equality is two 32-bit lane compares ANDed
/// with their pairwise swap; both masks fall out of sign-bit movemasks.
inline ProbeMasks probe_sweep_sse2(const std::uint64_t* keys,
                                   std::size_t ways, std::uint64_t probe) {
  ProbeMasks m;
  const __m128i vprobe = _mm_set1_epi64x(static_cast<long long>(probe));
  std::size_t w = 0;
  for (; w + 2 <= ways; w += 2) {
    const __m128i k =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + w));
    const __m128i eq32 = _mm_cmpeq_epi32(k, vprobe);
    const __m128i eq64 = _mm_and_si128(
        eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
    m.match |= static_cast<std::uint32_t>(
                   _mm_movemask_pd(_mm_castsi128_pd(eq64)))
               << w;
    m.valid |= static_cast<std::uint32_t>(_mm_movemask_pd(_mm_castsi128_pd(k)))
               << w;
  }
  for (; w < ways; ++w) {
    m.match |= static_cast<std::uint32_t>(keys[w] == probe) << w;
    m.valid |= static_cast<std::uint32_t>(keys[w] >> 63) << w;
  }
  return m;
}
#endif  // __SSE2__

#if defined(__AVX2__)
/// Four ways per step: native 64-bit lane equality, masks from the
/// double-lane sign movemask (cmpeq sets all bits incl. the sign; the key
/// sign bit is the valid bit).
inline ProbeMasks probe_sweep_avx2(const std::uint64_t* keys,
                                   std::size_t ways, std::uint64_t probe) {
  ProbeMasks m;
  const __m256i vprobe = _mm256_set1_epi64x(static_cast<long long>(probe));
  std::size_t w = 0;
  for (; w + 4 <= ways; w += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + w));
    const __m256i eq = _mm256_cmpeq_epi64(k, vprobe);
    m.match |= static_cast<std::uint32_t>(
                   _mm256_movemask_pd(_mm256_castsi256_pd(eq)))
               << w;
    m.valid |= static_cast<std::uint32_t>(
                   _mm256_movemask_pd(_mm256_castsi256_pd(k)))
               << w;
  }
  for (; w < ways; ++w) {
    m.match |= static_cast<std::uint32_t>(keys[w] == probe) << w;
    m.valid |= static_cast<std::uint32_t>(keys[w] >> 63) << w;
  }
  return m;
}

/// Eight ages per step: excluded lanes are blended to MAX, an unsigned
/// vector min + horizontal reduce finds the oldest age, and — ages being
/// pairwise distinct within a set — a cmpeq rescan locates its unique way.
/// The scalar tail then merges ways past the last full block.
inline std::size_t victim_scan_avx2(const std::uint32_t* ages,
                                    std::size_t ways, std::uint32_t usable) {
  constexpr std::uint32_t kMax = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t oldest = kMax;
  std::size_t victim = ways;
  std::size_t w = 0;
  if (ways >= 8) {
    const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    const __m256i one = _mm256_set1_epi32(1);
    const __m256i all = _mm256_set1_epi32(-1);
    const __m256i vusable = _mm256_set1_epi32(static_cast<int>(usable));
    __m256i vmin = all;
    for (; w + 8 <= ways; w += 8) {
      const __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ages + w));
      const __m256i shift =
          _mm256_add_epi32(lane, _mm256_set1_epi32(static_cast<int>(w)));
      const __m256i bit =
          _mm256_and_si256(_mm256_srlv_epi32(vusable, shift), one);
      const __m256i permitted = _mm256_cmpeq_epi32(bit, one);
      vmin = _mm256_min_epu32(vmin, _mm256_blendv_epi8(all, a, permitted));
    }
    __m128i m = _mm_min_epu32(_mm256_castsi256_si128(vmin),
                              _mm256_extracti128_si256(vmin, 1));
    m = _mm_min_epu32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(1, 0, 3, 2)));
    m = _mm_min_epu32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 3, 0, 1)));
    oldest = static_cast<std::uint32_t>(_mm_cvtsi128_si32(m));
    if (oldest != kMax) {
      // Rescan raw ages for the unique holder: distinctness means no other
      // way — permitted or not — carries this value.
      const __m256i vold = _mm256_set1_epi32(static_cast<int>(oldest));
      for (std::size_t b = 0; b + 8 <= ways; b += 8) {
        const __m256i a =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ages + b));
        const auto eq = static_cast<std::uint32_t>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(a, vold))));
        if (eq != 0) {
          victim = b + static_cast<std::size_t>(std::countr_zero(eq));
          break;
        }
      }
    }
  }
  for (; w < ways; ++w) {
    const std::uint32_t a = ((usable >> w) & 1u) != 0 ? ages[w] : kMax;
    if (a < oldest) {
      oldest = a;
      victim = w;
    }
  }
  return victim;
}
#endif  // __AVX2__

/// Widest tier this translation unit was compiled for ("avx2" / "sse2" /
/// "scalar") — recorded into every BENCH_*.json meta block so results are
/// comparable across machines.
inline const char* isa_name() {
#if defined(__AVX2__)
  return "avx2";
#elif defined(__SSE2__)
  return "sse2";
#else
  return "scalar";
#endif
}

/// Widest-available dispatch used on the access hot path.
inline ProbeMasks probe_sweep(const std::uint64_t* keys, std::size_t ways,
                              std::uint64_t probe) {
#if defined(__AVX2__)
  return probe_sweep_avx2(keys, ways, probe);
#elif defined(__SSE2__)
  return probe_sweep_sse2(keys, ways, probe);
#else
  return probe_sweep_scalar(keys, ways, probe);
#endif
}

inline std::size_t victim_scan(const std::uint32_t* ages, std::size_t ways,
                               std::uint32_t usable) {
#if defined(__AVX2__)
  return victim_scan_avx2(ages, ways, usable);
#else
  return victim_scan_scalar(ages, ways, usable);
#endif
}

}  // namespace stac::cachesim::simd

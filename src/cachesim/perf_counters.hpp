// The 29 architectural cache-usage counters sampled during profiling (§5 of
// the paper samples "L1 data cache stores and misses; L1 instruction cache
// stores and misses; L2 requests, stores and misses; LLC loads, misses,
// stores; and other architectural counters related to cache usage (29 in
// total)").
//
// Counter identity matters to the model: multi-grain scanning exploits the
// *spatial ordering* of counters in the profile image, so we expose both a
// canonical grouped-by-type ordering and the counter->group mapping the
// Fig. 7c ablation shuffles.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace stac::cachesim {

/// Canonical counter ids, grouped by cache level (spatial-locality order).
enum class Counter : std::uint8_t {
  // L1 data cache (4)
  kL1dLoads = 0,
  kL1dLoadMisses,
  kL1dStores,
  kL1dStoreMisses,
  // L1 instruction cache (2)
  kL1iLoads,
  kL1iLoadMisses,
  // L2 unified (8)
  kL2Requests,
  kL2Loads,
  kL2LoadMisses,
  kL2Stores,
  kL2StoreMisses,
  kL2Evictions,
  kL2Prefetches,
  kL2PrefetchMisses,
  // LLC (8)
  kLlcLoads,
  kLlcLoadMisses,
  kLlcStores,
  kLlcStoreMisses,
  kLlcEvictions,
  kLlcOccupancyLines,
  kLlcSharedWayHits,
  kLlcBoostedFills,
  // Memory (3)
  kMemReads,
  kMemWrites,
  kMemBandwidthBytes,
  // Core (4)
  kInstructions,
  kCycles,
  kStallCycles,
  kIpcX1000,
};

inline constexpr std::size_t kCounterCount = 29;

/// Counter group for spatial ordering (Fig. 7c ablation shuffles these).
enum class CounterGroup : std::uint8_t { kL1d, kL1i, kL2, kLlc, kMem, kCore };

[[nodiscard]] std::string_view counter_name(Counter c);
[[nodiscard]] CounterGroup counter_group(Counter c);
[[nodiscard]] std::string_view counter_group_name(CounterGroup g);

/// A point-in-time snapshot of all 29 counters for one workload class.
struct CounterSnapshot {
  std::array<std::uint64_t, kCounterCount> values{};

  [[nodiscard]] std::uint64_t get(Counter c) const {
    return values[static_cast<std::size_t>(c)];
  }
  void set(Counter c, std::uint64_t v) {
    values[static_cast<std::size_t>(c)] = v;
  }
  void bump(Counter c, std::uint64_t delta = 1) {
    values[static_cast<std::size_t>(c)] += delta;
  }

  /// this - other, element-wise (interval accumulation between samples).
  /// Monotonic counters are expected; gauges (occupancy, IPC) are copied.
  [[nodiscard]] CounterSnapshot delta_since(const CounterSnapshot& other) const;

  /// Derived ratios used across the workload characterization (Table 1).
  [[nodiscard]] double l1d_miss_ratio() const;
  [[nodiscard]] double l2_miss_ratio() const;
  [[nodiscard]] double llc_miss_ratio() const;
  /// Misses per kilo-instruction at the LLC.
  [[nodiscard]] double llc_mpki() const;
};

/// Gauge counters report level, not accumulation — delta_since copies them.
[[nodiscard]] bool counter_is_gauge(Counter c);

}  // namespace stac::cachesim

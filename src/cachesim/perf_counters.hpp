// The 29 architectural cache-usage counters sampled during profiling (§5 of
// the paper samples "L1 data cache stores and misses; L1 instruction cache
// stores and misses; L2 requests, stores and misses; LLC loads, misses,
// stores; and other architectural counters related to cache usage (29 in
// total)").
//
// Counter identity matters to the model: multi-grain scanning exploits the
// *spatial ordering* of counters in the profile image, so we expose both a
// canonical grouped-by-type ordering and the counter->group mapping the
// Fig. 7c ablation shuffles.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace stac::cachesim {

/// Canonical counter ids, grouped by cache level (spatial-locality order).
enum class Counter : std::uint8_t {
  // L1 data cache (4)
  kL1dLoads = 0,
  kL1dLoadMisses,
  kL1dStores,
  kL1dStoreMisses,
  // L1 instruction cache (2)
  kL1iLoads,
  kL1iLoadMisses,
  // L2 unified (8)
  kL2Requests,
  kL2Loads,
  kL2LoadMisses,
  kL2Stores,
  kL2StoreMisses,
  kL2Evictions,
  kL2Prefetches,
  kL2PrefetchMisses,
  // LLC (8)
  kLlcLoads,
  kLlcLoadMisses,
  kLlcStores,
  kLlcStoreMisses,
  kLlcEvictions,
  kLlcOccupancyLines,
  kLlcSharedWayHits,
  kLlcBoostedFills,
  // Memory (3)
  kMemReads,
  kMemWrites,
  kMemBandwidthBytes,
  // Core (4)
  kInstructions,
  kCycles,
  kStallCycles,
  kIpcX1000,
};

inline constexpr std::size_t kCounterCount = 29;

/// Counter group for spatial ordering (Fig. 7c ablation shuffles these).
enum class CounterGroup : std::uint8_t { kL1d, kL1i, kL2, kLlc, kMem, kCore };

[[nodiscard]] std::string_view counter_name(Counter c);
[[nodiscard]] CounterGroup counter_group(Counter c);
[[nodiscard]] std::string_view counter_group_name(CounterGroup g);

/// A point-in-time snapshot of all 29 counters for one workload class.
struct CounterSnapshot {
  std::array<std::uint64_t, kCounterCount> values{};

  [[nodiscard]] std::uint64_t get(Counter c) const {
    return values[static_cast<std::size_t>(c)];
  }
  void set(Counter c, std::uint64_t v) {
    values[static_cast<std::size_t>(c)] = v;
  }
  void bump(Counter c, std::uint64_t delta = 1) {
    values[static_cast<std::size_t>(c)] += delta;
  }

  /// this - other, element-wise (interval accumulation between samples).
  /// Monotonic counters are expected; gauges (occupancy, IPC) are copied.
  [[nodiscard]] CounterSnapshot delta_since(const CounterSnapshot& other) const;

  /// Derived ratios used across the workload characterization (Table 1).
  [[nodiscard]] double l1d_miss_ratio() const;
  [[nodiscard]] double l2_miss_ratio() const;
  [[nodiscard]] double llc_miss_ratio() const;
  /// Misses per kilo-instruction at the LLC.
  [[nodiscard]] double llc_mpki() const;
};

/// Gauge counters report level, not accumulation — delta_since copies them.
[[nodiscard]] bool counter_is_gauge(Counter c);

// ---------------------------------------------------------------------------
// Modeled-time accounting (DESIGN.md §16).
//
// Cycle totals live OUTSIDE the Counter enum on purpose: kCounterCount = 29
// fixes the 2 x 29 x cols profile-image shape every trained model consumes,
// so timing gets its own side structure instead of new counter rows.
// ---------------------------------------------------------------------------

/// Where modeled cycles were spent.  DRAM is split into its zero-contention
/// share (base + transfer) and the bandwidth-queue share so contention is
/// directly observable.
enum class CycleLevel : std::uint8_t {
  kL1d = 0,
  kL1i,
  kL2,
  kLlc,
  kDramCache,  ///< stacked-tier probe + stacked-channel time
  kDramBase,   ///< main DRAM zero-contention latency + line transfer
  kDramQueue,  ///< main DRAM bandwidth-contention queue delay
};

inline constexpr std::size_t kCycleLevelCount = 7;

[[nodiscard]] std::string_view cycle_level_name(CycleLevel l);

/// Per-class modeled-cycle breakdown accumulated by CacheHierarchy access
/// and replay paths (bit-identically — the replay identity tests cover it).
struct CycleBreakdown {
  std::array<std::uint64_t, kCycleLevelCount> cycles{};
  std::uint64_t accesses = 0;
  std::uint64_t dram_cache_hits = 0;
  std::uint64_t dram_cache_misses = 0;

  [[nodiscard]] std::uint64_t get(CycleLevel l) const {
    return cycles[static_cast<std::size_t>(l)];
  }
  void bump(CycleLevel l, std::uint64_t delta) {
    cycles[static_cast<std::size_t>(l)] += delta;
  }

  /// Total modeled memory-access time across all levels.
  [[nodiscard]] std::uint64_t total() const;
  /// The memory-side share (everything past the LLC).
  [[nodiscard]] std::uint64_t memory_cycles() const {
    return get(CycleLevel::kDramCache) + get(CycleLevel::kDramBase) +
           get(CycleLevel::kDramQueue);
  }
  [[nodiscard]] double cycles_per_access() const;

  /// Element-wise accumulate (merging classes or sharded replays).
  void merge(const CycleBreakdown& other);
};

}  // namespace stac::cachesim

// One set-associative cache level with CAT-style fill-way masking.
//
// CAT semantics (Intel SDM vol. 3, §17.19), reproduced faithfully:
//   * A class of service (CLOS) carries a capacity bitmask over LLC ways.
//   * The mask restricts *fills* (which ways a miss may install/evict into).
//   * Lookups hit in ANY way — a line installed while a workload was boosted
//     keeps serving hits after the boost is revoked, until evicted.
// Replacement is LRU within the permitted ways; invalid ways are preferred.
//
// Two storage layouts (LevelConfig::soa, DESIGN.md §10):
//   * SoA (default): per-set lanes — a packed 64-bit key lane holding
//     (tag << 1) | valid, owner ids, and 32-bit per-set age counters (with
//     rank renormalization on wrap) instead of a global 64-bit LRU stamp.
//     The tag probe touches only the key lane and accumulates one compare
//     per way into a match mask (branchless, unrolled); victim selection
//     is a countr_zero on the invalid mask or a strided min-age sweep.
//   * Legacy AoS: the original vector<Way> reference implementation.
// Replacement decisions are identical: per-set age order is exactly the
// per-set order of the legacy global stamps.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "cachesim/cache_config.hpp"
#include "cachesim/simd_probe.hpp"
#include "common/check.hpp"

namespace stac::cachesim {

/// Fill-permission bitmask over ways (bit i => way i may be filled).
using WayMask = std::uint32_t;

/// Workload class id (maps to a CAT class of service).
using ClassId = std::uint16_t;
inline constexpr ClassId kNoClass = 0xFFFF;

/// Result of one cache access at one level.
struct AccessResult {
  bool hit = false;
  /// Valid line was evicted to make room (miss path only).
  bool evicted = false;
  /// Class that owned the evicted line (kNoClass if none).
  ClassId evicted_class = kNoClass;
  /// The hit was served from a way *outside* the accessor's current fill
  /// mask — i.e. a short-term-allocation residual benefit.
  bool hit_outside_mask = false;
};

class CacheLevel {
 public:
  explicit CacheLevel(const LevelConfig& config);

  /// Look up `line_addr` (address already divided by line size).  On miss,
  /// installs the line into a way permitted by `fill_mask`, evicting LRU.
  /// If `fill_mask` has no bits within the way range, the access bypasses
  /// the cache (counts as a miss, installs nothing).
  ///
  /// Defined inline (with the SoA body below) so per-reference callers —
  /// the hierarchy and trace replays — pay no call/dispatch overhead on
  /// the hot path.  The legacy layout stays out-of-line in the .cpp.
  AccessResult access(std::uint64_t line_addr, WayMask fill_mask,
                      ClassId class_id) {
    if (!config_.soa) return access_legacy(line_addr, fill_mask, class_id);
    // Fixed-width bodies for the way counts the presets use, so the
    // per-way loops unroll into straight-line compare/select code; the
    // W = 0 body is the generic runtime-count fallback.
    switch (config_.ways) {
      case 4: return access_soa_impl<4>(line_addr, fill_mask, class_id);
      case 8: return access_soa_impl<8>(line_addr, fill_mask, class_id);
      case 11: return access_soa_impl<11>(line_addr, fill_mask, class_id);
      case 12: return access_soa_impl<12>(line_addr, fill_mask, class_id);
      case 16: return access_soa_impl<16>(line_addr, fill_mask, class_id);
      case 20: return access_soa_impl<20>(line_addr, fill_mask, class_id);
      default: return access_soa_impl<0>(line_addr, fill_mask, class_id);
    }
  }

  /// Probe without side effects.
  [[nodiscard]] bool contains(std::uint64_t line_addr) const;

  /// Lines currently owned by `class_id` (CAT occupancy monitoring, CMT).
  [[nodiscard]] std::size_t occupancy(ClassId class_id) const;

  /// Invalidate everything (testbed reset between experiments).
  void flush();
  /// Invalidate only lines owned by `class_id`.
  void flush_class(ClassId class_id);

  [[nodiscard]] const LevelConfig& config() const { return config_; }
  [[nodiscard]] std::size_t sets() const { return sets_; }

  /// Full mask covering all ways of this level.
  [[nodiscard]] WayMask full_mask() const {
    return config_.ways >= 32 ? ~WayMask{0}
                              : ((WayMask{1} << config_.ways) - 1);
  }

 private:
  /// CacheHierarchy::replay() dispatches on the way widths once per batch
  /// and then drives access_soa_impl<W> directly, skipping the per-access
  /// layout/width dispatch in access().
  friend class CacheHierarchy;

  // --- legacy AoS storage (config_.soa == false) ---
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru_stamp = 0;
    ClassId owner = kNoClass;
    bool valid = false;
  };
  AccessResult access_legacy(std::uint64_t line_addr, WayMask fill_mask,
                             ClassId class_id);

  // --- SoA storage (config_.soa == true) ---
  /// W = compile-time way count (0 = generic runtime loop).  The fixed
  /// widths let the probe and age scans fully unroll into straight-line
  /// compare/select code — the "branch-light strided sweep".  Defined
  /// inline below the class; always_inline because the per-access call
  /// (prologue + struct return + dispatch) otherwise costs as much as the
  /// probe itself, and GCC's size heuristic refuses on its own.
  template <std::size_t W>
  [[gnu::always_inline]] inline AccessResult access_soa_impl(
      std::uint64_t line_addr, WayMask fill_mask, ClassId class_id);
  /// Advance the set's age clock; on wrap, rank-compress the set's ages
  /// (relative order preserved, so replacement decisions are unaffected).
  std::uint32_t bump_set_clock(std::size_t set) {
    std::uint32_t& c = set_clock_[set];
    // Renormalize one tick before the ceiling: no real age ever equals
    // UINT32_MAX, which the masked victim scan uses as its "not
    // permitted" sentinel.
    if (c >= std::numeric_limits<std::uint32_t>::max() - 1) [[unlikely]]
      renormalize_set_ages(set);
    return ++c;
  }
  /// Cold path of bump_set_clock (out of line in the .cpp).
  void renormalize_set_ages(std::size_t set);

  // Occupancy bookkeeping shared by both layouts (inline: they sit on the
  // install path of every simulated miss).  Eviction *requires* the books
  // to balance: every valid line with a real owner was installed through
  // note_install, so its class slot exists and is nonzero.
  void note_eviction(ClassId owner, AccessResult& result) {
    result.evicted = true;
    result.evicted_class = owner;
    if (owner != kNoClass) {
      // Tight invariant: a valid owned line always has a live occupancy
      // slot (note_install created/extended it), so a shortfall here is a
      // bookkeeping bug, not a condition to paper over.
      STAC_ENSURE(owner < occupancy_.size());
      STAC_ENSURE(occupancy_[owner] > 0);
      --occupancy_[owner];
    }
  }
  void note_install(ClassId class_id) {
    if (class_id == kNoClass) return;
    if (class_id >= occupancy_.size()) [[unlikely]]
      occupancy_.resize(class_id + 1, 0);
    ++occupancy_[class_id];
  }

  [[nodiscard]] std::size_t set_index(std::uint64_t line_addr) const {
    return static_cast<std::size_t>(line_addr) & set_mask_;
  }
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t line_addr) const {
    return line_addr >> set_bits_;
  }

  LevelConfig config_;
  std::size_t sets_ = 0;
  std::size_t set_bits_ = 0;
  std::size_t set_mask_ = 0;
  std::uint64_t clock_ = 0;  // legacy global LRU clock
  std::vector<Way> ways_;    // legacy: sets_ x config_.ways, row-major
  // SoA lanes (allocated only when config_.soa), row-major per set.  The
  // probe touches exactly one lane: keys_ packs tag | kValidBit, which is
  // lossless (a line tag uses at most 58 bits) and makes the probe a
  // single equality against tag | kValidBit — invalid ways can never
  // match.  Valid lives in the sign bit so the SIMD sweeps (simd_probe.hpp:
  // 4-wide AVX2 / 2-wide SSE2) read the whole set's valid mask with
  // sign-bit movemasks.
  static constexpr std::uint64_t kValidBit = std::uint64_t{1} << 63;
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> ages_;      // hit-update / victim-scan lane
  std::vector<ClassId> owners_;          // install/evict bookkeeping lane
  std::vector<std::uint32_t> set_clock_; // one age clock per set
  std::vector<std::uint8_t> mru_;        // way-prediction hint per set
  std::vector<std::size_t> occupancy_;
};

template <std::size_t W>
AccessResult CacheLevel::access_soa_impl(std::uint64_t line_addr,
                                         WayMask fill_mask, ClassId class_id) {
  AccessResult result;
  const std::size_t set = set_index(line_addr);
  const std::uint64_t tag = tag_of(line_addr);
  const std::size_t ways = W != 0 ? W : config_.ways;
  const std::size_t base = set * ways;

  // Branch-light strided probe over the packed key lane: one compare per
  // way folded into a match mask (unrolled, no per-way branch), then a
  // single test.  The probe key carries the valid bit, so invalid ways can
  // never match, and a set never holds two valid ways with the same tag
  // (installs happen only on miss) — the lowest match bit is the only one.
  std::uint64_t* keys = keys_.data() + base;
  const std::uint64_t probe = tag | kValidBit;

  // Way prediction: probe the set's most-recently-touched way first.  A
  // set holds at most one match, so a predicted hit needs one compare
  // instead of the full sweep; temporal locality makes this the common
  // case on real traces.  Pure probe-order hint — results are identical.
  const std::size_t mru = mru_[set];
  if (keys[mru] == probe) {
    ages_[base + mru] = bump_set_clock(set);
    result.hit = true;
    result.hit_outside_mask = ((fill_mask >> mru) & 1u) == 0;
    return result;
  }

  // One branch-light sweep of the key lane produces both the match mask
  // and the valid mask (valid is the key's sign bit).  The kernel lives in
  // simd_probe.hpp: AVX2 compares 4 ways per step, SSE2 2, scalar 1 —
  // widest available picked at compile time, all tiers bit-identical
  // (tests/cachesim/simd_probe_test.cpp).
  const simd::ProbeMasks probe_masks = simd::probe_sweep(keys, ways, probe);
  const std::uint32_t match = probe_masks.match;
  const std::uint32_t vmask = probe_masks.valid;
  if (match != 0) {
    const auto w = static_cast<std::size_t>(std::countr_zero(match));
    ages_[base + w] = bump_set_clock(set);
    mru_[set] = static_cast<std::uint8_t>(w);
    result.hit = true;
    result.hit_outside_mask = ((fill_mask >> w) & 1u) == 0;
    return result;
  }

  const WayMask usable = fill_mask & full_mask();
  if (usable == 0) return result;  // bypass: nothing to fill into

  // Invalid permitted ways first (lowest index, as the legacy scan picks),
  // else the strict-min age among permitted ways.  Ages within a set are
  // distinct (each comes from a fresh clock tick), so the minimum is
  // unique and matches the legacy first-strictly-smaller scan.  The scan
  // kernel (simd_probe.hpp) reads excluded ways as "infinitely young"
  // instead of branching around them; AVX2 blends + min-reduces 8 ages
  // per step, narrower builds run the scalar reference loop.
  const std::uint32_t invalid = usable & ~vmask;
  const std::size_t victim =
      invalid != 0
          ? static_cast<std::size_t>(std::countr_zero(invalid))
          : simd::victim_scan(ages_.data() + base, ways, usable);
  STAC_ENSURE(victim < ways);

  if (((vmask >> victim) & 1u) != 0)
    note_eviction(owners_[base + victim], result);
  keys[victim] = probe;
  owners_[base + victim] = class_id;
  ages_[base + victim] = bump_set_clock(set);
  mru_[set] = static_cast<std::uint8_t>(victim);
  note_install(class_id);
  return result;
}

}  // namespace stac::cachesim

// One set-associative cache level with CAT-style fill-way masking.
//
// CAT semantics (Intel SDM vol. 3, §17.19), reproduced faithfully:
//   * A class of service (CLOS) carries a capacity bitmask over LLC ways.
//   * The mask restricts *fills* (which ways a miss may install/evict into).
//   * Lookups hit in ANY way — a line installed while a workload was boosted
//     keeps serving hits after the boost is revoked, until evicted.
// Replacement is LRU within the permitted ways; invalid ways are preferred.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/cache_config.hpp"

namespace stac::cachesim {

/// Fill-permission bitmask over ways (bit i => way i may be filled).
using WayMask = std::uint32_t;

/// Workload class id (maps to a CAT class of service).
using ClassId = std::uint16_t;
inline constexpr ClassId kNoClass = 0xFFFF;

/// Result of one cache access at one level.
struct AccessResult {
  bool hit = false;
  /// Valid line was evicted to make room (miss path only).
  bool evicted = false;
  /// Class that owned the evicted line (kNoClass if none).
  ClassId evicted_class = kNoClass;
  /// The hit was served from a way *outside* the accessor's current fill
  /// mask — i.e. a short-term-allocation residual benefit.
  bool hit_outside_mask = false;
};

class CacheLevel {
 public:
  explicit CacheLevel(const LevelConfig& config);

  /// Look up `line_addr` (address already divided by line size).  On miss,
  /// installs the line into a way permitted by `fill_mask`, evicting LRU.
  /// If `fill_mask` has no bits within the way range, the access bypasses
  /// the cache (counts as a miss, installs nothing).
  AccessResult access(std::uint64_t line_addr, WayMask fill_mask,
                      ClassId class_id);

  /// Probe without side effects.
  [[nodiscard]] bool contains(std::uint64_t line_addr) const;

  /// Lines currently owned by `class_id` (CAT occupancy monitoring, CMT).
  [[nodiscard]] std::size_t occupancy(ClassId class_id) const;

  /// Invalidate everything (testbed reset between experiments).
  void flush();
  /// Invalidate only lines owned by `class_id`.
  void flush_class(ClassId class_id);

  [[nodiscard]] const LevelConfig& config() const { return config_; }
  [[nodiscard]] std::size_t sets() const { return sets_; }

  /// Full mask covering all ways of this level.
  [[nodiscard]] WayMask full_mask() const {
    return config_.ways >= 32 ? ~WayMask{0}
                              : ((WayMask{1} << config_.ways) - 1);
  }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru_stamp = 0;
    ClassId owner = kNoClass;
    bool valid = false;
  };

  [[nodiscard]] std::size_t set_index(std::uint64_t line_addr) const {
    return static_cast<std::size_t>(line_addr) & set_mask_;
  }
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t line_addr) const {
    return line_addr >> set_bits_;
  }

  LevelConfig config_;
  std::size_t sets_ = 0;
  std::size_t set_bits_ = 0;
  std::size_t set_mask_ = 0;
  std::uint64_t clock_ = 0;
  std::vector<Way> ways_;  // sets_ x config_.ways, row-major
  std::vector<std::size_t> occupancy_;
};

}  // namespace stac::cachesim

#include "cachesim/perf_counters.hpp"

#include "common/check.hpp"

namespace stac::cachesim {

namespace {
struct CounterInfo {
  std::string_view name;
  CounterGroup group;
  bool gauge;
};

constexpr std::array<CounterInfo, kCounterCount> kInfo{{
    {"l1d_loads", CounterGroup::kL1d, false},
    {"l1d_load_misses", CounterGroup::kL1d, false},
    {"l1d_stores", CounterGroup::kL1d, false},
    {"l1d_store_misses", CounterGroup::kL1d, false},
    {"l1i_loads", CounterGroup::kL1i, false},
    {"l1i_load_misses", CounterGroup::kL1i, false},
    {"l2_requests", CounterGroup::kL2, false},
    {"l2_loads", CounterGroup::kL2, false},
    {"l2_load_misses", CounterGroup::kL2, false},
    {"l2_stores", CounterGroup::kL2, false},
    {"l2_store_misses", CounterGroup::kL2, false},
    {"l2_evictions", CounterGroup::kL2, false},
    {"l2_prefetches", CounterGroup::kL2, false},
    {"l2_prefetch_misses", CounterGroup::kL2, false},
    {"llc_loads", CounterGroup::kLlc, false},
    {"llc_load_misses", CounterGroup::kLlc, false},
    {"llc_stores", CounterGroup::kLlc, false},
    {"llc_store_misses", CounterGroup::kLlc, false},
    {"llc_evictions", CounterGroup::kLlc, false},
    {"llc_occupancy_lines", CounterGroup::kLlc, true},
    {"llc_shared_way_hits", CounterGroup::kLlc, false},
    {"llc_boosted_fills", CounterGroup::kLlc, false},
    {"mem_reads", CounterGroup::kMem, false},
    {"mem_writes", CounterGroup::kMem, false},
    {"mem_bandwidth_bytes", CounterGroup::kMem, false},
    {"instructions", CounterGroup::kCore, false},
    {"cycles", CounterGroup::kCore, false},
    {"stall_cycles", CounterGroup::kCore, false},
    {"ipc_x1000", CounterGroup::kCore, true},
}};
}  // namespace

std::string_view counter_name(Counter c) {
  return kInfo[static_cast<std::size_t>(c)].name;
}

CounterGroup counter_group(Counter c) {
  return kInfo[static_cast<std::size_t>(c)].group;
}

std::string_view counter_group_name(CounterGroup g) {
  switch (g) {
    case CounterGroup::kL1d: return "L1D";
    case CounterGroup::kL1i: return "L1I";
    case CounterGroup::kL2: return "L2";
    case CounterGroup::kLlc: return "LLC";
    case CounterGroup::kMem: return "MEM";
    case CounterGroup::kCore: return "CORE";
  }
  return "?";
}

bool counter_is_gauge(Counter c) {
  return kInfo[static_cast<std::size_t>(c)].gauge;
}

CounterSnapshot CounterSnapshot::delta_since(const CounterSnapshot& other) const {
  CounterSnapshot out;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    if (counter_is_gauge(c)) {
      out.values[i] = values[i];
    } else {
      STAC_REQUIRE_MSG(values[i] >= other.values[i],
                       "monotonic counter " << counter_name(c) << " went backwards");
      out.values[i] = values[i] - other.values[i];
    }
  }
  return out;
}

namespace {
double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}
}  // namespace

double CounterSnapshot::l1d_miss_ratio() const {
  return ratio(get(Counter::kL1dLoadMisses) + get(Counter::kL1dStoreMisses),
               get(Counter::kL1dLoads) + get(Counter::kL1dStores));
}

double CounterSnapshot::l2_miss_ratio() const {
  return ratio(get(Counter::kL2LoadMisses) + get(Counter::kL2StoreMisses),
               get(Counter::kL2Requests));
}

double CounterSnapshot::llc_miss_ratio() const {
  return ratio(get(Counter::kLlcLoadMisses) + get(Counter::kLlcStoreMisses),
               get(Counter::kLlcLoads) + get(Counter::kLlcStores));
}

double CounterSnapshot::llc_mpki() const {
  return 1000.0 * ratio(get(Counter::kLlcLoadMisses) +
                            get(Counter::kLlcStoreMisses),
                        get(Counter::kInstructions));
}

std::string_view cycle_level_name(CycleLevel l) {
  switch (l) {
    case CycleLevel::kL1d: return "l1d";
    case CycleLevel::kL1i: return "l1i";
    case CycleLevel::kL2: return "l2";
    case CycleLevel::kLlc: return "llc";
    case CycleLevel::kDramCache: return "dram_cache";
    case CycleLevel::kDramBase: return "dram_base";
    case CycleLevel::kDramQueue: return "dram_queue";
  }
  return "?";
}

std::uint64_t CycleBreakdown::total() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t v : cycles) sum += v;
  return sum;
}

double CycleBreakdown::cycles_per_access() const {
  return accesses == 0
             ? 0.0
             : static_cast<double>(total()) / static_cast<double>(accesses);
}

void CycleBreakdown::merge(const CycleBreakdown& other) {
  for (std::size_t i = 0; i < kCycleLevelCount; ++i)
    cycles[i] += other.cycles[i];
  accesses += other.accesses;
  dram_cache_hits += other.dram_cache_hits;
  dram_cache_misses += other.dram_cache_misses;
}

}  // namespace stac::cachesim

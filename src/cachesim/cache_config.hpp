// Geometry and latency configuration for the simulated cache hierarchy.
//
// The hierarchy mirrors the paper's testbed shape: per-workload private
// L1D/L1I/L2 plus one shared, way-partitionable LLC (the level Intel CAT
// controls).  All sizes are in bytes; latencies in core cycles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace stac::cachesim {

/// One cache level's geometry.
struct LevelConfig {
  std::size_t size_bytes = 0;
  std::size_t ways = 0;
  std::size_t line_bytes = 64;
  std::uint32_t latency_cycles = 0;
  /// Storage layout (DESIGN.md §10): true (default) = structure-of-arrays
  /// with packed per-set tag/valid/owner/age lanes and a branch-light
  /// strided probe; false = the legacy array-of-Way reference layout.
  /// Hit/miss/eviction decisions are identical either way
  /// (tests/cachesim/cache_level_test.cpp replays both against each other).
  bool soa = true;

  [[nodiscard]] std::size_t lines() const { return size_bytes / line_bytes; }
  [[nodiscard]] std::size_t sets() const {
    return ways == 0 ? 0 : lines() / ways;
  }
  /// Geometry is valid when the size decomposes exactly into sets x ways
  /// power-of-two sets (required for bit-sliced indexing).
  [[nodiscard]] bool valid() const;
};

/// Full hierarchy: private L1D/L1I/L2 per workload class, shared LLC.
struct HierarchyConfig {
  std::string name = "generic";
  LevelConfig l1d{32 * 1024, 8, 64, 4};
  LevelConfig l1i{32 * 1024, 8, 64, 4};
  LevelConfig l2{1024 * 1024, 16, 64, 12};
  LevelConfig llc{40 * 1024 * 1024, 20, 64, 42};
  std::uint32_t memory_latency_cycles = 220;
  /// Number of physical cores on the package (collocation capacity).
  std::size_t cores = 16;

  [[nodiscard]] bool valid() const {
    return l1d.valid() && l1i.valid() && l2.valid() && llc.valid();
  }
  /// LLC capacity per way in bytes (CAT allocates whole ways).
  [[nodiscard]] std::size_t llc_way_bytes() const {
    return llc.size_bytes / llc.ways;
  }
};

/// The five Xeon processors used in the paper's evaluation (Fig. 7b).  The
/// LLC sizes follow the paper; way counts follow the part's CAT capability.
namespace presets {
/// Default platform: Xeon E5-2683 — 16 cores, 40 MB LLC, 20 ways.
[[nodiscard]] HierarchyConfig xeon_e5_2683();
/// Xeon Platinum 8275 socket 0 — 72 MB LLC (paper's two-socket run).
[[nodiscard]] HierarchyConfig xeon_platinum_8275_72mb();
/// Xeon Platinum 8275 socket 1 — 59 MB LLC (clipped by the paper's setup).
[[nodiscard]] HierarchyConfig xeon_platinum_8275_59mb();
/// Xeon 2650 — 30 MB LLC.
[[nodiscard]] HierarchyConfig xeon_2650();
/// Xeon 2620 — 20 MB LLC.
[[nodiscard]] HierarchyConfig xeon_2620();
/// All presets in Fig. 7b order (20, 30, 40, 59, 72 MB).
[[nodiscard]] const std::vector<HierarchyConfig>& all();
}  // namespace presets

}  // namespace stac::cachesim

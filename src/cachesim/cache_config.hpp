// Geometry and latency configuration for the simulated cache hierarchy.
//
// The hierarchy mirrors the paper's testbed shape: per-workload private
// L1D/L1I/L2 plus one shared, way-partitionable LLC (the level Intel CAT
// controls).  All sizes are in bytes; latencies in core cycles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "memtime/mem_time.hpp"

namespace stac::cachesim {

/// One cache level's geometry.
struct LevelConfig {
  std::size_t size_bytes = 0;
  std::size_t ways = 0;
  std::size_t line_bytes = 64;
  std::uint32_t latency_cycles = 0;
  /// Storage layout (DESIGN.md §10): true (default) = structure-of-arrays
  /// with packed per-set tag/valid/owner/age lanes and a branch-light
  /// strided probe; false = the legacy array-of-Way reference layout.
  /// Hit/miss/eviction decisions are identical either way
  /// (tests/cachesim/cache_level_test.cpp replays both against each other).
  bool soa = true;

  [[nodiscard]] std::size_t lines() const { return size_bytes / line_bytes; }
  [[nodiscard]] std::size_t sets() const {
    return ways == 0 ? 0 : lines() / ways;
  }
  /// Geometry is valid when the size decomposes exactly into sets x ways
  /// power-of-two sets (required for bit-sliced indexing).
  [[nodiscard]] bool valid() const;
};

/// Full hierarchy: private L1D/L1I/L2 per workload class, shared LLC.
struct HierarchyConfig {
  std::string name = "generic";
  LevelConfig l1d{32 * 1024, 8, 64, 4};
  LevelConfig l1i{32 * 1024, 8, 64, 4};
  LevelConfig l2{1024 * 1024, 16, 64, 12};
  LevelConfig llc{40 * 1024 * 1024, 20, 64, 42};
  /// DEPRECATED as a standalone latency model: survives only as the
  /// zero-contention DRAM baseline consumed by memtime::DramPerfModel when
  /// `timing.dram.base_latency_cycles` is 0.  timing_warnings() flags a
  /// value inconsistent with an explicit DRAM spec.
  std::uint32_t memory_latency_cycles = 220;
  /// Access-time model (DESIGN.md §16).  The default spec is the timing-off
  /// identity point: per-level flat latencies equal to the scalars above and
  /// a constant-latency DRAM — modeled behaviour is bit-identical to the
  /// pre-timing hierarchy.
  memtime::MemTimeSpec timing{};
  /// Number of physical cores on the package (collocation capacity).
  std::size_t cores = 16;

  [[nodiscard]] bool valid() const {
    return l1d.valid() && l1i.valid() && l2.valid() && llc.valid() &&
           (!timing.dram_cache.has_value() ||
            timing.dram_cache->geometry.valid());
  }
  /// LLC capacity per way in bytes (CAT allocates whole ways).
  [[nodiscard]] std::size_t llc_way_bytes() const {
    return llc.size_bytes / llc.ways;
  }

  // --- resolved timing (overrides folded against the legacy scalars) ---
  [[nodiscard]] memtime::CachePerfSpec l1d_perf() const {
    return memtime::resolve_level(timing.l1d, l1d.latency_cycles);
  }
  [[nodiscard]] memtime::CachePerfSpec l1i_perf() const {
    return memtime::resolve_level(timing.l1i, l1i.latency_cycles);
  }
  [[nodiscard]] memtime::CachePerfSpec l2_perf() const {
    return memtime::resolve_level(timing.l2, l2.latency_cycles);
  }
  [[nodiscard]] memtime::CachePerfSpec llc_perf() const {
    return memtime::resolve_level(timing.llc, llc.latency_cycles);
  }
  /// Zero-contention DRAM baseline after deprecated-scalar inheritance.
  [[nodiscard]] std::uint32_t dram_base_cycles() const {
    return timing.dram.base_latency_cycles != 0
               ? timing.dram.base_latency_cycles
               : memory_latency_cycles;
  }
  /// True when the timing spec reproduces the legacy constant-latency model
  /// exactly (the timing-off identity precondition).
  [[nodiscard]] bool timing_flat() const {
    return timing.flat_equivalent(l1d.latency_cycles, l1i.latency_cycles,
                                  l2.latency_cycles, llc.latency_cycles,
                                  memory_latency_cycles);
  }
  /// Config-validation warnings (deprecation and DRAM-cache sanity).
  [[nodiscard]] std::vector<std::string> timing_warnings() const {
    return memtime::timing_warnings(timing, memory_latency_cycles);
  }
};

/// The five Xeon processors used in the paper's evaluation (Fig. 7b), plus
/// timing-accurate points added for the cross-hardware generalization rerun
/// (EXPERIMENTS.md).  The LLC sizes follow the paper; way counts follow the
/// part's CAT capability.
namespace presets {
/// Default platform: Xeon E5-2683 — 16 cores, 40 MB LLC, 20 ways.
[[nodiscard]] HierarchyConfig xeon_e5_2683();
/// Xeon Platinum 8275 socket 0 — 72 MB LLC (paper's two-socket run).
[[nodiscard]] HierarchyConfig xeon_platinum_8275_72mb();
/// Xeon Platinum 8275 socket 1 — 59 MB LLC (clipped by the paper's setup).
[[nodiscard]] HierarchyConfig xeon_platinum_8275_59mb();
/// Xeon 2650 — 30 MB LLC.
[[nodiscard]] HierarchyConfig xeon_2650();
/// Xeon 2620 — 20 MB LLC.
[[nodiscard]] HierarchyConfig xeon_2620();
// --- timed presets (explicit CachePerfSpecs + DRAM bandwidth model) ---
/// EPYC Milan CCX slice — 32 MB LLC, parallel-lookup L1s, DDR4 channel.
[[nodiscard]] HierarchyConfig epyc_milan_32mb();
/// Sapphire Rapids class — 48 MB LLC, 12 ways, big L2, DDR5 channel.
[[nodiscard]] HierarchyConfig sapphire_rapids_48mb();
/// Emerald Rapids class — 60 MB LLC, 15 ways, fastest DRAM channel.
[[nodiscard]] HierarchyConfig emerald_rapids_60mb();
/// Xeon Max class — 64 MB LLC plus a 128 MB stacked HBM DRAM-cache tier.
[[nodiscard]] HierarchyConfig xeon_max_hbm_64mb();
/// All presets: the five paper parts in Fig. 7b order (20, 30, 40, 59,
/// 72 MB) followed by the timed points (32, 48, 60, 64+HBM).
[[nodiscard]] const std::vector<HierarchyConfig>& all();
}  // namespace presets

}  // namespace stac::cachesim

#include "cachesim/cache_level.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>
#include <numeric>

#include "common/check.hpp"

namespace stac::cachesim {

bool LevelConfig::valid() const {
  if (size_bytes == 0 || ways == 0 || line_bytes == 0) return false;
  if (size_bytes % (ways * line_bytes) != 0) return false;
  const std::size_t s = sets();
  return s > 0 && std::has_single_bit(s);
}

CacheLevel::CacheLevel(const LevelConfig& config) : config_(config) {
  STAC_REQUIRE_MSG(config.valid(), "invalid cache geometry: size="
                                       << config.size_bytes
                                       << " ways=" << config.ways);
  STAC_REQUIRE_MSG(config.ways <= 32, "way masks are 32-bit");
  sets_ = config.sets();
  set_bits_ = static_cast<std::size_t>(std::countr_zero(sets_));
  set_mask_ = sets_ - 1;
  if (config_.soa) {
    keys_.resize(sets_ * config.ways, 0);
    ages_.resize(sets_ * config.ways, 0);
    owners_.resize(sets_ * config.ways, kNoClass);
    set_clock_.resize(sets_, 0);
    mru_.resize(sets_, 0);
  } else {
    ways_.resize(sets_ * config.ways);
  }
  occupancy_.resize(1, 0);
}

AccessResult CacheLevel::access_legacy(std::uint64_t line_addr,
                                       WayMask fill_mask, ClassId class_id) {
  AccessResult result;
  const std::size_t set = set_index(line_addr);
  const std::uint64_t tag = tag_of(line_addr);
  Way* base = ways_.data() + set * config_.ways;
  ++clock_;

  // Hits are permitted in any way — CAT only constrains fills.
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru_stamp = clock_;
      result.hit = true;
      result.hit_outside_mask = ((fill_mask >> w) & 1u) == 0;
      return result;
    }
  }

  // Miss: install into a permitted way (invalid preferred, else LRU).
  const WayMask usable = fill_mask & full_mask();
  if (usable == 0) return result;  // bypass: nothing to fill into

  std::size_t victim = config_.ways;  // sentinel
  std::uint64_t oldest = ~std::uint64_t{0};
  for (std::size_t w = 0; w < config_.ways; ++w) {
    if (((usable >> w) & 1u) == 0) continue;
    Way& way = base[w];
    if (!way.valid) {
      victim = w;
      break;
    }
    if (way.lru_stamp < oldest) {
      oldest = way.lru_stamp;
      victim = w;
    }
  }
  STAC_ENSURE(victim < config_.ways);

  Way& way = base[victim];
  if (way.valid) note_eviction(way.owner, result);
  way.tag = tag;
  way.valid = true;
  way.owner = class_id;
  way.lru_stamp = clock_;
  note_install(class_id);
  return result;
}

void CacheLevel::renormalize_set_ages(std::size_t set) {
  // Rank-compress the set's ages to 1..ways.  Relative order — the only
  // thing LRU selection reads — is preserved exactly.
  std::uint32_t* age = ages_.data() + set * config_.ways;
  std::array<std::uint8_t, 32> order{};
  const std::size_t n = config_.ways;
  std::iota(order.begin(), order.begin() + n, std::uint8_t{0});
  std::sort(order.begin(), order.begin() + n,
            [age](std::uint8_t a, std::uint8_t b) { return age[a] < age[b]; });
  for (std::size_t rank = 0; rank < n; ++rank)
    age[order[rank]] = static_cast<std::uint32_t>(rank + 1);
  set_clock_[set] = static_cast<std::uint32_t>(n);
}

bool CacheLevel::contains(std::uint64_t line_addr) const {
  const std::size_t set = set_index(line_addr);
  const std::uint64_t tag = tag_of(line_addr);
  if (config_.soa) {
    const std::uint64_t* keys = keys_.data() + set * config_.ways;
    const std::uint64_t probe = tag | kValidBit;
    bool found = false;
    for (std::size_t w = 0; w < config_.ways; ++w) found |= keys[w] == probe;
    return found;
  }
  const Way* base = ways_.data() + set * config_.ways;
  for (std::size_t w = 0; w < config_.ways; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

std::size_t CacheLevel::occupancy(ClassId class_id) const {
  return class_id < occupancy_.size() ? occupancy_[class_id] : 0;
}

void CacheLevel::flush() {
  if (config_.soa) {
    std::fill(keys_.begin(), keys_.end(), std::uint64_t{0});
    std::fill(ages_.begin(), ages_.end(), 0u);
    std::fill(owners_.begin(), owners_.end(), kNoClass);
  } else {
    for (auto& w : ways_) w = Way{};
  }
  for (auto& o : occupancy_) o = 0;
}

void CacheLevel::flush_class(ClassId class_id) {
  if (config_.soa) {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if ((keys_[i] & kValidBit) != 0 && owners_[i] == class_id) {
        keys_[i] = 0;
        owners_[i] = kNoClass;
      }
    }
  } else {
    for (auto& w : ways_) {
      if (w.valid && w.owner == class_id) w = Way{};
    }
  }
  if (class_id < occupancy_.size()) occupancy_[class_id] = 0;
}

}  // namespace stac::cachesim

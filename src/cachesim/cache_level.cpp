#include "cachesim/cache_level.hpp"

#include <bit>

#include "common/check.hpp"

namespace stac::cachesim {

bool LevelConfig::valid() const {
  if (size_bytes == 0 || ways == 0 || line_bytes == 0) return false;
  if (size_bytes % (ways * line_bytes) != 0) return false;
  const std::size_t s = sets();
  return s > 0 && std::has_single_bit(s);
}

CacheLevel::CacheLevel(const LevelConfig& config) : config_(config) {
  STAC_REQUIRE_MSG(config.valid(), "invalid cache geometry: size="
                                       << config.size_bytes
                                       << " ways=" << config.ways);
  STAC_REQUIRE_MSG(config.ways <= 32, "way masks are 32-bit");
  sets_ = config.sets();
  set_bits_ = static_cast<std::size_t>(std::countr_zero(sets_));
  set_mask_ = sets_ - 1;
  ways_.resize(sets_ * config.ways);
  occupancy_.resize(1, 0);
}

AccessResult CacheLevel::access(std::uint64_t line_addr, WayMask fill_mask,
                                ClassId class_id) {
  AccessResult result;
  const std::size_t set = set_index(line_addr);
  const std::uint64_t tag = tag_of(line_addr);
  Way* base = ways_.data() + set * config_.ways;
  ++clock_;

  // Hits are permitted in any way — CAT only constrains fills.
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru_stamp = clock_;
      result.hit = true;
      result.hit_outside_mask = ((fill_mask >> w) & 1u) == 0;
      return result;
    }
  }

  // Miss: install into a permitted way (invalid preferred, else LRU).
  const WayMask usable = fill_mask & full_mask();
  if (usable == 0) return result;  // bypass: nothing to fill into

  std::size_t victim = config_.ways;  // sentinel
  std::uint64_t oldest = ~std::uint64_t{0};
  for (std::size_t w = 0; w < config_.ways; ++w) {
    if (((usable >> w) & 1u) == 0) continue;
    Way& way = base[w];
    if (!way.valid) {
      victim = w;
      break;
    }
    if (way.lru_stamp < oldest) {
      oldest = way.lru_stamp;
      victim = w;
    }
  }
  STAC_ENSURE(victim < config_.ways);

  Way& way = base[victim];
  if (way.valid) {
    result.evicted = true;
    result.evicted_class = way.owner;
    if (way.owner != kNoClass && way.owner < occupancy_.size() &&
        occupancy_[way.owner] > 0)
      --occupancy_[way.owner];
  }
  way.tag = tag;
  way.valid = true;
  way.owner = class_id;
  way.lru_stamp = clock_;
  if (class_id != kNoClass) {
    if (class_id >= occupancy_.size()) occupancy_.resize(class_id + 1, 0);
    ++occupancy_[class_id];
  }
  return result;
}

bool CacheLevel::contains(std::uint64_t line_addr) const {
  const std::size_t set = set_index(line_addr);
  const std::uint64_t tag = tag_of(line_addr);
  const Way* base = ways_.data() + set * config_.ways;
  for (std::size_t w = 0; w < config_.ways; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

std::size_t CacheLevel::occupancy(ClassId class_id) const {
  return class_id < occupancy_.size() ? occupancy_[class_id] : 0;
}

void CacheLevel::flush() {
  for (auto& w : ways_) w = Way{};
  for (auto& o : occupancy_) o = 0;
}

void CacheLevel::flush_class(ClassId class_id) {
  for (auto& w : ways_) {
    if (w.valid && w.owner == class_id) w = Way{};
  }
  if (class_id < occupancy_.size()) occupancy_[class_id] = 0;
}

}  // namespace stac::cachesim

#include "cachesim/cache_hierarchy.hpp"

#include <bit>

#include "common/check.hpp"

namespace stac::cachesim {

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config,
                               std::size_t max_classes)
    : config_(config), llc_(config.llc) {
  STAC_REQUIRE(config.valid());
  STAC_REQUIRE(max_classes >= 1);
  l1d_.reserve(max_classes);
  l1i_.reserve(max_classes);
  l2_.reserve(max_classes);
  for (std::size_t i = 0; i < max_classes; ++i) {
    l1d_.emplace_back(config.l1d);
    l1i_.emplace_back(config.l1i);
    l2_.emplace_back(config.l2);
  }
  llc_masks_.assign(max_classes, llc_.full_mask());
  counters_.assign(max_classes, CounterSnapshot{});
}

void CacheHierarchy::set_llc_fill_mask(ClassId class_id, WayMask mask) {
  STAC_REQUIRE(class_id < llc_masks_.size());
  llc_masks_[class_id] = mask & llc_.full_mask();
}

WayMask CacheHierarchy::llc_fill_mask(ClassId class_id) const {
  STAC_REQUIRE(class_id < llc_masks_.size());
  return llc_masks_[class_id];
}

std::uint32_t CacheHierarchy::access(ClassId class_id,
                                     const MemoryAccess& ref) {
  STAC_REQUIRE(class_id < counters_.size());
  CounterSnapshot& ctr = counters_[class_id];
  const std::uint64_t line = ref.address / config_.l1d.line_bytes;
  const bool is_store = ref.type == AccessType::kStore;
  const bool is_ifetch = ref.type == AccessType::kIfetch;
  const bool is_prefetch = ref.type == AccessType::kPrefetch;

  std::uint32_t latency = 0;

  // --- L1 ---
  CacheLevel& l1 = is_ifetch ? l1i_[class_id] : l1d_[class_id];
  latency += l1.config().latency_cycles;
  if (is_ifetch) {
    ctr.bump(Counter::kL1iLoads);
  } else if (is_store) {
    ctr.bump(Counter::kL1dStores);
  } else {
    ctr.bump(Counter::kL1dLoads);
  }
  const AccessResult r1 = l1.access(line, l1.full_mask(), class_id);
  if (r1.hit) return latency;
  if (is_ifetch) {
    ctr.bump(Counter::kL1iLoadMisses);
  } else if (is_store) {
    ctr.bump(Counter::kL1dStoreMisses);
  } else {
    ctr.bump(Counter::kL1dLoadMisses);
  }

  // --- L2 (unified, private) ---
  CacheLevel& l2 = l2_[class_id];
  latency += l2.config().latency_cycles;
  ctr.bump(Counter::kL2Requests);
  if (is_prefetch) {
    ctr.bump(Counter::kL2Prefetches);
  } else if (is_store) {
    ctr.bump(Counter::kL2Stores);
  } else {
    ctr.bump(Counter::kL2Loads);
  }
  const AccessResult r2 = l2.access(line, l2.full_mask(), class_id);
  if (r2.evicted) ctr.bump(Counter::kL2Evictions);
  if (r2.hit) return latency;
  if (is_prefetch) {
    ctr.bump(Counter::kL2PrefetchMisses);
  } else if (is_store) {
    ctr.bump(Counter::kL2StoreMisses);
  } else {
    ctr.bump(Counter::kL2LoadMisses);
  }

  // --- LLC (shared, CAT-masked fills) ---
  latency += llc_.config().latency_cycles;
  if (is_store) {
    ctr.bump(Counter::kLlcStores);
  } else {
    ctr.bump(Counter::kLlcLoads);
  }
  const WayMask mask = llc_masks_[class_id];
  const AccessResult r3 = llc_.access(line, mask, class_id);
  if (r3.evicted) ctr.bump(Counter::kLlcEvictions);
  if (r3.hit) {
    if (r3.hit_outside_mask) ctr.bump(Counter::kLlcSharedWayHits);
    return latency;
  }
  if (is_store) {
    ctr.bump(Counter::kLlcStoreMisses);
  } else {
    ctr.bump(Counter::kLlcLoadMisses);
  }
  // A fill into a way outside a *default-sized* single-workload partition is
  // tracked when the controller flags the class as boosted; approximated
  // here as: more than half the LLC ways are currently writable.
  if (std::popcount(mask) * 3 > static_cast<int>(config_.llc.ways))
    ctr.bump(Counter::kLlcBoostedFills);

  // --- memory ---
  latency += config_.memory_latency_cycles;
  ctr.bump(is_store ? Counter::kMemWrites : Counter::kMemReads);
  ctr.bump(Counter::kMemBandwidthBytes, config_.llc.line_bytes);
  ctr.bump(Counter::kStallCycles, config_.memory_latency_cycles);
  return latency;
}

void CacheHierarchy::retire_instructions(ClassId class_id, std::uint64_t n) {
  STAC_REQUIRE(class_id < counters_.size());
  CounterSnapshot& ctr = counters_[class_id];
  ctr.bump(Counter::kInstructions, n);
  ctr.bump(Counter::kCycles, n);  // 1 IPC baseline for non-memory work
}

CounterSnapshot CacheHierarchy::counters(ClassId class_id) const {
  STAC_REQUIRE(class_id < counters_.size());
  CounterSnapshot snap = counters_[class_id];
  snap.set(Counter::kLlcOccupancyLines, llc_.occupancy(class_id));
  const std::uint64_t cycles =
      snap.get(Counter::kCycles) + snap.get(Counter::kStallCycles);
  const std::uint64_t instr = snap.get(Counter::kInstructions);
  snap.set(Counter::kCycles, cycles);
  snap.set(Counter::kIpcX1000,
           cycles == 0 ? 0 : (instr * 1000) / cycles);
  return snap;
}

std::size_t CacheHierarchy::llc_occupancy(ClassId class_id) const {
  return llc_.occupancy(class_id);
}

void CacheHierarchy::reset() {
  for (auto& c : l1d_) c.flush();
  for (auto& c : l1i_) c.flush();
  for (auto& c : l2_) c.flush();
  llc_.flush();
  for (auto& c : counters_) c = CounterSnapshot{};
}

}  // namespace stac::cachesim

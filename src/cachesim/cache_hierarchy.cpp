#include "cachesim/cache_hierarchy.hpp"

#include <bit>
#include <cstdio>
#include <string>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace stac::cachesim {

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config,
                               std::size_t max_classes)
    : config_(config), llc_(config.llc) {
  STAC_REQUIRE(config.valid());
  STAC_REQUIRE(max_classes >= 1);
  line_pow2_ = std::has_single_bit(config.l1d.line_bytes);
  if (line_pow2_)
    line_shift_ =
        static_cast<std::uint32_t>(std::countr_zero(config.l1d.line_bytes));
  l1d_.reserve(max_classes);
  l1i_.reserve(max_classes);
  l2_.reserve(max_classes);
  for (std::size_t i = 0; i < max_classes; ++i) {
    l1d_.emplace_back(config.l1d);
    l1i_.emplace_back(config.l1i);
    l2_.emplace_back(config.l2);
  }
  llc_masks_.assign(max_classes, llc_.full_mask());
  counters_.assign(max_classes, CounterSnapshot{});
  cycles_.assign(max_classes, CycleBreakdown{});

  // Resolve the timing spec (DESIGN.md §16).  With the default spec every
  // model collapses to the legacy scalars: flat per-level latencies and a
  // constant-latency DRAM inheriting `memory_latency_cycles`.
  l1d_perf_ = memtime::CachePerfModel(config.l1d_perf());
  l1i_perf_ = memtime::CachePerfModel(config.l1i_perf());
  l2_perf_ = memtime::CachePerfModel(config.l2_perf());
  llc_perf_ = memtime::CachePerfModel(config.llc_perf());
  dram_ = memtime::DramPerfModel(config.timing.dram,
                                 config.memory_latency_cycles);
  if (config.timing.dram_cache.has_value()) {
    const memtime::DramCacheSpec& dc = *config.timing.dram_cache;
    // Line addresses are computed once against the L1 line size; a stacked
    // tier with a different line would index the wrong sets.
    STAC_REQUIRE(dc.geometry.line_bytes == config.l1d.line_bytes);
    LevelConfig dc_cfg;
    dc_cfg.size_bytes = dc.geometry.size_bytes;
    dc_cfg.ways = dc.geometry.ways;
    dc_cfg.line_bytes = dc.geometry.line_bytes;
    dc_cfg.latency_cycles = 0;  // timing comes from dram_cache_perf_
    dram_cache_.emplace(dc_cfg);
    dram_cache_perf_ = memtime::CachePerfModel(dc.perf);
    dram_cache_dram_ =
        memtime::DramPerfModel(dc.dram, config.memory_latency_cycles);
  }
  mem_flat_ = !dram_cache_.has_value() && !dram_.queue_enabled();

  for (const std::string& w : config.timing_warnings()) {
    obs::count("cachesim.timing_warning");
    std::fprintf(stderr, "[cachesim] config warning: %s\n", w.c_str());
  }
}

void CacheHierarchy::set_llc_fill_mask(ClassId class_id, WayMask mask) {
  STAC_REQUIRE(class_id < llc_masks_.size());
  llc_masks_[class_id] = mask & llc_.full_mask();
}

WayMask CacheHierarchy::llc_fill_mask(ClassId class_id) const {
  STAC_REQUIRE(class_id < llc_masks_.size());
  return llc_masks_[class_id];
}

// Memory-side time past the LLC.  `now` is the modeled clock at the start
// of the access (the caller advances the clock afterwards); both accounting
// paths pass it the same way, which is what keeps access() and replay()
// bit-identical.  Inline: every call site is in this TU.
[[gnu::always_inline]] inline std::uint32_t CacheHierarchy::memory_side(
    std::uint64_t line, ClassId class_id, std::uint64_t now, Counter mem_ctr,
    CounterSnapshot& ctr, CycleBreakdown& cyc) {
  ctr.bump(mem_ctr);
  ctr.bump(Counter::kMemBandwidthBytes, config_.llc.line_bytes);
  const auto bytes = static_cast<std::uint32_t>(config_.llc.line_bytes);
  std::uint32_t mem = 0;
  if (dram_cache_.has_value()) {
    const AccessResult rc =
        dram_cache_->access(line, dram_cache_->full_mask(), class_id);
    if (rc.hit) {
      // Tag check plus the stacked channel's row fetch; main DRAM untouched.
      const memtime::DramAccessTime t = dram_cache_dram_.access(now, bytes);
      const std::uint32_t dc = dram_cache_perf_.hit_cycles() + t.total;
      cyc.bump(CycleLevel::kDramCache, dc);
      ++cyc.dram_cache_hits;
      ctr.bump(Counter::kStallCycles, dc);
      return dc;
    }
    mem += dram_cache_perf_.miss_cycles();
    cyc.bump(CycleLevel::kDramCache, dram_cache_perf_.miss_cycles());
    ++cyc.dram_cache_misses;
  }
  const memtime::DramAccessTime t = dram_.access(now, bytes);
  mem += t.total;
  cyc.bump(CycleLevel::kDramBase, t.total - t.queue);
  cyc.bump(CycleLevel::kDramQueue, t.queue);
  ctr.bump(Counter::kStallCycles, mem);
  return mem;
}

std::uint32_t CacheHierarchy::access(ClassId class_id,
                                     const MemoryAccess& ref) {
  STAC_REQUIRE(class_id < counters_.size());
  CounterSnapshot& ctr = counters_[class_id];
  CycleBreakdown& cyc = cycles_[class_id];
  const std::uint64_t line = line_pow2_
                                 ? ref.address >> line_shift_
                                 : ref.address / config_.l1d.line_bytes;
  const bool is_store = ref.type == AccessType::kStore;
  const bool is_ifetch = ref.type == AccessType::kIfetch;
  const bool is_prefetch = ref.type == AccessType::kPrefetch;

  ++cyc.accesses;
  std::uint32_t latency = 0;

  // --- L1 ---
  CacheLevel& l1 = is_ifetch ? l1i_[class_id] : l1d_[class_id];
  const memtime::CachePerfModel& l1_perf = is_ifetch ? l1i_perf_ : l1d_perf_;
  if (is_ifetch) {
    ctr.bump(Counter::kL1iLoads);
  } else if (is_store) {
    ctr.bump(Counter::kL1dStores);
  } else {
    ctr.bump(Counter::kL1dLoads);
  }
  const AccessResult r1 = l1.access(line, l1.full_mask(), class_id);
  const std::uint32_t c1 =
      r1.hit ? l1_perf.hit_cycles() : l1_perf.miss_cycles();
  cyc.bump(is_ifetch ? CycleLevel::kL1i : CycleLevel::kL1d, c1);
  latency += c1;
  if (r1.hit) {
    clock_cycles_ += latency;
    return latency;
  }
  if (is_ifetch) {
    ctr.bump(Counter::kL1iLoadMisses);
  } else if (is_store) {
    ctr.bump(Counter::kL1dStoreMisses);
  } else {
    ctr.bump(Counter::kL1dLoadMisses);
  }

  // --- L2 (unified, private) ---
  CacheLevel& l2 = l2_[class_id];
  ctr.bump(Counter::kL2Requests);
  if (is_prefetch) {
    ctr.bump(Counter::kL2Prefetches);
  } else if (is_store) {
    ctr.bump(Counter::kL2Stores);
  } else {
    ctr.bump(Counter::kL2Loads);
  }
  const AccessResult r2 = l2.access(line, l2.full_mask(), class_id);
  if (r2.evicted) ctr.bump(Counter::kL2Evictions);
  const std::uint32_t c2 =
      r2.hit ? l2_perf_.hit_cycles() : l2_perf_.miss_cycles();
  cyc.bump(CycleLevel::kL2, c2);
  latency += c2;
  if (r2.hit) {
    clock_cycles_ += latency;
    return latency;
  }
  if (is_prefetch) {
    ctr.bump(Counter::kL2PrefetchMisses);
  } else if (is_store) {
    ctr.bump(Counter::kL2StoreMisses);
  } else {
    ctr.bump(Counter::kL2LoadMisses);
  }

  // --- LLC (shared, CAT-masked fills) ---
  if (is_store) {
    ctr.bump(Counter::kLlcStores);
  } else {
    ctr.bump(Counter::kLlcLoads);
  }
  const WayMask mask = llc_masks_[class_id];
  const AccessResult r3 = llc_.access(line, mask, class_id);
  if (r3.evicted) ctr.bump(Counter::kLlcEvictions);
  const std::uint32_t c3 =
      r3.hit ? llc_perf_.hit_cycles() : llc_perf_.miss_cycles();
  cyc.bump(CycleLevel::kLlc, c3);
  latency += c3;
  if (r3.hit) {
    if (r3.hit_outside_mask) ctr.bump(Counter::kLlcSharedWayHits);
    clock_cycles_ += latency;
    return latency;
  }
  if (is_store) {
    ctr.bump(Counter::kLlcStoreMisses);
  } else {
    ctr.bump(Counter::kLlcLoadMisses);
  }
  // A fill into a way outside a *default-sized* single-workload partition is
  // tracked when the controller flags the class as boosted; approximated
  // here as: more than half the LLC ways are currently writable.
  if (std::popcount(mask) * 3 > static_cast<int>(config_.llc.ways))
    ctr.bump(Counter::kLlcBoostedFills);

  // --- memory (optional stacked tier, then DRAM) ---
  latency += memory_side(line, class_id, clock_cycles_,
                         is_store ? Counter::kMemWrites : Counter::kMemReads,
                         ctr, cyc);
  clock_cycles_ += latency;
  return latency;
}

namespace {
// Counter selection by access type (kLoad, kStore, kIfetch, kPrefetch) —
// the same classification access() makes with its is_store/is_ifetch/
// is_prefetch branch chains, folded into lookups so the replay loop stays
// branch-light on unpredictable type mixes.
constexpr Counter kL1AccCtr[4] = {Counter::kL1dLoads, Counter::kL1dStores,
                                  Counter::kL1iLoads, Counter::kL1dLoads};
constexpr Counter kL1MissCtr[4] = {
    Counter::kL1dLoadMisses, Counter::kL1dStoreMisses,
    Counter::kL1iLoadMisses, Counter::kL1dLoadMisses};
constexpr Counter kL2AccCtr[4] = {Counter::kL2Loads, Counter::kL2Stores,
                                  Counter::kL2Loads, Counter::kL2Prefetches};
constexpr Counter kL2MissCtr[4] = {
    Counter::kL2LoadMisses, Counter::kL2StoreMisses, Counter::kL2LoadMisses,
    Counter::kL2PrefetchMisses};
constexpr Counter kLlcAccCtr[4] = {Counter::kLlcLoads, Counter::kLlcStores,
                                   Counter::kLlcLoads, Counter::kLlcLoads};
constexpr Counter kLlcMissCtr[4] = {
    Counter::kLlcLoadMisses, Counter::kLlcStoreMisses, Counter::kLlcLoadMisses,
    Counter::kLlcLoadMisses};
constexpr Counter kMemCtr[4] = {Counter::kMemReads, Counter::kMemWrites,
                                Counter::kMemReads, Counter::kMemReads};
}  // namespace

template <std::size_t W>
[[gnu::always_inline]] inline AccessResult CacheHierarchy::probe_level(
    CacheLevel& level, std::uint64_t line, WayMask fill_mask,
    ClassId class_id) {
  if constexpr (W == 0) {
    return level.access(line, fill_mask, class_id);
  } else {
    return level.template access_soa_impl<W>(line, fill_mask, class_id);
  }
}

std::uint64_t CacheHierarchy::replay(const MemoryAccess* refs,
                                     const ClassId* classes, std::size_t n) {
  // Pick the loop instantiation once per batch: the default Xeon presets
  // all use 8/8/16/20 ways, so that tuple gets a fully specialized body
  // whose SoA probes inline and unroll; anything else (or any level still
  // on the legacy layout) takes the generic body driven through access().
  if (config_.l1d.soa && config_.l1i.soa && config_.l2.soa &&
      config_.llc.soa && config_.l1d.ways == 8 && config_.l1i.ways == 8 &&
      config_.l2.ways == 16 && config_.llc.ways == 20) {
    return replay_fixed<8, 8, 16, 20>(refs, classes, n);
  }
  return replay_fixed<0, 0, 0, 0>(refs, classes, n);
}

template <std::size_t L1DW, std::size_t L1IW, std::size_t L2W,
          std::size_t LLCW>
std::uint64_t CacheHierarchy::replay_fixed(const MemoryAccess* refs,
                                           const ClassId* classes,
                                           std::size_t n) {
  // Mirrors access() bump-for-bump (any change there must be reflected
  // here; the replay identity test holds the two together).  The loop body
  // lives in one TU with the level probes, hoists the per-level hit/miss
  // charge latencies and L1/L2 fill masks, and classifies each reference
  // through the type tables above instead of a per-reference branch chain.
  const std::uint32_t l1d_hit = l1d_perf_.hit_cycles();
  const std::uint32_t l1d_miss = l1d_perf_.miss_cycles();
  const std::uint32_t l1i_hit = l1i_perf_.hit_cycles();
  const std::uint32_t l1i_miss = l1i_perf_.miss_cycles();
  const std::uint32_t l2_hit = l2_perf_.hit_cycles();
  const std::uint32_t l2_miss = l2_perf_.miss_cycles();
  const std::uint32_t llc_hit = llc_perf_.hit_cycles();
  const std::uint32_t llc_miss = llc_perf_.miss_cycles();
  // Flat memory side (no stacked tier, no queue model): charge one hoisted
  // scalar — exactly what memory_side() would compute — so the timing-off
  // replay keeps its pre-timing throughput.
  const bool mem_flat = mem_flat_;
  const std::uint32_t dram_flat = dram_.base_latency();
  // Hoisted into locals: the member vectors never reallocate during a
  // replay, but the level probes write through their data pointers, so
  // without the locals the compiler must re-derive size() (a 64-bit
  // divide) and the data pointers every iteration.
  const std::size_t nclasses = counters_.size();
  CounterSnapshot* const ctrs = counters_.data();
  CycleBreakdown* const cycs = cycles_.data();
  CacheLevel* const l1d = l1d_.data();
  CacheLevel* const l1i = l1i_.data();
  CacheLevel* const l2s = l2_.data();
  const WayMask* const masks = llc_masks_.data();
  // Validate the class column up front so the per-reference path carries no
  // bounds branch; the pre-pass is a trivially-predicted streaming scan.
  ClassId max_class = 0;
  for (std::size_t i = 0; i < n; ++i)
    max_class = classes[i] > max_class ? classes[i] : max_class;
  STAC_REQUIRE(n == 0 || max_class < nclasses);
  std::uint64_t total = 0;
  std::uint64_t clock = clock_cycles_;
  for (std::size_t i = 0; i < n; ++i) {
    const ClassId c = classes[i];
    const MemoryAccess ref = refs[i];
    const auto t = static_cast<std::size_t>(ref.type) & 3u;
    const std::uint64_t line = line_pow2_
                                   ? ref.address >> line_shift_
                                   : ref.address / config_.l1d.line_bytes;
    CounterSnapshot& ctr = ctrs[c];
    CycleBreakdown& cyc = cycs[c];
    const bool is_ifetch = ref.type == AccessType::kIfetch;

    ++cyc.accesses;
    ctr.bump(kL1AccCtr[t]);
    const AccessResult r1 =
        is_ifetch
            ? probe_level<L1IW>(l1i[c], line, l1i[c].full_mask(), c)
            : probe_level<L1DW>(l1d[c], line, l1d[c].full_mask(), c);
    const std::uint32_t c1 = r1.hit ? (is_ifetch ? l1i_hit : l1d_hit)
                                    : (is_ifetch ? l1i_miss : l1d_miss);
    cyc.bump(is_ifetch ? CycleLevel::kL1i : CycleLevel::kL1d, c1);
    std::uint32_t latency = c1;
    if (r1.hit) {
      total += latency;
      clock += latency;
      continue;
    }
    ctr.bump(kL1MissCtr[t]);

    CacheLevel& l2 = l2s[c];
    ctr.bump(Counter::kL2Requests);
    ctr.bump(kL2AccCtr[t]);
    const AccessResult r2 = probe_level<L2W>(l2, line, l2.full_mask(), c);
    if (r2.evicted) ctr.bump(Counter::kL2Evictions);
    const std::uint32_t c2 = r2.hit ? l2_hit : l2_miss;
    cyc.bump(CycleLevel::kL2, c2);
    latency += c2;
    if (r2.hit) {
      total += latency;
      clock += latency;
      continue;
    }
    ctr.bump(kL2MissCtr[t]);

    ctr.bump(kLlcAccCtr[t]);
    const WayMask mask = masks[c];
    const AccessResult r3 = probe_level<LLCW>(llc_, line, mask, c);
    if (r3.evicted) ctr.bump(Counter::kLlcEvictions);
    const std::uint32_t c3 = r3.hit ? llc_hit : llc_miss;
    cyc.bump(CycleLevel::kLlc, c3);
    latency += c3;
    if (r3.hit) {
      if (r3.hit_outside_mask) ctr.bump(Counter::kLlcSharedWayHits);
      total += latency;
      clock += latency;
      continue;
    }
    ctr.bump(kLlcMissCtr[t]);
    if (std::popcount(mask) * 3 > static_cast<int>(config_.llc.ways))
      ctr.bump(Counter::kLlcBoostedFills);

    if (mem_flat) {
      ctr.bump(kMemCtr[t]);
      ctr.bump(Counter::kMemBandwidthBytes, config_.llc.line_bytes);
      ctr.bump(Counter::kStallCycles, dram_flat);
      cyc.bump(CycleLevel::kDramBase, dram_flat);
      latency += dram_flat;
    } else {
      latency += memory_side(line, c, clock, kMemCtr[t], ctr, cyc);
    }
    total += latency;
    clock += latency;
  }
  clock_cycles_ = clock;
  return total;
}

void CacheHierarchy::retire_instructions(ClassId class_id, std::uint64_t n) {
  STAC_REQUIRE(class_id < counters_.size());
  CounterSnapshot& ctr = counters_[class_id];
  ctr.bump(Counter::kInstructions, n);
  ctr.bump(Counter::kCycles, n);  // 1 IPC baseline for non-memory work
  clock_cycles_ += n;             // non-memory work advances the model clock
}

CounterSnapshot CacheHierarchy::counters(ClassId class_id) const {
  STAC_REQUIRE(class_id < counters_.size());
  CounterSnapshot snap = counters_[class_id];
  snap.set(Counter::kLlcOccupancyLines, llc_.occupancy(class_id));
  const std::uint64_t cycles =
      snap.get(Counter::kCycles) + snap.get(Counter::kStallCycles);
  const std::uint64_t instr = snap.get(Counter::kInstructions);
  snap.set(Counter::kCycles, cycles);
  snap.set(Counter::kIpcX1000,
           cycles == 0 ? 0 : (instr * 1000) / cycles);
  return snap;
}

const CycleBreakdown& CacheHierarchy::cycles(ClassId class_id) const {
  STAC_REQUIRE(class_id < cycles_.size());
  return cycles_[class_id];
}

CycleBreakdown CacheHierarchy::total_cycles() const {
  CycleBreakdown out;
  for (const CycleBreakdown& c : cycles_) out.merge(c);
  return out;
}

void CacheHierarchy::publish_cycle_metrics() const {
  const CycleBreakdown total = total_cycles();
  for (std::size_t i = 0; i < kCycleLevelCount; ++i) {
    const auto level = static_cast<CycleLevel>(i);
    obs::set_gauge(std::string("cachesim.cycles.") +
                       std::string(cycle_level_name(level)),
                   static_cast<double>(total.cycles[i]));
  }
  obs::set_gauge("cachesim.cycles.total",
                 static_cast<double>(total.total()));
  obs::set_gauge("cachesim.cycles.accesses",
                 static_cast<double>(total.accesses));
  obs::set_gauge("cachesim.dram_cache.hits",
                 static_cast<double>(total.dram_cache_hits));
  obs::set_gauge("cachesim.dram_cache.misses",
                 static_cast<double>(total.dram_cache_misses));
  obs::set_gauge("cachesim.dram.queue_cycles_total",
                 static_cast<double>(dram_.total_queue_cycles()));
}

std::size_t CacheHierarchy::llc_occupancy(ClassId class_id) const {
  return llc_.occupancy(class_id);
}

void CacheHierarchy::reset() {
  for (auto& c : l1d_) c.flush();
  for (auto& c : l1i_) c.flush();
  for (auto& c : l2_) c.flush();
  llc_.flush();
  if (dram_cache_.has_value()) dram_cache_->flush();
  for (auto& c : counters_) c = CounterSnapshot{};
  for (auto& c : cycles_) c = CycleBreakdown{};
  clock_cycles_ = 0;
  dram_.reset();
  dram_cache_dram_.reset();
}

}  // namespace stac::cachesim

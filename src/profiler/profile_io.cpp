#include "profiler/profile_io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.hpp"
#include "common/fault_injection.hpp"

namespace stac::profiler {

namespace {

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string checksum_hex(const std::string& record) {
  std::ostringstream os;
  os << std::hex << std::setfill('0') << std::setw(16) << fnv1a64(record);
  return os.str();
}

void write_doubles(std::ostream& os, const std::vector<double>& values) {
  os << values.size();
  for (double v : values) os << ' ' << v;
  os << '\n';
}

std::vector<double> read_doubles(std::istream& is, const char* what) {
  std::size_t n = 0;
  STAC_REQUIRE_MSG(static_cast<bool>(is >> n), "truncated " << what);
  STAC_REQUIRE_MSG(n < (1u << 20), "implausible " << what << " length");
  std::vector<double> values(n);
  for (auto& v : values)
    STAC_REQUIRE_MSG(static_cast<bool>(is >> v), "truncated " << what);
  return values;
}

/// Serialize one profile record (everything the checksum covers).
std::string record_string(const Profile& p) {
  std::ostringstream out;
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  const RuntimeCondition& c = p.condition;
  out << wl::benchmark_id(c.primary) << ' ' << wl::benchmark_id(c.collocated)
      << ' ' << c.util_primary << ' ' << c.util_collocated << ' '
      << c.timeout_primary << ' ' << c.timeout_collocated << ' '
      << c.sampling_rel << ' ' << c.mix_primary << ' ' << c.mix_collocated
      << ' ' << c.churn << ' ' << c.seed << ' ' << p.ea << ' ' << p.ea_boost
      << ' ' << p.mean_rt << ' ' << p.p95_rt << ' ' << p.mean_rt_default
      << ' ' << p.p95_rt_default << ' ' << p.mean_service << ' '
      << p.scaled_base_primary << ' ' << p.allocation_ratio << '\n';
  write_doubles(out, p.statics);
  write_doubles(out, p.dynamics);
  out << p.image.rows() << ' ' << p.image.cols();
  for (std::size_t r = 0; r < p.image.rows(); ++r)
    for (double v : p.image.row(r)) out << ' ' << v;
  out << '\n';
  return out.str();
}

/// Parse one record (the exact inverse of record_string).  Throws
/// ContractViolation with a reason on any damage.
Profile parse_record(const std::string& record, std::size_t index) {
  std::istringstream in(record);
  Profile p;
  std::string primary, collocated;
  STAC_REQUIRE_MSG(
      static_cast<bool>(
          in >> primary >> collocated >> p.condition.util_primary >>
          p.condition.util_collocated >> p.condition.timeout_primary >>
          p.condition.timeout_collocated >> p.condition.sampling_rel >>
          p.condition.mix_primary >> p.condition.mix_collocated >>
          p.condition.churn >> p.condition.seed >> p.ea >> p.ea_boost >>
          p.mean_rt >> p.p95_rt >> p.mean_rt_default >> p.p95_rt_default >>
          p.mean_service >> p.scaled_base_primary >> p.allocation_ratio),
      "truncated profile record " << index);
  const auto b_primary = wl::benchmark_from_id(primary);
  const auto b_collocated = wl::benchmark_from_id(collocated);
  STAC_REQUIRE_MSG(b_primary && b_collocated,
                   "unknown benchmark id in record " << index);
  p.condition.primary = *b_primary;
  p.condition.collocated = *b_collocated;

  p.statics = read_doubles(in, "statics");
  p.dynamics = read_doubles(in, "dynamics");
  std::size_t rows = 0, cols = 0;
  STAC_REQUIRE_MSG(static_cast<bool>(in >> rows >> cols),
                   "truncated image header in record " << index);
  STAC_REQUIRE_MSG(rows * cols < (1u << 24), "implausible image size");
  p.image = Matrix(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t col = 0; col < cols; ++col)
      STAC_REQUIRE_MSG(static_cast<bool>(in >> p.image(r, col)),
                       "truncated image data in record " << index);
  return p;
}

/// Read the next `n` lines into one string (newline-terminated each).
/// Returns false on EOF before all lines were read.
bool read_lines(std::istream& in, std::size_t n, std::string& out) {
  out.clear();
  std::string line;
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::getline(in, line)) return false;
    out += line;
    out += '\n';
  }
  return true;
}

}  // namespace

void save_profiles(const std::string& path,
                   const std::vector<Profile>& profiles) {
  FaultInjector::global().check("io.save_profile");
  std::ofstream out(path);
  STAC_REQUIRE_MSG(out.good(), "cannot open " << path << " for writing");
  out << "stac-profiles v" << kProfileFileVersion << ' ' << profiles.size()
      << '\n';
  for (const Profile& p : profiles) {
    const std::string record = record_string(p);
    out << record << "checksum " << checksum_hex(record) << '\n';
  }
  STAC_REQUIRE_MSG(out.good(), "write to " << path << " failed");
}

ProfileLoadReport load_profiles_resilient(const std::string& path) {
  ProfileLoadReport report;
  try {
    FaultInjector::global().check("io.load_profile");
  } catch (const InjectedFault& e) {
    report.file_quarantined = true;
    report.file_reason = e.what();
    return report;
  }

  std::ifstream in(path);
  std::size_t count = 0;
  {
    std::string header;
    if (!in.good() || !std::getline(in, header)) {
      report.file_quarantined = true;
      report.file_reason = "cannot open " + path;
      return report;
    }
    std::istringstream hs(header);
    std::string magic, version;
    if (!(hs >> magic >> version >> count) || magic != "stac-profiles") {
      report.file_quarantined = true;
      report.file_reason = "not a stac profile file: " + path;
      return report;
    }
    if (version == "v1") {
      report.version = 1;
    } else if (version == "v" + std::to_string(kProfileFileVersion)) {
      report.version = kProfileFileVersion;
    } else {
      report.file_quarantined = true;
      report.file_reason = "unsupported profile file version " + version;
      return report;
    }
  }
  if (count >= (1u << 24)) {
    report.file_quarantined = true;
    report.file_reason = "implausible profile count in " + path;
    return report;
  }

  report.profiles.reserve(count);
  std::string record;
  for (std::size_t i = 0; i < count; ++i) {
    // Records are 4 lines (meta, statics, dynamics, image); v2 adds a
    // checksum trailer line.
    if (!read_lines(in, 4, record)) {
      report.quarantined.push_back({i, "truncated file (record missing)"});
      // Nothing left to resync against — the remaining records are gone.
      for (std::size_t j = i + 1; j < count; ++j)
        report.quarantined.push_back({j, "truncated file (record missing)"});
      break;
    }
    if (report.version >= 2) {
      std::string trailer;
      if (!std::getline(in, trailer)) {
        report.quarantined.push_back({i, "truncated file (checksum missing)"});
        for (std::size_t j = i + 1; j < count; ++j)
          report.quarantined.push_back({j, "truncated file (record missing)"});
        break;
      }
      std::istringstream ts(trailer);
      std::string tag, hex;
      if (!(ts >> tag >> hex) || tag != "checksum") {
        // The record structure itself is damaged; alignment past this point
        // is unrecoverable, so quarantine the rest of the file too.
        report.quarantined.push_back({i, "malformed checksum trailer"});
        for (std::size_t j = i + 1; j < count; ++j)
          report.quarantined.push_back({j, "unreachable (lost alignment)"});
        break;
      }
      if (hex != checksum_hex(record)) {
        report.quarantined.push_back(
            {i, "checksum mismatch (corrupt record)"});
        continue;  // structure intact: the next record still aligns
      }
    }
    try {
      report.profiles.push_back(parse_record(record, i));
    } catch (const ContractViolation& e) {
      report.quarantined.push_back({i, e.what()});
    }
  }
  return report;
}

std::vector<Profile> load_profiles(const std::string& path) {
  ProfileLoadReport report = load_profiles_resilient(path);
  STAC_REQUIRE_MSG(!report.file_quarantined, report.file_reason);
  STAC_REQUIRE_MSG(report.quarantined.empty(),
                   "profile file " << path << ": record "
                                   << report.quarantined.front().index << ": "
                                   << report.quarantined.front().reason);
  return std::move(report.profiles);
}

}  // namespace stac::profiler

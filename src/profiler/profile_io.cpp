#include "profiler/profile_io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.hpp"

namespace stac::profiler {

namespace {

void write_doubles(std::ostream& os, const std::vector<double>& values) {
  os << values.size();
  for (double v : values) os << ' ' << v;
  os << '\n';
}

std::vector<double> read_doubles(std::istream& is, const char* what) {
  std::size_t n = 0;
  STAC_REQUIRE_MSG(static_cast<bool>(is >> n), "truncated " << what);
  std::vector<double> values(n);
  for (auto& v : values)
    STAC_REQUIRE_MSG(static_cast<bool>(is >> v), "truncated " << what);
  return values;
}

}  // namespace

void save_profiles(const std::string& path,
                   const std::vector<Profile>& profiles) {
  std::ofstream out(path);
  STAC_REQUIRE_MSG(out.good(), "cannot open " << path << " for writing");
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "stac-profiles v" << kProfileFileVersion << ' ' << profiles.size()
      << '\n';
  for (const Profile& p : profiles) {
    const RuntimeCondition& c = p.condition;
    out << wl::benchmark_id(c.primary) << ' '
        << wl::benchmark_id(c.collocated) << ' ' << c.util_primary << ' '
        << c.util_collocated << ' ' << c.timeout_primary << ' '
        << c.timeout_collocated << ' ' << c.sampling_rel << ' '
        << c.mix_primary << ' ' << c.mix_collocated << ' ' << c.churn << ' '
        << c.seed << ' ' << p.ea << ' ' << p.ea_boost << ' ' << p.mean_rt
        << ' ' << p.p95_rt << ' ' << p.mean_rt_default << ' '
        << p.p95_rt_default << ' ' << p.mean_service << ' '
        << p.scaled_base_primary << ' ' << p.allocation_ratio << '\n';
    write_doubles(out, p.statics);
    write_doubles(out, p.dynamics);
    out << p.image.rows() << ' ' << p.image.cols();
    for (std::size_t r = 0; r < p.image.rows(); ++r)
      for (double v : p.image.row(r)) out << ' ' << v;
    out << '\n';
  }
  STAC_REQUIRE_MSG(out.good(), "write to " << path << " failed");
}

std::vector<Profile> load_profiles(const std::string& path) {
  std::ifstream in(path);
  STAC_REQUIRE_MSG(in.good(), "cannot open " << path);
  std::string magic;
  std::string version;
  std::size_t count = 0;
  STAC_REQUIRE_MSG(static_cast<bool>(in >> magic >> version >> count),
                   "not a stac profile file: " << path);
  STAC_REQUIRE_MSG(magic == "stac-profiles", "bad magic in " << path);
  STAC_REQUIRE_MSG(version == "v" + std::to_string(kProfileFileVersion),
                   "unsupported profile file version " << version);

  std::vector<Profile> profiles;
  profiles.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Profile p;
    std::string primary, collocated;
    STAC_REQUIRE_MSG(
        static_cast<bool>(
            in >> primary >> collocated >> p.condition.util_primary >>
            p.condition.util_collocated >> p.condition.timeout_primary >>
            p.condition.timeout_collocated >> p.condition.sampling_rel >>
            p.condition.mix_primary >> p.condition.mix_collocated >>
            p.condition.churn >> p.condition.seed >> p.ea >> p.ea_boost >>
            p.mean_rt >> p.p95_rt >> p.mean_rt_default >> p.p95_rt_default >>
            p.mean_service >> p.scaled_base_primary >> p.allocation_ratio),
        "truncated profile record " << i << " in " << path);
    const auto b_primary = wl::benchmark_from_id(primary);
    const auto b_collocated = wl::benchmark_from_id(collocated);
    STAC_REQUIRE_MSG(b_primary && b_collocated,
                     "unknown benchmark id in " << path);
    p.condition.primary = *b_primary;
    p.condition.collocated = *b_collocated;

    p.statics = read_doubles(in, "statics");
    p.dynamics = read_doubles(in, "dynamics");
    std::size_t rows = 0, cols = 0;
    STAC_REQUIRE_MSG(static_cast<bool>(in >> rows >> cols),
                     "truncated image header in " << path);
    STAC_REQUIRE_MSG(rows * cols < (1u << 24), "implausible image size");
    p.image = Matrix(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t col = 0; col < cols; ++col)
        STAC_REQUIRE_MSG(static_cast<bool>(in >> p.image(r, col)),
                         "truncated image data in " << path);
    profiles.push_back(std::move(p));
  }
  return profiles;
}

}  // namespace stac::profiler

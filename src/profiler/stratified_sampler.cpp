#include "profiler/stratified_sampler.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace stac::profiler {

StratifiedSampler::StratifiedSampler(const Profiler& profiler,
                                     SamplerConfig config)
    : profiler_(profiler), config_(config) {
  STAC_REQUIRE(config.clusters >= 1);
  STAC_REQUIRE(config.seed_fraction > 0.0 && config.seed_fraction <= 1.0);
}

std::vector<Profile> StratifiedSampler::collect_uniform(
    wl::Benchmark primary, wl::Benchmark collocated, std::size_t budget) {
  Rng rng(config_.seed);
  std::vector<RuntimeCondition> conditions;
  conditions.reserve(budget);
  for (std::size_t i = 0; i < budget; ++i)
    conditions.push_back(
        random_condition(primary, collocated, config_.ranges, rng));
  return profiler_.profile_conditions(conditions);
}

std::vector<Profile> StratifiedSampler::collect(wl::Benchmark primary,
                                                wl::Benchmark collocated,
                                                std::size_t budget) {
  STAC_REQUIRE(budget >= 4);
  Rng rng(config_.seed);
  const auto n_seed = std::max<std::size_t>(
      config_.clusters,
      static_cast<std::size_t>(config_.seed_fraction *
                               static_cast<double>(budget)));

  // Phase 1: random seed experiments.
  STAC_TRACE_SPAN(seed_span, "sampler.seed", "profiler");
  seed_span.arg("conditions", static_cast<std::uint64_t>(n_seed));
  std::vector<RuntimeCondition> seeds;
  seeds.reserve(n_seed);
  for (std::size_t i = 0; i < n_seed; ++i)
    seeds.push_back(
        random_condition(primary, collocated, config_.ranges, rng));
  std::vector<Profile> profiles = profiler_.profile_conditions(seeds);
  seed_span.finish();
  if (profiles.empty() || budget <= n_seed) return profiles;

  // Phase 2: cluster the seed profiles by effective allocation.
  Matrix points(profiles.size(), 1);
  for (std::size_t i = 0; i < profiles.size(); ++i)
    points(i, 0) = profiles[i].ea;
  ml::KMeansConfig kc;
  kc.k = std::min(config_.clusters, profiles.size());
  kc.seed = rng.next_u64();
  const ml::KMeansResult clusters = ml::kmeans(points, kc);

  // Per-cluster EA spread decides where refinement effort goes: clusters
  // whose members disagree hide the behaviour the model must learn.
  std::vector<double> spread(kc.k, 0.0);
  std::vector<std::vector<std::size_t>> members(kc.k);
  for (std::size_t i = 0; i < profiles.size(); ++i)
    members[clusters.assignment[i]].push_back(i);
  double total_spread = 0.0;
  for (std::size_t c = 0; c < kc.k; ++c) {
    StreamingStats st;
    for (std::size_t i : members[c]) st.add(profiles[i].ea);
    spread[c] = st.count() > 0 ? st.stddev() + 0.01 : 0.0;
    total_spread += spread[c];
  }

  // Phase 3: perturbed refinements near cluster members.
  STAC_TRACE_SPAN(refine_span, "sampler.refine", "profiler");
  const std::size_t n_refine = budget - n_seed;
  refine_span.arg("conditions", static_cast<std::uint64_t>(n_refine));
  std::vector<RuntimeCondition> refinements;
  refinements.reserve(n_refine);
  for (std::size_t i = 0; i < n_refine; ++i) {
    // Pick a cluster weighted by spread, then a random member in it.
    double pick = rng.uniform() * total_spread;
    std::size_t c = 0;
    while (c + 1 < kc.k && pick > spread[c]) {
      pick -= spread[c];
      ++c;
    }
    if (members[c].empty()) {
      refinements.push_back(
          random_condition(primary, collocated, config_.ranges, rng));
      continue;
    }
    const std::size_t m =
        members[c][rng.uniform_index(members[c].size())];
    refinements.push_back(
        perturb_condition(profiles[m].condition, config_.ranges, rng));
  }
  std::vector<Profile> refined = profiler_.profile_conditions(refinements);
  for (auto& p : refined) profiles.push_back(std::move(p));
  return profiles;
}

}  // namespace stac::profiler

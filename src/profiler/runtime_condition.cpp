#include "profiler/runtime_condition.hpp"

#include <algorithm>
#include <sstream>

namespace stac::profiler {

std::string RuntimeCondition::to_string() const {
  std::ostringstream os;
  os << wl::benchmark_id(primary) << "(" << wl::benchmark_id(collocated)
     << ") util=" << util_primary << "/" << util_collocated
     << " T=" << timeout_primary << "/" << timeout_collocated;
  return os.str();
}

RuntimeCondition RuntimeCondition::swapped() const {
  RuntimeCondition s = *this;
  std::swap(s.primary, s.collocated);
  std::swap(s.util_primary, s.util_collocated);
  std::swap(s.timeout_primary, s.timeout_collocated);
  std::swap(s.mix_primary, s.mix_collocated);
  return s;
}

RuntimeCondition random_condition(wl::Benchmark primary,
                                  wl::Benchmark collocated,
                                  const ConditionRanges& ranges, Rng& rng) {
  RuntimeCondition c;
  c.primary = primary;
  c.collocated = collocated;
  c.util_primary = rng.uniform(ranges.util_lo, ranges.util_hi);
  c.util_collocated = rng.uniform(ranges.util_lo, ranges.util_hi);
  c.timeout_primary = rng.uniform(ranges.timeout_lo, ranges.timeout_hi);
  c.timeout_collocated = rng.uniform(ranges.timeout_lo, ranges.timeout_hi);
  c.mix_primary = rng.uniform(ranges.mix_lo, ranges.mix_hi);
  c.mix_collocated = rng.uniform(ranges.mix_lo, ranges.mix_hi);
  c.churn = rng.uniform(ranges.churn_lo, ranges.churn_hi);
  c.seed = rng.next_u64();
  return c;
}

RuntimeCondition perturb_condition(const RuntimeCondition& base,
                                   const ConditionRanges& ranges, Rng& rng) {
  RuntimeCondition c = base;
  const double util_sigma = 0.07 * (ranges.util_hi - ranges.util_lo);
  const double to_sigma = 0.07 * (ranges.timeout_hi - ranges.timeout_lo);
  c.util_primary = std::clamp(base.util_primary + rng.normal(0.0, util_sigma),
                              ranges.util_lo, ranges.util_hi);
  c.util_collocated =
      std::clamp(base.util_collocated + rng.normal(0.0, util_sigma),
                 ranges.util_lo, ranges.util_hi);
  c.timeout_primary =
      std::clamp(base.timeout_primary + rng.normal(0.0, to_sigma),
                 ranges.timeout_lo, ranges.timeout_hi);
  c.timeout_collocated =
      std::clamp(base.timeout_collocated + rng.normal(0.0, to_sigma),
                 ranges.timeout_lo, ranges.timeout_hi);
  const double mix_sigma = 0.07 * (ranges.mix_hi - ranges.mix_lo);
  c.mix_primary = std::clamp(base.mix_primary + rng.normal(0.0, mix_sigma),
                             ranges.mix_lo, ranges.mix_hi);
  c.mix_collocated =
      std::clamp(base.mix_collocated + rng.normal(0.0, mix_sigma),
                 ranges.mix_lo, ranges.mix_hi);
  const double churn_sigma = 0.07 * (ranges.churn_hi - ranges.churn_lo);
  c.churn = std::clamp(base.churn + rng.normal(0.0, churn_sigma),
                       ranges.churn_lo, ranges.churn_hi);
  c.seed = rng.next_u64();
  return c;
}

}  // namespace stac::profiler

// Profile persistence: save a profiling session to disk and reload it in a
// later process.  The paper's workflow depends on this — profiling runs in
// a test environment, model training and policy exploration happen later
// (possibly elsewhere), so the profile library must round-trip losslessly.
//
// Format: a line-oriented text file.  One header line with a format
// version, then per profile a metadata line followed by three data lines
// (statics, dynamics, image dimensions + row-major values) and — since v2 —
// a `checksum <hex>` trailer computed over the record's bytes.  Numbers use
// max_digits10 so doubles survive the round trip bit-exactly.
//
// Corruption handling: load_profiles() is strict (throws on the first bad
// byte; use it when a bad library must abort a run), while
// load_profiles_resilient() quarantines corrupt or truncated records —
// skipping them and recording the reason — so one flipped bit on disk
// cannot kill a calibrate→predict→recommend pipeline.  Both paths consult
// the "io.load_profile" / "io.save_profile" fault points.
#pragma once

#include <string>
#include <vector>

#include "profiler/profiler.hpp"

namespace stac::profiler {

/// Current file format version.  v1 files (no checksums) still load.
inline constexpr int kProfileFileVersion = 2;

/// Write profiles to `path`, replacing any existing file.  Throws
/// ContractViolation on I/O failure.  Every record carries an FNV-1a64
/// checksum so later loads can detect corruption.
void save_profiles(const std::string& path,
                   const std::vector<Profile>& profiles);

/// Read profiles back.  Throws ContractViolation on I/O failure, version
/// mismatch, malformed content, or a checksum mismatch.
[[nodiscard]] std::vector<Profile> load_profiles(const std::string& path);

/// One skipped record (or file-level failure) from a resilient load.
struct QuarantinedProfile {
  std::size_t index = 0;  ///< record index within the file
  std::string reason;
};

struct ProfileLoadReport {
  std::vector<Profile> profiles;           ///< the records that survived
  std::vector<QuarantinedProfile> quarantined;
  int version = 0;
  /// File-level failure (unreadable / bad magic / bad version): nothing was
  /// loaded and `reason` says why.  Record-level damage does NOT set this.
  bool file_quarantined = false;
  std::string file_reason;

  [[nodiscard]] bool clean() const {
    return !file_quarantined && quarantined.empty();
  }
};

/// Best-effort load: corrupt or truncated records are skipped and recorded
/// instead of aborting the load.  Never throws on bad content (only on
/// programming errors).
[[nodiscard]] ProfileLoadReport load_profiles_resilient(
    const std::string& path);

}  // namespace stac::profiler

// Profile persistence: save a profiling session to disk and reload it in a
// later process.  The paper's workflow depends on this — profiling runs in
// a test environment, model training and policy exploration happen later
// (possibly elsewhere), so the profile library must round-trip losslessly.
//
// Format: a line-oriented text file.  One header line with a format
// version, then per profile a metadata line followed by four data lines
// (statics, dynamics, image dimensions + row-major values).  Numbers use
// max_digits10 so doubles survive the round trip bit-exactly.
#pragma once

#include <string>
#include <vector>

#include "profiler/profiler.hpp"

namespace stac::profiler {

/// Current file format version.
inline constexpr int kProfileFileVersion = 1;

/// Write profiles to `path`, replacing any existing file.  Throws
/// ContractViolation on I/O failure.
void save_profiles(const std::string& path,
                   const std::vector<Profile>& profiles);

/// Read profiles back.  Throws ContractViolation on I/O failure, version
/// mismatch, or malformed content.
[[nodiscard]] std::vector<Profile> load_profiles(const std::string& path);

}  // namespace stac::profiler

// Stage 1: profiling (§3.1, §4).
//
// For each runtime condition the profiler
//   1. runs the collocated pair on the ground-truth testbed under the
//      condition's STAP timeouts, with the trace hook sampling dynamic
//      state at the condition's sampling rate;
//   2. runs the same pair, same seed, under never-boost defaults;
//   3. computes effective cache allocation (Eq. 3) from the two runs;
//   4. replays the dynamic trace through the (scaled) cache simulator with
//      CAT masks following the recorded boost states, producing the 29
//      hardware counters per service per sample — the profile "image"
//      (Eq. 2's <static, dynamic, query_0..query_N> vector, 2-D); and
//   5. splits long traces into several windows, each its own training row
//      (the paper's trick for growing N under limited profiling time).
//
// Service-time normalization: conditions are all relative to service time
// (Table 2), so the testbed runs each pairing in normalized units with the
// native timescale ratio compressed to at most `max_pair_ratio` (see
// DESIGN.md — an 81 s Spark job next to a 1 ms Redis query cannot be
// discrete-event simulated at natural scale).
#pragma once

#include <vector>

#include "cachesim/cache_config.hpp"
#include "cat/allocation_plan.hpp"
#include "ml/dataset.hpp"
#include "profiler/runtime_condition.hpp"
#include "queueing/testbed.hpp"
#include "wl/benchmark_suite.hpp"

namespace stac::profiler {

/// How EA labels (Eq. 3) are computed (DESIGN.md §16).
///   * kMissRatio — from testbed service durations, exactly as before this
///     knob existed.  Bit-identical to the historical pipeline.
///   * kModeledTime — from the timing-accurate hierarchy: replay the
///     policy/default/boosted traces through the (scaled) simulator and
///     take modeled memory cycles per access as the service-time proxy, so
///     EA reflects contended memory *time* rather than a miss-count proxy.
enum class EaMode : std::uint8_t { kMissRatio = 0, kModeledTime };

struct ProfilerConfig {
  cachesim::HierarchyConfig hw = cachesim::presets::xeon_e5_2683();
  /// Counter-image generation runs on a 1/`counter_scale` replica of the
  /// hierarchy (same way count; working sets scaled identically so miss
  /// ratios are preserved).  Must be a power of two.
  double counter_scale = 16.0;
  std::uint32_t private_ways = 1;
  std::uint32_t shared_ways = 2;
  std::size_t servers = 2;
  std::size_t image_cols = 20;   ///< time samples per profile image
  std::size_t max_windows = 3;   ///< profile rows per condition
  std::size_t target_completions = 1200;
  std::size_t warmup_completions = 100;
  std::size_t accesses_per_sample = 4000;
  double max_pair_ratio = 20.0;
  double occupancy_response = 2.0;
  /// EA label source; kMissRatio reproduces today's labels exactly.
  EaMode ea_mode = EaMode::kMissRatio;
};

/// One profile row (Eq. 2): image + condition features + measured outputs.
struct Profile {
  RuntimeCondition condition;
  Matrix image;                  ///< (2 x 29 counters) x image_cols
  std::vector<double> statics;   ///< static condition features
  std::vector<double> dynamics;  ///< per-window dynamic features
  /// Effective allocation of the condition's own policy (Eq. 3) — the
  /// quantity reported and clustered on.
  double ea = 0.0;
  /// Effective allocation at the always-boost counterpart (primary timeout
  /// 0, same seed/neighbour): the *potential* capacity-conversion
  /// efficiency under this contention environment.  This is the Stage-2
  /// learning target — the Stage-3 simulator needs the boosted-phase
  /// speedup (ea_boost x allocation ratio), not the prevalence-diluted
  /// policy EA.
  double ea_boost = 0.0;
  double mean_rt = 0.0;          ///< ground truth under the policy (scaled)
  double p95_rt = 0.0;
  double mean_rt_default = 0.0;  ///< ground truth under never-boost
  double p95_rt_default = 0.0;
  double mean_service = 0.0;     ///< mean service duration under policy
  double scaled_base_primary = 0.0;
  double allocation_ratio = 1.0;

  /// Response time normalized by the workload's scaled base service time
  /// (the scale-free quantity models predict).
  [[nodiscard]] double norm_mean_rt() const {
    return mean_rt / scaled_base_primary;
  }
  [[nodiscard]] double norm_p95_rt() const {
    return p95_rt / scaled_base_primary;
  }
};

class Profiler {
 public:
  explicit Profiler(ProfilerConfig config = {});

  [[nodiscard]] const ProfilerConfig& config() const { return config_; }
  [[nodiscard]] const cat::AllocationPlan& plan() const { return plan_; }
  [[nodiscard]] const wl::WorkloadModel& model(wl::Benchmark b) const;

  /// Profile one condition; returns up to max_windows rows (same EA/RT,
  /// different windows).
  [[nodiscard]] std::vector<Profile> profile_condition(
      const RuntimeCondition& condition) const;

  /// Parallel batch over conditions.
  [[nodiscard]] std::vector<Profile> profile_conditions(
      const std::vector<RuntimeCondition>& conditions) const;

  /// Testbed configuration for a condition with explicit timeouts (used by
  /// the policy baselines and the evaluation harnesses too).  Conditions
  /// with a non-unit query mix need per-condition workload models; they are
  /// placed in `owned_models`, whose lifetime must cover the Testbed's.
  [[nodiscard]] queueing::TestbedConfig make_testbed_config(
      const RuntimeCondition& condition, double timeout_primary,
      double timeout_collocated,
      std::vector<std::unique_ptr<wl::WorkloadModel>>& owned_models) const;

  /// Workload model with the condition's query-mix scaling applied (mix
  /// scales the hot working sets; 1.0 returns the canonical calibration).
  [[nodiscard]] wl::WorkloadModel make_mixed_model(wl::Benchmark b,
                                                   double mix) const;

  /// Convert to an ML sample.  `shuffle_rows` destroys the grouped counter
  /// ordering (the Fig. 7c spatial-locality ablation).
  [[nodiscard]] static ml::ProfileSample to_sample(const Profile& profile,
                                                   bool shuffle_rows = false,
                                                   std::uint64_t shuffle_seed = 1);

  /// Per-workload time scales for a pairing (ratio-capped normalization).
  struct PairScales {
    double scale_primary = 1.0;
    double scale_collocated = 1.0;
    double scaled_base_primary = 1.0;
    double scaled_base_collocated = 1.0;
  };
  [[nodiscard]] PairScales pair_scales(wl::Benchmark primary,
                                       wl::Benchmark collocated) const;

  /// Static feature vector for a condition (also used at inference time).
  [[nodiscard]] std::vector<double> static_features(
      const RuntimeCondition& condition) const;
  [[nodiscard]] static std::vector<std::string> static_feature_names();
  [[nodiscard]] static std::vector<std::string> dynamic_feature_names();

  /// Modeled memory cycles per access of the primary service over the
  /// steady-state tail of `result`'s trace (the kModeledTime EA input).
  /// Returns 0 when the trace is too short to replay.
  [[nodiscard]] double modeled_cycles_per_access(
      const queueing::TestbedResult& result,
      const RuntimeCondition& condition) const;

 private:
  /// Shared trace-replay core: drives the scaled hierarchy over trace
  /// columns [col_begin, col_begin + cols) with CAT masks tracking the
  /// recorded boost states; fills `image` (2 x 29 x cols counter deltas)
  /// when non-null and returns the primary's modeled cycles per access
  /// accumulated after warmup.
  double replay_columns(const queueing::TestbedResult& result,
                        std::size_t col_begin, std::size_t cols,
                        const RuntimeCondition& condition,
                        Matrix* image) const;
  [[nodiscard]] Matrix render_image(
      const queueing::TestbedResult& result, std::size_t col_begin,
      std::size_t cols, const RuntimeCondition& condition) const;

  ProfilerConfig config_;
  cat::AllocationPlan plan_;
  std::vector<wl::WorkloadModel> models_;        ///< full-size, per benchmark
  std::vector<wl::WorkloadSpec> scaled_specs_;   ///< counter-scale replicas
  cachesim::HierarchyConfig scaled_hw_;
};

}  // namespace stac::profiler

#include "profiler/profiler.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "cat/cat_controller.hpp"
#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "wl/access_stream.hpp"

namespace stac::profiler {

using cachesim::CacheHierarchy;
using cachesim::Counter;
using cachesim::CounterSnapshot;
using cachesim::kCounterCount;

namespace {

wl::WorkloadSpec scale_spec(const wl::WorkloadSpec& spec, double scale) {
  wl::WorkloadSpec s = spec;
  for (auto& c : s.profile.components) c.ws_bytes /= scale;
  s.profile.code_bytes = std::max(4096.0, s.profile.code_bytes / scale);
  s.zipf_records = std::max<std::size_t>(
      64, static_cast<std::size_t>(
              static_cast<double>(s.zipf_records) / scale));
  return s;
}

cachesim::HierarchyConfig scale_hw(const cachesim::HierarchyConfig& hw,
                                   double scale) {
  cachesim::HierarchyConfig s = hw;
  const auto f = static_cast<std::size_t>(scale);
  STAC_REQUIRE_MSG(std::has_single_bit(f), "counter_scale must be 2^k");
  s.llc.size_bytes /= f;
  s.l2.size_bytes /= f;
  s.l1d.size_bytes = std::max<std::size_t>(s.l1d.size_bytes / f,
                                           s.l1d.ways * s.l1d.line_bytes);
  s.l1i.size_bytes = std::max<std::size_t>(s.l1i.size_bytes / f,
                                           s.l1i.ways * s.l1i.line_bytes);
  // A stacked DRAM-cache tier scales with the rest of the hierarchy so its
  // hit ratio (and thus the modeled-time signature) is preserved.
  if (s.timing.dram_cache.has_value())
    s.timing.dram_cache->geometry.size_bytes /= f;
  STAC_REQUIRE_MSG(s.valid(), "scaled hierarchy geometry invalid");
  return s;
}

}  // namespace

Profiler::Profiler(ProfilerConfig config)
    : config_(std::move(config)),
      plan_(cat::make_pair_plan(
          static_cast<std::uint32_t>(config_.hw.llc.ways),
          config_.private_ways, config_.shared_ways)),
      scaled_hw_(scale_hw(config_.hw, config_.counter_scale)) {
  const double way_bytes = static_cast<double>(config_.hw.llc_way_bytes());
  models_.reserve(wl::kBenchmarkCount);
  scaled_specs_.reserve(wl::kBenchmarkCount);
  for (wl::Benchmark b : wl::all_benchmarks()) {
    models_.push_back(wl::make_model(b, config_.hw.llc.ways, way_bytes,
                                     config_.private_ways));
    scaled_specs_.push_back(
        scale_spec(wl::benchmark_spec(b), config_.counter_scale));
  }
}

const wl::WorkloadModel& Profiler::model(wl::Benchmark b) const {
  return models_[static_cast<std::size_t>(b)];
}

Profiler::PairScales Profiler::pair_scales(wl::Benchmark primary,
                                           wl::Benchmark collocated) const {
  const double bp = model(primary).baseline_service_time();
  const double bc = model(collocated).baseline_service_time();
  const double bmin = std::min(bp, bc);
  PairScales s;
  s.scaled_base_primary = std::min(bp / bmin, config_.max_pair_ratio);
  s.scaled_base_collocated = std::min(bc / bmin, config_.max_pair_ratio);
  s.scale_primary = s.scaled_base_primary / bp;
  s.scale_collocated = s.scaled_base_collocated / bc;
  return s;
}

wl::WorkloadModel Profiler::make_mixed_model(wl::Benchmark b,
                                             double mix) const {
  STAC_REQUIRE(mix > 0.0);
  wl::WorkloadSpec spec = wl::benchmark_spec(b);
  for (auto& c : spec.profile.components) c.ws_bytes *= mix;
  return wl::WorkloadModel(spec, config_.hw.llc.ways,
                           static_cast<double>(config_.hw.llc_way_bytes()),
                           config_.private_ways);
}

queueing::TestbedConfig Profiler::make_testbed_config(
    const RuntimeCondition& condition, double timeout_primary,
    double timeout_collocated,
    std::vector<std::unique_ptr<wl::WorkloadModel>>& owned_models) const {
  const PairScales scales = pair_scales(condition.primary,
                                        condition.collocated);
  auto model_for = [&](wl::Benchmark b, double mix) -> const wl::WorkloadModel* {
    if (mix == 1.0) return &model(b);
    owned_models.push_back(
        std::make_unique<wl::WorkloadModel>(make_mixed_model(b, mix)));
    return owned_models.back().get();
  };
  queueing::TestbedConfig cfg;
  queueing::TestbedWorkload wp;
  wp.model = model_for(condition.primary, condition.mix_primary);
  wp.utilization = condition.util_primary;
  wp.servers = config_.servers;
  wp.time_scale = scales.scale_primary;
  queueing::TestbedWorkload wc;
  wc.model = model_for(condition.collocated, condition.mix_collocated);
  wc.utilization = condition.util_collocated;
  wc.servers = config_.servers;
  wc.time_scale = scales.scale_collocated;
  cfg.workloads = {wp, wc};
  cfg.staps =
      cat::make_stap_vector(plan_, {timeout_primary, timeout_collocated});
  cfg.target_completions = config_.target_completions;
  cfg.warmup_completions = config_.warmup_completions;
  cfg.occupancy_response = config_.occupancy_response;
  cfg.background_churn = condition.churn;
  cfg.seed = condition.seed;
  return cfg;
}

std::vector<double> Profiler::static_features(
    const RuntimeCondition& condition) const {
  const double ratio =
      static_cast<double>(config_.private_ways + config_.shared_ways) /
      static_cast<double>(config_.private_ways);
  // Deliberately only *configuration knobs* the operator actually sets
  // (Table 2): arrival rates, timeouts, allocation geometry, known service
  // baselines.  Everything micro-architectural (miss ratios, memory
  // boundedness, contention behaviour) must be learned from the counter
  // image — that is the paper's point, and hand-feeding derived workload
  // descriptors here would let even linear models shortcut Stage 2.
  std::vector<double> f{
      condition.util_primary,    condition.timeout_primary,
      condition.util_collocated, condition.timeout_collocated,
      static_cast<double>(config_.private_ways),
      static_cast<double>(config_.shared_ways),
      ratio,
  };
  for (const wl::Benchmark b : {condition.primary, condition.collocated}) {
    const wl::WorkloadModel& m = model(b);
    f.push_back(std::log10(m.baseline_service_time()));
    f.push_back(m.spec().use_microservice_graph ? 0.55 : m.spec().service_cv);
  }
  return f;
}

std::vector<std::string> Profiler::static_feature_names() {
  return {"util_p",        "timeout_p",    "util_c",       "timeout_c",
          "private_ways",  "shared_ways",  "alloc_ratio",
          "p_log_service", "p_service_cv", "c_log_service",
          "c_service_cv"};
}

std::vector<std::string> Profiler::dynamic_feature_names() {
  return {"p_norm_queue_delay", "p_boost_frac", "c_norm_queue_delay",
          "c_boost_frac"};
}

Matrix Profiler::render_image(const queueing::TestbedResult& result,
                              std::size_t col_begin, std::size_t cols,
                              const RuntimeCondition& condition) const {
  Matrix image(2 * kCounterCount, cols);
  replay_columns(result, col_begin, cols, condition, &image);
  return image;
}

double Profiler::modeled_cycles_per_access(
    const queueing::TestbedResult& result,
    const RuntimeCondition& condition) const {
  const std::size_t usable =
      result.trace.size() >= 2 ? result.trace.size() - 2 : 0;
  const std::size_t cols =
      std::min(usable, config_.max_windows * config_.image_cols);
  if (cols == 0) return 0.0;
  const std::size_t begin = result.trace.size() - cols;
  return replay_columns(result, begin, cols, condition, nullptr);
}

double Profiler::replay_columns(const queueing::TestbedResult& result,
                                std::size_t col_begin, std::size_t cols,
                                const RuntimeCondition& condition,
                                Matrix* image) const {
  // Replay the dynamic trace through the scaled cache simulator with CAT
  // masks tracking the recorded boost states.
  // Class 2 models the background churn: un-tracked node activity that
  // streams through the shared ways at the condition's churn intensity.
  // Its traffic is what imprints the churn level onto the two services'
  // counters (shared-way evictions, extra LLC misses).
  CacheHierarchy hw(scaled_hw_, 3);
  cat::CatController cat(hw, plan_);
  {
    cachesim::WayMask shared_mask = 0;
    for (std::uint32_t way : plan_.shared_ways(0))
      shared_mask |= cachesim::WayMask{1} << way;
    hw.set_llc_fill_mask(2, shared_mask);
  }
  wl::ReuseProfile churn_profile;
  churn_profile.streaming_fraction = 1.0;
  churn_profile.ifetch_per_access = 0.0;
  wl::SyntheticStream churn_stream(
      churn_profile, wl::kClassAddressStride * 16, condition.seed ^ 0x777ULL);
  const auto churn_refs = static_cast<std::size_t>(
      static_cast<double>(config_.accesses_per_sample) * condition.churn);
  // Apply the condition's query mix to the scaled-down specs so the
  // counter image carries the mix signature (larger hot sets -> more LLC
  // misses per sample).
  wl::WorkloadSpec spec_p =
      scaled_specs_[static_cast<std::size_t>(condition.primary)];
  for (auto& c : spec_p.profile.components) c.ws_bytes *= condition.mix_primary;
  wl::WorkloadSpec spec_c =
      scaled_specs_[static_cast<std::size_t>(condition.collocated)];
  for (auto& c : spec_c.profile.components)
    c.ws_bytes *= condition.mix_collocated;

  auto make_stream = [&](const wl::WorkloadSpec& spec, std::uint16_t cls,
                         std::uint64_t seed)
      -> std::unique_ptr<cachesim::AccessStream> {
    const std::uint64_t base =
        wl::kClassAddressStride * (static_cast<std::uint64_t>(cls) + 1);
    if (spec.stream_kind == wl::StreamKind::kZipf)
      return std::make_unique<wl::ZipfStream>(
          spec.zipf_records, spec.zipf_record_bytes, spec.zipf_alpha,
          spec.profile.store_fraction, base, seed);
    return std::make_unique<wl::SyntheticStream>(spec.profile, base, seed);
  };
  auto stream_p = make_stream(spec_p, 0, condition.seed ^ 0xA5A5A5A5ULL);
  auto stream_c = make_stream(spec_c, 1, condition.seed ^ 0x5A5A5A5AULL);

  CounterSnapshot prev_p = hw.counters(0);
  CounterSnapshot prev_c = hw.counters(1);

  // Warm the caches before the first rendered column so compulsory misses
  // do not masquerade as contention.
  const std::size_t warm = config_.accesses_per_sample;
  for (std::size_t i = 0; i < warm; ++i) {
    hw.access(0, stream_p->next());
    hw.access(1, stream_c->next());
  }
  hw.retire_instructions(0, warm * 4);
  hw.retire_instructions(1, warm * 4);
  prev_p = hw.counters(0);
  prev_c = hw.counters(1);
  // Post-warmup modeled-time baseline for the primary: the cycles-per-
  // access label must cover only the rendered (steady-state) columns.
  const cachesim::CycleBreakdown warm_cycles = hw.cycles(0);

  for (std::size_t col = 0; col < cols; ++col) {
    const auto& sample = result.trace[col_begin + col];
    const auto& tp = sample.per_workload[0];
    const auto& tc = sample.per_workload[1];

    // Track boost state with the pqos-like controller.
    if (tp.boosted != cat.is_boosted(0)) {
      if (tp.boosted)
        cat.boost(0);
      else
        cat.reset_boost(0);
    }
    if (tc.boosted != cat.is_boosted(1)) {
      if (tc.boosted)
        cat.boost(1);
      else
        cat.reset_boost(1);
    }

    // Reference counts proportional to execution activity this interval.
    const auto servers = static_cast<double>(config_.servers);
    const auto refs_p = static_cast<std::size_t>(
        static_cast<double>(config_.accesses_per_sample) *
        std::max(0.05, static_cast<double>(tp.busy) / servers));
    const auto refs_c = static_cast<std::size_t>(
        static_cast<double>(config_.accesses_per_sample) *
        std::max(0.05, static_cast<double>(tc.busy) / servers));

    // Interleave in small chunks so fills contend realistically; the churn
    // class streams alongside at the condition's intensity.
    std::size_t done_p = 0, done_c = 0, done_b = 0;
    constexpr std::size_t kChunk = 64;
    while (done_p < refs_p || done_c < refs_c || done_b < churn_refs) {
      for (std::size_t i = 0; i < kChunk && done_p < refs_p; ++i, ++done_p)
        hw.access(0, stream_p->next());
      for (std::size_t i = 0; i < kChunk && done_c < refs_c; ++i, ++done_c)
        hw.access(1, stream_c->next());
      for (std::size_t i = 0; i < kChunk && done_b < churn_refs;
           ++i, ++done_b)
        hw.access(2, churn_stream.next());
    }
    hw.retire_instructions(0, refs_p * 4);
    hw.retire_instructions(1, refs_c * 4);

    if (image != nullptr) {
      const CounterSnapshot now_p = hw.counters(0);
      const CounterSnapshot now_c = hw.counters(1);
      const CounterSnapshot dp = now_p.delta_since(prev_p);
      const CounterSnapshot dc = now_c.delta_since(prev_c);
      prev_p = now_p;
      prev_c = now_c;

      for (std::size_t i = 0; i < kCounterCount; ++i) {
        (*image)(i, col) = static_cast<double>(dp.values[i]);
        (*image)(kCounterCount + i, col) = static_cast<double>(dc.values[i]);
      }
    }
  }
  const cachesim::CycleBreakdown end_cycles = hw.cycles(0);
  const std::uint64_t accesses = end_cycles.accesses - warm_cycles.accesses;
  if (accesses == 0) return 0.0;
  return static_cast<double>(end_cycles.total() - warm_cycles.total()) /
         static_cast<double>(accesses);
}

std::vector<Profile> Profiler::profile_condition(
    const RuntimeCondition& condition) const {
  STAC_TRACE_SPAN(span, "profile.condition", "profiler");
  span.arg("util_primary", condition.util_primary);
  span.arg("util_collocated", condition.util_collocated);
  span.arg("worker", static_cast<std::uint64_t>(ThreadPool::worker_index()));
  std::vector<std::unique_ptr<wl::WorkloadModel>> owned;
  // Policy run with tracing.
  queueing::TestbedConfig policy_cfg =
      make_testbed_config(condition, condition.timeout_primary,
                          condition.timeout_collocated, owned);
  const PairScales scales =
      pair_scales(condition.primary, condition.collocated);
  policy_cfg.sample_interval =
      scales.scaled_base_primary / std::max(0.1, condition.sampling_rel);
  queueing::Testbed policy_bed(policy_cfg);
  const queueing::TestbedResult policy = policy_bed.run();

  // Default (never boost) run, same seed: the Eq. 3 denominator.
  queueing::TestbedConfig default_cfg =
      make_testbed_config(condition, cat::kNeverBoostTimeout,
                          cat::kNeverBoostTimeout, owned);
  queueing::Testbed default_bed(default_cfg);
  const queueing::TestbedResult dflt = default_bed.run();

  // Always-boost run (primary timeout 0, neighbour unchanged): the
  // potential-EA learning target.
  queueing::TestbedConfig boost_cfg = make_testbed_config(
      condition, 0.0, condition.timeout_collocated, owned);
  queueing::Testbed boost_bed(boost_cfg);
  const queueing::TestbedResult boosted = boost_bed.run();

  // Under heavy fault injection a run can complete zero queries of the
  // primary workload; effective_allocation() contracts on positive mean
  // service times, and a profile built from empty sample sets would feed
  // NaN targets into training.  Skip the condition instead of throwing.
  if (policy.per_workload[0].completed == 0 ||
      dflt.per_workload[0].completed == 0 ||
      boosted.per_workload[0].completed == 0) {
    obs::count("profiler.conditions_skipped_zero_completions");
    obs::instant("profile.zero_completions", "profiler");
    return {};
  }

  const double ratio =
      static_cast<double>(config_.private_ways + config_.shared_ways) /
      static_cast<double>(config_.private_ways);
  double ea = queueing::Testbed::effective_allocation(
      policy.per_workload[0].service_durations.mean(),
      dflt.per_workload[0].service_durations.mean(), ratio);
  double ea_boost = queueing::Testbed::effective_allocation(
      boosted.per_workload[0].service_durations.mean(),
      dflt.per_workload[0].service_durations.mean(), ratio);
  if (config_.ea_mode == EaMode::kModeledTime) {
    // Eq. 3 with modeled memory time per access substituted for service
    // duration: replay the three traces through the timing-accurate scaled
    // hierarchy and compare contended memory time instead of the queueing
    // testbed's service-duration proxy.
    const double cpa_policy = modeled_cycles_per_access(policy, condition);
    const double cpa_default = modeled_cycles_per_access(dflt, condition);
    const double cpa_boost = modeled_cycles_per_access(boosted, condition);
    if (cpa_policy > 0.0 && cpa_default > 0.0 && cpa_boost > 0.0) {
      ea = queueing::Testbed::effective_allocation(cpa_policy, cpa_default,
                                                   ratio);
      ea_boost = queueing::Testbed::effective_allocation(cpa_boost,
                                                         cpa_default, ratio);
    } else {
      // Trace too short to replay — keep the service-duration labels.
      obs::count("profiler.ea_modeled_time_fallback");
    }
  }

  // Split the trace into image windows (discard the earliest columns as
  // testbed warmup).
  const std::size_t cols = config_.image_cols;
  std::vector<Profile> out;
  if (policy.trace.size() < cols + 2) return out;
  const std::size_t usable = policy.trace.size() - 2;
  const std::size_t max_windows =
      std::min(config_.max_windows, usable / cols);
  if (max_windows == 0) return out;
  const std::size_t first =
      policy.trace.size() - max_windows * cols;  // favour steady state

  const std::vector<double> statics = static_features(condition);
  for (std::size_t wnd = 0; wnd < max_windows; ++wnd) {
    const std::size_t begin = first + wnd * cols;
    Profile p;
    p.condition = condition;
    p.image = render_image(policy, begin, cols, condition);
    p.statics = statics;

    // Window dynamics: queue delay via Little's law on the waiting room,
    // normalized by each service's scaled base time; boost fraction.
    double q_p = 0.0, q_c = 0.0, boost_p = 0.0, boost_c = 0.0;
    for (std::size_t col = 0; col < cols; ++col) {
      const auto& s = policy.trace[begin + col];
      q_p += s.per_workload[0].queued;
      q_c += s.per_workload[1].queued;
      boost_p += s.per_workload[0].boosted ? 1.0 : 0.0;
      boost_c += s.per_workload[1].boosted ? 1.0 : 0.0;
    }
    const auto n = static_cast<double>(cols);
    const double lambda_p = condition.util_primary *
                            static_cast<double>(config_.servers) /
                            scales.scaled_base_primary;
    const double lambda_c = condition.util_collocated *
                            static_cast<double>(config_.servers) /
                            scales.scaled_base_collocated;
    p.dynamics = {q_p / n / lambda_p / scales.scaled_base_primary,
                  boost_p / n,
                  q_c / n / lambda_c / scales.scaled_base_collocated,
                  boost_c / n};

    p.ea = ea;
    p.ea_boost = ea_boost;
    // completed > 0 was checked above, so the sample sets are non-empty;
    // percentile_or keeps this resilient if the guard ever moves.
    constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
    p.mean_rt = policy.per_workload[0].response_times.mean();
    p.p95_rt = policy.per_workload[0].response_times.percentile_or(0.95, kNan);
    p.mean_rt_default = dflt.per_workload[0].response_times.mean();
    p.p95_rt_default =
        dflt.per_workload[0].response_times.percentile_or(0.95, kNan);
    p.mean_service = policy.per_workload[0].service_durations.mean();
    p.scaled_base_primary = scales.scaled_base_primary;
    p.allocation_ratio = ratio;
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<Profile> Profiler::profile_conditions(
    const std::vector<RuntimeCondition>& conditions) const {
  STAC_TRACE_SPAN(span, "profile.conditions", "profiler");
  span.arg("conditions", static_cast<std::uint64_t>(conditions.size()));
  std::vector<std::vector<Profile>> buckets(conditions.size());
  ThreadPool::global().parallel_for(0, conditions.size(), [&](std::size_t i) {
    buckets[i] = profile_condition(conditions[i]);
  });
  std::vector<Profile> out;
  for (auto& b : buckets)
    for (auto& p : b) out.push_back(std::move(p));
  span.arg("profiles", static_cast<std::uint64_t>(out.size()));
  obs::count("profiler.profiles", out.size());
  return out;
}

ml::ProfileSample Profiler::to_sample(const Profile& profile,
                                      bool shuffle_rows,
                                      std::uint64_t shuffle_seed) {
  ml::ProfileSample s;
  s.tabular = profile.statics;
  s.tabular.insert(s.tabular.end(), profile.dynamics.begin(),
                   profile.dynamics.end());
  if (!shuffle_rows) {
    s.image = profile.image;
    return s;
  }
  // Fig. 7c ablation: destroy the grouped counter ordering.  The same seed
  // must be used for every sample so train and test agree on the layout.
  std::vector<std::size_t> rows(profile.image.rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  Rng rng(shuffle_seed);
  rng.shuffle(rows);
  Matrix shuffled(profile.image.rows(), profile.image.cols());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto src = profile.image.row(rows[r]);
    std::copy(src.begin(), src.end(), shuffled.row(r).begin());
  }
  s.image = std::move(shuffled);
  return s;
}

}  // namespace stac::profiler

// Experiment-condition sampling strategies (§4).
//
// Uniform random sampling over-samples uninteresting corners of the
// condition space; the paper's stratified strategy instead (1) profiles a
// set of random seed conditions, (2) clusters them by measured effective
// allocation, and (3) spends the remaining budget on perturbed copies of
// cluster members, weighted toward the clusters with the most EA spread —
// cutting profiling time ~67% for equal coverage.
#pragma once

#include <vector>

#include "ml/kmeans.hpp"
#include "profiler/profiler.hpp"

namespace stac::profiler {

struct SamplerConfig {
  ConditionRanges ranges;
  std::size_t clusters = 4;
  /// Fraction of the budget spent on random seed conditions.
  double seed_fraction = 0.4;
  std::uint64_t seed = 1;
};

class StratifiedSampler {
 public:
  StratifiedSampler(const Profiler& profiler, SamplerConfig config = {});

  /// Run the full strategy for one pairing with `budget` conditions
  /// (seeds + refinements); returns all collected profiles.
  [[nodiscard]] std::vector<Profile> collect(wl::Benchmark primary,
                                             wl::Benchmark collocated,
                                             std::size_t budget);

  /// Plain uniform sampling with the same budget (the §4 comparison).
  [[nodiscard]] std::vector<Profile> collect_uniform(wl::Benchmark primary,
                                                     wl::Benchmark collocated,
                                                     std::size_t budget);

 private:
  const Profiler& profiler_;
  SamplerConfig config_;
};

}  // namespace stac::profiler

// Runtime conditions: the experiment coordinates of Table 2.
//
// A condition fixes the collocated pairing, each service's query
// inter-arrival rate (relative to its service time, 25–95%), each service's
// short-term allocation timeout (relative to its service time, 0% = always
// share to 600% = never), and the counter sampling rate.  The profiler runs
// conditions on the testbed; the model predicts response time for unseen
// conditions.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "wl/benchmark_suite.hpp"

namespace stac::profiler {

struct RuntimeCondition {
  wl::Benchmark primary = wl::Benchmark::kKmeans;
  wl::Benchmark collocated = wl::Benchmark::kRedis;
  /// Offered load as a fraction of capacity (Table 2: 0.25 – 0.95).
  double util_primary = 0.5;
  double util_collocated = 0.5;
  /// STAP timeout relative to service time (Table 2: 0.0 – 6.0).
  double timeout_primary = 1.0;
  double timeout_collocated = 1.0;
  /// Counter samples per (scaled) primary service time (Table 2's 1 Hz to
  /// one-per-5-seconds maps to this relative rate).
  double sampling_rel = 2.0;
  /// Query-mix factor (Table 2 controls "query mix"): scales the service's
  /// hot working sets.  NOT part of the static feature vector — the
  /// operator does not know it; models must read it from the counters.
  double mix_primary = 1.0;
  double mix_collocated = 1.0;
  /// Background LLC pressure from everything else on the node (other
  /// tenants, OS, prefetchers) during this collocation session, in shared-
  /// region capacities per time unit.  A *dynamic* runtime condition: not
  /// operator-controlled, not in the statics — its signature is only in
  /// the counters ("hidden but recurrent patterns of contention", §1).
  double churn = 0.25;
  std::uint64_t seed = 1;

  [[nodiscard]] std::string to_string() const;
  /// Same condition with primary and collocated roles swapped.
  [[nodiscard]] RuntimeCondition swapped() const;
};

/// Table 2 bounds.
struct ConditionRanges {
  double util_lo = 0.25, util_hi = 0.95;
  double timeout_lo = 0.0, timeout_hi = 6.0;
  double mix_lo = 0.7, mix_hi = 1.4;
  double churn_lo = 0.1, churn_hi = 0.6;
};

/// Uniform random condition for a fixed pairing.
[[nodiscard]] RuntimeCondition random_condition(wl::Benchmark primary,
                                                wl::Benchmark collocated,
                                                const ConditionRanges& ranges,
                                                Rng& rng);

/// Gaussian-perturbed copy (stratified-sampling refinement around a
/// cluster centroid, §4), clamped to the ranges.
[[nodiscard]] RuntimeCondition perturb_condition(const RuntimeCondition& base,
                                                 const ConditionRanges& ranges,
                                                 Rng& rng);

}  // namespace stac::profiler

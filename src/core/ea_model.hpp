// Stage 2: the effective-cache-allocation model (§3.2).
//
// Maps a profile sample (counter image + static/dynamic condition features)
// to effective allocation.  The backend is pluggable because the paper's
// evaluation compares exactly these variants:
//   kDeepForest   — MGS + cascade (the full approach)
//   kCascadeOnly  — cascade concepts without representational features
//                   (Fig. 6's "queueing simulator with concepts")
//   kSimpleForest — plain random forest (Fig. 8e's simple-ML policy)
//   kTree / kLinear — the simple comparators of Fig. 6 when wired to EA
#pragma once

#include <memory>
#include <vector>

#include "ml/deep_forest.hpp"
#include "ml/linear_regression.hpp"
#include "ml/random_forest.hpp"
#include "profiler/profiler.hpp"

namespace stac::core {

enum class EaBackend : std::uint8_t {
  kDeepForest,
  kCascadeOnly,
  kSimpleForest,
  kTree,
  kLinear,
};

struct EaModelConfig {
  EaBackend backend = EaBackend::kDeepForest;
  ml::DeepForestConfig deep_forest;
  ml::ForestConfig forest;
  ml::TreeConfig tree{.split_mode = ml::SplitMode::kAllFeatures,
                      .max_depth = 12,
                      .min_samples_leaf = 2};
  /// Fig. 7c ablation: destroy counter-row spatial ordering.
  bool shuffle_counter_rows = false;
  std::uint64_t shuffle_seed = 99;
};

class EaModel {
 public:
  explicit EaModel(EaModelConfig config = {});

  /// Deep copies (the backends are value types behind the unique_ptrs) —
  /// the RefitExecutor keeps a mutable master model and copies it into
  /// each immutable ServingModel bundle it publishes.
  EaModel(const EaModel& other);
  EaModel& operator=(const EaModel& other);
  EaModel(EaModel&&) noexcept = default;
  EaModel& operator=(EaModel&&) noexcept = default;

  void fit(const std::vector<profiler::Profile>& profiles);

  /// Warm-start refit: `profiles` must extend the set the model was fitted
  /// on (ProfileLibrary order is append-only, so a grown library snapshot
  /// qualifies).  Forest-backed backends retrain only a round-robin tree
  /// subset (see RandomForest/CascadeForest::refit_incremental); the cheap
  /// tree/linear backends simply refit in full.  Falls back to fit() when
  /// the model is untrained.  Shares fit()'s "model.fit" fault point — a
  /// refit job can die exactly like a training job.
  void refit_incremental(const std::vector<profiler::Profile>& profiles,
                         double retrain_fraction = 0.125);

  /// Predicted EA, clamped into (0, 1].
  [[nodiscard]] double predict(const ml::ProfileSample& sample) const;

  /// Learned concept vector (deep-forest backends only) for the §5.2
  /// insight clustering.
  [[nodiscard]] std::vector<double> concepts(
      const ml::ProfileSample& sample) const;

  /// Build the inference sample for a profile under this model's settings
  /// (handles tabular-only backends and the row-shuffle ablation).
  [[nodiscard]] ml::ProfileSample make_sample(
      const profiler::Profile& profile) const;

  [[nodiscard]] bool trained() const { return trained_; }
  [[nodiscard]] EaBackend backend() const { return config_.backend; }

 private:
  EaModelConfig config_;
  bool trained_ = false;
  std::unique_ptr<ml::DeepForest> deep_;
  std::unique_ptr<ml::RandomForest> forest_;
  std::unique_ptr<ml::DecisionTree> tree_;
  std::unique_ptr<ml::LinearRegression> linear_;
};

}  // namespace stac::core

#include "core/baselines.hpp"

#include <limits>

#include "common/check.hpp"

namespace stac::core {

using profiler::Profiler;
using profiler::RuntimeCondition;
using queueing::Testbed;
using queueing::TestbedConfig;
using queueing::TestbedResult;

TestbedResult evaluate_policy(const Profiler& profiler,
                              const RuntimeCondition& condition,
                              double timeout_primary,
                              double timeout_collocated,
                              std::size_t completions) {
  std::vector<std::unique_ptr<wl::WorkloadModel>> owned;
  TestbedConfig cfg = profiler.make_testbed_config(
      condition, timeout_primary, timeout_collocated, owned);
  cfg.target_completions = completions;
  Testbed bed(cfg);
  return bed.run();
}

double combined_norm_p95(const Profiler& profiler,
                         const RuntimeCondition& condition,
                         const TestbedResult& result) {
  const auto scales =
      profiler.pair_scales(condition.primary, condition.collocated);
  const double p = result.p95_rt(0) / scales.scaled_base_primary;
  const double c = result.p95_rt(1) / scales.scaled_base_collocated;
  return 0.5 * (p + c);
}

PolicySelection select_no_sharing() {
  return {"no-sharing", cat::kNeverBoostTimeout, cat::kNeverBoostTimeout};
}

PolicySelection select_static(const Profiler& profiler,
                              const RuntimeCondition& condition,
                              std::size_t completions) {
  const double kAlways = 0.0;
  const double kNever = cat::kNeverBoostTimeout;
  PolicySelection best{"static", kNever, kNever};
  double best_score = std::numeric_limits<double>::infinity();
  for (double tp : {kAlways, kNever}) {
    for (double tc : {kAlways, kNever}) {
      const TestbedResult r =
          evaluate_policy(profiler, condition, tp, tc, completions);
      const double score = combined_norm_p95(profiler, condition, r);
      if (score < best_score) {
        best_score = score;
        best.timeout_primary = tp;
        best.timeout_collocated = tc;
      }
    }
  }
  return best;
}

PolicySelection select_dcat(const Profiler& profiler,
                            const RuntimeCondition& condition) {
  const auto& cfg = profiler.config();
  const double boosted =
      static_cast<double>(cfg.private_ways + cfg.shared_ways);
  const double sp = profiler.model(condition.primary).speedup(boosted);
  const double sc = profiler.model(condition.collocated).speedup(boosted);
  PolicySelection sel;
  sel.name = "dCat";
  if (sp >= sc) {
    sel.timeout_primary = 0.0;  // winner holds the shared ways
    sel.timeout_collocated = cat::kNeverBoostTimeout;
  } else {
    sel.timeout_primary = cat::kNeverBoostTimeout;
    sel.timeout_collocated = 0.0;
  }
  return sel;
}

PolicySelection select_dynasprint(const Profiler& profiler,
                                  const RuntimeCondition& condition,
                                  const std::vector<double>& grid,
                                  double tuning_utilization,
                                  std::size_t completions) {
  STAC_REQUIRE(!grid.empty());
  RuntimeCondition low = condition;
  low.util_primary = tuning_utilization;
  low.util_collocated = tuning_utilization;

  PolicySelection best{"dynaSprint", grid.front(), grid.front()};
  double best_score = std::numeric_limits<double>::infinity();
  for (double tp : grid) {
    for (double tc : grid) {
      const TestbedResult r =
          evaluate_policy(profiler, low, tp, tc, completions);
      const double score = combined_norm_p95(profiler, low, r);
      if (score < best_score) {
        best_score = score;
        best.timeout_primary = tp;
        best.timeout_collocated = tc;
      }
    }
  }
  return best;  // reused verbatim at the condition's real utilization
}

}  // namespace stac::core

#include "core/rt_predictor.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace stac::core {

using profiler::Profile;
using profiler::RuntimeCondition;
using queueing::GGkConfig;
using queueing::GGkResult;

const char* degradation_rung_name(DegradationRung rung) {
  switch (rung) {
    case DegradationRung::kPrimaryModel: return "primary-model";
    case DegradationRung::kLinearFallback: return "linear-fallback";
    case DegradationRung::kNearestNeighbor: return "nearest-neighbor";
    case DegradationRung::kConservative: return "conservative-static";
  }
  return "?";
}

RtPredictor::RtPredictor(const profiler::Profiler& profiler,
                         const EaModel* model, const ProfileLibrary* library,
                         RtPredictorConfig config)
    : profiler_(profiler), model_(model), library_(library),
      config_(config), sim_cache_(config.memoize, config.memoize_capacity) {
  if (!config_.analytic_ea) {
    const bool has_model = model_ != nullptr && model_->trained();
    const bool has_library = library_ != nullptr && !library_->empty();
    STAC_REQUIRE_MSG(has_model || has_library,
                     "RtPredictor needs at least one EA source (trained "
                     "model or non-empty profile library)");
  }
}

double RtPredictor::conservative_ea() const {
  // EA such that EA x allocation_ratio == 1: boosted execution proceeds at
  // the default rate.  Equivalent to a static allocation — the safe answer
  // when every predictive input is unavailable or suspect.
  const auto& cfg = profiler_.config();
  const double ratio =
      static_cast<double>(cfg.private_ways + cfg.shared_ways) /
      static_cast<double>(cfg.private_ways);
  return 1.0 / ratio;
}

double RtPredictor::neighbor_ea(const RuntimeCondition& condition) const {
  const auto nearest = library_->nearest_k(
      condition, std::max<std::size_t>(1, config_.ea_neighbors));
  STAC_REQUIRE(!nearest.empty());
  double sum = 0.0;
  for (const Profile* near : nearest) sum += near->ea_boost;
  return sum / static_cast<double>(nearest.size());
}

RtPredictor::EaQuery RtPredictor::ea_for(
    const RuntimeCondition& condition, const std::vector<double>& dynamics,
    std::size_t neighbor_cap) const {
  const std::size_t neighbors = std::max<std::size_t>(
      1, std::min(neighbor_cap, config_.ea_neighbors));
  const auto& cfg = profiler_.config();
  const double boosted_ways =
      static_cast<double>(cfg.private_ways + cfg.shared_ways);
  const double ratio =
      boosted_ways / static_cast<double>(cfg.private_ways);
  if (config_.analytic_ea) {
    // Contention-blind: solo MRC speedup over the allocation increase.
    return {profiler_.model(condition.primary).speedup(boosted_ways) / ratio,
            DegradationRung::kPrimaryModel};
  }
  // The learned target EA0 is measured at the always-boost counterpart and
  // therefore independent of the primary's own timeout; canonicalizing the
  // query's timeout removes spurious jitter between policy-grid rows (the
  // nearest-profile lookup and the timeout static would otherwise both
  // wiggle the prediction for what is one underlying quantity).
  RuntimeCondition canonical = condition;
  canonical.timeout_primary = 0.0;

  // Degradation ladder: learned model → linear fallback → library
  // neighbours → conservative static.  A rung that throws anything but a
  // ContractViolation (stale model, injected "model.predict" fault) is
  // treated as unavailable and the query drops to the next rung.
  for (const auto& [ea_model, rung] :
       {std::pair{model_, DegradationRung::kPrimaryModel},
        std::pair{fallback_, DegradationRung::kLinearFallback}}) {
    if (ea_model == nullptr || !ea_model->trained()) continue;
    try {
      // Borrow neighbours' images; use the queried condition's statics and
      // the feedback-loop dynamics.  Averaging over several library
      // neighbours smooths the image-borrowing jitter between grid cells.
      const auto nearest = library_->nearest_k(canonical, neighbors);
      STAC_REQUIRE(!nearest.empty());
      double sum = 0.0;
      for (const Profile* near : nearest) {
        Profile query = *near;
        query.condition = canonical;
        query.statics = profiler_.static_features(canonical);
        query.dynamics = dynamics;
        sum += ea_model->predict(ea_model->make_sample(query));
      }
      return {sum / static_cast<double>(nearest.size()), rung};
    } catch (const ContractViolation&) {
      throw;  // programming bug, not an environment failure
    } catch (const std::exception&) {
      // fall through to the next rung
    }
  }
  if (library_ != nullptr && !library_->empty())
    return {neighbor_ea(canonical), DegradationRung::kNearestNeighbor};
  return {conservative_ea(), DegradationRung::kConservative};
}

RtPrediction RtPredictor::predict_for_profile(
    const profiler::Profile& profile) const {
  const RuntimeCondition& condition = profile.condition;
  const auto& cfg = profiler_.config();
  const auto scales =
      profiler_.pair_scales(condition.primary, condition.collocated);
  const double ratio =
      static_cast<double>(cfg.private_ways + cfg.shared_ways) /
      static_cast<double>(cfg.private_ways);
  const wl::WorkloadModel& wm = profiler_.model(condition.primary);
  const double cv =
      wm.spec().use_microservice_graph ? 0.55 : wm.spec().service_cv;

  RtPrediction out;
  if (config_.analytic_ea) {
    // Contention- and mix-blind solo speedup (the queue-model comparator).
    const double boosted_ways =
        static_cast<double>(cfg.private_ways + cfg.shared_ways);
    out.ea = wm.speedup(boosted_ways) / ratio;
  } else {
    // The model's target is the potential (always-boost) EA, predicted
    // on-distribution from the condition's own counters and dynamics —
    // with the same degradation ladder as exploration mode.
    out.ea = 0.0;
    out.rung = DegradationRung::kConservative;
    for (const auto& [ea_model, rung] :
         {std::pair{model_, DegradationRung::kPrimaryModel},
          std::pair{fallback_, DegradationRung::kLinearFallback}}) {
      if (ea_model == nullptr || !ea_model->trained()) continue;
      try {
        out.ea = ea_model->predict(ea_model->make_sample(profile));
        out.rung = rung;
        break;
      } catch (const ContractViolation&) {
        throw;
      } catch (const std::exception&) {
      }
    }
    if (out.rung == DegradationRung::kConservative) {
      if (library_ != nullptr && !library_->empty()) {
        out.ea = neighbor_ea(condition);
        out.rung = DegradationRung::kNearestNeighbor;
      } else {
        out.ea = conservative_ea();
      }
    }
  }

  GGkConfig g;
  g.utilization = condition.util_primary;
  g.servers = cfg.servers;
  g.mean_service = scales.scaled_base_primary;
  g.service_cv = cv;
  g.timeout_rel = condition.timeout_primary;
  g.effective_allocation = out.ea;
  g.allocation_ratio = ratio;
  // Measured boost prevalence is a dynamic condition input here.
  g.boost_prevalence = profile.dynamics.size() > 1 ? profile.dynamics[1] : 0.0;
  g.queries = config_.sim_queries;
  g.warmup = config_.sim_warmup;
  g.seed = config_.seed;
  const auto r_ptr = sim_cache_.simulate(g);
  const GGkResult& r = *r_ptr;
  // A fault-degraded simulation can complete zero queries; NaN marks the
  // prediction as "no data" instead of throwing out of the predictor.
  out.mean_rt = r.response_times.mean();
  out.p95_rt = r.response_times.percentile_or(
      0.95, std::numeric_limits<double>::quiet_NaN());
  out.mean_queue_delay = r.mean_queue_delay;
  out.boosted_fraction =
      r.completed > 0 ? static_cast<double>(r.boosted_queries) /
                            static_cast<double>(r.completed)
                      : 0.0;
  out.norm_mean_rt = out.mean_rt / scales.scaled_base_primary;
  out.norm_p95_rt = out.p95_rt / scales.scaled_base_primary;
  return out;
}

std::vector<RtPrediction> RtPredictor::predict_batch(
    const std::vector<RuntimeCondition>& conditions) const {
  const std::size_t n = conditions.size();
  std::vector<RtPrediction> out(n);
  if (n == 0) return out;
  const auto& cfg = profiler_.config();
  const double ratio =
      static_cast<double>(cfg.private_ways + cfg.shared_ways) /
      static_cast<double>(cfg.private_ways);

  // Per-condition loop state, mirroring predict() exactly: the lockstep
  // batching only changes WHEN simulations run, never their configs, and
  // simulate_ggk is a pure function of its config — so every per-condition
  // value sequence is identical to the serial path's.
  struct LoopState {
    profiler::Profiler::PairScales scales;
    double cv_p = 0.0, cv_c = 0.0;
    std::vector<double> dynamics{0.0, 0.0, 0.0, 0.0};
    double prevalence_p = 0.0, prevalence_c = 0.0;
  };
  std::vector<LoopState> state(n);
  for (std::size_t i = 0; i < n; ++i) {
    const RuntimeCondition& condition = conditions[i];
    LoopState& s = state[i];
    s.scales =
        profiler_.pair_scales(condition.primary, condition.collocated);
    const wl::WorkloadModel& wm = profiler_.model(condition.primary);
    const wl::WorkloadModel& wc = profiler_.model(condition.collocated);
    s.cv_p = wm.spec().use_microservice_graph ? 0.55 : wm.spec().service_cv;
    s.cv_c = wc.spec().use_microservice_graph ? 0.55 : wc.spec().service_cv;
    if (library_ && !library_->empty())
      if (const Profile* near = library_->nearest(condition))
        s.dynamics = near->dynamics;
  }

  std::vector<GGkConfig> wave;
  for (std::size_t iter = 0; iter < config_.feedback_iterations; ++iter) {
    wave.clear();
    wave.reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      const RuntimeCondition& condition = conditions[i];
      LoopState& s = state[i];
      const EaQuery eq = ea_for(condition, s.dynamics);
      out[i].ea = eq.ea;
      out[i].rung = std::max(out[i].rung, eq.rung);

      GGkConfig gp;
      gp.utilization = condition.util_primary;
      gp.servers = cfg.servers;
      gp.mean_service = s.scales.scaled_base_primary;
      gp.service_cv = s.cv_p;
      gp.timeout_rel = condition.timeout_primary;
      gp.effective_allocation = out[i].ea;
      gp.allocation_ratio = ratio;
      gp.boost_prevalence = s.prevalence_p;
      gp.queries = config_.sim_queries;
      gp.warmup = config_.sim_warmup;
      gp.seed = config_.seed + iter;

      const RuntimeCondition swapped = condition.swapped();
      GGkConfig gc = gp;
      gc.utilization = swapped.util_primary;
      gc.mean_service = s.scales.scaled_base_collocated;
      gc.service_cv = s.cv_c;
      gc.timeout_rel = swapped.timeout_primary;
      {
        const EaQuery eqc =
            config_.analytic_ea
                ? ea_for(swapped, s.dynamics)
                : ea_for(swapped, {s.dynamics[2], s.dynamics[3],
                                   s.dynamics[0], s.dynamics[1]});
        gc.effective_allocation = eqc.ea;
        out[i].rung = std::max(out[i].rung, eqc.rung);
      }
      gc.boost_prevalence = s.prevalence_c;
      gc.seed = config_.seed + 1000 + iter;
      wave.push_back(gp);
      wave.push_back(gc);
    }

    const auto results = sim_cache_.simulate_batch(wave);
    for (std::size_t i = 0; i < n; ++i) {
      LoopState& s = state[i];
      const GGkResult& rp = *results[2 * i];
      const GGkResult& rc = *results[2 * i + 1];
      out[i].mean_rt = rp.response_times.mean();
      out[i].p95_rt = rp.response_times.percentile_or(
          0.95, std::numeric_limits<double>::quiet_NaN());
      out[i].mean_queue_delay = rp.mean_queue_delay;
      out[i].boosted_fraction =
          rp.completed > 0 ? static_cast<double>(rp.boosted_queries) /
                                 static_cast<double>(rp.completed)
                           : 0.0;
      const double boost_c =
          rc.completed > 0 ? static_cast<double>(rc.boosted_queries) /
                                 static_cast<double>(rc.completed)
                           : 0.0;
      s.dynamics = {rp.mean_queue_delay / s.scales.scaled_base_primary,
                    out[i].boosted_fraction,
                    rc.mean_queue_delay / s.scales.scaled_base_collocated,
                    boost_c};
      s.prevalence_p = out[i].boosted_fraction;
      s.prevalence_c = boost_c;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i].norm_mean_rt = out[i].mean_rt / state[i].scales.scaled_base_primary;
    out[i].norm_p95_rt = out[i].p95_rt / state[i].scales.scaled_base_primary;
  }
  return out;
}

DegradationRung RtPredictor::probe_rung(
    const RuntimeCondition& condition) const {
  // Same starting dynamics as predict(): nearest profiled condition, or
  // rest.  One ea_for walks the whole ladder — a faulting rung drops
  // through exactly as a full prediction's first query would.
  std::vector<double> dynamics{0.0, 0.0, 0.0, 0.0};
  if (library_ && !library_->empty()) {
    if (const Profile* near = library_->nearest(condition))
      dynamics = near->dynamics;
  }
  return ea_for(condition, dynamics, /*neighbor_cap=*/1).rung;
}

RtPrediction RtPredictor::predict(const RuntimeCondition& condition) const {
  const auto& cfg = profiler_.config();
  const auto scales =
      profiler_.pair_scales(condition.primary, condition.collocated);
  const double ratio =
      static_cast<double>(cfg.private_ways + cfg.shared_ways) /
      static_cast<double>(cfg.private_ways);

  const wl::WorkloadModel& wm = profiler_.model(condition.primary);
  const wl::WorkloadModel& wc = profiler_.model(condition.collocated);
  const double cv_p =
      wm.spec().use_microservice_graph ? 0.55 : wm.spec().service_cv;
  const double cv_c =
      wc.spec().use_microservice_graph ? 0.55 : wc.spec().service_cv;

  // Dynamic features start from the nearest profiled condition (or rest).
  std::vector<double> dynamics{0.0, 0.0, 0.0, 0.0};
  if (library_ && !library_->empty()) {
    if (const Profile* near = library_->nearest(condition))
      dynamics = near->dynamics;
  }

  RtPrediction out;
  double prevalence_p = 0.0, prevalence_c = 0.0;
  for (std::size_t iter = 0; iter < config_.feedback_iterations; ++iter) {
    const EaQuery eq = ea_for(condition, dynamics);
    out.ea = eq.ea;
    out.rung = std::max(out.rung, eq.rung);

    GGkConfig gp;
    gp.utilization = condition.util_primary;
    gp.servers = cfg.servers;
    gp.mean_service = scales.scaled_base_primary;
    gp.service_cv = cv_p;
    gp.timeout_rel = condition.timeout_primary;
    gp.effective_allocation = out.ea;
    gp.allocation_ratio = ratio;
    gp.boost_prevalence = prevalence_p;
    gp.queries = config_.sim_queries;
    gp.warmup = config_.sim_warmup;
    gp.seed = config_.seed + iter;
    const auto rp_ptr = sim_cache_.simulate(gp);
    const GGkResult& rp = *rp_ptr;

    // Collocated side, for its feedback features only.
    const RuntimeCondition swapped = condition.swapped();
    GGkConfig gc = gp;
    gc.utilization = swapped.util_primary;
    gc.mean_service = scales.scaled_base_collocated;
    gc.service_cv = cv_c;
    gc.timeout_rel = swapped.timeout_primary;
    {
      const EaQuery eqc =
          config_.analytic_ea
              ? ea_for(swapped, dynamics)
              : ea_for(swapped, {dynamics[2], dynamics[3], dynamics[0],
                                 dynamics[1]});
      gc.effective_allocation = eqc.ea;
      out.rung = std::max(out.rung, eqc.rung);
    }
    gc.boost_prevalence = prevalence_c;
    gc.seed = config_.seed + 1000 + iter;
    const auto rc_ptr = sim_cache_.simulate(gc);
    const GGkResult& rc = *rc_ptr;

    out.mean_rt = rp.response_times.mean();
    out.p95_rt = rp.response_times.percentile_or(
        0.95, std::numeric_limits<double>::quiet_NaN());
    out.mean_queue_delay = rp.mean_queue_delay;
    out.boosted_fraction =
        rp.completed > 0 ? static_cast<double>(rp.boosted_queries) /
                               static_cast<double>(rp.completed)
                         : 0.0;
    const double boost_c =
        rc.completed > 0 ? static_cast<double>(rc.boosted_queries) /
                               static_cast<double>(rc.completed)
                         : 0.0;
    dynamics = {rp.mean_queue_delay / scales.scaled_base_primary,
                out.boosted_fraction,
                rc.mean_queue_delay / scales.scaled_base_collocated,
                boost_c};
    prevalence_p = out.boosted_fraction;
    prevalence_c = boost_c;
  }
  out.norm_mean_rt = out.mean_rt / scales.scaled_base_primary;
  out.norm_p95_rt = out.p95_rt / scales.scaled_base_primary;
  return out;
}

}  // namespace stac::core

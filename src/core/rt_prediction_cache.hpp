// Memoization of Stage-3 simulations (DESIGN.md §10).
//
// The §5 feedback loop and the policy explorer call simulate_ggk with
// configs that repeat heavily: rt_predictor derives every seed from
// `config.seed + iter`, independent of the grid cell, so a 5x5 timeout
// sweep re-simulates the same (EA, load, timeout, seed) tuples many times —
// with analytic EA the collocated-side configs are literally identical
// across whole grid rows.  Since simulate_ggk is a pure function of its
// config (absent an armed FaultInjector), identical configs can share one
// result.
//
// The key is the *bit pattern* of every GGkConfig field — doubles are
// compared via std::bit_cast, never `==` — so a hit is guaranteed to return
// exactly what a fresh simulation would have produced (the engines are
// deterministic and bit-identical; tests/core/rt_predictor_test.cpp and
// tests/queueing/ggk_fast_test.cpp hold that line).  Chaos runs bypass the
// cache entirely: with a FaultPlan armed, simulate_ggk is no longer pure.
//
// Hit/miss counters are exported through obs::MetricsRegistry as
// "rt_cache.hits" / "rt_cache.misses" (always-live, like the fault-path
// counters) so benchmarks and the CI smoke can assert on reuse rates.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "queueing/ggk_simulator.hpp"

namespace stac::core {

class RtPredictionCache {
 public:
  /// `enabled = false` turns every lookup into a plain simulate_ggk call
  /// (no storage, no counters) — the RtPredictorConfig::memoize=false path.
  /// `capacity` bounds the entry count: a long-running controller that
  /// re-plans every epoch over drifting conditions keys a fresh config per
  /// epoch, so an unbounded map would grow for the process lifetime.  At
  /// capacity the whole map is flushed (epoch eviction, like the CRN
  /// stream cache) — O(1) amortized, no LRU bookkeeping on the hit path —
  /// and the current entry count is exported as the "rt_cache.size" obs
  /// gauge so soak runs can assert boundedness.  Zero means capacity 1.
  explicit RtPredictionCache(bool enabled = true, std::size_t capacity = 4096)
      : enabled_(enabled), capacity_(capacity == 0 ? 1 : capacity) {}

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Return the cached result for a bit-identical config, or simulate and
  /// remember.  Thread-safe; the simulation itself runs outside the lock so
  /// parallel sweep cells never serialize on a miss (two workers racing on
  /// the same key both simulate — the results are identical by
  /// construction, so either insert is correct).
  [[nodiscard]] std::shared_ptr<const queueing::GGkResult> simulate(
      const queueing::GGkConfig& config);

  /// Batch lookup: results[i] is bit-identical to simulate(configs[i]).
  /// All misses run through ONE simulate_ggk_batch call (shared CRN
  /// streams, one recycled arena — DESIGN.md §13), with within-batch
  /// duplicate keys simulated once.  Accounting: map hits and within-batch
  /// duplicates count as hits (no simulation ran for them), distinct
  /// simulated keys as misses.  Chaos/disabled runs bypass storage but
  /// still batch — simulate_ggk_batch replays faults per (seed, ordinal),
  /// so even chaos batches match the per-cell entry point bit for bit.
  [[nodiscard]] std::vector<std::shared_ptr<const queueing::GGkResult>>
  simulate_batch(const std::vector<queueing::GGkConfig>& configs);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    [[nodiscard]] double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };
  [[nodiscard]] Stats stats() const;

  void clear();
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] std::size_t size() const;

 private:
  /// Every GGkConfig field, bit-exact: 8 doubles, 3 sizes, the seed, and
  /// the two bools packed into the last word.
  using Key = std::array<std::uint64_t, 13>;
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };
  static Key make_key(const queueing::GGkConfig& config);

  bool enabled_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<Key, std::shared_ptr<const queueing::GGkResult>, KeyHash>
      map_;
  Stats stats_;
};

}  // namespace stac::core

// The profile library: every training profile the offline stage collected.
//
// At inference time the model needs a counter image for a condition it has
// never run.  Counter images are workload fingerprints, so the predictor
// borrows the image of the *nearest profiled condition* with the same
// pairing (distance in normalized (utilization, timeout) space) — training
// data only, never the condition under test.
#pragma once

#include <string>
#include <vector>

#include "profiler/profiler.hpp"

namespace stac::core {

class ProfileLibrary {
 public:
  ProfileLibrary() = default;

  void add(profiler::Profile profile);
  void add_all(std::vector<profiler::Profile> profiles);

  /// Outcome of merge_from(): profiles copied in vs. skipped as duplicates.
  struct MergeStats {
    std::size_t added = 0;
    std::size_t duplicates = 0;
  };

  /// Cross-node library merge: copy every profile from `other` whose exact
  /// condition (all fields, bitwise) this library does not already hold.
  /// One shard's calibration thereby warms the whole fleet — merged
  /// libraries feed background refits, never the live planning path
  /// directly.  Deterministic: iterates `other` in order, so two nodes
  /// merging the same sequence of libraries converge to the same contents.
  MergeStats merge_from(const ProfileLibrary& other);

  /// Bitwise condition equality (every field, timeouts included) — the
  /// duplicate test merge_from() uses.
  [[nodiscard]] static bool same_condition(
      const profiler::RuntimeCondition& a,
      const profiler::RuntimeCondition& b);

  /// Outcome of load_file(): what made it in, what was quarantined.
  struct FileLoadStats {
    std::size_t profiles_loaded = 0;
    std::size_t records_quarantined = 0;
    bool file_quarantined = false;
  };

  /// Best-effort load of a profile file into the library.  Corrupt or
  /// truncated records (and unreadable files) are quarantined — skipped,
  /// with the reason appended to quarantine_log() — never fatal.  The
  /// library keeps serving whatever loaded cleanly.
  FileLoadStats load_file(const std::string& path);

  /// Human-readable record of everything quarantined so far ("<path>:
  /// record N: reason").
  [[nodiscard]] const std::vector<std::string>& quarantine_log() const {
    return quarantine_log_;
  }

  [[nodiscard]] std::size_t size() const { return profiles_.size(); }
  [[nodiscard]] bool empty() const { return profiles_.empty(); }
  [[nodiscard]] const std::vector<profiler::Profile>& profiles() const {
    return profiles_;
  }

  /// Nearest stored profile for the condition: exact pairing match
  /// preferred; among matches, smallest condition distance.  Returns
  /// nullptr when the library is empty.
  [[nodiscard]] const profiler::Profile* nearest(
      const profiler::RuntimeCondition& condition) const;

  /// The k nearest stored profiles (same ordering rules as nearest()).
  /// Exploration-mode EA queries average over these to smooth out the
  /// borrowed-image jitter between adjacent grid cells.
  [[nodiscard]] std::vector<const profiler::Profile*> nearest_k(
      const profiler::RuntimeCondition& condition, std::size_t k) const;

  /// Condition distance used by nearest(): utilizations weighted equally,
  /// timeouts scaled to the Table 2 range.
  [[nodiscard]] static double condition_distance(
      const profiler::RuntimeCondition& a,
      const profiler::RuntimeCondition& b);

 private:
  std::vector<profiler::Profile> profiles_;
  std::vector<std::string> quarantine_log_;
};

}  // namespace stac::core

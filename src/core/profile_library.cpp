#include "core/profile_library.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "profiler/profile_io.hpp"

namespace stac::core {

using profiler::Profile;
using profiler::RuntimeCondition;

void ProfileLibrary::add(Profile profile) {
  profiles_.push_back(std::move(profile));
}

void ProfileLibrary::add_all(std::vector<Profile> profiles) {
  for (auto& p : profiles) profiles_.push_back(std::move(p));
}

bool ProfileLibrary::same_condition(const RuntimeCondition& a,
                                    const RuntimeCondition& b) {
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  return a.primary == b.primary && a.collocated == b.collocated &&
         bits(a.util_primary) == bits(b.util_primary) &&
         bits(a.util_collocated) == bits(b.util_collocated) &&
         bits(a.timeout_primary) == bits(b.timeout_primary) &&
         bits(a.timeout_collocated) == bits(b.timeout_collocated) &&
         bits(a.sampling_rel) == bits(b.sampling_rel) &&
         bits(a.mix_primary) == bits(b.mix_primary) &&
         bits(a.mix_collocated) == bits(b.mix_collocated) &&
         bits(a.churn) == bits(b.churn) && a.seed == b.seed;
}

ProfileLibrary::MergeStats ProfileLibrary::merge_from(
    const ProfileLibrary& other) {
  MergeStats stats;
  for (const Profile& incoming : other.profiles_) {
    const bool duplicate =
        std::any_of(profiles_.begin(), profiles_.end(), [&](const Profile& p) {
          return same_condition(p.condition, incoming.condition);
        });
    if (duplicate) {
      ++stats.duplicates;
    } else {
      profiles_.push_back(incoming);
      ++stats.added;
    }
  }
  return stats;
}

ProfileLibrary::FileLoadStats ProfileLibrary::load_file(
    const std::string& path) {
  profiler::ProfileLoadReport report =
      profiler::load_profiles_resilient(path);
  FileLoadStats stats;
  if (report.file_quarantined) {
    stats.file_quarantined = true;
    quarantine_log_.push_back(path + ": " + report.file_reason);
    return stats;
  }
  for (const auto& q : report.quarantined)
    quarantine_log_.push_back(path + ": record " + std::to_string(q.index) +
                              ": " + q.reason);
  stats.records_quarantined = report.quarantined.size();
  stats.profiles_loaded = report.profiles.size();
  add_all(std::move(report.profiles));
  return stats;
}

double ProfileLibrary::condition_distance(const RuntimeCondition& a,
                                          const RuntimeCondition& b) {
  const double du_p = a.util_primary - b.util_primary;
  const double du_c = a.util_collocated - b.util_collocated;
  // Timeouts span [0, 6]; normalize to the utilization scale.
  const double dt_p = (a.timeout_primary - b.timeout_primary) / 6.0;
  const double dt_c = (a.timeout_collocated - b.timeout_collocated) / 6.0;
  return std::sqrt(du_p * du_p + du_c * du_c + dt_p * dt_p + dt_c * dt_c);
}

std::vector<const Profile*> ProfileLibrary::nearest_k(
    const RuntimeCondition& condition, std::size_t k) const {
  struct Scored {
    const Profile* p;
    bool pairing;
    double d;
  };
  std::vector<Scored> scored;
  scored.reserve(profiles_.size());
  for (const auto& p : profiles_) {
    const bool pairing = p.condition.primary == condition.primary &&
                         p.condition.collocated == condition.collocated;
    scored.push_back({&p, pairing, condition_distance(p.condition, condition)});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.pairing != b.pairing) return a.pairing;  // pairing matches first
    return a.d < b.d;
  });
  std::vector<const Profile*> out;
  for (const auto& s : scored) {
    if (out.size() >= k) break;
    out.push_back(s.p);
  }
  return out;
}

const Profile* ProfileLibrary::nearest(
    const RuntimeCondition& condition) const {
  const Profile* best = nullptr;
  double best_d = std::numeric_limits<double>::infinity();
  bool best_pairing = false;
  for (const auto& p : profiles_) {
    const bool pairing = p.condition.primary == condition.primary &&
                         p.condition.collocated == condition.collocated;
    if (best_pairing && !pairing) continue;
    const double d = condition_distance(p.condition, condition);
    if (!best || (pairing && !best_pairing) || d < best_d) {
      // A pairing match always beats a non-match; otherwise nearest wins.
      if (pairing == best_pairing && best && d >= best_d) continue;
      best = &p;
      best_d = d;
      best_pairing = pairing;
    }
  }
  return best;
}

}  // namespace stac::core

// Fleet-wide condition aggregation: count-weighted moment merge.
//
// Each node shard estimates its workloads from its own event stream
// (serve::ConditionEstimator).  The fleet coordinator plans ONE global
// timeout vector, so it needs the conditions the whole fleet offers — the
// total arrival rate against the total capacity, and the service-time
// moments over every shard's window pooled together.  Per-shard windows
// export mergeable moments (counts + Welford mean/M2 via StreamingStats)
// and this merge combines them with the standard parallel-Welford (Chan)
// update, which StreamingStats::merge implements.
//
// Identities the fleet tests and the bench gate pin:
//   * N=1: merging a single shard's moments reproduces that shard's
//     WorkloadEstimate bit-for-bit (StreamingStats::merge copies into an
//     empty accumulator verbatim, and every derived expression below uses
//     the same operation order as ConditionEstimator::estimate) — the
//     fleet-of-one == standalone-controller identity;
//   * N=k: counts are exact sums, the merged mean is the count-weighted
//     mean, and utilization is total rate x merged mean service over the
//     fleet's total server count — so a shard leaving simply renormalizes
//     the offered load onto the remaining capacity.
#pragma once

#include <cstdint>
#include <span>

#include "common/stats.hpp"

namespace stac::core {

/// One workload's window moments on one shard, in mergeable form: event
/// counts, the observed-span arrival rate, and the completion-window
/// service/queue moments as Welford accumulators.
struct WorkloadMoments {
  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t boosted = 0;     ///< boosted completions in the window
  double span = 0.0;             ///< observed-span divisor behind arrival_rate
  double arrival_rate = 0.0;     ///< arrivals / span on this shard
  StreamingStats service;        ///< completion service durations
  StreamingStats queue;          ///< completion queueing delays
};

/// The fleet-level estimate for one workload (the merge of every active
/// shard's WorkloadMoments).  Field meanings match serve::WorkloadEstimate.
struct MergedWorkloadEstimate {
  double arrival_rate = 0.0;     ///< sum of per-shard rates
  double mean_service = 0.0;
  double service_cv = 0.0;
  double mean_queue_delay = 0.0;
  double boost_fraction = 0.0;
  double utilization = 0.0;      ///< rate x mean_service / servers_total
  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;
  std::uint64_t timeouts = 0;
  bool warm = false;             ///< pooled completions >= min_completions
};

/// Count-weighted merge of per-shard moments for one workload.
/// `servers_total` is the fleet's capacity for this workload (servers per
/// shard x active shards); `min_completions` is the pooled warmth bar.
/// An empty span yields a cold all-zero estimate (never NaN).
[[nodiscard]] MergedWorkloadEstimate merge_moments(
    std::span<const WorkloadMoments> shards, std::size_t servers_total,
    std::size_t min_completions);

}  // namespace stac::core

// Direct response-time regressors — the Fig. 6 comparators that skip the
// EA intermediate and the queueing simulator: linear regression, a single
// decision tree, and the CNN, each mapping condition features (+ counter
// data) straight to normalized response time.
#pragma once

#include <memory>

#include "ml/decision_tree.hpp"
#include "ml/linear_regression.hpp"
#include "ml/neural_net.hpp"
#include "profiler/profiler.hpp"

namespace stac::core {

enum class DirectBackend : std::uint8_t { kLinear, kTree, kCnn };

struct DirectRtConfig {
  DirectBackend backend = DirectBackend::kLinear;
  ml::ConvNetConfig cnn;
  ml::TreeConfig tree{.split_mode = ml::SplitMode::kAllFeatures,
                      .max_depth = 14,
                      .min_samples_leaf = 2};
  /// CNN tuning trials (TUNE-style random search) before the final fit;
  /// 0 = use `cnn` as-is.
  std::size_t tune_trials = 0;
  /// Give linear/tree per-counter-row summary statistics of the profile
  /// image.  Off by default: the paper frames the simple comparators as
  /// runtime-condition -> response-time mappers, while representational
  /// learning over the counters is what the CNN and deep forest bring.
  bool image_summaries = false;
  std::uint64_t seed = 5;
};

class DirectRtModel {
 public:
  explicit DirectRtModel(DirectRtConfig config = {});

  /// Trains on normalized mean response time (rt / scaled base service).
  void fit(const std::vector<profiler::Profile>& profiles);

  /// Predicted normalized mean response time for a profile's condition.
  [[nodiscard]] double predict(const profiler::Profile& profile) const;

  [[nodiscard]] bool trained() const { return trained_; }

 private:
  /// Tabular row: statics, plus per-counter-row means/stds when
  /// image_summaries is enabled (the CNN always sees the image whole).
  [[nodiscard]] std::vector<double> tabular_row(
      const profiler::Profile& profile) const;

  DirectRtConfig config_;
  bool trained_ = false;
  std::unique_ptr<ml::LinearRegression> linear_;
  std::unique_ptr<ml::DecisionTree> tree_;
  std::unique_ptr<ml::ConvNet> cnn_;
};

}  // namespace stac::core

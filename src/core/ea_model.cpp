#include "core/ea_model.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/fault_injection.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stac::core {

using profiler::Profile;
using profiler::Profiler;

namespace {

/// Flatten a sample into a plain feature vector (tabular backends).
std::vector<double> tabular_row(const ml::ProfileSample& s) {
  return s.tabular;
}

}  // namespace

EaModel::EaModel(EaModelConfig config) : config_(std::move(config)) {}

EaModel::EaModel(const EaModel& other)
    : config_(other.config_), trained_(other.trained_),
      deep_(other.deep_ ? std::make_unique<ml::DeepForest>(*other.deep_)
                        : nullptr),
      forest_(other.forest_ ? std::make_unique<ml::RandomForest>(*other.forest_)
                            : nullptr),
      tree_(other.tree_ ? std::make_unique<ml::DecisionTree>(*other.tree_)
                        : nullptr),
      linear_(other.linear_
                  ? std::make_unique<ml::LinearRegression>(*other.linear_)
                  : nullptr) {}

EaModel& EaModel::operator=(const EaModel& other) {
  if (this != &other) *this = EaModel(other);  // copy-then-move
  return *this;
}

ml::ProfileSample EaModel::make_sample(const Profile& profile) const {
  const bool needs_image = config_.backend == EaBackend::kDeepForest;
  ml::ProfileSample s = Profiler::to_sample(
      profile, config_.shuffle_counter_rows, config_.shuffle_seed);
  if (!needs_image) s.image = Matrix{};
  return s;
}

void EaModel::fit(const std::vector<Profile>& profiles) {
  STAC_REQUIRE(!profiles.empty());
  STAC_TRACE_SPAN(span, "model.fit", "ml");
  span.arg("profiles", static_cast<std::uint64_t>(profiles.size()));
  obs::count("ml.model_fits");
  // Models a failed/aborted training job (e.g. OOM-killed trainer); the
  // StacManager ladder falls back to simpler EA sources.
  FaultInjector::global().check("model.fit");
  std::vector<ml::ProfileSample> samples;
  std::vector<double> targets;
  samples.reserve(profiles.size());
  targets.reserve(profiles.size());
  for (const auto& p : profiles) {
    samples.push_back(make_sample(p));
    // The learning target is the potential (always-boost) EA — what the
    // Stage-3 simulator converts into the boosted-phase rate.
    targets.push_back(p.ea_boost);
  }

  switch (config_.backend) {
    case EaBackend::kDeepForest:
    case EaBackend::kCascadeOnly:
      deep_ = std::make_unique<ml::DeepForest>(config_.deep_forest);
      deep_->fit(samples, targets);
      break;
    case EaBackend::kSimpleForest: {
      Matrix x(0, samples.front().tabular.size());
      for (const auto& s : samples) x.append_row(tabular_row(s));
      forest_ = std::make_unique<ml::RandomForest>(config_.forest);
      forest_->fit(ml::Dataset(std::move(x), targets));
      break;
    }
    case EaBackend::kTree: {
      Matrix x(0, samples.front().tabular.size());
      for (const auto& s : samples) x.append_row(tabular_row(s));
      tree_ = std::make_unique<ml::DecisionTree>(config_.tree);
      tree_->fit(ml::Dataset(std::move(x), targets));
      break;
    }
    case EaBackend::kLinear: {
      Matrix x(0, samples.front().tabular.size());
      for (const auto& s : samples) x.append_row(tabular_row(s));
      linear_ = std::make_unique<ml::LinearRegression>();
      linear_->fit(ml::Dataset(std::move(x), targets));
      break;
    }
  }
  trained_ = true;
}

void EaModel::refit_incremental(const std::vector<Profile>& profiles,
                                double retrain_fraction) {
  if (!trained_) {
    fit(profiles);
    return;
  }
  STAC_REQUIRE(!profiles.empty());
  STAC_TRACE_SPAN(span, "model.refit", "ml");
  span.arg("profiles", static_cast<std::uint64_t>(profiles.size()));
  obs::count("ml.model_warm_refits");
  // Same failure domain as fit(): a warm refit is still a training job and
  // dies the same way (the RefitExecutor's retry ladder catches it).
  FaultInjector::global().check("model.fit");
  std::vector<ml::ProfileSample> samples;
  std::vector<double> targets;
  samples.reserve(profiles.size());
  targets.reserve(profiles.size());
  for (const auto& p : profiles) {
    samples.push_back(make_sample(p));
    targets.push_back(p.ea_boost);
  }

  switch (config_.backend) {
    case EaBackend::kDeepForest:
    case EaBackend::kCascadeOnly:
      deep_->refit_incremental(samples, targets, retrain_fraction);
      break;
    case EaBackend::kSimpleForest: {
      Matrix x(0, samples.front().tabular.size());
      for (const auto& s : samples) x.append_row(tabular_row(s));
      forest_->refit_incremental(ml::Dataset(std::move(x), targets),
                                 retrain_fraction);
      break;
    }
    case EaBackend::kTree: {
      // No incremental path for a single tree — a full refit is already
      // cheap at this scale.
      Matrix x(0, samples.front().tabular.size());
      for (const auto& s : samples) x.append_row(tabular_row(s));
      tree_ = std::make_unique<ml::DecisionTree>(config_.tree);
      tree_->fit(ml::Dataset(std::move(x), targets));
      break;
    }
    case EaBackend::kLinear: {
      Matrix x(0, samples.front().tabular.size());
      for (const auto& s : samples) x.append_row(tabular_row(s));
      linear_ = std::make_unique<ml::LinearRegression>();
      linear_->fit(ml::Dataset(std::move(x), targets));
      break;
    }
  }
}

double EaModel::predict(const ml::ProfileSample& sample) const {
  STAC_REQUIRE_MSG(trained_, "EaModel::predict before fit");
  // Models a stale/unreachable model server.  Keyed on the sample features
  // so the fault schedule is deterministic even when predictions run on a
  // thread pool (same query → same decision, for a given plan seed).
  FaultInjector::global().check(
      "model.predict",
      fault_key_hash(sample.tabular.data(),
                     sample.tabular.size() * sizeof(double)));
  double ea = 0.0;
  switch (config_.backend) {
    case EaBackend::kDeepForest:
    case EaBackend::kCascadeOnly:
      ea = deep_->predict(sample);
      break;
    case EaBackend::kSimpleForest:
      ea = forest_->predict(sample.tabular);
      break;
    case EaBackend::kTree:
      ea = tree_->predict(sample.tabular);
      break;
    case EaBackend::kLinear:
      ea = linear_->predict(sample.tabular);
      break;
  }
  return std::clamp(ea, 1e-3, 1.0);
}

std::vector<double> EaModel::concepts(const ml::ProfileSample& sample) const {
  STAC_REQUIRE_MSG(deep_ != nullptr,
                   "concepts are only defined for deep-forest backends");
  return deep_->concepts(sample);
}

}  // namespace stac::core

#include "core/stac_manager.hpp"

#include "common/check.hpp"

namespace stac::core {

StacManager::StacManager(StacOptions options)
    : options_(std::move(options)), profiler_(options_.profiler),
      model_(options_.model) {}

void StacManager::calibrate(wl::Benchmark a, wl::Benchmark b) {
  profiler::StratifiedSampler sampler(profiler_, options_.sampler);
  library_.add_all(sampler.collect(a, b, options_.profile_budget));
  library_.add_all(sampler.collect(b, a, options_.profile_budget));
  STAC_REQUIRE_MSG(!library_.empty(), "profiling produced no profiles");
  model_ = EaModel(options_.model);
  model_.fit(library_.profiles());
  predictor_.emplace(profiler_, &model_, &library_, options_.predictor);
}

RtPrediction StacManager::predict(
    const profiler::RuntimeCondition& condition) const {
  STAC_REQUIRE_MSG(predictor_.has_value(), "predict before calibrate");
  return predictor_->predict(condition);
}

PolicyExploration StacManager::recommend(
    const profiler::RuntimeCondition& condition) const {
  STAC_REQUIRE_MSG(predictor_.has_value(), "recommend before calibrate");
  return explore_policies(*predictor_, condition, options_.explorer);
}

queueing::TestbedResult StacManager::evaluate(
    const profiler::RuntimeCondition& condition, double timeout_primary,
    double timeout_collocated, std::size_t completions) const {
  return evaluate_policy(profiler_, condition, timeout_primary,
                         timeout_collocated, completions);
}

}  // namespace stac::core

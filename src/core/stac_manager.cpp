#include "core/stac_manager.hpp"

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stac::core {

StacManager::StacManager(StacOptions options)
    : options_(std::move(options)), profiler_(options_.profiler),
      model_(options_.model),
      fallback_(EaModelConfig{.backend = EaBackend::kLinear}) {}

void StacManager::refit() {
  STAC_REQUIRE_MSG(!library_.empty(), "profiling produced no profiles");
  STAC_TRACE_SPAN(span, "stac.refit", "stac");
  span.arg("profiles", static_cast<std::uint64_t>(library_.size()));
  // Primary model: a training failure (injected "model.fit" fault, stale
  // inputs) is survivable — the ladder answers from a lower rung — but it
  // must leave the manager with an untrained primary, not a half-fit one.
  model_ = EaModel(options_.model);
  try {
    model_.fit(library_.profiles());
  } catch (const ContractViolation&) {
    throw;
  } catch (const std::exception&) {
    model_ = EaModel(options_.model);  // discard partial state
    obs::count("stac.primary_fit_failures");
    obs::instant("stac.primary_fit_failed", "stac");
  }
  fallback_ = EaModel(EaModelConfig{.backend = EaBackend::kLinear});
  if (options_.train_fallback) {
    try {
      fallback_.fit(library_.profiles());
    } catch (const ContractViolation&) {
      throw;
    } catch (const std::exception&) {
      fallback_ = EaModel(EaModelConfig{.backend = EaBackend::kLinear});
    }
  }
  predictor_.emplace(profiler_, model_.trained() ? &model_ : nullptr,
                     &library_, options_.predictor);
  predictor_->set_fallback_model(fallback_.trained() ? &fallback_ : nullptr);
}

void StacManager::calibrate(wl::Benchmark a, wl::Benchmark b) {
  STAC_TRACE_SPAN(span, "stac.calibrate", "stac");
  profiler::StratifiedSampler sampler(profiler_, options_.sampler);
  library_.add_all(sampler.collect(a, b, options_.profile_budget));
  library_.add_all(sampler.collect(b, a, options_.profile_budget));
  refit();
}

std::size_t StacManager::load_profiles(const std::string& path) {
  const auto stats = library_.load_file(path);
  if (!library_.empty()) refit();
  return stats.profiles_loaded;
}

RtPrediction StacManager::predict(
    const profiler::RuntimeCondition& condition) const {
  STAC_REQUIRE_MSG(predictor_.has_value(), "predict before calibrate");
  STAC_TRACE_SPAN(span, "stac.predict", "stac");
  RtPrediction out = predictor_->predict(condition);
  // Degradation-rung changes are the control plane's key health signal;
  // surface every rung shift as a trace instant plus a counter.
  if (out.rung != DegradationRung::kPrimaryModel) {
    obs::count(std::string("stac.rung.") + degradation_rung_name(out.rung));
    obs::instant("stac.degraded", "stac",
                 {{"rung", std::string("\"") +
                               degradation_rung_name(out.rung) + "\""}});
  }
  span.arg("rung", std::string(degradation_rung_name(out.rung)));
  return out;
}

PolicyExploration StacManager::recommend(
    const profiler::RuntimeCondition& condition) const {
  STAC_REQUIRE_MSG(predictor_.has_value(), "recommend before calibrate");
  STAC_TRACE_SPAN(span, "stac.recommend", "stac");
  return explore_policies(*predictor_, condition, options_.explorer);
}

queueing::TestbedResult StacManager::evaluate(
    const profiler::RuntimeCondition& condition, double timeout_primary,
    double timeout_collocated, std::size_t completions) const {
  return evaluate_policy(profiler_, condition, timeout_primary,
                         timeout_collocated, completions);
}

}  // namespace stac::core

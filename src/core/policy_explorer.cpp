#include "core/policy_explorer.hpp"

#include <limits>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stac::core {

using profiler::RuntimeCondition;

PolicyExploration explore_policies(const RtPredictor& predictor,
                                   const RuntimeCondition& condition,
                                   const ExplorerConfig& config) {
  STAC_REQUIRE(!config.grid.empty());
  const std::size_t g = config.grid.size();
  STAC_TRACE_SPAN(sweep_span, "explore.sweep", "explore");
  sweep_span.arg("grid", static_cast<std::uint64_t>(g));
  sweep_span.arg("cells", static_cast<std::uint64_t>(g * g));
  const RtPredictionCache::Stats cache_before = predictor.cache_stats();
  PolicyExploration out;
  out.predicted_primary = Matrix(g, g);
  out.predicted_collocated = Matrix(g, g);

  // One task per grid cell; each writes only its own two matrix slots and
  // RtPredictor::predict is const and self-seeded, so scheduling cannot
  // change the outcome.
  auto eval_cell = [&](std::size_t cell) {
    STAC_TRACE_SPAN(cell_span, "explore.cell", "explore");
    const std::size_t i = cell / g;
    const std::size_t j = cell % g;
    cell_span.arg("timeout_primary", config.grid[i]);
    cell_span.arg("timeout_collocated", config.grid[j]);
    cell_span.arg("worker",
                  static_cast<std::uint64_t>(ThreadPool::worker_index()));
    RuntimeCondition c = condition;
    c.timeout_primary = config.grid[i];
    c.timeout_collocated = config.grid[j];
    out.predicted_primary(i, j) = predictor.predict(c).norm_p95_rt;
    out.predicted_collocated(i, j) =
        predictor.predict(c.swapped()).norm_p95_rt;
  };
  if (config.parallel && g * g > 1) {
    ThreadPool& pool = config.pool ? *config.pool : ThreadPool::global();
    pool.parallel_for(0, g * g, eval_cell);
  } else {
    for (std::size_t cell = 0; cell < g * g; ++cell) eval_cell(cell);
  }
  out.predictions_made = 2 * g * g;
  obs::count("explore.cells", g * g);

  // How much of the sweep the simulation memoizer absorbed (the grid cells
  // share seeds and, with analytic EA, whole configs — DESIGN.md §10).
  {
    const RtPredictionCache::Stats after = predictor.cache_stats();
    const RtPredictionCache::Stats delta{after.hits - cache_before.hits,
                                         after.misses - cache_before.misses};
    sweep_span.arg("sim_cache_hits", delta.hits);
    sweep_span.arg("sim_cache_misses", delta.misses);
    if (delta.hits + delta.misses > 0)
      obs::set_gauge("explore.sim_cache_hit_rate", delta.hit_rate());
  }

  double best_p = std::numeric_limits<double>::infinity();
  double best_c = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < g; ++i) {
    for (std::size_t j = 0; j < g; ++j) {
      best_p = std::min(best_p, out.predicted_primary(i, j));
      best_c = std::min(best_c, out.predicted_collocated(i, j));
    }
  }

  double slack = config.slack;
  for (std::size_t attempt = 0; attempt <= config.max_relaxations; ++attempt) {
    // Step 1 sets + Step 2 intersection in one sweep.
    double best_sum = std::numeric_limits<double>::infinity();
    std::size_t best_i = g, best_j = g;
    for (std::size_t i = 0; i < g; ++i) {
      for (std::size_t j = 0; j < g; ++j) {
        const double rp = out.predicted_primary(i, j);
        const double rc = out.predicted_collocated(i, j);
        if (rp > best_p * (1.0 + slack)) continue;
        if (rc > best_c * (1.0 + slack)) continue;
        if (rp + rc < best_sum) {
          best_sum = rp + rc;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (best_i < g) {
      out.selection.name = "model-driven";
      out.selection.timeout_primary = config.grid[best_i];
      out.selection.timeout_collocated = config.grid[best_j];
      out.slack_used = slack;
      return out;
    }
    slack *= config.slack_growth;
  }

  // Matching failed even after relaxation: minimize the combined predicted
  // response time outright.
  double best_sum = std::numeric_limits<double>::infinity();
  std::size_t best_i = 0, best_j = 0;
  for (std::size_t i = 0; i < g; ++i) {
    for (std::size_t j = 0; j < g; ++j) {
      const double sum =
          out.predicted_primary(i, j) + out.predicted_collocated(i, j);
      if (sum < best_sum) {
        best_sum = sum;
        best_i = i;
        best_j = j;
      }
    }
  }
  out.selection.name = "model-driven";
  out.selection.timeout_primary = config.grid[best_i];
  out.selection.timeout_collocated = config.grid[best_j];
  out.slack_used = slack;
  return out;
}

}  // namespace stac::core

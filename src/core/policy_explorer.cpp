#include "core/policy_explorer.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stac::core {

using profiler::RuntimeCondition;

void validate_explorer_config(const ExplorerConfig& config) {
  STAC_REQUIRE_MSG(!config.grid.empty(),
                   "ExplorerConfig.grid must be non-empty");
  for (std::size_t i = 0; i < config.grid.size(); ++i) {
    STAC_REQUIRE_MSG(std::isfinite(config.grid[i]),
                     "ExplorerConfig.grid["
                         << i << "] = " << config.grid[i]
                         << " is not finite");
    STAC_REQUIRE_MSG(i == 0 || config.grid[i - 1] < config.grid[i],
                     "ExplorerConfig.grid must be strictly ascending (grid["
                         << i - 1 << "] = " << config.grid[i - 1]
                         << " >= grid[" << i << "] = " << config.grid[i]
                         << ")");
  }
}

void select_policy(const ExplorerConfig& config, PolicyExploration& out) {
  const std::size_t g = config.grid.size();
  double best_p = std::numeric_limits<double>::infinity();
  double best_c = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < g; ++i) {
    for (std::size_t j = 0; j < g; ++j) {
      best_p = std::min(best_p, out.predicted_primary(i, j));
      best_c = std::min(best_c, out.predicted_collocated(i, j));
    }
  }

  double slack = config.slack;
  for (std::size_t attempt = 0; attempt <= config.max_relaxations; ++attempt) {
    // Step 1 sets + Step 2 intersection in one sweep.
    double best_sum = std::numeric_limits<double>::infinity();
    std::size_t best_i = g, best_j = g;
    for (std::size_t i = 0; i < g; ++i) {
      for (std::size_t j = 0; j < g; ++j) {
        const double rp = out.predicted_primary(i, j);
        const double rc = out.predicted_collocated(i, j);
        if (rp > best_p * (1.0 + slack)) continue;
        if (rc > best_c * (1.0 + slack)) continue;
        if (rp + rc < best_sum) {
          best_sum = rp + rc;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (best_i < g) {
      out.selection.name = "model-driven";
      out.selection.timeout_primary = config.grid[best_i];
      out.selection.timeout_collocated = config.grid[best_j];
      out.slack_used = slack;
      return;
    }
    slack *= config.slack_growth;
  }

  // Matching failed even after relaxation: minimize the combined predicted
  // response time outright.
  double best_sum = std::numeric_limits<double>::infinity();
  std::size_t best_i = 0, best_j = 0;
  for (std::size_t i = 0; i < g; ++i) {
    for (std::size_t j = 0; j < g; ++j) {
      const double sum =
          out.predicted_primary(i, j) + out.predicted_collocated(i, j);
      if (sum < best_sum) {
        best_sum = sum;
        best_i = i;
        best_j = j;
      }
    }
  }
  out.selection.name = "model-driven";
  out.selection.timeout_primary = config.grid[best_i];
  out.selection.timeout_collocated = config.grid[best_j];
  out.slack_used = slack;
}

namespace {

/// Evaluate the given cells (cell = i * g + j) into out's matrices.  Three
/// bit-identical strategies: one predict_batch wave (config.batch), a
/// pool-parallel per-cell sweep, or the serial loop.  Every cell's two
/// predictions depend only on (condition, grid[i], grid[j]) and the
/// predictor is pure, so strategy and cell order never change the values.
void sweep_cells(const RtPredictor& predictor,
                 const RuntimeCondition& condition,
                 const ExplorerConfig& config,
                 const std::vector<std::size_t>& cells,
                 PolicyExploration& out) {
  if (cells.empty()) return;
  const std::size_t g = config.grid.size();

  if (config.batch) {
    // One wave: [cell0 primary, cell0 collocated, cell1 primary, ...].
    std::vector<RuntimeCondition> wave;
    wave.reserve(2 * cells.size());
    for (const std::size_t cell : cells) {
      RuntimeCondition c = condition;
      c.timeout_primary = config.grid[cell / g];
      c.timeout_collocated = config.grid[cell % g];
      wave.push_back(c);
      wave.push_back(c.swapped());
    }
    const std::vector<RtPrediction> preds = predictor.predict_batch(wave);
    for (std::size_t k = 0; k < cells.size(); ++k) {
      const std::size_t i = cells[k] / g;
      const std::size_t j = cells[k] % g;
      out.predicted_primary(i, j) = preds[2 * k].norm_p95_rt;
      out.predicted_collocated(i, j) = preds[2 * k + 1].norm_p95_rt;
    }
    return;
  }

  // One task per grid cell; each writes only its own two matrix slots and
  // RtPredictor::predict is const and self-seeded, so scheduling cannot
  // change the outcome.
  auto eval_cell = [&](std::size_t idx) {
    STAC_TRACE_SPAN(cell_span, "explore.cell", "explore");
    const std::size_t i = cells[idx] / g;
    const std::size_t j = cells[idx] % g;
    cell_span.arg("timeout_primary", config.grid[i]);
    cell_span.arg("timeout_collocated", config.grid[j]);
    cell_span.arg("worker",
                  static_cast<std::uint64_t>(ThreadPool::worker_index()));
    RuntimeCondition c = condition;
    c.timeout_primary = config.grid[i];
    c.timeout_collocated = config.grid[j];
    out.predicted_primary(i, j) = predictor.predict(c).norm_p95_rt;
    out.predicted_collocated(i, j) =
        predictor.predict(c.swapped()).norm_p95_rt;
  };
  if (config.parallel && cells.size() > 1) {
    ThreadPool& pool = config.pool ? *config.pool : ThreadPool::global();
    pool.parallel_for(0, cells.size(), eval_cell);
  } else {
    for (std::size_t idx = 0; idx < cells.size(); ++idx) eval_cell(idx);
  }
}

/// Sim-cache reuse accounting shared by both entry points.
void note_sim_cache_delta(obs::TraceSpan& span,
                          const RtPredictionCache::Stats& before,
                          const RtPredictor& predictor) {
  const RtPredictionCache::Stats after = predictor.cache_stats();
  const RtPredictionCache::Stats delta{after.hits - before.hits,
                                       after.misses - before.misses};
  span.arg("sim_cache_hits", delta.hits);
  span.arg("sim_cache_misses", delta.misses);
  if (delta.hits + delta.misses > 0)
    obs::set_gauge("explore.sim_cache_hit_rate", delta.hit_rate());
}

[[nodiscard]] std::uint64_t bits(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

/// Memo-validity half of the reuse rule: the epoch condition must match the
/// memoed one bit-for-bit in every field a grid cell does NOT overwrite.
/// (Timeouts are per-cell; everything else flows into the predictions.)
[[nodiscard]] bool same_condition_modulo_timeouts(const RuntimeCondition& a,
                                                  const RuntimeCondition& b) {
  return a.primary == b.primary && a.collocated == b.collocated &&
         bits(a.util_primary) == bits(b.util_primary) &&
         bits(a.util_collocated) == bits(b.util_collocated) &&
         bits(a.sampling_rel) == bits(b.sampling_rel) &&
         bits(a.mix_primary) == bits(b.mix_primary) &&
         bits(a.mix_collocated) == bits(b.mix_collocated) &&
         bits(a.churn) == bits(b.churn) && a.seed == b.seed;
}

}  // namespace

PolicyExploration explore_policies(const RtPredictor& predictor,
                                   const RuntimeCondition& condition,
                                   const ExplorerConfig& config) {
  validate_explorer_config(config);
  const std::size_t g = config.grid.size();
  STAC_TRACE_SPAN(sweep_span, "explore.sweep", "explore");
  sweep_span.arg("grid", static_cast<std::uint64_t>(g));
  sweep_span.arg("cells", static_cast<std::uint64_t>(g * g));
  const RtPredictionCache::Stats cache_before = predictor.cache_stats();
  PolicyExploration out;
  out.predicted_primary = Matrix(g, g);
  out.predicted_collocated = Matrix(g, g);

  std::vector<std::size_t> all_cells(g * g);
  for (std::size_t cell = 0; cell < g * g; ++cell) all_cells[cell] = cell;
  sweep_cells(predictor, condition, config, all_cells, out);
  out.predictions_made = 2 * g * g;
  out.cells_simulated = g * g;
  obs::count("explore.cells_simulated", g * g);

  // How much of the sweep the simulation memoizer absorbed (the grid cells
  // share seeds and, with analytic EA, whole configs — DESIGN.md §10).
  note_sim_cache_delta(sweep_span, cache_before, predictor);

  select_policy(config, out);
  return out;
}

PolicyExploration explore_policies_incremental(const RtPredictor& predictor,
                                               const RuntimeCondition& condition,
                                               const ExplorerConfig& config,
                                               ExplorationMemo& memo,
                                               std::uint64_t generation) {
  validate_explorer_config(config);
  const std::size_t g = config.grid.size();
  STAC_TRACE_SPAN(sweep_span, "explore.sweep_incremental", "explore");
  sweep_span.arg("grid", static_cast<std::uint64_t>(g));
  const RtPredictionCache::Stats cache_before = predictor.cache_stats();
  PolicyExploration out;
  out.predicted_primary = Matrix(g, g);
  out.predicted_collocated = Matrix(g, g);

  // Reuse rule (DESIGN.md §13): memoed values answer a cell only when the
  // model generation and the condition-sans-timeouts are unchanged AND the
  // cell's (grid_i, grid_j) pair exists in the memoed grid.  Anything else
  // — refit, drifted estimate, new grid point — re-simulates.
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  // Geometry guard: a memo whose matrices do not match its own grid (a
  // partially-initialized or hand-tampered memo after a grid-config change
  // mid-run) must never be indexed — reads past a smaller matrix would
  // serve garbage predictions as "reused" cells.
  const bool memo_geometry_ok =
      memo.predicted_primary.rows() == memo.grid.size() &&
      memo.predicted_primary.cols() == memo.grid.size() &&
      memo.predicted_collocated.rows() == memo.grid.size() &&
      memo.predicted_collocated.cols() == memo.grid.size();
  const bool memo_usable = memo.valid && memo_geometry_ok &&
                           memo.generation == generation &&
                           same_condition_modulo_timeouts(memo.condition,
                                                          condition);
  std::vector<std::size_t> memo_index(g, kNone);
  if (memo_usable) {
    for (std::size_t i = 0; i < g; ++i)
      for (std::size_t m = 0; m < memo.grid.size(); ++m)
        if (bits(memo.grid[m]) == bits(config.grid[i])) {
          memo_index[i] = m;
          break;
        }
  }

  std::vector<std::size_t> pending;
  for (std::size_t cell = 0; cell < g * g; ++cell) {
    const std::size_t i = cell / g;
    const std::size_t j = cell % g;
    if (memo_index[i] != kNone && memo_index[j] != kNone) {
      out.predicted_primary(i, j) =
          memo.predicted_primary(memo_index[i], memo_index[j]);
      out.predicted_collocated(i, j) =
          memo.predicted_collocated(memo_index[i], memo_index[j]);
    } else {
      pending.push_back(cell);
    }
  }
  sweep_cells(predictor, condition, config, pending, out);

  out.predictions_made = 2 * pending.size();
  out.cells_simulated = pending.size();
  out.cells_reused = g * g - pending.size();
  sweep_span.arg("cells_simulated",
                 static_cast<std::uint64_t>(out.cells_simulated));
  sweep_span.arg("cells_reused", static_cast<std::uint64_t>(out.cells_reused));
  obs::count("explore.cells_simulated", out.cells_simulated);
  obs::count("explore.cells_reused", out.cells_reused);
  note_sim_cache_delta(sweep_span, cache_before, predictor);

  select_policy(config, out);

  // The selection never feeds back into the matrices, so the memo can hold
  // this epoch's full sweep regardless of what the caller does with it
  // (even a discarded-on-deadline plan memoizes valid predictions).
  memo.valid = true;
  memo.generation = generation;
  memo.condition = condition;
  memo.condition.timeout_primary = 0.0;
  memo.condition.timeout_collocated = 0.0;
  memo.grid = config.grid;
  memo.predicted_primary = out.predicted_primary;
  memo.predicted_collocated = out.predicted_collocated;
  return out;
}

ExplorationMemoPool::ExplorationMemoPool(std::size_t capacity)
    : capacity_(capacity), slots_(std::max<std::size_t>(1, capacity)) {}

ExplorationMemo& ExplorationMemoPool::acquire(
    const RuntimeCondition& condition) {
  ++tick_;
  if (capacity_ == 0) {
    // Memoing disabled: hand back the scratch slot reset to cold, every
    // time.  The caller's incremental sweep then simulates every cell and
    // whatever it writes into the memo is discarded at the next acquire.
    slots_.front().memo = ExplorationMemo{};
    return slots_.front().memo;
  }
  Slot* lru = &slots_.front();
  for (Slot& slot : slots_) {
    if (slot.memo.valid &&
        same_condition_modulo_timeouts(slot.memo.condition, condition)) {
      slot.last_used = tick_;
      return slot.memo;
    }
    if (slot.last_used < lru->last_used) lru = &slot;
  }
  lru->last_used = tick_;
  lru->memo = ExplorationMemo{};
  return lru->memo;
}

}  // namespace stac::core

#include "core/condition_merge.hpp"

#include "common/check.hpp"

namespace stac::core {

MergedWorkloadEstimate merge_moments(std::span<const WorkloadMoments> shards,
                                     std::size_t servers_total,
                                     std::size_t min_completions) {
  STAC_REQUIRE(servers_total > 0);
  MergedWorkloadEstimate out;
  StreamingStats service;
  StreamingStats queue;
  std::uint64_t boosted = 0;
  for (const WorkloadMoments& m : shards) {
    out.arrivals += m.arrivals;
    out.completions += m.completions;
    out.timeouts += m.timeouts;
    boosted += m.boosted;
    // Rates add: each shard's rate is over its own observed span, and the
    // fleet's offered stream is the union of the shards' streams.  For a
    // single shard 0.0 + r == r exactly — the N=1 bit identity.
    out.arrival_rate += m.arrival_rate;
    // Parallel Welford (StreamingStats::merge): merging into an empty
    // accumulator copies the shard's state verbatim.
    service.merge(m.service);
    queue.merge(m.queue);
  }
  // Derived fields use the exact expression shapes of
  // ConditionEstimator::estimate so an N=1 merge matches it bitwise.
  out.mean_service = service.mean();
  out.service_cv = service.cv();
  out.mean_queue_delay = queue.mean();
  out.boost_fraction =
      out.completions > 0
          ? static_cast<double>(boosted) / static_cast<double>(out.completions)
          : 0.0;
  out.utilization = out.arrival_rate * out.mean_service /
                    static_cast<double>(servers_total);
  out.warm = out.completions >= min_completions;
  return out;
}

}  // namespace stac::core

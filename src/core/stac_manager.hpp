// StacManager: the library's front door.
//
// Wires the whole pipeline for one collocated pairing:
//   calibrate()  — Stage 1 stratified profiling (both directions) and
//                  Stage 2 deep-forest training;
//   predict()    — Stage 3 response-time prediction for any condition;
//   recommend()  — §5.2 model-driven timeout-vector selection;
//   evaluate()   — ground-truth check of any timeout pair on the testbed.
//
// Resilience: calibrate() also trains a cheap linear-regression fallback
// EA model and attaches it (plus the profile library) to the predictor's
// degradation ladder, so a failed/stale primary model degrades predictions
// by one rung instead of aborting; a primary-model training failure is
// likewise survived as long as any ladder rung can answer.  Profile files
// can be merged in through load_profiles(), which quarantines corrupt
// records rather than throwing.
//
// See examples/quickstart.cpp for the canonical five-line usage.
#pragma once

#include <memory>
#include <optional>

#include "core/policy_explorer.hpp"
#include "profiler/stratified_sampler.hpp"

namespace stac::core {

struct StacOptions {
  profiler::ProfilerConfig profiler;
  profiler::SamplerConfig sampler;
  EaModelConfig model;
  RtPredictorConfig predictor;
  ExplorerConfig explorer;
  /// Profiling budget in conditions per collocation direction (the paper's
  /// 30-minute budget yields ~100 profiles; max_windows rows each).
  std::size_t profile_budget = 30;
  /// Train the linear-regression fallback EA model during calibrate() (the
  /// degradation ladder's rung 1).  Costs one extra linear fit.
  bool train_fallback = true;
};

class StacManager {
 public:
  explicit StacManager(StacOptions options = {});

  /// Profile the pairing in both directions and train the EA model (and the
  /// linear fallback).  May be called again with other pairings; the
  /// library accumulates.  Survives a primary-model training failure as
  /// long as a ladder rung below it can answer.
  void calibrate(wl::Benchmark a, wl::Benchmark b);

  /// Merge a saved profile file into the library (corrupt/truncated records
  /// are quarantined, see library().quarantine_log()) and refresh the
  /// models over the grown library.  Returns the number of profiles added.
  std::size_t load_profiles(const std::string& path);

  /// Stage-3 prediction for a condition (requires calibrate()).  The
  /// returned RtPrediction reports the degradation-ladder rung used.
  [[nodiscard]] RtPrediction predict(
      const profiler::RuntimeCondition& condition) const;

  /// Model-driven timeout-vector recommendation for a pairing at the given
  /// utilizations (condition timeouts ignored).
  [[nodiscard]] PolicyExploration recommend(
      const profiler::RuntimeCondition& condition) const;

  /// Ground-truth evaluation of a timeout pair (testbed run).
  [[nodiscard]] queueing::TestbedResult evaluate(
      const profiler::RuntimeCondition& condition, double timeout_primary,
      double timeout_collocated, std::size_t completions = 2500) const;

  [[nodiscard]] const profiler::Profiler& profiler() const {
    return profiler_;
  }
  [[nodiscard]] const ProfileLibrary& library() const { return library_; }
  [[nodiscard]] const EaModel& model() const { return model_; }
  [[nodiscard]] const EaModel& fallback_model() const { return fallback_; }
  /// Usable for predict()/recommend() — true once any ladder rung can
  /// answer, even if the primary model failed to train.
  [[nodiscard]] bool calibrated() const { return predictor_.has_value(); }
  /// True when the last calibrate() could not train the primary model and
  /// predictions start below rung 0.
  [[nodiscard]] bool primary_model_degraded() const {
    return calibrated() && !model_.trained();
  }

 private:
  /// (Re)train models over the current library and rebuild the predictor.
  void refit();

  StacOptions options_;
  profiler::Profiler profiler_;
  ProfileLibrary library_;
  EaModel model_;
  EaModel fallback_;
  std::optional<RtPredictor> predictor_;
};

}  // namespace stac::core

// StacManager: the library's front door.
//
// Wires the whole pipeline for one collocated pairing:
//   calibrate()  — Stage 1 stratified profiling (both directions) and
//                  Stage 2 deep-forest training;
//   predict()    — Stage 3 response-time prediction for any condition;
//   recommend()  — §5.2 model-driven timeout-vector selection;
//   evaluate()   — ground-truth check of any timeout pair on the testbed.
//
// See examples/quickstart.cpp for the canonical five-line usage.
#pragma once

#include <memory>
#include <optional>

#include "core/policy_explorer.hpp"
#include "profiler/stratified_sampler.hpp"

namespace stac::core {

struct StacOptions {
  profiler::ProfilerConfig profiler;
  profiler::SamplerConfig sampler;
  EaModelConfig model;
  RtPredictorConfig predictor;
  ExplorerConfig explorer;
  /// Profiling budget in conditions per collocation direction (the paper's
  /// 30-minute budget yields ~100 profiles; max_windows rows each).
  std::size_t profile_budget = 30;
};

class StacManager {
 public:
  explicit StacManager(StacOptions options = {});

  /// Profile the pairing in both directions and train the EA model.
  /// May be called again with other pairings; the library accumulates.
  void calibrate(wl::Benchmark a, wl::Benchmark b);

  /// Stage-3 prediction for a condition (requires calibrate()).
  [[nodiscard]] RtPrediction predict(
      const profiler::RuntimeCondition& condition) const;

  /// Model-driven timeout-vector recommendation for a pairing at the given
  /// utilizations (condition timeouts ignored).
  [[nodiscard]] PolicyExploration recommend(
      const profiler::RuntimeCondition& condition) const;

  /// Ground-truth evaluation of a timeout pair (testbed run).
  [[nodiscard]] queueing::TestbedResult evaluate(
      const profiler::RuntimeCondition& condition, double timeout_primary,
      double timeout_collocated, std::size_t completions = 2500) const;

  [[nodiscard]] const profiler::Profiler& profiler() const {
    return profiler_;
  }
  [[nodiscard]] const ProfileLibrary& library() const { return library_; }
  [[nodiscard]] const EaModel& model() const { return model_; }
  [[nodiscard]] bool calibrated() const { return model_.trained(); }

 private:
  StacOptions options_;
  profiler::Profiler profiler_;
  ProfileLibrary library_;
  EaModel model_;
  std::optional<RtPredictor> predictor_;
};

}  // namespace stac::core

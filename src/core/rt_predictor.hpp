// Stage 3 wiring (§3.3): EA model + G/G/k simulator + feedback loop.
//
// To predict response time for an unseen (condition, policy):
//   1. fetch the nearest training profile's counter image and dynamics as
//      the starting point (ProfileLibrary — training data only);
//   2. predict EA with the Stage-2 model;
//   3. run the G/G/k simulator with the policy timeout and the predicted
//      EA-scaled boost rate;
//   4. feed the simulator's instantaneous queueing delay and boost
//      fraction back into the dynamic condition features and repeat —
//      "the instantaneous queuing delay is outputted as dynamic condition
//      feedback for future simulations".
#pragma once

#include <limits>

#include "core/ea_model.hpp"
#include "core/profile_library.hpp"
#include "core/rt_prediction_cache.hpp"
#include "queueing/ggk_simulator.hpp"

namespace stac::core {

/// The EA-source degradation ladder (most→least capable).  Every EA query
/// tries the rungs in order and records the first that answered; a fault in
/// the deep-forest model (stale model, injected "model.predict" failure)
/// drops the prediction one rung instead of killing the pipeline.
enum class DegradationRung : std::uint8_t {
  kPrimaryModel = 0,    ///< the configured (deep-forest) EA model
  kLinearFallback = 1,  ///< cheap linear-regression EA trained alongside
  kNearestNeighbor = 2, ///< profile-library nearest-neighbour EA lookup
  kConservative = 3,    ///< static allocation: boosts assumed to buy nothing
};

[[nodiscard]] const char* degradation_rung_name(DegradationRung rung);

struct RtPrediction {
  double mean_rt = 0.0;  ///< in the pairing's scaled time units
  double p95_rt = 0.0;
  double ea = 0.0;
  double mean_queue_delay = 0.0;
  double boosted_fraction = 0.0;
  /// Normalized by the primary's scaled base service time (scale-free).
  double norm_mean_rt = 0.0;
  double norm_p95_rt = 0.0;
  /// Worst (deepest) ladder rung any EA query of this prediction fell to.
  DegradationRung rung = DegradationRung::kPrimaryModel;
};

struct RtPredictorConfig {
  std::size_t feedback_iterations = 2;
  std::size_t sim_queries = 6000;
  std::size_t sim_warmup = 300;
  /// Library profiles averaged per exploration-mode EA query.
  std::size_t ea_neighbors = 5;
  /// EA source when no learned model is attached (the Fig. 6 "Queue Model"
  /// comparator): contention-blind analytic EA from the solo speedup.
  bool analytic_ea = false;
  /// Memoize Stage-3 simulations in an RtPredictionCache keyed on the
  /// bit-exact GGkConfig (DESIGN.md §10).  The simulator is deterministic,
  /// so a hit returns exactly what a fresh run would; chaos runs bypass the
  /// cache automatically.  false = always re-simulate.
  bool memoize = true;
  /// Max entries the memo cache may hold before its epoch flush — bounds
  /// the memory of a long-running controller that re-plans every epoch
  /// over drifting conditions (current size exported as the
  /// "rt_cache.size" obs gauge).
  std::size_t memoize_capacity = 4096;
  std::uint64_t seed = 2024;
};

/// Concurrency: predict() and predict_for_profile() are const, keep all
/// mutable state (simulators, RNGs, feedback dynamics) on the stack, and
/// derive every seed from the config — the grid-parallel policy explorer
/// calls them from many pool workers at once.  The referenced profiler,
/// models and library must not be mutated while predictions are in flight.
class RtPredictor {
 public:
  /// At least one EA source is required: a trained `model`, a trained
  /// fallback (set_fallback_model), a non-empty `library`, or
  /// config.analytic_ea.  `model` may be null when another source exists —
  /// predictions then start lower on the degradation ladder.
  RtPredictor(const profiler::Profiler& profiler, const EaModel* model,
              const ProfileLibrary* library, RtPredictorConfig config = {});

  /// Attach the linear-regression fallback model (ladder rung 1).  Null
  /// detaches.  The pointer must outlive the predictor.
  void set_fallback_model(const EaModel* fallback) { fallback_ = fallback; }

  /// Exploration-mode prediction for a *hypothetical* condition: the
  /// counter image is borrowed from the nearest training profile and the
  /// dynamic conditions come from simulation feedback (§3.3).  Used by the
  /// policy explorer, where no measurement of the condition exists.
  [[nodiscard]] RtPrediction predict(
      const profiler::RuntimeCondition& condition) const;

  /// Batched exploration-mode prediction: results[i] is bit-identical to
  /// predict(conditions[i]).  The per-condition feedback loops advance in
  /// lockstep — every iteration gathers ALL conditions' primary and
  /// collocated G/G/k configs into one RtPredictionCache::simulate_batch
  /// call, so the whole wave shares one simulation arena and one CRN
  /// stream fetch per (seed, load) group (DESIGN.md §13).  This is how a
  /// sub-10ms control epoch runs the §5.2 sweep: conditions differing only
  /// in timeout collapse onto shared streams and memoized cells.
  [[nodiscard]] std::vector<RtPrediction> predict_batch(
      const std::vector<profiler::RuntimeCondition>& conditions) const;

  /// Which ladder rung answers for `condition` right now: one EA query
  /// seeded with the same initial dynamics predict() starts from — no
  /// simulation, no feedback loop.  The serving controller's health check
  /// (DESIGN.md §13): rung availability is model state, not query state,
  /// so this equals predict(condition).rung whenever availability is
  /// stable across one prediction's EA queries.
  [[nodiscard]] DegradationRung probe_rung(
      const profiler::RuntimeCondition& condition) const;

  /// Measurement-mode prediction for a profiled condition (the Fig. 6
  /// protocol): the profile's own counter image and dynamic conditions are
  /// model *inputs* — the paper only forbids using the observed profile
  /// "to train".  Response time remains strictly an output of the Stage-3
  /// simulator.
  [[nodiscard]] RtPrediction predict_for_profile(
      const profiler::Profile& profile) const;

  /// Simulation-memoization counters for this predictor (sweeps report the
  /// hit rate; see bench_sim_core).  Zeros when `memoize` is off.
  [[nodiscard]] RtPredictionCache::Stats cache_stats() const {
    return sim_cache_.stats();
  }

  /// Current memo-cache entry count (bounded by config.memoize_capacity).
  [[nodiscard]] std::size_t cache_size() const { return sim_cache_.size(); }

 private:
  struct EaQuery {
    double ea = 0.0;
    DegradationRung rung = DegradationRung::kPrimaryModel;
  };
  /// `neighbor_cap` bounds the library neighbours averaged on the learned
  /// rungs (probe_rung passes 1 — the rung does not depend on the average;
  /// predictions use the config value).
  [[nodiscard]] EaQuery ea_for(
      const profiler::RuntimeCondition& condition,
      const std::vector<double>& dynamics,
      std::size_t neighbor_cap =
          std::numeric_limits<std::size_t>::max()) const;
  /// Rung-2 EA: average ea_boost over the library's nearest profiles.
  [[nodiscard]] double neighbor_ea(
      const profiler::RuntimeCondition& condition) const;
  /// Rung-3 EA: boost-neutral ("static allocation") — the boosted rate
  /// equals the default rate, so a wrong model can never promise speedup.
  [[nodiscard]] double conservative_ea() const;

  const profiler::Profiler& profiler_;
  const EaModel* model_;
  const EaModel* fallback_ = nullptr;
  const ProfileLibrary* library_;
  RtPredictorConfig config_;
  /// Internally synchronized; mutable so the const, pool-shared predict
  /// paths can memoize through it.
  mutable RtPredictionCache sim_cache_;
};

}  // namespace stac::core

// Model-driven policy search (§5.2).
//
// The paper explores 25 timeout settings per cache-sharing pair (5 per
// workload) with the model — never the testbed — and picks the timeout
// vector by SLO-driven matching:
//   Step 1: per workload, keep settings whose predicted response time is
//           within 5% of the lowest found for that workload;
//   Step 2: choose a setting in the intersection of both kept sets
//           (relaxing the slack when the intersection is empty).
#pragma once

#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "core/baselines.hpp"
#include "core/rt_predictor.hpp"

namespace stac::core {

struct ExplorerConfig {
  /// Timeout grid per workload (5 settings -> the paper's 25 pairs).
  std::vector<double> grid{0.0, 0.5, 1.0, 2.0, 4.0};
  /// Step-1 slack around each workload's best prediction.
  double slack = 0.05;
  /// Slack growth factor when the intersection is empty.
  double slack_growth = 2.0;
  std::size_t max_relaxations = 6;
  /// Evaluate the grid_p x grid_c cells concurrently: every cell's two
  /// G/G/k simulations are independent and internally seeded, and each cell
  /// writes only its own matrix slots, so the result is bit-identical to a
  /// serial sweep regardless of thread count.
  bool parallel = true;
  /// Pool for the sweep (tests vary thread counts); null = the global pool.
  ThreadPool* pool = nullptr;
};

struct PolicyExploration {
  PolicySelection selection;
  /// Predicted normalized p95 response time per (grid_p x grid_c) setting.
  Matrix predicted_primary;
  Matrix predicted_collocated;
  double slack_used = 0.0;
  std::size_t predictions_made = 0;
};

/// Explore the grid with the predictor and match per §5.2.  `condition`
/// supplies the pairing and utilizations; its timeouts are ignored.
[[nodiscard]] PolicyExploration explore_policies(
    const RtPredictor& predictor, const profiler::RuntimeCondition& condition,
    const ExplorerConfig& config = {});

}  // namespace stac::core

// Model-driven policy search (§5.2).
//
// The paper explores 25 timeout settings per cache-sharing pair (5 per
// workload) with the model — never the testbed — and picks the timeout
// vector by SLO-driven matching:
//   Step 1: per workload, keep settings whose predicted response time is
//           within 5% of the lowest found for that workload;
//   Step 2: choose a setting in the intersection of both kept sets
//           (relaxing the slack when the intersection is empty).
//
// Two sweep entry points share the prediction and selection code:
//   * explore_policies — evaluate every grid cell (parallel per-cell
//     predicts, or one predict_batch wave when `batch` is set);
//   * explore_policies_incremental — diff the epoch's condition against an
//     ExplorationMemo and re-simulate only cells the memo cannot answer
//     (DESIGN.md §13).  Reuse is valid only when the model generation AND
//     the condition-sans-timeouts match bit-for-bit; a (grid_i, grid_j)
//     pair answers from the memo when both values appear in the memoed
//     grid.  Selections are bit-identical to a full sweep either way.
#pragma once

#include <cstdint>

#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "core/baselines.hpp"
#include "core/rt_predictor.hpp"

namespace stac::core {

struct ExplorerConfig {
  /// Timeout grid per workload (5 settings -> the paper's 25 pairs).
  /// Contract (validate_explorer_config): non-empty, every value finite,
  /// strictly ascending.
  std::vector<double> grid{0.0, 0.5, 1.0, 2.0, 4.0};
  /// Step-1 slack around each workload's best prediction.
  double slack = 0.05;
  /// Slack growth factor when the intersection is empty.
  double slack_growth = 2.0;
  std::size_t max_relaxations = 6;
  /// Evaluate the grid_p x grid_c cells concurrently: every cell's two
  /// G/G/k simulations are independent and internally seeded, and each cell
  /// writes only its own matrix slots, so the result is bit-identical to a
  /// serial sweep regardless of thread count.
  bool parallel = true;
  /// Route the sweep through RtPredictor::predict_batch instead of
  /// per-cell predict calls: the whole grid's simulations run as one
  /// batch-engine wave (shared CRN streams, one arena).  Bit-identical to
  /// the per-cell sweep; `parallel` is ignored when set.
  bool batch = false;
  /// Pool for the sweep (tests vary thread counts); null = the global pool.
  ThreadPool* pool = nullptr;
};

struct PolicyExploration {
  PolicySelection selection;
  /// Predicted normalized p95 response time per (grid_p x grid_c) setting.
  Matrix predicted_primary;
  Matrix predicted_collocated;
  double slack_used = 0.0;
  std::size_t predictions_made = 0;
  /// Sweep-cost split (also the "explore.cells_simulated" /
  /// "explore.cells_reused" obs counters): cells evaluated through the
  /// predictor this call vs. answered from an ExplorationMemo.
  std::size_t cells_simulated = 0;
  std::size_t cells_reused = 0;
};

/// Prior-epoch sweep results explore_policies_incremental can reuse.  The
/// stored condition has its timeouts zeroed (each cell overwrites them), so
/// "same condition" means same pairing/utilization/mix/churn/seed bits;
/// `generation` is the caller's model-version stamp — bump it and every
/// memoed cell is dead (a refit changes predictions, not conditions).
struct ExplorationMemo {
  bool valid = false;
  std::uint64_t generation = 0;
  profiler::RuntimeCondition condition;
  std::vector<double> grid;
  Matrix predicted_primary;
  Matrix predicted_collocated;
};

/// Fixed-capacity set of ExplorationMemos keyed by condition-sans-timeouts.
/// A serving controller's quantized condition often oscillates among a
/// handful of recurring cells — an EWMA utilization estimate hovering at a
/// quantization boundary flips between the two adjacent cells indefinitely.
/// A single memo thrashes (every flip is a full sweep); a small pool gives
/// each recurring condition its own memo, so revisits answer incrementally.
/// acquire() returns the slot whose memo matches the condition, else
/// recycles the least-recently-used slot — a recycled slot simply starts
/// cold, because reuse validity (generation + condition + grid) is
/// re-checked inside explore_policies_incremental either way.
class ExplorationMemoPool {
 public:
  /// `capacity` = distinct conditions memoized at once.  0 disables
  /// memoing entirely: acquire() then always hands back an invalidated
  /// scratch memo, so every sweep is a full sweep and nothing is ever
  /// retained across epochs (no recycling, no empty-pool edge cases).
  explicit ExplorationMemoPool(std::size_t capacity = 4);

  /// The memo for `condition` (timeouts ignored), or the LRU slot reset to
  /// invalid when no slot matches.  The reference stays valid until the
  /// next acquire().
  [[nodiscard]] ExplorationMemo& acquire(
      const profiler::RuntimeCondition& condition);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    ExplorationMemo memo;
    std::uint64_t last_used = 0;
  };
  std::size_t capacity_;
  /// One scratch slot survives even at capacity 0 so acquire() can always
  /// return a (cold) memo by reference.
  std::vector<Slot> slots_;
  std::uint64_t tick_ = 0;
};

/// Contract check shared by both entry points, applied to `config.grid`
/// before any simulation: non-empty, all-finite, strictly ascending.
/// Throws stac::ContractViolation naming the offense.
void validate_explorer_config(const ExplorerConfig& config);

/// Steps 1–2 of §5.2 over already-filled prediction matrices: fills
/// out.selection and out.slack_used from out.predicted_* and the config's
/// slack ladder.  Exposed so the relaxation ladder is testable on
/// hand-built matrices (tests/core/policy_explorer_test.cpp).
void select_policy(const ExplorerConfig& config, PolicyExploration& out);

/// Explore the grid with the predictor and match per §5.2.  `condition`
/// supplies the pairing and utilizations; its timeouts are ignored.
[[nodiscard]] PolicyExploration explore_policies(
    const RtPredictor& predictor, const profiler::RuntimeCondition& condition,
    const ExplorerConfig& config = {});

/// Same result as explore_policies (bit-identical matrices and selection),
/// but cells the memo already holds for this (generation, condition,
/// timeout pair) are reused instead of re-simulated.  On return the memo
/// holds this call's full matrices.  `generation` is typically the serving
/// model's version counter.
[[nodiscard]] PolicyExploration explore_policies_incremental(
    const RtPredictor& predictor, const profiler::RuntimeCondition& condition,
    const ExplorerConfig& config, ExplorationMemo& memo,
    std::uint64_t generation = 0);

}  // namespace stac::core

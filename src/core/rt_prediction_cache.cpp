#include "core/rt_prediction_cache.hpp"

#include <bit>

#include "common/fault_injection.hpp"
#include "obs/metrics.hpp"

namespace stac::core {

RtPredictionCache::Key RtPredictionCache::make_key(
    const queueing::GGkConfig& c) {
  return {std::bit_cast<std::uint64_t>(c.utilization),
          std::bit_cast<std::uint64_t>(c.mean_service),
          std::bit_cast<std::uint64_t>(c.service_cv),
          std::bit_cast<std::uint64_t>(c.timeout_rel),
          std::bit_cast<std::uint64_t>(c.effective_allocation),
          std::bit_cast<std::uint64_t>(c.allocation_ratio),
          std::bit_cast<std::uint64_t>(c.residual_weight),
          std::bit_cast<std::uint64_t>(c.boost_prevalence),
          static_cast<std::uint64_t>(c.servers),
          static_cast<std::uint64_t>(c.queries),
          static_cast<std::uint64_t>(c.warmup),
          c.seed,
          (c.class_level_boost ? 1ULL : 0ULL) |
              (c.fast_events ? 2ULL : 0ULL)};
}

std::size_t RtPredictionCache::KeyHash::operator()(const Key& k) const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint64_t word : k) {
    h ^= word;
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h);
}

std::shared_ptr<const queueing::GGkResult> RtPredictionCache::simulate(
    const queueing::GGkConfig& config) {
  // With chaos armed the simulator consults the global FaultInjector per
  // service draw — results depend on hidden state, so never cache (in
  // either direction: no lookups, no inserts).
  if (!enabled_ || FaultInjector::global().armed())
    return std::make_shared<queueing::GGkResult>(queueing::simulate_ggk(config));

  const Key key = make_key(config);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = map_.find(key); it != map_.end()) {
      ++stats_.hits;
      obs::MetricsRegistry::global().counter("rt_cache.hits").add();
      return it->second;
    }
  }
  obs::MetricsRegistry::global().counter("rt_cache.misses").add();
  auto result =
      std::make_shared<const queueing::GGkResult>(queueing::simulate_ggk(config));
  std::size_t entries = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    if (map_.size() >= capacity_) map_.clear();  // epoch flush, like CRN cache
    map_.try_emplace(key, result);  // a racing identical insert may win: fine
    entries = map_.size();
  }
  obs::MetricsRegistry::global().gauge("rt_cache.size").set(
      static_cast<double>(entries));
  return result;
}

std::vector<std::shared_ptr<const queueing::GGkResult>>
RtPredictionCache::simulate_batch(
    const std::vector<queueing::GGkConfig>& configs) {
  std::vector<std::shared_ptr<const queueing::GGkResult>> out(configs.size());
  if (configs.empty()) return out;
  auto& registry = obs::MetricsRegistry::global();

  if (!enabled_ || FaultInjector::global().armed()) {
    // No storage either way, but the cells still share streams and arena.
    auto fresh = queueing::simulate_ggk_batch(configs);
    for (std::size_t i = 0; i < fresh.size(); ++i)
      out[i] = std::make_shared<const queueing::GGkResult>(
          std::move(fresh[i]));
    return out;
  }

  // Resolve hits and collect the distinct missing keys in first-seen order
  // under one lock pass; the simulations run outside the lock.
  std::vector<Key> keys;
  keys.reserve(configs.size());
  for (const queueing::GGkConfig& c : configs) keys.push_back(make_key(c));
  std::unordered_map<Key, std::size_t, KeyHash> miss_slot;
  std::vector<std::size_t> miss_first;  // index of each key's first miss
  std::uint64_t hits = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < configs.size(); ++i) {
      if (const auto it = map_.find(keys[i]); it != map_.end()) {
        out[i] = it->second;
        ++hits;
      } else if (miss_slot.try_emplace(keys[i], miss_first.size()).second) {
        miss_first.push_back(i);
      } else {
        ++hits;  // duplicate of an in-batch miss: resolved without a run
      }
    }
    stats_.hits += hits;
    stats_.misses += miss_first.size();
  }
  registry.counter("rt_cache.hits").add(hits);
  registry.counter("rt_cache.misses").add(miss_first.size());
  if (miss_first.empty()) return out;

  std::vector<queueing::GGkConfig> to_run;
  to_run.reserve(miss_first.size());
  for (const std::size_t i : miss_first) to_run.push_back(configs[i]);
  auto fresh = queueing::simulate_ggk_batch(to_run);

  std::vector<std::shared_ptr<const queueing::GGkResult>> computed(
      fresh.size());
  for (std::size_t j = 0; j < fresh.size(); ++j)
    computed[j] = std::make_shared<const queueing::GGkResult>(
        std::move(fresh[j]));
  std::size_t entries = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t j = 0; j < computed.size(); ++j) {
      if (map_.size() >= capacity_) map_.clear();  // epoch flush
      map_.try_emplace(keys[miss_first[j]], computed[j]);
    }
    entries = map_.size();
  }
  registry.gauge("rt_cache.size").set(static_cast<double>(entries));
  for (std::size_t i = 0; i < configs.size(); ++i)
    if (out[i] == nullptr) out[i] = computed[miss_slot.at(keys[i])];
  return out;
}

RtPredictionCache::Stats RtPredictionCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void RtPredictionCache::clear() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    stats_ = {};
  }
  obs::MetricsRegistry::global().gauge("rt_cache.size").set(0.0);
}

std::size_t RtPredictionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace stac::core

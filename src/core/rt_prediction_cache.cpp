#include "core/rt_prediction_cache.hpp"

#include <bit>

#include "common/fault_injection.hpp"
#include "obs/metrics.hpp"

namespace stac::core {

RtPredictionCache::Key RtPredictionCache::make_key(
    const queueing::GGkConfig& c) {
  return {std::bit_cast<std::uint64_t>(c.utilization),
          std::bit_cast<std::uint64_t>(c.mean_service),
          std::bit_cast<std::uint64_t>(c.service_cv),
          std::bit_cast<std::uint64_t>(c.timeout_rel),
          std::bit_cast<std::uint64_t>(c.effective_allocation),
          std::bit_cast<std::uint64_t>(c.allocation_ratio),
          std::bit_cast<std::uint64_t>(c.residual_weight),
          std::bit_cast<std::uint64_t>(c.boost_prevalence),
          static_cast<std::uint64_t>(c.servers),
          static_cast<std::uint64_t>(c.queries),
          static_cast<std::uint64_t>(c.warmup),
          c.seed,
          (c.class_level_boost ? 1ULL : 0ULL) |
              (c.fast_events ? 2ULL : 0ULL)};
}

std::size_t RtPredictionCache::KeyHash::operator()(const Key& k) const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint64_t word : k) {
    h ^= word;
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h);
}

std::shared_ptr<const queueing::GGkResult> RtPredictionCache::simulate(
    const queueing::GGkConfig& config) {
  // With chaos armed the simulator consults the global FaultInjector per
  // service draw — results depend on hidden state, so never cache (in
  // either direction: no lookups, no inserts).
  if (!enabled_ || FaultInjector::global().armed())
    return std::make_shared<queueing::GGkResult>(queueing::simulate_ggk(config));

  const Key key = make_key(config);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = map_.find(key); it != map_.end()) {
      ++stats_.hits;
      obs::MetricsRegistry::global().counter("rt_cache.hits").add();
      return it->second;
    }
  }
  obs::MetricsRegistry::global().counter("rt_cache.misses").add();
  auto result =
      std::make_shared<const queueing::GGkResult>(queueing::simulate_ggk(config));
  std::size_t entries = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    if (map_.size() >= capacity_) map_.clear();  // epoch flush, like CRN cache
    map_.try_emplace(key, result);  // a racing identical insert may win: fine
    entries = map_.size();
  }
  obs::MetricsRegistry::global().gauge("rt_cache.size").set(
      static_cast<double>(entries));
  return result;
}

RtPredictionCache::Stats RtPredictionCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void RtPredictionCache::clear() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    stats_ = {};
  }
  obs::MetricsRegistry::global().gauge("rt_cache.size").set(0.0);
}

std::size_t RtPredictionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace stac::core

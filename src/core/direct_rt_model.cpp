#include "core/direct_rt_model.hpp"

#include <cmath>

#include "common/check.hpp"

namespace stac::core {

using profiler::Profile;
using profiler::Profiler;

DirectRtModel::DirectRtModel(DirectRtConfig config)
    : config_(std::move(config)) {}

std::vector<double> DirectRtModel::tabular_row(const Profile& profile) const {
  // Statics (+ optional counter summaries).  The measured dynamic features
  // (queueing delay!) are essentially the prediction target and belong to
  // the feedback loop of the full approach, not to a condition->RT mapper.
  std::vector<double> row = profile.statics;
  if (!config_.image_summaries) return row;
  for (std::size_t r = 0; r < profile.image.rows(); ++r) {
    const auto vals = profile.image.row(r);
    double mean = 0.0;
    for (double v : vals) mean += v;
    mean /= static_cast<double>(vals.size());
    double var = 0.0;
    for (double v : vals) var += (v - mean) * (v - mean);
    row.push_back(mean);
    row.push_back(std::sqrt(var / static_cast<double>(vals.size())));
  }
  return row;
}

void DirectRtModel::fit(const std::vector<Profile>& profiles) {
  STAC_REQUIRE(!profiles.empty());
  std::vector<double> targets;
  targets.reserve(profiles.size());
  for (const auto& p : profiles) targets.push_back(p.norm_mean_rt());

  if (config_.backend == DirectBackend::kCnn) {
    std::vector<ml::ProfileSample> samples;
    samples.reserve(profiles.size());
    for (const auto& p : profiles)
      samples.push_back(Profiler::to_sample(p));
    ml::ConvNetConfig cfg = config_.cnn;
    if (config_.tune_trials > 0 && samples.size() >= 10) {
      // Hold out 25% for tuning (TUNE-style random search).
      const std::size_t n_val = samples.size() / 4;
      std::vector<ml::ProfileSample> tx(samples.begin(),
                                        samples.end() - n_val);
      std::vector<double> ty(targets.begin(), targets.end() - n_val);
      std::vector<ml::ProfileSample> vx(samples.end() - n_val,
                                        samples.end());
      std::vector<double> vy(targets.end() - n_val, targets.end());
      const ml::TuneResult tuned = ml::tune_convnet(
          tx, ty, vx, vy, config_.tune_trials, config_.seed);
      cfg = tuned.best;
    }
    cnn_ = std::make_unique<ml::ConvNet>(cfg);
    cnn_->fit(samples, targets);
  } else {
    Matrix x(0, tabular_row(profiles.front()).size());
    for (const auto& p : profiles) x.append_row(tabular_row(p));
    ml::Dataset data(std::move(x), targets);
    if (config_.backend == DirectBackend::kLinear) {
      linear_ = std::make_unique<ml::LinearRegression>();
      linear_->fit(data);
    } else {
      ml::TreeConfig tc = config_.tree;
      tc.seed = config_.seed;
      tree_ = std::make_unique<ml::DecisionTree>(tc);
      tree_->fit(data);
    }
  }
  trained_ = true;
}

double DirectRtModel::predict(const Profile& profile) const {
  STAC_REQUIRE_MSG(trained_, "predict before fit");
  double rt = 0.0;
  switch (config_.backend) {
    case DirectBackend::kLinear:
      rt = linear_->predict(tabular_row(profile));
      break;
    case DirectBackend::kTree:
      rt = tree_->predict(tabular_row(profile));
      break;
    case DirectBackend::kCnn:
      rt = cnn_->predict(Profiler::to_sample(profile));
      break;
  }
  // Response time is at least one service time; negative predictions are
  // linear-regression extrapolation artefacts (kept mild, not hidden).
  return std::max(rt, 0.05);
}

}  // namespace stac::core

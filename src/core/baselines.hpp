// The competing cache-allocation approaches of §5.2 / Fig. 8:
//   1. No cache sharing      — private ways only (the normalization base)
//   2. Static allocation     — share fully or not at all, whichever is best
//   3. dCat                  — all shared ways to the workload with the
//                              greatest profiled solo speedup [Xu et al.]
//   4. dynaSprint            — timeout tuned for peak performance at low
//                              arrival rate, reused (queueing-delay-blind)
//                              at the actual rate [Huang et al.]
// The model-driven policy and its simple-ML ablation live in
// policy_explorer.hpp.
#pragma once

#include <string>

#include "profiler/profiler.hpp"
#include "queueing/testbed.hpp"

namespace stac::core {

struct PolicySelection {
  std::string name;
  double timeout_primary = cat::kNeverBoostTimeout;
  double timeout_collocated = cat::kNeverBoostTimeout;
};

/// Ground-truth evaluation of a timeout pair under a condition's pairing
/// and utilizations (the Fig. 8 measurement step).
[[nodiscard]] queueing::TestbedResult evaluate_policy(
    const profiler::Profiler& profiler,
    const profiler::RuntimeCondition& condition, double timeout_primary,
    double timeout_collocated, std::size_t completions = 2500);

/// Combined score used by baseline selectors: mean of both services'
/// normalized p95 response times (lower is better).
[[nodiscard]] double combined_norm_p95(
    const profiler::Profiler& profiler,
    const profiler::RuntimeCondition& condition,
    const queueing::TestbedResult& result);

[[nodiscard]] PolicySelection select_no_sharing();

/// Static allocation: tries the four always/never combinations on the
/// testbed and keeps the best (operators configure statically after
/// measuring).
[[nodiscard]] PolicySelection select_static(
    const profiler::Profiler& profiler,
    const profiler::RuntimeCondition& condition,
    std::size_t completions = 1500);

/// dCat: shared ways go wholly to the workload with the greater profiled
/// solo speedup; the other keeps private ways only.
[[nodiscard]] PolicySelection select_dcat(
    const profiler::Profiler& profiler,
    const profiler::RuntimeCondition& condition);

/// dynaSprint: grid-search the timeout pair on the testbed at
/// `tuning_utilization`, then reuse the winner at the actual utilization —
/// precisely the queueing-delay blindness the paper exploits.
[[nodiscard]] PolicySelection select_dynasprint(
    const profiler::Profiler& profiler,
    const profiler::RuntimeCondition& condition,
    const std::vector<double>& grid, double tuning_utilization = 0.3,
    std::size_t completions = 1200);

}  // namespace stac::core

#include "serve/epoch_planner.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stac::serve {

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

EpochPlanner::EpochPlanner(PlannerConfig config)
    : config_(std::move(config)), explore_memos_(config_.memo_conditions) {
  STAC_REQUIRE(config_.util_lo > 0.0 && config_.util_lo <= config_.util_hi);
  STAC_REQUIRE(config_.util_quantum >= 0.0);
}

double EpochPlanner::snap_utilization(double u) const {
  if (config_.util_quantum > 0.0)
    u = config_.util_lo +
        std::round((u - config_.util_lo) / config_.util_quantum) *
            config_.util_quantum;
  return std::clamp(u, config_.util_lo, config_.util_hi);
}

PlanOutcome EpochPlanner::plan(ModelSnapshot<ServingModel>& models,
                               double raw_util_primary,
                               double raw_util_collocated) {
  auto& registry = obs::MetricsRegistry::global();
  PlanOutcome out;
  const double t0 = now_seconds();

  profiler::RuntimeCondition cond = config_.base_condition;
  cond.util_primary = snap_utilization(raw_util_primary);
  cond.util_collocated = snap_utilization(raw_util_collocated);
  out.planned_condition = cond;

  // Pin the current model bundle for the whole planning step.  No bundle
  // published yet (cold start, or serving from a checkpoint while the
  // refit runs in the background) is a *hold*, not an error: the caller's
  // applied vector — initial or recovered — keeps serving.
  auto guard = models.acquire();
  if (!guard) {
    out.model_unavailable_hold = true;
    registry.counter("serve.model_unavailable_holds").add();
    out.plan_seconds = now_seconds() - t0;
    return out;
  }
  out.model_version = guard->version;
  if (guard->version != last_model_version_) {
    out.model_swap_observed = true;
    last_model_version_ = guard->version;
    registry.counter("serve.model_swaps_observed").add();
  }

  // Staleness probe: one EA query (RtPredictor::probe_rung — no
  // simulation, no feedback loop) reveals which ladder rung answers for
  // this condition.  Against drift and hot-swap the memoed rung is exact —
  // only the utilizations vary epoch to epoch (the rest of `cond` is
  // copied from base_condition) and the version is the bundle stamp, both
  // compared bitwise below.  The TTL bounds how long an *environmental*
  // model failure can hide behind the memo.
  const bool probe_reusable =
      probe_valid_ && probe_version_ == guard->version &&
      probe_age_ + 1 < config_.probe_ttl_epochs &&
      std::bit_cast<std::uint64_t>(probe_util_primary_) ==
          std::bit_cast<std::uint64_t>(cond.util_primary) &&
      std::bit_cast<std::uint64_t>(probe_util_collocated_) ==
          std::bit_cast<std::uint64_t>(cond.util_collocated);
  if (probe_reusable) {
    ++probe_age_;
  } else {
    probe_rung_ = guard->pred().probe_rung(cond);
    probe_valid_ = true;
    probe_version_ = guard->version;
    probe_age_ = 0;
    probe_util_primary_ = cond.util_primary;
    probe_util_collocated_ = cond.util_collocated;
  }
  out.probe_rung = probe_rung_;
  if (probe_rung_ > config_.max_planning_rung) {
    // Model too degraded to plan on: hold the last-known-good vector
    // rather than steering traffic with rung-4 guesses.
    out.stale_hold = true;
    registry.counter("serve.stale_holds").add();
    obs::instant("serve.stale_hold", "serve");
    out.plan_seconds = now_seconds() - t0;
    return out;
  }

  // Re-plan: the §5.2 sweep against the pinned predictor.  In incremental
  // mode the matrices memoed for this quantized condition answer every
  // cell whose (timeout pair, model version) is unchanged — the
  // stationary-epoch path the sub-10ms plan budget relies on.  The pool
  // keeps one memo per recently-seen condition, so an estimate
  // oscillating across a quantization boundary revisits warm memos
  // instead of thrashing one.
  const core::PolicyExploration plan =
      config_.incremental
          ? core::explore_policies_incremental(guard->pred(), cond,
                                               config_.explorer,
                                               explore_memos_.acquire(cond),
                                               guard->version)
          : core::explore_policies(guard->pred(), cond, config_.explorer);
  out.cells_simulated = plan.cells_simulated;
  out.cells_reused = plan.cells_reused;
  const double plan_elapsed = now_seconds() - t0;
  if (config_.plan_deadline_seconds > 0.0 &&
      plan_elapsed > config_.plan_deadline_seconds) {
    // Deadline miss: discard the late selection — the caller keeps
    // serving the last-known-good (ladder-fallback) vector.  The epoch
    // cadence stays fixed; overload shows up as misses + shed, not as a
    // silently stretched control period.
    out.deadline_miss = true;
    registry.counter("serve.plan.deadline_miss").add();
    obs::instant("serve.plan_deadline_miss", "serve");
  } else {
    out.timeout_primary = plan.selection.timeout_primary;
    out.timeout_collocated = plan.selection.timeout_collocated;
    out.replanned = true;
    registry.counter("serve.replans").add();
  }
  out.plan_seconds = now_seconds() - t0;
  return out;
}

}  // namespace stac::serve

// Crash-safe controller state: versioned, checksummed checkpoints.
//
// The online controller's hard-won state — the last-known-good timeout
// vector, the estimator's EWMA trackers, the epoch counter, the CRN seeds
// the planning sweep keys its memoization on, and a reference to the
// profile-library snapshot the serving model was built from — all lives in
// process memory.  A SIGKILL mid-epoch loses it, and a restarted controller
// that re-plans from a cold estimator steers traffic with garbage for the
// whole warmup window.  A ControllerCheckpoint makes that state durable:
//
//   * format: line-oriented text (like profile files), one `stac-ckpt vN`
//     header, fields at max_digits10 so doubles round-trip bit-exactly, and
//     an FNV-1a64 `checksum <hex>` trailer over every preceding byte;
//   * write: serialized snapshot -> write_file_atomic (temp + fsync +
//     rename), so a crash mid-write leaves the previous checkpoint intact
//     and a reader can never observe a torn file;
//   * load: resilient in the spirit of load_profiles_resilient — a missing
//     file, bad magic, bad version, truncation or a checksum mismatch
//     quarantines the checkpoint (report, never throw, never serve from a
//     file with a bad checksum).
//
// The "serve.checkpoint.write" / "serve.checkpoint.load" fault points let
// chaos tests provoke both failure directions deterministically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace stac::serve {

/// Current checkpoint format version.
inline constexpr int kCheckpointVersion = 1;

/// Per-workload durable state: the applied (last-known-good) timeout plus
/// the estimator's exponentially-decayed trackers and lifetime counters.
/// Window contents are deliberately NOT persisted — they refill from live
/// traffic within one epoch, while the EWMAs carry the "instantaneous"
/// signal across the restart.
struct WorkloadCheckpoint {
  double timeout = 1.0;
  double ewma_queue_delay = 0.0;
  double ewma_queue_time = 0.0;
  bool ewma_queue_seeded = false;
  double ewma_service = 0.0;
  double ewma_service_time = 0.0;
  bool ewma_service_seeded = false;
  std::uint64_t arrivals = 0;   ///< lifetime event counts (continuity only)
  std::uint64_t completions = 0;
  std::uint64_t timeouts = 0;
};

struct ControllerCheckpoint {
  std::uint64_t epoch = 0;        ///< epochs completed when written
  double time = 0.0;              ///< runtime clock at the writing epoch
  std::uint64_t condition_seed = 0;  ///< base_condition.seed (CRN identity)
  std::uint64_t predictor_seed = 0;  ///< RtPredictorConfig::seed (CRN identity)
  std::uint64_t model_version = 0;   ///< bundle version last planned against
  /// Reference to the profile-library snapshot the serving model refits
  /// from after recovery ("-" = none recorded).
  std::string library_ref = "-";
  std::size_t library_size = 0;
  std::uint64_t replans = 0;
  std::uint64_t stale_holds = 0;
  std::uint64_t deadline_misses = 0;
  std::vector<WorkloadCheckpoint> workloads;
};

/// Serialize + checksum + atomically replace `path`.  Consults the
/// "serve.checkpoint.write" fault point (kThrow aborts the write; the old
/// file stays intact).  Throws on I/O failure or injected fault.
void save_checkpoint(const std::string& path,
                     const ControllerCheckpoint& checkpoint);

/// Outcome of a resilient checkpoint load.
struct CheckpointLoadReport {
  std::optional<ControllerCheckpoint> checkpoint;  ///< engaged iff clean
  bool quarantined = false;  ///< true on any damage; `reason` says what
  std::string reason;

  [[nodiscard]] bool clean() const { return checkpoint.has_value(); }
};

/// Best-effort load: never throws on bad content, never returns a
/// checkpoint whose checksum did not verify.  Consults the
/// "serve.checkpoint.load" fault point.
[[nodiscard]] CheckpointLoadReport load_checkpoint(const std::string& path);

/// The canonical checkpoint file inside a checkpoint directory.
[[nodiscard]] std::string checkpoint_path(const std::string& directory);

}  // namespace stac::serve

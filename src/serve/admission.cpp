#include "serve/admission.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace stac::serve {

namespace {

/// SplitMix64 finalizer — the same full-avalanche mix the fault injector
/// uses for its deterministic decision draws.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double decision_uniform(std::uint64_t seed, std::uint64_t workload,
                        std::uint64_t ordinal) {
  const std::uint64_t h = mix64(mix64(seed ^ mix64(workload)) ^ ordinal);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

AdmissionController::AdmissionController(const ArrivalIngest& ingest,
                                         std::size_t workloads,
                                         AdmissionConfig config)
    : ingest_(ingest), config_(config), wl_(std::max<std::size_t>(1, workloads)),
      last_offered_(wl_.size(), 0) {
  STAC_REQUIRE(config_.target_occupancy >= 0.0 &&
               config_.target_occupancy < config_.full_occupancy);
  STAC_REQUIRE(config_.max_shed >= 0.0 && config_.max_shed < 1.0);
  STAC_REQUIRE(config_.lag_weight >= 0.0);
  STAC_REQUIRE(config_.lag_grace >= 0.0 && config_.lag_grace < 1.0);
  STAC_REQUIRE(config_.fairness_strength >= 0.0);
}

double AdmissionController::pressure() const {
  const double occ = static_cast<double>(ingest_.approx_size()) /
                     static_cast<double>(ingest_.capacity());
  const double from_depth =
      (occ - config_.target_occupancy) /
      (config_.full_occupancy - config_.target_occupancy);
  // Lag contributes only past the grace fraction, rescaled so a plan that
  // consumed its whole budget still adds the full lag_weight.
  const double lag = epoch_lag_.load(std::memory_order_relaxed);
  const double over = std::max(0.0, lag - config_.lag_grace) /
                      std::max(1e-9, 1.0 - config_.lag_grace);
  const double from_lag = config_.lag_weight * std::min(over, 4.0);
  return std::clamp(from_depth, 0.0, 1.0) * config_.max_shed + from_lag;
}

double AdmissionController::shed_probability(std::size_t w) const {
  if (w >= wl_.size()) return 0.0;
  const double p =
      pressure() * wl_[w].scale.load(std::memory_order_relaxed);
  return std::clamp(p, 0.0, config_.max_shed);
}

bool AdmissionController::admit(std::size_t w) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  if (w >= wl_.size()) {
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return true;  // ungoverned id: the estimator ignores it anyway
  }
  PerWorkload& s = wl_[w];
  const std::uint64_t ordinal =
      s.offered.fetch_add(1, std::memory_order_relaxed);
  const double p = shed_probability(w);
  if (p > 0.0 && decision_uniform(config_.seed, w, ordinal) < p) {
    s.shed.fetch_add(1, std::memory_order_relaxed);
    shed_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.admission.shed");
    return false;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t AdmissionController::shed_for(std::size_t w) const {
  STAC_REQUIRE(w < wl_.size());
  return wl_[w].shed.load(std::memory_order_relaxed);
}

void AdmissionController::note_epoch(double epoch_lag) {
  // A non-finite lag (a clock glitch upstream, 0/0 from an unset deadline)
  // must not poison pressure() for every producer until the next epoch.
  if (!std::isfinite(epoch_lag)) epoch_lag = 0.0;
  epoch_lag_.store(std::max(0.0, epoch_lag), std::memory_order_relaxed);

  // Fairness: scale each workload's shed probability by how far its offered
  // share last epoch exceeded the fair share.  Over-share tenants shed
  // more; under-share tenants shed less — never more than max_shed either
  // way (admit() clamps).
  std::uint64_t total = 0;
  std::vector<std::uint64_t> epoch_offered(wl_.size(), 0);
  for (std::size_t w = 0; w < wl_.size(); ++w) {
    const std::uint64_t now = wl_[w].offered.load(std::memory_order_relaxed);
    epoch_offered[w] = now - last_offered_[w];
    last_offered_[w] = now;
    total += epoch_offered[w];
  }
  const double fair = 1.0 / static_cast<double>(wl_.size());
  for (std::size_t w = 0; w < wl_.size(); ++w) {
    double scale = 1.0;
    // The all-idle epoch (total == 0) must keep every scale at 1.0: the
    // share would be 0/0 and a NaN scale here would flow straight into
    // shed_probability for every producer until the next epoch.
    if (config_.fairness_strength > 0.0 && total > 0) {
      const double share = static_cast<double>(epoch_offered[w]) /
                           static_cast<double>(total);
      // A silent workload (share 0) keeps scale at the floor rather than 0,
      // so a tenant cannot dodge shedding entirely by bursting in pulses.
      scale = std::pow(std::max(share / fair, 0.25),
                       config_.fairness_strength);
      // Belt over the braces: whatever the exponent does, a non-finite
      // scale never reaches the producers' shed coin.
      if (!std::isfinite(scale)) scale = 1.0;
    }
    wl_[w].scale.store(scale, std::memory_order_relaxed);
  }
  obs::set_gauge("serve.admission.shed_fraction", shed_fraction());
  obs::set_gauge("serve.admission.epoch_lag",
                 epoch_lag_.load(std::memory_order_relaxed));
}

}  // namespace stac::serve

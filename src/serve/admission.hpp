// Overload protection in front of the ingest ring: probabilistic,
// per-workload-fair load shedding.
//
// The ring already refuses to block (drop-not-block), but by the time it is
// dropping, telemetry is already gone and the G/G/k backlog behind the
// proxies is already minutes deep.  The admission controller sheds *queries*
// earlier and fairly, from two pressure signals:
//
//   * queue depth — the ring's instantaneous occupancy fraction.  Shedding
//     ramps linearly from `target_occupancy` to `full_occupancy`, where it
//     saturates at `max_shed` (an admit floor always survives, so the
//     estimator keeps seeing a trickle of every workload and recovery needs
//     no out-of-band signal);
//   * epoch lag — how far the controller's last planning epoch overran its
//     deadline budget (set_epoch_lag, written by the controller each epoch).
//     A control plane that cannot keep up sheds load instead of letting the
//     backlog compound.
//
// Fairness: the controller re-computes per-workload scale factors each
// epoch from the previous epoch's offered counts — a workload offering more
// than its fair share sheds proportionally more, so one tenant's burst
// cannot starve the others (the Com-CAS isolation-under-pressure framing).
//
// Decisions are a pure hash of (seed, workload, per-workload attempt
// ordinal): deterministic for a fixed offered sequence, lock-free, and
// callable from any number of producer threads.  Shed queries are counted
// in a dedicated `shed` counter — NEVER folded into the ring's `dropped`
// accounting; the two failure modes are distinct and both observable.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "serve/arrival_ingest.hpp"

namespace stac::serve {

struct AdmissionConfig {
  /// Ring occupancy fraction where shedding starts (0..1).
  double target_occupancy = 0.5;
  /// Ring occupancy fraction where shedding saturates at max_shed.
  double full_occupancy = 0.9;
  /// Shed-probability ceiling; 1 - max_shed is the guaranteed admit floor.
  double max_shed = 0.95;
  /// Additional shed probability per unit of epoch lag (lag 1.0 = the last
  /// plan consumed its entire deadline budget).
  double lag_weight = 0.25;
  /// Budget fraction below which epoch lag contributes nothing — a healthy
  /// plan using a sliver of its budget must not shed at idle.
  double lag_grace = 0.5;
  /// Fairness exponent: per-workload shed scale = (share / fair_share) ^
  /// strength.  0 disables fairness (uniform shedding).
  double fairness_strength = 1.0;
  std::uint64_t seed = 0x5EDD;
};

class AdmissionController {
 public:
  /// `ingest` supplies the queue-depth signal and must outlive the
  /// controller.  `workloads` bounds the fairness bookkeeping; out-of-range
  /// workload ids are admitted ungoverned (the estimator ignores them too).
  AdmissionController(const ArrivalIngest& ingest, std::size_t workloads,
                      AdmissionConfig config = {});

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Admit-or-shed decision for one query of workload `w`.  Lock-free and
  /// safe from any producer thread.  Returns false when the query should be
  /// shed (counted per workload).
  [[nodiscard]] bool admit(std::size_t w);

  /// Current shed probability for workload `w` (diagnostic; what admit()
  /// would flip its coin against right now).
  [[nodiscard]] double shed_probability(std::size_t w) const;

  /// Controller feedback, once per epoch: updates the epoch-lag signal and
  /// re-derives the fairness scales from the epoch's offered counts.
  /// Single-caller (the control thread).
  void note_epoch(double epoch_lag);

  /// Lifetime accounting.  offered == admitted + shed (exact once
  /// producers have quiesced).
  [[nodiscard]] std::uint64_t offered() const {
    return offered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shed() const {
    return shed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shed_for(std::size_t w) const;
  [[nodiscard]] double shed_fraction() const {
    const std::uint64_t off = offered();
    return off == 0 ? 0.0
                    : static_cast<double>(shed()) / static_cast<double>(off);
  }

 private:
  struct PerWorkload {
    /// Offer ordinal: both the fairness sample and the decision salt.
    alignas(64) std::atomic<std::uint64_t> offered{0};
    std::atomic<std::uint64_t> shed{0};
    /// Fairness scale applied to the global pressure (written by
    /// note_epoch, read by producers).
    std::atomic<double> scale{1.0};
  };

  [[nodiscard]] double pressure() const;

  const ArrivalIngest& ingest_;
  AdmissionConfig config_;
  std::vector<PerWorkload> wl_;
  std::atomic<double> epoch_lag_{0.0};
  std::atomic<std::uint64_t> offered_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  /// note_epoch's view of each workload's offered count last epoch.
  std::vector<std::uint64_t> last_offered_;
};

}  // namespace stac::serve

// The planning core of a control epoch, factored out of OnlineController
// so one implementation serves both control planes:
//   * the standalone OnlineController (one node, one estimator), and
//   * the FleetCoordinator (N shards, fleet-merged conditions, one global
//     plan pushed to every node).
//
// plan() is steps 3-4 of the epoch loop: pin the current ServingModel,
// quantize the utilization estimates onto the profiled Table-2 axis,
// probe model staleness (TTL-memoized), and run the §5.2 policy sweep
// (memoized/incremental) under the optional planning deadline.  It owns
// the state those steps memo across epochs — the ExplorationMemoPool, the
// staleness-probe memo, and the last-seen bundle version — so a caller
// that feeds identical estimates and models gets bit-identical selections
// regardless of which control plane it is (the N=1 fleet identity).
//
// The caller owns everything around the plan: draining, estimation,
// publishing the selected vector, admission feedback, CAT watchdog,
// checkpoints, and its own totals.
#pragma once

#include <cstdint>

#include "core/policy_explorer.hpp"
#include "profiler/runtime_condition.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/serving_model.hpp"

namespace stac::serve {

/// Planning knobs — the subset of ControllerConfig the sweep itself needs.
/// Field semantics are documented on ControllerConfig; OnlineController
/// and FleetCoordinator both build one of these from their own configs.
struct PlannerConfig {
  profiler::RuntimeCondition base_condition;
  core::ExplorerConfig explorer;
  double util_quantum = 0.05;
  double util_lo = 0.25;
  double util_hi = 0.95;
  core::DegradationRung max_planning_rung =
      core::DegradationRung::kNearestNeighbor;
  std::uint64_t probe_ttl_epochs = 1;
  bool incremental = true;
  std::size_t memo_conditions = 4;
  double plan_deadline_seconds = 0.0;
};

/// What one plan() call decided.  Exactly one of the four outcome booleans
/// is set per call; timeout_* are the selection and only valid when
/// `replanned` (on a hold the caller keeps its last-known-good vector).
struct PlanOutcome {
  bool model_unavailable_hold = false;
  bool stale_hold = false;
  bool deadline_miss = false;
  bool replanned = false;
  /// The pinned bundle's version differed from the previous plan's.
  bool model_swap_observed = false;
  profiler::RuntimeCondition planned_condition;
  core::DegradationRung probe_rung = core::DegradationRung::kPrimaryModel;
  std::uint64_t model_version = 0;
  double plan_seconds = 0.0;
  std::size_t cells_simulated = 0;
  std::size_t cells_reused = 0;
  double timeout_primary = 0.0;
  double timeout_collocated = 0.0;
};

class EpochPlanner {
 public:
  explicit EpochPlanner(PlannerConfig config);

  /// Quantize a raw utilization estimate onto the profiled axis (snap to
  /// util_quantum from util_lo, clamp to [util_lo, util_hi]).
  [[nodiscard]] double snap_utilization(double u) const;

  /// Run the planning step for this epoch's raw utilization estimates.
  /// Call from one thread only (the memo state is single-writer, like the
  /// rest of the control loop).
  PlanOutcome plan(ModelSnapshot<ServingModel>& models,
                   double raw_util_primary, double raw_util_collocated);

  /// Seed the version memo from a recovered checkpoint so the first
  /// post-recovery publish registers as an observed swap.
  void note_model_version(std::uint64_t version) {
    last_model_version_ = version;
  }
  [[nodiscard]] std::uint64_t last_model_version() const {
    return last_model_version_;
  }

 private:
  PlannerConfig config_;
  /// Prior-epoch sweep matrices for incremental re-planning, one memo per
  /// recently-seen quantized condition (PlannerConfig::memo_conditions),
  /// keyed on the pinned bundle's version as the generation stamp.
  core::ExplorationMemoPool explore_memos_;
  /// Staleness-probe memo (see PlannerConfig::probe_ttl_epochs): the last
  /// probed rung plus the inputs it is valid for and how many epochs it
  /// has answered.
  bool probe_valid_ = false;
  std::uint64_t probe_version_ = 0;
  std::uint64_t probe_age_ = 0;
  double probe_util_primary_ = 0.0;
  double probe_util_collocated_ = 0.0;
  core::DegradationRung probe_rung_ = core::DegradationRung::kPrimaryModel;
  std::uint64_t last_model_version_ = 0;
};

}  // namespace stac::serve

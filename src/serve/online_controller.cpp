#include "serve/online_controller.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>

#include "common/check.hpp"
#include "common/fault_injection.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stac::serve {

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

OnlineController::OnlineController(ArrivalIngest& ingest,
                                   ModelSnapshot<ServingModel>& models,
                                   ControllerConfig config,
                                   cat::CatController* cat)
    : ingest_(ingest), models_(models), config_(std::move(config)), cat_(cat),
      estimator_(2, config_.servers, config_.estimator),
      batch_(std::max<std::size_t>(1, config_.drain_batch)),
      explore_memos_(config_.memo_conditions) {
  STAC_REQUIRE(config_.util_lo > 0.0 && config_.util_lo <= config_.util_hi);
  STAC_REQUIRE(config_.util_quantum >= 0.0);
  if (cat_ != nullptr) STAC_REQUIRE(cat_->workload_count() >= 2);
  timeouts_[0].store(config_.base_condition.timeout_primary,
                     std::memory_order_relaxed);
  timeouts_[1].store(config_.base_condition.timeout_collocated,
                     std::memory_order_relaxed);
}

double OnlineController::snap_utilization(double u) const {
  if (config_.util_quantum > 0.0)
    u = config_.util_lo +
        std::round((u - config_.util_lo) / config_.util_quantum) *
            config_.util_quantum;
  return std::clamp(u, config_.util_lo, config_.util_hi);
}

void OnlineController::mirror_to_cat(const QueryEvent& event) {
  // Keep the hardware view in step with the proxies' grants: a fired STAP
  // timeout boosts the class (refcounted, lease-stamped for the watchdog),
  // a boosted completion releases one grant.  Degraded workloads ignore
  // boosts inside CatController; spurious unboosts are counted no-ops —
  // both are exactly the resilience semantics the offline stack has.
  if (event.kind == EventKind::kTimeout) {
    cat_->boost(event.workload, event.time);
  } else if (event.kind == EventKind::kCompletion && event.boosted) {
    cat_->unboost(event.workload);
  }
}

EpochReport OnlineController::run_epoch(double now) {
  STAC_TRACE_SPAN(span, "serve.epoch", "serve");
  auto& registry = obs::MetricsRegistry::global();

  // Chaos hook: a kThrow here models the control thread dying mid-tick —
  // before the epoch counter moves, so a recovered controller re-runs the
  // tick rather than skipping it.
  FaultInjector::global().check("serve.controller.epoch");

  EpochReport report;
  report.epoch = ++totals_.epochs;
  report.now = now;

  // 1. Drain everything published so far and fold it in.
  for (;;) {
    const std::size_t n = ingest_.drain(batch_);
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) {
      estimator_.observe(batch_[i]);
      if (cat_ != nullptr) mirror_to_cat(batch_[i]);
    }
    report.events_drained += n;
  }
  totals_.events_drained += report.events_drained;
  registry.counter("serve.events_drained").add(report.events_drained);

  // 2. Rebuild the runtime condition from live estimates.
  WorkloadEstimate est_p = estimator_.estimate(0, now);
  WorkloadEstimate est_c = estimator_.estimate(1, now);
  report.warm = est_p.warm && est_c.warm;

  const double t0 = now_seconds();
  if (report.warm) {
    profiler::RuntimeCondition cond = config_.base_condition;
    cond.util_primary = snap_utilization(est_p.utilization);
    cond.util_collocated = snap_utilization(est_c.utilization);
    report.planned_condition = cond;

    // 3. Pin the current model bundle for the whole planning step.  No
    // bundle published yet (cold start, or serving from a checkpoint while
    // the refit runs in the background) is a *hold*, not an error: the
    // applied vector — initial or recovered — keeps serving.
    auto guard = models_.acquire();
    if (!guard) {
      report.model_unavailable_hold = true;
      ++totals_.model_unavailable_holds;
      registry.counter("serve.model_unavailable_holds").add();
    } else {
      report.model_version = guard->version;
      if (guard->version != last_model_version_) {
        ++totals_.model_swaps_observed;
        last_model_version_ = guard->version;
        registry.counter("serve.model_swaps_observed").add();
      }

      // Staleness probe: one EA query (RtPredictor::probe_rung — no
      // simulation, no feedback loop) reveals which ladder rung answers
      // for this condition.  Against drift and hot-swap the memoed rung is
      // exact — only the utilizations vary epoch to epoch (the rest of
      // `cond` is copied from base_condition) and the version is the
      // bundle stamp, both compared bitwise below.  The TTL bounds how
      // long an *environmental* model failure can hide behind the memo.
      const bool probe_reusable =
          probe_valid_ && probe_version_ == guard->version &&
          probe_age_ + 1 < config_.probe_ttl_epochs &&
          std::bit_cast<std::uint64_t>(probe_util_primary_) ==
              std::bit_cast<std::uint64_t>(cond.util_primary) &&
          std::bit_cast<std::uint64_t>(probe_util_collocated_) ==
              std::bit_cast<std::uint64_t>(cond.util_collocated);
      if (probe_reusable) {
        ++probe_age_;
      } else {
        probe_rung_ = guard->pred().probe_rung(cond);
        probe_valid_ = true;
        probe_version_ = guard->version;
        probe_age_ = 0;
        probe_util_primary_ = cond.util_primary;
        probe_util_collocated_ = cond.util_collocated;
      }
      report.probe_rung = probe_rung_;
      if (probe_rung_ > config_.max_planning_rung) {
        // 3b. Model too degraded to plan on: hold the last-known-good
        // vector rather than steering traffic with rung-4 guesses.
        report.stale_hold = true;
        ++totals_.stale_holds;
        registry.counter("serve.stale_holds").add();
        obs::instant("serve.stale_hold", "serve");
      } else {
        // 4. Re-plan: the §5.2 sweep against the pinned predictor.  In
        // incremental mode the matrices memoed for this quantized
        // condition answer every cell whose (timeout pair, model version)
        // is unchanged — the stationary-epoch path the sub-10ms plan
        // budget relies on.  The pool keeps one memo per recently-seen
        // condition, so an estimate oscillating across a quantization
        // boundary revisits warm memos instead of thrashing one.
        const core::PolicyExploration plan =
            config_.incremental
                ? core::explore_policies_incremental(
                      guard->pred(), cond, config_.explorer,
                      explore_memos_.acquire(cond), guard->version)
                : core::explore_policies(guard->pred(), cond,
                                         config_.explorer);
        report.cells_simulated = plan.cells_simulated;
        report.cells_reused = plan.cells_reused;
        const double plan_elapsed = now_seconds() - t0;
        if (config_.plan_deadline_seconds > 0.0 &&
            plan_elapsed > config_.plan_deadline_seconds) {
          // Deadline miss: discard the late selection and keep serving the
          // last-known-good (ladder-fallback) vector.  The epoch cadence
          // stays fixed; overload shows up as misses + shed, not as a
          // silently stretched control period.
          report.deadline_miss = true;
          ++totals_.deadline_misses;
          registry.counter("serve.plan.deadline_miss").add();
          obs::instant("serve.plan_deadline_miss", "serve");
        } else {
          timeouts_[0].store(plan.selection.timeout_primary,
                             std::memory_order_relaxed);
          timeouts_[1].store(plan.selection.timeout_collocated,
                             std::memory_order_relaxed);
          report.replanned = true;
          ++totals_.replans;
          registry.counter("serve.replans").add();
        }
      }
    }
  }
  report.plan_seconds = now_seconds() - t0;
  registry.latency("serve.epoch_plan_seconds").record(report.plan_seconds);

  // Overload feedback: tell the admission controller how much of the
  // deadline budget the plan consumed (lag 1.0 = the whole budget) and let
  // it re-derive the fairness scales from this epoch's offered counts.
  if (config_.admission != nullptr) {
    const double lag =
        config_.plan_deadline_seconds > 0.0
            ? report.plan_seconds / config_.plan_deadline_seconds
            : 0.0;
    config_.admission->note_epoch(lag);
  }

  // 5. Grant watchdog: no boost lease outlives its budget.
  if (cat_ != nullptr) {
    report.watchdog_revocations = cat_->poll_watchdog(now);
    totals_.watchdog_revocations += report.watchdog_revocations;
    if (report.watchdog_revocations > 0)
      registry.counter("serve.watchdog_revocations")
          .add(report.watchdog_revocations);
  }

  // 6. Durable state at the configured cadence.  A failed write (disk
  // trouble, injected "serve.checkpoint.write" fault) is survived and
  // counted — the previous checkpoint on disk stays valid, and serving is
  // never gated on storage.
  if (!config_.checkpoint.directory.empty() &&
      config_.checkpoint.every_n_epochs > 0 &&
      report.epoch % config_.checkpoint.every_n_epochs == 0) {
    try {
      checkpoint_now(now);
      report.checkpoint_written = true;
    } catch (const std::exception&) {
      ++totals_.checkpoint_failures;
      registry.counter("serve.checkpoint.write_failures").add();
    }
  }

  report.timeout_primary = timeouts_[0].load(std::memory_order_relaxed);
  report.timeout_collocated = timeouts_[1].load(std::memory_order_relaxed);
  registry.gauge("serve.timeout_primary").set(report.timeout_primary);
  registry.gauge("serve.timeout_collocated").set(report.timeout_collocated);
  span.arg("drained", static_cast<std::uint64_t>(report.events_drained));
  span.arg("replanned", static_cast<std::uint64_t>(report.replanned));
  return report;
}

ControllerCheckpoint OnlineController::make_checkpoint(double now) const {
  ControllerCheckpoint ckpt;
  ckpt.epoch = totals_.epochs;
  ckpt.time = now;
  ckpt.condition_seed = config_.base_condition.seed;
  ckpt.predictor_seed = config_.checkpoint.predictor_seed;
  ckpt.model_version = last_model_version_;
  ckpt.library_ref =
      config_.checkpoint.library_ref.empty() ? "-" : config_.checkpoint.library_ref;
  ckpt.library_size = config_.checkpoint.library_size;
  ckpt.replans = totals_.replans;
  ckpt.stale_holds = totals_.stale_holds;
  ckpt.deadline_misses = totals_.deadline_misses;
  ckpt.workloads.resize(2);
  for (std::size_t w = 0; w < 2; ++w) {
    const auto est = estimator_.snapshot_workload(w);
    WorkloadCheckpoint& out = ckpt.workloads[w];
    out.timeout = timeouts_[w].load(std::memory_order_relaxed);
    out.ewma_queue_delay = est.ewma_queue_delay;
    out.ewma_queue_time = est.ewma_queue_time;
    out.ewma_queue_seeded = est.ewma_queue_seeded;
    out.ewma_service = est.ewma_service;
    out.ewma_service_time = est.ewma_service_time;
    out.ewma_service_seeded = est.ewma_service_seeded;
    out.arrivals = est.arrivals;
    out.completions = est.completions;
    out.timeouts = est.timeouts;
  }
  return ckpt;
}

void OnlineController::checkpoint_now(double now) {
  STAC_REQUIRE_MSG(!config_.checkpoint.directory.empty(),
                   "checkpoint_now without a checkpoint directory");
  save_checkpoint(checkpoint_path(config_.checkpoint.directory),
                  make_checkpoint(now));
  ++totals_.checkpoints_written;
}

void OnlineController::recover(const ControllerCheckpoint& checkpoint,
                               double now) {
  STAC_REQUIRE_MSG(checkpoint.workloads.size() == 2,
                   "checkpoint does not describe a primary/collocated pair");
  for (std::size_t w = 0; w < 2; ++w) {
    const WorkloadCheckpoint& in = checkpoint.workloads[w];
    STAC_REQUIRE_MSG(std::isfinite(in.timeout) && in.timeout >= 0.0,
                     "recovered timeout must be finite and non-negative");
    // The last-known-good vector goes live *now*: admission proxies read a
    // sane plan before any model exists in this process.
    timeouts_[w].store(in.timeout, std::memory_order_relaxed);
    ConditionEstimator::WorkloadEstimatorState est;
    est.ewma_queue_delay = in.ewma_queue_delay;
    est.ewma_queue_time = in.ewma_queue_time;
    est.ewma_queue_seeded = in.ewma_queue_seeded;
    est.ewma_service = in.ewma_service;
    est.ewma_service_time = in.ewma_service_time;
    est.ewma_service_seeded = in.ewma_service_seeded;
    est.arrivals = in.arrivals;
    est.completions = in.completions;
    est.timeouts = in.timeouts;
    estimator_.restore_workload(w, est);
  }
  totals_.epochs = checkpoint.epoch;
  totals_.replans = checkpoint.replans;
  totals_.stale_holds = checkpoint.stale_holds;
  totals_.deadline_misses = checkpoint.deadline_misses;
  // Remember which bundle version the pre-crash controller planned against:
  // the first post-recovery publish then registers as an observed swap.
  last_model_version_ = checkpoint.model_version;
  // Reconcile the hardware view: boost grants that survived the crash
  // belong to proxies that no longer exist — force-release them rather
  // than waiting a watchdog budget with stale allocations applied.
  if (cat_ != nullptr) {
    for (std::size_t w = 0; w < cat_->workload_count(); ++w)
      while (cat_->is_boosted(w)) cat_->unboost(w);
    (void)cat_->poll_watchdog(now);
  }
  ++totals_.recoveries;
  obs::count("serve.recoveries");
  obs::instant("serve.recovered", "serve");
}

}  // namespace stac::serve

#include "serve/online_controller.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stac::serve {

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

OnlineController::OnlineController(ArrivalIngest& ingest,
                                   ModelSnapshot<ServingModel>& models,
                                   ControllerConfig config,
                                   cat::CatController* cat)
    : ingest_(ingest), models_(models), config_(std::move(config)), cat_(cat),
      estimator_(2, config_.servers, config_.estimator),
      batch_(std::max<std::size_t>(1, config_.drain_batch)) {
  STAC_REQUIRE(config_.util_lo > 0.0 && config_.util_lo <= config_.util_hi);
  STAC_REQUIRE(config_.util_quantum >= 0.0);
  if (cat_ != nullptr) STAC_REQUIRE(cat_->workload_count() >= 2);
  timeouts_[0].store(config_.base_condition.timeout_primary,
                     std::memory_order_relaxed);
  timeouts_[1].store(config_.base_condition.timeout_collocated,
                     std::memory_order_relaxed);
}

double OnlineController::snap_utilization(double u) const {
  if (config_.util_quantum > 0.0)
    u = config_.util_lo +
        std::round((u - config_.util_lo) / config_.util_quantum) *
            config_.util_quantum;
  return std::clamp(u, config_.util_lo, config_.util_hi);
}

void OnlineController::mirror_to_cat(const QueryEvent& event) {
  // Keep the hardware view in step with the proxies' grants: a fired STAP
  // timeout boosts the class (refcounted, lease-stamped for the watchdog),
  // a boosted completion releases one grant.  Degraded workloads ignore
  // boosts inside CatController; spurious unboosts are counted no-ops —
  // both are exactly the resilience semantics the offline stack has.
  if (event.kind == EventKind::kTimeout) {
    cat_->boost(event.workload, event.time);
  } else if (event.kind == EventKind::kCompletion && event.boosted) {
    cat_->unboost(event.workload);
  }
}

EpochReport OnlineController::run_epoch(double now) {
  STAC_TRACE_SPAN(span, "serve.epoch", "serve");
  auto& registry = obs::MetricsRegistry::global();

  EpochReport report;
  report.epoch = ++totals_.epochs;
  report.now = now;

  // 1. Drain everything published so far and fold it in.
  for (;;) {
    const std::size_t n = ingest_.drain(batch_);
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) {
      estimator_.observe(batch_[i]);
      if (cat_ != nullptr) mirror_to_cat(batch_[i]);
    }
    report.events_drained += n;
  }
  totals_.events_drained += report.events_drained;
  registry.counter("serve.events_drained").add(report.events_drained);

  // 2. Rebuild the runtime condition from live estimates.
  WorkloadEstimate est_p = estimator_.estimate(0, now);
  WorkloadEstimate est_c = estimator_.estimate(1, now);
  report.warm = est_p.warm && est_c.warm;

  const double t0 = now_seconds();
  if (report.warm) {
    profiler::RuntimeCondition cond = config_.base_condition;
    cond.util_primary = snap_utilization(est_p.utilization);
    cond.util_collocated = snap_utilization(est_c.utilization);
    report.planned_condition = cond;

    // 3. Pin the current model bundle for the whole planning step.
    auto guard = models_.acquire();
    STAC_REQUIRE_MSG(guard, "run_epoch before the first model publish");
    report.model_version = guard->version;
    if (guard->version != last_model_version_) {
      ++totals_.model_swaps_observed;
      last_model_version_ = guard->version;
      registry.counter("serve.model_swaps_observed").add();
    }

    // Staleness probe: one prediction (memoized against the sweep's own
    // cells) reveals which ladder rung answers for this condition.
    const core::RtPrediction probe = guard->pred().predict(cond);
    report.probe_rung = probe.rung;
    if (probe.rung > config_.max_planning_rung) {
      // 3b. Model too degraded to plan on: hold the last-known-good
      // vector rather than steering traffic with rung-4 guesses.
      report.stale_hold = true;
      ++totals_.stale_holds;
      registry.counter("serve.stale_holds").add();
      obs::instant("serve.stale_hold", "serve");
    } else {
      // 4. Re-plan: the §5.2 sweep against the pinned predictor.
      const core::PolicyExploration plan =
          core::explore_policies(guard->pred(), cond, config_.explorer);
      timeouts_[0].store(plan.selection.timeout_primary,
                         std::memory_order_relaxed);
      timeouts_[1].store(plan.selection.timeout_collocated,
                         std::memory_order_relaxed);
      report.replanned = true;
      ++totals_.replans;
      registry.counter("serve.replans").add();
    }
  }
  report.plan_seconds = now_seconds() - t0;
  registry.latency("serve.epoch_plan_seconds").record(report.plan_seconds);

  // 5. Grant watchdog: no boost lease outlives its budget.
  if (cat_ != nullptr) {
    report.watchdog_revocations = cat_->poll_watchdog(now);
    totals_.watchdog_revocations += report.watchdog_revocations;
    if (report.watchdog_revocations > 0)
      registry.counter("serve.watchdog_revocations")
          .add(report.watchdog_revocations);
  }

  report.timeout_primary = timeouts_[0].load(std::memory_order_relaxed);
  report.timeout_collocated = timeouts_[1].load(std::memory_order_relaxed);
  registry.gauge("serve.timeout_primary").set(report.timeout_primary);
  registry.gauge("serve.timeout_collocated").set(report.timeout_collocated);
  span.arg("drained", static_cast<std::uint64_t>(report.events_drained));
  span.arg("replanned", static_cast<std::uint64_t>(report.replanned));
  return report;
}

}  // namespace stac::serve

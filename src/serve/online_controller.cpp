#include "serve/online_controller.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#include "common/check.hpp"
#include "common/fault_injection.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stac::serve {

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

PlannerConfig planner_config(const ControllerConfig& c) {
  PlannerConfig p;
  p.base_condition = c.base_condition;
  p.explorer = c.explorer;
  p.util_quantum = c.util_quantum;
  p.util_lo = c.util_lo;
  p.util_hi = c.util_hi;
  p.max_planning_rung = c.max_planning_rung;
  p.probe_ttl_epochs = c.probe_ttl_epochs;
  p.incremental = c.incremental;
  p.memo_conditions = c.memo_conditions;
  p.plan_deadline_seconds = c.plan_deadline_seconds;
  return p;
}
}  // namespace

OnlineController::OnlineController(ArrivalIngest& ingest,
                                   ModelSnapshot<ServingModel>& models,
                                   ControllerConfig config,
                                   cat::CatController* cat)
    : ingest_(ingest), models_(models), config_(std::move(config)), cat_(cat),
      estimator_(2, config_.servers, config_.estimator),
      batch_(std::max<std::size_t>(1, config_.drain_batch)),
      planner_(planner_config(config_)) {
  if (cat_ != nullptr) STAC_REQUIRE(cat_->workload_count() >= 2);
  timeouts_[0].store(config_.base_condition.timeout_primary,
                     std::memory_order_relaxed);
  timeouts_[1].store(config_.base_condition.timeout_collocated,
                     std::memory_order_relaxed);
}

void OnlineController::mirror_to_cat(const QueryEvent& event) {
  // Keep the hardware view in step with the proxies' grants: a fired STAP
  // timeout boosts the class (refcounted, lease-stamped for the watchdog),
  // a boosted completion releases one grant.  Degraded workloads ignore
  // boosts inside CatController; spurious unboosts are counted no-ops —
  // both are exactly the resilience semantics the offline stack has.
  if (event.kind == EventKind::kTimeout) {
    cat_->boost(event.workload, event.time);
  } else if (event.kind == EventKind::kCompletion && event.boosted) {
    cat_->unboost(event.workload);
  }
}

EpochReport OnlineController::run_epoch(double now) {
  STAC_TRACE_SPAN(span, "serve.epoch", "serve");
  auto& registry = obs::MetricsRegistry::global();

  // Chaos hook: a kThrow here models the control thread dying mid-tick —
  // before the epoch counter moves, so a recovered controller re-runs the
  // tick rather than skipping it.
  FaultInjector::global().check("serve.controller.epoch");

  EpochReport report;
  report.epoch = ++totals_.epochs;
  report.now = now;

  // 1. Drain everything published so far and fold it in.
  for (;;) {
    const std::size_t n = ingest_.drain(batch_);
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) {
      estimator_.observe(batch_[i]);
      if (cat_ != nullptr) mirror_to_cat(batch_[i]);
    }
    report.events_drained += n;
  }
  totals_.events_drained += report.events_drained;
  registry.counter("serve.events_drained").add(report.events_drained);

  // 2. Rebuild the runtime condition from live estimates.
  WorkloadEstimate est_p = estimator_.estimate(0, now);
  WorkloadEstimate est_c = estimator_.estimate(1, now);
  report.warm = est_p.warm && est_c.warm;

  const double t0 = now_seconds();
  if (report.warm) {
    // 3-4. The shared planning core: pin the bundle, quantize the
    // utilization estimates, probe staleness (TTL-memoized), run the
    // memoized §5.2 sweep under the deadline.  The planner owns the
    // cross-epoch memo state; this controller owns what happens with the
    // outcome (publish, totals, admission, watchdog, checkpoints).
    const PlanOutcome outcome =
        planner_.plan(models_, est_p.utilization, est_c.utilization);
    report.planned_condition = outcome.planned_condition;
    report.probe_rung = outcome.probe_rung;
    report.model_version = outcome.model_version;
    report.cells_simulated = outcome.cells_simulated;
    report.cells_reused = outcome.cells_reused;
    report.model_unavailable_hold = outcome.model_unavailable_hold;
    report.stale_hold = outcome.stale_hold;
    report.deadline_miss = outcome.deadline_miss;
    if (outcome.model_unavailable_hold) ++totals_.model_unavailable_holds;
    if (outcome.model_swap_observed) ++totals_.model_swaps_observed;
    if (outcome.stale_hold) ++totals_.stale_holds;
    if (outcome.deadline_miss) ++totals_.deadline_misses;
    if (outcome.replanned) {
      timeouts_[0].store(outcome.timeout_primary, std::memory_order_relaxed);
      timeouts_[1].store(outcome.timeout_collocated,
                         std::memory_order_relaxed);
      report.replanned = true;
      ++totals_.replans;
    }
  }
  report.plan_seconds = now_seconds() - t0;
  registry.latency("serve.epoch_plan_seconds").record(report.plan_seconds);

  // Overload feedback: tell the admission controller how much of the
  // deadline budget the plan consumed (lag 1.0 = the whole budget) and let
  // it re-derive the fairness scales from this epoch's offered counts.
  if (config_.admission != nullptr) {
    const double lag =
        config_.plan_deadline_seconds > 0.0
            ? report.plan_seconds / config_.plan_deadline_seconds
            : 0.0;
    config_.admission->note_epoch(lag);
  }

  // 5. Grant watchdog: no boost lease outlives its budget.
  if (cat_ != nullptr) {
    report.watchdog_revocations = cat_->poll_watchdog(now);
    totals_.watchdog_revocations += report.watchdog_revocations;
    if (report.watchdog_revocations > 0)
      registry.counter("serve.watchdog_revocations")
          .add(report.watchdog_revocations);
  }

  // 6. Durable state at the configured cadence.  A failed write (disk
  // trouble, injected "serve.checkpoint.write" fault) is survived and
  // counted — the previous checkpoint on disk stays valid, and serving is
  // never gated on storage.
  if (!config_.checkpoint.directory.empty() &&
      config_.checkpoint.every_n_epochs > 0 &&
      report.epoch % config_.checkpoint.every_n_epochs == 0) {
    try {
      checkpoint_now(now);
      report.checkpoint_written = true;
    } catch (const std::exception&) {
      ++totals_.checkpoint_failures;
      registry.counter("serve.checkpoint.write_failures").add();
    }
  }

  report.timeout_primary = timeouts_[0].load(std::memory_order_relaxed);
  report.timeout_collocated = timeouts_[1].load(std::memory_order_relaxed);
  registry.gauge("serve.timeout_primary").set(report.timeout_primary);
  registry.gauge("serve.timeout_collocated").set(report.timeout_collocated);
  span.arg("drained", static_cast<std::uint64_t>(report.events_drained));
  span.arg("replanned", static_cast<std::uint64_t>(report.replanned));
  return report;
}

ControllerCheckpoint OnlineController::make_checkpoint(double now) const {
  ControllerCheckpoint ckpt;
  ckpt.epoch = totals_.epochs;
  ckpt.time = now;
  ckpt.condition_seed = config_.base_condition.seed;
  ckpt.predictor_seed = config_.checkpoint.predictor_seed;
  ckpt.model_version = planner_.last_model_version();
  ckpt.library_ref =
      config_.checkpoint.library_ref.empty() ? "-" : config_.checkpoint.library_ref;
  ckpt.library_size = config_.checkpoint.library_size;
  ckpt.replans = totals_.replans;
  ckpt.stale_holds = totals_.stale_holds;
  ckpt.deadline_misses = totals_.deadline_misses;
  ckpt.workloads.resize(2);
  for (std::size_t w = 0; w < 2; ++w) {
    const auto est = estimator_.snapshot_workload(w);
    WorkloadCheckpoint& out = ckpt.workloads[w];
    out.timeout = timeouts_[w].load(std::memory_order_relaxed);
    out.ewma_queue_delay = est.ewma_queue_delay;
    out.ewma_queue_time = est.ewma_queue_time;
    out.ewma_queue_seeded = est.ewma_queue_seeded;
    out.ewma_service = est.ewma_service;
    out.ewma_service_time = est.ewma_service_time;
    out.ewma_service_seeded = est.ewma_service_seeded;
    out.arrivals = est.arrivals;
    out.completions = est.completions;
    out.timeouts = est.timeouts;
  }
  return ckpt;
}

void OnlineController::checkpoint_now(double now) {
  STAC_REQUIRE_MSG(!config_.checkpoint.directory.empty(),
                   "checkpoint_now without a checkpoint directory");
  save_checkpoint(checkpoint_path(config_.checkpoint.directory),
                  make_checkpoint(now));
  ++totals_.checkpoints_written;
}

RecoveryReport OnlineController::recover(
    const ControllerCheckpoint& checkpoint, double now) {
  // Validate *everything* before mutating *anything*: a quarantined
  // recover must leave the controller exactly as constructed — no
  // half-restored estimator, no partially-applied timeout vector.
  RecoveryReport report;
  if (checkpoint.workloads.size() != 2) {
    report.quarantined = true;
    report.reason = "checkpoint describes " +
                    std::to_string(checkpoint.workloads.size()) +
                    " workloads; live config is a primary/collocated pair";
  } else {
    for (std::size_t w = 0; w < 2 && !report.quarantined; ++w) {
      const WorkloadCheckpoint& in = checkpoint.workloads[w];
      if (!std::isfinite(in.timeout) || in.timeout < 0.0) {
        report.quarantined = true;
        report.reason = "workload " + std::to_string(w) +
                        " timeout is not finite and non-negative";
      }
    }
  }
  if (report.quarantined) {
    ++totals_.recovery_quarantines;
    obs::count("serve.recovery_quarantines");
    obs::instant("serve.recovery_quarantined", "serve");
    return report;
  }

  for (std::size_t w = 0; w < 2; ++w) {
    const WorkloadCheckpoint& in = checkpoint.workloads[w];
    // The last-known-good vector goes live *now*: admission proxies read a
    // sane plan before any model exists in this process.
    timeouts_[w].store(in.timeout, std::memory_order_relaxed);
    ConditionEstimator::WorkloadEstimatorState est;
    est.ewma_queue_delay = in.ewma_queue_delay;
    est.ewma_queue_time = in.ewma_queue_time;
    est.ewma_queue_seeded = in.ewma_queue_seeded;
    est.ewma_service = in.ewma_service;
    est.ewma_service_time = in.ewma_service_time;
    est.ewma_service_seeded = in.ewma_service_seeded;
    est.arrivals = in.arrivals;
    est.completions = in.completions;
    est.timeouts = in.timeouts;
    const bool restored = estimator_.restore_workload(w, est);
    STAC_ENSURE(restored);  // w < 2 == estimator workload count
  }
  totals_.epochs = checkpoint.epoch;
  totals_.replans = checkpoint.replans;
  totals_.stale_holds = checkpoint.stale_holds;
  totals_.deadline_misses = checkpoint.deadline_misses;
  // Remember which bundle version the pre-crash controller planned against:
  // the first post-recovery publish then registers as an observed swap.
  planner_.note_model_version(checkpoint.model_version);
  // Reconcile the hardware view: boost grants that survived the crash
  // belong to proxies that no longer exist — force-release them rather
  // than waiting a watchdog budget with stale allocations applied.
  if (cat_ != nullptr) {
    cat_->release_all_boosts();
    (void)cat_->poll_watchdog(now);
  }
  ++totals_.recoveries;
  obs::count("serve.recoveries");
  obs::instant("serve.recovered", "serve");
  report.restored = true;
  return report;
}

}  // namespace stac::serve

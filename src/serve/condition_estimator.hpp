// Dynamic-condition estimation from the live event stream (§4, Eq. 4).
//
// The paper's Stage-3 loop feeds "instantaneous queuing delay ... as
// dynamic condition feedback"; offline, the G/G/k simulator supplies it.
// Online, this estimator reconstructs the same dynamic conditions from
// ingest events, per workload, with two complementary horizons:
//   * a sliding window (span-bounded and count-bounded) over recent
//     completions/arrivals — the controller's per-epoch planning inputs
//     (arrival rate, service mean/CV, mean queueing delay, boost
//     prevalence), matching StreamingStats over the retained window; and
//   * exponentially-decayed (half-life) trackers of queueing delay and
//     service time — the "instantaneous" signal that reacts within a few
//     events when a rate step hits, before the window turns over.
//
// Single-threaded by design: it is fed by the runtime's one consumer
// thread (observe() right after ArrivalIngest::drain()).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.hpp"
#include "core/condition_merge.hpp"
#include "serve/query_event.hpp"

namespace stac::serve {

struct EstimatorConfig {
  double window_span = 30.0;        ///< seconds of history retained
  std::size_t window_samples = 4096;  ///< completion-record cap per workload
  double half_life = 2.0;           ///< EWMA half-life, seconds
  std::size_t min_completions = 20;  ///< below this a workload is not warm
  /// Backward timestamp movement (vs the same deque's newest entry) beyond
  /// which a clamp is *counted* as skew.  Smaller regressions are clamped
  /// silently — modest cross-producer skew is expected and harmless.
  double skew_tolerance = 0.25;
};

/// Point-in-time estimate for one workload.
struct WorkloadEstimate {
  double arrival_rate = 0.0;    ///< arrivals/sec over the window
  double mean_service = 0.0;    ///< windowed service-duration mean
  double service_cv = 0.0;      ///< windowed service-duration CV
  double mean_queue_delay = 0.0;   ///< windowed queueing-delay mean
  double inst_queue_delay = 0.0;   ///< EWMA (instantaneous) queueing delay
  double inst_service = 0.0;       ///< EWMA service duration
  double boost_fraction = 0.0;  ///< boosted completions / completions
  /// arrival_rate x mean_service / servers — the offered-load coordinate
  /// the models were trained on (Table 2's utilization axis).
  double utilization = 0.0;
  std::uint64_t arrivals = 0;      ///< window counts
  std::uint64_t completions = 0;
  std::uint64_t timeouts = 0;
  bool warm = false;  ///< enough window completions to plan on
};

class ConditionEstimator {
 public:
  ConditionEstimator(std::size_t workloads, std::size_t servers_per_workload,
                     EstimatorConfig config = {});

  [[nodiscard]] std::size_t workload_count() const { return wl_.size(); }

  /// Fold one event in.  Events must be fed in drain order (time-sorted
  /// per producer; modest cross-producer skew is fine — windows are
  /// span-based, not order-based).  Out-of-range workload ids are counted
  /// and ignored, never UB.
  void observe(const QueryEvent& event);

  /// Estimate for workload w at time `now` (evicts window entries older
  /// than now - window_span first).
  [[nodiscard]] WorkloadEstimate estimate(std::size_t w, double now);

  /// The same window, exported as mergeable moments (counts + Welford
  /// accumulators + observed-span rate) for fleet-wide aggregation
  /// (core::merge_moments).  estimate() is implemented on top of this, so
  /// merging one shard's moments reproduces its estimate bit-for-bit.
  [[nodiscard]] core::WorkloadMoments window_moments(std::size_t w,
                                                     double now);

  /// Lifetime (non-window) totals, for accounting tests and gauges.
  [[nodiscard]] std::uint64_t total_events() const { return total_events_; }
  [[nodiscard]] std::uint64_t ignored_events() const { return ignored_; }
  /// Timestamps clamped because they ran backwards past skew_tolerance.
  [[nodiscard]] std::uint64_t skew_clamped() const { return skew_clamped_; }

  /// Durable per-workload state for checkpointing: the EWMA trackers plus
  /// lifetime event counters.  Window contents are intentionally excluded —
  /// they refill from live traffic within one window span.
  struct WorkloadEstimatorState {
    double ewma_queue_delay = 0.0;
    double ewma_queue_time = 0.0;
    bool ewma_queue_seeded = false;
    double ewma_service = 0.0;
    double ewma_service_time = 0.0;
    bool ewma_service_seeded = false;
    std::uint64_t arrivals = 0;
    std::uint64_t completions = 0;
    std::uint64_t timeouts = 0;
  };
  [[nodiscard]] WorkloadEstimatorState snapshot_workload(std::size_t w) const;
  /// Restore the EWMA trackers and lifetime counters (recovery path).
  /// An out-of-range `w` (a checkpoint describing more workloads than the
  /// live config — e.g. after a retrain changed the workload set) is
  /// quarantined: counted in restore_quarantined(), no state touched,
  /// returns false.  Never walks off the end, never restores into the
  /// wrong slot.
  bool restore_workload(std::size_t w, const WorkloadEstimatorState& state);
  /// Restore attempts refused because the slot does not exist live.
  [[nodiscard]] std::uint64_t restore_quarantined() const {
    return restore_quarantined_;
  }

 private:
  struct Completion {
    double time;
    double queue_delay;
    double service;
    bool boosted;
  };
  struct Ewma {
    double value = 0.0;
    double last_time = 0.0;
    bool seeded = false;
    void update(double t, double x, double half_life);
  };
  struct PerWorkload {
    std::deque<double> arrivals;       ///< arrival timestamps
    std::deque<Completion> completions;
    std::deque<double> timeouts;       ///< timeout timestamps
    Ewma queue_delay;
    Ewma service;
    std::uint64_t lifetime_arrivals = 0;
    std::uint64_t lifetime_completions = 0;
    std::uint64_t lifetime_timeouts = 0;
  };

  void evict(PerWorkload& s, double now) const;
  /// Keep each deque non-decreasing: a timestamp older than the deque's
  /// newest entry is clamped forward (counted when past skew_tolerance).
  [[nodiscard]] double monotone_time(double newest, double t);

  EstimatorConfig config_;
  std::size_t servers_;
  std::vector<PerWorkload> wl_;
  std::uint64_t total_events_ = 0;
  std::uint64_t ignored_ = 0;
  std::uint64_t skew_clamped_ = 0;
  std::uint64_t restore_quarantined_ = 0;
};

}  // namespace stac::serve

#include "serve/traffic_replay.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numbers>
#include <thread>

#include "cat/stap.hpp"
#include "common/check.hpp"
#include "common/fault_injection.hpp"

namespace stac::serve {

TrafficReplay::TrafficReplay(ArrivalIngest& ingest,
                             const TimeoutSource* timeouts,
                             ReplayConfig config)
    : ingest_(ingest), timeouts_(timeouts), config_(std::move(config)) {
  STAC_REQUIRE(!config_.workloads.empty());
  STAC_REQUIRE(config_.shards_per_workload >= 1);
  Rng seeder(config_.seed);
  std::uint32_t producer = 0;
  for (std::size_t w = 0; w < config_.workloads.size(); ++w) {
    const ReplayWorkloadConfig& wc = config_.workloads[w];
    STAC_REQUIRE(wc.mean_service > 0.0 && wc.servers >= 1);
    for (std::size_t s = 0; s < config_.shards_per_workload; ++s) {
      Shard shard;
      shard.workload = static_cast<std::uint16_t>(w);
      shard.producer = producer++;
      shard.rate_scale = 1.0 / static_cast<double>(config_.shards_per_workload);
      shard.server_free.assign(wc.servers, 0.0);
      shard.rng = seeder.split(shard.producer + 1);
      shard.next_arrival = 0.0;
      shards_.push_back(std::move(shard));
    }
  }
  progress_ = std::vector<std::atomic<std::uint64_t>>(shards_.size());
}

double TrafficReplay::utilization_at(const ReplayWorkloadConfig& w,
                                     double t) const {
  const double u =
      w.base_util +
      (w.util_amplitude != 0.0
           ? w.util_amplitude *
                 std::sin(2.0 * std::numbers::pi * t / w.util_period)
           : 0.0);
  // Offered load may far exceed capacity — that is what overload benches
  // express (admission control, not this clamp, is the protection).
  return std::clamp(u, 0.02, 16.0);
}

double TrafficReplay::applied_timeout(std::size_t workload) const {
  return timeouts_ != nullptr ? timeouts_->timeout(workload)
                              : cat::kNeverBoostTimeout;
}

ReplayStats TrafficReplay::generate_shard(std::size_t shard_id, double t0,
                                          double t1) {
  STAC_REQUIRE(shard_id < shards_.size());
  Shard& sh = shards_[shard_id];
  const ReplayWorkloadConfig& wc = config_.workloads[sh.workload];
  ReplayStats stats;

  std::vector<QueryEvent> buf;
  if (sh.next_arrival < t0) sh.next_arrival = t0;
  while (sh.next_arrival < t1) {
    const double t_a = sh.next_arrival;
    // Piecewise-stationary Poisson: the rate at the arrival instant drives
    // the next gap.  Shards split the workload's total arrival rate.
    const double rate = utilization_at(wc, t_a) *
                        static_cast<double>(wc.servers) / wc.mean_service *
                        sh.rate_scale;
    sh.next_arrival = t_a + sh.rng.exponential(std::max(rate, 1e-9));

    // Admission gate at the arrival instant: a shed query never existed as
    // far as the runtime is concerned — no server slot, no events.
    if (config_.admission != nullptr &&
        !config_.admission->admit(sh.workload)) {
      ++stats.shed;
      continue;
    }

    // G/G/k recurrence: the query takes the earliest-free slot.
    auto slot = std::min_element(sh.server_free.begin(), sh.server_free.end());
    const double start = std::max(t_a, *slot);
    const double queue_delay = start - t_a;
    const double raw_service =
        sh.rng.lognormal_mean_cv(wc.mean_service, wc.service_cv);

    // Eq. 4 against the *currently applied* timeout vector — the closed
    // loop.  The threshold is re-read per query, so a re-plan mid-chunk
    // steers the remainder of the chunk.
    const double timeout_rel = applied_timeout(sh.workload);
    double finish = start + raw_service;
    bool boosted = false;
    double t_boost = 0.0;
    if (timeout_rel < cat::kNeverBoostTimeout) {
      t_boost = t_a + timeout_rel * wc.mean_service;
      if (t_boost < finish) {
        boosted = true;
        // Work done before the boost proceeds at rate 1; the remainder is
        // sped up (extra ways convert into execution rate, Eq. 3).
        const double done_before = std::max(0.0, t_boost - start);
        const double boost_at = std::max(t_boost, start);
        finish = boost_at + (raw_service - done_before) /
                                std::max(1.0, wc.boost_speedup);
      }
    }
    *slot = finish;

    QueryEvent ev;
    ev.workload = sh.workload;
    ev.producer = sh.producer;
    ev.kind = EventKind::kArrival;
    ev.time = t_a;
    buf.push_back(ev);
    ++stats.arrivals;
    if (boosted) {
      ev.kind = EventKind::kTimeout;
      ev.time = std::max(t_boost, t_a);
      buf.push_back(ev);
      ++stats.timeouts;
    }
    ev.kind = EventKind::kCompletion;
    ev.time = finish;
    ev.queue_delay = queue_delay;
    ev.service = finish - start;
    ev.boosted = boosted;
    buf.push_back(ev);
    ++stats.completions;
  }

  // Near-monotone per-producer publication (completions can land past t1;
  // the estimator's windows are span-based and tolerate the skew).
  std::stable_sort(buf.begin(), buf.end(),
                   [](const QueryEvent& a, const QueryEvent& b) {
                     return a.time < b.time;
                   });
  for (const QueryEvent& ev : buf) {
    try {
      if (!ingest_.try_push(ev)) ++stats.push_failures;
    } catch (const InjectedFault&) {
      // A kThrow at "serve.ingest.push" models the proxy's transport
      // throwing; the proxy survives and the event is simply lost.
      ++stats.push_failures;
    }
  }
  return stats;
}

ReplayStats TrafficReplay::generate(double t0, double t1) {
  ReplayStats total;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ReplayStats st = generate_shard(s, t0, t1);
    total.arrivals += st.arrivals;
    total.timeouts += st.timeouts;
    total.completions += st.completions;
    total.push_failures += st.push_failures;
    total.shed += st.shed;
  }
  return total;
}

SoakResult TrafficReplay::run_threaded(OnlineController& controller,
                                       double sim_seconds,
                                       double epoch_interval,
                                       double wall_pace,
                                       double start_time) {
  STAC_REQUIRE(sim_seconds > 0.0 && epoch_interval > 0.0);
  const auto chunks = static_cast<std::uint64_t>(
      std::ceil(sim_seconds / epoch_interval));
  for (auto& p : progress_) p.store(0, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);

  std::vector<ReplayStats> shard_stats(shards_.size());
  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    threads.emplace_back([this, s, chunks, epoch_interval, wall_pace,
                          wall_start, start_time, &shard_stats] {
      ReplayStats acc;
      for (std::uint64_t k = 0; k < chunks; ++k) {
        if (stop_.load(std::memory_order_acquire)) break;
        const double t0 =
            start_time + static_cast<double>(k) * epoch_interval;
        const ReplayStats st = generate_shard(s, t0, t0 + epoch_interval);
        acc.arrivals += st.arrivals;
        acc.timeouts += st.timeouts;
        acc.completions += st.completions;
        acc.push_failures += st.push_failures;
        acc.shed += st.shed;
        progress_[s].store(k + 1, std::memory_order_release);
        if (wall_pace > 0.0) {
          // Pace the simulated clock to the wall: chunk k+1 may start no
          // earlier than (k+1) * interval / pace wall seconds in.
          const auto deadline =
              wall_start + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(
                                   static_cast<double>(k + 1) *
                                   epoch_interval / wall_pace));
          std::this_thread::sleep_until(deadline);
        }
      }
      shard_stats[s] = acc;
    });
  }

  SoakResult result;
  std::exception_ptr epoch_error;
  for (std::uint64_t k = 0; k < chunks; ++k) {
    // Run epoch k once every shard has published chunk k (or bailed out).
    for (std::size_t s = 0; s < shards_.size(); ++s)
      while (progress_[s].load(std::memory_order_acquire) < k + 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    try {
      const EpochReport report = controller.run_epoch(
          start_time + static_cast<double>(k + 1) * epoch_interval);
      result.watchdog_revocations += report.watchdog_revocations;
      ++result.epochs;
      if (report.replanned && result.epochs_to_first_replan == 0)
        result.epochs_to_first_replan = result.epochs;
    } catch (...) {
      // A dead control tick (injected crash, contract violation) must not
      // leave shard threads running: stop, join, then let the caller see
      // the original exception.
      epoch_error = std::current_exception();
      stop_.store(true, std::memory_order_release);
      break;
    }
  }
  for (auto& t : threads) t.join();
  if (epoch_error) std::rethrow_exception(epoch_error);

  result.sim_seconds = static_cast<double>(chunks) * epoch_interval;
  for (const ReplayStats& st : shard_stats) {
    result.traffic.arrivals += st.arrivals;
    result.traffic.timeouts += st.timeouts;
    result.traffic.completions += st.completions;
    result.traffic.push_failures += st.push_failures;
    result.traffic.shed += st.shed;
  }
  result.controller = controller.totals();
  result.ingest_dropped = ingest_.dropped();
  return result;
}

}  // namespace stac::serve

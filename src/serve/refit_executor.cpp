#include "serve/refit_executor.hpp"

#include <chrono>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stac::serve {

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

RefitExecutor::RefitExecutor(const profiler::Profiler& profiler,
                             ModelSnapshot<ServingModel>& models,
                             core::ProfileLibrary initial_library,
                             RefitExecutorConfig config,
                             std::uint64_t first_version)
    : profiler_(profiler), models_(models), config_(std::move(config)),
      library_(std::move(initial_library)), primary_(config_.model),
      fallback_(linear_fallback_config()), next_version_(first_version) {
  STAC_REQUIRE(config_.retrain_fraction > 0.0 &&
               config_.retrain_fraction <= 1.0);
}

RefitExecutor::~RefitExecutor() { stop(); }

void RefitExecutor::start() {
  std::lock_guard lock(mu_);
  if (running_) return;
  stopping_ = false;
  running_ = true;
  worker_ = std::thread([this] { worker_loop(); });
}

void RefitExecutor::stop() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
    if (pending_.armed) {
      // Cancellation: a job never started never publishes; its waiters
      // are woken and see wait() == false.
      pending_ = Pending{};
      ++stats_.cancelled;
      obs::count("serve.refit.cancelled");
      obs::set_gauge("serve.refit.queue_depth", 0.0);
    }
    work_cv_.notify_all();
    done_cv_.notify_all();
  }
  if (worker_.joinable()) worker_.join();
  std::lock_guard lock(mu_);
  running_ = false;
  stopping_ = false;
}

bool RefitExecutor::running() const {
  std::lock_guard lock(mu_);
  return running_;
}

std::uint64_t RefitExecutor::request_refit(core::ProfileLibrary delta,
                                           bool force_cold) {
  bool inline_run = false;
  std::uint64_t ticket = 0;
  {
    std::lock_guard lock(mu_);
    ticket = ++next_ticket_;
    ++stats_.requests;
    obs::count("serve.refit.requests");
    if (!running_) {
      inline_run = true;
    } else if (pending_.armed) {
      // Coalesce: merge the delta into the pending job; one refit will
      // serve every ticket up to (and including) this one.  Added counts
      // are tallied when the job's delta reaches the library in execute().
      (void)pending_.delta.merge_from(delta);
      pending_.force_cold = pending_.force_cold || force_cold;
      pending_.ticket = ticket;
      ++stats_.coalesced;
      obs::count("serve.refit.coalesced");
    } else {
      pending_.armed = true;
      pending_.delta = std::move(delta);
      pending_.force_cold = force_cold;
      pending_.ticket = ticket;
      obs::set_gauge("serve.refit.queue_depth", 1.0);
      work_cv_.notify_one();
    }
  }
  if (inline_run) {
    execute(Pending{true, std::move(delta), force_cold, ticket});
    std::lock_guard lock(mu_);
    completed_ticket_ = std::max(completed_ticket_, ticket);
    ++stats_.completed;
    done_cv_.notify_all();
  }
  return ticket;
}

std::uint64_t RefitExecutor::refit_now(core::ProfileLibrary delta,
                                       bool force_cold) {
  std::uint64_t ticket = 0;
  {
    std::lock_guard lock(mu_);
    ticket = ++next_ticket_;
    ++stats_.requests;
    obs::count("serve.refit.requests");
  }
  execute(Pending{true, std::move(delta), force_cold, ticket});
  std::lock_guard lock(mu_);
  completed_ticket_ = std::max(completed_ticket_, ticket);
  ++stats_.completed;
  done_cv_.notify_all();
  return ticket;
}

bool RefitExecutor::wait(std::uint64_t ticket, double timeout_seconds) {
  std::unique_lock lock(mu_);
  done_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [&] { return completed_ticket_ >= ticket || stopping_; });
  return completed_ticket_ >= ticket;
}

std::size_t RefitExecutor::queue_depth() const {
  std::lock_guard lock(mu_);
  return pending_.armed ? 1 : 0;
}

RefitStats RefitExecutor::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::uint64_t RefitExecutor::published_version() const {
  std::lock_guard lock(exec_mu_);
  return last_published_version_;
}

std::size_t RefitExecutor::library_size() const {
  std::lock_guard lock(exec_mu_);
  return library_.size();
}

void RefitExecutor::worker_loop() {
  for (;;) {
    Pending job;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] { return pending_.armed || stopping_; });
      if (stopping_) return;
      job = std::move(pending_);
      pending_ = Pending{};
      obs::set_gauge("serve.refit.queue_depth", 0.0);
    }
    const std::uint64_t ticket = job.ticket;
    execute(std::move(job));
    std::lock_guard lock(mu_);
    completed_ticket_ = std::max(completed_ticket_, ticket);
    ++stats_.completed;
    done_cv_.notify_all();
  }
}

void RefitExecutor::execute(Pending job) {
  std::lock_guard exec_lock(exec_mu_);
  STAC_TRACE_SPAN(span, "serve.refit", "serve");
  const double t0 = now_seconds();

  if (!job.delta.empty()) {
    const auto ms = library_.merge_from(job.delta);
    std::lock_guard lock(mu_);
    stats_.profiles_merged += ms.added;
  }
  STAC_REQUIRE_MSG(!library_.empty(), "refit with an empty profile library");

  bool cold = !config_.warm_start || !primary_.trained() || job.force_cold;
  if (!cold && config_.full_refit_every > 0 &&
      warm_streak_ + 1 >= config_.full_refit_every)
    cold = true;  // drift backstop: cadence forces a periodic full fit
  span.arg("cold", static_cast<std::uint64_t>(cold ? 1 : 0));

  // Primary master: bounded immediate retries, then survive total failure
  // by publishing with an untrained primary — the ladder answers from a
  // lower rung (same policy as build_serving_model / StacManager::refit).
  bool primary_ok = false;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      if (cold) {
        core::EaModel fresh(config_.model);
        fresh.fit(library_.profiles());
        primary_ = std::move(fresh);
      } else {
        primary_.refit_incremental(library_.profiles(),
                                   config_.retrain_fraction);
      }
      primary_ok = true;
      break;
    } catch (const ContractViolation&) {
      throw;
    } catch (const std::exception&) {
      {
        std::lock_guard lock(mu_);
        ++stats_.fit_failures;
      }
      obs::count("serve.refit.fit_failures");
      if (attempt >= config_.fit_retries) break;
      {
        std::lock_guard lock(mu_);
        ++stats_.retries;
      }
      obs::count("serve.refit.retries");
    }
  }
  if (!primary_ok) {
    primary_ = core::EaModel(config_.model);
    {
      std::lock_guard lock(mu_);
      ++stats_.degraded_publishes;
    }
    obs::count("serve.refit.degraded_publishes");
  }

  if (config_.train_fallback) {
    try {
      core::EaModel fresh(linear_fallback_config());
      fresh.fit(library_.profiles());
      fallback_ = std::move(fresh);
    } catch (const ContractViolation&) {
      throw;
    } catch (const std::exception&) {
      fallback_ = core::EaModel(linear_fallback_config());
    }
  }

  if (cold || !primary_ok)
    warm_streak_ = 0;
  else
    ++warm_streak_;
  {
    std::lock_guard lock(mu_);
    cold ? ++stats_.cold : ++stats_.warm;
  }
  obs::count(cold ? "serve.refit.cold" : "serve.refit.warm");

  // Assemble (no training) and publish; readers swap over lock-free.
  const std::uint64_t version = next_version_++;
  models_.publish(assemble_serving_model(profiler_, library_, primary_,
                                         fallback_, version,
                                         config_.predictor));
  last_published_version_ = version;
  obs::record_latency("serve.refit.seconds", now_seconds() - t0);
}

}  // namespace stac::serve

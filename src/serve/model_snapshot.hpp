// Epoch-based (RCU-style) hot swap of an immutable model bundle.
//
// Background recalibration refits an EaModel from newly merged profiles
// and publishes the result while the controller keeps planning against the
// old one — admission never stalls on a model swap.  Readers pin the
// current bundle through a hazard slot:
//
//   reader:  p = current (acquire); slot.store(p, seq_cst);
//            re-check current (seq_cst) == p, else retry
//   writer:  old = current.exchange(next); retire(old);
//            reclaim retired bundles present in no slot
//
// The seq_cst store/load pair is the classic hazard-pointer handshake: the
// writer's post-exchange scan of the slots and the reader's post-store
// re-check of `current_` cannot both miss each other, so a bundle is only
// deleted when no reader can still dereference it.  Readers are lock-free
// (claim a slot, two loads, one store); the writer side is serialized by a
// mutex and defers reclamation — it never waits for readers.  If every
// slot is occupied (more than kSlots concurrent guards) acquire falls back
// to holding the writer mutex for the guard's lifetime: correct, merely
// not lock-free, and only reachable under absurd reader fan-out.
//
// See DESIGN.md §11 for the memory-ordering discussion.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/check.hpp"
#include "common/fault_injection.hpp"

namespace stac::serve {

template <typename T>
class ModelSnapshot {
 public:
  static constexpr std::size_t kSlots = 64;

  ModelSnapshot() = default;
  explicit ModelSnapshot(std::unique_ptr<const T> initial) {
    if (initial) publish(std::move(initial));
  }

  ModelSnapshot(const ModelSnapshot&) = delete;
  ModelSnapshot& operator=(const ModelSnapshot&) = delete;

  ~ModelSnapshot() {
    // No readers may outlive the snapshot (guards borrow from it).
    delete current_.load(std::memory_order_relaxed);
    for (const T* p : retired_) delete p;
  }

  /// Pins the bundle that was current at acquire() until destruction.
  class ReadGuard {
   public:
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ReadGuard(ReadGuard&& o) noexcept
        : owner_(o.owner_), slot_(o.slot_), ptr_(o.ptr_),
          fallback_(std::move(o.fallback_)) {
      o.owner_ = nullptr;
      o.ptr_ = nullptr;
    }
    ReadGuard& operator=(ReadGuard&&) = delete;

    ~ReadGuard() {
      if (owner_ != nullptr && slot_ != kNoSlot) {
        owner_->slots_[slot_].hazard.store(nullptr, std::memory_order_release);
        owner_->slots_[slot_].in_use.store(false, std::memory_order_release);
      }
    }

    [[nodiscard]] const T* get() const { return ptr_; }
    [[nodiscard]] const T* operator->() const { return ptr_; }
    [[nodiscard]] const T& operator*() const { return *ptr_; }
    [[nodiscard]] explicit operator bool() const { return ptr_ != nullptr; }

   private:
    friend class ModelSnapshot;
    static constexpr std::size_t kNoSlot = ~std::size_t{0};
    ReadGuard(ModelSnapshot* owner, std::size_t slot, const T* ptr,
              std::unique_lock<std::mutex> fallback)
        : owner_(owner), slot_(slot), ptr_(ptr),
          fallback_(std::move(fallback)) {}

    ModelSnapshot* owner_;
    std::size_t slot_;
    const T* ptr_;
    std::unique_lock<std::mutex> fallback_;  ///< held only on slot overflow
  };

  /// Pin and return the current bundle (null guard before first publish).
  /// Lock-free while a hazard slot is available.
  [[nodiscard]] ReadGuard acquire() {
    for (std::size_t s = 0; s < kSlots; ++s) {
      if (slots_[s].in_use.exchange(true, std::memory_order_acquire)) continue;
      // Hazard handshake: publish the candidate, then confirm it is still
      // current.  seq_cst on both sides pairs with the writer's exchange +
      // slot scan (see header note).
      const T* p = current_.load(std::memory_order_seq_cst);
      for (;;) {
        slots_[s].hazard.store(p, std::memory_order_seq_cst);
        const T* again = current_.load(std::memory_order_seq_cst);
        if (again == p) break;
        p = again;
      }
      return ReadGuard(this, s, p, std::unique_lock<std::mutex>());
    }
    // Every slot taken: pin via the writer mutex instead (publish cannot
    // retire anything while this guard lives).
    std::unique_lock<std::mutex> lock(writer_mu_);
    const T* p = current_.load(std::memory_order_seq_cst);
    return ReadGuard(this, ReadGuard::kNoSlot, p, std::move(lock));
  }

  /// Swap in `next` as the current bundle and retire the old one.  The old
  /// bundle is reclaimed on this or a later publish(), once no reader slot
  /// pins it.  Thread-safe against readers and other writers; never blocks
  /// on readers.
  void publish(std::unique_ptr<const T> next) {
    STAC_REQUIRE(next != nullptr);
    // Chaos hook: a kThrow here models a failed swap — the candidate bundle
    // is discarded and readers keep pinning the old one, untouched.
    FaultInjector::global().check("serve.snapshot.swap");
    std::lock_guard<std::mutex> lock(writer_mu_);
    const T* old = current_.exchange(next.release(), std::memory_order_seq_cst);
    version_.fetch_add(1, std::memory_order_release);
    if (old != nullptr) retired_.push_back(old);
    reclaim_locked();
  }

  /// Monotone swap count; 0 until the first publish.  Readers compare the
  /// version to decide whether a refreshed acquire() is worthwhile.
  [[nodiscard]] std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Bundles awaiting reclamation (pinned by a reader at last publish).
  [[nodiscard]] std::size_t retired_count() const {
    std::lock_guard<std::mutex> lock(writer_mu_);
    return retired_.size();
  }

 private:
  void reclaim_locked() {
    auto pinned = [this](const T* p) {
      for (const Slot& s : slots_)
        if (s.hazard.load(std::memory_order_seq_cst) == p) return true;
      return false;
    };
    std::vector<const T*> keep;
    keep.reserve(retired_.size());
    for (const T* p : retired_) {
      if (pinned(p))
        keep.push_back(p);
      else
        delete p;
    }
    retired_ = std::move(keep);
  }

  struct Slot {
    std::atomic<bool> in_use{false};
    std::atomic<const T*> hazard{nullptr};
    char pad_[64 - sizeof(std::atomic<bool>) - sizeof(std::atomic<const T*>)];
  };

  std::atomic<const T*> current_{nullptr};
  std::atomic<std::uint64_t> version_{0};
  std::array<Slot, kSlots> slots_{};
  mutable std::mutex writer_mu_;
  std::vector<const T*> retired_;
};

}  // namespace stac::serve

// RefitExecutor: the background refit pipeline — merge → warm-start refit
// → assemble → RCU publish — that takes model fitting off every hot path.
//
// Before this existed, every recalibration was an inline
// profiler→cascade→build_serving_model rebuild (~hundreds of ms) carried
// by whoever triggered it: a controller epoch, a recovery, a fleet merge.
// The executor owns that work instead:
//
//   - it holds the authoritative profile library plus persistent *master*
//     EA models (primary + fallback);
//   - a request merges a profile-library delta and asks for a refit; while
//     the worker is busy, further requests coalesce into one pending job
//     (deltas merged, one refit serves them all);
//   - the worker warm-refits the masters (EaModel::refit_incremental —
//     only a round-robin tree subset retrains) or, on a configurable
//     cadence / on demand, runs a full cold fit as a drift backstop;
//   - fit failures (the "model.fit" fault point, degenerate data) are
//     retried a bounded number of times, then survived by publishing with
//     an untrained primary — the ladder answers from a lower rung, exactly
//     like build_serving_model's policy;
//   - the refreshed bundle is assembled without any training
//     (assemble_serving_model) and published through the ModelSnapshot
//     RCU channel: readers never block, epochs never carry a fit.
//
// Metrics: serve.refit.queue_depth (gauge), serve.refit.seconds (latency),
// serve.refit.{warm,cold,coalesced,fit_failures,retries,degraded} counters.
//
// Threading: request_refit/wait/stats are safe from any thread.  With the
// worker running, requests execute on the worker thread; without it (or
// via refit_now) they execute inline on the caller — same code path, which
// is what the fleet's synchronous fallback and deterministic tests use.
// stop() cancels any not-yet-started pending job and joins; published
// bundles are unaffected.  See DESIGN.md §15.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "serve/model_snapshot.hpp"
#include "serve/serving_model.hpp"

namespace stac::serve {

struct RefitExecutorConfig {
  /// Configs the masters are (re)fitted with.
  core::EaModelConfig model;
  core::RtPredictorConfig predictor;
  /// Train the linear fallback each refit (cheap full fit).
  bool train_fallback = true;
  /// Warm-start knobs: enabled → trained masters refit incrementally,
  /// retraining ceil(retrain_fraction * estimators) trees per forest.
  bool warm_start = true;
  double retrain_fraction = 0.125;
  /// Full-refit fallback cadence: after this many consecutive warm refits
  /// the next one runs cold, bounding approximation drift.  0 = never
  /// force a cold refit.
  std::size_t full_refit_every = 8;
  /// Immediate in-worker retries after a fit failure before publishing
  /// degraded (untrained primary, ladder answers below rung 0).
  std::size_t fit_retries = 1;
};

struct RefitStats {
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;
  std::uint64_t coalesced = 0;       ///< requests folded into a pending job
  std::uint64_t warm = 0;            ///< warm-start refits executed
  std::uint64_t cold = 0;            ///< full (cold) refits executed
  std::uint64_t fit_failures = 0;    ///< individual failed fit attempts
  std::uint64_t retries = 0;         ///< retry attempts after a failure
  std::uint64_t degraded_publishes = 0;  ///< published with untrained primary
  std::uint64_t profiles_merged = 0;
  std::uint64_t cancelled = 0;       ///< pending jobs dropped by stop()
};

class RefitExecutor {
 public:
  /// `profiler` and `models` must outlive the executor; `initial_library`
  /// seeds the authoritative library (masters start untrained — the first
  /// refit is cold).  Versions of published bundles count up from
  /// `first_version`.
  RefitExecutor(const profiler::Profiler& profiler,
                ModelSnapshot<ServingModel>& models,
                core::ProfileLibrary initial_library,
                RefitExecutorConfig config, std::uint64_t first_version = 1);
  ~RefitExecutor();

  RefitExecutor(const RefitExecutor&) = delete;
  RefitExecutor& operator=(const RefitExecutor&) = delete;

  /// Spawn the background worker (idempotent).
  void start();
  /// Cancel any pending (not yet started) job, wake waiters, join the
  /// worker.  Idempotent; the destructor calls it.
  void stop();
  [[nodiscard]] bool running() const;

  /// Enqueue merge(delta) + refit + publish and return a ticket (see
  /// wait()).  Coalesces with a pending job if one exists.  With no worker
  /// running, executes inline before returning.
  std::uint64_t request_refit(core::ProfileLibrary delta,
                              bool force_cold = false);

  /// Synchronous refit on the calling thread (no worker round-trip).
  std::uint64_t refit_now(core::ProfileLibrary delta, bool force_cold = false);

  /// Block until the job carrying `ticket` has published (true) or the
  /// timeout/stop() intervened (false).
  [[nodiscard]] bool wait(std::uint64_t ticket, double timeout_seconds);

  /// Pending jobs not yet picked up (0 or 1 — coalescing collapses).
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] RefitStats stats() const;
  /// Version of the last bundle this executor published (0 = none yet).
  [[nodiscard]] std::uint64_t published_version() const;
  /// Profiles currently in the authoritative library.
  [[nodiscard]] std::size_t library_size() const;

 private:
  struct Pending {
    bool armed = false;
    core::ProfileLibrary delta;
    bool force_cold = false;
    std::uint64_t ticket = 0;
  };

  void worker_loop();
  /// merge → refit masters → assemble → publish.  Serialized by exec_mu_.
  void execute(Pending job);

  const profiler::Profiler& profiler_;
  ModelSnapshot<ServingModel>& models_;
  RefitExecutorConfig config_;

  /// Master state, touched only under exec_mu_ (worker thread, or the
  /// caller on the inline path).
  mutable std::mutex exec_mu_;
  core::ProfileLibrary library_;
  core::EaModel primary_;
  core::EaModel fallback_;
  std::uint64_t next_version_;
  std::uint64_t warm_streak_ = 0;
  std::uint64_t last_published_version_ = 0;

  /// Queue state under mu_.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Pending pending_;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t completed_ticket_ = 0;
  bool stopping_ = false;
  bool running_ = false;
  std::thread worker_;
  RefitStats stats_;
};

}  // namespace stac::serve

// Lock-free bounded MPSC ingest ring for live query events.
//
// Admission must never block on the control plane: proxies publish events
// from many threads with a handful of atomic ops and move on, and a full
// ring *drops* (counted) instead of applying backpressure — a controller
// that is briefly behind loses telemetry, not traffic.
//
// The ring is Vyukov's bounded queue (per-cell sequence numbers) used
// MPSC: producers claim a ticket by CAS on `tail_`, write their cell, and
// publish it by storing seq = ticket + 1 with release order; the single
// consumer owns `head_` outright (plain variable) and consumes the longest
// contiguous published prefix, recycling each cell by storing
// seq = ticket + capacity.  Claim order is ticket order, so the consumer
// observes a global FIFO — in particular each producer's events stay in
// its emission order.  A cell whose seq lags the producer's ticket means
// the ring is full *now*; try_push bumps the drop counter and returns
// false rather than waiting for the consumer (see DESIGN.md §11 for the
// memory-ordering argument).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "serve/query_event.hpp"

namespace stac::serve {

class ArrivalIngest {
 public:
  /// Capacity is rounded up to a power of two (mask indexing), minimum 2.
  explicit ArrivalIngest(std::size_t capacity = 1 << 16);

  ArrivalIngest(const ArrivalIngest&) = delete;
  ArrivalIngest& operator=(const ArrivalIngest&) = delete;

  [[nodiscard]] std::size_t capacity() const { return cells_.size(); }

  /// Instantaneous occupancy estimate (pushed - popped).  Racy by nature —
  /// producers and the consumer move both counters concurrently — but
  /// monotone enough for admission-control pressure signals.
  [[nodiscard]] std::size_t approx_size() const {
    const std::uint64_t in = pushed_.load(std::memory_order_relaxed);
    const std::uint64_t out = popped_.load(std::memory_order_relaxed);
    return in > out ? static_cast<std::size_t>(in - out) : 0;
  }

  /// Publish one event.  Wait-free apart from the claim CAS; returns false
  /// (and counts the drop) when the ring is full.  Safe from any number of
  /// producer threads concurrently with the single consumer.
  bool try_push(const QueryEvent& event);

  /// Consume up to out.size() events into `out`, returning the number
  /// drained.  Single consumer only.
  std::size_t drain(std::span<QueryEvent> out);

  /// Producer/consumer accounting (relaxed counters; exact once producers
  /// have quiesced): pushed + dropped == attempted, popped <= pushed.
  [[nodiscard]] std::uint64_t pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t popped() const {
    return popped_.load(std::memory_order_relaxed);
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    QueryEvent event;
  };

  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producers' next ticket
  alignas(64) std::size_t head_ = 0;              ///< consumer-owned
  alignas(64) std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> popped_{0};
};

}  // namespace stac::serve

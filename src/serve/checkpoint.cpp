#include "serve/checkpoint.hpp"

#include <iomanip>
#include <limits>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/check.hpp"
#include "common/fault_injection.hpp"
#include "obs/metrics.hpp"

namespace stac::serve {

namespace {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string checksum_hex(std::string_view body) {
  std::ostringstream os;
  os << std::hex << std::setfill('0') << std::setw(16) << fnv1a64(body);
  return os.str();
}

std::string serialize(const ControllerCheckpoint& c) {
  std::ostringstream out;
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "stac-ckpt v" << kCheckpointVersion << '\n';
  out << "epoch " << c.epoch << ' ' << c.time << '\n';
  out << "seeds " << c.condition_seed << ' ' << c.predictor_seed << '\n';
  out << "model " << c.model_version << '\n';
  // The library reference is a path; quote-free but whitespace would break
  // the line format, so reject it at write time rather than corrupt reads.
  STAC_REQUIRE_MSG(c.library_ref.find_first_of(" \t\n") == std::string::npos,
                   "library_ref must not contain whitespace");
  out << "library " << (c.library_ref.empty() ? "-" : c.library_ref) << ' '
      << c.library_size << '\n';
  out << "totals " << c.replans << ' ' << c.stale_holds << ' '
      << c.deadline_misses << '\n';
  out << "workloads " << c.workloads.size() << '\n';
  for (const WorkloadCheckpoint& w : c.workloads) {
    out << "w " << w.timeout << ' ' << w.ewma_queue_delay << ' '
        << w.ewma_queue_time << ' ' << (w.ewma_queue_seeded ? 1 : 0) << ' '
        << w.ewma_service << ' ' << w.ewma_service_time << ' '
        << (w.ewma_service_seeded ? 1 : 0) << ' ' << w.arrivals << ' '
        << w.completions << ' ' << w.timeouts << '\n';
  }
  return out.str();
}

/// Parse the body (everything before the checksum trailer).  Throws
/// ContractViolation with a reason on damage.
ControllerCheckpoint parse(const std::string& body) {
  std::istringstream in(body);
  ControllerCheckpoint c;
  std::string tag, magic, version;
  STAC_REQUIRE_MSG(static_cast<bool>(in >> magic >> version) &&
                       magic == "stac-ckpt",
                   "not a stac checkpoint");
  STAC_REQUIRE_MSG(version == "v" + std::to_string(kCheckpointVersion),
                   "unsupported checkpoint version " << version);
  STAC_REQUIRE_MSG(
      static_cast<bool>(in >> tag >> c.epoch >> c.time) && tag == "epoch",
      "truncated epoch line");
  STAC_REQUIRE_MSG(static_cast<bool>(in >> tag >> c.condition_seed >>
                                     c.predictor_seed) &&
                       tag == "seeds",
                   "truncated seeds line");
  STAC_REQUIRE_MSG(
      static_cast<bool>(in >> tag >> c.model_version) && tag == "model",
      "truncated model line");
  STAC_REQUIRE_MSG(static_cast<bool>(in >> tag >> c.library_ref >>
                                     c.library_size) &&
                       tag == "library",
                   "truncated library line");
  STAC_REQUIRE_MSG(static_cast<bool>(in >> tag >> c.replans >>
                                     c.stale_holds >> c.deadline_misses) &&
                       tag == "totals",
                   "truncated totals line");
  std::size_t n = 0;
  STAC_REQUIRE_MSG(
      static_cast<bool>(in >> tag >> n) && tag == "workloads",
      "truncated workloads line");
  STAC_REQUIRE_MSG(n <= 1024, "implausible workload count");
  c.workloads.resize(n);
  for (WorkloadCheckpoint& w : c.workloads) {
    int qs = 0, ss = 0;
    STAC_REQUIRE_MSG(
        static_cast<bool>(in >> tag >> w.timeout >> w.ewma_queue_delay >>
                          w.ewma_queue_time >> qs >> w.ewma_service >>
                          w.ewma_service_time >> ss >> w.arrivals >>
                          w.completions >> w.timeouts) &&
            tag == "w",
        "truncated workload record");
    w.ewma_queue_seeded = qs != 0;
    w.ewma_service_seeded = ss != 0;
  }
  return c;
}

}  // namespace

std::string checkpoint_path(const std::string& directory) {
  STAC_REQUIRE(!directory.empty());
  return directory.back() == '/' ? directory + "controller.ckpt"
                                 : directory + "/controller.ckpt";
}

void save_checkpoint(const std::string& path,
                     const ControllerCheckpoint& checkpoint) {
  FaultInjector::global().check("serve.checkpoint.write");
  const std::string body = serialize(checkpoint);
  write_file_atomic(path, body + "checksum " + checksum_hex(body) + '\n');
  obs::count("serve.checkpoint.writes");
}

CheckpointLoadReport load_checkpoint(const std::string& path) {
  CheckpointLoadReport report;
  try {
    FaultInjector::global().check("serve.checkpoint.load");
  } catch (const InjectedFault& e) {
    report.quarantined = true;
    report.reason = e.what();
    obs::count("serve.checkpoint.quarantined");
    return report;
  }

  std::string text;
  if (!read_file(path, text)) {
    report.quarantined = true;
    report.reason = "cannot open " + path;
    return report;
  }
  // Split off the trailer line: "checksum <hex>\n" must end the file.
  const std::string tail_marker = "checksum ";
  const std::size_t tail = text.rfind(tail_marker);
  if (tail == std::string::npos || text.empty() || text.back() != '\n') {
    report.quarantined = true;
    report.reason = "truncated checkpoint (no checksum trailer)";
    obs::count("serve.checkpoint.quarantined");
    return report;
  }
  const std::string body = text.substr(0, tail);
  std::istringstream trailer(text.substr(tail + tail_marker.size()));
  std::string hex;
  trailer >> hex;
  if (hex != checksum_hex(body)) {
    report.quarantined = true;
    report.reason = "checksum mismatch (corrupt checkpoint)";
    obs::count("serve.checkpoint.quarantined");
    return report;
  }
  try {
    report.checkpoint = parse(body);
  } catch (const ContractViolation& e) {
    report.quarantined = true;
    report.reason = e.what();
    report.checkpoint.reset();
    obs::count("serve.checkpoint.quarantined");
  }
  return report;
}

}  // namespace stac::serve

// The serving runtime's wire format: one event per query lifecycle edge.
//
// Producers (service proxies, or the traffic replay driver standing in for
// them) emit an event when a query arrives, when its STAP timeout fires
// (§4, Eq. 4 — the sojourn exceeded T x expected service time and the
// class was boosted), and when it completes.  Events carry everything the
// ConditionEstimator needs to reconstruct the paper's dynamic conditions —
// arrival rate, service-time CV, instantaneous queueing delay, boost
// prevalence — without the consumer ever touching producer state.
#pragma once

#include <cstdint>

namespace stac::serve {

enum class EventKind : std::uint8_t {
  kArrival = 0,     ///< query admitted to the workload's queue
  kTimeout = 1,     ///< STAP timeout fired; the query went boosted
  kCompletion = 2,  ///< query finished (boosted or not)
};

/// POD event record; fits two per cache line so a full ingest ring stays
/// small and scans stay dense.
struct QueryEvent {
  double time = 0.0;         ///< event timestamp (runtime clock, seconds)
  double queue_delay = 0.0;  ///< completion: time spent queued before service
  double service = 0.0;      ///< completion: service duration
  EventKind kind = EventKind::kArrival;
  bool boosted = false;      ///< completion: query held a boost grant
  std::uint16_t workload = 0;
  std::uint32_t producer = 0;  ///< producer tag (shard id; tests use it to
                               ///< assert per-producer FIFO order)

  [[nodiscard]] double sojourn() const { return queue_delay + service; }
};

}  // namespace stac::serve

// The one-method surface admission proxies read: the applied STAP timeout
// vector.  Both the standalone OnlineController and a fleet NodeShard
// implement it, so TrafficReplay (the proxy stand-in) can drive either
// without caring which control plane is behind the atomics.
#pragma once

#include <cstddef>

namespace stac::serve {

class TimeoutSource {
 public:
  virtual ~TimeoutSource() = default;

  /// Applied STAP timeout for workload `w` (relative to service time).
  /// Implementations must be lock-free and callable from any producer
  /// thread (a relaxed atomic read in practice).
  [[nodiscard]] virtual double timeout(std::size_t w) const = 0;
};

}  // namespace stac::serve

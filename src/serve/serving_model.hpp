// The immutable model bundle the online controller plans against.
//
// One ServingModel owns everything a planning epoch dereferences — the
// profile library snapshot, the primary and fallback EA models, and an
// RtPredictor wired over them — so a bundle swapped out mid-epoch stays
// fully usable until the last reader guard drops (ModelSnapshot reclaims
// it).  Bundles are built by background recalibration: copy the library
// (optionally grown by newly merged profiles), refit both models with the
// offline configs, wire the predictor, publish.  Training is deterministic
// (DESIGN.md §8), so a bundle built from a StacManager's library with the
// manager's configs predicts bit-identically to the manager — the basis of
// the online == offline identity test.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/stac_manager.hpp"

namespace stac::serve {

[[nodiscard]] inline core::EaModelConfig linear_fallback_config() {
  core::EaModelConfig cfg;
  cfg.backend = core::EaBackend::kLinear;
  return cfg;
}

/// Immutable after build_serving_model returns; the predictor references
/// sibling members, so the bundle lives on the heap and never moves.
struct ServingModel {
  std::uint64_t version = 0;
  core::ProfileLibrary library;
  core::EaModel primary;
  core::EaModel fallback{linear_fallback_config()};
  std::optional<core::RtPredictor> predictor;  ///< engaged by the factory

  [[nodiscard]] const core::RtPredictor& pred() const { return *predictor; }
  [[nodiscard]] bool primary_trained() const { return primary.trained(); }
};

/// Build a bundle from a profile library snapshot: refit primary +
/// fallback (a primary training failure is survived — the predictor
/// answers from a lower ladder rung, mirroring StacManager::refit) and
/// wire the predictor.  `profiler` must outlive the bundle.
[[nodiscard]] std::unique_ptr<const ServingModel> build_serving_model(
    const profiler::Profiler& profiler, core::ProfileLibrary library,
    const core::EaModelConfig& model_config,
    const core::RtPredictorConfig& predictor_config, std::uint64_t version,
    bool train_fallback = true);

/// Convenience: snapshot a calibrated StacManager's library and rebuild
/// with the manager's own model/predictor configs — deterministic
/// training makes the result predict identically to the manager.
[[nodiscard]] std::unique_ptr<const ServingModel> build_serving_model(
    const core::StacManager& manager, const core::StacOptions& options,
    std::uint64_t version);

/// Assemble a bundle from *pre-fitted* models — no training happens here,
/// only predictor wiring, so the call is O(model copy) instead of O(fit).
/// The RefitExecutor's warm-start path: it owns persistent master models,
/// warm-refits them off the hot path, and snapshots them into each
/// published bundle through this.  An untrained `primary` is allowed (the
/// ladder answers from a lower rung, as after a survived fit failure).
[[nodiscard]] std::unique_ptr<const ServingModel> assemble_serving_model(
    const profiler::Profiler& profiler, core::ProfileLibrary library,
    core::EaModel primary, core::EaModel fallback, std::uint64_t version,
    const core::RtPredictorConfig& predictor_config);

}  // namespace stac::serve

#include "serve/condition_estimator.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/fault_injection.hpp"
#include "obs/metrics.hpp"

namespace stac::serve {

ConditionEstimator::ConditionEstimator(std::size_t workloads,
                                       std::size_t servers_per_workload,
                                       EstimatorConfig config)
    : config_(config), servers_(std::max<std::size_t>(1, servers_per_workload)),
      wl_(workloads) {
  STAC_REQUIRE(workloads > 0);
  STAC_REQUIRE(config_.window_span > 0.0);
  STAC_REQUIRE(config_.half_life > 0.0);
  STAC_REQUIRE(config_.window_samples > 0);
}

void ConditionEstimator::Ewma::update(double t, double x, double half_life) {
  if (!seeded) {
    value = x;
    last_time = t;
    seeded = true;
    return;
  }
  // Irregular-interval EWMA: weight of the old value decays by half per
  // half_life of elapsed event time.  A non-increasing timestamp (cross-
  // producer skew) degenerates to alpha = 1/2 — still a valid average.
  const double dt = std::max(0.0, t - last_time);
  const double keep = std::exp2(-dt / half_life);
  value = keep * value + (1.0 - keep) * x;
  last_time = std::max(last_time, t);
}

double ConditionEstimator::monotone_time(double newest, double t) {
  if (t >= newest) return t;
  if (newest - t > config_.skew_tolerance) {
    ++skew_clamped_;
    obs::count("serve.estimator.time_skew");
  }
  return newest;
}

void ConditionEstimator::observe(const QueryEvent& event) {
  ++total_events_;
  if (event.workload >= wl_.size()) {
    ++ignored_;
    return;
  }
  // A non-finite timestamp or measurement would poison every downstream
  // mean; refuse it outright (counted, never folded in).
  if (!std::isfinite(event.time) || !std::isfinite(event.queue_delay) ||
      !std::isfinite(event.service)) {
    ++ignored_;
    obs::count("serve.estimator.invalid_event");
    return;
  }
  QueryEvent e = event;
  if (FaultInjector::global().armed()) {
    const FaultOutcome fault = FaultInjector::global().check(
        "serve.estimator.update",
        fault_key(e.producer, e.workload, e.time));
    if (fault.action == FaultAction::kDrop) {
      ++ignored_;
      return;
    }
    if (fault.action == FaultAction::kCorrupt) {
      e.queue_delay *= fault.corrupt_factor;
      e.service *= fault.corrupt_factor;
    }
  }
  PerWorkload& s = wl_[e.workload];
  switch (e.kind) {
    case EventKind::kArrival:
      s.arrivals.push_back(
          s.arrivals.empty() ? e.time
                             : monotone_time(s.arrivals.back(), e.time));
      ++s.lifetime_arrivals;
      break;
    case EventKind::kTimeout:
      s.timeouts.push_back(
          s.timeouts.empty() ? e.time
                             : monotone_time(s.timeouts.back(), e.time));
      ++s.lifetime_timeouts;
      break;
    case EventKind::kCompletion: {
      const double t =
          s.completions.empty()
              ? e.time
              : monotone_time(s.completions.back().time, e.time);
      s.completions.push_back({t, e.queue_delay, e.service, e.boosted});
      if (s.completions.size() > config_.window_samples)
        s.completions.pop_front();
      s.queue_delay.update(t, e.queue_delay, config_.half_life);
      s.service.update(t, e.service, config_.half_life);
      ++s.lifetime_completions;
      break;
    }
  }
}

ConditionEstimator::WorkloadEstimatorState
ConditionEstimator::snapshot_workload(std::size_t w) const {
  STAC_REQUIRE(w < wl_.size());
  const PerWorkload& s = wl_[w];
  WorkloadEstimatorState state;
  state.ewma_queue_delay = s.queue_delay.value;
  state.ewma_queue_time = s.queue_delay.last_time;
  state.ewma_queue_seeded = s.queue_delay.seeded;
  state.ewma_service = s.service.value;
  state.ewma_service_time = s.service.last_time;
  state.ewma_service_seeded = s.service.seeded;
  state.arrivals = s.lifetime_arrivals;
  state.completions = s.lifetime_completions;
  state.timeouts = s.lifetime_timeouts;
  return state;
}

bool ConditionEstimator::restore_workload(std::size_t w,
                                          const WorkloadEstimatorState& state) {
  if (w >= wl_.size()) {
    // Checkpoint/config workload-count mismatch: quarantine, exactly like
    // the checkpoint loader quarantines damaged files — never restore into
    // a slot that does not exist live.
    ++restore_quarantined_;
    obs::count("serve.estimator.restore_quarantined");
    return false;
  }
  PerWorkload& s = wl_[w];
  s.queue_delay.value = state.ewma_queue_delay;
  s.queue_delay.last_time = state.ewma_queue_time;
  s.queue_delay.seeded = state.ewma_queue_seeded;
  s.service.value = state.ewma_service;
  s.service.last_time = state.ewma_service_time;
  s.service.seeded = state.ewma_service_seeded;
  s.lifetime_arrivals = state.arrivals;
  s.lifetime_completions = state.completions;
  s.lifetime_timeouts = state.timeouts;
  return true;
}

void ConditionEstimator::evict(PerWorkload& s, double now) const {
  const double cutoff = now - config_.window_span;
  while (!s.arrivals.empty() && s.arrivals.front() < cutoff)
    s.arrivals.pop_front();
  while (!s.completions.empty() && s.completions.front().time < cutoff)
    s.completions.pop_front();
  while (!s.timeouts.empty() && s.timeouts.front() < cutoff)
    s.timeouts.pop_front();
}

core::WorkloadMoments ConditionEstimator::window_moments(std::size_t w,
                                                         double now) {
  STAC_REQUIRE(w < wl_.size());
  PerWorkload& s = wl_[w];
  evict(s, now);

  core::WorkloadMoments m;
  m.arrivals = s.arrivals.size();
  m.completions = s.completions.size();
  m.timeouts = s.timeouts.size();
  // Rate over the *observed* span: until a full window has elapsed, divide
  // by the span actually covered so early estimates are not biased low.
  m.span = s.arrivals.empty()
               ? config_.window_span
               : std::min(config_.window_span,
                          std::max(now - s.arrivals.front(), 1e-9));
  m.arrival_rate = static_cast<double>(m.arrivals) / m.span;
  for (const Completion& c : s.completions) {
    m.service.add(c.service);
    m.queue.add(c.queue_delay);
    if (c.boosted) ++m.boosted;
  }
  return m;
}

WorkloadEstimate ConditionEstimator::estimate(std::size_t w, double now) {
  const core::WorkloadMoments m = window_moments(w, now);
  const PerWorkload& s = wl_[w];

  WorkloadEstimate out;
  out.arrivals = m.arrivals;
  out.completions = m.completions;
  out.timeouts = m.timeouts;
  out.arrival_rate = m.arrival_rate;
  out.mean_service = m.service.mean();
  out.service_cv = m.service.cv();
  out.mean_queue_delay = m.queue.mean();
  out.inst_queue_delay = s.queue_delay.value;
  out.inst_service = s.service.value;
  out.boost_fraction =
      out.completions > 0
          ? static_cast<double>(m.boosted) /
                static_cast<double>(out.completions)
          : 0.0;
  out.utilization =
      out.arrival_rate * out.mean_service / static_cast<double>(servers_);
  out.warm = out.completions >= config_.min_completions;
  return out;
}

}  // namespace stac::serve

// Traffic replay: the stand-in for a fleet of service proxies.
//
// Replays a collocated pairing's query stream against the serving runtime:
// per workload, shards (independent producer threads) draw arrivals from a
// time-varying Poisson process, service times from the workload's
// lognormal (mean, CV), and run a tiny G/G/k recurrence per shard to get
// genuine queueing delays.  Each query publishes up to three QueryEvents
// into ArrivalIngest — arrival, STAP timeout (when the sojourn crosses the
// controller's *currently applied* timeout x expected service: the closed
// loop), completion — and a fired timeout accelerates the query's
// remaining work by `boost_speedup`, so re-planned timeout vectors
// actually change the traffic the estimator sees next epoch.
//
// Two drive modes:
//   * generate(t0, t1): every shard advanced on the calling thread —
//     deterministic, used by tests and the identity/bench harnesses;
//   * run_threaded(...): one free-running thread per shard (the MPSC
//     producers), the calling thread running control epochs as the shards'
//     simulated clocks advance; optional wall-clock pacing for soaks.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "serve/admission.hpp"
#include "serve/arrival_ingest.hpp"
#include "serve/online_controller.hpp"
#include "serve/timeout_source.hpp"

namespace stac::serve {

struct ReplayWorkloadConfig {
  double mean_service = 1.0;  ///< expected service time, seconds
  double service_cv = 0.7;
  std::size_t servers = 2;    ///< query slots per shard
  double base_util = 0.6;     ///< offered load, fraction of capacity
  /// Sinusoidal modulation: util(t) = base + amplitude * sin(2πt/period).
  double util_amplitude = 0.0;
  double util_period = 120.0;
  /// Remaining-work speedup while boosted (EA x allocation ratio > 1).
  double boost_speedup = 1.6;
};

struct ReplayConfig {
  std::vector<ReplayWorkloadConfig> workloads;  ///< index = workload id
  std::size_t shards_per_workload = 1;          ///< producers per workload
  std::uint64_t seed = 2022;
  /// Optional overload protection: queries are offered to the admission
  /// controller at their arrival instant; a shed query is never generated —
  /// it consumes no server slot and emits no events (counted in
  /// ReplayStats::shed, distinct from ring drops).  Not owned.
  AdmissionController* admission = nullptr;
};

struct ReplayStats {
  std::uint64_t arrivals = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t completions = 0;
  std::uint64_t push_failures = 0;  ///< events the ring dropped
  std::uint64_t shed = 0;           ///< queries refused by admission control
};

struct SoakResult {
  double sim_seconds = 0.0;
  std::uint64_t epochs = 0;
  ReplayStats traffic;
  OnlineController::Totals controller;
  std::uint64_t ingest_dropped = 0;
  std::uint64_t watchdog_revocations = 0;
  /// Epoch ordinal (1-based, within this run) of the first epoch that
  /// re-planned; 0 = the run never replanned.  The kill-and-recover soak
  /// gates on this: recovery must re-plan within a bounded epoch count.
  std::uint64_t epochs_to_first_replan = 0;
};

class TrafficReplay {
 public:
  /// `timeouts` supplies the applied STAP vector (closed loop) — an
  /// OnlineController or a fleet NodeShard; null means a fixed never-boost
  /// threshold.  Both must outlive the replay.
  TrafficReplay(ArrivalIngest& ingest, const TimeoutSource* timeouts,
                ReplayConfig config);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Point the proxies at a different controller's applied-timeout vector —
  /// the kill-and-recover flow: the controller process dies and restarts,
  /// the proxies and the ring survive and re-attach.  Only legal between
  /// runs (no shard threads active).
  void rebind_controller(const TimeoutSource* timeouts) {
    timeouts_ = timeouts;
  }

  /// Advance every shard over simulated [t0, t1) on the calling thread,
  /// pushing events time-sorted per shard chunk.  Deterministic for a
  /// fixed seed and timeout trajectory.
  ReplayStats generate(double t0, double t1);

  /// Advance one shard (thread-owned in run_threaded).
  ReplayStats generate_shard(std::size_t shard, double t0, double t1);

  /// Soak drive: shards free-run on their own threads in epoch-sized
  /// chunks while the calling thread runs one control epoch per chunk as
  /// soon as every shard has produced it.  `wall_pace` > 0 slows shards to
  /// roughly `wall_pace` simulated seconds per wall second (soak mode);
  /// 0 = as fast as possible.  `start_time` offsets the simulated clock —
  /// shard state (G/G/k occupancy, RNG streams) persists across calls, so
  /// a second call continuing at the first call's end time replays one
  /// uninterrupted traffic history (the kill-and-recover flow).  If
  /// run_epoch throws (e.g. an injected "serve.controller.epoch" crash),
  /// the shards are stopped and joined before the exception propagates.
  SoakResult run_threaded(OnlineController& controller, double sim_seconds,
                          double epoch_interval, double wall_pace = 0.0,
                          double start_time = 0.0);

 private:
  struct Shard {
    std::uint16_t workload = 0;
    std::uint32_t producer = 0;      ///< unique tag across shards
    double rate_scale = 1.0;         ///< 1 / shards_per_workload
    std::vector<double> server_free; ///< per-slot next-free time
    double next_arrival = 0.0;
    Rng rng{1};
  };

  [[nodiscard]] double utilization_at(const ReplayWorkloadConfig& w,
                                      double t) const;
  [[nodiscard]] double applied_timeout(std::size_t workload) const;

  ArrivalIngest& ingest_;
  const TimeoutSource* timeouts_;
  ReplayConfig config_;
  std::vector<Shard> shards_;
  /// Chunks completed per shard (written by the shard's thread, polled by
  /// the epoch thread in run_threaded).
  std::vector<std::atomic<std::uint64_t>> progress_;
  /// Early-stop signal for shard threads (set when run_epoch throws).
  std::atomic<bool> stop_{false};
};

}  // namespace stac::serve

#include "serve/serving_model.hpp"

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stac::serve {

std::unique_ptr<const ServingModel> build_serving_model(
    const profiler::Profiler& profiler, core::ProfileLibrary library,
    const core::EaModelConfig& model_config,
    const core::RtPredictorConfig& predictor_config, std::uint64_t version,
    bool train_fallback) {
  STAC_REQUIRE_MSG(!library.empty(), "serving model needs profiles");
  STAC_TRACE_SPAN(span, "serve.build_model", "serve");
  span.arg("profiles", static_cast<std::uint64_t>(library.size()));
  span.arg("version", version);

  auto bundle = std::make_unique<ServingModel>();
  bundle->version = version;
  bundle->library = std::move(library);
  // Mirror StacManager::refit's failure policy: a primary fit failure
  // (injected "model.fit" fault, degenerate profiles) leaves an untrained
  // primary and the ladder answers from a lower rung.
  bundle->primary = core::EaModel(model_config);
  try {
    bundle->primary.fit(bundle->library.profiles());
  } catch (const ContractViolation&) {
    throw;
  } catch (const std::exception&) {
    bundle->primary = core::EaModel(model_config);
    obs::count("serve.model_fit_failures");
  }
  if (train_fallback) {
    try {
      bundle->fallback.fit(bundle->library.profiles());
    } catch (const ContractViolation&) {
      throw;
    } catch (const std::exception&) {
      bundle->fallback = core::EaModel(linear_fallback_config());
    }
  }
  bundle->predictor.emplace(profiler,
                            bundle->primary.trained() ? &bundle->primary
                                                      : nullptr,
                            &bundle->library, predictor_config);
  bundle->predictor->set_fallback_model(
      bundle->fallback.trained() ? &bundle->fallback : nullptr);
  obs::count("serve.models_built");
  return bundle;
}

std::unique_ptr<const ServingModel> assemble_serving_model(
    const profiler::Profiler& profiler, core::ProfileLibrary library,
    core::EaModel primary, core::EaModel fallback, std::uint64_t version,
    const core::RtPredictorConfig& predictor_config) {
  STAC_REQUIRE_MSG(!library.empty(), "serving model needs profiles");
  STAC_TRACE_SPAN(span, "serve.assemble_model", "serve");
  span.arg("profiles", static_cast<std::uint64_t>(library.size()));
  span.arg("version", version);
  auto bundle = std::make_unique<ServingModel>();
  bundle->version = version;
  bundle->library = std::move(library);
  bundle->primary = std::move(primary);
  bundle->fallback = std::move(fallback);
  bundle->predictor.emplace(profiler,
                            bundle->primary.trained() ? &bundle->primary
                                                      : nullptr,
                            &bundle->library, predictor_config);
  bundle->predictor->set_fallback_model(
      bundle->fallback.trained() ? &bundle->fallback : nullptr);
  obs::count("serve.models_assembled");
  return bundle;
}

std::unique_ptr<const ServingModel> build_serving_model(
    const core::StacManager& manager, const core::StacOptions& options,
    std::uint64_t version) {
  STAC_REQUIRE_MSG(manager.calibrated(), "manager must be calibrated");
  return build_serving_model(manager.profiler(), manager.library(),
                             options.model, options.predictor, version,
                             options.train_fallback);
}

}  // namespace stac::serve

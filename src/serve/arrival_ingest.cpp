#include "serve/arrival_ingest.hpp"

#include <algorithm>
#include <bit>

#include "common/check.hpp"
#include "common/fault_injection.hpp"
#include "obs/metrics.hpp"

namespace stac::serve {

ArrivalIngest::ArrivalIngest(std::size_t capacity) {
  capacity = std::bit_ceil(std::max<std::size_t>(2, capacity));
  cells_ = std::vector<Cell>(capacity);
  mask_ = capacity - 1;
  // Cell i is writable for ticket i once seq == i (Vyukov's invariant).
  for (std::size_t i = 0; i < capacity; ++i)
    cells_[i].seq.store(i, std::memory_order_relaxed);
}

bool ArrivalIngest::try_push(const QueryEvent& event) {
  if (FaultInjector::global().armed()) {
    // Keyed by the event's identity so the fault schedule is independent of
    // producer-thread interleaving.
    const FaultOutcome fault = FaultInjector::global().check(
        "serve.ingest.push",
        fault_key(event.producer, event.workload, event.time));
    if (fault.action == FaultAction::kDrop) {
      // An injected transport loss: the event never reaches the ring.
      // Counted as a drop (it IS lost telemetry) plus a dedicated metric so
      // chaos runs can tell injected losses from genuine ring-full drops.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry::global().counter("serve.ingest.fault_drops").add();
      return false;
    }
  }
  std::size_t ticket = tail_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[ticket & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    const auto lag = static_cast<std::ptrdiff_t>(seq) -
                     static_cast<std::ptrdiff_t>(ticket);
    if (lag == 0) {
      // Cell is free for this ticket; claim it.  Weak CAS: a spurious
      // failure just retries with the refreshed ticket.
      if (tail_.compare_exchange_weak(ticket, ticket + 1,
                                      std::memory_order_relaxed)) {
        cell.event = event;
        cell.seq.store(ticket + 1, std::memory_order_release);
        pushed_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // CAS refreshed `ticket`; loop re-reads that cell.
    } else if (lag < 0) {
      // The consumer has not recycled this cell yet: the ring is full at
      // this instant.  Drop-not-block is the admission contract.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry::global().counter("serve.ingest_drops").add();
      return false;
    } else {
      // Another producer claimed this ticket and has not published yet;
      // chase the tail.
      ticket = tail_.load(std::memory_order_relaxed);
    }
  }
}

std::size_t ArrivalIngest::drain(std::span<QueryEvent> out) {
  std::size_t n = 0;
  while (n < out.size()) {
    Cell& cell = cells_[head_ & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    if (seq != head_ + 1) break;  // next ticket not published yet
    out[n++] = cell.event;
    // Recycle for the producer that will claim ticket head_ + capacity.
    cell.seq.store(head_ + cells_.size(), std::memory_order_release);
    ++head_;
  }
  if (n > 0) popped_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

}  // namespace stac::serve

// The closed control loop: live conditions in, timeout vector out.
//
// Every control epoch the controller (single consumer thread):
//   1. drains ArrivalIngest and folds the events into the
//      ConditionEstimator (and mirrors boost grants into the
//      CatController: a timeout event boosts the workload's class, a
//      boosted completion releases one grant — the lease/watchdog path);
//   2. rebuilds the paper's runtime condition from the estimates
//      (utilization clamped and quantized onto the profiled Table-2 axis);
//   3. pins the current ServingModel (ModelSnapshot::acquire) and probes
//      one prediction: if it answers from a rung deeper than
//      `max_planning_rung` the model is stale — the epoch *holds* the
//      last-known-good timeout vector instead of re-planning on bad data
//      (the serving-side analogue of the degradation ladder);
//   4. otherwise re-runs the §5.2 policy sweep (explore_policies) against
//      the pinned predictor — PR 4's RtPredictionCache memoizes the
//      repeated G/G/k cells, so a stationary epoch costs near-zero — and
//      publishes the selected timeout vector through per-workload atomics
//      the admission proxies read; and
//   5. polls the CatController grant watchdog so no boost lease outlives
//      its budget even if a proxy leaked an unboost.
//
// On stationary traffic the rebuilt condition is constant, so the sweep's
// selection equals StacManager::recommend() for that condition — the
// online == offline identity the serve tests pin.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "cat/cat_controller.hpp"
#include "core/policy_explorer.hpp"
#include "serve/admission.hpp"
#include "serve/arrival_ingest.hpp"
#include "serve/checkpoint.hpp"
#include "serve/condition_estimator.hpp"
#include "serve/epoch_planner.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/serving_model.hpp"
#include "serve/timeout_source.hpp"

namespace stac::serve {

/// Durable-state knobs.  An empty directory disables checkpointing.
struct CheckpointConfig {
  std::string directory;
  /// Write cadence in epochs (a write also happens via checkpoint_now()).
  std::uint64_t every_n_epochs = 4;
  /// Provenance recorded into each checkpoint: which profile-library
  /// snapshot the serving model refits from after recovery, and the CRN
  /// predictor seed (audit trail for the bit-identity guarantee).
  std::string library_ref = "-";
  std::size_t library_size = 0;
  std::uint64_t predictor_seed = 2024;
};

struct ControllerConfig {
  /// Pairing plus the fixed condition knobs (mix, churn, sampling, seed);
  /// utilizations are overwritten from the estimator each epoch and the
  /// timeouts are the initial applied vector.
  profiler::RuntimeCondition base_condition;
  core::ExplorerConfig explorer;
  EstimatorConfig estimator;
  /// Events drained per batch (one stack buffer per controller).
  std::size_t drain_batch = 8192;
  /// Query slots per workload (the paper provisions 2 cores per service);
  /// the estimator's utilization = arrival_rate x service / servers.
  std::size_t servers = 2;
  /// Utilization snap grid for the planned condition (0 = raw estimate);
  /// quantizing keeps stationary traffic on one condition — and the memo
  /// cache hot — instead of jittering by one sample each epoch.
  double util_quantum = 0.05;
  /// Table-2 clamp: the models were only ever trained inside this range.
  double util_lo = 0.25;
  double util_hi = 0.95;
  /// Deepest ladder rung the controller will plan on; a probe answering
  /// below holds the last-known-good vector (counted as a stale hold).
  core::DegradationRung max_planning_rung =
      core::DegradationRung::kNearestNeighbor;
  /// How many consecutive epochs one staleness probe may answer for.  The
  /// probed rung is a pure function of (condition, bundle version) — both
  /// re-checked every epoch — so reuse is sound against drift and hot-swap;
  /// what a longer TTL trades away is detection latency for *environmental*
  /// model failure (the chaos-drill scenario), which only a fresh predict
  /// can see.  1 = probe every epoch (detect within one epoch, the
  /// conservative default); raise it to take EA inference off stationary
  /// epochs' plan path (DESIGN.md §13) at the cost of up to TTL-1 epochs of
  /// undetected degradation.
  std::uint64_t probe_ttl_epochs = 1;
  /// Incremental re-planning (DESIGN.md §13): keep the previous epoch's
  /// prediction matrices in an ExplorationMemo and re-simulate only grid
  /// cells the memo cannot answer — on stationary traffic (same quantized
  /// condition, same model version) an epoch's sweep touches zero cells
  /// and planning drops to matrix reads + selection.  Selections are
  /// bit-identical to a full sweep; the memo invalidates itself on any
  /// condition drift or model hot-swap.  false = full sweep every epoch.
  bool incremental = true;
  /// Distinct quantized conditions memoized at once (ExplorationMemoPool
  /// capacity, min 1).  A utilization estimate hovering at a quantization
  /// boundary flips the planned condition between adjacent cells
  /// indefinitely; with a single memo every flip is a full sweep, while a
  /// small pool keeps each recurring condition's matrices warm.  Memory is
  /// `memo_conditions` pairs of grid x grid matrices.
  std::size_t memo_conditions = 4;
  /// Planning deadline budget, seconds (0 = unlimited).  A sweep that
  /// overruns it is *discarded* — the epoch keeps the last-known-good
  /// (ladder-fallback) vector and counts a deadline miss — so a slow plan
  /// can never stretch the control period.  Measure-then-discard, not
  /// predict-and-skip: the next epoch always gets a fresh measurement, so
  /// a single slow sweep cannot wedge the controller into never planning.
  double plan_deadline_seconds = 0.0;
  /// Crash-safe durable state (empty directory = disabled).
  CheckpointConfig checkpoint;
  /// Optional overload protection: when set, run_epoch feeds the epoch-lag
  /// signal back after each plan.  Not owned; must outlive the controller.
  AdmissionController* admission = nullptr;
};

/// What one control epoch did (returned to the driver; aggregated totals
/// live in obs metrics and totals()).
struct EpochReport {
  std::uint64_t epoch = 0;
  double now = 0.0;
  std::size_t events_drained = 0;
  bool warm = false;       ///< estimator had enough completions to plan
  bool replanned = false;  ///< sweep ran and the selection was applied
  bool stale_hold = false; ///< ladder said stale: kept last-known-good
  profiler::RuntimeCondition planned_condition;  ///< valid when warm
  core::DegradationRung probe_rung = core::DegradationRung::kPrimaryModel;
  double timeout_primary = 0.0;    ///< applied vector after this epoch
  double timeout_collocated = 0.0;
  double plan_seconds = 0.0;       ///< sweep + probe wall time
  std::size_t cells_simulated = 0; ///< grid cells predicted this epoch
  std::size_t cells_reused = 0;    ///< grid cells answered from the memo
  bool deadline_miss = false;      ///< sweep overran the budget, discarded
  bool model_unavailable_hold = false;  ///< no bundle published yet: held
  bool checkpoint_written = false;
  std::size_t watchdog_revocations = 0;
  std::uint64_t model_version = 0;
};

/// What recover() did with a checkpoint.  Malformed durable state (wrong
/// workload count after a config change, non-finite or negative timeout)
/// is *quarantined* — counted, reported, no controller state touched —
/// exactly like the checkpoint loader quarantines damaged files.  The
/// controller keeps serving its initial vector; it never crashes on, or
/// half-applies, stale durable state.
struct RecoveryReport {
  bool restored = false;
  bool quarantined = false;
  std::string reason;  ///< human-readable, set when quarantined
};

class OnlineController : public TimeoutSource {
 public:
  /// `cat` is optional (null = no hardware mirroring, e.g. ingest-only
  /// benches); when set it must have >= 2 workloads and outlive the
  /// controller.  The controller is the ring's single consumer.
  OnlineController(ArrivalIngest& ingest, ModelSnapshot<ServingModel>& models,
                   ControllerConfig config,
                   cat::CatController* cat = nullptr);

  /// One control epoch at runtime-clock `now`.  Call from one thread only.
  EpochReport run_epoch(double now);

  /// Applied STAP timeout for workload w (0 = primary, 1 = collocated).
  /// Lock-free; admission proxies read this on their own threads.
  [[nodiscard]] double timeout(std::size_t w) const override {
    return timeouts_[w].load(std::memory_order_relaxed);
  }

  [[nodiscard]] const ConditionEstimator& estimator() const {
    return estimator_;
  }

  /// Snapshot the controller's durable state as of runtime clock `now`.
  [[nodiscard]] ControllerCheckpoint make_checkpoint(double now) const;

  /// Write a checkpoint immediately (independent of the epoch cadence).
  /// Throws on I/O failure or an injected "serve.checkpoint.write" fault —
  /// callers on the epoch path swallow and count the failure instead.
  void checkpoint_now(double now);

  /// Restore from a loaded checkpoint: re-apply the last-known-good
  /// timeout vector (serving resumes *immediately*, before any model is
  /// published), re-seed the estimator's EWMA trackers and lifetime
  /// counters, adopt the epoch/replan/hold totals, and reconcile the
  /// CatController by force-releasing any boost grants that survived the
  /// crash (their proxies are gone; the watchdog would reap them anyway,
  /// but recovery should not start with leaked leases).  The model bundle
  /// is NOT restored here — run_epoch holds the recovered vector until a
  /// background refit publishes one.
  ///
  /// A checkpoint whose workload count differs from the live pair (e.g. a
  /// retrain changed the workload set under the durable state) or whose
  /// timeouts are non-finite/negative is quarantined: nothing is applied,
  /// Totals::recovery_quarantines counts it, and the report says why.
  /// Validation runs *before* any mutation — a quarantined recover leaves
  /// the controller exactly as it was.
  [[nodiscard]] RecoveryReport recover(const ControllerCheckpoint& checkpoint,
                                       double now);

  struct Totals {
    std::uint64_t epochs = 0;
    std::uint64_t replans = 0;
    std::uint64_t stale_holds = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t model_unavailable_holds = 0;
    std::uint64_t events_drained = 0;
    std::uint64_t watchdog_revocations = 0;
    std::uint64_t model_swaps_observed = 0;
    std::uint64_t checkpoints_written = 0;
    std::uint64_t checkpoint_failures = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t recovery_quarantines = 0;
  };
  [[nodiscard]] const Totals& totals() const { return totals_; }

 private:
  void mirror_to_cat(const QueryEvent& event);

  ArrivalIngest& ingest_;
  ModelSnapshot<ServingModel>& models_;
  ControllerConfig config_;
  cat::CatController* cat_;
  ConditionEstimator estimator_;
  std::vector<QueryEvent> batch_;
  std::array<std::atomic<double>, 2> timeouts_;
  /// The shared planning core (probe-TTL memo, incremental sweep memos,
  /// bundle-version memo) — identical machinery to a fleet coordinator's,
  /// which is what makes the N=1 fleet selections bit-identical.
  EpochPlanner planner_;
  Totals totals_;
};

}  // namespace stac::serve

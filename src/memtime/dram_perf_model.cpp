#include "memtime/dram_perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace stac::memtime {

DramPerfModel::DramPerfModel(const DramPerfSpec& spec,
                             std::uint32_t inherited_base)
    : spec_(spec),
      base_(spec.base_latency_cycles != 0 ? spec.base_latency_cycles
                                          : inherited_base) {
  STAC_REQUIRE(spec.max_queue_factor >= 0.0);
  STAC_REQUIRE(spec.bandwidth_bytes_per_cycle >= 0.0);
  if (spec.queue_enabled()) STAC_REQUIRE(spec.window_cycles > 0);
  queue_cap_ = static_cast<std::uint32_t>(
      std::lround(spec.max_queue_factor * static_cast<double>(base_)));
}

DramAccessTime DramPerfModel::access(std::uint64_t now_cycles,
                                     std::uint32_t bytes) {
  DramAccessTime t;
  t.total = base_;
  if (!spec_.queue_enabled()) return t;

  // Rotate the utilization windows up to `now`.  A jump of one window
  // demotes the current tally; a longer idle gap clears the horizon —
  // contention decays once the offered traffic stops.
  const std::uint64_t window = spec_.window_cycles;
  if (now_cycles >= window_start_ + window) {
    const std::uint64_t advanced = (now_cycles - window_start_) / window;
    prev_window_bytes_ = advanced == 1 ? window_bytes_ : 0.0;
    window_bytes_ = 0.0;
    window_start_ += advanced * window;
  }

  // Utilization over the trailing two-window horizon.  The numerator is
  // nondecreasing in offered traffic, and u -> delay is nondecreasing, so
  // a higher offered bandwidth can never produce a lower modeled latency.
  const double capacity =
      spec_.bandwidth_bytes_per_cycle * 2.0 * static_cast<double>(window);
  const double offered = prev_window_bytes_ + window_bytes_;
  const double u = std::min(offered / capacity, 0.98);

  // M/G/1-flavoured mean wait, capped: q = base * u / (2 * (1 - u)).
  const auto queue = static_cast<std::uint32_t>(std::min<double>(
      queue_cap_,
      std::lround(static_cast<double>(base_) * u / (2.0 * (1.0 - u)))));
  const auto transfer = static_cast<std::uint32_t>(std::ceil(
      static_cast<double>(bytes) / spec_.bandwidth_bytes_per_cycle));

  window_bytes_ += static_cast<double>(bytes);
  total_queue_cycles_ += queue;
  t.queue = queue;
  t.transfer = transfer;
  t.total = base_ + queue + transfer;
  return t;
}

void DramPerfModel::reset() {
  window_start_ = 0;
  window_bytes_ = 0.0;
  prev_window_bytes_ = 0.0;
  total_queue_cycles_ = 0;
}

}  // namespace stac::memtime

// Timing description for a whole memory hierarchy (DESIGN.md §16).
//
// One MemTimeSpec rides inside cachesim::HierarchyConfig and upgrades the
// hierarchy from hit/miss counting to modeled time:
//
//   * per-level CachePerfSpec overrides (absent = inherit that level's
//     legacy `latency_cycles` scalar as a flat sequential model — charge
//     the scalar on every traversal, hit or miss, exactly as today);
//   * a DramPerfSpec for main memory (base latency defaulting to the
//     deprecated `memory_latency_cycles` scalar; bandwidth 0 = the legacy
//     constant-latency model);
//   * an optional stacked DRAM-cache tier between LLC and DRAM (Sniper's
//     alloy-cache shape): a large set-associative cache with its own
//     access-time model and its own (stacked, high-bandwidth) channel.
//
// The default-constructed spec is the timing-off identity point: every
// access costs exactly what the pre-timing hierarchy charged, and the
// modeled cycle total equals the closed form sum(counters * latency)
// (tests/memtime/timing_identity_test.cpp holds this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "memtime/cache_perf_model.hpp"
#include "memtime/dram_perf_model.hpp"

namespace stac::memtime {

/// Geometry of the stacked DRAM-cache tier.  Kept self-contained (not a
/// cachesim::LevelConfig) so memtime stays below cachesim in the module
/// graph; cachesim converts when it instantiates the tier.
struct DramCacheGeometry {
  std::size_t size_bytes = 0;
  std::size_t ways = 0;
  std::size_t line_bytes = 64;

  [[nodiscard]] std::size_t lines() const {
    return line_bytes == 0 ? 0 : size_bytes / line_bytes;
  }
  [[nodiscard]] std::size_t sets() const {
    return ways == 0 ? 0 : lines() / ways;
  }
  /// Same contract as LevelConfig::valid(): exact sets x ways decomposition
  /// with a power-of-two set count.
  [[nodiscard]] bool valid() const;
};

struct DramCacheSpec {
  DramCacheGeometry geometry;
  /// Tag-probe / row-access time of the stacked tier.
  CachePerfSpec perf{};
  /// The stacked channel (HBM-class bandwidth).  Its base latency must be
  /// explicit — the tier would otherwise inherit main memory's baseline,
  /// which defeats its purpose; timing_warnings() flags that.
  DramPerfSpec dram{};
};

struct MemTimeSpec {
  /// Per-level overrides; absent = flat(level.latency_cycles).
  std::optional<CachePerfSpec> l1d;
  std::optional<CachePerfSpec> l1i;
  std::optional<CachePerfSpec> l2;
  std::optional<CachePerfSpec> llc;
  /// Main memory.  Default: inherit `memory_latency_cycles`, queue off.
  DramPerfSpec dram{};
  /// Optional stacked DRAM-cache tier between LLC and DRAM.
  std::optional<DramCacheSpec> dram_cache;

  /// True when the spec models exactly the legacy constant-latency
  /// hierarchy for the given scalars: no per-level split that deviates
  /// from the scalar, no DRAM queue, no stacked tier.
  [[nodiscard]] bool flat_equivalent(std::uint32_t l1d_scalar,
                                     std::uint32_t l1i_scalar,
                                     std::uint32_t l2_scalar,
                                     std::uint32_t llc_scalar,
                                     std::uint32_t memory_scalar) const;
};

/// Resolve a per-level override against the legacy scalar.
[[nodiscard]] inline CachePerfSpec resolve_level(
    const std::optional<CachePerfSpec>& spec, std::uint32_t legacy_scalar) {
  return spec.has_value() ? *spec : CachePerfSpec::flat(legacy_scalar);
}

/// Configuration-validation warnings for a timing spec paired with the
/// deprecated `memory_latency_cycles` scalar (the satellite deprecation
/// contract): the scalar survives only as the zero-contention DRAM
/// baseline, so an explicit DRAM base that contradicts it is flagged, as
/// is a stacked tier left to inherit main memory's baseline.
[[nodiscard]] std::vector<std::string> timing_warnings(
    const MemTimeSpec& spec, std::uint32_t memory_latency_cycles);

}  // namespace stac::memtime

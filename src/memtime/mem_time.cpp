#include "memtime/mem_time.hpp"

#include <sstream>

namespace stac::memtime {
namespace {

bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

bool spec_is_flat(const std::optional<CachePerfSpec>& spec,
                  std::uint32_t scalar) {
  if (!spec.has_value()) return true;
  const CachePerfModel model(*spec);
  return model.flat() && model.hit_cycles() == scalar;
}

}  // namespace

bool DramCacheGeometry::valid() const {
  if (size_bytes == 0 || ways == 0 || line_bytes == 0) return false;
  if (size_bytes % line_bytes != 0) return false;
  if (lines() % ways != 0) return false;
  return is_pow2(sets());
}

bool MemTimeSpec::flat_equivalent(std::uint32_t l1d_scalar,
                                  std::uint32_t l1i_scalar,
                                  std::uint32_t l2_scalar,
                                  std::uint32_t llc_scalar,
                                  std::uint32_t memory_scalar) const {
  if (dram_cache.has_value()) return false;
  if (dram.queue_enabled()) return false;
  if (dram.base_latency_cycles != 0 &&
      dram.base_latency_cycles != memory_scalar) {
    return false;
  }
  return spec_is_flat(l1d, l1d_scalar) && spec_is_flat(l1i, l1i_scalar) &&
         spec_is_flat(l2, l2_scalar) && spec_is_flat(llc, llc_scalar);
}

std::vector<std::string> timing_warnings(const MemTimeSpec& spec,
                                         std::uint32_t memory_latency_cycles) {
  std::vector<std::string> warnings;
  // The deprecated scalar survives only as the zero-contention baseline; an
  // explicit DRAM base that disagrees with it means one of the two numbers
  // is stale and whichever consumer reads the scalar directly sees the
  // wrong hierarchy.
  if (spec.dram.base_latency_cycles != 0 &&
      spec.dram.base_latency_cycles != memory_latency_cycles) {
    std::ostringstream os;
    os << "memory_latency_cycles=" << memory_latency_cycles
       << " disagrees with timing.dram.base_latency_cycles="
       << spec.dram.base_latency_cycles
       << "; the scalar is deprecated and only read as the zero-contention "
          "DRAM baseline — align it with the explicit DRAM model";
    warnings.push_back(os.str());
  }
  if (spec.dram_cache.has_value()) {
    const DramCacheSpec& dc = *spec.dram_cache;
    if (!dc.geometry.valid()) {
      std::ostringstream os;
      os << "dram_cache geometry invalid: size=" << dc.geometry.size_bytes
         << " ways=" << dc.geometry.ways << " line=" << dc.geometry.line_bytes
         << " (needs exact sets x ways with power-of-two sets)";
      warnings.push_back(os.str());
    }
    if (dc.dram.base_latency_cycles == 0) {
      warnings.push_back(
          "dram_cache.dram.base_latency_cycles is 0: the stacked tier would "
          "inherit main memory's baseline latency, defeating the tier — set "
          "an explicit (lower) stacked-channel base latency");
    }
  }
  return warnings;
}

}  // namespace stac::memtime

// Bandwidth-queued DRAM access-time model (DESIGN.md §16).
//
// Replaces the constant `memory_latency_cycles` with the Sniper
// DramPerfModel shape: each access pays
//
//   base (zero-contention device latency)
//     + transfer (line bytes / channel bandwidth)
//     + queue delay (contention: rises with recent offered bytes/cycle)
//
// The queue delay comes from a windowed bandwidth-utilization model: the
// model tracks bytes transferred in the current and previous utilization
// windows of the modeled-cycle clock, forms a utilization estimate
// u = offered / peak over that trailing horizon, and charges an
// M/G/1-flavoured delay base * u / (2 * (1 - u)), capped at
// `max_queue_factor * base`.  Monotonicity is structural: the delay is
// nondecreasing in the trailing byte count, so offering more bandwidth can
// never lower the modeled latency (the BENCH_PR10 gate).
//
// With `bandwidth_bytes_per_cycle == 0` the channel is infinitely wide:
// no transfer time, no queue — every access costs exactly the base
// latency, which is the legacy constant-latency model (timing-off mode).
#pragma once

#include <cstdint>

namespace stac::memtime {

struct DramPerfSpec {
  /// Zero-contention device latency in cycles.  0 means "inherit the
  /// hierarchy's legacy `memory_latency_cycles` scalar" — that scalar is
  /// deprecated as a standalone model and lives on only as this baseline
  /// (see HierarchyConfig::timing_warnings()).
  std::uint32_t base_latency_cycles = 0;
  /// Peak channel bandwidth.  0 disables the transfer and queue terms
  /// entirely (the legacy constant-latency model).
  double bandwidth_bytes_per_cycle = 0.0;
  /// Width of one utilization-tracking window of the modeled clock.
  std::uint32_t window_cycles = 8192;
  /// Queue delay cap as a multiple of the base latency.
  double max_queue_factor = 8.0;

  [[nodiscard]] bool queue_enabled() const {
    return bandwidth_bytes_per_cycle > 0.0;
  }
};

/// One DRAM access, decomposed for the per-level cycle breakdown.
struct DramAccessTime {
  std::uint32_t total = 0;     ///< base + transfer + queue
  std::uint32_t queue = 0;     ///< contention share
  std::uint32_t transfer = 0;  ///< line-transfer share
};

class DramPerfModel {
 public:
  DramPerfModel() = default;
  /// `inherited_base` substitutes for a zero `base_latency_cycles` (the
  /// deprecated scalar's new role as the zero-contention baseline).
  DramPerfModel(const DramPerfSpec& spec, std::uint32_t inherited_base);

  /// Model one access of `bytes` at modeled time `now_cycles`.  Advances
  /// the utilization window and charges queue delay from the bytes already
  /// offered in the trailing horizon (this access's own bytes queue behind
  /// it, FCFS).  Deterministic: same call sequence, same latencies.
  DramAccessTime access(std::uint64_t now_cycles, std::uint32_t bytes);

  [[nodiscard]] std::uint32_t base_latency() const { return base_; }
  [[nodiscard]] bool queue_enabled() const { return spec_.queue_enabled(); }
  [[nodiscard]] const DramPerfSpec& spec() const { return spec_; }
  /// Lifetime contention total (obs export / tests).
  [[nodiscard]] std::uint64_t total_queue_cycles() const {
    return total_queue_cycles_;
  }

  /// Forget all window state (hierarchy reset between experiments).
  void reset();

 private:
  DramPerfSpec spec_{};
  std::uint32_t base_ = 0;
  std::uint32_t queue_cap_ = 0;
  // Trailing-horizon accounting: bytes offered in the current window and
  // the one before it, in modeled cycles.
  std::uint64_t window_start_ = 0;
  double window_bytes_ = 0.0;
  double prev_window_bytes_ = 0.0;
  std::uint64_t total_queue_cycles_ = 0;
};

}  // namespace stac::memtime
